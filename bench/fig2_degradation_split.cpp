// Fig. 2 — "Battery degradation": calendar vs cycle vs total degradation of
// a regular LoRa (LoRaWAN) node over 5 years, 100 nodes with random
// transmission intervals in [16, 60] minutes. The paper's takeaway:
// calendar aging dominates cycle aging by a wide margin.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "net/network.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  const int nodes = scaled(100, 100);
  const double years = scaled(5.0, 2.0);
  banner("Fig. 2 - degradation split (calendar vs cycle) over " + std::to_string(years) +
             " years, LoRaWAN",
         "calendar aging dominates; cycle aging is a small fraction of total");

  ScenarioConfig config = lorawan_scenario(nodes, /*seed=*/42);
  Network network{config};
  const DegradationModel model{config.degradation};

  std::printf("%8s %14s %14s %14s %14s\n", "month", "calendar_lin", "cycle_lin", "D_calendar",
              "D_total");
  std::vector<std::vector<std::string>> rows;
  const int months = static_cast<int>(years * 12.0);
  for (int month = 1; month <= months; ++month) {
    const Time now = Time::from_days(30.44 * month);
    network.run_until(now);
    double cal = 0.0;
    double cyc = 0.0;
    double total = 0.0;
    for (const auto& node : network.nodes()) {
      cal += node->tracker().calendar_linear(now);
      cyc += node->tracker().cycle_linear();
      total += node->tracker().degradation(now);
    }
    const double inv = 1.0 / static_cast<double>(nodes);
    cal *= inv;
    cyc *= inv;
    total *= inv;
    const double d_cal_only = model.nonlinear(cal);
    if (month % 3 == 0 || month == 1) {
      std::printf("%8d %14.6f %14.6f %14.6f %14.6f\n", month, cal, cyc, d_cal_only, total);
    }
    rows.push_back({CsvWriter::cell(static_cast<std::int64_t>(month)), CsvWriter::cell(cal),
                    CsvWriter::cell(cyc), CsvWriter::cell(d_cal_only), CsvWriter::cell(total)});
  }

  write_csv("fig2_degradation_split", {"month", "calendar_linear", "cycle_linear",
                                       "degradation_calendar_only", "degradation_total"},
            rows);

  // Shape check mirrored from the paper.
  double cal = 0.0;
  double cyc = 0.0;
  const Time end = Time::from_days(30.44 * months);
  for (const auto& node : network.nodes()) {
    cal += node->tracker().calendar_linear(end);
    cyc += node->tracker().cycle_linear();
  }
  std::printf("\ncalendar/cycle ratio at end: %.1fx  (paper: calendar >> cycle)\n",
              cyc > 0.0 ? cal / cyc : 0.0);
  return 0;
}
