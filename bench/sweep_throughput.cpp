// Sweep-engine throughput: runs a laptop-scale protocol x seed grid once
// serially (BLAM_JOBS=1 path) and once with the configured worker count,
// verifies the aggregated results are bit-identical, and reports wall time,
// cells/sec and speedup — human-readable on stdout and machine-readable in
// BENCH_sweep.json (consumed by the CI bench-smoke job to track the perf
// trajectory).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace blam;
using namespace blam::bench;

/// Order-sensitive FNV-1a over the bit patterns of the quantities a figure
/// binary would print, so "bit-identical" means the CSVs would match too.
class Fingerprint {
 public:
  void add(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    add(bits);
  }
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_{0xcbf29ce484222325ULL};
};

std::uint64_t fingerprint(const std::vector<ExperimentResult>& results) {
  Fingerprint fp;
  for (const ExperimentResult& r : results) {
    fp.add(r.events_executed);
    fp.add(r.summary.mean_prr);
    fp.add(r.summary.min_prr);
    fp.add(r.summary.mean_utility);
    fp.add(r.summary.mean_retx);
    fp.add(r.summary.mean_latency_s);
    fp.add(r.summary.total_tx_energy.joules());
    fp.add(r.summary.degradation_box.mean);
    fp.add(r.summary.max_degradation);
    for (const NodeMetrics& n : r.nodes) {
      fp.add(n.generated);
      fp.add(n.delivered);
      fp.add(n.tx_attempts);
      fp.add(n.tx_energy.joules());
      fp.add(n.degradation);
    }
  }
  return fp.value();
}

double run_grid(const std::vector<ScenarioCell>& cells, Time duration, int jobs,
                std::uint64_t* fp_out) {
  SweepOptions options;
  options.jobs = jobs;
  options.progress = true;
  const auto start = std::chrono::steady_clock::now();
  const std::vector<ExperimentResult> results = run_scenarios(cells, duration, options);
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                          .count();
  *fp_out = fingerprint(results);
  return wall;
}

}  // namespace

int main() {
  const int nodes = scaled(200, 60);
  const double days = scaled(180.0, 45.0);
  banner("Sweep throughput - parallel scenario grid vs the serial path",
         "same grid, same bits, BLAM_JOBS x fewer wall seconds");

  // Protocol x seed grid: 4 protocols x 3 seeds = 12 independent cells,
  // every (protocol, seed) pair sharing that seed's weather like the figure
  // binaries do.
  const Time duration = Time::from_days(days);
  std::vector<ScenarioCell> cells;
  for (std::uint64_t seed : {1, 2, 3}) {
    const auto trace = build_shared_trace(lorawan_scenario(nodes, seed));
    cells.push_back({lorawan_scenario(nodes, seed), trace});
    for (double theta : {0.05, 0.5, 1.0}) {
      cells.push_back({blam_scenario(nodes, theta, seed), trace});
    }
  }

  const int jobs = resolve_jobs();
  std::printf("grid: %zu cells (%d nodes x %.0f days), serial then %d worker(s)\n",
              cells.size(), nodes, days, jobs);

  std::uint64_t fp_serial = 0;
  std::uint64_t fp_parallel = 0;
  const double serial_s = run_grid(cells, duration, /*jobs=*/1, &fp_serial);
  const double parallel_s = run_grid(cells, duration, jobs, &fp_parallel);
  const bool identical = fp_serial == fp_parallel;
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  const double n_cells = static_cast<double>(cells.size());

  std::printf("\n%-10s %10s %12s\n", "path", "wall_s", "cells/s");
  std::printf("%-10s %10.2f %12.2f\n", "serial", serial_s, n_cells / serial_s);
  std::printf("%-10s %10.2f %12.2f\n", "parallel", parallel_s, n_cells / parallel_s);
  std::printf("speedup: %.2fx at %d worker(s); results bit-identical: %s\n", speedup, jobs,
              identical ? "YES" : "NO");

  // BENCH_sweep.json next to the CSVs (BLAM_OUT_DIR-aware).
  namespace fs = std::filesystem;
  fs::path json_path{"BENCH_sweep.json"};
  if (const char* dir = std::getenv("BLAM_OUT_DIR"); dir != nullptr && dir[0] != '\0') {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (!ec) json_path = fs::path{dir} / json_path;
  }
  std::ofstream json{json_path};
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"grid_cells\": %zu,\n"
                "  \"nodes\": %d,\n"
                "  \"days\": %.1f,\n"
                "  \"jobs\": %d,\n"
                "  \"serial_wall_s\": %.3f,\n"
                "  \"parallel_wall_s\": %.3f,\n"
                "  \"serial_cells_per_s\": %.3f,\n"
                "  \"parallel_cells_per_s\": %.3f,\n"
                "  \"speedup\": %.3f,\n"
                "  \"bit_identical\": %s\n"
                "}\n",
                cells.size(), nodes, days, jobs, serial_s, parallel_s, n_cells / serial_s,
                n_cells / parallel_s, speedup, identical ? "true" : "false");
  json << buf;
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.string().c_str());
    return 1;
  }
  std::printf("[json] wrote %s\n", json_path.string().c_str());

  if (!identical) {
    std::fprintf(stderr, "error: parallel grid diverged from the serial path\n");
    return 1;
  }
  return 0;
}
