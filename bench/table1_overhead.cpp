// Table I — "System overhead": the paper measures CPU / memory utilization
// of the proposed MAC vs plain LoRaWAN on a Raspberry Pi with psutil
// (+12.56% CPU, +5.73% memory, +7.14% executable size, +2.61% USS).
//
// Substitution (no Raspberry Pi here): we measure the same quantity — the
// marginal compute and state cost of the proposed MAC — directly:
//   * CPU: wall time of one per-period MAC decision (forecast 10 windows,
//     estimate costs, run Algorithm 1) vs the baseline decision ("transmit
//     now"), plus the per-ACK estimator updates;
//   * memory: bytes of protocol state a node must keep (estimators,
//     forecaster, selection scratch) for BLAM vs LoRaWAN.
#include <chrono>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "core/window_selector.hpp"
#include "forecast/ewma.hpp"
#include "forecast/retx_estimator.hpp"
#include "forecast/solar_forecaster.hpp"
#include "lora/airtime.hpp"
#include "mac/blam_mac.hpp"
#include "mac/lorawan_mac.hpp"

namespace {

volatile double g_sink = 0.0;

template <typename F>
double time_ns_per_call(F&& f, int iterations) {
  // Warm up.
  for (int i = 0; i < 1000; ++i) f(i);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) f(i);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() / iterations;
}

}  // namespace

int main() {
  using namespace blam;
  using namespace blam::bench;

  banner("Table I - system overhead of the proposed MAC vs LoRaWAN",
         "paper (RPi + psutil): +12.56% CPU, +5.73% memory, +7.14% exe size, +2.61% USS");

  const int n_windows = 10;  // 10-min period, 1-min windows (paper's example)
  const int iterations = scaled(2'000'000, 200'000);

  // Shared fixtures.
  RadioEnergyModel radio;
  TxParams params;
  params.sf = SpreadingFactor::kSF10;
  params.payload_bytes = 14;
  params = params.with_auto_ldro();
  const Energy attempt = tx_energy(params, radio) + radio.rx_power() * Time::from_ms(120);

  SolarTraceConfig solar_cfg;
  solar_cfg.peak = Power::from_watts(3.0 * attempt.joules() / 60.0);
  solar_cfg.seed = 3;
  const SolarTrace trace{solar_cfg};
  const Harvester harvester{trace, 1.0};
  SolarForecaster forecaster{harvester, 0.0, Rng{5}};
  Ewma ewma{0.3};
  ewma.observe(attempt.joules());
  RetxEstimator retx{static_cast<std::size_t>(n_windows)};
  for (int w = 0; w < n_windows; ++w) retx.record(static_cast<std::size_t>(w), w % 3);
  LinearUtility utility;

  LorawanMac lorawan;
  BlamMac blam{0.5};
  std::vector<Energy> harvest(static_cast<std::size_t>(n_windows));
  std::vector<Energy> cost(static_cast<std::size_t>(n_windows));

  // Baseline decision: LoRaWAN "transmit immediately".
  WindowContext base_ctx;
  base_ctx.n_windows = n_windows;
  base_ctx.utility = &utility;
  base_ctx.battery = attempt * 4;
  base_ctx.battery_capacity = attempt * 8;
  base_ctx.max_tx = attempt * 8;
  const double ns_lorawan = time_ns_per_call(
      [&](int) { g_sink = g_sink + lorawan.select_window(base_ctx).window; }, iterations);

  // Proposed decision: forecast + cost estimation + Algorithm 1.
  const double ns_blam = time_ns_per_call(
      [&](int i) {
        const Time start = Time::from_minutes(static_cast<double>(i % 1440));
        for (int w = 0; w < n_windows; ++w) {
          harvest[static_cast<std::size_t>(w)] =
              forecaster.forecast_one(start + Time::from_minutes(w), start + Time::from_minutes(w + 1));
          cost[static_cast<std::size_t>(w)] = Energy::from_joules(
              ewma.value_or(attempt.joules()) *
              retx.expected_transmissions(static_cast<std::size_t>(w)));
        }
        WindowContext ctx = base_ctx;
        ctx.w_u = 0.7;
        ctx.harvest_forecast = harvest;
        ctx.tx_cost = cost;
        g_sink = g_sink + blam.select_window(ctx).window;
      },
      iterations);

  // Per-ACK estimator update (BLAM only).
  const double ns_update = time_ns_per_call(
      [&](int i) {
        retx.record(static_cast<std::size_t>(i % n_windows), i % 3);
        ewma.observe(attempt.joules() * (1.0 + 0.01 * (i % 7)));
      },
      iterations);

  // Protocol state footprint per node.
  const std::size_t state_lorawan = sizeof(LorawanMac);
  const std::size_t state_blam =
      sizeof(BlamMac) + sizeof(Ewma) + sizeof(RetxEstimator) +
      static_cast<std::size_t>(n_windows) * (sizeof(std::uint64_t) * 10 + 2 * sizeof(Energy)) +
      sizeof(SolarForecaster);

  std::printf("\n%-34s %12s %12s\n", "", "LoRaWAN", "H-x (BLAM)");
  std::printf("%-34s %12.1f %12.1f\n", "per-period decision [ns]", ns_lorawan, ns_blam);
  std::printf("%-34s %12.1f %12.1f\n", "per-ACK estimator update [ns]", 0.0, ns_update);
  std::printf("%-34s %12zu %12zu\n", "protocol state per node [bytes]", state_lorawan,
              state_blam);

  // The paper's CPU overhead is relative to the whole MAC stack; the radio
  // driver work (common to both) dominates at ~100 us per packet event, so
  // express the decision overhead relative to that common cost too.
  const double common_ns = 100'000.0;
  const double cpu_overhead_pct =
      100.0 * (ns_blam + ns_update - ns_lorawan) / (common_ns + ns_lorawan);
  std::printf("\ndecision-path overhead: %.1f ns/period -> ~%.1f%% of a ~100 us MAC event "
              "(paper: +12.56%% whole-process CPU on an RPi)\n",
              ns_blam - ns_lorawan, cpu_overhead_pct);

  write_csv("table1_overhead",
            {"metric", "lorawan", "blam"},
            {{"decision_ns", CsvWriter::cell(ns_lorawan), CsvWriter::cell(ns_blam)},
             {"ack_update_ns", CsvWriter::cell(0.0), CsvWriter::cell(ns_update)},
             {"state_bytes", CsvWriter::cell(static_cast<std::uint64_t>(state_lorawan)),
              CsvWriter::cell(static_cast<std::uint64_t>(state_blam))}});
  return 0;
}
