// Crash-tolerant engine bench + CI kill-resume harness.
//
// Default (no arguments): measures the "blamsim v1" checkpoint pipeline on a
// faulted 4-shard deployment — write time, stream size, restore time — then
// kills the run at mid-epoch, resumes a fresh engine from the checkpoint,
// and verifies the resumed run's FINAL checkpoint stream is byte-identical
// to an uninterrupted run's (the stream covers every clock, RNG, pending
// event, ledger and metric, so stream equality is engine equality). Emits
// BENCH_resume.json and exits nonzero on any divergence.
//
// CI kill-resume legs (shared scenario, outputs under BLAM_OUT_DIR):
//   --fresh            run start to end, write resume_fleet.csv and
//                      resume_final.state
//   --abort-at-epoch N run with the rolling checkpoint armed
//                      (BLAM_CHECKPOINT_EVERY=1) and std::_Exit(0) right
//                      after the epoch-N boundary checkpoint lands — the
//                      no-destructor exit is the kill -9 stand-in
//   --resume           restore from BLAM_CHECKPOINT_DIR/blamsim.ckpt, run
//                      to the end, write the same two outputs; CI byte-
//                      compares them against the --fresh pair
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "sim/shard_engine.hpp"

namespace {

using namespace blam;
using namespace blam::bench;

/// The acceptance scenario: a decomposable city (every cell its own
/// collision domain) under kitchen-sink fault injection, on 4 shards.
ScenarioConfig resume_scenario() {
  ScenarioConfig c;
  c.policy = PolicyKind::kBlam;
  c.theta = 0.5;
  c.n_nodes = scaled(2000, 48);
  c.n_gateways = scaled(16, 4);
  c.gateway_grid_pitch_m = 12000.0;
  c.cluster_radius_m = 1000.0;
  c.interference_floor_dbm = -143.0;
  c.sf_assignment = SfAssignment::kDistanceBased;
  c.shards = 4;
  c.seed = 42;
  c.label = c.policy_label();
  // Hourly epochs so a short run still crosses many checkpoint boundaries.
  c.dissemination_period = Time::from_hours(1.0);
  c.faults.outage_daily_start = Time::from_hours(9.0);
  c.faults.outage_daily_duration = Time::from_hours(2.0);
  c.faults.outage_random_per_day = 1.0;
  c.faults.ack_loss_good = 0.02;
  c.faults.ack_loss_bad = 0.8;
  c.faults.crash_per_year = 24.0;
  c.faults.report_loss = 0.1;
  c.faults.report_reorder = 0.1;
  c.faults.report_corrupt = 0.05;
  c.faults.drought_start = Time::from_hours(5.0);
  c.faults.drought_duration = Time::from_hours(12.0);
  c.faults.drought_scale = 0.3;
  return c;
}

constexpr int kEpochs = 12;      // 12 h run
constexpr int kKillEpoch = 6;    // kill/resume point (epoch boundary)

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::string checkpoint_text(ShardedNetwork& engine) {
  std::ostringstream out;
  engine.checkpoint(out);
  return out.str();
}

/// BLAM_OUT_DIR-relative path (mirrors write_csv / the bench JSON idiom).
std::string out_path(const std::string& name) {
  namespace fs = std::filesystem;
  fs::path path{name};
  if (const char* dir = std::getenv("BLAM_OUT_DIR"); dir != nullptr && dir[0] != '\0') {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (!ec) path = fs::path{dir} / path;
  }
  return path.string();
}

/// The two byte-compare artifacts: the final checkpoint stream (complete
/// engine state) and a per-node figure-style CSV. The stream is written
/// BEFORE finalize_metrics — finalizing drains the report channel, and both
/// runs must do both steps in the same order.
int write_outputs(ShardedNetwork& engine) {
  const std::string state_path = out_path("resume_final.state");
  std::ofstream state{state_path, std::ios::binary | std::ios::trunc};
  if (!state) {
    std::fprintf(stderr, "error: could not write %s\n", state_path.c_str());
    return 1;
  }
  engine.checkpoint(state);
  state.flush();
  if (!state) {
    std::fprintf(stderr, "error: write failed for %s\n", state_path.c_str());
    return 1;
  }

  engine.finalize_metrics();
  const Metrics& m = engine.metrics();
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < m.node_count(); ++i) {
    const NodeMetrics& n = m.node(i);
    rows.push_back({CsvWriter::cell(static_cast<std::uint64_t>(i)), CsvWriter::cell(n.generated),
                    CsvWriter::cell(n.delivered), CsvWriter::cell(n.tx_attempts),
                    CsvWriter::cell(n.retx), CsvWriter::cell(n.crashes),
                    CsvWriter::cell(n.tx_energy.joules()), CsvWriter::cell(n.degradation),
                    CsvWriter::cell(n.final_soc),
                    CsvWriter::cell(engine.w_for(static_cast<std::uint32_t>(i)))});
  }
  write_csv("resume_fleet",
            {"node", "generated", "delivered", "tx_attempts", "retx", "crashes", "tx_energy_j",
             "degradation", "final_soc", "w_u"},
            rows);
  std::printf("wrote %s and resume_fleet.csv\n", state_path.c_str());
  return 0;
}

int run_fresh() {
  ShardedNetwork engine{resume_scenario()};
  engine.run_until(Time::from_hours(static_cast<double>(kEpochs)));
  return write_outputs(engine);
}

int run_abort(int epoch) {
  // Roll a checkpoint every epoch; die without destructors right after the
  // epoch-N checkpoint lands, like a kill -9 between event batches.
  setenv("BLAM_CHECKPOINT_EVERY", "1", 0);
  ShardedNetwork engine{resume_scenario()};
  engine.run_until(Time::from_hours(static_cast<double>(epoch)));
  std::printf("aborting after epoch %d checkpoint (simulated kill -9)\n", epoch);
  std::fflush(stdout);
  std::_Exit(0);
}

int run_resume() {
  const char* dir = std::getenv("BLAM_CHECKPOINT_DIR");
  const std::string ckpt =
      std::string{dir != nullptr && dir[0] != '\0' ? dir : "."} + "/blamsim.ckpt";
  ShardedNetwork engine{resume_scenario()};
  std::ifstream in{ckpt, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "error: no checkpoint at %s\n", ckpt.c_str());
    return 1;
  }
  engine.restore(in);
  std::printf("resumed from %s\n", ckpt.c_str());
  engine.run_until(Time::from_hours(static_cast<double>(kEpochs)));
  return write_outputs(engine);
}

int run_bench() {
  banner("Checkpoint/resume overhead - crash-tolerant sharded engine",
         "a run killed at an epoch checkpoint resumes bit-identically to the "
         "uninterrupted run, at a checkpoint cost worth measuring");
  const ScenarioConfig config = resume_scenario();
  const Time mid = Time::from_hours(static_cast<double>(kKillEpoch));
  const Time end = Time::from_hours(static_cast<double>(kEpochs));

  auto t0 = std::chrono::steady_clock::now();
  ShardedNetwork uninterrupted{config};
  uninterrupted.run_until(end);
  const double fresh_wall_s = seconds_since(t0);
  if (uninterrupted.serial()) {
    std::fprintf(stderr, "error: scenario unexpectedly fell back to serial\n");
    return 1;
  }

  ShardedNetwork original{config};
  original.run_until(mid);
  const std::string ckpt_path = out_path("resume_bench.ckpt");
  t0 = std::chrono::steady_clock::now();
  original.checkpoint_to_file(ckpt_path);
  const double checkpoint_write_s = seconds_since(t0);
  const auto checkpoint_bytes =
      static_cast<std::uint64_t>(std::filesystem::file_size(ckpt_path));

  // The "kill": `original` is simply abandoned mid-run.
  ShardedNetwork resumed{config};
  {
    std::ifstream in{ckpt_path, std::ios::binary};
    t0 = std::chrono::steady_clock::now();
    resumed.restore(in);
  }
  const double restore_s = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  resumed.run_until(end);
  const double resumed_wall_s = seconds_since(t0);

  const bool bit_identical = checkpoint_text(resumed) == checkpoint_text(uninterrupted);
  if (!bit_identical) {
    std::fprintf(stderr, "error: resumed run diverged from the uninterrupted run\n");
  }
  std::filesystem::remove(ckpt_path);

  std::printf("%d nodes / %d gateways x %d h, 4 shards, kill at epoch %d\n", config.n_nodes,
              config.n_gateways, kEpochs, kKillEpoch);
  std::printf("  fresh run        %8.3f s wall\n", fresh_wall_s);
  std::printf("  checkpoint write %8.3f s  (%llu bytes)\n", checkpoint_write_s,
              static_cast<unsigned long long>(checkpoint_bytes));
  std::printf("  restore          %8.3f s\n", restore_s);
  std::printf("  resumed tail     %8.3f s wall\n", resumed_wall_s);
  std::printf("  bit-identical    %s\n", bit_identical ? "yes" : "NO");

  const std::string json_path = out_path("BENCH_resume.json");
  std::ofstream json{json_path};
  char buf[1024];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"nodes\": %d,\n"
                "  \"gateways\": %d,\n"
                "  \"shards\": 4,\n"
                "  \"days\": %.3f,\n"
                "  \"epochs\": %d,\n"
                "  \"kill_epoch\": %d,\n"
                "  \"checkpoint_bytes\": %llu,\n"
                "  \"checkpoint_write_s\": %.6f,\n"
                "  \"restore_s\": %.6f,\n"
                "  \"fresh_wall_s\": %.3f,\n"
                "  \"resumed_wall_s\": %.3f,\n"
                "  \"bit_identical\": %s\n"
                "}\n",
                config.n_nodes, config.n_gateways, static_cast<double>(kEpochs) / 24.0, kEpochs,
                kKillEpoch, static_cast<unsigned long long>(checkpoint_bytes),
                checkpoint_write_s, restore_s, fresh_wall_s, resumed_wall_s,
                bit_identical ? "true" : "false");
  json << buf;
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("[json] wrote %s\n", json_path.c_str());
  return bit_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // A stray shard override would bend the fixed 4-shard scenario.
  if (std::getenv("BLAM_SHARDS") != nullptr) {
    std::printf("note: ignoring BLAM_SHARDS for the fixed 4-shard scenario\n");
    unsetenv("BLAM_SHARDS");
  }
  if (argc >= 2 && std::strcmp(argv[1], "--fresh") == 0) return run_fresh();
  if (argc >= 3 && std::strcmp(argv[1], "--abort-at-epoch") == 0) {
    const int epoch = std::atoi(argv[2]);
    if (epoch < 1 || epoch >= kEpochs) {
      std::fprintf(stderr, "error: --abort-at-epoch wants 1..%d\n", kEpochs - 1);
      return 2;
    }
    return run_abort(epoch);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--resume") == 0) return run_resume();
  if (argc >= 2) {
    std::fprintf(stderr, "usage: %s [--fresh | --abort-at-epoch N | --resume]\n", argv[0]);
    return 2;
  }
  return run_bench();
}
