// Fig. 6 — (a) avg utility, (b) PRR, and (c) avg latency under charging
// thresholds theta in {0.05, 0.5, 1.0} vs LoRaWAN, 500 nodes over 5 years.
// Paper shape: LoRaWAN's utility/PRR spread wide (min PRR 63.9%); H-50
// improves avg utility (up to +39%) and PRR (up to +54%); LoRaWAN's
// delivered latency stays low (<=35 s) while H-50 trades latency (~247 s at
// w_b = 1) for battery lifespan; H-5 loses packets to its tiny cap.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  const int nodes = scaled(500, 200);
  const double years = scaled(5.0, 1.0);
  banner("Fig. 6 - utility / PRR / latency vs charging threshold",
         "H-50 beats LoRaWAN on utility and PRR; latency is the configurable price");

  const ProtocolSweep sweep = run_protocol_sweep(nodes, years, /*seed=*/42);

  std::printf("\n%-10s %10s %10s %10s %10s %14s %16s\n", "protocol", "util_mean", "util_min",
              "prr_mean", "prr_min", "latency_pen_s", "latency_deliv_s");
  std::vector<std::vector<std::string>> rows;
  for (const auto& r : sweep.results) {
    std::printf("%-10s %10.4f %10.4f %10.4f %10.4f %14.2f %16.2f\n", r.label.c_str(),
                r.summary.utility_box.mean, r.summary.utility_box.min, r.summary.prr_box.mean,
                r.summary.prr_box.min, r.summary.mean_latency_s,
                r.summary.mean_delivered_latency_s);
    rows.push_back({r.label, CsvWriter::cell(r.summary.utility_box.mean),
                    CsvWriter::cell(r.summary.utility_box.min),
                    CsvWriter::cell(r.summary.prr_box.mean),
                    CsvWriter::cell(r.summary.prr_box.min),
                    CsvWriter::cell(r.summary.mean_latency_s),
                    CsvWriter::cell(r.summary.mean_delivered_latency_s),
                    CsvWriter::cell(r.summary.max_delivered_latency_s)});
  }
  write_csv("fig6_network_performance",
            {"protocol", "utility_mean", "utility_min", "prr_mean", "prr_min",
             "latency_penalized_s", "latency_delivered_s", "latency_delivered_max_s"},
            rows);

  const auto& lorawan = sweep.results[0].summary;
  const auto& h50 = sweep.results[2].summary;
  std::printf("\nH-50 vs LoRaWAN: utility %+.1f%% (paper: up to +39%%), mean PRR %+.1f%% "
              "(paper: up to +54%% at the min), delivered latency %.0f s vs %.0f s "
              "(paper: 247 s vs <=35 s)\n",
              100.0 * (h50.utility_box.mean / lorawan.utility_box.mean - 1.0),
              100.0 * (h50.prr_box.mean / lorawan.prr_box.mean - 1.0),
              h50.mean_delivered_latency_s, lorawan.mean_delivered_latency_s);
  return 0;
}
