// Ablation — the design knobs DESIGN.md calls out:
//   (1) w_b sweep: the paper states "latency is configurable by the weight
//       w_b; low values of w_b result in lower latency at the cost of a
//       lower battery lifespan" — regenerate that trade-off curve.
//   (2) utility-function sweep: the protocol is parametric in mu; compare
//       linear (Eq. 16), exponential and step utilities at w_b = 1.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  const int nodes = scaled(300, 120);
  const double days = scaled(365.0, 120.0);
  banner("Ablation - w_b sweep and utility-function sweep (H-50)",
         "lower w_b -> lower latency but faster degradation; any monotone utility works");

  const std::uint64_t seed = 42;
  const auto trace = build_shared_trace(lorawan_scenario(nodes, seed));
  const Time duration = Time::from_days(days);

  std::printf("\n(1) w_b sweep\n");
  std::printf("%6s %14s %12s %12s %12s\n", "w_b", "latency_del_s", "utility", "deg_mean",
              "retx");
  const std::vector<double> wbs{0.0, 0.25, 0.5, 0.75, 1.0};
  std::vector<ScenarioCell> wb_cells;
  for (double w_b : wbs) {
    ScenarioConfig config = blam_scenario(nodes, 0.5, seed);
    config.w_b = w_b;
    wb_cells.push_back({std::move(config), trace});
  }
  const std::vector<ExperimentResult> wb_results =
      run_scenarios(wb_cells, duration, scenario_campaign_options());
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < wbs.size(); ++i) {
    const ExperimentResult& r = wb_results[i];
    std::printf("%6.2f %14.2f %12.4f %12.6f %12.3f\n", wbs[i],
                r.summary.mean_delivered_latency_s, r.summary.utility_box.mean,
                r.summary.degradation_box.mean, r.summary.mean_retx);
    rows.push_back({CsvWriter::cell(wbs[i]),
                    CsvWriter::cell(r.summary.mean_delivered_latency_s),
                    CsvWriter::cell(r.summary.utility_box.mean),
                    CsvWriter::cell(r.summary.degradation_box.mean),
                    CsvWriter::cell(r.summary.mean_retx)});
  }
  write_csv("ablation_wb", {"w_b", "latency_delivered_s", "utility_mean", "deg_mean", "retx"},
            rows);

  std::printf("\n(2) utility-function sweep (w_b = 1)\n");
  std::printf("%-14s %14s %12s %12s\n", "utility", "latency_del_s", "prr", "deg_mean");
  const std::vector<std::pair<UtilityKind, const char*>> utilities{
      {UtilityKind::kLinear, "linear"},
      {UtilityKind::kExponential, "exponential"},
      {UtilityKind::kStep, "step"}};
  std::vector<ScenarioCell> u_cells;
  for (const auto& [kind, name] : utilities) {
    ScenarioConfig config = blam_scenario(nodes, 0.5, seed);
    config.utility = kind;
    u_cells.push_back({std::move(config), trace});
  }
  const std::vector<ExperimentResult> u_results =
      run_scenarios(u_cells, duration, scenario_campaign_options());
  std::vector<std::vector<std::string>> urows;
  for (std::size_t i = 0; i < utilities.size(); ++i) {
    const ExperimentResult& r = u_results[i];
    const char* name = utilities[i].second;
    std::printf("%-14s %14.2f %12.4f %12.6f\n", name, r.summary.mean_delivered_latency_s,
                r.summary.prr_box.mean, r.summary.degradation_box.mean);
    urows.push_back({name, CsvWriter::cell(r.summary.mean_delivered_latency_s),
                     CsvWriter::cell(r.summary.prr_box.mean),
                     CsvWriter::cell(r.summary.degradation_box.mean)});
  }
  write_csv("ablation_utility", {"utility", "latency_delivered_s", "prr_mean", "deg_mean"},
            urows);
  return 0;
}
