// Fig. 8 — "Network Battery lifespan": days from deployment until the first
// battery reaches EoL, for LoRaWAN vs H-50 vs H-50C (100 nodes). Paper:
// LoRaWAN 2980 days (8.1 y); H-50 ~13.86 y (+69.7%, i.e. LoRaWAN is 41.09%
// lower); H-50C close to H-50.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  const int nodes = scaled(100, 40);
  banner("Fig. 8 - network battery lifespan (first EoL)",
         "LoRaWAN ~2980 days (8.1 y); H-50 ~13.9 y (+69.7%); H-50C similar to H-50");

  const std::uint64_t seed = 42;
  const auto trace = build_shared_trace(lorawan_scenario(nodes, seed));
  const Time step = Time::from_days(30.44);
  const Time max_duration = Time::from_days(365.0 * 25.0);

  const std::vector<ScenarioCell> cells{{lorawan_scenario(nodes, seed), trace},
                                        {blam_scenario(nodes, 0.5, seed), trace},
                                        {theta_only_scenario(nodes, 0.5, seed), trace}};
  std::printf("running %zu protocols until EoL ...\n", cells.size());
  // campaign_options() adds the watchdog/retry/quarantine hardening; with
  // BLAM_JOURNAL set, a killed run resumes here skipping completed cells.
  const std::vector<LifespanResult> results =
      run_lifespans(cells, max_duration, step, campaign_options());

  std::printf("\n%-10s %12s %10s %12s\n", "protocol", "days", "years", "vs LoRaWAN");
  std::vector<std::vector<std::string>> rows;
  const double base_days = results[0].lifespan.days();
  for (const auto& r : results) {
    const double days = r.lifespan.days();
    std::printf("%-10s %12.0f %10.2f %+11.1f%%%s\n", r.label.c_str(), days, days / 365.0,
                100.0 * (days / base_days - 1.0), r.reached_eol ? "" : "  [not reached]");
    rows.push_back({r.label, CsvWriter::cell(days), CsvWriter::cell(days / 365.0),
                    CsvWriter::cell(100.0 * (days / base_days - 1.0))});
  }
  write_csv("fig8_lifespan", {"protocol", "days", "years", "improvement_pct"}, rows);

  std::printf("\npaper: H-50 improves battery lifespan by up to 69.7%% over LoRaWAN\n");
  return 0;
}
