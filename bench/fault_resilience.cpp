// Fault-resilience sweep: projected minimum battery lifespan of vanilla
// BLAM (H-50) versus BLAM with the graceful-degradation extensions
// (stale-feedback ramp + ACK-failure backoff) under daily gateway outages
// of increasing length.
//
// During an outage every confirmed uplink burns the full 8-transmission
// ladder into a dead gateway; the backoff collapses that to roughly one
// probe per period, and the staleness ramp pushes Algorithm 1 back toward
// the conservative high-DIF-weight regime while w_u is unrefreshable. Both
// effects cut deep battery cycling exactly when feedback is unavailable,
// which is what protects the minimum (first-EoL) lifespan.
//
// Lifespans are linear projections from a fixed-duration run:
//   years_to_eol = eol_threshold * simulated_years / max_degradation.
//
// A second, service-level section replays synthetic SoC traces through the
// ReportFaultChannel into a hardened DegradationService across a
// loss x reorder x corruption grid, measuring the w_u and min-lifespan
// error against an in-order oracle, and proves the ledger checkpoint is a
// bit-exact kill/restart point. Results land in BENCH_fault.json.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "core/degradation_service.hpp"
#include "fault/fault_plan.hpp"
#include "fault/report_channel.hpp"

namespace {

using namespace blam;

struct SyntheticReport {
  std::uint16_t seq{0};
  std::uint8_t crc{0};
  std::vector<SocSample> samples;
};

/// Deterministic per-node SoC traces (offset sinusoids, 15-min sampling)
/// chunked into two-sample reports, exactly like a node's piggy-backed
/// feed. Dense sampling relative to the cycle period keeps the rainflow
/// extremes robust to isolated lost reports.
std::vector<std::vector<SyntheticReport>> build_report_feeds(int n_nodes, double days,
                                                             Time step) {
  std::vector<std::vector<SyntheticReport>> feeds(static_cast<std::size_t>(n_nodes));
  const auto total = static_cast<std::int64_t>(days * 24.0 * 60.0 / step.minutes());
  for (int u = 0; u < n_nodes; ++u) {
    const double period_min = 360.0 + 13.0 * u;
    const double phase = 0.37 * u;
    const double depth = 0.20 + 0.01 * u;  // deeper cycling on later nodes
    std::vector<SocSample> trace;
    trace.reserve(static_cast<std::size_t>(total) + 1);
    for (std::int64_t i = 0; i <= total; ++i) {
      const Time t = step * i;
      const double soc =
          0.55 + depth * std::sin(2.0 * 3.14159265358979323846 * t.minutes() / period_min + phase);
      trace.push_back({t, soc});
    }
    auto& reports = feeds[static_cast<std::size_t>(u)];
    for (std::size_t i = 0; i + 1 < trace.size(); i += 2) {
      SyntheticReport r;
      r.seq = static_cast<std::uint16_t>(reports.size() + 1);
      r.samples = {trace[i], trace[i + 1]};
      r.crc = report_checksum(r.seq, r.samples);
      reports.push_back(std::move(r));
    }
  }
  return feeds;
}

/// Round-robin in-order replay straight into the ledger (the oracle path).
void replay_in_order(const std::vector<std::vector<SyntheticReport>>& feeds,
                     DegradationService& service) {
  std::size_t longest = 0;
  for (const auto& f : feeds) longest = std::max(longest, f.size());
  for (std::size_t i = 0; i < longest; ++i) {
    for (std::size_t u = 0; u < feeds.size(); ++u) {
      if (i >= feeds[u].size()) continue;
      const SyntheticReport& r = feeds[u][i];
      service.ingest_report(static_cast<std::uint32_t>(u), r.seq, r.crc, r.samples);
    }
  }
}

}  // namespace

int main() {
  using namespace blam;
  using namespace blam::bench;

  const int nodes = scaled(100, 30);
  const double days = scaled(365.0, 60.0);
  const std::uint64_t seed = 42;
  banner("fault resilience - min lifespan under daily gateway outages",
         "staleness-aware fallback + ACK backoff beat vanilla BLAM on min lifespan "
         "once the gateway is dark >= 6 h/day");

  const auto trace = build_shared_trace(blam_scenario(nodes, 0.5, seed));
  const Time duration = Time::from_days(days);
  const double sim_years = days / 365.25;

  struct Variant {
    const char* name;
    double stale_k;
    bool backoff;
  };
  const std::vector<Variant> variants = {
      {"H-50", 0.0, false},
      {"H-50R", 3.0, true},  // resilient: staleness ramp (k=3) + backoff
  };
  const std::vector<double> outage_hours = {0.0, 6.0, 12.0};
  const std::vector<double> stale_sweep = {0.0, 1.0, 3.0, 7.0};  // secondary k sweep

  std::printf("%-7s %9s %8s %9s %9s %9s %11s %12s %12s\n", "variant", "outage_h", "PRR",
              "lost_out", "recov_s", "w_age_h", "max_degr", "min_life_y", "tx_energy_J");
  std::vector<std::vector<std::string>> rows;

  auto run_cell = [&](const char* name, double outage_h, double start_h, double stale_k,
                      bool backoff) {
    ScenarioConfig c = blam_scenario(nodes, 0.5, seed);
    c.stale_feedback_k = stale_k;
    c.ack_failure_backoff = backoff;
    if (outage_h > 0.0) {
      c.faults.outage_daily_start = Time::from_hours(start_h);
      c.faults.outage_daily_duration = Time::from_hours(outage_h);
    }
    const ExperimentResult r = run_scenario(c, duration, trace);
    const double min_life_y = r.summary.max_degradation > 0.0
                                  ? 0.2 * sim_years / r.summary.max_degradation
                                  : 0.0;
    std::printf("%-7s %9.1f %8.4f %9llu %9.0f %9.1f %11.6f %12.2f %12.2f\n", name, outage_h,
                r.summary.mean_prr, static_cast<unsigned long long>(r.summary.lost_in_outage),
                r.summary.mean_recovery_s, r.summary.mean_w_age_s / 3600.0,
                r.summary.max_degradation, min_life_y, r.summary.total_tx_energy.joules());
    rows.push_back({name, CsvWriter::cell(outage_h), CsvWriter::cell(stale_k),
                    CsvWriter::cell(backoff ? 1.0 : 0.0), CsvWriter::cell(r.summary.mean_prr),
                    CsvWriter::cell(static_cast<double>(r.summary.lost_in_outage)),
                    CsvWriter::cell(r.summary.mean_recovery_s),
                    CsvWriter::cell(r.summary.mean_w_age_s),
                    CsvWriter::cell(r.summary.max_degradation), CsvWriter::cell(min_life_y),
                    CsvWriter::cell(r.summary.total_tx_energy.joules())});
    return min_life_y;
  };

  double vanilla_6h = 0.0;
  double resilient_6h = 0.0;
  for (const Variant& v : variants) {
    for (double h : outage_hours) {
      // Midday outages (09:00 + duration) leave the nightly dissemination
      // recompute reachable, so w_u stays fresh; this block isolates the
      // ACK-failure backoff.
      const double life = run_cell(v.name, h, 9.0, v.stale_k, v.backoff);
      if (h == 6.0 && !v.backoff) vanilla_6h = life;
      if (h == 6.0 && v.backoff) resilient_6h = life;
    }
  }

  // Secondary sweep: a prolonged backhaul failure — the gateway is reachable
  // only 4 h/day and the outage covers every midnight dissemination instant,
  // so w_u is never refreshed and only the staleness ramp (age > k
  // dissemination periods => decay toward the conservative w = 1 regime)
  // restores battery-protective behaviour. Backoff held on; k = 0 disables
  // the ramp.
  std::printf("\nstaleness-k sweep, backhaul down 20 h/day across dissemination instants:\n");
  for (double k : stale_sweep) {
    char name[16];
    std::snprintf(name, sizeof name, "k=%.0f", k);
    run_cell(name, 20.0, 20.0, k, true);
  }

  write_csv("fault_resilience",
            {"variant", "outage_h", "stale_k", "backoff", "mean_prr", "lost_in_outage",
             "mean_recovery_s", "mean_w_age_s", "max_degradation", "min_lifespan_years",
             "tx_energy_j"},
            rows);

  std::printf("\nmin lifespan at 6 h/day outage: vanilla %.2f y vs resilient %.2f y (%+.1f%%)\n",
              vanilla_6h, resilient_6h, 100.0 * (resilient_6h / vanilla_6h - 1.0));
  std::printf("note: at 12 h/day vanilla's projected lifespan is inflated by collapse — its\n"
              "batteries sit drained (PRR 0.34), and a battery stored empty ages slowly;\n"
              "the resilient variant keeps both delivery and lifespan.\n");

  // ---- feedback-pipe resilience: ledger vs in-order oracle ----------------
  const int feed_nodes = 20;
  const double feed_days = scaled(180.0, 90.0);
  const Time feed_step = Time::from_minutes(15.0);
  const double feed_years = feed_days / 365.25;
  const DegradationModel feed_model{};
  const auto feeds = build_report_feeds(feed_nodes, feed_days, feed_step);
  const Time feed_end = Time::from_days(feed_days) + feed_step;

  DegradationService oracle{feed_model, 25.0};
  replay_in_order(feeds, oracle);
  oracle.recompute(feed_end);
  const double oracle_life =
      oracle.max_degradation() > 0.0 ? 0.2 * feed_years / oracle.max_degradation() : 0.0;

  std::printf("\nfeedback-pipe grid: %d nodes, %.0f days of 15-min SoC samples, "
              "oracle min lifespan %.2f y\n",
              feed_nodes, feed_days, oracle_life);
  std::printf("%6s %8s %8s %10s %10s %13s %9s %8s\n", "loss", "reorder", "corrupt", "w_err_avg",
              "w_err_max", "life_err_pct", "rejected", "bridged");

  const std::vector<double> loss_grid = {0.0, 0.1, 0.2, 0.3};
  const std::vector<double> reorder_grid = {0.0, 0.1, 0.2};
  const std::vector<double> corrupt_grid = {0.0, 0.05};
  std::vector<std::vector<std::string>> feed_rows;
  std::string cells_json;
  bool within_5pct = true;
  for (const double loss : loss_grid) {
    for (const double reorder : reorder_grid) {
      for (const double corrupt : corrupt_grid) {
        FaultPlanConfig fc;
        fc.report_loss = loss;
        fc.report_reorder = reorder;
        fc.report_corrupt = corrupt;
        FaultPlan plan{fc, Rng{seed, 0x5eb0}};
        ReportFaultChannel channel{plan};
        DegradationService service{feed_model, 25.0};
        const ReportFaultChannel::Sink sink =
            [&service](std::uint32_t node_id, std::uint16_t report_seq, std::uint8_t report_crc,
                       std::span<const SocSample> samples) {
              service.ingest_report(node_id, report_seq, report_crc, samples);
            };
        std::size_t longest = 0;
        for (const auto& f : feeds) longest = std::max(longest, f.size());
        for (std::size_t i = 0; i < longest; ++i) {
          for (std::size_t u = 0; u < feeds.size(); ++u) {
            if (i >= feeds[u].size()) continue;
            const SyntheticReport& r = feeds[u][i];
            channel.deliver(static_cast<std::uint32_t>(u), r.seq, r.crc, r.samples, sink);
          }
        }
        channel.flush(sink);
        service.recompute(feed_end);

        double w_err_sum = 0.0;
        double w_err_max = 0.0;
        for (int u = 0; u < feed_nodes; ++u) {
          const auto id = static_cast<std::uint32_t>(u);
          const double err =
              std::fabs(service.normalized_degradation(id) - oracle.normalized_degradation(id));
          w_err_sum += err;
          w_err_max = std::max(w_err_max, err);
        }
        const double w_err_avg = w_err_sum / feed_nodes;
        const double life = service.max_degradation() > 0.0
                                ? 0.2 * feed_years / service.max_degradation()
                                : 0.0;
        const double life_err_pct =
            oracle_life > 0.0 ? 100.0 * std::fabs(life / oracle_life - 1.0) : 0.0;
        const LedgerCounters& lc = service.counters();
        // A corrupted report is checksum-rejected, so it is a lost report:
        // corruption counts toward the effective loss the 5% bound covers.
        if (loss + corrupt <= 0.2 && life_err_pct > 5.0) within_5pct = false;
        std::printf("%6.2f %8.2f %8.2f %10.5f %10.5f %13.2f %9llu %8llu\n", loss, reorder,
                    corrupt, w_err_avg, w_err_max, life_err_pct,
                    static_cast<unsigned long long>(lc.reports_checksum_rejected),
                    static_cast<unsigned long long>(lc.gaps_bridged));
        feed_rows.push_back({CsvWriter::cell(loss), CsvWriter::cell(reorder),
                             CsvWriter::cell(corrupt), CsvWriter::cell(w_err_avg),
                             CsvWriter::cell(w_err_max), CsvWriter::cell(life_err_pct),
                             CsvWriter::cell(static_cast<double>(lc.reports_checksum_rejected)),
                             CsvWriter::cell(static_cast<double>(lc.gaps_bridged))});
        char cell[256];
        std::snprintf(cell, sizeof cell,
                      "%s    {\"loss\": %.2f, \"reorder\": %.2f, \"corrupt\": %.2f, "
                      "\"w_err_avg\": %.6f, \"w_err_max\": %.6f, \"life_err_pct\": %.3f}",
                      cells_json.empty() ? "" : ",\n", loss, reorder, corrupt, w_err_avg,
                      w_err_max, life_err_pct);
        cells_json += cell;
      }
    }
  }
  write_csv("fault_feedback_error",
            {"loss", "reorder", "corrupt", "w_err_avg", "w_err_max", "life_err_pct",
             "checksum_rejected", "gaps_bridged"},
            feed_rows);

  // ---- checkpoint kill/restart: bit-exact ledger recovery -----------------
  // Replay the first half with a deterministic swap pattern (every 7th pair
  // arrives out of order), cut mid-swap so every node has a report parked in
  // its reassembly buffer, checkpoint, restore into a fresh service, feed
  // both the identical second half, and demand bit-exact agreement.
  const auto order_at = [](std::size_t i) -> std::size_t {
    if (i % 7 == 3) return i + 1;
    if (i % 7 == 4) return i - 1;
    return i;
  };
  std::size_t shortest = feeds.empty() ? 0 : feeds.front().size();
  for (const auto& f : feeds) shortest = std::min(shortest, f.size());
  const std::size_t half = shortest / 2;
  const std::size_t cut = half - (half % 7) + 4;  // last delivered index was a held i+1 swap

  DegradationService survivor{feed_model, 25.0};
  const auto deliver_range = [&](DegradationService& svc, std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i) {
      for (std::size_t u = 0; u < feeds.size(); ++u) {
        const SyntheticReport& r = feeds[u][order_at(i)];
        svc.ingest_report(static_cast<std::uint32_t>(u), r.seq, r.crc, r.samples);
      }
    }
  };
  deliver_range(survivor, 0, cut);
  std::stringstream checkpoint;
  survivor.checkpoint(checkpoint);
  DegradationService restarted{feed_model, 25.0};
  restarted.restore(checkpoint);
  deliver_range(survivor, cut, shortest - 1);
  deliver_range(restarted, cut, shortest - 1);
  survivor.recompute(feed_end);
  restarted.recompute(feed_end);
  bool checkpoint_exact = survivor.max_degradation() == restarted.max_degradation();
  for (int u = 0; u < feed_nodes; ++u) {
    const auto id = static_cast<std::uint32_t>(u);
    checkpoint_exact = checkpoint_exact &&
                       survivor.degradation(id) == restarted.degradation(id) &&
                       survivor.normalized_degradation(id) == restarted.normalized_degradation(id);
  }
  std::printf("\ncheckpoint kill/restart mid-reorder: %s\n",
              checkpoint_exact ? "bit-exact" : "MISMATCH");

  namespace fs = std::filesystem;
  fs::path json_path{"BENCH_fault.json"};
  if (const char* dir = std::getenv("BLAM_OUT_DIR"); dir != nullptr && dir[0] != '\0') {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (!ec) json_path = fs::path{dir} / json_path;
  }
  std::ofstream json{json_path};
  char head[512];
  std::snprintf(head, sizeof head,
                "{\n"
                "  \"feed_nodes\": %d,\n"
                "  \"feed_days\": %.1f,\n"
                "  \"oracle_min_lifespan_years\": %.4f,\n"
                "  \"lifespan_within_5pct_up_to_20pct_loss\": %s,\n"
                "  \"checkpoint_exact\": %s,\n"
                "  \"cells\": [\n",
                feed_nodes, feed_days, oracle_life, within_5pct ? "true" : "false",
                checkpoint_exact ? "true" : "false");
  json << head << cells_json << "\n  ]\n}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.string().c_str());
    return 1;
  }
  std::printf("[json] wrote %s\n", json_path.string().c_str());
  return within_5pct && checkpoint_exact ? 0 : 1;
}
