// Fault-resilience sweep: projected minimum battery lifespan of vanilla
// BLAM (H-50) versus BLAM with the graceful-degradation extensions
// (stale-feedback ramp + ACK-failure backoff) under daily gateway outages
// of increasing length.
//
// During an outage every confirmed uplink burns the full 8-transmission
// ladder into a dead gateway; the backoff collapses that to roughly one
// probe per period, and the staleness ramp pushes Algorithm 1 back toward
// the conservative high-DIF-weight regime while w_u is unrefreshable. Both
// effects cut deep battery cycling exactly when feedback is unavailable,
// which is what protects the minimum (first-EoL) lifespan.
//
// Lifespans are linear projections from a fixed-duration run:
//   years_to_eol = eol_threshold * simulated_years / max_degradation.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  const int nodes = scaled(100, 30);
  const double days = scaled(365.0, 60.0);
  const std::uint64_t seed = 42;
  banner("fault resilience - min lifespan under daily gateway outages",
         "staleness-aware fallback + ACK backoff beat vanilla BLAM on min lifespan "
         "once the gateway is dark >= 6 h/day");

  const auto trace = build_shared_trace(blam_scenario(nodes, 0.5, seed));
  const Time duration = Time::from_days(days);
  const double sim_years = days / 365.25;

  struct Variant {
    const char* name;
    double stale_k;
    bool backoff;
  };
  const std::vector<Variant> variants = {
      {"H-50", 0.0, false},
      {"H-50R", 3.0, true},  // resilient: staleness ramp (k=3) + backoff
  };
  const std::vector<double> outage_hours = {0.0, 6.0, 12.0};
  const std::vector<double> stale_sweep = {0.0, 1.0, 3.0, 7.0};  // secondary k sweep

  std::printf("%-7s %9s %8s %9s %9s %9s %11s %12s %12s\n", "variant", "outage_h", "PRR",
              "lost_out", "recov_s", "w_age_h", "max_degr", "min_life_y", "tx_energy_J");
  std::vector<std::vector<std::string>> rows;

  auto run_cell = [&](const char* name, double outage_h, double start_h, double stale_k,
                      bool backoff) {
    ScenarioConfig c = blam_scenario(nodes, 0.5, seed);
    c.stale_feedback_k = stale_k;
    c.ack_failure_backoff = backoff;
    if (outage_h > 0.0) {
      c.faults.outage_daily_start = Time::from_hours(start_h);
      c.faults.outage_daily_duration = Time::from_hours(outage_h);
    }
    const ExperimentResult r = run_scenario(c, duration, trace);
    const double min_life_y = r.summary.max_degradation > 0.0
                                  ? 0.2 * sim_years / r.summary.max_degradation
                                  : 0.0;
    std::printf("%-7s %9.1f %8.4f %9llu %9.0f %9.1f %11.6f %12.2f %12.2f\n", name, outage_h,
                r.summary.mean_prr, static_cast<unsigned long long>(r.summary.lost_in_outage),
                r.summary.mean_recovery_s, r.summary.mean_w_age_s / 3600.0,
                r.summary.max_degradation, min_life_y, r.summary.total_tx_energy.joules());
    rows.push_back({name, CsvWriter::cell(outage_h), CsvWriter::cell(stale_k),
                    CsvWriter::cell(backoff ? 1.0 : 0.0), CsvWriter::cell(r.summary.mean_prr),
                    CsvWriter::cell(static_cast<double>(r.summary.lost_in_outage)),
                    CsvWriter::cell(r.summary.mean_recovery_s),
                    CsvWriter::cell(r.summary.mean_w_age_s),
                    CsvWriter::cell(r.summary.max_degradation), CsvWriter::cell(min_life_y),
                    CsvWriter::cell(r.summary.total_tx_energy.joules())});
    return min_life_y;
  };

  double vanilla_6h = 0.0;
  double resilient_6h = 0.0;
  for (const Variant& v : variants) {
    for (double h : outage_hours) {
      // Midday outages (09:00 + duration) leave the nightly dissemination
      // recompute reachable, so w_u stays fresh; this block isolates the
      // ACK-failure backoff.
      const double life = run_cell(v.name, h, 9.0, v.stale_k, v.backoff);
      if (h == 6.0 && !v.backoff) vanilla_6h = life;
      if (h == 6.0 && v.backoff) resilient_6h = life;
    }
  }

  // Secondary sweep: a prolonged backhaul failure — the gateway is reachable
  // only 4 h/day and the outage covers every midnight dissemination instant,
  // so w_u is never refreshed and only the staleness ramp (age > k
  // dissemination periods => decay toward the conservative w = 1 regime)
  // restores battery-protective behaviour. Backoff held on; k = 0 disables
  // the ramp.
  std::printf("\nstaleness-k sweep, backhaul down 20 h/day across dissemination instants:\n");
  for (double k : stale_sweep) {
    char name[16];
    std::snprintf(name, sizeof name, "k=%.0f", k);
    run_cell(name, 20.0, 20.0, k, true);
  }

  write_csv("fault_resilience",
            {"variant", "outage_h", "stale_k", "backoff", "mean_prr", "lost_in_outage",
             "mean_recovery_s", "mean_w_age_s", "max_degradation", "min_lifespan_years",
             "tx_energy_j"},
            rows);

  std::printf("\nmin lifespan at 6 h/day outage: vanilla %.2f y vs resilient %.2f y (%+.1f%%)\n",
              vanilla_6h, resilient_6h, 100.0 * (resilient_6h / vanilla_6h - 1.0));
  std::printf("note: at 12 h/day vanilla's projected lifespan is inflated by collapse — its\n"
              "batteries sit drained (PRR 0.34), and a battery stored empty ages slowly;\n"
              "the resilient variant keeps both delivery and lifespan.\n");
  return 0;
}
