// Fig. 7 — "Max degradation (%) of the nodes": maximum battery degradation
// in the network at the end of every month, simulated until the first node
// reaches 20% (EoL), for LoRaWAN vs H-50 vs H-50C (theta cap without window
// selection), 100 nodes. Paper shape: LoRaWAN degrades fastest and hits EoL
// around month ~98 (8.1 years); H-50 and H-50C stay well below it.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  const int nodes = scaled(100, 40);
  const double max_years = 20.0;
  banner("Fig. 7 - monthly max degradation until first EoL",
         "LoRaWAN degrades fastest (EoL ~8.1 y); H-50/H-50C far slower");

  const std::uint64_t seed = 42;
  const auto trace = build_shared_trace(lorawan_scenario(nodes, seed));
  const Time step = Time::from_days(30.44);
  const Time max_duration = Time::from_days(365.0 * max_years);

  const std::vector<ScenarioCell> cells{{lorawan_scenario(nodes, seed), trace},
                                        {blam_scenario(nodes, 0.5, seed), trace},
                                        {theta_only_scenario(nodes, 0.5, seed), trace}};
  std::printf("running %zu protocols until EoL (up to %.0f years) ...\n", cells.size(),
              max_years);
  const std::vector<LifespanResult> results =
      run_lifespans(cells, max_duration, step, campaign_options());

  std::printf("\n%-8s", "month");
  for (const auto& r : results) std::printf(" %12s", r.label.c_str());
  std::printf("\n");

  std::size_t longest = 0;
  for (const auto& r : results) {
    longest = std::max(longest, r.max_degradation_series.size());
  }
  std::vector<std::vector<std::string>> rows;
  for (std::size_t m = 0; m < longest; ++m) {
    std::vector<std::string> row{CsvWriter::cell(static_cast<std::int64_t>(m + 1))};
    const bool print = (m + 1) % 6 == 0 || m == 0 || m + 1 == longest;
    if (print) std::printf("%-8zu", m + 1);
    for (const auto& r : results) {
      if (m < r.max_degradation_series.size()) {
        if (print) std::printf(" %12.4f", r.max_degradation_series[m]);
        row.push_back(CsvWriter::cell(r.max_degradation_series[m]));
      } else {
        if (print) std::printf(" %12s", "EOL");
        row.push_back("");
      }
    }
    if (print) std::printf("\n");
    rows.push_back(row);
  }
  write_csv("fig7_lifespan_trace", {"month", "LoRaWAN", "H-50", "H-50C"}, rows);

  std::printf("\nfirst EoL: ");
  for (const auto& r : results) {
    std::printf("%s=%.0f days (%.2f y)%s  ", r.label.c_str(), r.lifespan.days(),
                r.lifespan.days() / 365.0, r.reached_eol ? "" : " [not reached]");
  }
  std::printf("\n");
  return 0;
}
