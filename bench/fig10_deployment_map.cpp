// Fig. 10 — "Deployment map": the paper shows the physical placement of its
// 10-node indoor testbed. The simulation equivalent is the generated
// topology: this binary dumps node and gateway coordinates, per-node link
// loss, assigned SF and sampling period as CSV (plottable as the map), for
// both the testbed layout and the large-scale disk.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "net/network.hpp"

namespace {

struct LayoutDump {
  std::vector<std::vector<std::string>> rows;
  std::size_t n_nodes{0};
  std::size_t n_gateways{0};
};

// Builds the layout rows only; the CSVs are written by the joining thread
// (CsvWriter instances must not be shared with sweep workers).
LayoutDump dump(const blam::ScenarioConfig& config) {
  using namespace blam;
  Network network{config};
  LayoutDump out;
  for (const auto& gw : network.gateways()) {
    out.rows.push_back({"gateway", CsvWriter::cell(static_cast<std::int64_t>(gw->id())),
                        CsvWriter::cell(gw->position().x_m), CsvWriter::cell(gw->position().y_m),
                        "", "", ""});
  }
  for (std::size_t i = 0; i < network.nodes().size(); ++i) {
    const Node& node = *network.nodes()[i];
    out.rows.push_back({"node", CsvWriter::cell(static_cast<std::uint64_t>(node.id())),
                        CsvWriter::cell(node.position().x_m),
                        CsvWriter::cell(node.position().y_m),
                        CsvWriter::cell(node.min_link_loss_db()), to_string(node.sf()),
                        CsvWriter::cell(node.period().minutes())});
  }
  out.n_nodes = network.nodes().size();
  out.n_gateways = network.gateways().size();
  return out;
}

}  // namespace

int main() {
  using namespace blam;
  using namespace blam::bench;
  banner("Fig. 10 - deployment layouts (testbed + large-scale)",
         "the paper's figure is the physical lab map; we dump the simulated layouts");

  // Testbed: 10 nodes in a 50 m lab.
  ScenarioConfig testbed = lorawan_scenario(10, 7);
  testbed.radius_m = 50.0;
  testbed.min_period = Time::from_minutes(10.0);
  testbed.max_period = Time::from_minutes(10.0);

  // Large-scale: the 5 km disk with distance-based SFs.
  ScenarioConfig large = lorawan_scenario(scaled(500, 100), 42);
  large.sf_assignment = SfAssignment::kDistanceBased;
  large.path_loss.shadowing_sigma_db = 6.0;

  const std::vector<std::pair<const char*, ScenarioConfig>> layouts{
      {"fig10_testbed_map", std::move(testbed)}, {"fig10_largescale_map", std::move(large)}};
  SweepRunner runner{sweep_options()};
  const std::vector<LayoutDump> dumps =
      runner.map(layouts.size(), [&](std::size_t i) { return dump(layouts[i].second); });

  for (std::size_t i = 0; i < layouts.size(); ++i) {
    write_csv(layouts[i].first, {"kind", "id", "x_m", "y_m", "min_loss_db", "sf", "period_min"},
              dumps[i].rows);
    std::printf("%s: %zu nodes, %zu gateway(s)\n", layouts[i].first, dumps[i].n_nodes,
                dumps[i].n_gateways);
  }
  return 0;
}
