// Fig. 10 — "Deployment map": the paper shows the physical placement of its
// 10-node indoor testbed. The simulation equivalent is the generated
// topology: this binary dumps node and gateway coordinates, per-node link
// loss, assigned SF and sampling period as CSV (plottable as the map), for
// both the testbed layout and the large-scale disk.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "net/network.hpp"

namespace {

void dump(const char* name, const blam::ScenarioConfig& config) {
  using namespace blam;
  using namespace blam::bench;
  Network network{config};
  std::vector<std::vector<std::string>> rows;
  for (const auto& gw : network.gateways()) {
    rows.push_back({"gateway", CsvWriter::cell(static_cast<std::int64_t>(gw->id())),
                    CsvWriter::cell(gw->position().x_m), CsvWriter::cell(gw->position().y_m),
                    "", "", ""});
  }
  for (std::size_t i = 0; i < network.nodes().size(); ++i) {
    const Node& node = *network.nodes()[i];
    rows.push_back({"node", CsvWriter::cell(static_cast<std::uint64_t>(node.id())),
                    CsvWriter::cell(node.position().x_m), CsvWriter::cell(node.position().y_m),
                    CsvWriter::cell(node.min_link_loss_db()), to_string(node.sf()),
                    CsvWriter::cell(node.period().minutes())});
  }
  write_csv(name, {"kind", "id", "x_m", "y_m", "min_loss_db", "sf", "period_min"}, rows);
  std::printf("%s: %zu nodes, %zu gateway(s)\n", name, network.nodes().size(),
              network.gateways().size());
}

}  // namespace

int main() {
  using namespace blam;
  using namespace blam::bench;
  banner("Fig. 10 - deployment layouts (testbed + large-scale)",
         "the paper's figure is the physical lab map; we dump the simulated layouts");

  // Testbed: 10 nodes in a 50 m lab.
  ScenarioConfig testbed = lorawan_scenario(10, 7);
  testbed.radius_m = 50.0;
  testbed.min_period = Time::from_minutes(10.0);
  testbed.max_period = Time::from_minutes(10.0);
  dump("fig10_testbed_map", testbed);

  // Large-scale: the 5 km disk with distance-based SFs.
  ScenarioConfig large = lorawan_scenario(scaled(500, 100), 42);
  large.sf_assignment = SfAssignment::kDistanceBased;
  large.path_loss.shadowing_sigma_db = 6.0;
  dump("fig10_largescale_map", large);
  return 0;
}
