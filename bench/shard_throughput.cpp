// Sharded-engine throughput: city-grid deployments (isolated collision
// domains under the audibility floor) run at shard counts 1/2/4/8, with the
// serial engine as the shards=1 baseline. Emits BENCH_shard.json plus a
// Fig-10-style city map (fig10_city_map.csv) colored by domain and shard.
//
// Host-core note: on a core-starved container, worker threads time-slice
// one core and wall clock cannot show the speedup, so each run also reports
// its CRITICAL PATH — the maximum per-shard busy CPU time (the standard
// conservative-PDES scalability metric). speedup_vs_serial is the serial
// run's busy time divided by the sharded run's critical path; on an
// unloaded S-core host the wall clock converges to the critical path.
//
// Bit-identity is not just asserted in tests: every run fingerprints the
// full per-node metric set (plus the compensated gateway counters and the
// disseminated w_u values) and the process exits nonzero if any shard
// count diverges from the serial engine.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "sim/shard_engine.hpp"

namespace {

using namespace blam;
using namespace blam::bench;

/// Gateways on a 12 km grid, nodes clustered within 1 km of their cell's
/// gateway, no shadowing: the nearest foreign gateway is >= 11 km out
/// (rx <= -145.7 dBm), under the -143 dBm audibility floor, so every cell
/// is an independent collision domain and the decomposition is exact.
ScenarioConfig city_scenario(int nodes, int gateways, std::uint64_t seed) {
  ScenarioConfig c = blam_scenario(nodes, /*theta=*/0.5, seed);
  c.n_gateways = gateways;
  c.gateway_grid_pitch_m = 12000.0;
  c.cluster_radius_m = 1000.0;
  c.interference_floor_dbm = -143.0;
  c.sf_assignment = SfAssignment::kDistanceBased;
  return c;
}

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (word >> (byte * 8)) & 0xffULL;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t bits(double v) {
  std::uint64_t out = 0;
  static_assert(sizeof out == sizeof v);
  std::memcpy(&out, &v, sizeof out);
  return out;
}

/// Digest of everything the committed figures could consume: per-node
/// counters and degradation state, disseminated w_u, and the (compensated)
/// gateway counters. events_executed is deliberately excluded — sharded
/// runs execute extra per-shard dissemination ticks.
std::uint64_t fingerprint(const ShardedNetwork& net) {
  std::uint64_t hash = 1469598103934665603ULL;
  const Metrics& m = net.metrics();
  for (std::size_t i = 0; i < m.node_count(); ++i) {
    const NodeMetrics& n = m.node(i);
    hash = fnv1a(hash, n.generated);
    hash = fnv1a(hash, n.delivered);
    hash = fnv1a(hash, n.tx_attempts);
    hash = fnv1a(hash, n.retx);
    hash = fnv1a(hash, bits(n.tx_energy.joules()));
    hash = fnv1a(hash, bits(n.utility_sum));
    hash = fnv1a(hash, bits(n.degradation));
    hash = fnv1a(hash, bits(n.final_soc));
    hash = fnv1a(hash, bits(net.w_for(static_cast<std::uint32_t>(i))));
  }
  const GatewayMetrics& g = m.gateway();
  hash = fnv1a(hash, g.arrivals);
  hash = fnv1a(hash, g.received);
  hash = fnv1a(hash, g.lost_interference);
  hash = fnv1a(hash, g.lost_under_sensitivity);
  hash = fnv1a(hash, g.acks_sent);
  return hash;
}

struct RunStats {
  int shards{1};
  int effective{1};
  double wall_s{0.0};
  double critical_s{0.0};
  std::uint64_t events{0};
  std::uint64_t digest{0};
};

RunStats run_once(const ScenarioConfig& base, int shards, double days) {
  ScenarioConfig config = base;
  config.shards = shards;
  ShardedNetwork net{config};
  const double cpu0 = thread_cpu_seconds();
  const auto wall0 = std::chrono::steady_clock::now();
  net.run_until(Time::from_days(days));
  RunStats out;
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
  // Serial delegate runs on this thread; sharded runs on worker threads.
  out.critical_s =
      net.serial() ? thread_cpu_seconds() - cpu0 : net.max_shard_busy_seconds();
  net.finalize_metrics();
  out.shards = shards;
  out.effective = net.plan().effective;
  out.events = net.events_executed();
  out.digest = fingerprint(net);
  return out;
}

struct Deployment {
  const char* name;
  int nodes;
  int gateways;
  double days;
};

void write_city_map() {
  // Fixed-size map (independent of BLAM_FULL) so the committed CSV is
  // byte-stable across laptop and paper-scale runs.
  const ScenarioConfig c = city_scenario(2000, 16, /*seed=*/42);
  const Rng root{c.seed, /*stream=*/0};
  const DeploymentPlan deployment = plan_deployment(c, root);
  const ShardPlan plan = plan_shards(c, deployment, /*requested=*/4);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t g = 0; g < deployment.gateway_positions.size(); ++g) {
    rows.push_back({"gateway", CsvWriter::cell(static_cast<std::uint64_t>(g)),
                    CsvWriter::cell(deployment.gateway_positions[g].x_m),
                    CsvWriter::cell(deployment.gateway_positions[g].y_m), "", "", "",
                    CsvWriter::cell(static_cast<std::int64_t>(plan.domain_of_gateway[g])),
                    CsvWriter::cell(static_cast<std::int64_t>(plan.shard_of_gateway[g]))});
  }
  for (std::size_t i = 0; i < deployment.nodes.size(); ++i) {
    const NodePlan& node = deployment.nodes[i];
    // A clustered node's domain is its strongest gateway's domain.
    std::size_t best = 0;
    for (std::size_t g = 1; g < node.losses_db.size(); ++g) {
      if (node.losses_db[g] < node.losses_db[best]) best = g;
    }
    rows.push_back({"node", CsvWriter::cell(static_cast<std::uint64_t>(i)),
                    CsvWriter::cell(node.position.x_m), CsvWriter::cell(node.position.y_m),
                    CsvWriter::cell(node.best_loss_db), to_string(node.sf),
                    CsvWriter::cell(node.period.minutes()),
                    CsvWriter::cell(static_cast<std::int64_t>(plan.domain_of_gateway[best])),
                    CsvWriter::cell(static_cast<std::int64_t>(plan.shard_of_node[i]))});
  }
  write_csv("fig10_city_map",
            {"kind", "id", "x_m", "y_m", "min_loss_db", "sf", "period_min", "domain", "shard"},
            rows);
}

}  // namespace

int main() {
  // The JSON's shard axis is fixed; a stray BLAM_SHARDS override would
  // silently bend every run onto one count.
  if (std::getenv("BLAM_SHARDS") != nullptr) {
    std::printf("note: ignoring BLAM_SHARDS for the fixed shard-count axis\n");
    unsetenv("BLAM_SHARDS");
  }
  banner("Sharded-engine throughput - conservative time-windowed parallel runs",
         "collision-domain shards reproduce the serial engine bit for bit while "
         "spreading the event load across workers");

  std::vector<Deployment> deployments{{"smoke", 2000, 16, 2.0}};
  if (full_scale()) {
    deployments.push_back({"city100k", 100000, 64, 2.0});
    deployments.push_back({"city1m", 1000000, 16, 1.0});
  } else {
    std::printf("scale: laptop smoke deployment only (BLAM_FULL=1 adds 100k and 1M nodes)\n");
  }
  const std::vector<int> shard_counts{1, 2, 4, 8};

  bool bit_identical = true;
  std::string json_deployments;
  for (const Deployment& dep : deployments) {
    std::printf("\n%s: %d nodes / %d gateways x %.1f days\n", dep.name, dep.nodes, dep.gateways,
                dep.days);
    std::printf("%8s %10s %10s %14s %16s %12s\n", "shards", "wall_s", "crit_s", "events",
                "ev/s(crit)", "speedup");
    const ScenarioConfig base = city_scenario(dep.nodes, dep.gateways, /*seed=*/42);
    double serial_critical = 0.0;
    std::uint64_t serial_digest = 0;
    std::string json_runs;
    for (const int shards : shard_counts) {
      const RunStats r = run_once(base, shards, dep.days);
      if (shards == 1) {
        serial_critical = r.critical_s;
        serial_digest = r.digest;
      } else if (r.digest != serial_digest) {
        bit_identical = false;
        std::fprintf(stderr, "error: %s at %d shards diverged from the serial engine\n",
                     dep.name, shards);
      }
      const double speedup = r.critical_s > 0.0 ? serial_critical / r.critical_s : 0.0;
      const double evps_wall = r.wall_s > 0.0 ? static_cast<double>(r.events) / r.wall_s : 0.0;
      const double evps_crit =
          r.critical_s > 0.0 ? static_cast<double>(r.events) / r.critical_s : 0.0;
      std::printf("%8d %10.2f %10.2f %14llu %16.0f %11.2fx\n", shards, r.wall_s, r.critical_s,
                  static_cast<unsigned long long>(r.events), evps_crit, speedup);
      char buf[512];
      std::snprintf(buf, sizeof buf,
                    "        {\"shards\": %d, \"effective_shards\": %d, \"wall_s\": %.3f, "
                    "\"critical_path_s\": %.3f, \"events_executed\": %llu, "
                    "\"events_per_s_wall\": %.0f, \"events_per_s_critical_path\": %.0f, "
                    "\"speedup_vs_serial\": %.3f}",
                    r.shards, r.effective, r.wall_s, r.critical_s,
                    static_cast<unsigned long long>(r.events), evps_wall, evps_crit, speedup);
      if (!json_runs.empty()) json_runs += ",\n";
      json_runs += buf;
    }
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\n"
                  "      \"name\": \"%s\",\n"
                  "      \"nodes\": %d,\n"
                  "      \"gateways\": %d,\n"
                  "      \"days\": %.1f,\n"
                  "      \"runs\": [\n",
                  dep.name, dep.nodes, dep.gateways, dep.days);
    if (!json_deployments.empty()) json_deployments += ",\n";
    json_deployments += buf;
    json_deployments += json_runs;
    json_deployments += "\n      ]\n    }";
  }

  write_city_map();

  namespace fs = std::filesystem;
  fs::path json_path{"BENCH_shard.json"};
  if (const char* dir = std::getenv("BLAM_OUT_DIR"); dir != nullptr && dir[0] != '\0') {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (!ec) json_path = fs::path{dir} / json_path;
  }
  std::ofstream json{json_path};
  json << "{\n"
       << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"metric_note\": \"critical_path_s is the max per-shard busy CPU time "
          "(serial: the run's own CPU time); speedup_vs_serial is computed on that "
          "basis because core-starved hosts time-slice the workers\",\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false") << ",\n"
       << "  \"deployments\": [\n"
       << json_deployments << "\n  ]\n}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.string().c_str());
    return 1;
  }
  std::printf("\n[json] wrote %s\n", json_path.string().c_str());
  return bit_identical ? 0 : 1;
}
