// Fig. 4 — "Forecast window selection": for LoRaWAN and H-5/H-50/H-100,
// the number of nodes that transmitted the majority of their packets in
// each forecast window. Paper shape: LoRaWAN always window 1 (index 0);
// the proposed MAC distributes nodes across the first ~4 windows.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  const int nodes = scaled(500, 200);
  const double years = scaled(5.0, 1.0);
  banner("Fig. 4 - majority forecast window per node",
         "LoRaWAN: all nodes in window 0; H-x: nodes spread over the first ~4 windows");

  const ProtocolSweep sweep = run_protocol_sweep(nodes, years, /*seed=*/42);

  std::size_t max_w = 1;
  for (const auto& r : sweep.results) max_w = std::max(max_w, r.window_histogram.size());
  const std::size_t shown = std::min<std::size_t>(max_w, 8);

  std::printf("\n%-10s", "protocol");
  for (std::size_t w = 0; w < shown; ++w) std::printf("   w%-4zu", w);
  std::printf("  beyond\n");

  std::vector<std::vector<std::string>> rows;
  for (const auto& r : sweep.results) {
    std::printf("%-10s", r.label.c_str());
    int beyond = 0;
    for (std::size_t w = 0; w < r.window_histogram.size(); ++w) {
      if (w >= shown) beyond += r.window_histogram[w];
    }
    for (std::size_t w = 0; w < shown; ++w) {
      const int count = w < r.window_histogram.size() ? r.window_histogram[w] : 0;
      std::printf(" %7d", count);
      rows.push_back({r.label, CsvWriter::cell(static_cast<std::int64_t>(w)),
                      CsvWriter::cell(static_cast<std::int64_t>(count))});
    }
    std::printf(" %7d\n", beyond);
  }
  write_csv("fig4_window_selection", {"protocol", "window", "nodes"}, rows);

  const auto& h50 = sweep.results[2];
  int h50_beyond_first = 0;
  for (std::size_t w = 1; w < h50.window_histogram.size(); ++w) {
    h50_beyond_first += h50.window_histogram[w];
  }
  std::printf("\nH-50 nodes with majority window > 0: %d / %d (paper: most nodes within the "
              "first 4 windows, substantial spread beyond window 0)\n",
              h50_beyond_first, nodes);
  return 0;
}
