// Fig. 9 — small-scale testbed: 10 nodes (Dragino SX1276 on RPi in the
// paper; simulated SX1276 here, with the battery emulated in software
// exactly as the paper's testbed does), one 125 kHz channel at SF10,
// 10-minute sampling period, 1-minute forecast windows, 24 hours,
// H-100 vs LoRaWAN. Paper shape: PRR 100% for both; degradation variance
// ~99.7% lower and cycle aging ~80% lower under the proposed MAC;
// H-100 has fewer RETX but higher latency.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

namespace {

blam::ScenarioConfig testbed_config(blam::PolicyKind policy, double theta, std::uint64_t seed) {
  using namespace blam;
  ScenarioConfig c;
  c.policy = policy;
  c.theta = theta;
  c.label = c.policy_label();
  c.seed = seed;
  c.n_nodes = 10;
  c.radius_m = 50.0;  // indoor lab deployment (paper Fig. 10)
  c.min_period = Time::from_minutes(10.0);
  c.max_period = Time::from_minutes(10.0);
  c.forecast_window = Time::from_minutes(1.0);
  c.uplink_channels = 1;  // "to emulate a larger network"
  c.downlink_channels = 1;
  c.sf_assignment = SfAssignment::kFixed;
  c.fixed_sf = SpreadingFactor::kSF10;
  return c;
}

}  // namespace

int main() {
  using namespace blam;
  using namespace blam::bench;

  banner("Fig. 9 - 24 h testbed: per-node degradation / RETX / latency, H-100 vs LoRaWAN",
         "PRR 100% for both; fair degradation distribution and ~80% lower cycle aging "
         "under the proposed MAC; LoRaWAN has lower latency");

  const std::uint64_t seed = 7;
  const auto trace = build_shared_trace(testbed_config(PolicyKind::kLorawan, 1.0, seed));
  const Time duration = Time::from_days(1.0);

  const ExperimentResult lorawan =
      run_scenario(testbed_config(PolicyKind::kLorawan, 1.0, seed), duration, trace);
  const ExperimentResult h100 =
      run_scenario(testbed_config(PolicyKind::kBlam, 1.0, seed), duration, trace);

  std::printf("\n%-6s | %-28s | %-28s\n", "", "LoRaWAN", "H-100");
  std::printf("%-6s | %10s %7s %8s | %10s %7s %8s\n", "node", "degr(e-6)", "retx", "lat(s)",
              "degr(e-6)", "retx", "lat(s)");
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < lorawan.nodes.size(); ++i) {
    const NodeMetrics& a = lorawan.nodes[i];
    const NodeMetrics& b = h100.nodes[i];
    std::printf("%-6zu | %10.3f %7.2f %8.2f | %10.3f %7.2f %8.2f\n", i, a.degradation * 1e6,
                a.avg_retx(), a.delivered_latency_s.mean(), b.degradation * 1e6, b.avg_retx(),
                b.delivered_latency_s.mean());
    rows.push_back({CsvWriter::cell(static_cast<std::uint64_t>(i)),
                    CsvWriter::cell(a.degradation), CsvWriter::cell(a.avg_retx()),
                    CsvWriter::cell(a.delivered_latency_s.mean()), CsvWriter::cell(b.degradation),
                    CsvWriter::cell(b.avg_retx()), CsvWriter::cell(b.delivered_latency_s.mean())});
  }
  write_csv("fig9_testbed",
            {"node", "lorawan_degradation", "lorawan_retx", "lorawan_latency_s",
             "h100_degradation", "h100_retx", "h100_latency_s"},
            rows);

  auto variance_of = [](const ExperimentResult& r, auto getter) {
    RunningStats stats;
    for (const NodeMetrics& m : r.nodes) stats.add(getter(m));
    return stats.variance();
  };
  auto sum_of = [](const ExperimentResult& r, auto getter) {
    double sum = 0.0;
    for (const NodeMetrics& m : r.nodes) sum += getter(m);
    return sum;
  };

  const double var_lorawan = variance_of(lorawan, [](const NodeMetrics& m) { return m.degradation; });
  const double var_h100 = variance_of(h100, [](const NodeMetrics& m) { return m.degradation; });
  const double cyc_lorawan = sum_of(lorawan, [](const NodeMetrics& m) { return m.cycle_linear; });
  const double cyc_h100 = sum_of(h100, [](const NodeMetrics& m) { return m.cycle_linear; });

  std::printf("\nPRR: LoRaWAN %.4f, H-100 %.4f (paper: both 100%%)\n", lorawan.summary.mean_prr,
              h100.summary.mean_prr);
  std::printf("degradation variance: H-100 %+.1f%% vs LoRaWAN (paper: ~-99.7%%)\n",
              var_lorawan > 0.0 ? 100.0 * (var_h100 / var_lorawan - 1.0) : 0.0);
  std::printf("cycle aging: H-100 %+.1f%% vs LoRaWAN (paper: ~-80%%)\n",
              cyc_lorawan > 0.0 ? 100.0 * (cyc_h100 / cyc_lorawan - 1.0) : 0.0);
  std::printf("avg RETX: LoRaWAN %.3f, H-100 %.3f; delivered latency: %.1f s vs %.1f s\n",
              lorawan.summary.mean_retx, h100.summary.mean_retx,
              lorawan.summary.mean_delivered_latency_s, h100.summary.mean_delivered_latency_s);
  return 0;
}
