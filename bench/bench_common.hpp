// Shared plumbing for the figure-reproduction binaries: scale selection
// (laptop defaults vs BLAM_FULL=1 paper scale), banner printing, CSV output
// with directory handling, and the four-protocol comparison harness used by
// Figs. 4-6 — now fanned across cores by SweepRunner (BLAM_JOBS workers).
#pragma once

#include <string>
#include <vector>

#include "net/experiment.hpp"

namespace blam::bench {

/// True when BLAM_FULL=1: run the experiment at the paper's scale.
[[nodiscard]] bool full_scale();

/// Picks the paper-scale value under BLAM_FULL, the laptop default otherwise.
[[nodiscard]] int scaled(int paper, int laptop);
[[nodiscard]] double scaled(double paper, double laptop);

/// Prints the figure banner: what the paper shows and what this binary
/// regenerates, plus the active scale and sweep worker count.
void banner(const std::string& figure, const std::string& claim);

/// Default sweep options for figure grids: per-cell progress on stderr,
/// worker count from BLAM_JOBS (hardware_concurrency when unset).
[[nodiscard]] SweepOptions sweep_options();

/// Default campaign options for figure grids: sweep_options() plus the
/// crash-tolerance knobs from the environment —
///   BLAM_CELL_TIMEOUT_S  per-cell watchdog seconds (default 0 = off)
///   BLAM_RETRIES         re-runs before quarantining a cell (default 1)
///   BLAM_QUARANTINE      quarantine file (default "quarantine.json")
///   BLAM_JOURNAL         checkpoint journal for resumable grids (default
///                        "" = off; only the lifespan grids accept one)
[[nodiscard]] CampaignOptions campaign_options();

/// campaign_options() with the journal cleared: fixed-duration scenario
/// grids (ExperimentResult) have no lossless codec and reject journals.
[[nodiscard]] CampaignOptions scenario_campaign_options();

/// Writes `name`.csv into BLAM_OUT_DIR (current directory when unset),
/// creating the directory if missing, and returns the path actually written.
/// Throws std::runtime_error when the directory cannot be created or the
/// write fails — figure data silently going missing is worse than aborting.
std::string write_csv(const std::string& name, const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows);

/// The evaluation sweep of Sec. IV-A: LoRaWAN, H-5, H-50, H-100 on shared
/// weather and topology seeds.
struct ProtocolSweep {
  std::vector<ExperimentResult> results;  // LoRaWAN, H-5, H-50, H-100
  int n_nodes{0};
  double years{0.0};
};

/// Runs the four-protocol grid through SweepRunner. Cell (protocol, seed)
/// results are bit-identical at any BLAM_JOBS because each cell's Network
/// derives every random stream from its own config, and the shared solar
/// trace is immutable.
[[nodiscard]] ProtocolSweep run_protocol_sweep(int n_nodes, double years, std::uint64_t seed);

}  // namespace blam::bench
