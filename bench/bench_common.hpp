// Shared plumbing for the figure-reproduction binaries: scale selection
// (laptop defaults vs BLAM_FULL=1 paper scale), banner printing, and the
// four-protocol comparison harness used by Figs. 4-6.
#pragma once

#include <string>
#include <vector>

#include "net/experiment.hpp"

namespace blam::bench {

/// True when BLAM_FULL=1: run the experiment at the paper's scale.
[[nodiscard]] bool full_scale();

/// Picks the paper-scale value under BLAM_FULL, the laptop default otherwise.
[[nodiscard]] int scaled(int paper, int laptop);
[[nodiscard]] double scaled(double paper, double laptop);

/// Prints the figure banner: what the paper shows and what this binary
/// regenerates, plus the active scale.
void banner(const std::string& figure, const std::string& claim);

/// Writes a CSV next to the binary; returns the path actually written.
std::string write_csv(const std::string& name, const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows);

/// The evaluation sweep of Sec. IV-A: LoRaWAN, H-5, H-50, H-100 on shared
/// weather and topology seeds.
struct ProtocolSweep {
  std::vector<ExperimentResult> results;  // LoRaWAN, H-5, H-50, H-100
  int n_nodes{0};
  double years{0.0};
};

[[nodiscard]] ProtocolSweep run_protocol_sweep(int n_nodes, double years, std::uint64_t seed);

}  // namespace blam::bench
