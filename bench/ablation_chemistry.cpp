// Model-independence ablation: the paper argues its formulation "does not
// depend on any specific battery degradation model" (Sec. III). Rerun the
// LoRaWAN vs H-50 comparison under three chemistry parameterizations (the
// Xu et al. LMO fit plus NMC- and LFP-like presets) and check the protocol's
// advantage survives each.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  const int nodes = scaled(200, 80);
  const double days = scaled(365.0, 90.0);
  banner("Ablation - battery chemistry (LMO / NMC / LFP presets)",
         "H-50 reduces degradation versus LoRaWAN under every chemistry");

  const std::uint64_t seed = 42;
  const Time duration = Time::from_days(days);

  // One grid over chemistry x protocol: cells [2k] = LoRaWAN, [2k+1] = H-50
  // under chemistry k, with per-chemistry shared weather.
  const std::vector<std::pair<const char*, DegradationParams>> chemistries{
      {"LMO", DegradationParams::lmo()},
      {"NMC", DegradationParams::nmc()},
      {"LFP", DegradationParams::lfp()}};
  std::vector<ScenarioCell> cells;
  for (const auto& [name, params] : chemistries) {
    ScenarioConfig lorawan = lorawan_scenario(nodes, seed);
    lorawan.degradation = params;
    ScenarioConfig h50 = blam_scenario(nodes, 0.5, seed);
    h50.degradation = params;
    const auto trace = build_shared_trace(lorawan);
    cells.push_back({std::move(lorawan), trace});
    cells.push_back({std::move(h50), trace});
  }
  const std::vector<ExperimentResult> results =
      run_scenarios(cells, duration, scenario_campaign_options());

  std::printf("\n%-6s %14s %14s %12s\n", "chem", "LoRaWAN_deg", "H-50_deg", "improvement");
  std::vector<std::vector<std::string>> rows;
  for (std::size_t k = 0; k < chemistries.size(); ++k) {
    const char* name = chemistries[k].first;
    const ExperimentResult& a = results[2 * k];
    const ExperimentResult& b = results[2 * k + 1];
    const double improvement =
        100.0 * (1.0 - b.summary.degradation_box.mean / a.summary.degradation_box.mean);
    std::printf("%-6s %14.6f %14.6f %11.1f%%\n", name, a.summary.degradation_box.mean,
                b.summary.degradation_box.mean, improvement);
    rows.push_back({name, CsvWriter::cell(a.summary.degradation_box.mean),
                    CsvWriter::cell(b.summary.degradation_box.mean),
                    CsvWriter::cell(improvement)});
  }
  write_csv("ablation_chemistry", {"chemistry", "lorawan_deg", "h50_deg", "improvement_pct"},
            rows);
  return 0;
}
