// Model-independence ablation: the paper argues its formulation "does not
// depend on any specific battery degradation model" (Sec. III). Rerun the
// LoRaWAN vs H-50 comparison under three chemistry parameterizations (the
// Xu et al. LMO fit plus NMC- and LFP-like presets) and check the protocol's
// advantage survives each.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  const int nodes = scaled(200, 80);
  const double days = scaled(365.0, 90.0);
  banner("Ablation - battery chemistry (LMO / NMC / LFP presets)",
         "H-50 reduces degradation versus LoRaWAN under every chemistry");

  const std::uint64_t seed = 42;
  const Time duration = Time::from_days(days);

  std::printf("\n%-6s %14s %14s %12s\n", "chem", "LoRaWAN_deg", "H-50_deg", "improvement");
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, params] :
       {std::pair{"LMO", DegradationParams::lmo()}, {"NMC", DegradationParams::nmc()},
        {"LFP", DegradationParams::lfp()}}) {
    ScenarioConfig lorawan = lorawan_scenario(nodes, seed);
    lorawan.degradation = params;
    ScenarioConfig h50 = blam_scenario(nodes, 0.5, seed);
    h50.degradation = params;
    const auto trace = build_shared_trace(lorawan);
    const ExperimentResult a = run_scenario(lorawan, duration, trace);
    const ExperimentResult b = run_scenario(h50, duration, trace);
    const double improvement =
        100.0 * (1.0 - b.summary.degradation_box.mean / a.summary.degradation_box.mean);
    std::printf("%-6s %14.6f %14.6f %11.1f%%\n", name, a.summary.degradation_box.mean,
                b.summary.degradation_box.mean, improvement);
    rows.push_back({name, CsvWriter::cell(a.summary.degradation_box.mean),
                    CsvWriter::cell(b.summary.degradation_box.mean),
                    CsvWriter::cell(improvement)});
  }
  write_csv("ablation_chemistry", {"chemistry", "lorawan_deg", "h50_deg", "improvement_pct"},
            rows);
  return 0;
}
