// End-to-end single-engine throughput: one Fig-10-shaped large-scale
// scenario (distance-based SFs on the 5 km disk, shadowing, H-50 protocol)
// run serially for a multi-day horizon, reporting simulated events/sec and
// wall-clock seconds. This measures the per-cell hot path itself — the
// sweep engine (BENCH_sweep.json) measures how cells scale across cores,
// and BENCH_shard.json measures the sharded engine against this serial
// baseline. BENCH_hotpath.json is written next to BENCH_sweep.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "net/network.hpp"

namespace {

using namespace blam;
using namespace blam::bench;

struct RunResult {
  std::uint64_t events{0};
  double wall_s{0.0};
  std::uint64_t delivered{0};
  std::uint64_t generated{0};
};

RunResult run_once(const ScenarioConfig& config, Time duration) {
  Network network{config};
  const auto start = std::chrono::steady_clock::now();
  network.run_until(duration);
  RunResult out;
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  out.events = network.simulator().events_executed();
  for (std::size_t i = 0; i < network.metrics().node_count(); ++i) {
    out.generated += network.metrics().node(i).generated;
    out.delivered += network.metrics().node(i).delivered;
  }
  return out;
}

}  // namespace

int main() {
  const int nodes = scaled(4000, 300);
  const double days = scaled(365.0, 60.0);
  banner("Hot-path throughput - large-scale single-run engine speed",
         "Fig. 10 scale study feasibility: one engine, millions of events, zero "
         "allocations in the steady state");

  ScenarioConfig config = blam_scenario(nodes, /*theta=*/0.5, /*seed=*/42);
  config.sf_assignment = SfAssignment::kDistanceBased;
  config.path_loss.shadowing_sigma_db = 6.0;
  const Time duration = Time::from_days(days);

  std::printf("scenario: %d nodes x %.0f days, H-50, distance-based SF, serial engine\n",
              nodes, days);

  const RunResult r = run_once(config, duration);
  const double events_per_s = r.wall_s > 0.0 ? static_cast<double>(r.events) / r.wall_s : 0.0;
  std::printf("\n%-22s %12llu\n", "events executed", static_cast<unsigned long long>(r.events));
  std::printf("%-22s %12llu\n", "packets generated",
              static_cast<unsigned long long>(r.generated));
  std::printf("%-22s %12llu\n", "packets delivered",
              static_cast<unsigned long long>(r.delivered));
  std::printf("%-22s %12.2f\n", "wall seconds", r.wall_s);
  std::printf("%-22s %12.0f\n", "events/sec", events_per_s);

  namespace fs = std::filesystem;
  fs::path json_path{"BENCH_hotpath.json"};
  if (const char* dir = std::getenv("BLAM_OUT_DIR"); dir != nullptr && dir[0] != '\0') {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (!ec) json_path = fs::path{dir} / json_path;
  }
  std::ofstream json{json_path};
  char buf[768];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"nodes\": %d,\n"
                "  \"days\": %.1f,\n"
                "  \"policy\": \"H-50\",\n"
                "  \"events_executed\": %llu,\n"
                "  \"packets_generated\": %llu,\n"
                "  \"packets_delivered\": %llu,\n"
                "  \"wall_s\": %.3f,\n"
                "  \"events_per_s\": %.0f\n"
                "}\n",
                nodes, days, static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.generated),
                static_cast<unsigned long long>(r.delivered), r.wall_s, events_per_s);
  json << buf;
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.string().c_str());
    return 1;
  }
  std::printf("[json] wrote %s\n", json_path.string().c_str());
  return 0;
}
