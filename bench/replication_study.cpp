// Replication study: the headline LoRaWAN-vs-H-50 comparison under multiple
// independent seeds with 95% confidence intervals — establishes that the
// figure-level differences are not single-seed luck.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "net/replication.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  // BLAM_SMOKE=1: a minutes-scale configuration for sanitizer CI legs that
  // run the full pipeline (typically with BLAM_AUDIT=2) rather than measure.
  const char* smoke_env = std::getenv("BLAM_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';
  const int nodes = smoke ? 20 : scaled(300, 100);
  const double days = smoke ? 14.0 : scaled(365.0, 60.0);
  const int reps = smoke ? 2 : scaled(10, 5);
  banner("Replication study - LoRaWAN vs H-50 vs GreedyGreen, " + std::to_string(reps) +
             " seeds, 95% CI",
         "H-50's RETX/energy/degradation advantages hold across seeds");

  const Time duration = Time::from_days(days);
  std::vector<std::vector<std::string>> rows;
  std::vector<ReplicatedSummary> summaries;
  // The outer protocol loop stays serial: replicate() already fans its
  // replications across the BLAM_JOBS sweep pool, and nesting pools would
  // only oversubscribe the machine.
  for (const ScenarioConfig& config :
       {lorawan_scenario(nodes, 1000), blam_scenario(nodes, 0.5, 1000),
        greedy_green_scenario(nodes, 1000)}) {
    std::printf("replicating %s ...\n", config.label.c_str());
    summaries.push_back(replicate(config, duration, reps));
  }

  std::printf("\n%-12s %-20s %-20s %-22s %-20s\n", "protocol", "PRR", "RETX/pkt",
              "degradation(mean)", "TXenergy[kJ]");
  for (const ReplicatedSummary& s : summaries) {
    std::printf("%-12s %-20s %-20s %-22s %.4g +/- %.2g\n", s.label.c_str(),
                s.prr.to_string().c_str(), s.retx.to_string().c_str(),
                s.degradation_mean.to_string().c_str(), s.tx_energy_j.mean / 1e3,
                s.tx_energy_j.half_width / 1e3);
    rows.push_back({s.label, CsvWriter::cell(s.prr.mean), CsvWriter::cell(s.prr.half_width),
                    CsvWriter::cell(s.retx.mean), CsvWriter::cell(s.retx.half_width),
                    CsvWriter::cell(s.degradation_mean.mean),
                    CsvWriter::cell(s.degradation_mean.half_width),
                    CsvWriter::cell(s.tx_energy_j.mean),
                    CsvWriter::cell(s.tx_energy_j.half_width)});
  }
  write_csv("replication_study",
            {"protocol", "prr", "prr_ci", "retx", "retx_ci", "deg", "deg_ci", "tx_j", "tx_j_ci"},
            rows);

  // Significance at a glance: do the H-50 vs LoRaWAN intervals overlap?
  const ReplicatedSummary& lorawan = summaries[0];
  const ReplicatedSummary& h50 = summaries[1];
  const bool retx_separated = h50.retx.hi() < lorawan.retx.lo();
  const bool deg_separated = h50.degradation_mean.hi() < lorawan.degradation_mean.lo();
  std::printf("\nH-50 vs LoRaWAN, non-overlapping 95%% CIs: RETX %s, degradation %s\n",
              retx_separated ? "YES" : "no", deg_separated ? "YES" : "no");
  std::printf("GreedyGreen shows energy-awareness alone does not fix degradation: deg %.5f vs "
              "H-50 %.5f\n",
              summaries[2].degradation_mean.mean, h50.degradation_mean.mean);
  return 0;
}
