// Oracle gap: how close does the distributed, online Algorithm 1 get to the
// clairvoyant centralized TDMA formulation (paper Sec. III-A)?
//
// The oracle sees true future harvest, has zero collisions and a hard slot
// capacity; Algorithm 1 is local, asynchronous and learns from collisions.
// We build identical per-node inputs (same solar year, same periods, same
// transmission cost) and compare scheduled utility and drop rates across a
// day, for fresh (w_u ~ 0) and degraded (w_u ~ 1) populations.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "core/window_selector.hpp"
#include "energy/solar.hpp"
#include "forecast/solar_forecaster.hpp"
#include "lora/airtime.hpp"
#include "oracle/tdma_scheduler.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  const int nodes = scaled(200, 60);
  banner("Oracle gap - Algorithm 1 vs the clairvoyant TDMA formulation",
         "the local heuristic should track the oracle's utility within a few percent");

  // Common physics: SF10 attempt cost, one day horizon at 1-minute slots.
  RadioEnergyModel radio;
  TxParams params;
  params.sf = SpreadingFactor::kSF10;
  params.payload_bytes = 14;
  params = params.with_auto_ldro();
  const Energy attempt = tx_energy(params, radio) + radio.rx_power() * Time::from_ms(120);

  SolarTraceConfig solar;
  solar.peak = Power::from_watts(3.0 * attempt.joules() / 60.0);
  solar.seed = 11;
  const SolarTrace trace{solar};

  const int horizon = 24 * 60;  // one day of 1-minute slots
  const Time day_start = Time::from_days(120.0);
  LinearUtility utility;

  struct PopulationRow {
    const char* name;
    double oracle_mu;
    double alg1_mu;
    int oracle_drops;
    int alg1_drops;
  };

  const std::vector<std::pair<const char*, double>> populations{
      {"fresh (w=0.05)", 0.05}, {"degraded (w=1.0)", 1.0}};

  // Each population is one sweep cell with its own (seed, cell-index) RNG
  // fork, so the cells are independent and run under any BLAM_JOBS with
  // bit-identical output.
  SweepRunner runner{sweep_options()};
  const std::vector<PopulationRow> pop_rows =
      runner.map(populations.size(), [&](std::size_t cell) {
    const auto& [name, w_u] = populations[cell];
    Rng rng = Rng{77}.fork(cell);
    // Build the node population: random periods, random panel scales.
    std::vector<OracleNodeSpec> specs;
    std::vector<Harvester> harvesters;
    std::vector<int> periods;
    harvesters.reserve(static_cast<std::size_t>(nodes));
    for (int u = 0; u < nodes; ++u) {
      harvesters.emplace_back(trace, rng.uniform(0.8, 1.2));
      periods.push_back(static_cast<int>(rng.uniform_int(16, 60)));
    }
    for (int u = 0; u < nodes; ++u) {
      OracleNodeSpec spec;
      spec.period_slots = periods[static_cast<std::size_t>(u)];
      spec.tx_cost = attempt;
      spec.initial = attempt * 4;
      spec.storage_cap = attempt * 8;
      spec.w_u = w_u;
      for (int s = 0; s < horizon; ++s) {
        spec.harvest.push_back(harvesters[static_cast<std::size_t>(u)].energy_between(
            day_start + Time::from_minutes(s), day_start + Time::from_minutes(s + 1)));
      }
      specs.push_back(std::move(spec));
    }

    // Oracle schedule.
    OracleConfig oracle_config;
    oracle_config.horizon_slots = horizon;
    oracle_config.omega = 8;
    oracle_config.utility = &utility;
    const OracleResult oracle = TdmaScheduler{}.schedule(oracle_config, specs);
    double oracle_mu = 0.0;
    int oracle_drops = 0;
    int oracle_count = 0;
    for (int u = 0; u < nodes; ++u) {
      if (oracle.node_drops[static_cast<std::size_t>(u)] == 0 ||
          oracle.node_utility[static_cast<std::size_t>(u)] > 0.0) {
        oracle_mu += oracle.node_utility[static_cast<std::size_t>(u)];
        ++oracle_count;
      }
      oracle_drops += oracle.node_drops[static_cast<std::size_t>(u)];
    }
    oracle_mu /= std::max(oracle_count, 1);

    // Algorithm 1, run per node per period on the same inputs (perfect
    // forecasts, no collisions modeled here — the network-level benches
    // cover those; this isolates the scheduling objective).
    WindowSelector selector;
    double alg1_mu = 0.0;
    int alg1_drops = 0;
    int alg1_count = 0;
    for (int u = 0; u < nodes; ++u) {
      const OracleNodeSpec& spec = specs[static_cast<std::size_t>(u)];
      Energy battery = std::min(spec.initial, spec.storage_cap);
      const int tau = spec.period_slots;
      for (int g = 0; g + tau <= horizon; g += tau) {
        std::vector<Energy> harvest(spec.harvest.begin() + g, spec.harvest.begin() + g + tau);
        std::vector<Energy> cost(static_cast<std::size_t>(tau), spec.tx_cost);
        WindowSelectorInput input;
        input.battery = battery;
        input.storage_cap = spec.storage_cap;
        input.w_u = spec.w_u;
        input.w_b = 1.0;
        input.harvest = harvest;
        input.tx_cost = cost;
        input.max_tx = spec.tx_cost * 8;
        input.utility = &utility;
        const WindowSelection sel = selector.select(input);
        if (sel.success) {
          alg1_mu += sel.utility;
          ++alg1_count;
        } else {
          ++alg1_drops;
        }
        // Roll the battery forward through the period.
        for (int i = 0; i < tau; ++i) {
          Energy level = battery + spec.harvest[static_cast<std::size_t>(g + i)];
          if (sel.success && sel.window == i) {
            level = level >= spec.tx_cost ? level - spec.tx_cost : Energy::zero();
          }
          battery = std::min(level, spec.storage_cap);
        }
      }
    }
    alg1_mu /= std::max(alg1_count, 1);

    return PopulationRow{name, oracle_mu, alg1_mu, oracle_drops, alg1_drops};
  });

  // Print and persist from the joining thread, in submission order.
  std::printf("\n%-22s %10s %10s %10s %10s\n", "population", "oracle_mu", "alg1_mu",
              "oracle_drop", "alg1_drop");
  std::vector<std::vector<std::string>> rows;
  for (const PopulationRow& r : pop_rows) {
    std::printf("%-22s %10.4f %10.4f %10d %10d\n", r.name, r.oracle_mu, r.alg1_mu,
                r.oracle_drops, r.alg1_drops);
    rows.push_back({r.name, CsvWriter::cell(r.oracle_mu), CsvWriter::cell(r.alg1_mu),
                    CsvWriter::cell(static_cast<std::int64_t>(r.oracle_drops)),
                    CsvWriter::cell(static_cast<std::int64_t>(r.alg1_drops))});
  }
  write_csv("oracle_gap", {"population", "oracle_utility", "alg1_utility", "oracle_drops",
                           "alg1_drops"},
            rows);

  std::printf("\nthe oracle also enforces the slot-capacity constraint (omega=8) that the\n"
              "asynchronous protocol replaces with collision feedback; identical utility\n"
              "for fresh nodes and a small gap for degraded ones is the expected shape.\n");
  return 0;
}
