// Fig. 3 — "Degradation influence": forecast-window selection of the most
// and least degraded node across two sampling periods with identical solar
// conditions and identical estimator state.
//
//   p28 (energy-rich):  every window's forecast harvest covers the
//                       estimated cost -> DIF = 0 everywhere -> both nodes
//                       transmit in the first (highest-utility) window.
//   p29 (energy-poor):  pre-dawn: the first windows have no harvest and
//                       window 0 additionally carries a retransmission
//                       history (Eq. 13/14 inflate its estimated cost).
//                       The highly degraded node (w_u = 1) defers to the
//                       first green window to dodge cycle aging; the fresh
//                       node (w_u ~ 0) still transmits immediately.
//
// The per-window inputs below are exactly what the on-sensor estimators
// produce under those conditions; using them directly keeps the figure a
// pure illustration of Algorithm 1's decision surface.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "core/window_selector.hpp"
#include "lora/airtime.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  banner("Fig. 3 - window selection of highest vs lowest degraded node",
         "energy-rich period: both nodes pick window 0; energy-poor period: "
         "only the degraded node defers to a later window");

  // One attempt's cost at SF10 (the testbed configuration); E_tx_max is the
  // full 8-transmission budget.
  RadioEnergyModel radio;
  TxParams params;
  params.sf = SpreadingFactor::kSF10;
  params.payload_bytes = 14;
  params = params.with_auto_ldro();
  const Energy attempt = tx_energy(params, radio) + radio.rx_power() * Time::from_ms(120);
  const Energy max_tx = attempt * 8;
  const int n_windows = 10;  // 10-minute period, 1-minute windows

  struct Period {
    const char* name;
    std::vector<double> harvest_attempts;  // per window, in units of one attempt
    std::vector<double> cost_attempts;     // EWMA * expected transmissions
  };
  const std::vector<Period> periods{
      {"p28 (energy-rich)",
       {2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0},
       {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0}},
      {"p29 (energy-poor)",
       {0.0, 0.0, 1.2, 1.2, 1.3, 1.4, 1.4, 1.5, 1.5, 1.6},  // dawn ramp
       {2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0}},  // window 0 crowded
  };

  LinearUtility utility;
  WindowSelector selector;

  std::printf("%-20s %-26s %8s %8s %8s\n", "period", "node", "window", "gamma", "DIF");
  std::vector<std::vector<std::string>> rows;
  for (const Period& period : periods) {
    std::vector<Energy> harvest;
    std::vector<Energy> cost;
    for (int w = 0; w < n_windows; ++w) {
      harvest.push_back(attempt * period.harvest_attempts[static_cast<std::size_t>(w)]);
      cost.push_back(attempt * period.cost_attempts[static_cast<std::size_t>(w)]);
    }
    for (const auto& [node_name, w_u] : {std::pair{"highest degraded (w=1.00)", 1.0},
                                         std::pair{"lowest degraded  (w=0.05)", 0.05}}) {
      WindowSelectorInput input;
      input.battery = attempt * 4;
      input.storage_cap = attempt * 8;
      input.w_u = w_u;
      input.w_b = 1.0;
      input.harvest = harvest;
      input.tx_cost = cost;
      input.max_tx = max_tx;
      input.utility = &utility;
      const WindowSelection sel = selector.select(input);
      std::printf("%-20s %-26s %8d %8.4f %8.4f\n", period.name, node_name,
                  sel.success ? sel.window : -1, sel.gamma, sel.dif);
      rows.push_back({period.name, node_name,
                      CsvWriter::cell(static_cast<std::int64_t>(sel.success ? sel.window : -1)),
                      CsvWriter::cell(sel.gamma), CsvWriter::cell(sel.dif)});
    }
  }
  write_csv("fig3_degradation_influence", {"period", "node", "window", "gamma", "dif"}, rows);

  std::printf("\nexpected shape: p28 -> both nodes window 0; p29 -> the w=1 node defers\n"
              "to the first green window while the w=0.05 node stays at window 0.\n");
  return 0;
}
