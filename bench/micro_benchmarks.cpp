// google-benchmark micro suite: throughput of the hot simulation primitives
// (event queue, airtime, interference evaluation, rainflow, the solar
// integral, and Algorithm 1 itself), plus a warmed-up end-to-end network
// loop reporting events/sec and heap allocations per node period.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/theta_controller.hpp"
#include "core/window_selector.hpp"
#include "degradation/rainflow.hpp"
#include "degradation/tracker.hpp"
#include "energy/solar.hpp"
#include "forecast/retx_estimator.hpp"
#include "lora/airtime.hpp"
#include "mac/codec.hpp"
#include "lora/interference.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"

// Allocation counter for the allocs/period gauge: every (non-aligned)
// global new in this binary bumps it. The steady-state loop is expected to
// hold this flat — see DESIGN.md §9.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}

// GCC pairs these deletes with the *default* operator new and warns about
// free(); the replacement news above are malloc-backed, so the pairing is
// correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace blam;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  EventQueue queue;
  Rng rng{1};
  // Keep a steady population of pending events.
  for (int i = 0; i < 1024; ++i) {
    queue.schedule(Time::from_us(rng.uniform_int(0, 1'000'000)), [] {});
  }
  std::int64_t clock = 1'000'000;
  for (auto _ : state) {
    queue.schedule(Time::from_us(clock + rng.uniform_int(0, 1'000'000)), [] {});
    auto popped = queue.pop();
    clock = popped.time.us();
    benchmark::DoNotOptimize(popped.callback);
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_EventQueueCancel(benchmark::State& state) {
  EventQueue queue;
  for (auto _ : state) {
    const EventHandle h = queue.schedule(Time::from_us(100), [] {});
    benchmark::DoNotOptimize(queue.cancel(h));
  }
}
BENCHMARK(BM_EventQueueCancel);

void BM_TimeOnAir(benchmark::State& state) {
  TxParams params;
  params.sf = sf_from_value(static_cast<int>(state.range(0)));
  params.payload_bytes = 14;
  params = params.with_auto_ldro();
  for (auto _ : state) {
    benchmark::DoNotOptimize(time_on_air(params));
  }
}
BENCHMARK(BM_TimeOnAir)->Arg(7)->Arg(10)->Arg(12);

void BM_InterferenceSurvives(benchmark::State& state) {
  const auto interferers = state.range(0);
  InterferenceTracker tracker;
  Rng rng{2};
  AirPacket signal;
  signal.id = 0;
  signal.start = Time::zero();
  signal.end = Time::from_seconds(0.3);
  signal.rx_power_dbm = -100.0;
  signal.sf = SpreadingFactor::kSF10;
  tracker.add(signal);
  for (std::int64_t i = 1; i <= interferers; ++i) {
    AirPacket p = signal;
    p.id = static_cast<std::uint64_t>(i);
    p.start = Time::from_ms(rng.uniform_int(0, 300));
    p.end = p.start + Time::from_ms(300);
    p.rx_power_dbm = rng.uniform(-130.0, -90.0);
    p.sf = sf_from_value(static_cast<int>(rng.uniform_int(7, 12)));
    p.channel = static_cast<int>(rng.uniform_int(0, 3));
    tracker.add(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.survives(signal));
  }
}
BENCHMARK(BM_InterferenceSurvives)->Arg(4)->Arg(32)->Arg(256);

void BM_RainflowPush(benchmark::State& state) {
  double sink = 0.0;
  RainflowCounter counter{[&sink](const RainflowCycle& c) { sink += c.range; }};
  Rng rng{3};
  double soc = 0.5;
  for (auto _ : state) {
    soc = std::min(1.0, std::max(0.0, soc + rng.uniform(-0.1, 0.1)));
    counter.push(soc);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RainflowPush);

void BM_TrackerDegradationQuery(benchmark::State& state) {
  static const DegradationModel model{};
  DegradationTracker tracker{model, 25.0};
  Rng rng{4};
  Time now = Time::zero();
  double soc = 0.5;
  for (int i = 0; i < 10000; ++i) {
    now += Time::from_minutes(30.0);
    soc = std::min(1.0, std::max(0.0, soc + rng.uniform(-0.1, 0.1)));
    tracker.record(now, soc);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.degradation(now));
  }
}
BENCHMARK(BM_TrackerDegradationQuery);

void BM_SolarEnergyBetween(benchmark::State& state) {
  SolarTraceConfig config;
  config.peak = Power::from_milli_watts(20.0);
  static const SolarTrace trace{config};
  Rng rng{5};
  for (auto _ : state) {
    const Time t0 = Time::from_us(rng.uniform_int(0, Time::from_days(3650.0).us()));
    benchmark::DoNotOptimize(trace.energy_between(t0, t0 + Time::from_minutes(1.0)));
  }
}
BENCHMARK(BM_SolarEnergyBetween);

void BM_Algorithm1Select(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng{6};
  std::vector<Energy> harvest;
  std::vector<Energy> cost;
  for (std::size_t i = 0; i < n; ++i) {
    harvest.push_back(Energy::from_joules(rng.uniform(0.0, 0.2)));
    cost.push_back(Energy::from_joules(rng.uniform(0.05, 0.1)));
  }
  LinearUtility utility;
  WindowSelectorInput input;
  input.battery = Energy::from_joules(1.0);
  input.storage_cap = Energy::from_joules(2.0);
  input.w_u = 0.7;
  input.w_b = 1.0;
  input.harvest = harvest;
  input.tx_cost = cost;
  input.max_tx = Energy::from_joules(0.8);
  input.utility = &utility;
  WindowSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(input));
  }
}
BENCHMARK(BM_Algorithm1Select)->Arg(10)->Arg(38)->Arg(60);

void BM_CodecUplinkRoundTrip(benchmark::State& state) {
  UplinkFrame frame;
  frame.node_id = 7;
  frame.seq = 42;
  frame.attempt = 1;
  frame.selected_window = 3;
  frame.app_payload_bytes = 10;
  frame.soc_report.push_back({Time::from_minutes(100.0), 0.7});
  frame.soc_report.push_back({Time::from_minutes(104.0), 0.5});
  for (auto _ : state) {
    const auto bytes = encode_uplink(frame);
    benchmark::DoNotOptimize(decode_uplink(bytes, frame.soc_report.back().t));
  }
}
BENCHMARK(BM_CodecUplinkRoundTrip);

void BM_RetxEstimatorRecordAndQuery(benchmark::State& state) {
  RetxEstimator estimator{60};
  Rng rng{9};
  std::size_t w = 0;
  for (auto _ : state) {
    estimator.record(w, static_cast<int>(rng.uniform_int(0, 7)));
    benchmark::DoNotOptimize(estimator.expected_transmissions(w));
    w = (w + 1) % 60;
  }
}
BENCHMARK(BM_RetxEstimatorRecordAndQuery);

void BM_NetworkSteadyState(benchmark::State& state) {
  // The whole engine, warmed up: after the first simulated day every pool
  // and scratch buffer has reached capacity, so the measured loop should
  // run allocation-free. One generated packet == one node period, which is
  // what normalizes the allocation counter.
  ScenarioConfig config = blam_scenario(static_cast<int>(state.range(0)), /*theta=*/0.5,
                                        /*seed=*/42);
  Network network{config};
  Time now = Time::from_days(1.0);
  network.run_until(now);

  const auto generated = [&network] {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < network.metrics().node_count(); ++i) {
      total += network.metrics().node(i).generated;
    }
    return total;
  };
  const std::uint64_t events0 = network.simulator().events_executed();
  const std::uint64_t periods0 = generated();
  const std::uint64_t allocs0 = g_heap_allocs.load(std::memory_order_relaxed);

  for (auto _ : state) {
    now += Time::from_hours(1.0);
    network.run_until(now);
  }

  const std::uint64_t events = network.simulator().events_executed() - events0;
  const std::uint64_t periods = generated() - periods0;
  const std::uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - allocs0;
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["allocs/period"] =
      periods > 0 ? static_cast<double>(allocs) / static_cast<double>(periods) : 0.0;
}
BENCHMARK(BM_NetworkSteadyState)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_ThetaControllerDelivery(benchmark::State& state) {
  ThetaController controller{ThetaController::Config{}};
  std::uint32_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.on_delivery(1, ++seq));
  }
}
BENCHMARK(BM_ThetaControllerDelivery);

}  // namespace

BENCHMARK_MAIN();
