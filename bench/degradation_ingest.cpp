// Ledger ingest throughput at fleet scale: one million synthetic nodes
// streaming piggy-backed SoC reports through the batched DegradationService
// pipeline (PR 7). Reports are generated deterministically (splitmix64 on
// node/round indices — no wall clock, no global RNG), so every run ingests
// the identical byte stream and the committed BENCH_ingest.json is a true
// throughput floor for the CI gate.
//
// Measured:
//  * headline traces/s + samples/s for the full fleet at the default batch,
//  * a batch-size sweep (1 ... 65536) over the same stream,
//  * a dirty-fraction sweep: recompute wall time when only a fraction of
//    the fleet reported since the last recompute (the residual-cache path),
//  * a bit-identity check: a faulted stream (duplicates, reorder, corrupt
//    CRCs, crash resets) fed through batch 1, batch 4096 and the legacy
//    synchronous ingest_report path must checkpoint byte-identically.
//
// Modes:
//  degradation_ingest                 full bench, writes BENCH_ingest.json
//  degradation_ingest --checkpoint P  build the faulted reference ledger at
//                                     BLAM_INGEST_BATCH (default 1) and
//                                     write its checkpoint to P (the
//                                     determinism CI leg byte-compares the
//                                     batch-1 and batch-4096 files)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/degradation_service.hpp"
#include "degradation/model.hpp"

namespace {

using namespace blam;

constexpr int kSamplesPerReport = 6;
/// Simulator-level report payload: 1 node id spread over the frame header is
/// not counted; 2 (seq) + 1 (crc) + 2 length + 16 per sample (t + soc).
constexpr int kBytesPerTrace = 5 + 16 * kSamplesPerReport;
constexpr double kSampleSpacingS = 60.0;

double unit_double(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Deterministic report for (node, round): kSamplesPerReport SoC points with
/// per-node monotone timestamps and enough direction changes to feed the
/// rainflow machine.
void make_report(std::uint32_t node, std::uint32_t round, std::vector<SocSample>& out) {
  out.clear();
  std::uint64_t state = (static_cast<std::uint64_t>(node) << 20) ^ (round + 1);
  for (int i = 0; i < kSamplesPerReport; ++i) {
    const double t_s =
        (static_cast<double>(round) * kSamplesPerReport + i + 1) * kSampleSpacingS;
    out.push_back(SocSample{Time::from_us(static_cast<std::int64_t>(t_s * 1e6)),
                            0.05 + 0.9 * unit_double(state)});
  }
}

struct IngestRun {
  double wall_s{0.0};
  std::uint64_t reports{0};
};

/// Streams `rounds` clean in-order reports to every node at `batch`.
IngestRun run_clean_stream(DegradationService& service, std::uint32_t nodes, std::uint32_t rounds,
                           std::size_t batch) {
  service.set_ingest_batch(batch);
  std::vector<SocSample> samples;
  samples.reserve(kSamplesPerReport);
  const auto start = std::chrono::steady_clock::now();
  IngestRun run;
  for (std::uint32_t round = 0; round < rounds; ++round) {
    const auto seq = static_cast<std::uint16_t>(round + 1);
    for (std::uint32_t node = 0; node < nodes; ++node) {
      make_report(node, round, samples);
      service.enqueue_report(node, seq, report_checksum(seq, samples), samples);
      ++run.reports;
    }
  }
  service.drain_queue();
  run.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return run;
}

/// Streams a deterministic FAULTED report mix (duplicates, adjacent-round
/// reorder, corrupt CRCs, crash resets) through `sink`. The stream depends
/// only on (nodes, rounds), never on the consumer, so feeding it at
/// different batch sizes must produce bit-identical ledgers.
template <typename Sink>
void feed_faulted_stream(std::uint32_t nodes, std::uint32_t rounds, Sink&& sink) {
  std::vector<SocSample> samples;
  std::vector<SocSample> swapped;
  for (std::uint32_t round = 0; round < rounds; ++round) {
    for (std::uint32_t node = 0; node < nodes; ++node) {
      std::uint64_t state = 0x00c0ffee00ULL ^ (static_cast<std::uint64_t>(node) << 24) ^ round;
      const double fault = unit_double(state);
      auto seq = static_cast<std::uint16_t>(round + 1);
      if (fault < 0.05 && round + 1 < rounds) {
        // Reorder: deliver next round's report early; the regular delivery
        // next round then counts as a duplicate after reassembly.
        const auto early = static_cast<std::uint16_t>(round + 2);
        make_report(node, round + 1, swapped);
        sink(node, early, report_checksum(early, swapped), swapped);
      }
      make_report(node, round, samples);
      std::uint8_t crc = report_checksum(seq, samples);
      if (fault >= 0.05 && fault < 0.08) crc ^= 0xA5;  // corrupt
      if (fault >= 0.08 && fault < 0.10) {
        // Crash reset: the sequence counter jumps far outside the window.
        seq = static_cast<std::uint16_t>(seq + 200);
        crc = report_checksum(seq, samples);
      }
      sink(node, seq, crc, samples);
      if (fault >= 0.10 && fault < 0.13) {
        sink(node, seq, crc, samples);  // duplicate delivery
      }
    }
  }
}

std::string faulted_checkpoint(std::uint32_t nodes, std::uint32_t rounds, std::size_t batch,
                               bool legacy_sync) {
  DegradationService service{DegradationModel{}, 25.0};
  for (std::uint32_t node = 0; node < nodes; ++node) service.register_node(node);
  service.set_ingest_batch(batch);
  feed_faulted_stream(nodes, rounds,
                      [&service, legacy_sync](std::uint32_t node, std::uint16_t seq,
                                              std::uint8_t crc, std::span<const SocSample> s) {
                        if (legacy_sync) {
                          service.ingest_report(node, seq, crc, s);
                        } else {
                          service.enqueue_report(node, seq, crc, s);
                        }
                      });
  service.recompute(Time::from_days(static_cast<double>(rounds) + 1.0));
  std::ostringstream out;
  service.checkpoint(out);
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::uint32_t kCheckNodes = 20000;
  constexpr std::uint32_t kCheckRounds = 8;

  if (argc == 3 && std::string{argv[1]} == "--checkpoint") {
    // Determinism-leg mode: reference ledger at the env-selected batch.
    std::size_t batch = 1;
    if (const char* env = std::getenv("BLAM_INGEST_BATCH"); env != nullptr) {
      const long long parsed = std::atoll(env);
      if (parsed >= 1) batch = static_cast<std::size_t>(parsed);
    }
    const std::string text =
        faulted_checkpoint(kCheckNodes / 2, kCheckRounds, batch, /*legacy_sync=*/false);
    std::ofstream out{argv[2], std::ios::binary};
    out << text;
    out.flush();
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", argv[2]);
      return 1;
    }
    std::printf("[checkpoint] batch %zu -> %s (%zu bytes)\n", batch, argv[2], text.size());
    return 0;
  }

  const auto nodes = static_cast<std::uint32_t>(blam::bench::scaled(1000000, 1000000));
  constexpr std::uint32_t kRounds = 4;
  blam::bench::banner("Ingest throughput - batched streaming degradation ledger",
                      "A million-node fleet's piggy-backed SoC reports must clear the gateway "
                      "ledger in seconds per dissemination period, at any batch size, "
                      "bit-identically");

  // --- bit-identity: batch 1 == batch 4096 == legacy synchronous ----------
  const std::string cp_batch1 = faulted_checkpoint(kCheckNodes, kCheckRounds, 1, false);
  const std::string cp_batch4096 = faulted_checkpoint(kCheckNodes, kCheckRounds, 4096, false);
  const std::string cp_legacy = faulted_checkpoint(kCheckNodes, kCheckRounds, 1, true);
  const bool bit_identical = cp_batch1 == cp_batch4096 && cp_batch1 == cp_legacy;
  std::printf("bit-identity (faulted stream, %u nodes): batch1 %s batch4096 %s legacy\n",
              kCheckNodes, cp_batch1 == cp_batch4096 ? "==" : "!=",
              cp_batch4096 == cp_legacy ? "==" : "!=");
  if (!bit_identical) {
    std::fprintf(stderr, "error: batch size changed the ledger contents\n");
    return 1;
  }

  // --- headline: full fleet at batch 4096 ---------------------------------
  DegradationService service{DegradationModel{}, 25.0};
  for (std::uint32_t node = 0; node < nodes; ++node) service.register_node(node);
  const IngestRun main_run = run_clean_stream(service, nodes, kRounds, 4096);
  const double traces_per_s =
      main_run.wall_s > 0.0 ? static_cast<double>(main_run.reports) / main_run.wall_s : 0.0;
  const double samples_per_s = traces_per_s * kSamplesPerReport;
  std::printf("\n%-24s %12u\n", "nodes", nodes);
  std::printf("%-24s %12llu\n", "reports ingested",
              static_cast<unsigned long long>(main_run.reports));
  std::printf("%-24s %12.2f\n", "wall seconds", main_run.wall_s);
  std::printf("%-24s %12.0f\n", "traces/sec", traces_per_s);
  std::printf("%-24s %12.0f\n", "samples/sec", samples_per_s);

  // --- batch-size sweep (ascending axis) -----------------------------------
  const std::size_t kBatches[] = {1, 16, 256, 4096, 65536};
  std::vector<double> batch_rates;
  for (const std::size_t batch : kBatches) {
    DegradationService sweep_service{DegradationModel{}, 25.0};
    for (std::uint32_t node = 0; node < nodes; ++node) sweep_service.register_node(node);
    const IngestRun run = run_clean_stream(sweep_service, nodes, /*rounds=*/2, batch);
    batch_rates.push_back(run.wall_s > 0.0 ? static_cast<double>(run.reports) / run.wall_s : 0.0);
    std::printf("batch %6zu : %12.0f traces/sec\n", batch, batch_rates.back());
  }

  // --- dirty-fraction sweep (ascending axis) -------------------------------
  // After a full recompute every residual stack is cached; then only a
  // fraction of the fleet reports, and the next recompute should pay the
  // stack walk for those rows alone.
  const double kFractions[] = {0.01, 0.1, 0.5, 1.0};
  struct DirtyPoint {
    double fraction;
    std::uint64_t clean_rows;
    double recompute_wall_s;
  };
  std::vector<DirtyPoint> dirty_points;
  double probe_day = static_cast<double>(kRounds) + 1.0;
  service.recompute(Time::from_days(probe_day));  // warm every cache
  std::vector<SocSample> samples;
  // Per-node next sequence so every dirty node takes the clean diff == 1
  // apply path (a shared counter would push the lower-fraction stragglers
  // into the reorder buffer instead of dirtying their caches).
  std::vector<std::uint16_t> next_seq(nodes, static_cast<std::uint16_t>(kRounds + 1));
  for (const double fraction : kFractions) {
    const auto dirty = static_cast<std::uint32_t>(static_cast<double>(nodes) * fraction);
    for (std::uint32_t node = 0; node < dirty; ++node) {
      const std::uint16_t seq = next_seq[node]++;
      make_report(node, static_cast<std::uint32_t>(seq) - 1, samples);
      service.enqueue_report(node, seq, report_checksum(seq, samples), samples);
    }
    service.drain_queue();
    const std::uint64_t clean_rows = service.store().clean_rows();
    probe_day += 1.0;
    const auto start = std::chrono::steady_clock::now();
    service.recompute(Time::from_days(probe_day));
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    dirty_points.push_back(DirtyPoint{fraction, clean_rows, wall});
    std::printf("dirty %5.2f : clean rows %8llu, recompute %8.3f s\n", fraction,
                static_cast<unsigned long long>(clean_rows), wall);
  }

  // --- BENCH_ingest.json ----------------------------------------------------
  namespace fs = std::filesystem;
  fs::path json_path{"BENCH_ingest.json"};
  if (const char* dir = std::getenv("BLAM_OUT_DIR"); dir != nullptr && dir[0] != '\0') {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (!ec) json_path = fs::path{dir} / json_path;
  }
  std::ofstream json{json_path};
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"nodes\": %u,\n"
                "  \"rounds\": %u,\n"
                "  \"samples_per_report\": %d,\n"
                "  \"reports_ingested\": %llu,\n"
                "  \"bytes_per_trace\": %d,\n"
                "  \"wall_s\": %.3f,\n"
                "  \"traces_per_s\": %.0f,\n"
                "  \"samples_per_s\": %.0f,\n",
                nodes, kRounds, kSamplesPerReport,
                static_cast<unsigned long long>(main_run.reports), kBytesPerTrace,
                main_run.wall_s, traces_per_s, samples_per_s);
  json << buf;
  std::snprintf(buf, sizeof buf, "  \"arena_pool_elements\": %llu,\n  \"bit_identical\": true,\n",
                static_cast<unsigned long long>(service.store().arena_pool_elements()));
  json << buf;
  json << "  \"batch_sweep\": [\n";
  for (std::size_t i = 0; i < std::size(kBatches); ++i) {
    std::snprintf(buf, sizeof buf, "    {\"batch\": %zu, \"traces_per_s\": %.0f}%s\n",
                  kBatches[i], batch_rates[i], i + 1 < std::size(kBatches) ? "," : "");
    json << buf;
  }
  json << "  ],\n  \"dirty_sweep\": [\n";
  for (std::size_t i = 0; i < dirty_points.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "    {\"dirty_fraction\": %.2f, \"clean_rows\": %llu, "
                  "\"recompute_wall_s\": %.3f}%s\n",
                  dirty_points[i].fraction,
                  static_cast<unsigned long long>(dirty_points[i].clean_rows),
                  dirty_points[i].recompute_wall_s, i + 1 < dirty_points.size() ? "," : "");
    json << buf;
  }
  json << "  ]\n}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.string().c_str());
    return 1;
  }
  std::printf("[json] wrote %s\n", json_path.string().c_str());
  return 0;
}
