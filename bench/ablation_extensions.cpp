// Ablations for the extension features (DESIGN.md inventory additions):
//   (1) hybrid storage: supercap buffer on/off -> battery cycle aging;
//   (2) server-side ADR on/off -> TX energy and SF mix (distance-based SFs);
//   (3) gateway diversity: 1 vs 3 gateways -> PRR and SF mix;
//   (4) thermal: insulated 25 C vs outdoor climates -> degradation.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "net/network.hpp"

namespace {

using namespace blam;
using namespace blam::bench;

double total_cycle_linear(const ExperimentResult& r) {
  double sum = 0.0;
  for (const NodeMetrics& m : r.nodes) sum += m.cycle_linear;
  return sum;
}

}  // namespace

int main() {
  const int nodes = scaled(200, 80);
  const double days = scaled(180.0, 45.0);
  banner("Ablations - supercap / ADR / multi-gateway / thermal extensions",
         "each extension moves exactly the metric it targets");

  const std::uint64_t seed = 42;
  const Time duration = Time::from_days(days);
  std::vector<std::vector<std::string>> rows;

  // All five ablations flattened into one sweep grid; each block's scenarios
  // stay adjacent so the result indices below read like the old per-block
  // runs. Blocks (1,2,4,5) share a trace within the block; block (3) lets
  // each cell synthesize its own weather, as before.
  std::vector<ScenarioCell> cells;

  // (1) Supercap: H-50 with and without a 6-transmission buffer.
  {
    ScenarioConfig plain = blam_scenario(nodes, 0.5, seed);
    ScenarioConfig hybrid = plain;
    hybrid.supercap_tx_buffer = 6.0;
    const auto trace = build_shared_trace(plain);
    cells.push_back({std::move(plain), trace});
    cells.push_back({std::move(hybrid), trace});
  }

  // (2) ADR: distance-based SFs in a compact cell.
  {
    ScenarioConfig off = lorawan_scenario(nodes, seed);
    off.radius_m = 2500.0;
    off.sf_assignment = SfAssignment::kDistanceBased;
    off.path_loss.shadowing_sigma_db = 6.0;
    off.fixed_sf = SpreadingFactor::kSF10;
    ScenarioConfig on = off;
    on.adr_enabled = true;
    const auto trace = build_shared_trace(off);
    cells.push_back({std::move(off), trace});
    cells.push_back({std::move(on), trace});
  }

  // (3) Gateway diversity in a sprawling cell.
  {
    ScenarioConfig one = lorawan_scenario(nodes, seed);
    one.radius_m = 7000.0;
    one.sf_assignment = SfAssignment::kDistanceBased;
    one.path_loss.shadowing_sigma_db = 6.0;
    ScenarioConfig three = one;
    three.n_gateways = 3;
    cells.push_back({std::move(one), nullptr});
    cells.push_back({std::move(three), nullptr});
  }

  // (4) Thermal: insulated vs temperate vs hot climate (H-50).
  {
    ScenarioConfig insulated = blam_scenario(nodes, 0.5, seed);
    ScenarioConfig temperate = insulated;
    temperate.thermal.insulated = false;
    temperate.thermal.mean_c = 15.0;
    ScenarioConfig hot = insulated;
    hot.thermal.insulated = false;
    hot.thermal.mean_c = 32.0;
    const auto trace = build_shared_trace(insulated);
    cells.push_back({std::move(insulated), trace});
    cells.push_back({std::move(temperate), trace});
    cells.push_back({std::move(hot), trace});
  }

  // (5) Adaptive theta: the closed-loop network manager vs fixed caps.
  {
    ScenarioConfig fixed50 = blam_scenario(nodes, 0.5, seed);
    ScenarioConfig fixed30 = blam_scenario(nodes, 0.3, seed);
    ScenarioConfig adaptive = blam_scenario(nodes, 0.5, seed);
    adaptive.adaptive_theta = true;
    const auto trace = build_shared_trace(fixed50);
    cells.push_back({std::move(fixed50), trace});
    cells.push_back({std::move(fixed30), trace});
    cells.push_back({std::move(adaptive), trace});
  }

  const std::vector<ExperimentResult> results =
      run_scenarios(cells, duration, scenario_campaign_options());

  // (1) Supercap.
  {
    const ExperimentResult& a = results[0];
    const ExperimentResult& b = results[1];
    const double cyc_a = total_cycle_linear(a);
    const double cyc_b = total_cycle_linear(b);
    std::printf("\n(1) hybrid storage (H-50):\n");
    std::printf("    battery-only cycle aging %.3e | +supercap %.3e (%+.1f%%), PRR %.4f -> %.4f\n",
                cyc_a, cyc_b, 100.0 * (cyc_b / cyc_a - 1.0), a.summary.mean_prr,
                b.summary.mean_prr);
    rows.push_back({"supercap", CsvWriter::cell(cyc_a), CsvWriter::cell(cyc_b),
                    CsvWriter::cell(a.summary.mean_prr), CsvWriter::cell(b.summary.mean_prr)});
  }

  // (2) ADR.
  {
    const ExperimentResult& a = results[2];
    const ExperimentResult& b = results[3];
    std::printf("\n(2) ADR (LoRaWAN, distance-based SF, 2.5 km):\n");
    std::printf("    TX energy %.1f kJ -> %.1f kJ (%+.1f%%), PRR %.4f -> %.4f\n",
                a.summary.total_tx_energy.joules() / 1e3, b.summary.total_tx_energy.joules() / 1e3,
                100.0 * (b.summary.total_tx_energy / a.summary.total_tx_energy - 1.0),
                a.summary.mean_prr, b.summary.mean_prr);
    rows.push_back({"adr", CsvWriter::cell(a.summary.total_tx_energy.joules()),
                    CsvWriter::cell(b.summary.total_tx_energy.joules()),
                    CsvWriter::cell(a.summary.mean_prr), CsvWriter::cell(b.summary.mean_prr)});
  }

  // (3) Gateway diversity.
  {
    const ExperimentResult& a = results[4];
    const ExperimentResult& b = results[5];
    std::printf("\n(3) gateways 1 -> 3 (7 km cell):\n");
    std::printf("    PRR %.4f -> %.4f, min PRR %.4f -> %.4f, TX energy %+.1f%%\n",
                a.summary.mean_prr, b.summary.mean_prr, a.summary.min_prr, b.summary.min_prr,
                100.0 * (b.summary.total_tx_energy / a.summary.total_tx_energy - 1.0));
    rows.push_back({"gateways", CsvWriter::cell(a.summary.mean_prr),
                    CsvWriter::cell(b.summary.mean_prr), CsvWriter::cell(a.summary.min_prr),
                    CsvWriter::cell(b.summary.min_prr)});
  }

  // (4) Thermal.
  {
    const ExperimentResult& a = results[6];
    const ExperimentResult& b = results[7];
    const ExperimentResult& c = results[8];
    std::printf("\n(4) thermal (H-50): degradation insulated-25C %.6f | outdoor-15C %.6f | "
                "outdoor-32C %.6f\n",
                a.summary.degradation_box.mean, b.summary.degradation_box.mean,
                c.summary.degradation_box.mean);
    rows.push_back({"thermal", CsvWriter::cell(a.summary.degradation_box.mean),
                    CsvWriter::cell(b.summary.degradation_box.mean),
                    CsvWriter::cell(c.summary.degradation_box.mean), ""});
  }

  // (5) Adaptive theta.
  {
    const ExperimentResult& a = results[9];
    const ExperimentResult& b = results[10];
    const ExperimentResult& c = results[11];
    std::printf("\n(5) adaptive theta (H-50 start):\n");
    std::printf("    degradation fixed-0.5 %.6f | fixed-0.3 %.6f | adaptive %.6f; "
                "PRR %.4f / %.4f / %.4f\n",
                a.summary.degradation_box.mean, b.summary.degradation_box.mean,
                c.summary.degradation_box.mean, a.summary.mean_prr, b.summary.mean_prr,
                c.summary.mean_prr);
    rows.push_back({"adaptive_theta", CsvWriter::cell(a.summary.degradation_box.mean),
                    CsvWriter::cell(b.summary.degradation_box.mean),
                    CsvWriter::cell(c.summary.degradation_box.mean),
                    CsvWriter::cell(c.summary.mean_prr)});
  }

  write_csv("ablation_extensions", {"ablation", "a", "b", "c", "d"}, rows);
  return 0;
}
