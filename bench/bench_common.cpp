#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/csv.hpp"

namespace blam::bench {

bool full_scale() {
  const char* env = std::getenv("BLAM_FULL");
  return env != nullptr && env[0] == '1';
}

int scaled(int paper, int laptop) { return full_scale() ? paper : laptop; }

double scaled(double paper, double laptop) { return full_scale() ? paper : laptop; }

void banner(const std::string& figure, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("scale: %s (set BLAM_FULL=1 for the paper scale)\n",
              full_scale() ? "FULL (paper)" : "laptop default");
  std::printf("================================================================\n");
}

std::string write_csv(const std::string& name, const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  const std::string path = name + ".csv";
  CsvWriter writer{path, header};
  for (const auto& row : rows) writer.row(row);
  std::printf("[csv] wrote %s (%zu rows)\n", path.c_str(), rows.size());
  return path;
}

ProtocolSweep run_protocol_sweep(int n_nodes, double years, std::uint64_t seed) {
  ProtocolSweep sweep;
  sweep.n_nodes = n_nodes;
  sweep.years = years;
  const Time duration = Time::from_days(365.0 * years);
  const auto trace = build_shared_trace(lorawan_scenario(n_nodes, seed));

  std::printf("running %d nodes x %.2f years x 4 protocols ...\n", n_nodes, years);
  sweep.results.push_back(run_scenario(lorawan_scenario(n_nodes, seed), duration, trace));
  for (double theta : {0.05, 0.5, 1.0}) {
    sweep.results.push_back(run_scenario(blam_scenario(n_nodes, theta, seed), duration, trace));
  }
  return sweep;
}

}  // namespace blam::bench
