#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "common/csv.hpp"

namespace blam::bench {

bool full_scale() {
  const char* env = std::getenv("BLAM_FULL");
  return env != nullptr && env[0] == '1';
}

int scaled(int paper, int laptop) { return full_scale() ? paper : laptop; }

double scaled(double paper, double laptop) { return full_scale() ? paper : laptop; }

void banner(const std::string& figure, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("scale: %s (set BLAM_FULL=1 for the paper scale)\n",
              full_scale() ? "FULL (paper)" : "laptop default");
  std::printf("jobs:  %d sweep worker(s) (override with BLAM_JOBS)\n", resolve_jobs());
  std::printf("================================================================\n");
}

SweepOptions sweep_options() {
  SweepOptions options;
  options.progress = true;
  return options;
}

CampaignOptions campaign_options() {
  CampaignOptions options;
  options.sweep = sweep_options();
  if (const char* env = std::getenv("BLAM_CELL_TIMEOUT_S"); env != nullptr && env[0] != '\0') {
    options.cell_timeout_s = std::atof(env);
  }
  if (const char* env = std::getenv("BLAM_RETRIES"); env != nullptr && env[0] != '\0') {
    options.retries = std::atoi(env);
  }
  if (const char* env = std::getenv("BLAM_QUARANTINE"); env != nullptr) {
    options.quarantine_path = env;  // "" disables the quarantine file
  }
  if (const char* env = std::getenv("BLAM_JOURNAL"); env != nullptr) {
    options.journal_path = env;
  }
  return options;
}

CampaignOptions scenario_campaign_options() {
  CampaignOptions options = campaign_options();
  options.journal_path.clear();
  return options;
}

std::string write_csv(const std::string& name, const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  namespace fs = std::filesystem;
  fs::path path{name + ".csv"};
  if (const char* dir = std::getenv("BLAM_OUT_DIR"); dir != nullptr && dir[0] != '\0') {
    path = fs::path{dir} / path;
  }
  if (path.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    if (ec) {
      throw std::runtime_error{"write_csv: cannot create directory " +
                               path.parent_path().string() + ": " + ec.message()};
    }
  }
  CsvWriter writer{path.string(), header};  // throws if the file cannot be opened
  for (const auto& row : rows) writer.row(row);
  writer.flush();  // throws on short/failed writes instead of reporting success
  std::printf("[csv] wrote %s (%zu rows)\n", path.string().c_str(), rows.size());
  return path.string();
}

ProtocolSweep run_protocol_sweep(int n_nodes, double years, std::uint64_t seed) {
  ProtocolSweep sweep;
  sweep.n_nodes = n_nodes;
  sweep.years = years;
  const Time duration = Time::from_days(365.0 * years);
  const auto trace = build_shared_trace(lorawan_scenario(n_nodes, seed));

  std::vector<ScenarioCell> cells;
  cells.push_back({lorawan_scenario(n_nodes, seed), trace});
  for (double theta : {0.05, 0.5, 1.0}) {
    cells.push_back({blam_scenario(n_nodes, theta, seed), trace});
  }

  std::printf("running %d nodes x %.2f years x %zu protocols ...\n", n_nodes, years,
              cells.size());
  sweep.results = run_scenarios(cells, duration, scenario_campaign_options());
  return sweep;
}

}  // namespace blam::bench
