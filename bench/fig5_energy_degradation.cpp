// Fig. 5 — (a) avg retransmission attempts, (b) total TX energy, and
// (c) battery degradation distribution under charging thresholds
// theta in {0.05, 0.5, 1.0} vs LoRaWAN, 500 nodes over 5 years.
// Paper shape: every H-x cuts RETX (H-50 by ~70%) and TX energy; H-50
// reduces mean degradation ~22% and its variance ~91%; H-5 degrades least.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace blam;
  using namespace blam::bench;

  const int nodes = scaled(500, 200);
  const double years = scaled(5.0, 1.0);
  banner("Fig. 5 - RETX / TX energy / degradation vs charging threshold",
         "H-x < LoRaWAN on all three; H-50 cuts RETX ~70% and degradation variance ~91%");

  const ProtocolSweep sweep = run_protocol_sweep(nodes, years, /*seed=*/42);

  std::printf("\n(a) avg RETX per packet   (b) TX energy [kJ]   (c) degradation\n");
  std::printf("%-10s %10s %14s %12s %12s %12s %10s\n", "protocol", "avg_retx", "tx_energy_kJ",
              "deg_mean", "deg_q1", "deg_q3", "outliers");
  std::vector<std::vector<std::string>> rows;
  for (const auto& r : sweep.results) {
    const auto& box = r.summary.degradation_box;
    std::printf("%-10s %10.3f %14.1f %12.6f %12.6f %12.6f %10zu\n", r.label.c_str(),
                r.summary.mean_retx, r.summary.total_tx_energy.joules() / 1e3, box.mean, box.q1,
                box.q3, box.outliers);
    rows.push_back({r.label, CsvWriter::cell(r.summary.mean_retx),
                    CsvWriter::cell(r.summary.total_tx_energy.joules()),
                    CsvWriter::cell(box.mean), CsvWriter::cell(box.q1),
                    CsvWriter::cell(box.median), CsvWriter::cell(box.q3),
                    CsvWriter::cell(box.min), CsvWriter::cell(box.max),
                    CsvWriter::cell(static_cast<std::uint64_t>(box.outliers))});
  }
  write_csv("fig5_energy_degradation",
            {"protocol", "avg_retx", "tx_energy_j", "deg_mean", "deg_q1", "deg_median", "deg_q3",
             "deg_min", "deg_max", "deg_outliers"},
            rows);

  const auto& lorawan = sweep.results[0].summary;
  const auto& h50 = sweep.results[2].summary;
  std::printf("\nH-50 vs LoRaWAN: RETX %+.1f%% (paper: -69.9%%), TX energy %+.1f%%, "
              "mean degradation %+.1f%% (paper: -21.9%%)\n",
              100.0 * (h50.mean_retx / lorawan.mean_retx - 1.0),
              100.0 * (h50.total_tx_energy / lorawan.total_tx_energy - 1.0),
              100.0 * (h50.degradation_box.mean / lorawan.degradation_box.mean - 1.0));
  return 0;
}
