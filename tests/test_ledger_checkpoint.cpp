// PR-6 checkpoint compatibility (ISSUE 7 satellite): a "blamledger v1"
// checkpoint written by the pre-refactor per-node-heap implementation must
// restore into the new columnar layout and re-serialize BYTE-exact —
// including mid-reassembly buffers and quarantined nodes — and the new
// batched pipeline must reproduce the same bytes from the same input stream
// at every batch size.
#include <gtest/gtest.h>

#include <initializer_list>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/degradation_service.hpp"

namespace blam {
namespace {

// Captured verbatim from the PR-6 binary (pre-refactor degradation_service)
// running the scripted scenario replayed by scripted_service() below. Do
// NOT regenerate with current code — the whole point is cross-version
// compatibility.
constexpr const char* kPr6Fixture =
    "blamledger v1 nodes 5 maxdeg 3f609ffd3d11cc00\n"
    "counters 10 0 3 3 2 0 0 2 1 1 0\n"
    "node 1 0 1 1 3 0 4 3f58b3c9362d2a00 3fe7c610a9ef5f0f 0000000000000000 0 302400000000\n"
    "tracker 3ee8a43bb40b34e8 302400000000 3fe6666666666666 1 410a5e0000000000 4112750000000000 "
    "302400000000 4039000000000000 0\n"
    "rainflow 3 1 3ff0000000000000 3fe6666666666666 2 3feccccccccccccd 3fe0000000000000\n"
    "held 0\n"
    "node 2 1 1 1 4 0 1 3f609ffd3d11cc00 3ff0000000000000 410fa40000000000 0 388800000000\n"
    "tracker 3eded4009db4b14e 388800000000 3fe199999999999a 1 410d11e000000000 4117bb0000000000 "
    "388800000000 4039000000000000 0\n"
    "rainflow 2 1 3ff0000000000000 3fe199999999999a 2 3fe999999999999a 3fc999999999999a\n"
    "held 1\n"
    "heldrep 7 3 518400000000 3fe0000000000000 540000000000 3fc3333333333333 561600000000 "
    "3fdccccccccccccd\n"
    "node 3 2 1 1 0 3 0 3f4cd11dfcf3e400 3ff0000000000000 0000000000000000 0 21600000000\n"
    "tracker 0000000000000000 21600000000 3fe0000000000000 1 40cd87ffffffffff 40d5180000000000 "
    "21600000000 4039000000000000 0\n"
    "rainflow 0 1 bff0000000000000 3fe0000000000000 1 3feccccccccccccd\n"
    "held 0\n"
    "node 4 0 0 0 0 0 0 0000000000000000 0000000000000000 0000000000000000 0 0\n"
    "tracker 0000000000000000 0 0000000000000000 0 0000000000000000 0000000000000000 0 "
    "4039000000000000 0\n"
    "rainflow 0 0 0000000000000000 0000000000000000 0\n"
    "held 0\n"
    "node 5 0 1 1 0 0 2 3f575de1abf9c000 3fe67d036b62e68a 0000000000000000 0 302400000000\n"
    "tracker 3ed41489fac02520 302400000000 3fe51eb851eb851f 1 4109da6000000000 4112750000000000 "
    "302400000000 4039000000000000 1\n"
    "rainflow 0 1 3ff0000000000000 3fe51eb851eb851f 2 3fe6666666666666 3fd6666666666666\n"
    "held 0\n"
    "checksum a22797b94e407ad0\n";

std::vector<SocSample> ramp(double start_day, std::initializer_list<double> socs) {
  std::vector<SocSample> out;
  double d = start_day;
  for (double s : socs) {
    out.push_back({Time::from_days(d), s});
    d += 0.25;
  }
  return out;
}

// The exact scenario the PR-6 binary ran to produce kPr6Fixture: healthy
// node 1, gapped node 2 with a fresh post-recompute held report, quarantined
// node 3, silent node 4, crash-reset node 5.
void feed_scripted_scenario(DegradationService& svc,
                            void (DegradationService::*deliver)(std::uint32_t, std::uint16_t,
                                                                std::uint8_t,
                                                                std::span<const SocSample>)) {
  for (std::uint16_t seq = 0; seq < 4; ++seq) {
    const auto samples = ramp(seq * 1.0, {0.9 - 0.05 * seq, 0.5, 0.85 - 0.05 * seq});
    (svc.*deliver)(1, seq, report_checksum(seq, samples), samples);
  }
  const auto n2s0 = ramp(0.0, {0.8, 0.4, 0.75});
  (svc.*deliver)(2, 0, report_checksum(0, n2s0), n2s0);
  const auto n2s2 = ramp(2.0, {0.7, 0.3, 0.65});
  (svc.*deliver)(2, 2, report_checksum(2, n2s2), n2s2);  // held
  const auto n2s4 = ramp(4.0, {0.6, 0.2, 0.55});
  (svc.*deliver)(2, 4, report_checksum(4, n2s4), n2s4);  // held too
  const auto n3s0 = ramp(0.0, {0.9, 0.5});
  (svc.*deliver)(3, 0, report_checksum(0, n3s0), n3s0);
  for (int k = 0; k < 3; ++k) {
    const auto bad = ramp(1.0 + k, {0.8, 0.4});
    (svc.*deliver)(3, static_cast<std::uint16_t>(1 + k),
                   static_cast<std::uint8_t>(report_checksum(static_cast<std::uint16_t>(1 + k),
                                                             bad) ^
                                             0x5a),
                   bad);
  }
  svc.register_node(4);
  const auto n5s0 = ramp(0.0, {0.85, 0.45, 0.8});
  (svc.*deliver)(5, 900, report_checksum(900, n5s0), n5s0);
  const auto n5s1 = ramp(3.0, {0.7, 0.35, 0.66});
  (svc.*deliver)(5, 0, report_checksum(0, n5s1), n5s1);  // far jump: reboot
  svc.recompute(Time::from_days(3.0));
  const auto n2s7 = ramp(6.0, {0.5, 0.15, 0.45});
  (svc.*deliver)(2, 7, report_checksum(7, n2s7), n2s7);  // held post-recompute
}

std::string checkpoint_text(DegradationService& svc) {
  std::ostringstream out;
  svc.checkpoint(out);
  return out.str();
}

TEST(LedgerCheckpoint, Pr6FixtureRoundTripsByteExact) {
  DegradationService svc{DegradationModel{}, 25.0};
  std::istringstream in{kPr6Fixture};
  svc.restore(in);

  // The restored ledger carries the full PR-6 semantics, not just bytes.
  EXPECT_EQ(svc.node_count(), 5u);
  EXPECT_EQ(svc.health(1), LedgerHealth::kHealthy);
  EXPECT_EQ(svc.health(2), LedgerHealth::kGapped);
  EXPECT_EQ(svc.health(3), LedgerHealth::kQuarantined);
  EXPECT_EQ(svc.health(4), LedgerHealth::kHealthy);
  EXPECT_GT(svc.estimated_gap_seconds(2), 0.0);
  EXPECT_EQ(svc.normalized_degradation(3), 1.0);  // conservative prior
  EXPECT_EQ(svc.counters().reports_accepted, 10u);
  EXPECT_EQ(svc.counters().reports_checksum_rejected, 3u);
  EXPECT_EQ(svc.counters().reports_buffered, 3u);
  EXPECT_EQ(svc.counters().reports_reassembled, 2u);
  EXPECT_EQ(svc.counters().gaps_bridged, 2u);
  EXPECT_EQ(svc.counters().discontinuities, 1u);
  EXPECT_EQ(svc.counters().quarantines, 1u);

  // Byte-exact re-serialization, mid-reassembly buffer and all.
  EXPECT_EQ(checkpoint_text(svc), kPr6Fixture);
}

TEST(LedgerCheckpoint, CurrentPipelineReproducesPr6Bytes) {
  // Replaying the scripted scenario through today's synchronous path must
  // land on the PR-6 bytes exactly: the refactor changed the layout, not
  // one bit of the arithmetic or the serialization.
  DegradationService svc{DegradationModel{}, 25.0};
  feed_scripted_scenario(svc, &DegradationService::ingest_report);
  EXPECT_EQ(checkpoint_text(svc), kPr6Fixture);
}

TEST(LedgerCheckpoint, BatchSizeDoesNotChangeTheBytes) {
  DegradationService sync{DegradationModel{}, 25.0};
  feed_scripted_scenario(sync, &DegradationService::ingest_report);

  for (const std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{4096}}) {
    DegradationService svc{DegradationModel{}, 25.0};
    svc.set_ingest_batch(batch);
    feed_scripted_scenario(svc, &DegradationService::enqueue_report);
    svc.drain_queue();
    EXPECT_EQ(checkpoint_text(svc), checkpoint_text(sync)) << "batch " << batch;
    EXPECT_EQ(checkpoint_text(svc), kPr6Fixture) << "batch " << batch;
  }
}

TEST(LedgerCheckpoint, CheckpointDrainsStagedReports) {
  // A checkpoint taken with reports still staged folds them in first and
  // reads exactly like one taken after an explicit drain (drain order is
  // arrival order either way).
  DegradationService drained{DegradationModel{}, 25.0};
  drained.set_ingest_batch(100);  // nothing drains on its own
  const auto samples = ramp(0.0, {0.9, 0.5});
  drained.enqueue_report(1, 0, report_checksum(0, samples), samples);
  EXPECT_EQ(drained.drain_queue(), 1u);
  const std::string expected = checkpoint_text(drained);

  DegradationService svc{DegradationModel{}, 25.0};
  svc.set_ingest_batch(100);
  svc.enqueue_report(1, 0, report_checksum(0, samples), samples);
  ASSERT_EQ(svc.queued_reports(), 1u);
  EXPECT_EQ(checkpoint_text(svc), expected);
  EXPECT_EQ(svc.queued_reports(), 0u);

  // Restore still refuses a non-empty queue: staged reports would be
  // silently destroyed by the rebuild.
  svc.enqueue_report(1, 1, report_checksum(1, samples), samples);
  std::istringstream in{kPr6Fixture};
  EXPECT_THROW(svc.restore(in), std::logic_error);
}

TEST(LedgerCheckpoint, IngestBatchMustBePositive) {
  DegradationService svc{DegradationModel{}, 25.0};
  EXPECT_THROW(svc.set_ingest_batch(0), std::invalid_argument);
  svc.set_ingest_batch(7);
  EXPECT_EQ(svc.ingest_batch(), 7u);
}

TEST(LedgerCheckpoint, RestoreRejectsTamperedFixture) {
  // Flip one hex digit in a tracker line: the FNV trailer must catch it.
  std::string tampered{kPr6Fixture};
  const auto pos = tampered.find("3fe6666666666666");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos + 3] = '5';
  DegradationService svc{DegradationModel{}, 25.0};
  std::istringstream in{tampered};
  EXPECT_THROW(svc.restore(in), std::runtime_error);
}

TEST(LedgerCheckpoint, RestoreRejectsHeldOverflow) {
  // A forged checkpoint claiming more held reports than the reorder depth
  // cannot be represented in the fixed-slot layout and must be refused.
  std::string forged{kPr6Fixture};
  const auto pos = forged.find("held 1\n");
  ASSERT_NE(pos, std::string::npos);
  forged.replace(pos, 6, "held 9");
  DegradationService svc{DegradationModel{}, 25.0};
  std::istringstream in{forged};
  EXPECT_THROW(svc.restore(in), std::runtime_error);
}

}  // namespace
}  // namespace blam
