// Hardened feedback-pipe tests: report checksum integrity, sequence-based
// dedup/reassembly, gap bridging, crash-reset discontinuities, ledger
// health (quarantine/recovery), checkpoint/restore, report-fault channel
// determinism, the feedback-consistency audit, and the fault-plan
// parameter validation edges for the report channel and Gilbert-Elliott.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "audit/audit.hpp"
#include "core/degradation_service.hpp"
#include "fault/fault_plan.hpp"
#include "fault/gilbert_elliott.hpp"
#include "fault/report_channel.hpp"
#include "net/network.hpp"
#include "net/scenario.hpp"

namespace blam {
namespace {

/// One report per day, two samples each (t, t+12h), SoC from `soc(day)`.
template <typename SocFn>
std::vector<std::vector<SocSample>> daily_reports(int days, SocFn soc) {
  std::vector<std::vector<SocSample>> reports;
  for (int d = 0; d < days; ++d) {
    reports.push_back({{Time::from_days(d), soc(d)}, {Time::from_days(d + 0.5), soc(d)}});
  }
  return reports;
}

/// Delivers `reports[i]` as report_seq = i+1 with a valid checksum.
void deliver(DegradationService& svc, std::uint32_t node, std::size_t index,
             const std::vector<std::vector<SocSample>>& reports) {
  const auto seq = static_cast<std::uint16_t>(index + 1);
  svc.ingest_report(node, seq, report_checksum(seq, reports[index]), reports[index]);
}

TEST(ReportChecksum, DeterministicAndSensitive) {
  const std::vector<SocSample> samples = {{Time::from_hours(1.0), 0.75},
                                          {Time::from_hours(2.0), 0.5}};
  const std::uint8_t crc = report_checksum(7, samples);
  EXPECT_EQ(crc, report_checksum(7, samples));

  EXPECT_NE(crc, report_checksum(8, samples));  // seq covered

  auto soc_flip = samples;
  soc_flip[1].soc = std::nextafter(soc_flip[1].soc, 1.0);  // single-ULP change
  EXPECT_NE(crc, report_checksum(7, soc_flip));

  auto t_flip = samples;
  t_flip[0].t = t_flip[0].t + Time::from_us(1);
  EXPECT_NE(crc, report_checksum(7, t_flip));

  auto truncated = samples;
  truncated.pop_back();
  EXPECT_NE(crc, report_checksum(7, truncated));
}

TEST(FeedbackResilience, InOrderReportsMatchLegacyIngestBitExact) {
  const auto reports = daily_reports(30, [](int d) { return d % 2 == 0 ? 0.3 : 0.8; });
  DegradationService hardened{DegradationModel{}, 25.0};
  DegradationService legacy{DegradationModel{}, 25.0};
  for (std::size_t i = 0; i < reports.size(); ++i) {
    deliver(hardened, 1, i, reports);
    legacy.ingest(1, reports[i]);
  }
  const Time end = Time::from_days(30.0);
  hardened.recompute(end);
  legacy.recompute(end);
  EXPECT_EQ(hardened.degradation(1), legacy.degradation(1));
  EXPECT_EQ(hardened.normalized_degradation(1), legacy.normalized_degradation(1));
  EXPECT_EQ(hardened.health(1), LedgerHealth::kHealthy);
  EXPECT_EQ(hardened.counters().reports_accepted, reports.size());
  EXPECT_EQ(hardened.counters().gaps_bridged, 0u);
  EXPECT_EQ(hardened.estimated_gap_seconds(1), 0.0);
}

TEST(FeedbackResilience, DuplicateReportsAreDroppedExactly) {
  const auto reports = daily_reports(20, [](int d) { return d % 2 == 0 ? 0.2 : 0.9; });
  DegradationService once{DegradationModel{}, 25.0};
  DegradationService twice{DegradationModel{}, 25.0};
  for (std::size_t i = 0; i < reports.size(); ++i) {
    deliver(once, 1, i, reports);
    deliver(twice, 1, i, reports);
    deliver(twice, 1, i, reports);  // duplicate delivery
  }
  const Time end = Time::from_days(20.0);
  once.recompute(end);
  twice.recompute(end);
  EXPECT_EQ(once.degradation(1), twice.degradation(1));
  EXPECT_EQ(twice.counters().reports_duplicate, reports.size());
  EXPECT_EQ(twice.counters().reports_accepted, reports.size());
}

TEST(FeedbackResilience, ReorderedReportsHealBitExact) {
  const auto reports = daily_reports(21, [](int d) { return d % 2 == 0 ? 0.25 : 0.85; });
  DegradationService ordered{DegradationModel{}, 25.0};
  DegradationService shuffled{DegradationModel{}, 25.0};
  for (std::size_t i = 0; i < reports.size(); ++i) deliver(ordered, 1, i, reports);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    // Swap every (3k+1, 3k+2) pair: 0, 2, 1, 3, 5, 4, ...
    std::size_t j = i;
    if (i % 3 == 1) j = i + 1;
    if (i % 3 == 2) j = i - 1;
    deliver(shuffled, 1, j, reports);
  }
  const Time end = Time::from_days(21.0);
  ordered.recompute(end);
  shuffled.recompute(end);
  EXPECT_EQ(ordered.degradation(1), shuffled.degradation(1));
  EXPECT_GT(shuffled.counters().reports_buffered, 0u);
  EXPECT_EQ(shuffled.counters().reports_buffered, shuffled.counters().reports_reassembled);
  EXPECT_EQ(shuffled.counters().gaps_bridged, 0u);
  EXPECT_EQ(shuffled.health(1), LedgerHealth::kHealthy);
}

TEST(FeedbackResilience, LostReportGapIsBridgedAndFlagged) {
  const auto reports = daily_reports(20, [](int d) { return d % 2 == 0 ? 0.3 : 0.7; });
  DegradationService svc{DegradationModel{}, 25.0};
  // Reports 1-10 in order, report 11 lost forever, 12-14 parked in the
  // reassembly buffer (below the flush depth) until recompute gives up on
  // the missing one and bridges its gap.
  for (std::size_t i = 0; i < 10; ++i) deliver(svc, 1, i, reports);
  for (std::size_t i = 11; i < 14; ++i) deliver(svc, 1, i, reports);
  EXPECT_EQ(svc.counters().reports_buffered, 3u);
  svc.recompute(Time::from_days(14.0));
  EXPECT_GT(svc.counters().gaps_bridged, 0u);
  EXPECT_GT(svc.estimated_gap_seconds(1), 0.0);
  EXPECT_EQ(svc.health(1), LedgerHealth::kGapped);
  EXPECT_GT(svc.degradation(1), 0.0);
  // The next clean in-order report clears the gap flag.
  deliver(svc, 1, 14, reports);
  EXPECT_EQ(svc.health(1), LedgerHealth::kHealthy);
  // The bridged span stays on the books as estimated, not observed, input.
  EXPECT_GT(svc.estimated_gap_seconds(1), 0.0);
}

TEST(FeedbackResilience, SequenceResetSealsResidualWithoutPhantomCycle) {
  // SoC descends 0.9 -> 0.45 before the crash and resumes at 0.9 after: if
  // the ledger paired across the break, rainflow would see one deep phantom
  // cycle. The hardened path must match a tracker told about the break.
  std::vector<std::vector<SocSample>> pre;
  for (int d = 0; d < 10; ++d) {
    pre.push_back({{Time::from_days(d), 0.9 - 0.05 * d}});
  }
  std::vector<std::vector<SocSample>> post;
  for (int d = 12; d < 20; ++d) {
    post.push_back({{Time::from_days(d), 0.9 - 0.05 * (d - 12)}});
  }

  DegradationService svc{DegradationModel{}, 25.0};
  for (std::size_t i = 0; i < pre.size(); ++i) deliver(svc, 1, i, pre);
  // Node rebooted: its report counter restarts at 1 (far outside kSeqWindow
  // behind last_seq = 10, so this cannot be mistaken for a duplicate).
  for (std::size_t i = 0; i < post.size(); ++i) deliver(svc, 1, i, post);
  svc.recompute(Time::from_days(20.0));
  EXPECT_EQ(svc.counters().discontinuities, 1u);

  DegradationTracker reference{DegradationModel{}, 25.0};
  for (const auto& r : pre) reference.record(r[0].t, r[0].soc);
  reference.mark_discontinuity();
  for (const auto& r : post) reference.record(r[0].t, r[0].soc);
  EXPECT_EQ(svc.degradation(1), reference.degradation(Time::from_days(20.0)));
}

TEST(FeedbackResilience, ChecksumFailuresQuarantineAndExcludeFromDmax) {
  const auto good = daily_reports(30, [](int) { return 0.9; });
  DegradationService svc{DegradationModel{}, 25.0};
  for (std::size_t i = 0; i < good.size(); ++i) deliver(svc, 1, i, good);

  // Node 2's radio spews garbage: every report fails its checksum.
  svc.ingest(2, {{SocSample{Time::zero(), 0.5}}});  // it had reported once, honestly
  for (std::uint32_t k = 0; k < DegradationService::kQuarantineThreshold; ++k) {
    const std::vector<SocSample> junk = {{Time::from_days(k + 1.0), 0.5}};
    svc.ingest_report(2, static_cast<std::uint16_t>(k + 1),
                      static_cast<std::uint8_t>(report_checksum(k + 1, junk) ^ 0x5a), junk);
  }
  svc.recompute(Time::from_days(30.0));
  EXPECT_EQ(svc.health(2), LedgerHealth::kQuarantined);
  EXPECT_EQ(svc.counters().reports_checksum_rejected,
            static_cast<std::uint64_t>(DegradationService::kQuarantineThreshold));
  EXPECT_EQ(svc.counters().quarantines, 1u);
  // Conservative prior, and the quarantined node cannot dilute D_max.
  EXPECT_EQ(svc.normalized_degradation(2), 1.0);
  EXPECT_EQ(svc.max_degradation(), svc.degradation(1));
  EXPECT_EQ(svc.normalized_degradation(1), 1.0);
}

TEST(FeedbackResilience, CleanStreakRecoversFromQuarantine) {
  DegradationService svc{DegradationModel{}, 25.0};
  const auto reports = daily_reports(40, [](int) { return 0.6; });
  deliver(svc, 1, 0, reports);
  for (std::uint32_t k = 0; k < DegradationService::kQuarantineThreshold; ++k) {
    const auto seq = static_cast<std::uint16_t>(k + 2);
    svc.ingest_report(1, seq,
                      static_cast<std::uint8_t>(report_checksum(seq, reports[k + 1]) ^ 0xff),
                      reports[k + 1]);
  }
  EXPECT_EQ(svc.health(1), LedgerHealth::kQuarantined);
  // The retransmitted reports arrive intact: a clean streak lifts quarantine.
  for (std::uint32_t k = 0; k < DegradationService::kRecoveryStreak; ++k) {
    deliver(svc, 1, k + 1, reports);
  }
  EXPECT_EQ(svc.health(1), LedgerHealth::kRecovered);
  EXPECT_EQ(svc.counters().recoveries, 1u);
  svc.recompute(Time::from_days(5.0));
  EXPECT_EQ(svc.health(1), LedgerHealth::kHealthy);
  EXPECT_LT(svc.normalized_degradation(1), 1.0 + 1e-12);
  EXPECT_GT(svc.degradation(1), 0.0);
}

TEST(FeedbackResilience, CheckpointRestoreIsBitExactMidReassembly) {
  const auto reports = daily_reports(30, [](int d) { return d % 3 == 0 ? 0.2 : 0.8; });
  DegradationService original{DegradationModel{}, 25.0};
  for (std::size_t i = 0; i < 12; ++i) deliver(original, 1, i, reports);
  for (std::size_t i = 0; i < 10; ++i) deliver(original, 2, i, reports);
  deliver(original, 2, 11, reports);  // parked in node 2's reassembly buffer
  original.recompute(Time::from_days(12.0));
  deliver(original, 2, 13, reports);  // held again, across the checkpoint

  std::stringstream saved;
  original.checkpoint(saved);
  DegradationService restored{DegradationModel{}, 25.0};
  restored.restore(saved);

  EXPECT_EQ(restored.node_count(), original.node_count());
  EXPECT_EQ(restored.max_degradation(), original.max_degradation());
  for (std::uint32_t id : {1u, 2u}) {
    EXPECT_EQ(restored.degradation(id), original.degradation(id));
    EXPECT_EQ(restored.normalized_degradation(id), original.normalized_degradation(id));
    EXPECT_EQ(restored.health(id), original.health(id));
    EXPECT_EQ(restored.estimated_gap_seconds(id), original.estimated_gap_seconds(id));
  }
  EXPECT_EQ(restored.counters().reports_accepted, original.counters().reports_accepted);
  EXPECT_EQ(restored.counters().reports_buffered, original.counters().reports_buffered);

  // The held report and sequence state survived: both services must agree
  // bit-exactly on all traffic delivered after the restart.
  for (std::size_t i = 12; i < reports.size(); ++i) {
    deliver(original, 1, i, reports);
    deliver(original, 2, i, reports);
    deliver(restored, 1, i, reports);
    deliver(restored, 2, i, reports);
  }
  original.recompute(Time::from_days(30.0));
  restored.recompute(Time::from_days(30.0));
  EXPECT_EQ(restored.degradation(1), original.degradation(1));
  EXPECT_EQ(restored.degradation(2), original.degradation(2));
  EXPECT_EQ(restored.max_degradation(), original.max_degradation());
}

TEST(FeedbackResilience, RestoreRejectsCorruptOrTruncatedCheckpoints) {
  DegradationService svc{DegradationModel{}, 25.0};
  const auto reports = daily_reports(10, [](int) { return 0.7; });
  for (std::size_t i = 0; i < reports.size(); ++i) deliver(svc, 1, i, reports);
  svc.recompute(Time::from_days(10.0));
  std::stringstream saved;
  svc.checkpoint(saved);
  const std::string text = saved.str();

  // Flip one hex digit inside the body: the FNV trailer must catch it.
  std::string corrupt = text;
  const std::size_t pos = corrupt.find("node 1");
  ASSERT_NE(pos, std::string::npos);
  corrupt[pos + 5] = '2';
  std::stringstream bad{corrupt};
  DegradationService victim{DegradationModel{}, 25.0};
  EXPECT_THROW(victim.restore(bad), std::runtime_error);

  std::stringstream truncated{text.substr(0, text.size() / 2)};
  DegradationService victim2{DegradationModel{}, 25.0};
  EXPECT_THROW(victim2.restore(truncated), std::runtime_error);

  std::stringstream wrong_magic{"blamledger v9\n"};
  DegradationService victim3{DegradationModel{}, 25.0};
  EXPECT_THROW(victim3.restore(wrong_magic), std::runtime_error);
}

TEST(FeedbackResilience, LegacyIngestRejectsGarbageSamples) {
  DegradationService clean{DegradationModel{}, 25.0};
  DegradationService dirty{DegradationModel{}, 25.0};
  const std::vector<SocSample> good = {{Time::from_days(0.0), 0.5},
                                       {Time::from_days(1.0), 0.8},
                                       {Time::from_days(2.0), 0.4}};
  clean.ingest(1, good);
  dirty.ingest(1, good);
  const std::vector<SocSample> garbage = {
      {Time::from_days(3.0), std::numeric_limits<double>::quiet_NaN()},
      {Time::from_days(3.0), std::numeric_limits<double>::infinity()},
      {Time::from_days(3.0), -0.25},
      {Time::from_days(3.0), 1.75},
      {Time::from_days(1.0), 0.5},  // timestamp behind the trace
  };
  dirty.ingest(1, garbage);
  const Time end = Time::from_days(2.0);
  clean.recompute(end);
  dirty.recompute(end);
  EXPECT_EQ(dirty.degradation(1), clean.degradation(1));
  EXPECT_EQ(dirty.counters().samples_rejected_range, 4u);
  EXPECT_EQ(dirty.counters().samples_rejected_nonmonotonic, 1u);
}

TEST(FeedbackResilience, SilentNodeDoesNotDiluteDmax) {
  // Regression for the normalized-degradation fallback: a registered node
  // that never reports must neither pull D_max toward zero nor inherit a
  // nonzero w_u.
  DegradationService svc{DegradationModel{}, 25.0};
  svc.register_node(7);  // never reports
  const auto reports = daily_reports(30, [](int d) { return d % 2 == 0 ? 0.3 : 0.9; });
  for (std::size_t i = 0; i < reports.size(); ++i) deliver(svc, 1, i, reports);
  svc.recompute(Time::from_days(30.0));
  EXPECT_EQ(svc.max_degradation(), svc.degradation(1));
  EXPECT_GT(svc.max_degradation(), 0.0);
  EXPECT_EQ(svc.normalized_degradation(1), 1.0);
  EXPECT_EQ(svc.normalized_degradation(7), 0.0);
  EXPECT_EQ(svc.degradation(7), 0.0);
}

TEST(FaultPlanConfig, ValidatesReportFaultProbabilities) {
  FaultPlanConfig ok;
  ok.report_loss = 0.3;
  ok.report_dup = 0.2;
  ok.report_reorder = 0.2;
  ok.report_corrupt = 0.2;
  ok.report_truncate = 0.1;  // sums to exactly 1.0: legal
  EXPECT_NO_THROW(ok.validate());
  EXPECT_TRUE(ok.reports_enabled());
  EXPECT_TRUE(ok.any());

  FaultPlanConfig negative;
  negative.report_loss = -0.1;
  EXPECT_THROW(negative.validate(), std::invalid_argument);

  FaultPlanConfig above_one;
  above_one.report_corrupt = 1.5;
  EXPECT_THROW(above_one.validate(), std::invalid_argument);

  FaultPlanConfig oversum;
  oversum.report_loss = 0.6;
  oversum.report_dup = 0.6;  // each legal, the sum is not
  EXPECT_THROW(oversum.validate(), std::invalid_argument);

  FaultPlanConfig off;
  EXPECT_FALSE(off.reports_enabled());
  EXPECT_FALSE(off.any());
}

TEST(FaultPlanConfig, ValidatesGilbertElliottParameters) {
  FaultPlanConfig bad_prob;
  bad_prob.ack_loss_bad = 1.5;
  EXPECT_THROW(bad_prob.validate(), std::invalid_argument);

  FaultPlanConfig negative_prob;
  negative_prob.ack_loss_good = -0.01;
  negative_prob.ack_loss_bad = 0.5;
  EXPECT_THROW(negative_prob.validate(), std::invalid_argument);

  FaultPlanConfig zero_sojourn;
  zero_sojourn.ack_loss_bad = 0.5;
  zero_sojourn.ack_bad_mean = Time::zero();
  EXPECT_THROW(zero_sojourn.validate(), std::invalid_argument);

  GilbertElliott::Params p;
  p.loss_bad = 1.1;
  EXPECT_THROW((GilbertElliott{p, Rng{1, 2}}), std::invalid_argument);
  GilbertElliott::Params q;
  q.good_mean = Time::zero();
  EXPECT_THROW((GilbertElliott{q, Rng{1, 2}}), std::invalid_argument);
}

TEST(ReportFaultChannel, DeterministicAndCaughtBySimChecksum) {
  FaultPlanConfig fc;
  fc.report_loss = 0.2;
  fc.report_dup = 0.1;
  fc.report_reorder = 0.2;
  fc.report_corrupt = 0.2;
  fc.report_truncate = 0.1;
  const auto reports = daily_reports(60, [](int d) { return d % 2 == 0 ? 0.35 : 0.75; });

  const auto run = [&](std::uint64_t seed) {
    FaultPlan plan{fc, Rng{seed, 0x5eb0}};
    ReportFaultChannel channel{plan};
    DegradationService svc{DegradationModel{}, 25.0};
    const ReportFaultChannel::Sink sink =
        [&svc](std::uint32_t node, std::uint16_t seq, std::uint8_t crc,
               std::span<const SocSample> samples) { svc.ingest_report(node, seq, crc, samples); };
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const auto seq = static_cast<std::uint16_t>(i + 1);
      channel.deliver(1, seq, report_checksum(seq, reports[i]), reports[i], sink);
      channel.deliver(2, seq, report_checksum(seq, reports[i]), reports[i], sink);
    }
    channel.flush(sink);
    svc.recompute(Time::from_days(60.0));
    struct Result {
      ReportChannelCounters channel;
      LedgerCounters ledger;
      double deg1, deg2;
    };
    return Result{channel.counters(), svc.counters(), svc.degradation(1), svc.degradation(2)};
  };

  const auto a = run(99);
  const auto b = run(99);
  EXPECT_EQ(a.channel.dropped, b.channel.dropped);
  EXPECT_EQ(a.channel.duplicated, b.channel.duplicated);
  EXPECT_EQ(a.channel.reordered, b.channel.reordered);
  EXPECT_EQ(a.channel.corrupted, b.channel.corrupted);
  EXPECT_EQ(a.channel.truncated, b.channel.truncated);
  EXPECT_EQ(a.deg1, b.deg1);
  EXPECT_EQ(a.deg2, b.deg2);
  // With these rates every fault class fires on 120 reports...
  EXPECT_GT(a.channel.dropped, 0u);
  EXPECT_GT(a.channel.corrupted, 0u);
  EXPECT_GT(a.channel.truncated, 0u);
  // ...and every corrupted or truncated delivery is caught by the simulator-
  // level checksum (single-bit flips and dropped samples cannot slip by an
  // intact CRC-8 recomputation).
  EXPECT_EQ(a.ledger.reports_checksum_rejected, a.channel.corrupted + a.channel.truncated);
  // A different seed realizes a different fault pattern.
  const auto c = run(100);
  EXPECT_NE(a.channel.dropped, c.channel.dropped);
}

TEST(Audit, FeedbackConsistencyFlagsOnlyInflatedLedgers) {
  AuditConfig config;
  config.level = 2;
  config.throw_on_violation = false;
  Auditor audit{config};
  // Estimate below and slightly above truth (within 5% + abs): clean.
  audit.on_feedback_ledger(1, Time::from_days(1.0), 0.010, 0.012);
  audit.on_feedback_ledger(1, Time::from_days(2.0), 0.0104, 0.010);
  EXPECT_EQ(audit.violation_count(), 0u);
  // 30% above truth: the gateway thinks the battery is much worse than the
  // node's own tracker says — flagged.
  audit.on_feedback_ledger(1, Time::from_days(3.0), 0.013, 0.010);
  EXPECT_EQ(audit.violation_count(), 1u);
  ASSERT_EQ(audit.violations().size(), 1u);
  EXPECT_EQ(audit.violations()[0].invariant, AuditInvariant::kFeedbackConsistency);

  AuditConfig throwing = config;
  throwing.throw_on_violation = true;
  Auditor strict{throwing};
  EXPECT_THROW(strict.on_feedback_ledger(2, Time::zero(), 1.0, 0.5), AuditError);
}

TEST(FeedbackResilience, NetworkRunWithReportFaultsIsDeterministic) {
  ScenarioConfig c;
  c.policy = PolicyKind::kBlam;
  c.theta = 0.5;
  c.n_nodes = 8;
  c.seed = 21;
  c.label = c.policy_label();
  c.faults.report_loss = 0.25;
  c.faults.report_dup = 0.1;
  c.faults.report_reorder = 0.15;
  c.faults.report_corrupt = 0.1;
  c.faults.report_truncate = 0.05;

  struct RunResult {
    NetworkSummary summary;
    GatewayMetrics gateway;
    double max_degradation;
  };
  const auto run = [&] {
    Network network{c};
    network.run_until(Time::from_days(20.0));
    network.finalize_metrics();
    return RunResult{network.metrics().summarize(), network.metrics().gateway(),
                     network.max_degradation()};
  };
  const RunResult a = run();
  const RunResult b = run();

  // The channel injected faults and the ledger coped with them.
  EXPECT_GT(a.gateway.reports_dropped_fault, 0u);
  EXPECT_GT(a.gateway.reports_corrupted_fault, 0u);
  EXPECT_GT(a.summary.feedback.reports_accepted, 0u);
  EXPECT_GT(a.summary.feedback.reports_checksum_rejected, 0u);

  // Bit-identical across runs: same seed, same faults, same ledger.
  EXPECT_EQ(a.max_degradation, b.max_degradation);
  EXPECT_EQ(a.gateway.reports_dropped_fault, b.gateway.reports_dropped_fault);
  EXPECT_EQ(a.summary.feedback.reports_accepted, b.summary.feedback.reports_accepted);
  EXPECT_EQ(a.summary.feedback.gaps_bridged, b.summary.feedback.gaps_bridged);
}

}  // namespace
}  // namespace blam
