#include "lora/channel_plan.hpp"

#include <gtest/gtest.h>

#include <set>

namespace blam {
namespace {

TEST(ChannelPlan, RejectsBadCounts) {
  EXPECT_THROW(ChannelPlan(0, 8), std::invalid_argument);
  EXPECT_THROW(ChannelPlan(65, 8), std::invalid_argument);
  EXPECT_THROW(ChannelPlan(8, 0), std::invalid_argument);
  EXPECT_THROW(ChannelPlan(8, 9), std::invalid_argument);
}

TEST(ChannelPlan, RandomHopCoversAllUplinks) {
  ChannelPlan plan{8, 8};
  Rng rng{5};
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int ch = plan.random_uplink_channel(rng);
    EXPECT_GE(ch, 0);
    EXPECT_LT(ch, 8);
    seen.insert(ch);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ChannelPlan, Rx1MappingIsUplinkModDownlink) {
  ChannelPlan plan{16, 8};
  EXPECT_EQ(plan.rx1_channel(0), 16);
  EXPECT_EQ(plan.rx1_channel(7), 23);
  EXPECT_EQ(plan.rx1_channel(8), 16);
  EXPECT_EQ(plan.rx1_channel(15), 23);
  EXPECT_THROW((void)plan.rx1_channel(16), std::invalid_argument);
  EXPECT_THROW((void)plan.rx1_channel(-1), std::invalid_argument);
}

TEST(ChannelPlan, DownlinkChannelsAreDisjointFromUplink) {
  ChannelPlan plan{8, 8};
  Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(plan.is_downlink(plan.random_uplink_channel(rng)));
  }
  for (int up = 0; up < 8; ++up) {
    EXPECT_TRUE(plan.is_downlink(plan.rx1_channel(up)));
  }
  EXPECT_TRUE(plan.is_downlink(plan.rx2_channel()));
}

TEST(ChannelPlan, Rx2Parameters) {
  ChannelPlan plan{8, 8};
  EXPECT_EQ(plan.rx2_spreading_factor(), SpreadingFactor::kSF12);
  EXPECT_DOUBLE_EQ(plan.rx2_bandwidth_hz(), 500e3);
}

}  // namespace
}  // namespace blam
