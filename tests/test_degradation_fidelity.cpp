// Fidelity of the gateway's degradation estimate (paper Sec. III-B): the
// gateway reconstructs each battery's aging from the TWO SoC transition
// points piggy-backed per packet; the node's own tracker sees every
// transition. The paper argues the two-point report is sufficient — these
// tests quantify that claim in the live protocol.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace blam {
namespace {

TEST(DegradationFidelity, GatewayEstimateTracksGroundTruth) {
  ScenarioConfig c = blam_scenario(15, 0.5, 23);
  Network network{c};
  network.run_until(Time::from_days(20.0));
  const Time now = network.simulator().now();

  for (const auto& node : network.nodes()) {
    const double truth = node->tracker().degradation(now);
    const double estimate = network.server().service().degradation(node->id());
    ASSERT_GT(truth, 0.0);
    ASSERT_GT(estimate, 0.0);
    // The subsampled trace misses micro-cycles (underestimates cycle aging)
    // and lags by up to a dissemination period, but must stay within a few
    // percent of ground truth — the property w_u fairness relies on.
    EXPECT_NEAR(estimate / truth, 1.0, 0.05) << "node " << node->id();
  }
}

TEST(DegradationFidelity, NormalizedWeightsOrderLikeGroundTruth) {
  ScenarioConfig c = blam_scenario(12, 0.5, 24);
  // Widen panel diversity so nodes genuinely degrade at different rates.
  c.panel_scale_min = 0.5;
  c.panel_scale_max = 1.5;
  Network network{c};
  network.run_until(Time::from_days(15.0));
  const Time now = network.simulator().now();

  // Spearman-style check: the gateway's per-node ordering should broadly
  // agree with ground truth (identical ordering is not guaranteed because
  // the estimate lags).
  std::vector<std::pair<double, double>> pairs;  // (truth, estimate)
  for (const auto& node : network.nodes()) {
    pairs.push_back({node->tracker().degradation(now),
                     network.server().service().degradation(node->id())});
  }
  int concordant = 0;
  int discordant = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    for (std::size_t j = i + 1; j < pairs.size(); ++j) {
      const double dt = pairs[i].first - pairs[j].first;
      const double de = pairs[i].second - pairs[j].second;
      if (dt * de > 0) {
        ++concordant;
      } else if (dt * de < 0) {
        ++discordant;
      }
    }
  }
  EXPECT_GT(concordant, 3 * discordant);
}

TEST(DegradationFidelity, CycleAgingIsUnderestimatedNotOverestimated) {
  // The two-point report can only MISS cycles, never invent them: the
  // gateway's cycle-aging component must not exceed the node's.
  ScenarioConfig c = blam_scenario(10, 0.5, 25);
  Network network{c};
  network.run_until(Time::from_days(10.0));

  for (const auto& node : network.nodes()) {
    const double truth_cycles = node->tracker().cycle_linear();
    // The service has no public per-component access; compare full cycles
    // via the degradation difference when calendar terms are near-equal.
    // Cheap proxy: estimate <= truth + small epsilon (calendar lag).
    const double estimate = network.server().service().degradation(node->id());
    const double truth = node->tracker().degradation(network.simulator().now());
    EXPECT_LE(estimate, truth * 1.02 + 1e-9) << "node " << node->id();
    EXPECT_GE(truth_cycles, 0.0);
  }
}

}  // namespace
}  // namespace blam
