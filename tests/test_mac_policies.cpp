#include <gtest/gtest.h>

#include <vector>

#include "mac/blam_mac.hpp"
#include "mac/greedy_green_mac.hpp"
#include "mac/lorawan_mac.hpp"

namespace blam {
namespace {

Energy J(double j) { return Energy::from_joules(j); }

WindowContext context(const std::vector<Energy>& harvest, const std::vector<Energy>& cost,
                      const UtilityFunction& utility, double w_u) {
  WindowContext ctx;
  ctx.n_windows = static_cast<int>(harvest.size());
  ctx.window_length = Time::from_minutes(1.0);
  ctx.battery = J(5.0);
  ctx.battery_capacity = J(10.0);
  ctx.w_u = w_u;
  ctx.w_b = 1.0;
  ctx.harvest_forecast = harvest;
  ctx.tx_cost = cost;
  ctx.max_tx = J(1.0);
  ctx.utility = &utility;
  return ctx;
}

TEST(LorawanMac, AlwaysWindowZero) {
  LorawanMac mac;
  LinearUtility u;
  const std::vector<Energy> harvest(10, J(0.0));
  const std::vector<Energy> cost(10, J(1.0));
  const MacDecision d = mac.select_window(context(harvest, cost, u, 1.0));
  EXPECT_TRUE(d.transmit);
  EXPECT_EQ(d.window, 0);
  EXPECT_DOUBLE_EQ(mac.soc_cap(), 1.0);
  EXPECT_FALSE(mac.needs_forecasts());
  EXPECT_FALSE(mac.reports_soc());
  EXPECT_EQ(mac.name(), "LoRaWAN");
}

TEST(ThetaOnlyMac, WindowZeroWithCap) {
  ThetaOnlyMac mac{0.5};
  LinearUtility u;
  const std::vector<Energy> harvest(10, J(0.0));
  const std::vector<Energy> cost(10, J(1.0));
  const MacDecision d = mac.select_window(context(harvest, cost, u, 1.0));
  EXPECT_TRUE(d.transmit);
  EXPECT_EQ(d.window, 0);
  EXPECT_DOUBLE_EQ(mac.soc_cap(), 0.5);
  EXPECT_FALSE(mac.needs_forecasts());
  EXPECT_TRUE(mac.reports_soc());
  EXPECT_EQ(mac.name(), "H-50C");
  EXPECT_THROW(ThetaOnlyMac{1.5}, std::invalid_argument);
}

TEST(BlamMac, NamesFollowTheta) {
  EXPECT_EQ(BlamMac{0.05}.name(), "H-5");
  EXPECT_EQ(BlamMac{0.5}.name(), "H-50");
  EXPECT_EQ(BlamMac{1.0}.name(), "H-100");
  EXPECT_THROW(BlamMac{0.0}, std::invalid_argument);
  EXPECT_THROW(BlamMac{1.0001}, std::invalid_argument);
}

TEST(BlamMac, RunsAlgorithmOne) {
  BlamMac mac{0.5};
  LinearUtility u;
  // Degraded node, harvest only in window 2.
  std::vector<Energy> harvest{J(0.0), J(0.0), J(2.0), J(0.0)};
  std::vector<Energy> cost(4, J(1.0));
  const MacDecision d = mac.select_window(context(harvest, cost, u, 1.0));
  EXPECT_TRUE(d.transmit);
  EXPECT_EQ(d.window, 2);
  EXPECT_TRUE(mac.needs_forecasts());
  EXPECT_TRUE(mac.reports_soc());
  EXPECT_TRUE(mac.last_selection().success);
  EXPECT_DOUBLE_EQ(mac.last_selection().dif, 0.0);
}

TEST(BlamMac, ThetaCapAppliedToCarryOver) {
  BlamMac mac{0.05};  // cap = 0.5 J of the 10 J capacity
  LinearUtility u;
  std::vector<Energy> harvest(4, J(0.3));
  std::vector<Energy> cost(4, J(1.0));
  WindowContext ctx = context(harvest, cost, u, 0.0);
  ctx.battery = J(0.0);
  // Carry-over saturates at 0.5, plus 0.3 in-window < 1.0 -> FAIL.
  const MacDecision d = mac.select_window(ctx);
  EXPECT_FALSE(d.transmit);
}

TEST(BlamMac, FreshNodePrioritizesUtility) {
  BlamMac mac{0.5};
  LinearUtility u;
  std::vector<Energy> harvest{J(0.0), J(2.0)};
  std::vector<Energy> cost(2, J(1.0));
  // w_u = 0: picks window 0 despite DIF.
  const MacDecision d = mac.select_window(context(harvest, cost, u, 0.0));
  EXPECT_TRUE(d.transmit);
  EXPECT_EQ(d.window, 0);
}

TEST(GreedyGreenMac, PicksTheGreenestWindow) {
  GreedyGreenMac mac;
  LinearUtility u;
  std::vector<Energy> harvest{J(0.5), J(2.0), J(1.0), J(2.0)};
  std::vector<Energy> cost(4, J(1.0));
  const MacDecision d = mac.select_window(context(harvest, cost, u, 1.0));
  EXPECT_TRUE(d.transmit);
  EXPECT_EQ(d.window, 1);  // earliest of the tied maxima
  EXPECT_DOUBLE_EQ(mac.soc_cap(), 1.0);
  EXPECT_TRUE(mac.needs_forecasts());
  EXPECT_EQ(mac.name(), "GreedyGreen");
}

TEST(GreedyGreenMac, NightDegeneratesToAloha) {
  GreedyGreenMac mac;
  LinearUtility u;
  std::vector<Energy> harvest(6, J(0.0));
  std::vector<Energy> cost(6, J(1.0));
  const MacDecision d = mac.select_window(context(harvest, cost, u, 0.0));
  EXPECT_TRUE(d.transmit);
  EXPECT_EQ(d.window, 0);
}

TEST(GreedyGreenMac, IgnoresDegradationWeight) {
  GreedyGreenMac mac;
  LinearUtility u;
  std::vector<Energy> harvest{J(0.0), J(3.0)};
  std::vector<Energy> cost(2, J(1.0));
  const MacDecision low = mac.select_window(context(harvest, cost, u, 0.0));
  const MacDecision high = mac.select_window(context(harvest, cost, u, 1.0));
  EXPECT_EQ(low.window, high.window);
}

}  // namespace
}  // namespace blam
