#include "forecast/retx_estimator.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

TEST(RetxEstimator, ValidatesConstruction) {
  EXPECT_THROW(RetxEstimator(0), std::invalid_argument);
  EXPECT_THROW(RetxEstimator(4, -1), std::invalid_argument);
}

TEST(RetxEstimator, OptimisticPriorForUnseenWindows) {
  RetxEstimator e{4};
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_DOUBLE_EQ(e.expected_transmissions(w), 1.0);
    EXPECT_DOUBLE_EQ(e.probability_at_most(0, w), 1.0);
    EXPECT_EQ(e.selections(w), 0u);
  }
}

TEST(RetxEstimator, Equation14Cdf) {
  RetxEstimator e{2};
  // Window 0: observed retx counts {0, 0, 1, 3}.
  e.record(0, 0);
  e.record(0, 0);
  e.record(0, 1);
  e.record(0, 3);
  EXPECT_DOUBLE_EQ(e.probability_at_most(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(e.probability_at_most(1, 0), 0.75);
  EXPECT_DOUBLE_EQ(e.probability_at_most(2, 0), 0.75);
  EXPECT_DOUBLE_EQ(e.probability_at_most(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(e.probability_at_most(7, 0), 1.0);
  EXPECT_DOUBLE_EQ(e.probability_at_most(-1, 0), 0.0);
}

TEST(RetxEstimator, ExpectedTransmissions) {
  RetxEstimator e{2};
  e.record(1, 0);
  e.record(1, 2);
  e.record(1, 4);
  EXPECT_DOUBLE_EQ(e.expected_transmissions(1), 1.0 + 2.0);
  EXPECT_EQ(e.selections(1), 3u);
}

TEST(RetxEstimator, ClampsAboveMaxRetx) {
  RetxEstimator e{1, 7};
  e.record(0, 100);
  EXPECT_DOUBLE_EQ(e.expected_transmissions(0), 8.0);
  EXPECT_DOUBLE_EQ(e.probability_at_most(7, 0), 1.0);
  EXPECT_DOUBLE_EQ(e.probability_at_most(6, 0), 0.0);
}

TEST(RetxEstimator, WindowsAreIndependent) {
  RetxEstimator e{3};
  e.record(0, 5);
  EXPECT_DOUBLE_EQ(e.expected_transmissions(0), 6.0);
  EXPECT_DOUBLE_EQ(e.expected_transmissions(1), 1.0);
  EXPECT_DOUBLE_EQ(e.expected_transmissions(2), 1.0);
}

TEST(RetxEstimator, OutOfRangeThrows) {
  RetxEstimator e{2};
  EXPECT_THROW(e.record(2, 0), std::out_of_range);
  EXPECT_THROW((void)e.expected_transmissions(5), std::out_of_range);
  EXPECT_THROW((void)e.probability_at_most(0, 5), std::out_of_range);
  EXPECT_THROW((void)e.selections(9), std::out_of_range);
}

TEST(RetxEstimator, CrowdedWindowCostsMore) {
  // The MAC-facing property: a window with a collision history must show a
  // higher expected transmission count than a clean one.
  RetxEstimator e{2};
  for (int i = 0; i < 20; ++i) {
    e.record(0, 4);  // crowded
    e.record(1, 0);  // clean
  }
  EXPECT_GT(e.expected_transmissions(0), e.expected_transmissions(1) * 3.0);
}

}  // namespace
}  // namespace blam
