#include "net/replication.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

TEST(TCritical, KnownValues) {
  EXPECT_NEAR(t_critical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 9), 2.262, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 1000), 1.960, 1e-3);  // normal limit
  EXPECT_NEAR(t_critical(0.90, 9), 1.833, 1e-3);
  EXPECT_NEAR(t_critical(0.99, 9), 3.250, 1e-3);
  EXPECT_DOUBLE_EQ(t_critical(0.95, 0), 0.0);
  EXPECT_THROW((void)t_critical(0.5, 10), std::invalid_argument);
}

TEST(Estimate, FromSamples) {
  const Estimate e = estimate_from_samples({10.0, 12.0, 11.0, 13.0, 9.0});
  EXPECT_EQ(e.replications, 5u);
  EXPECT_DOUBLE_EQ(e.mean, 11.0);
  // s = sqrt(2.5), sem = sqrt(0.5), t_{0.975,4} = 2.776.
  EXPECT_NEAR(e.half_width, 2.776 * std::sqrt(0.5), 1e-3);
  EXPECT_LT(e.lo(), e.mean);
  EXPECT_GT(e.hi(), e.mean);
}

TEST(Estimate, DegenerateCases) {
  EXPECT_EQ(estimate_from_samples({}).replications, 0u);
  const Estimate one = estimate_from_samples({5.0});
  EXPECT_DOUBLE_EQ(one.mean, 5.0);
  EXPECT_DOUBLE_EQ(one.half_width, 0.0);
  const Estimate constant = estimate_from_samples({3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(constant.half_width, 0.0);
}

TEST(Replicate, ValidatesAndAggregates) {
  ScenarioConfig config = lorawan_scenario(8, 5);
  EXPECT_THROW(replicate(config, Time::from_days(1.0), 0), std::invalid_argument);

  const ReplicatedSummary s = replicate(config, Time::from_days(1.0), 3);
  EXPECT_EQ(s.replications, 3u);
  EXPECT_GT(s.prr.mean, 0.8);
  EXPECT_GT(s.tx_energy_j.mean, 0.0);
  // Different seeds genuinely differ, so spread exists (usually nonzero).
  EXPECT_GE(s.tx_energy_j.half_width, 0.0);
}

TEST(Replicate, SeedsAreIndependentButDeterministic) {
  ScenarioConfig config = lorawan_scenario(8, 5);
  const ReplicatedSummary a = replicate(config, Time::from_days(1.0), 2);
  const ReplicatedSummary b = replicate(config, Time::from_days(1.0), 2);
  EXPECT_DOUBLE_EQ(a.prr.mean, b.prr.mean);
  EXPECT_DOUBLE_EQ(a.tx_energy_j.mean, b.tx_energy_j.mean);
}

}  // namespace
}  // namespace blam
