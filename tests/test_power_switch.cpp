#include "energy/power_switch.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

TEST(PowerSwitch, ValidatesSocCap) {
  Battery b{Energy::from_joules(100.0), 0.5};
  EXPECT_THROW(PowerSwitch(b, -0.1), std::invalid_argument);
  EXPECT_THROW(PowerSwitch(b, 1.1), std::invalid_argument);
  PowerSwitch sw{b, 0.5};
  EXPECT_THROW(sw.set_soc_cap(2.0), std::invalid_argument);
}

TEST(PowerSwitch, GreenCoversDemandSurplusCharges) {
  Battery b{Energy::from_joules(100.0), 0.5};
  PowerSwitch sw{b, 1.0};
  const PowerFlow flow = sw.apply(Energy::from_joules(30.0), Energy::from_joules(10.0));
  EXPECT_DOUBLE_EQ(flow.from_green.joules(), 10.0);
  EXPECT_DOUBLE_EQ(flow.from_battery.joules(), 0.0);
  EXPECT_DOUBLE_EQ(flow.charged.joules(), 20.0);
  EXPECT_DOUBLE_EQ(flow.wasted.joules(), 0.0);
  EXPECT_FALSE(flow.brownout());
  EXPECT_DOUBLE_EQ(b.soc(), 0.7);
}

TEST(PowerSwitch, SurplusBeyondThetaIsWasted) {
  Battery b{Energy::from_joules(100.0), 0.45};
  PowerSwitch sw{b, 0.5};
  const PowerFlow flow = sw.apply(Energy::from_joules(20.0), Energy::from_joules(0.0));
  EXPECT_DOUBLE_EQ(flow.charged.joules(), 5.0);   // up to theta = 50 J
  EXPECT_DOUBLE_EQ(flow.wasted.joules(), 15.0);
  EXPECT_DOUBLE_EQ(b.soc(), 0.5);
}

TEST(PowerSwitch, DeficitDrawsFromBattery) {
  Battery b{Energy::from_joules(100.0), 0.5};
  PowerSwitch sw{b, 1.0};
  const PowerFlow flow = sw.apply(Energy::from_joules(4.0), Energy::from_joules(10.0));
  EXPECT_DOUBLE_EQ(flow.from_green.joules(), 4.0);
  EXPECT_DOUBLE_EQ(flow.from_battery.joules(), 6.0);
  EXPECT_FALSE(flow.brownout());
  EXPECT_DOUBLE_EQ(b.stored().joules(), 44.0);
}

TEST(PowerSwitch, BrownoutWhenBatteryEmpty) {
  Battery b{Energy::from_joules(100.0), 0.02};
  PowerSwitch sw{b, 1.0};
  const PowerFlow flow = sw.apply(Energy::from_joules(1.0), Energy::from_joules(10.0));
  EXPECT_DOUBLE_EQ(flow.from_green.joules(), 1.0);
  EXPECT_DOUBLE_EQ(flow.from_battery.joules(), 2.0);
  EXPECT_DOUBLE_EQ(flow.deficit.joules(), 7.0);
  EXPECT_TRUE(flow.brownout());
  EXPECT_DOUBLE_EQ(b.stored().joules(), 0.0);
}

TEST(PowerSwitch, EnergyConservation) {
  // green in == to-load + charged + wasted; battery delta == charged - drawn.
  Battery b{Energy::from_joules(100.0), 0.4};
  PowerSwitch sw{b, 0.8};
  for (double harvest : {0.0, 5.0, 20.0, 60.0}) {
    for (double demand : {0.0, 3.0, 12.0, 45.0}) {
      const double before = b.stored().joules();
      const PowerFlow f = sw.apply(Energy::from_joules(harvest), Energy::from_joules(demand));
      EXPECT_NEAR(f.from_green.joules() + f.charged.joules() + f.wasted.joules(), harvest, 1e-9);
      EXPECT_NEAR(f.from_green.joules() + f.from_battery.joules() + f.deficit.joules(), demand,
                  1e-9);
      EXPECT_NEAR(b.stored().joules() - before, f.charged.joules() - f.from_battery.joules(),
                  1e-9);
    }
  }
}

TEST(PowerSwitch, RejectsNegativeEnergy) {
  Battery b{Energy::from_joules(100.0), 0.5};
  PowerSwitch sw{b, 1.0};
  EXPECT_THROW(sw.apply(Energy::from_joules(-1.0), Energy::zero()), std::invalid_argument);
  EXPECT_THROW(sw.apply(Energy::zero(), Energy::from_joules(-1.0)), std::invalid_argument);
}

TEST(PowerSwitch, ZeroThetaNeverCharges) {
  Battery b{Energy::from_joules(100.0), 0.0};
  PowerSwitch sw{b, 0.0};
  const PowerFlow f = sw.apply(Energy::from_joules(50.0), Energy::zero());
  EXPECT_DOUBLE_EQ(f.charged.joules(), 0.0);
  EXPECT_DOUBLE_EQ(f.wasted.joules(), 50.0);
}

}  // namespace
}  // namespace blam
