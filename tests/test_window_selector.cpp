#include "core/window_selector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace blam {
namespace {

Energy J(double j) { return Energy::from_joules(j); }

struct Fixture {
  LinearUtility utility;
  std::vector<Energy> harvest;
  std::vector<Energy> cost;
  WindowSelectorInput input;

  Fixture(std::vector<double> harvest_j, std::vector<double> cost_j, double battery_j,
          double cap_j, double w_u, double w_b = 1.0) {
    for (double h : harvest_j) harvest.push_back(J(h));
    for (double c : cost_j) cost.push_back(J(c));
    input.battery = J(battery_j);
    input.storage_cap = J(cap_j);
    input.w_u = w_u;
    input.w_b = w_b;
    input.harvest = harvest;
    input.tx_cost = cost;
    input.max_tx = J(1.0);
    input.utility = &utility;
  }
};

TEST(WindowSelector, ValidatesInput) {
  WindowSelector sel;
  Fixture f{{1.0}, {1.0}, 1.0, 10.0, 0.5};
  WindowSelectorInput bad = f.input;
  bad.harvest = {};
  bad.tx_cost = {};
  EXPECT_THROW((void)sel.select(bad), std::invalid_argument);
  bad = f.input;
  bad.utility = nullptr;
  EXPECT_THROW((void)sel.select(bad), std::invalid_argument);
  bad = f.input;
  bad.max_tx = J(0.0);
  EXPECT_THROW((void)sel.select(bad), std::invalid_argument);
  bad = f.input;
  bad.w_u = 1.5;
  EXPECT_THROW((void)sel.select(bad), std::invalid_argument);
  bad = f.input;
  bad.w_b = -0.5;
  EXPECT_THROW((void)sel.select(bad), std::invalid_argument);
}

TEST(WindowSelector, FreshBatteryPrefersFirstWindow) {
  // w_u = 0: DIF is irrelevant, utility dominates -> window 0 (paper:
  // "nodes with newer batteries ... prioritize utility").
  WindowSelector sel;
  Fixture f{{0.0, 1.0, 1.0, 1.0}, {1.0, 1.0, 1.0, 1.0}, 5.0, 10.0, 0.0};
  const WindowSelection out = sel.select(f.input);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.window, 0);
  EXPECT_DOUBLE_EQ(out.utility, 1.0);
}

TEST(WindowSelector, DegradedNodeWaitsForGreenEnergy) {
  // w_u = 1: window 0 has no harvest (DIF 1), window 1 is fully funded
  // (DIF 0). gamma_0 = 0 + 1*1 = 1; gamma_1 = 0.25 + 0 = 0.25 -> window 1.
  WindowSelector sel;
  Fixture f{{0.0, 2.0, 0.0, 0.0}, {1.0, 1.0, 1.0, 1.0}, 5.0, 10.0, 1.0};
  const WindowSelection out = sel.select(f.input);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.window, 1);
  EXPECT_DOUBLE_EQ(out.dif, 0.0);
  EXPECT_DOUBLE_EQ(out.gamma, 0.25);
}

TEST(WindowSelector, WbZeroDisablesDegradationTerm) {
  WindowSelector sel;
  Fixture f{{0.0, 2.0, 0.0, 0.0}, {1.0, 1.0, 1.0, 1.0}, 5.0, 10.0, 1.0, /*w_b=*/0.0};
  const WindowSelection out = sel.select(f.input);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.window, 0);  // pure utility again
}

TEST(WindowSelector, EnergyConstraintSkipsInfeasibleBest) {
  // Battery empty; window 0 has no harvest so it cannot fund the packet
  // even though its gamma is lowest; window 2 is the first feasible.
  WindowSelector sel;
  Fixture f{{0.0, 0.0, 5.0, 0.0}, {1.0, 1.0, 1.0, 1.0}, 0.0, 10.0, 0.0};
  const WindowSelection out = sel.select(f.input);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.window, 2);
}

TEST(WindowSelector, CumulativeEnergyCarriesOver) {
  // Harvest trickles in at 0.4 J per window; cost is 1 J. Energy
  // accumulates in the battery so window 2 (cumulative 1.2) is feasible.
  WindowSelector sel;
  Fixture f{{0.4, 0.4, 0.4, 0.4}, {1.0, 1.0, 1.0, 1.0}, 0.0, 10.0, 0.0};
  const WindowSelection out = sel.select(f.input);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.window, 2);
}

TEST(WindowSelector, StorageCapLimitsCarryOver) {
  // Same trickle but the theta cap is 0.5 J: the battery can never
  // accumulate the 1 J cost from carry-over alone -> FAIL.
  WindowSelector sel;
  Fixture f{{0.4, 0.4, 0.4, 0.4}, {1.0, 1.0, 1.0, 1.0}, 0.0, 0.5, 0.0};
  const WindowSelection out = sel.select(f.input);
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.window, -1);
}

TEST(WindowSelector, CapDoesNotBlockDirectHarvestUse) {
  // Harvest within the chosen window is usable directly even above the
  // cap: window 1 harvests 2 J which funds the 1 J cost despite cap 0.1.
  WindowSelector sel;
  Fixture f{{0.0, 2.0, 0.0}, {1.0, 1.0, 1.0}, 0.0, 0.1, 0.0};
  const WindowSelection out = sel.select(f.input);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.window, 1);
}

TEST(WindowSelector, AllWindowsInfeasibleFails) {
  WindowSelector sel;
  Fixture f{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}, 0.5, 10.0, 0.5};
  const WindowSelection out = sel.select(f.input);
  EXPECT_FALSE(out.success);
}

TEST(WindowSelector, ExactlyCostIsInfeasible) {
  // Constraint (20) is strict: E[t] - cost > 0.
  WindowSelector sel;
  Fixture f{{0.0}, {1.0}, 1.0, 10.0, 0.0};
  EXPECT_FALSE(sel.select(f.input).success);
}

TEST(WindowSelector, TieBreaksTowardEarlierWindow) {
  // Two identical fully-funded windows: stable sort keeps window order, so
  // the earlier (higher-utility, same gamma? no - utility differs) ...
  // Construct a true tie: w_u = 1, window 0 has DIF 0.25 and utility 1,
  // window 1 has DIF 0 and utility 0.75: gamma both 0.25.
  WindowSelector sel;
  Fixture f{{0.75, 1.0, 0.0, 0.0}, {1.0, 1.0, 1.0, 1.0}, 5.0, 10.0, 1.0};
  const WindowSelection out = sel.select(f.input);
  ASSERT_TRUE(out.success);
  EXPECT_DOUBLE_EQ(out.gamma, 0.25);
  EXPECT_EQ(out.window, 0);
}

TEST(WindowSelector, ObjectiveValuesMatchFormula) {
  WindowSelector sel;
  Fixture f{{0.0, 0.5, 1.0, 2.0}, {1.0, 1.0, 1.0, 1.0}, 5.0, 10.0, 0.8, 0.9};
  const auto gamma = sel.objective_values(f.input);
  ASSERT_EQ(gamma.size(), 4u);
  const LinearUtility u;
  for (int t = 0; t < 4; ++t) {
    const double dif = std::max(1.0 - f.harvest[static_cast<std::size_t>(t)].joules(), 0.0);
    EXPECT_NEAR(gamma[static_cast<std::size_t>(t)], (1.0 - u.value(t, 4)) + 0.8 * dif * 0.9,
                1e-12);
  }
}

TEST(WindowSelector, PicksGlobalGammaMinimumAmongFeasible) {
  WindowSelector sel;
  Fixture f{{0.0, 0.0, 3.0, 3.0}, {1.0, 1.0, 1.0, 1.0}, 10.0, 20.0, 1.0};
  const auto gamma = sel.objective_values(f.input);
  const WindowSelection out = sel.select(f.input);
  ASSERT_TRUE(out.success);
  for (std::size_t t = 0; t < gamma.size(); ++t) {
    EXPECT_LE(out.gamma, gamma[t] + 1e-12);
  }
}

// Property sweep across window counts: selection must always return either
// FAIL or a feasible window minimizing gamma among feasible windows.
class SelectorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SelectorPropertyTest, SelectionIsOptimalAmongFeasible) {
  const int n = GetParam();
  Rng rng{static_cast<std::uint64_t>(n) * 977 + 1};
  LinearUtility utility;
  WindowSelector sel;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Energy> harvest;
    std::vector<Energy> cost;
    for (int t = 0; t < n; ++t) {
      harvest.push_back(J(rng.uniform(0.0, 2.0)));
      cost.push_back(J(rng.uniform(0.2, 1.5)));
    }
    WindowSelectorInput input;
    input.battery = J(rng.uniform(0.0, 2.0));
    input.storage_cap = J(rng.uniform(0.5, 3.0));
    input.w_u = rng.uniform(0.0, 1.0);
    input.w_b = rng.uniform(0.0, 1.0);
    input.harvest = harvest;
    input.tx_cost = cost;
    input.max_tx = J(1.5);
    input.utility = &utility;

    const auto gamma = sel.objective_values(input);
    // Reference feasibility: replicate the cumulative-energy recurrence.
    std::vector<bool> feasible(static_cast<std::size_t>(n));
    Energy carried = std::min(input.battery, input.storage_cap);
    for (int t = 0; t < n; ++t) {
      const Energy avail = carried + harvest[static_cast<std::size_t>(t)];
      feasible[static_cast<std::size_t>(t)] = avail - cost[static_cast<std::size_t>(t)] > J(0.0);
      carried = std::min(avail, input.storage_cap);
    }

    const WindowSelection out = sel.select(input);
    bool any_feasible = false;
    double best_gamma = 1e300;
    for (int t = 0; t < n; ++t) {
      if (feasible[static_cast<std::size_t>(t)]) {
        any_feasible = true;
        best_gamma = std::min(best_gamma, gamma[static_cast<std::size_t>(t)]);
      }
    }
    ASSERT_EQ(out.success, any_feasible);
    if (out.success) {
      ASSERT_TRUE(feasible[static_cast<std::size_t>(out.window)]);
      EXPECT_NEAR(out.gamma, best_gamma, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WindowCounts, SelectorPropertyTest,
                         ::testing::Values(1, 2, 5, 16, 38, 60));

// The workspace (allocation-free) overloads must agree exactly with the
// allocating API on randomized inputs — the hot path swaps one for the
// other and every committed CSV depends on them being interchangeable.
TEST(WindowSelector, WorkspaceMatchesAllocatingApiOnRandomInputs) {
  Rng rng{20250806};
  LinearUtility utility;
  WindowSelector sel;
  WindowSelector::Workspace ws;  // reused across trials, like a node does
  for (int trial = 0; trial < 500; ++trial) {
    const int n = rng.uniform_int(1, 60);
    std::vector<Energy> harvest;
    std::vector<Energy> cost;
    for (int t = 0; t < n; ++t) {
      harvest.push_back(J(rng.uniform(0.0, 2.0)));
      cost.push_back(J(rng.uniform(0.0, 1.5)));
    }
    WindowSelectorInput input;
    input.battery = J(rng.uniform(0.0, 2.0));
    input.storage_cap = J(rng.uniform(0.1, 3.0));
    input.w_u = rng.uniform(0.0, 1.0);
    input.w_b = rng.uniform(0.0, 1.0);
    input.harvest = harvest;
    input.tx_cost = cost;
    input.max_tx = J(rng.uniform(0.5, 2.0));
    input.utility = &utility;

    const WindowSelection heap = sel.select(input);
    const WindowSelection scratch = sel.select(input, ws);
    EXPECT_EQ(heap.success, scratch.success);
    EXPECT_EQ(heap.window, scratch.window);
    // Bit-identical, not just close: the workspace path must run the exact
    // same arithmetic.
    EXPECT_EQ(heap.gamma, scratch.gamma);
    EXPECT_EQ(heap.utility, scratch.utility);
    EXPECT_EQ(heap.dif, scratch.dif);

    const std::vector<double> heap_gamma = sel.objective_values(input);
    const std::span<const double> ws_gamma = sel.objective_values(input, ws);
    ASSERT_EQ(heap_gamma.size(), ws_gamma.size());
    for (std::size_t t = 0; t < heap_gamma.size(); ++t) {
      EXPECT_EQ(heap_gamma[t], ws_gamma[t]);
    }
  }
}

}  // namespace
}  // namespace blam
