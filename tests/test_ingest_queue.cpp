// SocIngestQueue: FIFO staging buffer between report arrival and batched
// ledger processing. Order, payload integrity and wholesale storage
// recycling are what the batch-determinism argument in DESIGN.md §13 rests
// on, so they get direct coverage here.
#include <gtest/gtest.h>

#include <vector>

#include "core/soc_ingest_queue.hpp"

namespace blam {
namespace {

std::vector<SocSample> make_samples(int base, int count) {
  std::vector<SocSample> out;
  for (int i = 0; i < count; ++i) {
    out.push_back({Time::from_hours(base + i), 0.01 * (base + i)});
  }
  return out;
}

TEST(SocIngestQueue, FifoOrderAndPayloadIntegrity) {
  SocIngestQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);

  for (int r = 0; r < 5; ++r) {
    q.push(100 + r, static_cast<std::uint16_t>(r), static_cast<std::uint8_t>(0xA0 + r),
           make_samples(10 * r, r + 1));
  }
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.queued_samples(), 1u + 2u + 3u + 4u + 5u);
  EXPECT_EQ(q.total_pushed(), 5u);

  for (int r = 0; r < 5; ++r) {
    ASSERT_FALSE(q.empty());
    const SocIngestQueue::Record rec = q.front();
    EXPECT_EQ(rec.node_id, static_cast<std::uint32_t>(100 + r));
    EXPECT_EQ(rec.report_seq, static_cast<std::uint16_t>(r));
    EXPECT_EQ(rec.report_crc, static_cast<std::uint8_t>(0xA0 + r));
    const auto samples = q.front_samples();
    ASSERT_EQ(samples.size(), static_cast<std::size_t>(r + 1));
    for (int i = 0; i <= r; ++i) {
      EXPECT_EQ(samples[i].t, Time::from_hours(10 * r + i));
      EXPECT_EQ(samples[i].soc, 0.01 * (10 * r + i));
    }
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.queued_samples(), 0u);
}

TEST(SocIngestQueue, WholesaleRecycleKeepsCapacity) {
  SocIngestQueue q;
  for (int r = 0; r < 64; ++r) {
    q.push(r, static_cast<std::uint16_t>(r), 0, make_samples(r, 8));
  }
  while (!q.empty()) q.pop_front();
  const std::size_t rec_cap = q.record_capacity();
  const std::size_t sam_cap = q.sample_capacity();
  EXPECT_GE(rec_cap, 64u);
  EXPECT_GE(sam_cap, 64u * 8u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.total_pushed(), 64u);

  // Refill at the same rate: the drained storage is reused in place, no
  // reallocation.
  for (int round = 0; round < 10; ++round) {
    for (int r = 0; r < 64; ++r) {
      q.push(r, static_cast<std::uint16_t>(r), 0, make_samples(r, 8));
    }
    while (!q.empty()) q.pop_front();
  }
  EXPECT_EQ(q.record_capacity(), rec_cap);
  EXPECT_EQ(q.sample_capacity(), sam_cap);
  EXPECT_EQ(q.total_pushed(), 64u * 11u);
}

TEST(SocIngestQueue, InterleavedPushPopKeepsArrivalOrder) {
  SocIngestQueue q;
  q.push(1, 1, 0, make_samples(0, 2));
  q.push(2, 1, 0, make_samples(2, 2));
  EXPECT_EQ(q.front().node_id, 1u);
  q.pop_front();
  // Push while non-empty, then drain: arrival order is preserved even
  // though the head index is mid-buffer.
  q.push(3, 1, 0, make_samples(4, 2));
  EXPECT_EQ(q.front().node_id, 2u);
  q.pop_front();
  EXPECT_EQ(q.front().node_id, 3u);
  EXPECT_EQ(q.front_samples()[0].t, Time::from_hours(4));
  q.pop_front();
  EXPECT_TRUE(q.empty());
}

TEST(SocIngestQueue, EmptyReportCarriesNoSamples) {
  SocIngestQueue q;
  q.push(9, 3, 0x5A, {});
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.queued_samples(), 0u);
  EXPECT_TRUE(q.front_samples().empty());
  EXPECT_EQ(q.front().report_seq, 3u);
  q.pop_front();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace blam
