// Determinism guarantees of the fault-injection subsystem:
//   - a scenario without faults builds no FaultPlan at all;
//   - attaching a FaultPlan whose faults lie outside the simulated horizon
//     leaves every result bit-identical to the fault-free twin (fault
//     streams fork off a dedicated salt, so the channel/traffic/topology
//     draws are untouched);
//   - each fault source owns an independent child stream, so reseeding one
//     source never shifts another;
//   - the Gilbert-Elliott chain and the outage schedule replay exactly from
//     (config, seed).
#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "fault/gilbert_elliott.hpp"
#include "net/experiment.hpp"
#include "net/network.hpp"

namespace blam {
namespace {

ScenarioConfig small_blam(int nodes = 15, std::uint64_t seed = 7) {
  ScenarioConfig c;
  c.policy = PolicyKind::kBlam;
  c.theta = 0.5;
  c.n_nodes = nodes;
  c.seed = seed;
  c.label = c.policy_label();
  return c;
}

TEST(FaultRng, AbsentFaultsBuildNoPlan) {
  ScenarioConfig c = small_blam(3);
  EXPECT_FALSE(c.faults.any());
  Network network{c};
  EXPECT_EQ(network.fault_plan(), nullptr);
}

TEST(FaultRng, EachSourceFlipsAny) {
  FaultPlanConfig f;
  EXPECT_FALSE(f.any());
  f.outage_daily_duration = Time::from_hours(1.0);
  EXPECT_TRUE(f.any() && f.outages_enabled());
  f = FaultPlanConfig{};
  f.outage_random_per_day = 0.5;
  EXPECT_TRUE(f.any() && f.outages_enabled());
  f = FaultPlanConfig{};
  f.ack_loss_bad = 0.9;
  EXPECT_TRUE(f.any() && f.ack_loss_enabled());
  f = FaultPlanConfig{};
  f.crash_per_year = 2.0;
  EXPECT_TRUE(f.any() && f.crashes_enabled());
  f = FaultPlanConfig{};
  f.drought_duration = Time::from_days(3.0);
  f.drought_scale = 0.2;
  EXPECT_TRUE(f.any() && f.drought_enabled());
}

TEST(FaultRng, OutOfHorizonFaultsAreBitIdenticalToAbsent) {
  // A drought parked at day 300 builds a real FaultPlan (every node routes
  // its harvest integrals through it), yet a 2-day run must match the
  // fault-free twin exactly: fault streams fork off their own salt and the
  // scaled integrals degenerate to the plain ones outside the drought.
  ScenarioConfig plain = small_blam();
  ScenarioConfig faulty = plain;
  faulty.faults.drought_start = Time::from_days(300.0);
  faulty.faults.drought_duration = Time::from_days(5.0);
  faulty.faults.drought_scale = 0.25;
  ASSERT_TRUE(faulty.faults.any());

  const ExperimentResult a = run_scenario(plain, Time::from_days(2.0));
  const ExperimentResult b = run_scenario(faulty, Time::from_days(2.0));
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].generated, b.nodes[i].generated);
    EXPECT_EQ(a.nodes[i].delivered, b.nodes[i].delivered);
    EXPECT_EQ(a.nodes[i].tx_attempts, b.nodes[i].tx_attempts);
    EXPECT_EQ(a.nodes[i].retx, b.nodes[i].retx);
    EXPECT_EQ(a.nodes[i].tx_energy.joules(), b.nodes[i].tx_energy.joules());
    EXPECT_EQ(a.nodes[i].degradation, b.nodes[i].degradation);
  }
}

TEST(FaultRng, StalenessKnobAloneChangesNothingWhenFeedbackIsFresh) {
  // Dissemination refreshes w_u daily, so with k = 30 periods the ramp never
  // engages in a short run and the knob must be behaviour-neutral.
  ScenarioConfig plain = small_blam();
  ScenarioConfig resilient = plain;
  resilient.stale_feedback_k = 30.0;
  const ExperimentResult a = run_scenario(plain, Time::from_days(2.0));
  const ExperimentResult b = run_scenario(resilient, Time::from_days(2.0));
  EXPECT_EQ(a.events_executed, b.events_executed);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].delivered, b.nodes[i].delivered);
    EXPECT_EQ(a.nodes[i].tx_energy.joules(), b.nodes[i].tx_energy.joules());
  }
}

TEST(FaultRng, FaultRunsReplayExactly) {
  // Same config + seed => identical trajectory even with every fault source
  // firing. This is the property the resilience bench leans on.
  ScenarioConfig c = small_blam(10, 21);
  c.faults.outage_daily_start = Time::from_hours(8.0);
  c.faults.outage_daily_duration = Time::from_hours(4.0);
  c.faults.outage_random_per_day = 1.0;
  c.faults.ack_loss_bad = 0.9;
  c.faults.crash_per_year = 20.0;
  c.faults.drought_start = Time::from_days(1.0);
  c.faults.drought_duration = Time::from_days(1.0);
  c.faults.drought_scale = 0.3;
  c.stale_feedback_k = 2.0;
  c.ack_failure_backoff = true;

  const ExperimentResult a = run_scenario(c, Time::from_days(3.0));
  const ExperimentResult b = run_scenario(c, Time::from_days(3.0));
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].generated, b.nodes[i].generated);
    EXPECT_EQ(a.nodes[i].delivered, b.nodes[i].delivered);
    EXPECT_EQ(a.nodes[i].crashes, b.nodes[i].crashes);
    EXPECT_EQ(a.nodes[i].lost_in_outage, b.nodes[i].lost_in_outage);
    EXPECT_EQ(a.nodes[i].tx_energy.joules(), b.nodes[i].tx_energy.joules());
    EXPECT_EQ(a.nodes[i].degradation, b.nodes[i].degradation);
  }
  EXPECT_EQ(a.summary.total_outage_s, b.summary.total_outage_s);
}

TEST(FaultRng, OutageScheduleIsDeterministicAndIndependentOfQueryOrder) {
  FaultPlanConfig f;
  f.outage_daily_start = Time::from_hours(2.0);
  f.outage_daily_duration = Time::from_hours(6.0);
  f.outage_random_per_day = 2.0;

  FaultPlan a{f, Rng{42, 1}.fork(0xfa17)};
  FaultPlan b{f, Rng{42, 1}.fork(0xfa17)};

  // a is probed minute-by-minute; b jumps straight to the end. The lazily
  // extended schedule must agree regardless of how it was materialized.
  int out_minutes = 0;
  const Time end = Time::from_days(5.0);
  for (Time t = Time::zero(); t < end; t = t + Time::from_minutes(1.0)) {
    if (a.gateway_out(t)) ++out_minutes;
  }
  EXPECT_EQ(b.outage_seconds_until(end), a.outage_seconds_until(end));
  // Daily fixed windows alone give 6 h/day; random outages only add.
  EXPECT_GE(out_minutes, 5 * 6 * 60);
  EXPECT_GE(a.outage_seconds_until(end).hours(), 30.0);

  // A different seed shifts the random outages but keeps the fixed windows.
  FaultPlan c{f, Rng{43, 1}.fork(0xfa17)};
  EXPECT_TRUE(c.gateway_out(Time::from_hours(3.0)));  // inside the daily window
  EXPECT_NE(c.outage_seconds_until(end).seconds(), a.outage_seconds_until(end).seconds());
}

TEST(FaultRng, FixedDailyWindowEdgesAreExact) {
  FaultPlanConfig f;
  f.outage_daily_start = Time::from_hours(10.0);
  f.outage_daily_duration = Time::from_hours(2.0);
  FaultPlan plan{f, Rng{1, 1}.fork(0xfa17)};
  const Time day = Time::from_days(1.0);
  for (int d = 0; d < 3; ++d) {
    const Time start = day * std::int64_t{d} + Time::from_hours(10.0);
    EXPECT_FALSE(plan.gateway_out(start - Time::from_seconds(1.0)));
    EXPECT_TRUE(plan.gateway_out(start));
    EXPECT_TRUE(plan.gateway_out(start + Time::from_hours(2.0) - Time::from_seconds(1.0)));
    EXPECT_FALSE(plan.gateway_out(start + Time::from_hours(2.0)));
  }
  EXPECT_EQ(plan.outage_seconds_until(day * std::int64_t{3}).hours(), 6.0);
  // last_outage_end_before finds the previous day's window end.
  const Time end_day0 = Time::from_hours(12.0);
  EXPECT_EQ(plan.last_outage_end_before(Time::from_hours(20.0)).seconds(), end_day0.seconds());
  EXPECT_EQ(plan.last_outage_end_before(Time::from_hours(5.0)).seconds(), 0.0);
}

TEST(FaultRng, ForkSaltsDecoupleFaultSources) {
  // Two plans that differ only in whether the ACK channel is enabled must
  // produce the same outage schedule: the channel draws from its own child
  // stream, not the outage stream.
  FaultPlanConfig outages_only;
  outages_only.outage_random_per_day = 3.0;
  FaultPlanConfig both = outages_only;
  both.ack_loss_bad = 1.0;

  FaultPlan a{outages_only, Rng{9, 1}.fork(0xfa17)};
  FaultPlan b{both, Rng{9, 1}.fork(0xfa17)};
  const Time end = Time::from_days(10.0);
  // Interleave ACK-channel queries on b to consume draws from its chain.
  for (Time t = Time::zero(); t < end; t = t + Time::from_hours(1.0)) {
    (void)b.downlink_lost(0, t);
    EXPECT_EQ(a.gateway_out(t), b.gateway_out(t)) << "t=" << t.hours() << "h";
  }
  EXPECT_EQ(a.outage_seconds_until(end).seconds(), b.outage_seconds_until(end).seconds());
}

TEST(FaultRng, PerGatewayAckChannelsAreIndependent) {
  FaultPlanConfig f;
  f.ack_loss_good = 0.0;
  f.ack_loss_bad = 1.0;
  f.ack_good_mean = Time::from_minutes(30.0);
  f.ack_bad_mean = Time::from_minutes(30.0);
  FaultPlan plan{f, Rng{5, 1}.fork(0xfa17)};
  int diverged = 0;
  for (int i = 0; i < 2000; ++i) {
    const Time t = Time::from_seconds(30.0 * i);
    if (plan.downlink_lost(0, t) != plan.downlink_lost(1, t)) ++diverged;
  }
  EXPECT_GT(diverged, 0);  // distinct chains, not one shared stream
}

TEST(FaultRng, GilbertElliottReplaysAndMixes) {
  GilbertElliott::Params p;
  p.loss_good = 0.0;
  p.loss_bad = 1.0;
  p.good_mean = Time::from_minutes(30.0);
  p.bad_mean = Time::from_minutes(10.0);
  GilbertElliott a{p, Rng{77, 2}};
  GilbertElliott b{p, Rng{77, 2}};
  int losses = 0;
  const int queries = 20000;
  for (int i = 0; i < queries; ++i) {
    const Time t = Time::from_seconds(10.0 * i);  // ~55 hours total
    const bool lost = a.lost(t);
    EXPECT_EQ(lost, b.lost(t));
    losses += lost ? 1 : 0;
  }
  // With loss 0/1 the loss rate estimates the bad-state occupancy, 25%.
  const double rate = static_cast<double>(losses) / queries;
  EXPECT_NEAR(rate, a.bad_fraction(), 0.08);
  EXPECT_NEAR(a.bad_fraction(), 0.25, 1e-12);
}

TEST(FaultRng, CrashStreamsDifferPerNode) {
  FaultPlanConfig f;
  f.crash_per_year = 12.0;
  FaultPlan plan{f, Rng{3, 1}.fork(0xfa17)};
  Rng s0 = plan.crash_stream(0);
  Rng s0_again = plan.crash_stream(0);
  Rng s1 = plan.crash_stream(1);
  const double a = s0.exponential(30.0);
  EXPECT_EQ(a, s0_again.exponential(30.0));   // replayable
  EXPECT_NE(a, s1.exponential(30.0));         // decoupled across nodes
}

TEST(FaultRng, DroughtFactorsAreExact) {
  FaultPlanConfig f;
  f.drought_start = Time::from_days(2.0);
  f.drought_duration = Time::from_days(1.0);
  f.drought_scale = 0.5;
  FaultPlan plan{f, Rng{4, 1}.fork(0xfa17)};
  EXPECT_EQ(plan.drought_scale_at(Time::from_days(1.0)), 1.0);
  EXPECT_EQ(plan.drought_scale_at(Time::from_days(2.5)), 0.5);
  EXPECT_EQ(plan.drought_scale_at(Time::from_days(3.0)), 1.0);
  // Interval half inside the drought: time-weighted average of 1 and 0.5.
  EXPECT_DOUBLE_EQ(plan.drought_factor(Time::from_days(1.5), Time::from_days(2.5)), 0.75);
  EXPECT_DOUBLE_EQ(plan.drought_factor(Time::from_days(2.1), Time::from_days(2.9)), 0.5);
  EXPECT_DOUBLE_EQ(plan.drought_factor(Time::from_days(4.0), Time::from_days(5.0)), 1.0);
}

}  // namespace
}  // namespace blam
