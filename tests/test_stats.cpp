#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace blam {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSingleStream) {
  Rng rng{11};
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamped into bin 0
  h.add(100.0);  // clamped into bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(QuantileSampler, ExactQuantiles) {
  QuantileSampler q;
  for (int i = 1; i <= 100; ++i) q.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
  EXPECT_NEAR(q.median(), 50.5, 1e-12);
  EXPECT_NEAR(q.quantile(0.25), 25.75, 1e-12);
  EXPECT_DOUBLE_EQ(q.mean(), 50.5);
}

TEST(QuantileSampler, EmptyIsZero) {
  QuantileSampler q;
  EXPECT_EQ(q.quantile(0.5), 0.0);
  EXPECT_EQ(q.mean(), 0.0);
}

TEST(QuantileSampler, AddAfterQuantileStaysCorrect) {
  QuantileSampler q;
  q.add(3.0);
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.median(), 2.0);
  q.add(2.0);  // resort needed
  EXPECT_DOUBLE_EQ(q.median(), 2.0);
  q.add(100.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
}

TEST(BoxSummary, OutlierCount) {
  std::vector<double> values{1.0, 2.0, 2.5, 3.0, 3.5, 4.0, 50.0};
  const BoxSummary box = summarize_box(values);
  EXPECT_EQ(box.min, 1.0);
  EXPECT_EQ(box.max, 50.0);
  EXPECT_EQ(box.outliers, 1u);  // the 50.0
  EXPECT_GT(box.q3, box.q1);
}

TEST(BoxSummary, EmptyInput) {
  const BoxSummary box = summarize_box({});
  EXPECT_EQ(box.outliers, 0u);
  EXPECT_EQ(box.mean, 0.0);
}

}  // namespace
}  // namespace blam
