#include "lora/interference.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

AirPacket packet(std::uint64_t id, double start_s, double dur_s, double power_dbm,
                 SpreadingFactor sf = SpreadingFactor::kSF10, int channel = 0) {
  AirPacket p;
  p.id = id;
  p.start = Time::from_seconds(start_s);
  p.end = Time::from_seconds(start_s + dur_s);
  p.rx_power_dbm = power_dbm;
  p.sf = sf;
  p.channel = channel;
  return p;
}

TEST(IsolationMatrix, DiagonalRequiresCaptureMargin) {
  for (SpreadingFactor sf : kAllSpreadingFactors) {
    EXPECT_DOUBLE_EQ(sir_isolation_db(sf, sf), 6.0);
  }
}

TEST(IsolationMatrix, OffDiagonalToleratesInterference) {
  EXPECT_LT(sir_isolation_db(SpreadingFactor::kSF7, SpreadingFactor::kSF12), 0.0);
  EXPECT_DOUBLE_EQ(sir_isolation_db(SpreadingFactor::kSF7, SpreadingFactor::kSF8), -16.0);
  EXPECT_DOUBLE_EQ(sir_isolation_db(SpreadingFactor::kSF12, SpreadingFactor::kSF7), -36.0);
}

TEST(Interference, LonePacketSurvives) {
  InterferenceTracker tracker;
  const AirPacket p = packet(1, 0.0, 0.3, -100.0);
  tracker.add(p);
  EXPECT_TRUE(tracker.survives(p));
}

TEST(Interference, EqualPowerCoSfCollisionDestroysBoth) {
  InterferenceTracker tracker;
  const AirPacket a = packet(1, 0.0, 0.3, -100.0);
  const AirPacket b = packet(2, 0.1, 0.3, -100.0);
  tracker.add(a);
  tracker.add(b);
  // Full-ish overlap at equal power: neither clears the +6 dB margin.
  EXPECT_FALSE(tracker.survives(a));
  EXPECT_FALSE(tracker.survives(b));
}

TEST(Interference, StrongPacketCapturesOverWeak) {
  InterferenceTracker tracker;
  const AirPacket strong = packet(1, 0.0, 0.3, -90.0);
  const AirPacket weak = packet(2, 0.0, 0.3, -110.0);
  tracker.add(strong);
  tracker.add(weak);
  EXPECT_TRUE(tracker.survives(strong));   // 20 dB above the interferer
  EXPECT_FALSE(tracker.survives(weak));
}

TEST(Interference, DifferentChannelsDoNotInteract) {
  InterferenceTracker tracker;
  const AirPacket a = packet(1, 0.0, 0.3, -100.0, SpreadingFactor::kSF10, 0);
  const AirPacket b = packet(2, 0.0, 0.3, -100.0, SpreadingFactor::kSF10, 1);
  tracker.add(a);
  tracker.add(b);
  EXPECT_TRUE(tracker.survives(a));
  EXPECT_TRUE(tracker.survives(b));
}

TEST(Interference, NonOverlappingInTimeDoNotInteract) {
  InterferenceTracker tracker;
  const AirPacket a = packet(1, 0.0, 0.3, -100.0);
  const AirPacket b = packet(2, 0.3, 0.3, -100.0);  // back-to-back, no overlap
  tracker.add(a);
  tracker.add(b);
  EXPECT_TRUE(tracker.survives(a));
  EXPECT_TRUE(tracker.survives(b));
}

TEST(Interference, CrossSfQuasiOrthogonality) {
  InterferenceTracker tracker;
  // SF10 signal with an equal-power SF7 interferer: isolation -30 dB, so the
  // SF10 packet survives easily; the SF7 packet (isolation -19 vs SF10 at
  // 0 dB SIR) also survives.
  const AirPacket sf10 = packet(1, 0.0, 0.3, -100.0, SpreadingFactor::kSF10);
  const AirPacket sf7 = packet(2, 0.0, 0.1, -100.0, SpreadingFactor::kSF7);
  tracker.add(sf10);
  tracker.add(sf7);
  EXPECT_TRUE(tracker.survives(sf10));
  EXPECT_TRUE(tracker.survives(sf7));
}

TEST(Interference, CrossSfStrongInterfererStillKills) {
  InterferenceTracker tracker;
  // SF10 signal, SF7 interferer 35 dB stronger with full overlap: below the
  // -30 dB isolation -> destroyed.
  const AirPacket sf10 = packet(1, 0.0, 0.3, -120.0, SpreadingFactor::kSF10);
  const AirPacket sf7 = packet(2, 0.0, 0.3, -85.0, SpreadingFactor::kSF7);
  tracker.add(sf10);
  tracker.add(sf7);
  EXPECT_FALSE(tracker.survives(sf10));
}

TEST(Interference, ShortOverlapIntegratesEnergy) {
  InterferenceTracker tracker;
  // Interferer overlaps only 1% of the signal: energy ratio gives ~+20 dB
  // SIR even at equal power -> survives the +6 dB co-SF margin.
  const AirPacket sig = packet(1, 0.0, 1.0, -100.0);
  const AirPacket jam = packet(2, 0.99, 1.0, -100.0);
  tracker.add(sig);
  tracker.add(jam);
  EXPECT_TRUE(tracker.survives(sig));
  // The jammer loses 1% of its energy to the signal but survives too.
  EXPECT_TRUE(tracker.survives(jam));
}

TEST(Interference, MultipleWeakInterferersAccumulate) {
  InterferenceTracker tracker;
  const AirPacket sig = packet(1, 0.0, 1.0, -100.0);
  tracker.add(sig);
  // Each interferer alone is 8 dB down (survivable: SIR 8 > 6); five of them
  // push cumulative interference above the margin.
  for (std::uint64_t i = 2; i <= 6; ++i) {
    tracker.add(packet(i, 0.0, 1.0, -108.0));
  }
  EXPECT_FALSE(tracker.survives(sig));
}

TEST(Interference, PruneDropsOldPackets) {
  InterferenceTracker tracker;
  for (int i = 0; i < 100; ++i) {
    tracker.add(packet(static_cast<std::uint64_t>(i) + 1, i * 1.0, 0.3, -100.0));
  }
  EXPECT_EQ(tracker.tracked(), 100u);
  tracker.prune(Time::from_seconds(100.0));
  EXPECT_LT(tracker.tracked(), 10u);
}

TEST(Interference, PruneKeepsRecentPackets) {
  InterferenceTracker tracker;
  const AirPacket sig = packet(1, 100.0, 1.0, -100.0);
  const AirPacket jam = packet(2, 100.0, 1.0, -100.0);
  tracker.add(sig);
  tracker.add(jam);
  tracker.prune(Time::from_seconds(101.0));
  EXPECT_FALSE(tracker.survives(sig));  // interferer still tracked
}

}  // namespace
}  // namespace blam
