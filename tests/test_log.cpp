#include "common/log.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { Log::set_level(LogLevel::kWarn); }  // restore default
};

TEST_F(LogTest, LevelGating) {
  Log::set_level(LogLevel::kWarn);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));

  Log::set_level(LogLevel::kDebug);
  EXPECT_TRUE(Log::enabled(LogLevel::kDebug));

  Log::set_level(LogLevel::kOff);
  EXPECT_FALSE(Log::enabled(LogLevel::kError));
}

TEST_F(LogTest, LevelRoundTrips) {
  Log::set_level(LogLevel::kInfo);
  EXPECT_EQ(Log::level(), LogLevel::kInfo);
}

TEST_F(LogTest, EmittingDoesNotCrash) {
  Log::set_level(LogLevel::kDebug);
  Log::debug("plain message");
  Log::info("formatted %d %s", 42, "ok");
  Log::warn("warn %f", 1.5);
  Log::error("error");
  Log::set_level(LogLevel::kOff);
  Log::error("suppressed %d", 1);
}

}  // namespace
}  // namespace blam
