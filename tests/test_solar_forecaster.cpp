#include "forecast/solar_forecaster.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace blam {
namespace {

class ForecasterTest : public ::testing::Test {
 protected:
  ForecasterTest() : trace_{make_config()}, harvester_{trace_, 1.0} {}

  static SolarTraceConfig make_config() {
    SolarTraceConfig c;
    c.peak = Power::from_milli_watts(20.0);
    c.seed = 5;
    return c;
  }

  SolarTrace trace_;
  Harvester harvester_;
};

TEST_F(ForecasterTest, PerfectForecastMatchesTruth) {
  SolarForecaster f{harvester_, 0.0, Rng{1}};
  const Time noon = Time::from_days(150.0) + Time::from_hours(11.0);
  const auto windows = f.forecast(noon, Time::from_minutes(1.0), 30);
  ASSERT_EQ(windows.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    const Time t0 = noon + Time::from_minutes(i);
    const Time t1 = noon + Time::from_minutes(i + 1);
    EXPECT_DOUBLE_EQ(windows[static_cast<std::size_t>(i)].joules(),
                     harvester_.energy_between(t0, t1).joules());
  }
}

TEST_F(ForecasterTest, NightForecastIsZero) {
  SolarForecaster f{harvester_, 0.0, Rng{1}};
  const Time midnight = Time::from_days(150.0);
  const auto windows = f.forecast(midnight, Time::from_minutes(1.0), 10);
  for (const Energy& e : windows) EXPECT_DOUBLE_EQ(e.joules(), 0.0);
}

TEST_F(ForecasterTest, NoisyForecastIsUnbiasedAndNonNegative) {
  SolarForecaster f{harvester_, 0.2, Rng{9}};
  const Time noon = Time::from_days(150.0) + Time::from_hours(12.0);
  const Energy truth = harvester_.energy_between(noon, noon + Time::from_minutes(1.0));
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const Energy e = f.forecast_one(noon, noon + Time::from_minutes(1.0));
    EXPECT_GE(e.joules(), 0.0);
    sum += e.joules();
  }
  EXPECT_NEAR(sum / n, truth.joules(), truth.joules() * 0.02);
}

TEST_F(ForecasterTest, ValidatesArguments) {
  EXPECT_THROW(SolarForecaster(harvester_, -0.1, Rng{1}), std::invalid_argument);
  SolarForecaster f{harvester_, 0.0, Rng{1}};
  EXPECT_THROW(f.forecast(Time::zero(), Time::zero(), 5), std::invalid_argument);
  EXPECT_THROW(f.forecast(Time::zero(), Time::from_minutes(1.0), -1), std::invalid_argument);
}

TEST_F(ForecasterTest, ZeroWindowsGivesEmpty) {
  SolarForecaster f{harvester_, 0.0, Rng{1}};
  EXPECT_TRUE(f.forecast(Time::zero(), Time::from_minutes(1.0), 0).empty());
}

TEST_F(ForecasterTest, BatchedForecastMatchesSequentialExactly) {
  // forecast_windows must reproduce the per-window forecast_one loop bit
  // for bit — including the noise stream consumption, so two forecasters
  // seeded identically stay in lockstep whichever API they use.
  for (const double sigma : {0.0, 0.2}) {
    SolarForecaster sequential{harvester_, sigma, Rng{42}};
    SolarForecaster batched{harvester_, sigma, Rng{42}};
    const Time window = Time::from_minutes(2.0);
    std::vector<Energy> out;
    for (const double day : {0.0, 120.5, 364.9}) {
      const Time start = Time::from_days(day);
      batched.forecast_windows(start, window, 48, out);
      ASSERT_EQ(out.size(), 48u);
      for (int i = 0; i < 48; ++i) {
        const Energy one = sequential.forecast_one(start + window * std::int64_t{i},
                                                   start + window * std::int64_t{i + 1});
        ASSERT_EQ(out[static_cast<std::size_t>(i)].joules(), one.joules())
            << "sigma=" << sigma << " day=" << day << " window " << i;
      }
    }
  }
}

TEST_F(ForecasterTest, BatchedForecastReusesBufferCapacity) {
  SolarForecaster f{harvester_, 0.0, Rng{1}};
  std::vector<Energy> out;
  f.forecast_windows(Time::zero(), Time::from_minutes(1.0), 60, out);
  const Energy* data = out.data();
  f.forecast_windows(Time::from_days(1.0), Time::from_minutes(1.0), 60, out);
  EXPECT_EQ(out.data(), data);  // no reallocation on reuse
}

TEST_F(ForecasterTest, WindowsPartitionThePeriod) {
  SolarForecaster f{harvester_, 0.0, Rng{1}};
  const Time start = Time::from_days(100.0) + Time::from_hours(10.0);
  const auto windows = f.forecast(start, Time::from_minutes(1.0), 40);
  double sum = 0.0;
  for (const Energy& e : windows) sum += e.joules();
  EXPECT_NEAR(sum, harvester_.energy_between(start, start + Time::from_minutes(40.0)).joules(),
              1e-9);
}

}  // namespace
}  // namespace blam
