#include "energy/battery.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

Battery make(double joules = 100.0, double soc = 0.5) {
  return Battery{Energy::from_joules(joules), soc};
}

TEST(Battery, ConstructionValidatesInput) {
  EXPECT_THROW(Battery(Energy::zero(), 0.5), std::invalid_argument);
  EXPECT_THROW(Battery(Energy::from_joules(-1.0), 0.5), std::invalid_argument);
  EXPECT_THROW(Battery(Energy::from_joules(10.0), -0.1), std::invalid_argument);
  EXPECT_THROW(Battery(Energy::from_joules(10.0), 1.1), std::invalid_argument);
}

TEST(Battery, InitialState) {
  const Battery b = make(100.0, 0.5);
  EXPECT_DOUBLE_EQ(b.original_capacity().joules(), 100.0);
  EXPECT_DOUBLE_EQ(b.stored().joules(), 50.0);
  EXPECT_DOUBLE_EQ(b.soc(), 0.5);
  EXPECT_DOUBLE_EQ(b.degradation(), 0.0);
  EXPECT_FALSE(b.at_end_of_life());
}

TEST(Battery, ChargeRespectsCapacity) {
  Battery b = make(100.0, 0.9);
  const Energy absorbed = b.charge(Energy::from_joules(50.0));
  EXPECT_DOUBLE_EQ(absorbed.joules(), 10.0);
  EXPECT_DOUBLE_EQ(b.soc(), 1.0);
}

TEST(Battery, ChargeRespectsSocCap) {
  Battery b = make(100.0, 0.3);
  const Energy absorbed = b.charge(Energy::from_joules(50.0), 0.5);
  EXPECT_DOUBLE_EQ(absorbed.joules(), 20.0);  // only up to 50% of original
  EXPECT_DOUBLE_EQ(b.soc(), 0.5);
  // Above the cap nothing is absorbed.
  EXPECT_DOUBLE_EQ(b.charge(Energy::from_joules(10.0), 0.5).joules(), 0.0);
}

TEST(Battery, ChargeAboveCapDoesNotDischarge) {
  Battery b = make(100.0, 0.8);
  // Already above a 0.5 cap: charge absorbs nothing but must not drain.
  EXPECT_DOUBLE_EQ(b.charge(Energy::from_joules(10.0), 0.5).joules(), 0.0);
  EXPECT_DOUBLE_EQ(b.soc(), 0.8);
}

TEST(Battery, DischargeBoundedByStored) {
  Battery b = make(100.0, 0.2);
  EXPECT_DOUBLE_EQ(b.discharge(Energy::from_joules(15.0)).joules(), 15.0);
  EXPECT_DOUBLE_EQ(b.stored().joules(), 5.0);
  EXPECT_DOUBLE_EQ(b.discharge(Energy::from_joules(15.0)).joules(), 5.0);
  EXPECT_DOUBLE_EQ(b.stored().joules(), 0.0);
}

TEST(Battery, NegativeAmountsRejected) {
  Battery b = make();
  EXPECT_THROW(b.charge(Energy::from_joules(-1.0)), std::invalid_argument);
  EXPECT_THROW(b.discharge(Energy::from_joules(-1.0)), std::invalid_argument);
}

TEST(Battery, DegradationShrinksCapacity) {
  Battery b = make(100.0, 1.0);
  b.set_degradation(0.1);
  EXPECT_DOUBLE_EQ(b.current_capacity().joules(), 90.0);
  // Stored energy clamps to the shrunken capacity.
  EXPECT_DOUBLE_EQ(b.stored().joules(), 90.0);
  EXPECT_DOUBLE_EQ(b.soc(), 0.9);
}

TEST(Battery, DegradationIsMonotone) {
  Battery b = make();
  b.set_degradation(0.1);
  b.set_degradation(0.05);  // attempts to "heal" are ignored
  EXPECT_DOUBLE_EQ(b.degradation(), 0.1);
}

TEST(Battery, EndOfLifeAtThreshold) {
  Battery b = make();
  b.set_degradation(0.19);
  EXPECT_FALSE(b.at_end_of_life());
  b.set_degradation(0.2);
  EXPECT_TRUE(b.at_end_of_life());
  EXPECT_FALSE(b.at_end_of_life(0.3));
}

TEST(Battery, ChargeCappedByDegradedCapacity) {
  Battery b = make(100.0, 0.0);
  b.set_degradation(0.2);
  const Energy absorbed = b.charge(Energy::from_joules(1000.0));
  EXPECT_DOUBLE_EQ(absorbed.joules(), 80.0);
  EXPECT_DOUBLE_EQ(b.soc(), 0.8);  // SoC is relative to ORIGINAL capacity
}

}  // namespace
}  // namespace blam
