#include "net/state_sampler.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "net/network.hpp"

namespace blam {
namespace {

TEST(StateSampler, CollectsSnapshotsBetweenRuns) {
  ScenarioConfig config = lorawan_scenario(5, 9);
  Network network{config};
  StateSampler sampler{network};

  for (int day = 1; day <= 3; ++day) {
    network.run_until(Time::from_days(day));
    sampler.sample();
  }
  ASSERT_EQ(sampler.size(), 3u);
  for (const auto& snap : sampler.snapshots()) {
    EXPECT_EQ(snap.soc.size(), 5u);
    EXPECT_EQ(snap.degradation.size(), 5u);
    for (double soc : snap.soc) {
      EXPECT_GE(soc, 0.0);
      EXPECT_LE(soc, 1.0);
    }
  }
  // Degradation is monotone across snapshots.
  EXPECT_GE(sampler.snapshots()[2].max_degradation(),
            sampler.snapshots()[0].max_degradation());
  EXPECT_GT(sampler.snapshots()[0].mean_soc(), 0.0);
}

TEST(StateSampler, SnapshotTimesMatchSimulation) {
  ScenarioConfig config = lorawan_scenario(3, 9);
  Network network{config};
  StateSampler sampler{network};
  network.run_until(Time::from_hours(12.0));
  sampler.sample();
  EXPECT_EQ(sampler.snapshots()[0].at, Time::from_hours(12.0));
}

TEST(StateSampler, WritesCsv) {
  ScenarioConfig config = lorawan_scenario(4, 9);
  Network network{config};
  StateSampler sampler{network};
  network.run_until(Time::from_days(1.0));
  sampler.sample();
  network.run_until(Time::from_days(2.0));
  sampler.sample();

  const std::string path = ::testing::TempDir() + "sampler_test.csv";
  sampler.write_csv(path);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1 + 2 * 4);  // header + snapshots * nodes
  std::remove(path.c_str());
}

TEST(StateSampler, CycleAndCalendarComponentsPresent) {
  ScenarioConfig config = lorawan_scenario(3, 9);
  Network network{config};
  StateSampler sampler{network};
  network.run_until(Time::from_days(5.0));
  sampler.sample();
  const auto& snap = sampler.snapshots()[0];
  for (std::size_t i = 0; i < snap.calendar_linear.size(); ++i) {
    EXPECT_GT(snap.calendar_linear[i], 0.0);
    EXPECT_GE(snap.cycle_linear[i], 0.0);
  }
}

}  // namespace
}  // namespace blam
