// Sharded engine: planner decomposition, serial fallbacks, the epoch
// barrier, and — the load-bearing property — bit-identical results against
// the serial Network at any shard count. Test names carry "ShardEngine" so
// the CI tsan leg can select this file with a ctest regex.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "lora/tx_timing_cache.hpp"
#include "sim/shard_engine.hpp"

namespace blam {
namespace {

/// City layout that decomposes exactly: gateways on a 12 km grid, nodes
/// clustered within 1 km of their cell's gateway, no shadowing. The nearest
/// foreign gateway sits >= 11 km out (path loss >= 159.7 dB, rx <= -145.7
/// dBm), below the -143 dBm audibility floor; in-cell links stay above
/// -106.5 dBm. Every cell is its own collision domain.
ScenarioConfig city(int nodes, int gateways, int shards, std::uint64_t seed = 21) {
  ScenarioConfig c;
  c.policy = PolicyKind::kBlam;
  c.theta = 0.5;
  c.n_nodes = nodes;
  c.n_gateways = gateways;
  c.gateway_grid_pitch_m = 12000.0;
  c.cluster_radius_m = 1000.0;
  c.interference_floor_dbm = -143.0;
  c.sf_assignment = SfAssignment::kDistanceBased;
  c.shards = shards;
  c.seed = seed;
  c.label = c.policy_label();
  return c;
}

/// Hand-built deployment for planner unit tests: losses[i][g] in dB.
DeploymentPlan make_deployment(std::vector<Position> gateways,
                               std::vector<std::vector<double>> losses,
                               SpreadingFactor sf = SpreadingFactor::kSF7) {
  DeploymentPlan d;
  d.gateway_positions = std::move(gateways);
  for (auto& row : losses) {
    NodePlan node;
    node.losses_db = std::move(row);
    node.best_loss_db = *std::min_element(node.losses_db.begin(), node.losses_db.end());
    node.sf = sf;
    node.period = Time::from_minutes(16.0);
    node.battery_capacity = Energy::from_joules(100.0);
    d.nodes.push_back(std::move(node));
  }
  return d;
}

void expect_identical(const Metrics& serial, const Metrics& sharded, std::size_t n_nodes) {
  ASSERT_EQ(serial.node_count(), n_nodes);
  ASSERT_EQ(sharded.node_count(), n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    SCOPED_TRACE(i);
    const NodeMetrics& a = serial.node(i);
    const NodeMetrics& b = sharded.node(i);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.exhausted, b.exhausted);
    EXPECT_EQ(a.policy_drops, b.policy_drops);
    EXPECT_EQ(a.brownouts, b.brownouts);
    EXPECT_EQ(a.duty_defers, b.duty_defers);
    EXPECT_EQ(a.tx_attempts, b.tx_attempts);
    EXPECT_EQ(a.retx, b.retx);
    EXPECT_EQ(a.tx_energy.joules(), b.tx_energy.joules());
    EXPECT_EQ(a.utility_sum, b.utility_sum);
    EXPECT_EQ(a.latency_s.count(), b.latency_s.count());
    EXPECT_EQ(a.latency_s.mean(), b.latency_s.mean());
    EXPECT_EQ(a.delivered_latency_s.count(), b.delivered_latency_s.count());
    EXPECT_EQ(a.delivered_latency_s.mean(), b.delivered_latency_s.mean());
    EXPECT_EQ(a.window_counts, b.window_counts);
    EXPECT_EQ(a.w_age_s.count(), b.w_age_s.count());
    EXPECT_EQ(a.w_age_s.mean(), b.w_age_s.mean());
    EXPECT_EQ(a.degradation, b.degradation);
    EXPECT_EQ(a.cycle_linear, b.cycle_linear);
    EXPECT_EQ(a.calendar_linear, b.calendar_linear);
    EXPECT_EQ(a.mean_soc, b.mean_soc);
    EXPECT_EQ(a.final_soc, b.final_soc);
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.reboot_drops, b.reboot_drops);
    EXPECT_EQ(a.lost_in_outage, b.lost_in_outage);
    EXPECT_EQ(a.recovery_s.count(), b.recovery_s.count());
    EXPECT_EQ(a.recovery_s.mean(), b.recovery_s.mean());
  }
  const GatewayMetrics& ga = serial.gateway();
  const GatewayMetrics& gb = sharded.gateway();
  EXPECT_EQ(ga.arrivals, gb.arrivals);
  EXPECT_EQ(ga.received, gb.received);
  EXPECT_EQ(ga.lost_interference, gb.lost_interference);
  EXPECT_EQ(ga.lost_half_duplex, gb.lost_half_duplex);
  EXPECT_EQ(ga.lost_no_demod_path, gb.lost_no_demod_path);
  EXPECT_EQ(ga.lost_under_sensitivity, gb.lost_under_sensitivity);
  EXPECT_EQ(ga.acks_sent, gb.acks_sent);
  EXPECT_EQ(ga.acks_rx2, gb.acks_rx2);
  EXPECT_EQ(ga.acks_unschedulable, gb.acks_unschedulable);
  EXPECT_EQ(ga.acks_undecodable, gb.acks_undecodable);
  EXPECT_EQ(ga.duplicates, gb.duplicates);
  EXPECT_EQ(ga.recomputes_skipped, gb.recomputes_skipped);
  EXPECT_EQ(ga.lost_outage, gb.lost_outage);
  EXPECT_EQ(ga.acks_lost_outage, gb.acks_lost_outage);
  EXPECT_EQ(ga.acks_lost_channel, gb.acks_lost_channel);
  EXPECT_EQ(ga.reports_dropped_fault, gb.reports_dropped_fault);
  EXPECT_EQ(ga.reports_duplicated_fault, gb.reports_duplicated_fault);
  EXPECT_EQ(ga.reports_reordered_fault, gb.reports_reordered_fault);
  EXPECT_EQ(ga.reports_corrupted_fault, gb.reports_corrupted_fault);
  EXPECT_EQ(ga.reports_truncated_fault, gb.reports_truncated_fault);
  const LedgerCounters fa = serial.summarize().feedback;
  const LedgerCounters fb = sharded.summarize().feedback;
  EXPECT_EQ(fa.reports_accepted, fb.reports_accepted);
  EXPECT_EQ(fa.reports_duplicate, fb.reports_duplicate);
  EXPECT_EQ(fa.samples_rejected_nonmonotonic, fb.samples_rejected_nonmonotonic);
  EXPECT_EQ(fa.gaps_bridged, fb.gaps_bridged);
}

TEST(ShardEnginePlanner, SingleGatewayIsOneDomain) {
  const ScenarioConfig c = city(40, 1, 4);
  const Rng root{c.seed, 0};
  const ShardPlan plan = plan_shards(c, plan_deployment(c, root), 4);
  EXPECT_TRUE(plan.serial);
  EXPECT_EQ(plan.domains, 1);
  EXPECT_EQ(plan.serial_reason, "single collision domain");
}

TEST(ShardEnginePlanner, DefaultFloorCouplesEverything) {
  // The default -500 dBm floor makes every gateway audible to every node:
  // one domain, serial fold — exactly why pre-existing scenarios cannot
  // change behaviour under any BLAM_SHARDS value.
  ScenarioConfig c = city(40, 4, 4);
  c.interference_floor_dbm = -500.0;
  const Rng root{c.seed, 0};
  const ShardPlan plan = plan_shards(c, plan_deployment(c, root), 4);
  EXPECT_TRUE(plan.serial);
  EXPECT_EQ(plan.domains, 1);
}

TEST(ShardEnginePlanner, CityDecomposesIntoCells) {
  const ScenarioConfig c = city(64, 4, 4);
  const Rng root{c.seed, 0};
  const DeploymentPlan deployment = plan_deployment(c, root);
  const ShardPlan plan = plan_shards(c, deployment, 4);
  ASSERT_FALSE(plan.serial);
  EXPECT_EQ(plan.domains, 4);
  EXPECT_EQ(plan.effective, 4);
  // A node shares a shard with the gateways of its own domain.
  for (std::size_t i = 0; i < deployment.nodes.size(); ++i) {
    const int g = static_cast<int>(i % 4);
    EXPECT_EQ(plan.shard_of_node[i], plan.shard_of_gateway[static_cast<std::size_t>(g)]);
  }
}

TEST(ShardEnginePlanner, BoundaryNodeFoldsDomains) {
  // Three isolated cells; one boundary node hears gateways 0 AND 1 above
  // the floor, welding their cells into one domain. Gateway 2 stays alone.
  ScenarioConfig c = city(4, 3, 4);
  // Audibility at the -143 dBm floor and 14 dBm TX: loss <= 157 dB couples,
  // loss >= 170 dB does not.
  const auto deployment = make_deployment(
      {{0.0, 0.0}, {12000.0, 0.0}, {24000.0, 0.0}},
      {{120.0, 170.0, 180.0},     // node 0: only gw0 audible (rx -106 dBm)
       {130.0, 135.0, 170.0},     // node 1: BOUNDARY, gw0 and gw1 audible
       {170.0, 120.0, 180.0},     // node 2: only gw1
       {180.0, 170.0, 120.0}});   // node 3: only gw2
  const ShardPlan plan = plan_shards(c, deployment, 4);
  ASSERT_FALSE(plan.serial);
  EXPECT_EQ(plan.domains, 2);
  EXPECT_EQ(plan.effective, 2);
  EXPECT_EQ(plan.domain_of_gateway[0], plan.domain_of_gateway[1]);
  EXPECT_NE(plan.domain_of_gateway[0], plan.domain_of_gateway[2]);
  // The boundary node lands in the welded domain's shard.
  EXPECT_EQ(plan.shard_of_node[1], plan.shard_of_gateway[0]);
}

TEST(ShardEnginePlanner, SerialFallbackConditions) {
  const Rng root{21, 0};
  {
    ScenarioConfig c = city(16, 4, 4);
    const ShardPlan plan = plan_shards(c, plan_deployment(c, root), 1);
    EXPECT_TRUE(plan.serial);
    EXPECT_EQ(plan.serial_reason, "shards <= 1 requested");
  }
  {
    // Fault injection no longer forces serial: each shard rebuilds the full
    // FaultPlan from the 0xfa17 fork and its streams are keyed by global
    // gateway / node ids.
    ScenarioConfig c = city(16, 4, 4);
    c.faults.outage_random_per_day = 1.0;
    EXPECT_FALSE(plan_shards(c, plan_deployment(c, root), 4).serial);
  }
  {
    ScenarioConfig c = city(16, 4, 4);
    c.interference.tx_per_hour = 10.0;
    EXPECT_TRUE(plan_shards(c, plan_deployment(c, root), 4).serial);
  }
  {
    ScenarioConfig c = city(16, 4, 4);
    c.packet_log = true;
    EXPECT_TRUE(plan_shards(c, plan_deployment(c, root), 4).serial);
  }
  {
    ScenarioConfig c = city(16, 4, 4);
    c.fast_fading = true;
    EXPECT_TRUE(plan_shards(c, plan_deployment(c, root), 4).serial);
  }
  {
    ScenarioConfig c = city(16, 4, 4);
    c.adr_enabled = true;
    EXPECT_TRUE(plan_shards(c, plan_deployment(c, root), 4).serial);
  }
}

TEST(ShardEnginePlanner, ResolveShardsEnvOverride) {
  ASSERT_EQ(setenv("BLAM_SHARDS", "8", 1), 0);
  EXPECT_EQ(resolve_shards(2), 8);
  ASSERT_EQ(setenv("BLAM_SHARDS", "0", 1), 0);
  EXPECT_EQ(resolve_shards(2), 0);
  ASSERT_EQ(setenv("BLAM_SHARDS", "nope", 1), 0);
  EXPECT_EQ(resolve_shards(2), 2);
  ASSERT_EQ(setenv("BLAM_SHARDS", "-3", 1), 0);
  EXPECT_EQ(resolve_shards(2), 2);
  ASSERT_EQ(unsetenv("BLAM_SHARDS"), 0);
  EXPECT_EQ(resolve_shards(3), 3);
}

TEST(ShardEngineLookahead, TracksTheFastestAssignedSf) {
  ScenarioConfig c = city(2, 1, 1);
  TxTimingCache timing;
  const auto toa = [&](SpreadingFactor sf) {
    TxParams p;
    p.sf = sf;
    p.bandwidth_hz = 125e3;
    p.payload_bytes = c.payload_bytes + 4;
    p.tx_power_dbm = c.tx_power_dbm;
    return timing.time_on_air(p.with_auto_ldro());
  };
  const auto slow = make_deployment({{0.0, 0.0}}, {{120.0}, {120.0}}, SpreadingFactor::kSF12);
  EXPECT_EQ(cross_shard_lookahead(c, slow).us(),
            (toa(SpreadingFactor::kSF12) + c.timings.rx1_delay).us());
  // Adding one SF7 node shrinks the bound to the SF7 time-on-air.
  auto mixed = make_deployment({{0.0, 0.0}}, {{120.0}, {120.0}}, SpreadingFactor::kSF12);
  mixed.nodes[1].sf = SpreadingFactor::kSF7;
  EXPECT_EQ(cross_shard_lookahead(c, mixed).us(),
            (toa(SpreadingFactor::kSF7) + c.timings.rx1_delay).us());
  EXPECT_LT(cross_shard_lookahead(c, mixed).us(), cross_shard_lookahead(c, slow).us());
}

TEST(ShardEngineIdentity, TwoShardsBitIdenticalToSerial) {
  // The non-negotiable: a 4-cell city on 2 shards reproduces the serial
  // engine bit for bit — every node row, the compensated gateway counters,
  // the ledger counters, and the disseminated w_u values.
  const ScenarioConfig c = city(48, 4, 2);
  const Time duration = Time::from_days(2.0);

  Network serial{c};
  serial.run_until(duration);
  serial.finalize_metrics();

  ShardedNetwork sharded{c};
  ASSERT_FALSE(sharded.serial());
  EXPECT_EQ(sharded.plan().effective, 2);
  // Split the run to prove repeated increasing targets (campaign slicing,
  // run_until_eol stepping) hit the same epoch boundaries.
  sharded.run_until(Time::from_days(0.7));
  sharded.run_until(duration);
  sharded.finalize_metrics();

  expect_identical(serial.metrics(), sharded.metrics(), 48);
  EXPECT_EQ(serial.max_degradation(), sharded.max_degradation());
  for (std::uint32_t id = 0; id < 48; ++id) {
    EXPECT_EQ(serial.server().w_for(id), sharded.w_for(id)) << "node " << id;
  }
}

TEST(ShardEngineIdentity, FaultedFourShardsBitIdenticalToSerial) {
  // Kitchen-sink fault injection across four shards: daily + random gateway
  // outages, Gilbert-Elliott ACK loss, node crashes, report-pipe faults,
  // and a solar drought. Each shard rebuilds the full FaultPlan from the
  // same 0xfa17 fork; the per-gateway / per-node streams must regenerate
  // the serial draws exactly.
  ScenarioConfig c = city(48, 4, 4);
  c.faults.outage_daily_start = Time::from_hours(9.0);
  c.faults.outage_daily_duration = Time::from_hours(2.0);
  c.faults.outage_random_per_day = 1.0;
  c.faults.ack_loss_good = 0.02;
  c.faults.ack_loss_bad = 0.8;
  c.faults.crash_per_year = 24.0;
  c.faults.report_loss = 0.1;
  c.faults.report_reorder = 0.1;
  c.faults.report_corrupt = 0.05;
  c.faults.drought_start = Time::from_days(0.5);
  c.faults.drought_duration = Time::from_days(1.0);
  c.faults.drought_scale = 0.3;
  const Time duration = Time::from_days(2.0);

  Network serial{c};
  serial.run_until(duration);
  serial.finalize_metrics();

  ShardedNetwork sharded{c};
  ASSERT_FALSE(sharded.serial());
  EXPECT_EQ(sharded.plan().effective, 4);
  sharded.run_until(Time::from_days(0.7));
  sharded.run_until(duration);
  sharded.finalize_metrics();

  expect_identical(serial.metrics(), sharded.metrics(), 48);
  const NetworkSummary sa = serial.metrics().summarize();
  const NetworkSummary sb = sharded.metrics().summarize();
  EXPECT_EQ(sa.total_outage_s, sb.total_outage_s);
  EXPECT_GT(sb.total_outage_s, 0.0);
  EXPECT_EQ(serial.max_degradation(), sharded.max_degradation());
  for (std::uint32_t id = 0; id < 48; ++id) {
    EXPECT_EQ(serial.server().w_for(id), sharded.w_for(id)) << "node " << id;
  }
}

TEST(ShardEngineFallback, SerialReasonSurfacesInMergedMetrics) {
  // A run that requests shards but degenerates to serial must say so in the
  // summary; a genuinely sharded run leaves the field empty.
  ShardedNetwork fallback{city(8, 1, 4)};
  ASSERT_TRUE(fallback.serial());
  fallback.run_until(Time::from_hours(1.0));
  fallback.finalize_metrics();
  EXPECT_EQ(fallback.metrics().summarize().serial_reason, "single collision domain");

  ShardedNetwork sharded{city(16, 4, 2)};
  ASSERT_FALSE(sharded.serial());
  sharded.run_until(Time::from_hours(1.0));
  sharded.finalize_metrics();
  EXPECT_TRUE(sharded.metrics().summarize().serial_reason.empty());
}

TEST(ShardEngineIdentity, FourShardsMatchTwoShards) {
  const ScenarioConfig c = city(32, 4, 2);
  const Time duration = Time::from_days(1.0);
  ShardedNetwork two{c};
  ScenarioConfig c4 = c;
  c4.shards = 4;
  ShardedNetwork four{c4};
  ASSERT_FALSE(two.serial());
  ASSERT_FALSE(four.serial());
  two.run_until(duration);
  four.run_until(duration);
  two.finalize_metrics();
  four.finalize_metrics();
  expect_identical(two.metrics(), four.metrics(), 32);
}

TEST(ShardEngineIdentity, EventExactlyOnEpochBoundary) {
  // Sampling period == dissemination period: every uplink lands exactly on
  // an epoch boundary, together with the w_u recompute. The boundary event
  // must execute inside the window it terminates, once, on every shard.
  ScenarioConfig c = city(16, 4, 4);
  c.min_period = Time::from_minutes(16.0);
  c.max_period = Time::from_minutes(16.0);
  c.dissemination_period = Time::from_minutes(16.0);
  const Time duration = Time::from_hours(8.0);

  Network serial{c};
  serial.run_until(duration);
  serial.finalize_metrics();

  ShardedNetwork sharded{c};
  ASSERT_FALSE(sharded.serial());
  sharded.run_until(duration);
  sharded.finalize_metrics();

  expect_identical(serial.metrics(), sharded.metrics(), 16);
  ASSERT_GT(serial.metrics().node(0).generated, 0u);
}

TEST(ShardEngineIdentity, SerialDelegateMatchesNetworkExactly) {
  // shards=1 delegates to the serial engine wholesale: even
  // events_executed (which sharded mode is allowed to change) must match.
  const ScenarioConfig c = city(16, 4, 1);
  const Time duration = Time::from_days(1.0);
  Network plain{c};
  plain.run_until(duration);
  plain.finalize_metrics();
  ShardedNetwork wrapped{c};
  ASSERT_TRUE(wrapped.serial());
  wrapped.run_until(duration);
  wrapped.finalize_metrics();
  expect_identical(plain.metrics(), wrapped.metrics(), 16);
  EXPECT_EQ(plain.simulator().events_executed(), wrapped.events_executed());
}

TEST(ShardEngineBarrier, ReduceMaxAcrossGenerations) {
  // tsan target: 4 threads, many reuse generations, every party must see
  // the same per-round maximum.
  constexpr int kParties = 4;
  constexpr int kRounds = 500;
  ShardBarrier barrier{kParties};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kParties);
  for (int t = 0; t < kParties; ++t) {
    threads.emplace_back([&barrier, &mismatches, t] {
      for (int round = 0; round < kRounds; ++round) {
        const double mine = static_cast<double>((t * 31 + round * 7) % 101);
        const double expected = [round] {
          double best = 0.0;
          for (int p = 0; p < kParties; ++p) {
            best = std::max(best, static_cast<double>((p * 31 + round * 7) % 101));
          }
          return best;
        }();
        if (barrier.reduce_max(mine) != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ShardEngineBarrier, PoisonWakesWaitersAndPoisonsFutureCalls) {
  ShardBarrier barrier{2};
  std::atomic<bool> aborted{false};
  std::thread waiter{[&barrier, &aborted] {
    try {
      (void)barrier.reduce_max(1.0);  // blocks: the peer never arrives
    } catch (const ShardAborted&) {
      aborted.store(true);
    }
  }};
  barrier.poison();
  waiter.join();
  EXPECT_TRUE(aborted.load());
  EXPECT_THROW((void)barrier.reduce_max(0.0), ShardAborted);
  EXPECT_THROW(barrier.sync(), ShardAborted);
}

}  // namespace
}  // namespace blam
