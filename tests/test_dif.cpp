#include "core/dif.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

Energy J(double j) { return Energy::from_joules(j); }

TEST(Dif, ZeroWhenHarvestCoversCost) {
  // Paper Eq. 15: if e_tx <= E_g the SoC does not decrease -> DIF = 0.
  EXPECT_DOUBLE_EQ(degradation_impact_factor(J(1.0), J(1.0), J(10.0)), 0.0);
  EXPECT_DOUBLE_EQ(degradation_impact_factor(J(1.0), J(5.0), J(10.0)), 0.0);
  EXPECT_DOUBLE_EQ(degradation_impact_factor(J(0.0), J(0.0), J(10.0)), 0.0);
}

TEST(Dif, DeficitNormalizedByMaxTx) {
  EXPECT_DOUBLE_EQ(degradation_impact_factor(J(6.0), J(1.0), J(10.0)), 0.5);
  EXPECT_DOUBLE_EQ(degradation_impact_factor(J(10.0), J(0.0), J(10.0)), 1.0);
  EXPECT_DOUBLE_EQ(degradation_impact_factor(J(2.5), J(0.5), J(8.0)), 0.25);
}

TEST(Dif, ClampedToOne) {
  // An EWMA warm-up estimate can exceed the nominal worst case.
  EXPECT_DOUBLE_EQ(degradation_impact_factor(J(30.0), J(0.0), J(10.0)), 1.0);
}

TEST(Dif, MonotoneInCostAntitoneInHarvest) {
  double prev = -1.0;
  for (double cost : {0.0, 2.0, 4.0, 6.0, 8.0}) {
    const double d = degradation_impact_factor(J(cost), J(1.0), J(10.0));
    EXPECT_GE(d, prev);
    prev = d;
  }
  prev = 2.0;
  for (double harvest : {0.0, 1.0, 3.0, 5.0, 7.0}) {
    const double d = degradation_impact_factor(J(5.0), J(harvest), J(10.0));
    EXPECT_LE(d, prev);
    prev = d;
  }
}

TEST(Dif, RequiresPositiveNormalizer) {
  EXPECT_THROW((void)degradation_impact_factor(J(1.0), J(1.0), J(0.0)), std::invalid_argument);
  EXPECT_THROW((void)degradation_impact_factor(J(1.0), J(1.0), J(-1.0)), std::invalid_argument);
}

}  // namespace
}  // namespace blam
