#include "net/scenario.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "mac/greedy_green_mac.hpp"

namespace blam {
namespace {

TEST(ScenarioPresets, LorawanDefaultsMatchPaper) {
  const ScenarioConfig c = lorawan_scenario(500, 7);
  EXPECT_EQ(c.policy, PolicyKind::kLorawan);
  EXPECT_EQ(c.n_nodes, 500);
  EXPECT_EQ(c.seed, 7u);
  EXPECT_DOUBLE_EQ(c.theta, 1.0);
  EXPECT_DOUBLE_EQ(c.radius_m, 5000.0);                       // 5 km max distance
  EXPECT_EQ(c.min_period, Time::from_minutes(16.0));          // [16, 60] min
  EXPECT_EQ(c.max_period, Time::from_minutes(60.0));
  EXPECT_EQ(c.forecast_window, Time::from_minutes(1.0));      // 1-min windows
  EXPECT_DOUBLE_EQ(c.w_b, 1.0);                               // w_b = 1
  EXPECT_DOUBLE_EQ(c.temperature_c, 25.0);                    // insulated 25 C
  EXPECT_TRUE(c.thermal.insulated);
  EXPECT_EQ(c.payload_bytes, 10);                             // 10-byte packets
  EXPECT_EQ(c.timings.max_transmissions, 8);                  // 8 transmissions
  EXPECT_NO_THROW(c.validate());
}

TEST(ScenarioPresets, LabelsFollowThePaper) {
  EXPECT_EQ(lorawan_scenario(1, 1).policy_label(), "LoRaWAN");
  EXPECT_EQ(blam_scenario(1, 0.05, 1).policy_label(), "H-5");
  EXPECT_EQ(blam_scenario(1, 0.5, 1).policy_label(), "H-50");
  EXPECT_EQ(blam_scenario(1, 1.0, 1).policy_label(), "H-100");
  EXPECT_EQ(theta_only_scenario(1, 0.5, 1).policy_label(), "H-50C");
  EXPECT_EQ(greedy_green_scenario(1, 1).policy_label(), "GreedyGreen");
}

TEST(ScenarioPresets, FactoriesMatchPolicies) {
  EXPECT_EQ(make_policy(lorawan_scenario(1, 1))->name(), "LoRaWAN");
  EXPECT_EQ(make_policy(blam_scenario(1, 0.5, 1))->name(), "H-50");
  EXPECT_EQ(make_policy(theta_only_scenario(1, 0.5, 1))->name(), "H-50C");
  EXPECT_EQ(make_policy(greedy_green_scenario(1, 1))->name(), "GreedyGreen");
}

TEST(ScenarioPresets, UtilityFactory) {
  ScenarioConfig c = lorawan_scenario(1, 1);
  EXPECT_EQ(make_utility(c)->name(), "linear");
  c.utility = UtilityKind::kExponential;
  EXPECT_EQ(make_utility(c)->name(), "exponential");
  c.utility = UtilityKind::kStep;
  EXPECT_EQ(make_utility(c)->name(), "step");
}

TEST(ScenarioValidation, CatchesEachBadField) {
  auto expect_invalid = [](auto mutate) {
    ScenarioConfig c = lorawan_scenario(10, 1);
    mutate(c);
    EXPECT_THROW(c.validate(), std::invalid_argument);
  };
  expect_invalid([](ScenarioConfig& c) { c.n_nodes = 0; });
  expect_invalid([](ScenarioConfig& c) { c.radius_m = 0.0; });
  expect_invalid([](ScenarioConfig& c) { c.n_gateways = 0; });
  expect_invalid([](ScenarioConfig& c) { c.gateway_ring_fraction = 0.0; });
  expect_invalid([](ScenarioConfig& c) { c.min_period = Time::zero(); });
  expect_invalid([](ScenarioConfig& c) { c.max_period = c.min_period - Time::from_minutes(1.0); });
  expect_invalid([](ScenarioConfig& c) { c.forecast_window = c.min_period * 2; });
  expect_invalid([](ScenarioConfig& c) { c.theta = 0.0; });
  expect_invalid([](ScenarioConfig& c) { c.w_b = 1.5; });
  expect_invalid([](ScenarioConfig& c) { c.payload_bytes = 0; });
  expect_invalid([](ScenarioConfig& c) { c.payload_bytes = 300; });
  expect_invalid([](ScenarioConfig& c) { c.ewma_beta = -0.1; });
  expect_invalid([](ScenarioConfig& c) { c.battery_days = 0.0; });
  expect_invalid([](ScenarioConfig& c) { c.initial_soc = 1.5; });
  expect_invalid([](ScenarioConfig& c) { c.panel_scale_min = 2.0; c.panel_scale_max = 1.0; });
  expect_invalid([](ScenarioConfig& c) { c.retx_backoff_min = c.retx_backoff_max * 2; });
  expect_invalid([](ScenarioConfig& c) { c.dissemination_period = Time::zero(); });
  expect_invalid([](ScenarioConfig& c) { c.duty_cycle = 0.0; });
  expect_invalid([](ScenarioConfig& c) { c.period_jitter = 0.5; });
  expect_invalid([](ScenarioConfig& c) { c.battery_self_discharge_per_month = 1.0; });
  expect_invalid([](ScenarioConfig& c) { c.supercap_tx_buffer = -1.0; });
  expect_invalid([](ScenarioConfig& c) { c.supercap_efficiency = 0.0; });
  expect_invalid([](ScenarioConfig& c) { c.supercap_leak_per_day = 1.0; });
}

TEST(ScenarioValidation, RejectsNonFiniteFieldsNamingTheField) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  {
    ScenarioConfig c = lorawan_scenario(10, 1);
    c.theta = nan;
    try {
      c.validate();
      FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string{e.what()}.find("theta"), std::string::npos) << e.what();
      EXPECT_NE(std::string{e.what()}.find("finite"), std::string::npos) << e.what();
    }
  }
  auto expect_invalid = [](auto mutate) {
    ScenarioConfig c = lorawan_scenario(10, 1);
    mutate(c);
    EXPECT_THROW(c.validate(), std::invalid_argument);
  };
  expect_invalid([=](ScenarioConfig& c) { c.radius_m = inf; });
  expect_invalid([=](ScenarioConfig& c) { c.battery_days = nan; });
  expect_invalid([=](ScenarioConfig& c) { c.duty_cycle = inf; });
  expect_invalid([=](ScenarioConfig& c) { c.w_b = nan; });
  expect_invalid([=](ScenarioConfig& c) { c.tx_power_dbm = nan; });
  expect_invalid([=](ScenarioConfig& c) { c.supercap_efficiency = inf; });
  expect_invalid([=](ScenarioConfig& c) { c.forecast_error_sigma = nan; });
  expect_invalid([=](ScenarioConfig& c) { c.initial_soc = -nan; });
}

TEST(ScenarioValidation, WindowsForRoundsDown) {
  const ScenarioConfig c = lorawan_scenario(1, 1);
  EXPECT_EQ(c.windows_for(Time::from_minutes(16.0)), 16);
  EXPECT_EQ(c.windows_for(Time::from_minutes(16.5)), 16);
  EXPECT_EQ(c.windows_for(Time::from_seconds(30.0)), 1);  // never zero
}

}  // namespace
}  // namespace blam
