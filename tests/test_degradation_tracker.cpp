#include "degradation/tracker.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace blam {
namespace {

class TrackerTest : public ::testing::Test {
 protected:
  DegradationModel model_{};
};

TEST_F(TrackerTest, EmptyTrackerIsFresh) {
  DegradationTracker t{model_, 25.0};
  EXPECT_DOUBLE_EQ(t.mean_soc(), 0.0);
  EXPECT_DOUBLE_EQ(t.cycle_linear(), 0.0);
  EXPECT_DOUBLE_EQ(t.calendar_linear(Time::from_days(1.0)), 0.0);
  EXPECT_DOUBLE_EQ(t.degradation(Time::from_days(1.0)), 0.0);
}

TEST_F(TrackerTest, RejectsTimeTravel) {
  DegradationTracker t{model_, 25.0};
  t.record(Time::from_seconds(10.0), 0.5);
  EXPECT_THROW(t.record(Time::from_seconds(5.0), 0.6), std::invalid_argument);
}

TEST_F(TrackerTest, MeanSocIsTimeWeighted) {
  DegradationTracker t{model_, 25.0};
  t.record(Time::zero(), 1.0);
  t.record(Time::from_hours(1.0), 1.0);   // 1 hour at 1.0
  t.record(Time::from_hours(1.0), 0.0);   // instantaneous drop
  t.record(Time::from_hours(4.0), 0.0);   // 3 hours at 0.0
  EXPECT_NEAR(t.mean_soc(), 0.25, 1e-12);
}

TEST_F(TrackerTest, TrapezoidalIntegration) {
  DegradationTracker t{model_, 25.0};
  t.record(Time::zero(), 0.0);
  t.record(Time::from_hours(2.0), 1.0);  // linear ramp: mean 0.5
  EXPECT_NEAR(t.mean_soc(), 0.5, 1e-12);
}

TEST_F(TrackerTest, CalendarUsesMeanSocAndExtendsToNow) {
  DegradationTracker t{model_, 25.0};
  t.record(Time::zero(), 0.8);
  t.record(Time::from_days(10.0), 0.8);
  const double at_last = t.calendar_linear(Time::from_days(10.0));
  EXPECT_NEAR(at_last, model_.calendar_aging(Time::from_days(10.0), 0.8, 25.0), 1e-15);
  // Querying later extends the trace at the last SoC.
  const double later = t.calendar_linear(Time::from_days(20.0));
  EXPECT_NEAR(later, model_.calendar_aging(Time::from_days(20.0), 0.8, 25.0), 1e-15);
}

TEST_F(TrackerTest, CyclesAccumulate) {
  DegradationTracker t{model_, 25.0};
  Time now = Time::zero();
  t.record(now, 0.2);
  for (int i = 0; i < 10; ++i) {
    now += Time::from_hours(1.0);
    t.record(now, 0.8);
    now += Time::from_hours(1.0);
    t.record(now, 0.2);
  }
  EXPECT_GE(t.full_cycles(), 9u);
  // Each full cycle: range 0.6, mean 0.5.
  const double expected_per_cycle = 0.6 * 0.5 * model_.params().k6;
  EXPECT_NEAR(t.cycle_linear(), (t.full_cycles() + /*residual halves*/ 1.0) * expected_per_cycle,
              expected_per_cycle);
}

TEST_F(TrackerTest, DegradationCombinesBothTerms) {
  DegradationTracker t{model_, 25.0};
  Time now = Time::zero();
  t.record(now, 0.3);
  for (int i = 0; i < 5; ++i) {
    now += Time::from_days(1.0);
    t.record(now, 0.7);
    now += Time::from_days(1.0);
    t.record(now, 0.3);
  }
  const double d = t.degradation(now);
  EXPECT_NEAR(d, model_.nonlinear(t.calendar_linear(now) + t.cycle_linear()), 1e-15);
  EXPECT_GT(d, 0.0);
}

TEST_F(TrackerTest, HigherSocAgesFaster) {
  DegradationTracker high{model_, 25.0};
  DegradationTracker low{model_, 25.0};
  high.record(Time::zero(), 0.95);
  low.record(Time::zero(), 0.45);
  const Time year = Time::from_days(365.0);
  high.record(year, 0.95);
  low.record(year, 0.45);
  EXPECT_GT(high.degradation(year), low.degradation(year));
}

TEST_F(TrackerTest, HotterBatteryAgesFaster) {
  DegradationTracker hot{model_, 45.0};
  DegradationTracker cool{model_, 25.0};
  for (auto* t : {&hot, &cool}) {
    t->record(Time::zero(), 0.5);
    t->record(Time::from_days(365.0), 0.5);
  }
  EXPECT_GT(hot.degradation(Time::from_days(365.0)), cool.degradation(Time::from_days(365.0)));
}

TEST_F(TrackerTest, DeepCyclesAgeMoreThanShallow) {
  DegradationTracker deep{model_, 25.0};
  DegradationTracker shallow{model_, 25.0};
  Time now = Time::zero();
  deep.record(now, 0.1);
  shallow.record(now, 0.45);
  for (int i = 0; i < 50; ++i) {
    now += Time::from_hours(1.0);
    deep.record(now, 0.9);      // range 0.8 around mean 0.5
    shallow.record(now, 0.55);  // range 0.1 around mean 0.5
    now += Time::from_hours(1.0);
    deep.record(now, 0.1);
    shallow.record(now, 0.45);
  }
  EXPECT_GT(deep.cycle_linear(), shallow.cycle_linear() * 5.0);
}

TEST_F(TrackerTest, IntermediateQueriesAreMonotone) {
  // The gateway queries degradation daily; the estimate must never
  // decrease as more trace arrives.
  DegradationTracker t{model_, 25.0};
  Rng rng{13};
  Time now = Time::zero();
  double soc = 0.5;
  t.record(now, soc);
  double prev_deg = 0.0;
  for (int day = 1; day <= 30; ++day) {
    for (int step = 0; step < 8; ++step) {
      now += Time::from_hours(3.0);
      soc = std::min(1.0, std::max(0.0, soc + rng.uniform(-0.2, 0.2)));
      t.record(now, soc);
    }
    const double deg = t.degradation(now);
    EXPECT_GE(deg, prev_deg) << "day " << day;
    prev_deg = deg;
  }
}

}  // namespace
}  // namespace blam
