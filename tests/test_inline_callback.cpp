#include "sim/inline_callback.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace blam {
namespace {

TEST(InlineCallback, InvokesCapturedLambda) {
  int hits = 0;
  InlineCallback cb{[&hits] { ++hits; }};
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, DefaultAndNullptrAreEmpty) {
  InlineCallback empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  InlineCallback null = nullptr;
  EXPECT_FALSE(static_cast<bool>(null));
}

TEST(InlineCallback, MoveTransfersOwnership) {
  int hits = 0;
  InlineCallback a{[&hits] { ++hits; }};
  InlineCallback b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineCallback c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, HoldsMoveOnlyCaptures) {
  auto flag = std::make_unique<int>(7);
  int seen = 0;
  InlineCallback cb{[p = std::move(flag), &seen] { seen = *p; }};
  cb();
  EXPECT_EQ(seen, 7);
}

TEST(InlineCallback, NonTrivialCaptureMovesAndDestructs) {
  // shared_ptr capture: the use count tracks how many live copies exist, so
  // it observes both the move path and eager destruction.
  auto counter = std::make_shared<int>(0);
  InlineCallback a{[counter] { ++*counter; }};
  EXPECT_EQ(counter.use_count(), 2);

  InlineCallback b{std::move(a)};
  EXPECT_EQ(counter.use_count(), 2);  // moved, not copied

  b();
  EXPECT_EQ(*counter, 1);

  b = nullptr;  // eager release: the capture dies now
  EXPECT_EQ(counter.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(InlineCallback, DestructorReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  {
    InlineCallback cb{[counter] { ++*counter; }};
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineCallback, MoveAssignReleasesPreviousCapture) {
  auto old_state = std::make_shared<int>(0);
  InlineCallback cb{[old_state] { ++*old_state; }};
  EXPECT_EQ(old_state.use_count(), 2);
  cb = InlineCallback{[] {}};
  EXPECT_EQ(old_state.use_count(), 1);
  cb();  // replacement callable runs fine
}

// A callable filling the inline budget exactly; this is the contract the
// node/gateway/server lambdas are written against.
struct Exact48 {
  std::array<std::uint8_t, InlineCallback::kCaptureBytes - sizeof(int*)> payload;
  int* sum;
  void operator()() const {
    for (auto b : payload) *sum += b;
  }
};
static_assert(sizeof(Exact48) == InlineCallback::kCaptureBytes);

TEST(InlineCallback, CapturesUpToTheBudget) {
  Exact48 fn{};
  fn.payload.fill(0x5a);
  int sum = 0;
  fn.sum = &sum;
  InlineCallback cb{fn};
  cb();
  EXPECT_EQ(sum, 0x5a * static_cast<int>(fn.payload.size()));
}

// Oversized captures must fail the static_assert. Compile-time checks can't
// run under gtest, so assert the trait the guard is built from instead: a
// capture one byte over budget is rejected by the same sizeof comparison.
TEST(InlineCallback, BudgetIsFortyEightBytes) {
  EXPECT_EQ(InlineCallback::kCaptureBytes, 48u);
  struct Oversized {
    std::array<std::uint8_t, InlineCallback::kCaptureBytes + 1> bytes;
  };
  static_assert(sizeof(Oversized) > InlineCallback::kCaptureBytes,
                "a 49-byte capture would be rejected at compile time");
}

TEST(InlineCallback, EventQueueCancelReleasesEagerly) {
  // The queue's contract: cancel() destroys the captured state immediately,
  // even though the heap entry drains lazily.
  EventQueue queue;
  auto state = std::make_shared<int>(0);
  const EventHandle h = queue.schedule(Time::from_seconds(1.0), [state] { ++*state; });
  EXPECT_EQ(state.use_count(), 2);
  EXPECT_TRUE(queue.cancel(h));
  EXPECT_EQ(state.use_count(), 1);
  EXPECT_TRUE(queue.empty());
}

TEST(InlineCallback, EventQueuePopReleasesAfterInvoke) {
  EventQueue queue;
  auto state = std::make_shared<int>(0);
  (void)queue.schedule(Time::from_seconds(1.0), [state] { ++*state; });
  EXPECT_EQ(state.use_count(), 2);
  {
    auto popped = queue.pop();
    popped.callback();
  }
  EXPECT_EQ(*state, 1);
  EXPECT_EQ(state.use_count(), 1);  // popped callback destroyed with its scope
}

TEST(InlineCallback, QueueSlotReuseKeepsCallbacksIntact) {
  // Schedule/cancel churn recycles slots; surviving callbacks must fire
  // with their own captures, not a recycled slot's.
  EventQueue queue;
  int fired = -1;
  std::vector<EventHandle> handles;
  handles.reserve(8);
  for (int i = 0; i < 8; ++i) {
    handles.push_back(
        queue.schedule(Time::from_seconds(static_cast<double>(i + 1)), [i, &fired] { fired = i; }));
  }
  for (int i = 0; i < 8; i += 2) EXPECT_TRUE(queue.cancel(handles[static_cast<std::size_t>(i)]));
  auto popped = queue.pop();
  popped.callback();
  EXPECT_EQ(fired, 1);  // earliest surviving event
}

}  // namespace
}  // namespace blam
