#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace blam {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(Time::from_ms(30), [&] { fired.push_back(3); });
  q.schedule(Time::from_ms(10), [&] { fired.push_back(1); });
  q.schedule(Time::from_ms(20), [&] { fired.push_back(2); });
  while (!q.empty()) {
    auto [time, cb] = q.pop();
    cb();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoWithinSameTimestamp) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::from_ms(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventHandle h = q.schedule(Time::from_ms(1), [&] { fired = true; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, DoubleCancelIsHarmless) {
  EventQueue q;
  const EventHandle h = q.schedule(Time::from_ms(1), [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
  EXPECT_FALSE(q.cancel(EventHandle{}));  // null handle
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventHandle h = q.schedule(Time::from_ms(1), [] {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsRejected) {
  EventQueue q;
  const EventHandle h1 = q.schedule(Time::from_ms(1), [] {});
  (void)q.pop();  // frees the slot
  const EventHandle h2 = q.schedule(Time::from_ms(2), [] {});
  // h1 very likely reuses the slot of h2; cancelling h1 must NOT kill h2.
  EXPECT_FALSE(q.cancel(h1));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(h2));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventHandle early = q.schedule(Time::from_ms(1), [] {});
  q.schedule(Time::from_ms(5), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), Time::from_ms(5));
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue q;
  const EventHandle a = q.schedule(Time::from_ms(1), [] {});
  q.schedule(Time::from_ms(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, SlotsAreRecycledUnderChurn) {
  // Schedule/cancel far more events than remain pending; the slot store
  // must stay small (indirectly: no crash, correct ordering).
  EventQueue q;
  Rng rng{99};
  std::vector<EventHandle> live;
  for (int round = 0; round < 10000; ++round) {
    live.push_back(q.schedule(Time::from_us(rng.uniform_int(0, 1000000)), [] {}));
    if (live.size() > 16) {
      q.cancel(live.front());
      live.erase(live.begin());
    }
    if (round % 7 == 0 && !q.empty()) (void)q.pop();
  }
  Time prev = Time::zero();
  std::size_t drained = 0;
  while (!q.empty()) {
    auto [time, cb] = q.pop();
    EXPECT_GE(time, prev);
    prev = time;
    ++drained;
  }
  EXPECT_LE(drained, 17u);
}

TEST(EventQueue, CancelRescheduleChurnPreservesMonotonicityAndLiveness) {
  // The retransmission path cancels and re-schedules the same logical timer
  // constantly; under that churn pops must stay time-ordered and exactly the
  // live (never-cancelled) events must fire.
  EventQueue q;
  Rng rng{777};
  std::vector<EventHandle> pending;
  std::size_t scheduled = 0;
  std::size_t cancelled = 0;
  std::size_t fired = 0;
  Time now = Time::zero();

  for (int round = 0; round < 20'000; ++round) {
    const int op = rng.uniform_int(0, 9);
    if (op < 5 || pending.empty()) {
      // Schedule at or after `now` — the engine's contract.
      const Time t = now + Time::from_us(rng.uniform_int(0, 60'000'000));
      pending.push_back(q.schedule(t, [] {}));
      ++scheduled;
    } else if (op < 8) {
      // Cancel a random pending handle (it may have fired already).
      const std::size_t k =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(pending.size()) - 1));
      if (q.cancel(pending[k])) ++cancelled;
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(k));
    } else if (!q.empty()) {
      // Pop: time must never regress.
      auto [t, cb] = q.pop();
      ASSERT_GE(t.us(), now.us()) << "round " << round;
      now = t;
      ++fired;
    }
  }
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    ASSERT_GE(t.us(), now.us());
    now = t;
    ++fired;
  }
  EXPECT_EQ(fired + cancelled, scheduled);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomizedOrderingProperty) {
  EventQueue q;
  Rng rng{1234};
  for (int i = 0; i < 5000; ++i) {
    q.schedule(Time::from_us(rng.uniform_int(0, 10'000'000)), [] {});
  }
  Time prev = Time::zero();
  while (!q.empty()) {
    auto [time, cb] = q.pop();
    EXPECT_GE(time.us(), prev.us());
    prev = time;
  }
}

}  // namespace
}  // namespace blam
