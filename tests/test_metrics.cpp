#include "net/metrics.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

TEST(NodeMetrics, RatesHandleZeroGenerated) {
  NodeMetrics m;
  EXPECT_DOUBLE_EQ(m.prr(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_utility(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_retx(), 0.0);
  EXPECT_EQ(m.majority_window(), -1);
}

TEST(NodeMetrics, RatesComputeCorrectly) {
  NodeMetrics m;
  m.generated = 10;
  m.delivered = 8;
  m.retx = 5;
  m.utility_sum = 6.0;
  EXPECT_DOUBLE_EQ(m.prr(), 0.8);
  EXPECT_DOUBLE_EQ(m.avg_utility(), 0.6);
  EXPECT_DOUBLE_EQ(m.avg_retx(), 0.5);
}

TEST(NodeMetrics, MajorityWindow) {
  NodeMetrics m;
  m.count_window(2);
  m.count_window(2);
  m.count_window(0);
  EXPECT_EQ(m.majority_window(), 2);
  m.count_window(0);
  m.count_window(0);
  EXPECT_EQ(m.majority_window(), 0);
  // Growing the histogram on demand.
  m.count_window(7);
  EXPECT_EQ(m.window_counts.size(), 8u);
  // Negative windows ignored.
  m.count_window(-1);
  EXPECT_EQ(m.majority_window(), 0);
}

TEST(Metrics, SummaryAggregates) {
  Metrics metrics{2};
  NodeMetrics& a = metrics.node(0);
  a.generated = 10;
  a.delivered = 10;
  a.utility_sum = 10.0;
  a.retx = 0;
  a.tx_energy = Energy::from_joules(1.0);
  a.latency_s.add(1.0);
  a.degradation = 0.10;
  NodeMetrics& b = metrics.node(1);
  b.generated = 10;
  b.delivered = 5;
  b.utility_sum = 4.0;
  b.retx = 20;
  b.tx_energy = Energy::from_joules(3.0);
  b.latency_s.add(9.0);
  b.degradation = 0.20;

  const NetworkSummary s = metrics.summarize();
  EXPECT_DOUBLE_EQ(s.mean_prr, 0.75);
  EXPECT_DOUBLE_EQ(s.min_prr, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_utility, 0.7);
  EXPECT_DOUBLE_EQ(s.mean_retx, 1.0);
  EXPECT_DOUBLE_EQ(s.total_tx_energy.joules(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean_latency_s, 5.0);
  EXPECT_DOUBLE_EQ(s.max_latency_s, 9.0);
  EXPECT_DOUBLE_EQ(s.max_degradation, 0.20);
  EXPECT_DOUBLE_EQ(s.degradation_box.mean, 0.15);
}

TEST(Metrics, MajorityWindowHistogram) {
  Metrics metrics{3};
  metrics.node(0).count_window(0);
  metrics.node(1).count_window(2);
  metrics.node(1).count_window(2);
  // Node 2 never transmits.
  const auto histogram = metrics.majority_window_histogram(4);
  ASSERT_EQ(histogram.size(), 4u);
  EXPECT_EQ(histogram[0], 1);
  EXPECT_EQ(histogram[1], 0);
  EXPECT_EQ(histogram[2], 1);
  EXPECT_EQ(histogram[3], 0);
}

TEST(Metrics, HistogramClampsWideWindows) {
  Metrics metrics{1};
  metrics.node(0).count_window(10);
  const auto histogram = metrics.majority_window_histogram(4);
  EXPECT_EQ(histogram[3], 1);  // clamped into the last bin
}

TEST(Metrics, EmptySummary) {
  Metrics metrics{0};
  const NetworkSummary s = metrics.summarize();
  EXPECT_DOUBLE_EQ(s.mean_prr, 0.0);
  EXPECT_DOUBLE_EQ(s.total_tx_energy.joules(), 0.0);
}

}  // namespace
}  // namespace blam
