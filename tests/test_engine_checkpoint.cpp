// Crash-tolerant engine: "blamsim v1" checkpoint round-trips (serial and
// sharded, with fault injection), the rolling checkpoint file knobs, the
// epoch-barrier watchdog, and the wedge kill chain. Test names carry
// "ShardEngine" so the CI tsan leg's ctest regex selects this file too.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/campaign.hpp"
#include "sim/shard_engine.hpp"

namespace blam {
namespace {

namespace fs = std::filesystem;

// Unique per-test scratch path, removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& stem)
      : path_{(fs::temp_directory_path() / (stem + "." + std::to_string(::getpid()) + ".tmp"))
                  .string()} {
    fs::remove(path_);
  }
  ~ScratchFile() { fs::remove(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Same decomposable city layout as test_shard_engine.cpp: every cell its
/// own collision domain, so `shards` of them genuinely run in parallel.
ScenarioConfig city(int nodes, int gateways, int shards, std::uint64_t seed = 21) {
  ScenarioConfig c;
  c.policy = PolicyKind::kBlam;
  c.theta = 0.5;
  c.n_nodes = nodes;
  c.n_gateways = gateways;
  c.gateway_grid_pitch_m = 12000.0;
  c.cluster_radius_m = 1000.0;
  c.interference_floor_dbm = -143.0;
  c.sf_assignment = SfAssignment::kDistanceBased;
  c.shards = shards;
  c.seed = seed;
  c.label = c.policy_label();
  return c;
}

/// Kitchen-sink fault injection (mirrors the sharded-identity test): the
/// checkpoint must carry every fault stream's mid-run state.
void add_faults(ScenarioConfig& c) {
  c.faults.outage_daily_start = Time::from_hours(9.0);
  c.faults.outage_daily_duration = Time::from_hours(2.0);
  c.faults.outage_random_per_day = 1.0;
  c.faults.ack_loss_good = 0.02;
  c.faults.ack_loss_bad = 0.8;
  c.faults.crash_per_year = 24.0;
  c.faults.report_loss = 0.1;
  c.faults.report_reorder = 0.1;
  c.faults.report_corrupt = 0.05;
  c.faults.drought_start = Time::from_days(0.5);
  c.faults.drought_duration = Time::from_days(1.0);
  c.faults.drought_scale = 0.3;
}

/// The gold bit-identity check: a checkpoint stream covers EVERY piece of
/// engine state (clocks, RNG streams, pending events, ledgers, metrics), so
/// two engines whose streams match byte for byte are indistinguishable.
std::string checkpoint_text(ShardedNetwork& engine) {
  std::ostringstream out;
  engine.checkpoint(out);
  return out.str();
}

TEST(ShardEngineCheckpoint, SerialRoundTripBitIdentical) {
  // shards=1 delegates to the serial Network; the checkpoint must still
  // capture the whole slice and resume it bit-exactly.
  const ScenarioConfig c = city(16, 4, 1);
  const Time mid = Time::from_days(0.7);
  const Time end = Time::from_days(2.0);

  ShardedNetwork uninterrupted{c};
  ASSERT_TRUE(uninterrupted.serial());
  uninterrupted.run_until(end);

  ShardedNetwork original{c};
  original.run_until(mid);
  std::stringstream stream;
  original.checkpoint(stream);

  ShardedNetwork resumed{c};
  resumed.restore(stream);
  resumed.run_until(end);

  EXPECT_EQ(checkpoint_text(resumed), checkpoint_text(uninterrupted));
  EXPECT_EQ(resumed.max_degradation(), uninterrupted.max_degradation());

  uninterrupted.finalize_metrics();
  resumed.finalize_metrics();
  const NetworkSummary a = uninterrupted.metrics().summarize();
  const NetworkSummary b = resumed.metrics().summarize();
  EXPECT_EQ(a.mean_prr, b.mean_prr);
  EXPECT_EQ(a.mean_utility, b.mean_utility);
  EXPECT_EQ(a.max_degradation, b.max_degradation);
  ASSERT_GT(a.mean_prr, 0.0);
}

TEST(ShardEngineCheckpoint, AdrRoundTripBitIdentical) {
  // ADR runs used to refuse checkpointing; the per-node SNR windows are now
  // part of the "blamsim v1" stream (sorted by node id, so the bytes are
  // stable), and an ADR-enabled run must resume bit-exactly.
  ScenarioConfig c = city(16, 4, 1);
  c.adr_enabled = true;
  const Time mid = Time::from_days(0.7);
  const Time end = Time::from_days(2.0);

  ShardedNetwork uninterrupted{c};
  uninterrupted.run_until(end);

  ShardedNetwork original{c};
  original.run_until(mid);
  std::stringstream stream;
  original.checkpoint(stream);

  ShardedNetwork resumed{c};
  resumed.restore(stream);
  resumed.run_until(end);

  EXPECT_EQ(checkpoint_text(resumed), checkpoint_text(uninterrupted));
  EXPECT_EQ(resumed.max_degradation(), uninterrupted.max_degradation());
}

TEST(ShardEngineCheckpoint, FaultedFourShardRoundTripBitIdentical) {
  // The acceptance scenario: four shards, full fault injection, checkpoint
  // mid-epoch, kill the original, resume a fresh engine — every shard's
  // final state matches the uninterrupted run byte for byte.
  ScenarioConfig c = city(48, 4, 4);
  add_faults(c);
  const Time mid = Time::from_days(0.7);
  const Time end = Time::from_days(2.0);

  ShardedNetwork uninterrupted{c};
  ASSERT_FALSE(uninterrupted.serial());
  ASSERT_EQ(uninterrupted.plan().effective, 4);
  uninterrupted.run_until(end);

  ShardedNetwork original{c};
  original.run_until(mid);
  std::stringstream stream;
  original.checkpoint(stream);

  ShardedNetwork resumed{c};
  resumed.restore(stream);
  resumed.run_until(end);

  EXPECT_EQ(checkpoint_text(resumed), checkpoint_text(uninterrupted));
  EXPECT_EQ(resumed.max_degradation(), uninterrupted.max_degradation());
  for (std::uint32_t id = 0; id < 48; ++id) {
    EXPECT_EQ(resumed.w_for(id), uninterrupted.w_for(id)) << "node " << id;
  }

  uninterrupted.finalize_metrics();
  resumed.finalize_metrics();
  const NetworkSummary a = uninterrupted.metrics().summarize();
  const NetworkSummary b = resumed.metrics().summarize();
  EXPECT_EQ(a.mean_prr, b.mean_prr);
  EXPECT_EQ(a.total_outage_s, b.total_outage_s);
  EXPECT_GT(a.total_outage_s, 0.0);
}

TEST(ShardEngineCheckpoint, MetaMismatchRefusesRestore) {
  ScenarioConfig c = city(16, 4, 2);
  ShardedNetwork original{c};
  original.run_until(Time::from_hours(6.0));
  std::stringstream stream;
  original.checkpoint(stream);

  // Wrong seed: a different deployment entirely.
  ScenarioConfig wrong_seed = c;
  wrong_seed.seed = 22;
  ShardedNetwork other{wrong_seed};
  EXPECT_THROW(other.restore(stream), std::runtime_error);

  // Wrong shard count: slice boundaries differ.
  stream.clear();
  stream.seekg(0);
  ScenarioConfig wrong_shards = c;
  wrong_shards.shards = 4;
  ShardedNetwork reshaped{wrong_shards};
  ASSERT_EQ(reshaped.plan().effective, 4);
  EXPECT_THROW(reshaped.restore(stream), std::runtime_error);

  // Not a checkpoint stream at all.
  std::stringstream garbage{"not a checkpoint\n"};
  ShardedNetwork fresh{c};
  EXPECT_THROW(fresh.restore(garbage), std::runtime_error);
}

TEST(ShardEngineCheckpoint, RollingCheckpointFileResumes) {
  // BLAM_CHECKPOINT_EVERY=3 with a 1 h dissemination period: run_until is
  // sliced at 3 h boundaries and the rolling file is rewritten (atomically)
  // at each one. Resuming from the file reproduces the uninterrupted run.
  ScenarioConfig c = city(16, 4, 2);
  c.dissemination_period = Time::from_hours(1.0);
  const Time end = Time::from_hours(8.0);

  const std::string dir =
      (fs::temp_directory_path() / ("blam-ckpt." + std::to_string(::getpid()))).string();
  fs::create_directories(dir);
  ASSERT_EQ(setenv("BLAM_CHECKPOINT_EVERY", "3", 1), 0);
  ASSERT_EQ(setenv("BLAM_CHECKPOINT_DIR", dir.c_str(), 1), 0);
  ShardedNetwork writer{c};
  ASSERT_EQ(unsetenv("BLAM_CHECKPOINT_EVERY"), 0);
  ASSERT_EQ(unsetenv("BLAM_CHECKPOINT_DIR"), 0);
  ASSERT_FALSE(writer.serial());
  writer.run_until(end);

  const std::string ckpt = dir + "/blamsim.ckpt";
  ASSERT_TRUE(fs::exists(ckpt));
  EXPECT_FALSE(fs::exists(ckpt + ".tmp"));

  // The rolling file holds the LAST boundary (6 h), not the run end.
  ShardedNetwork resumed{c};
  {
    std::ifstream in{ckpt, std::ios::binary};
    ASSERT_TRUE(in.good());
    resumed.restore(in);
  }
  resumed.run_until(end);

  // Checkpoint slicing must not perturb results: the sliced writer and the
  // file-resumed engine both match a run that never checkpointed.
  ShardedNetwork uninterrupted{c};
  uninterrupted.run_until(end);
  EXPECT_EQ(checkpoint_text(resumed), checkpoint_text(uninterrupted));
  EXPECT_EQ(checkpoint_text(writer), checkpoint_text(uninterrupted));

  fs::remove_all(dir);
}

TEST(ShardEngineCheckpoint, RunUntilBeforeCursorIsANoOp) {
  const ScenarioConfig c = city(16, 4, 2);
  ShardedNetwork engine{c};
  engine.run_until(Time::from_hours(6.0));
  const std::string at_six = checkpoint_text(engine);
  engine.run_until(Time::from_hours(3.0));  // already past: must not rewind
  EXPECT_EQ(checkpoint_text(engine), at_six);
}

TEST(ShardEngineWatchdog, ResolveTimeoutEnv) {
  ASSERT_EQ(setenv("BLAM_SHARD_TIMEOUT_S", "2.5", 1), 0);
  EXPECT_EQ(resolve_shard_timeout_s(), 2.5);
  ASSERT_EQ(setenv("BLAM_SHARD_TIMEOUT_S", "nope", 1), 0);
  EXPECT_EQ(resolve_shard_timeout_s(), 0.0);
  ASSERT_EQ(setenv("BLAM_SHARD_TIMEOUT_S", "-1", 1), 0);
  EXPECT_EQ(resolve_shard_timeout_s(), 0.0);
  ASSERT_EQ(unsetenv("BLAM_SHARD_TIMEOUT_S"), 0);
  EXPECT_EQ(resolve_shard_timeout_s(), 0.0);
}

TEST(ShardEngineWatchdog, TimedBarrierSingleDetectorWithDiagnostics) {
  // Three parties, one never arrives. Exactly one of the two waiters must
  // become the detector (ShardWedged, with the laggard identified from the
  // heartbeats); the other unwinds with ShardAborted. No deadlock: the test
  // itself completes.
  ShardBarrier barrier{3, 0.2};
  ShardBarrier::Heartbeat stale;
  stale.epoch = 4;
  stale.queue_depth = 17;
  stale.sim_now = Time::from_hours(1.0);
  barrier.heartbeat(2, stale);  // the absent party's last known progress

  std::atomic<int> wedged{0};
  std::atomic<int> aborted{0};
  std::string report;
  std::mutex report_mutex;
  std::vector<std::thread> waiters;
  for (int party = 0; party < 2; ++party) {
    waiters.emplace_back([&, party] {
      ShardBarrier::Heartbeat hb;
      hb.epoch = 5;
      hb.queue_depth = 3;
      hb.sim_now = Time::from_hours(2.0);
      barrier.heartbeat(party, hb);
      try {
        barrier.sync();
      } catch (const ShardWedged& e) {
        wedged.fetch_add(1);
        const std::lock_guard<std::mutex> lock{report_mutex};
        report = e.what();
      } catch (const ShardAborted&) {
        aborted.fetch_add(1);
      }
    });
  }
  for (std::thread& waiter : waiters) waiter.join();

  EXPECT_EQ(wedged.load(), 1);
  EXPECT_EQ(aborted.load(), 1);
  EXPECT_TRUE(barrier.poisoned());
  EXPECT_NE(report.find("shard wedged"), std::string::npos) << report;
  EXPECT_NE(report.find("shard 2: epoch 4, queue depth 17"), std::string::npos) << report;
  EXPECT_NE(report.find("lagging"), std::string::npos) << report;
  // Once poisoned, every future collective call aborts immediately.
  EXPECT_THROW(barrier.sync(), ShardAborted);
}

TEST(ShardEngineWatchdog, KillChainUnwindsStuckWorkerAndWritesQuarantine) {
  // End-to-end wedge protocol, exactly as ShardedNetwork runs it: a healthy
  // worker heartbeats and syncs, the peer is stuck in a runaway event loop
  // that only polls the cooperative abort flag (as Simulator::run_until
  // does). The healthy worker's watchdog fires, it quarantines the run via
  // the production writer and raises the kill switch; the stuck worker
  // unwinds; both threads join — no detached threads, no deadlock.
  const ScratchFile quarantine{"blam-wedge-quarantine"};
  const ScenarioConfig config = city(16, 4, 2, /*seed=*/77);
  ShardBarrier barrier{2, 0.15};
  std::atomic<bool> abort_flag{false};
  std::atomic<bool> stuck_unwound{false};

  std::thread stuck{[&abort_flag, &stuck_unwound] {
    while (!abort_flag.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stuck_unwound.store(true);  // SimulationAborted unwinds to the catch
  }};
  std::thread healthy{[&] {
    ShardBarrier::Heartbeat hb;
    hb.epoch = 12;
    hb.queue_depth = 0;
    hb.sim_now = Time::from_days(1.0);
    barrier.heartbeat(0, hb);
    try {
      barrier.sync();
    } catch (const ShardWedged& e) {
      write_wedge_quarantine(quarantine.path(), config, e.what());
      abort_flag.store(true);
    }
  }};
  healthy.join();
  stuck.join();
  EXPECT_TRUE(stuck_unwound.load());

  const std::vector<QuarantinedCell> cells = load_quarantine(quarantine.path());
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].key, "sharded-run");
  EXPECT_EQ(cells[0].seed, 77u);
  EXPECT_TRUE(cells[0].timed_out);
  EXPECT_NE(cells[0].error.find("shard wedged"), std::string::npos);
  EXPECT_NE(cells[0].error.find("shard 0: epoch 12"), std::string::npos);
  EXPECT_FALSE(cells[0].config_text.empty());
}

}  // namespace
}  // namespace blam
