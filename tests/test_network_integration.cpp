// End-to-end integration tests: whole networks simulated for days and the
// paper-level behaviours asserted. Scales are kept small so the full suite
// stays fast; the bench binaries run the paper-scale versions.
#include <gtest/gtest.h>

#include "net/experiment.hpp"
#include "net/network.hpp"

namespace blam {
namespace {

ScenarioConfig small(PolicyKind policy, double theta, int nodes = 20, std::uint64_t seed = 11) {
  ScenarioConfig c;
  c.policy = policy;
  c.theta = theta;
  c.n_nodes = nodes;
  c.seed = seed;
  c.label = c.policy_label();
  return c;
}

TEST(NetworkIntegration, ConfigValidationFiresOnBuild) {
  ScenarioConfig c = small(PolicyKind::kLorawan, 1.0);
  c.n_nodes = 0;
  EXPECT_THROW(Network{c}, std::invalid_argument);
  c = small(PolicyKind::kBlam, 0.0);
  EXPECT_THROW(Network{c}, std::invalid_argument);
  c = small(PolicyKind::kLorawan, 1.0);
  c.forecast_window = c.min_period + Time::from_minutes(1.0);
  EXPECT_THROW(Network{c}, std::invalid_argument);
}

TEST(NetworkIntegration, SingleNodeDeliversEverything) {
  // One node, no contention: every packet should be ACKed with zero
  // retransmissions during daylight-rich summer days.
  ScenarioConfig c = small(PolicyKind::kLorawan, 1.0, /*nodes=*/1);
  const ExperimentResult r = run_scenario(c, Time::from_days(2.0));
  ASSERT_EQ(r.nodes.size(), 1u);
  const NodeMetrics& m = r.nodes[0];
  EXPECT_GT(m.generated, 40u);  // periods 16-60 min over 2 days
  EXPECT_EQ(m.delivered, m.generated);
  EXPECT_EQ(m.retx, 0u);
  EXPECT_DOUBLE_EQ(m.avg_utility(), 1.0);  // always window 0
  EXPECT_GT(m.tx_energy.joules(), 0.0);
}

TEST(NetworkIntegration, SingleBlamNodeAlsoDelivers) {
  ScenarioConfig c = small(PolicyKind::kBlam, 0.5, /*nodes=*/1);
  const ExperimentResult r = run_scenario(c, Time::from_days(2.0));
  const NodeMetrics& m = r.nodes[0];
  EXPECT_GT(m.prr(), 0.95);
  EXPECT_EQ(m.retx, 0u);
}

TEST(NetworkIntegration, DeterministicAcrossRuns) {
  ScenarioConfig c = small(PolicyKind::kBlam, 0.5, 10);
  const ExperimentResult a = run_scenario(c, Time::from_days(1.0));
  const ExperimentResult b = run_scenario(c, Time::from_days(1.0));
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].generated, b.nodes[i].generated);
    EXPECT_EQ(a.nodes[i].delivered, b.nodes[i].delivered);
    EXPECT_EQ(a.nodes[i].tx_attempts, b.nodes[i].tx_attempts);
    EXPECT_DOUBLE_EQ(a.nodes[i].tx_energy.joules(), b.nodes[i].tx_energy.joules());
    EXPECT_DOUBLE_EQ(a.nodes[i].degradation, b.nodes[i].degradation);
  }
}

TEST(NetworkIntegration, SeedChangesOutcome) {
  const ExperimentResult a = run_scenario(small(PolicyKind::kLorawan, 1.0, 10, 1),
                                          Time::from_days(1.0));
  const ExperimentResult b = run_scenario(small(PolicyKind::kLorawan, 1.0, 10, 2),
                                          Time::from_days(1.0));
  EXPECT_NE(a.events_executed, b.events_executed);
}

TEST(NetworkIntegration, PacketAccountingIsConsistent) {
  for (PolicyKind policy : {PolicyKind::kLorawan, PolicyKind::kBlam, PolicyKind::kThetaOnly}) {
    const ExperimentResult r =
        run_scenario(small(policy, policy == PolicyKind::kLorawan ? 1.0 : 0.5, 30),
                     Time::from_days(3.0));
    for (const NodeMetrics& m : r.nodes) {
      // At the cutoff instant at most one packet per node is still in
      // flight (generated but not yet resolved).
      const std::uint64_t resolved = m.delivered + m.exhausted + m.policy_drops + m.brownouts;
      EXPECT_GE(m.generated, resolved) << "policy " << static_cast<int>(policy);
      EXPECT_LE(m.generated - resolved, 1u) << "policy " << static_cast<int>(policy);
      EXPECT_GE(m.tx_attempts, m.delivered);
      EXPECT_LE(m.retx, m.tx_attempts);
      EXPECT_EQ(m.latency_s.count(), resolved);
      EXPECT_LE(m.utility_sum, static_cast<double>(m.delivered) + 1e-9);
    }
  }
}

TEST(NetworkIntegration, GatewayCountersBalanceWithNodeAttempts) {
  const ExperimentResult r = run_scenario(small(PolicyKind::kLorawan, 1.0, 25), Time::from_days(2.0));
  std::uint64_t attempts = 0;
  for (const NodeMetrics& m : r.nodes) attempts += m.tx_attempts;
  EXPECT_EQ(r.gateway.arrivals, attempts);
  // Receptions in flight at the cutoff are counted as arrivals but have no
  // outcome yet; there can be at most one per node. Duplicates are a subset
  // of `received`, not a separate outcome.
  const std::uint64_t outcomes = r.gateway.received + r.gateway.lost_interference +
                                 r.gateway.lost_half_duplex + r.gateway.lost_no_demod_path +
                                 r.gateway.lost_under_sensitivity;
  EXPECT_GE(r.gateway.arrivals, outcomes);
  EXPECT_LE(r.gateway.arrivals - outcomes, r.nodes.size());
  EXPECT_LE(r.gateway.duplicates, r.gateway.received);
  EXPECT_LE(r.gateway.acks_sent, r.gateway.received);
}

TEST(NetworkIntegration, LorawanAlwaysUsesWindowZero) {
  const ExperimentResult r = run_scenario(small(PolicyKind::kLorawan, 1.0, 10), Time::from_days(1.0));
  ASSERT_FALSE(r.window_histogram.empty());
  int nodes_with_majority = 0;
  for (std::size_t w = 1; w < r.window_histogram.size(); ++w) {
    EXPECT_EQ(r.window_histogram[w], 0);
  }
  nodes_with_majority = r.window_histogram[0];
  EXPECT_EQ(nodes_with_majority, 10);
}

TEST(NetworkIntegration, BlamSpreadsAcrossWindows) {
  // Needs enough contention for the retransmission estimator to learn that
  // window 0 is crowded.
  const ExperimentResult r =
      run_scenario(small(PolicyKind::kBlam, 0.5, 150), Time::from_days(10.0));
  int beyond_first = 0;
  for (std::size_t w = 1; w < r.window_histogram.size(); ++w) beyond_first += r.window_histogram[w];
  EXPECT_GT(beyond_first, 0);  // at least some nodes settle past window 0
}

TEST(NetworkIntegration, ThetaCapHoldsThroughout) {
  ScenarioConfig c = small(PolicyKind::kBlam, 0.5, 10);
  Network network{c};
  network.run_until(Time::from_days(2.0));
  for (const auto& node : network.nodes()) {
    EXPECT_LE(node->battery().soc(), 0.5 + 1e-9);
  }
}

TEST(NetworkIntegration, SocReportsReachTheGatewayService) {
  ScenarioConfig c = small(PolicyKind::kBlam, 0.5, 5);
  Network network{c};
  network.run_until(Time::from_days(2.0));
  // After two days (and daily recomputes) every node has a degradation
  // estimate derived from its reported trace.
  for (const auto& node : network.nodes()) {
    EXPECT_GT(network.server().service().degradation(node->id()), 0.0);
  }
}

TEST(NetworkIntegration, WuFeedbackReachesNodes) {
  ScenarioConfig c = small(PolicyKind::kBlam, 0.5, 10);
  Network network{c};
  network.run_until(Time::from_days(3.0));
  int with_w = 0;
  for (const auto& node : network.nodes()) {
    if (node->w_u() > 0.0) ++with_w;
  }
  // w_u = D_u / D_max: the most-degraded node has w = 1 and others are
  // generally positive once dissemination starts.
  EXPECT_GT(with_w, 5);
}

TEST(NetworkIntegration, RunUntilEolTerminates) {
  // Accelerated aging so the test completes quickly: crank calendar rate.
  ScenarioConfig c = small(PolicyKind::kLorawan, 1.0, 5);
  c.degradation.k1 = 4.14e-7;  // 1000x faster
  const LifespanResult r = run_until_eol(c, Time::from_days(100.0), Time::from_days(1.0));
  EXPECT_TRUE(r.reached_eol);
  EXPECT_GT(r.lifespan, Time::zero());
  EXPECT_LT(r.lifespan, Time::from_days(100.0));
  EXPECT_FALSE(r.max_degradation_series.empty());
  // Series is monotone.
  for (std::size_t i = 1; i < r.max_degradation_series.size(); ++i) {
    EXPECT_GE(r.max_degradation_series[i], r.max_degradation_series[i - 1]);
  }
  EXPECT_GE(r.max_degradation_series.back(), 0.2);
}

TEST(NetworkIntegration, SharedTraceGivesIdenticalWeather) {
  ScenarioConfig base = small(PolicyKind::kLorawan, 1.0, 5);
  const auto trace = build_shared_trace(base);
  Network a{small(PolicyKind::kBlam, 0.5, 5), trace};
  Network b{small(PolicyKind::kLorawan, 1.0, 5), trace};
  EXPECT_EQ(&a.solar_trace(), &b.solar_trace());
}

TEST(NetworkIntegration, FastFadingCostsPackets) {
  // Rayleigh fading adds deep per-transmission fades: on marginal links it
  // causes extra losses (and retransmissions) versus the frozen-shadowing
  // twin, while strong links shrug it off.
  ScenarioConfig calm = small(PolicyKind::kLorawan, 1.0, 20);
  calm.radius_m = 4500.0;  // SF10 at ~5 km is marginal
  ScenarioConfig fading = calm;
  fading.fast_fading = true;
  const auto trace = build_shared_trace(calm);
  const ExperimentResult a = run_scenario(calm, Time::from_days(2.0), trace);
  const ExperimentResult b = run_scenario(fading, Time::from_days(2.0), trace);
  EXPECT_GT(b.gateway.lost_under_sensitivity, a.gateway.lost_under_sensitivity);
  EXPECT_GE(b.summary.mean_retx, a.summary.mean_retx);
}

TEST(NetworkIntegration, GreedyGreenSavesEnergyNotLifespan) {
  // The related-work contrast: the energy-aware baseline cuts TX energy vs
  // LoRaWAN but keeps (roughly) LoRaWAN's degradation, while H-50 cuts both.
  const int nodes = 60;
  const std::uint64_t seed = 4;
  const auto trace = build_shared_trace(lorawan_scenario(nodes, seed));
  const Time duration = Time::from_days(20.0);
  const ExperimentResult lorawan =
      run_scenario(lorawan_scenario(nodes, seed), duration, trace);
  const ExperimentResult green =
      run_scenario(greedy_green_scenario(nodes, seed), duration, trace);
  const ExperimentResult h50 = run_scenario(blam_scenario(nodes, 0.5, seed), duration, trace);
  EXPECT_LT(green.summary.total_tx_energy.joules(), lorawan.summary.total_tx_energy.joules());
  EXPECT_GT(green.summary.degradation_box.mean, h50.summary.degradation_box.mean * 1.2);
}

TEST(NetworkIntegration, AdrConvergesStrongLinksDown) {
  // Nodes start at SF10/14 dBm (the fixed default) on easy links; with ADR
  // enabled the server steps them down to SF7 and lower power, cutting TX
  // energy versus the ADR-off twin.
  ScenarioConfig with_adr = small(PolicyKind::kLorawan, 1.0, 15);
  with_adr.radius_m = 500.0;  // strong links
  with_adr.adr_enabled = true;
  ScenarioConfig without_adr = with_adr;
  without_adr.adr_enabled = false;

  Network adr_net{with_adr};
  adr_net.run_until(Time::from_days(2.0));
  adr_net.finalize_metrics();
  int stepped_down = 0;
  for (const auto& node : adr_net.nodes()) {
    if (sf_value(node->sf()) < 10 || node->radio_params().tx_power_dbm < 14.0) ++stepped_down;
  }
  EXPECT_GT(stepped_down, 10);

  const ExperimentResult off = run_scenario(without_adr, Time::from_days(2.0));
  ExperimentResult on;
  {
    Network net{with_adr};
    net.run_until(Time::from_days(2.0));
    net.finalize_metrics();
    on.summary = net.metrics().summarize();
  }
  EXPECT_LT(on.summary.total_tx_energy.joules(), off.summary.total_tx_energy.joules());
  EXPECT_GT(on.summary.mean_prr, 0.95);
}

TEST(NetworkIntegration, DistanceBasedSfAssignsMix) {
  ScenarioConfig c = small(PolicyKind::kLorawan, 1.0, 60);
  c.sf_assignment = SfAssignment::kDistanceBased;
  c.radius_m = 7000.0;
  c.path_loss.shadowing_sigma_db = 6.0;
  Network network{c};
  int low_sf = 0;
  int high_sf = 0;
  for (const auto& node : network.nodes()) {
    (sf_value(node->sf()) <= 8 ? low_sf : high_sf) += 1;
  }
  EXPECT_GT(low_sf, 0);
  EXPECT_GT(high_sf, 0);
  network.run_until(Time::from_days(1.0));
  network.finalize_metrics();
  EXPECT_GT(network.metrics().summarize().mean_prr, 0.5);
}

}  // namespace
}  // namespace blam
