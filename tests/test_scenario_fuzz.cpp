// Scenario fuzzing: randomized configurations driven through short runs,
// asserting the global invariants that must hold for ANY valid scenario —
// no crash, packet-accounting identity, theta cap, deterministic repeat.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/experiment.hpp"
#include "net/network.hpp"

namespace blam {
namespace {

ScenarioConfig random_scenario(Rng& rng) {
  ScenarioConfig c;
  const int policy = static_cast<int>(rng.uniform_int(0, 3));
  c.policy = static_cast<PolicyKind>(policy);
  c.theta = c.policy == PolicyKind::kLorawan || c.policy == PolicyKind::kGreedyGreen
                ? 1.0
                : rng.uniform(0.05, 1.0);
  c.label = c.policy_label();
  c.seed = rng.next_u64();
  c.n_nodes = static_cast<int>(rng.uniform_int(1, 40));
  c.radius_m = rng.uniform(100.0, 8000.0);
  c.n_gateways = static_cast<int>(rng.uniform_int(1, 3));
  const double min_period = rng.uniform(16.0, 30.0);
  c.min_period = Time::from_minutes(min_period);
  c.max_period = Time::from_minutes(min_period + rng.uniform(0.0, 30.0));
  c.forecast_window = Time::from_minutes(rng.uniform(1.0, 4.0));
  c.w_b = rng.uniform(0.0, 1.0);
  c.utility = static_cast<UtilityKind>(rng.uniform_int(0, 2));
  c.uplink_channels = static_cast<int>(rng.uniform_int(1, 8));
  c.sf_assignment = rng.bernoulli(0.5) ? SfAssignment::kFixed : SfAssignment::kDistanceBased;
  c.fixed_sf = sf_from_value(static_cast<int>(rng.uniform_int(7, 12)));
  c.path_loss.shadowing_sigma_db = rng.uniform(0.0, 8.0);
  c.fast_fading = rng.bernoulli(0.3);
  c.adr_enabled = rng.bernoulli(0.3);
  c.confirmed = rng.bernoulli(0.8);
  c.duty_cycle = rng.bernoulli(0.3) ? rng.uniform(0.01, 1.0) : 1.0;
  c.period_jitter = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.3) : 0.0;
  c.supercap_tx_buffer = rng.bernoulli(0.3) ? rng.uniform(1.0, 8.0) : 0.0;
  c.battery_self_discharge_per_month = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.1) : 0.0;
  c.thermal.insulated = rng.bernoulli(0.7);
  c.thermal.mean_c = rng.uniform(-5.0, 35.0);
  c.interference.tx_per_hour = rng.bernoulli(0.3) ? rng.uniform(0.0, 500.0) : 0.0;
  c.solar_tx_per_window = rng.uniform(1.0, 6.0);
  c.battery_days = rng.uniform(2.0, 10.0);
  c.forecast_error_sigma = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.5) : 0.0;
  return c;
}

class ScenarioFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioFuzzTest, InvariantsHoldUnderRandomConfigs) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919 + 3};
  const ScenarioConfig config = random_scenario(rng);
  SCOPED_TRACE("policy=" + config.label + " nodes=" + std::to_string(config.n_nodes) +
               " seed=" + std::to_string(config.seed));

  const Time duration = Time::from_days(1.0);
  const ExperimentResult r = run_scenario(config, duration);

  // Packet accounting: every generated packet is resolved, except at most
  // one in flight per node at the cutoff.
  for (const NodeMetrics& m : r.nodes) {
    const std::uint64_t resolved = m.delivered + m.exhausted + m.policy_drops + m.brownouts;
    EXPECT_GE(m.generated, resolved);
    EXPECT_LE(m.generated - resolved, 1u);
    EXPECT_GE(m.tx_attempts, m.delivered);
    EXPECT_LE(m.utility_sum, static_cast<double>(m.delivered) + 1e-9);
    EXPECT_GE(m.degradation, 0.0);
    EXPECT_LT(m.degradation, 1.0);
  }

  // Gateway bucket balance (arrivals may include in-flight receptions and
  // are multiplied by the gateway count).
  const std::uint64_t outcomes = r.gateway.received + r.gateway.lost_interference +
                                 r.gateway.lost_half_duplex + r.gateway.lost_no_demod_path +
                                 r.gateway.lost_under_sensitivity;
  EXPECT_GE(r.gateway.arrivals, outcomes);

  // Theta cap invariant for the capped policies.
  if (config.policy == PolicyKind::kBlam || config.policy == PolicyKind::kThetaOnly) {
    Network network{config};
    network.run_until(Time::from_hours(30.0));
    for (const auto& node : network.nodes()) {
      EXPECT_LE(node->battery().soc(), config.theta + 1e-9);
    }
  }

  // Determinism: an identical rerun reproduces the event count exactly.
  const ExperimentResult again = run_scenario(config, duration);
  EXPECT_EQ(again.events_executed, r.events_executed);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, ScenarioFuzzTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace blam
