#include "core/theta_controller.hpp"

#include <gtest/gtest.h>

#include "net/experiment.hpp"
#include "net/network.hpp"

namespace blam {
namespace {

ThetaController::Config config() {
  ThetaController::Config c;
  c.theta_min = 0.2;
  c.theta_max = 0.9;
  c.initial = 0.5;
  c.step = 0.1;
  c.loss_raise = 0.05;
  c.loss_lower = 0.005;
  c.window_packets = 10;
  return c;
}

TEST(ThetaController, ValidatesConfig) {
  auto c = config();
  c.theta_min = 0.0;
  EXPECT_THROW(ThetaController{c}, std::invalid_argument);
  c = config();
  c.initial = 0.95;
  EXPECT_THROW(ThetaController{c}, std::invalid_argument);
  c = config();
  c.step = 0.0;
  EXPECT_THROW(ThetaController{c}, std::invalid_argument);
  c = config();
  c.loss_lower = 0.2;  // > loss_raise
  EXPECT_THROW(ThetaController{c}, std::invalid_argument);
  c = config();
  c.window_packets = 0;
  EXPECT_THROW(ThetaController{c}, std::invalid_argument);
}

TEST(ThetaController, StartsAtInitial) {
  ThetaController controller{config()};
  EXPECT_DOUBLE_EQ(controller.theta(7), 0.5);
}

TEST(ThetaController, CleanDeliveryLowersTheta) {
  ThetaController controller{config()};
  std::optional<double> update;
  for (std::uint32_t seq = 1; seq <= 10; ++seq) {
    update = controller.on_delivery(1, seq);
  }
  ASSERT_TRUE(update.has_value());
  EXPECT_DOUBLE_EQ(*update, 0.4);  // zero loss -> step down
  EXPECT_DOUBLE_EQ(controller.theta(1), 0.4);
}

TEST(ThetaController, GapsInferLossAndRaiseTheta) {
  ThetaController controller{config()};
  // Deliver every third sequence number: loss rate ~ 2/3 > loss_raise.
  std::optional<double> update;
  std::uint32_t seq = 1;
  while (!update.has_value()) {
    update = controller.on_delivery(1, seq);
    seq += 3;
  }
  EXPECT_DOUBLE_EQ(*update, 0.6);
}

TEST(ThetaController, ClampsAtBounds) {
  ThetaController controller{config()};
  // Push down repeatedly: clamps at theta_min and stops reporting changes.
  std::uint32_t seq = 0;
  int updates = 0;
  for (int window = 0; window < 10; ++window) {
    for (int i = 0; i < 10; ++i) {
      if (controller.on_delivery(1, ++seq).has_value()) ++updates;
    }
  }
  EXPECT_DOUBLE_EQ(controller.theta(1), 0.2);
  EXPECT_EQ(updates, 3);  // 0.5 -> 0.4 -> 0.3 -> 0.2, then silent
}

TEST(ThetaController, ModerateLossHoldsSteady) {
  auto c = config();
  c.window_packets = 50;
  ThetaController controller{c};
  // One gap in ~50 packets: loss ~2%, between the thresholds -> no change.
  std::uint32_t seq = 0;
  for (int i = 0; i < 49; ++i) {
    EXPECT_FALSE(controller.on_delivery(1, ++seq).has_value());
  }
  ++seq;  // skip one sequence number
  const auto update = controller.on_delivery(1, ++seq);
  EXPECT_FALSE(update.has_value());
  EXPECT_DOUBLE_EQ(controller.theta(1), 0.5);
}

TEST(ThetaController, DuplicatesIgnored) {
  ThetaController controller{config()};
  EXPECT_FALSE(controller.on_delivery(1, 5).has_value());
  EXPECT_FALSE(controller.on_delivery(1, 5).has_value());  // duplicate
  EXPECT_FALSE(controller.on_delivery(1, 3).has_value());  // reorder
  EXPECT_DOUBLE_EQ(controller.theta(1), 0.5);
}

TEST(ThetaController, NodesIndependent) {
  ThetaController controller{config()};
  for (std::uint32_t seq = 1; seq <= 10; ++seq) controller.on_delivery(1, seq);
  EXPECT_DOUBLE_EQ(controller.theta(1), 0.4);
  EXPECT_DOUBLE_EQ(controller.theta(2), 0.5);
}

TEST(AdaptiveThetaNetwork, HealthyNetworkDriftsThetaDown) {
  // A comfortable H-50 network loses almost nothing: the manager walks the
  // caps down toward theta_min, buying calendar lifespan for free.
  ScenarioConfig c = blam_scenario(15, 0.5, 61);
  c.adaptive_theta = true;
  c.theta_controller.window_packets = 20;
  Network network{c};
  network.run_until(Time::from_days(10.0));
  double mean_cap = 0.0;
  for (const auto& node : network.nodes()) {
    mean_cap += node->policy().soc_cap();
    EXPECT_LE(node->battery().soc(), node->policy().soc_cap() + 1e-9);
  }
  mean_cap /= static_cast<double>(network.nodes().size());
  EXPECT_LT(mean_cap, 0.5);
}

TEST(AdaptiveThetaNetwork, ReducesDegradationVersusFixedTheta) {
  ScenarioConfig fixed = blam_scenario(15, 0.5, 62);
  ScenarioConfig adaptive = fixed;
  adaptive.adaptive_theta = true;
  adaptive.theta_controller.window_packets = 20;
  const auto trace = build_shared_trace(fixed);
  const ExperimentResult a = run_scenario(fixed, Time::from_days(20.0), trace);
  const ExperimentResult b = run_scenario(adaptive, Time::from_days(20.0), trace);
  EXPECT_LE(b.summary.degradation_box.mean, a.summary.degradation_box.mean);
  EXPECT_GT(b.summary.mean_prr, 0.95);
}

}  // namespace
}  // namespace blam
