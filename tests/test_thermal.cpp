#include "energy/thermal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "degradation/tracker.hpp"
#include "net/experiment.hpp"

namespace blam {
namespace {

TEST(TemperatureModel, InsulatedIsConstant) {
  ThermalConfig config;  // insulated 25 C default
  const TemperatureModel model{config};
  EXPECT_DOUBLE_EQ(model.at(Time::zero()), 25.0);
  EXPECT_DOUBLE_EQ(model.at(Time::from_days(182.0)), 25.0);
  EXPECT_DOUBLE_EQ(model.at(Time::from_days(364.9)), 25.0);
}

TEST(TemperatureModel, ValidatesAmplitudes) {
  ThermalConfig config;
  config.seasonal_amplitude_c = -1.0;
  EXPECT_THROW(TemperatureModel{config}, std::invalid_argument);
}

TEST(TemperatureModel, OutdoorSeasonalShape) {
  ThermalConfig config;
  config.insulated = false;
  config.mean_c = 15.0;
  config.seasonal_amplitude_c = 10.0;
  config.diurnal_amplitude_c = 0.0;
  const TemperatureModel model{config};
  // Mid-January (day 15) coldest, ~day 197 warmest.
  EXPECT_NEAR(model.at(Time::from_days(15.0)), 5.0, 0.1);
  EXPECT_NEAR(model.at(Time::from_days(197.5)), 25.0, 0.1);
  // Mean holds over the year.
  double sum = 0.0;
  for (int d = 0; d < 365; ++d) sum += model.at(Time::from_days(d));
  EXPECT_NEAR(sum / 365.0, 15.0, 0.1);
}

TEST(TemperatureModel, OutdoorDiurnalShape) {
  ThermalConfig config;
  config.insulated = false;
  config.mean_c = 15.0;
  config.seasonal_amplitude_c = 0.0;
  config.diurnal_amplitude_c = 6.0;
  const TemperatureModel model{config};
  EXPECT_NEAR(model.at(Time::from_hours(4.0)), 9.0, 0.1);   // coldest 4 am
  EXPECT_NEAR(model.at(Time::from_hours(16.0)), 21.0, 0.1);  // warmest 4 pm
}

TEST(TemperatureModel, TroughsAreStronglyTypedAndConfigurable) {
  ThermalConfig config;
  config.insulated = false;
  config.seasonal_amplitude_c = 10.0;
  config.diurnal_amplitude_c = 0.0;
  config.seasonal_trough = Time::from_days(45.0);  // cold snap in mid-February
  const TemperatureModel model{config};
  EXPECT_NEAR(model.at(Time::from_days(45.0)), config.mean_c - 10.0, 0.1);
  EXPECT_NEAR(model.at(Time::from_days(45.0 + 182.5)), config.mean_c + 10.0, 0.1);

  ThermalConfig night_shift = config;
  night_shift.seasonal_amplitude_c = 0.0;
  night_shift.diurnal_amplitude_c = 6.0;
  night_shift.diurnal_trough = Time::from_hours(6.0);
  const TemperatureModel shifted{night_shift};
  EXPECT_NEAR(shifted.at(Time::from_hours(6.0)), night_shift.mean_c - 6.0, 0.1);
  EXPECT_NEAR(shifted.at(Time::from_hours(18.0)), night_shift.mean_c + 6.0, 0.1);
}

TEST(TemperatureModel, DefaultTroughsReproduceHistoricalTrace) {
  // The strong-typing migration must be bit-transparent: the Time-typed
  // defaults convert back to exactly 15.0 days / 4.0 hours, so the model
  // reproduces the raw-double formula it replaced digit for digit.
  ThermalConfig config;
  config.insulated = false;
  const TemperatureModel model{config};
  EXPECT_EQ(config.seasonal_trough.days(), 15.0);
  EXPECT_EQ(config.diurnal_trough.hours(), 4.0);
  for (const double day : {0.0, 15.0, 100.25, 200.5, 364.75}) {
    const Time t = Time::from_days(day);
    const double d = t.days();
    const double hour = (d - std::floor(d)) * 24.0;
    const double expected =
        config.mean_c -
        config.seasonal_amplitude_c * std::cos(2.0 * std::numbers::pi * (d - 15.0) / 365.0) -
        config.diurnal_amplitude_c * std::cos(2.0 * std::numbers::pi * (hour - 4.0) / 24.0);
    EXPECT_EQ(model.at(t), expected) << "day " << day;
  }
}

TEST(TemperatureModel, ValidatesTroughRanges) {
  ThermalConfig config;
  config.seasonal_trough = Time::from_days(365.0);
  EXPECT_THROW(TemperatureModel{config}, std::invalid_argument);
  config.seasonal_trough = Time::from_days(-1.0);
  EXPECT_THROW(TemperatureModel{config}, std::invalid_argument);
  config.seasonal_trough = Time::from_days(15.0);
  config.diurnal_trough = Time::from_hours(24.0);
  EXPECT_THROW(TemperatureModel{config}, std::invalid_argument);
}

TEST(TrackerThermal, ConstantTemperatureMatchesLegacyFormula) {
  const DegradationModel model{};
  DegradationTracker tracker{model, 35.0};
  tracker.record(Time::zero(), 0.6);
  tracker.record(Time::from_days(100.0), 0.6);
  EXPECT_NEAR(tracker.calendar_linear(Time::from_days(100.0)),
              model.calendar_aging(Time::from_days(100.0), 0.6, 35.0), 1e-15);
}

TEST(TrackerThermal, TemperatureChangeSplitsTheIntegral) {
  const DegradationModel model{};
  DegradationTracker tracker{model, 25.0};
  tracker.record(Time::zero(), 0.5);
  tracker.record(Time::from_days(50.0), 0.5);
  tracker.set_temperature(Time::from_days(50.0), 45.0);
  tracker.record(Time::from_days(100.0), 0.5);
  const double expected = model.calendar_aging(Time::from_days(50.0), 0.5, 25.0) +
                          model.calendar_aging(Time::from_days(50.0), 0.5, 45.0);
  EXPECT_NEAR(tracker.calendar_linear(Time::from_days(100.0)), expected, 1e-12);
}

TEST(TrackerThermal, SetTemperatureRejectsTimeTravel) {
  const DegradationModel model{};
  DegradationTracker tracker{model, 25.0};
  tracker.record(Time::from_days(10.0), 0.5);
  EXPECT_THROW(tracker.set_temperature(Time::from_days(5.0), 30.0), std::invalid_argument);
}

TEST(TrackerThermal, HotSpellAgesMoreThanAverageTemperature) {
  // Jensen: S_T is convex in T, so alternating 15/35 C ages faster than a
  // constant 25 C at the same mean.
  const DegradationModel model{};
  DegradationTracker constant{model, 25.0};
  DegradationTracker alternating{model, 15.0};
  constant.record(Time::zero(), 0.5);
  alternating.record(Time::zero(), 0.5);
  for (int day = 1; day <= 100; ++day) {
    const Time t = Time::from_days(day);
    constant.record(t, 0.5);
    alternating.set_temperature(t, day % 2 == 0 ? 15.0 : 35.0);
    alternating.record(t, 0.5);
  }
  const Time end = Time::from_days(100.0);
  EXPECT_GT(alternating.calendar_linear(end), constant.calendar_linear(end));
}

TEST(NetworkThermal, OutdoorSummerNodesAgeFasterThanInsulated) {
  ScenarioConfig insulated = lorawan_scenario(10, 5);
  ScenarioConfig outdoor = insulated;
  outdoor.thermal.insulated = false;
  outdoor.thermal.mean_c = 30.0;  // hot climate
  outdoor.thermal.seasonal_amplitude_c = 5.0;
  outdoor.thermal.diurnal_amplitude_c = 8.0;

  const auto trace = build_shared_trace(insulated);
  const ExperimentResult cool = run_scenario(insulated, Time::from_days(60.0), trace);
  const ExperimentResult hot = run_scenario(outdoor, Time::from_days(60.0), trace);
  EXPECT_GT(hot.summary.degradation_box.mean, cool.summary.degradation_box.mean);
}

TEST(NetworkThermal, ColdClimateSlowsAging) {
  ScenarioConfig insulated = lorawan_scenario(10, 5);
  ScenarioConfig outdoor = insulated;
  outdoor.thermal.insulated = false;
  outdoor.thermal.mean_c = 5.0;
  outdoor.thermal.seasonal_amplitude_c = 5.0;
  outdoor.thermal.diurnal_amplitude_c = 3.0;

  const auto trace = build_shared_trace(insulated);
  const ExperimentResult warm = run_scenario(insulated, Time::from_days(60.0), trace);
  const ExperimentResult cold = run_scenario(outdoor, Time::from_days(60.0), trace);
  EXPECT_LT(cold.summary.degradation_box.mean, warm.summary.degradation_box.mean);
}

}  // namespace
}  // namespace blam
