#include "mac/gateway_mac.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

class AckPlannerTest : public ::testing::Test {
 protected:
  AckPlannerTest() : plan_{8, 8}, planner_{timings_, plan_, 27.0, 500e3} {}

  ClassATimings timings_{};
  ChannelPlan plan_;
  AckPlanner planner_;
};

TEST_F(AckPlannerTest, FirstAckLandsInRx1) {
  const Time uplink_end = Time::from_seconds(10.0);
  const auto ack = planner_.plan(uplink_end, SpreadingFactor::kSF10, 3, 1);
  ASSERT_TRUE(ack.has_value());
  EXPECT_FALSE(ack->rx2);
  EXPECT_EQ(ack->tx_start, uplink_end + timings_.rx1_delay);
  EXPECT_EQ(ack->sf, SpreadingFactor::kSF10);
  EXPECT_EQ(ack->channel, plan_.rx1_channel(3));
  EXPECT_GT(ack->tx_end, ack->tx_start);
}

TEST_F(AckPlannerTest, ConflictFallsBackToRx2) {
  const Time end_a = Time::from_seconds(10.0);
  const auto a = planner_.plan(end_a, SpreadingFactor::kSF12, 0, 1);
  ASSERT_TRUE(a.has_value());
  ASSERT_FALSE(a->rx2);
  // A second uplink ending such that its RX1 slot overlaps A's reservation.
  const Time end_b = end_a + Time::from_ms(50);
  const auto b = planner_.plan(end_b, SpreadingFactor::kSF12, 1, 1);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->rx2);
  EXPECT_EQ(b->tx_start, end_b + timings_.rx2_delay);
  EXPECT_EQ(b->sf, plan_.rx2_spreading_factor());
}

TEST_F(AckPlannerTest, BothSlotsBusyFails) {
  // Saturate: many uplinks ending at nearly the same time. SF12 ACKs at
  // 500 kHz are ~0.2 s, so a handful of overlapping requests exhausts both
  // RX1 and RX2 slots for some requester.
  int failures = 0;
  for (int i = 0; i < 20; ++i) {
    const Time end = Time::from_seconds(10.0) + Time::from_ms(5 * i);
    if (!planner_.plan(end, SpreadingFactor::kSF12, i % 8, 1).has_value()) ++failures;
  }
  EXPECT_GT(failures, 0);
}

TEST_F(AckPlannerTest, OverlapsTxDetectsReservations) {
  const Time end = Time::from_seconds(10.0);
  const auto ack = planner_.plan(end, SpreadingFactor::kSF10, 0, 1);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(planner_.overlaps_tx(ack->tx_start, ack->tx_end));
  EXPECT_TRUE(planner_.overlaps_tx(ack->tx_start - Time::from_ms(10), ack->tx_start + Time::from_ms(1)));
  EXPECT_FALSE(planner_.overlaps_tx(ack->tx_end, ack->tx_end + Time::from_seconds(1.0)));
  EXPECT_FALSE(planner_.overlaps_tx(Time::zero(), Time::from_seconds(1.0)));
}

TEST_F(AckPlannerTest, PruneDropsOldReservations) {
  for (int i = 0; i < 10; ++i) {
    (void)planner_.plan(Time::from_seconds(10.0 * i), SpreadingFactor::kSF7, 0, 1);
  }
  EXPECT_EQ(planner_.reservations(), 10u);
  planner_.prune(Time::from_seconds(1000.0));
  EXPECT_EQ(planner_.reservations(), 0u);
}

TEST_F(AckPlannerTest, SequentialUplinksBothGetRx1) {
  // Far-apart uplinks never conflict.
  const auto a = planner_.plan(Time::from_seconds(10.0), SpreadingFactor::kSF10, 0, 1);
  const auto b = planner_.plan(Time::from_seconds(20.0), SpreadingFactor::kSF10, 1, 1);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(a->rx2);
  EXPECT_FALSE(b->rx2);
}

TEST(AckPlannerBandwidth, NarrowRx1MakesLongAcks) {
  ClassATimings timings;
  ChannelPlan plan{8, 8};
  AckPlanner wide{timings, plan, 27.0, 500e3};
  AckPlanner narrow{timings, plan, 27.0, 125e3};
  const auto a = wide.plan(Time::from_seconds(1.0), SpreadingFactor::kSF10, 0, 1);
  const auto b = narrow.plan(Time::from_seconds(1.0), SpreadingFactor::kSF10, 0, 1);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR((b->tx_end - b->tx_start).seconds(), 4.0 * (a->tx_end - a->tx_start).seconds(),
              1e-9);
}

}  // namespace
}  // namespace blam
