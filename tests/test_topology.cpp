#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace blam {
namespace {

TEST(Topology, RandomDiskStaysInRadius) {
  Rng rng{1};
  const Position center{100.0, -50.0};
  const auto positions = random_disk(1000, 5000.0, center, rng);
  ASSERT_EQ(positions.size(), 1000u);
  for (const Position& p : positions) {
    EXPECT_LE(p.distance_to(center), 5000.0 + 1e-9);
  }
}

TEST(Topology, RandomDiskIsAreaUniform) {
  Rng rng{2};
  const Position center{0.0, 0.0};
  const auto positions = random_disk(20000, 1000.0, center, rng);
  // Under area-uniformity, the fraction within r = R/sqrt(2) is 1/2.
  int inside = 0;
  for (const Position& p : positions) {
    if (p.distance_to(center) <= 1000.0 / std::sqrt(2.0)) ++inside;
  }
  EXPECT_NEAR(static_cast<double>(inside) / 20000.0, 0.5, 0.02);
}

TEST(Topology, RandomDiskValidation) {
  Rng rng{3};
  EXPECT_THROW(random_disk(-1, 100.0, Position{}, rng), std::invalid_argument);
  EXPECT_THROW(random_disk(10, 0.0, Position{}, rng), std::invalid_argument);
  EXPECT_TRUE(random_disk(0, 100.0, Position{}, rng).empty());
}

TEST(Topology, RingIsEquidistant) {
  const Position center{10.0, 20.0};
  const auto positions = ring(12, 500.0, center);
  ASSERT_EQ(positions.size(), 12u);
  for (const Position& p : positions) {
    EXPECT_NEAR(p.distance_to(center), 500.0, 1e-9);
  }
}

TEST(Topology, RingValidation) {
  EXPECT_THROW(ring(-1, 100.0, Position{}), std::invalid_argument);
  EXPECT_THROW(ring(4, -5.0, Position{}), std::invalid_argument);
}

}  // namespace
}  // namespace blam
