#include "net/packet_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "net/experiment.hpp"
#include "net/network.hpp"

namespace blam {
namespace {

TEST(PacketLog, RecordsAndFilters) {
  PacketLog log;
  log.record({Time::from_seconds(1.0), 1, 10, -1, 0, PacketEventKind::kGenerated});
  log.record({Time::from_seconds(1.1), 1, 10, 0, 0, PacketEventKind::kTxStart});
  log.record({Time::from_seconds(2.0), 1, 10, 0, 0, PacketEventKind::kDelivered});
  log.record({Time::from_seconds(3.0), 2, 5, -1, 1, PacketEventKind::kGenerated});
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.count(PacketEventKind::kGenerated), 2u);
  EXPECT_EQ(log.count(PacketEventKind::kDelivered), 1u);
  EXPECT_EQ(log.count(PacketEventKind::kBrownout), 0u);
  const auto history = log.history(1, 10);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].kind, PacketEventKind::kGenerated);
  EXPECT_EQ(history[2].kind, PacketEventKind::kDelivered);
  EXPECT_TRUE(log.history(9, 9).empty());
}

TEST(PacketLog, KindNames) {
  EXPECT_STREQ(to_string(PacketEventKind::kGenerated), "generated");
  EXPECT_STREQ(to_string(PacketEventKind::kDutyDefer), "duty_defer");
  EXPECT_STREQ(to_string(PacketEventKind::kExhausted), "exhausted");
}

TEST(PacketLog, DisabledByDefault) {
  Network network{lorawan_scenario(3, 51)};
  EXPECT_EQ(network.packet_log(), nullptr);
}

TEST(PacketLog, LiveNetworkEventsAreConsistent) {
  ScenarioConfig c = lorawan_scenario(10, 52);
  c.packet_log = true;
  Network network{c};
  network.run_until(Time::from_days(1.0));
  network.finalize_metrics();
  ASSERT_NE(network.packet_log(), nullptr);
  const PacketLog& log = *network.packet_log();

  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t tx = 0;
  for (std::size_t i = 0; i < network.metrics().node_count(); ++i) {
    generated += network.metrics().node(i).generated;
    delivered += network.metrics().node(i).delivered;
    tx += network.metrics().node(i).tx_attempts;
  }
  EXPECT_EQ(log.count(PacketEventKind::kGenerated), generated);
  EXPECT_EQ(log.count(PacketEventKind::kDelivered), delivered);
  EXPECT_EQ(log.count(PacketEventKind::kTxStart), tx);

  // Event times are non-decreasing (the log is append-only in sim order).
  Time prev = Time::zero();
  for (const PacketEvent& e : log.events()) {
    EXPECT_GE(e.at, prev);
    prev = e.at;
  }

  // A delivered packet's history reads generated -> tx -> ... -> delivered.
  for (const PacketEvent& e : log.events()) {
    if (e.kind != PacketEventKind::kDelivered) continue;
    const auto history = log.history(e.node, e.seq);
    ASSERT_GE(history.size(), 3u);
    EXPECT_EQ(history.front().kind, PacketEventKind::kGenerated);
    EXPECT_EQ(history.back().kind, PacketEventKind::kDelivered);
    break;
  }
}

TEST(PacketLog, CsvExport) {
  PacketLog log;
  log.record({Time::from_seconds(1.0), 1, 10, -1, 0, PacketEventKind::kGenerated});
  const std::string path = ::testing::TempDir() + "packet_log_test.csv";
  log.write_csv(path);
  std::ifstream in{path};
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time_s,node,seq,attempt,window,kind");
  std::string row;
  std::getline(in, row);
  EXPECT_NE(row.find("generated"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace blam
