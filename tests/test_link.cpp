#include "lora/link.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

TEST(Position, Distance) {
  const Position a{0.0, 0.0};
  const Position b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.distance_to(b), 5.0);
  EXPECT_DOUBLE_EQ(b.distance_to(a), 5.0);
  EXPECT_DOUBLE_EQ(a.distance_to(a), 0.0);
}

TEST(PathLoss, ReferencePointAndSlope) {
  PathLossModel model;  // defaults: 7.7 dB at 1 m, exponent 3.76
  EXPECT_DOUBLE_EQ(model.path_loss_db(1.0), 7.7);
  // One decade adds 10 * 3.76 dB.
  EXPECT_NEAR(model.path_loss_db(10.0) - model.path_loss_db(1.0), 37.6, 1e-9);
  EXPECT_NEAR(model.path_loss_db(100.0) - model.path_loss_db(10.0), 37.6, 1e-9);
}

TEST(PathLoss, ClampsBelowReferenceDistance) {
  PathLossModel model;
  EXPECT_DOUBLE_EQ(model.path_loss_db(0.1), model.path_loss_db(1.0));
  EXPECT_DOUBLE_EQ(model.path_loss_db(0.0), 7.7);
}

TEST(Link, NoShadowingIsDeterministic) {
  PathLossModel model;
  Rng rng{1};
  const Link link{Position{3000.0, 4000.0}, Position{0.0, 0.0}, model, rng};
  EXPECT_DOUBLE_EQ(link.distance_m(), 5000.0);
  EXPECT_NEAR(link.total_loss_db(), model.path_loss_db(5000.0), 1e-12);
}

TEST(Link, RxPowerIsTxMinusLoss) {
  PathLossModel model;
  Rng rng{1};
  const Link link{Position{1000.0, 0.0}, Position{0.0, 0.0}, model, rng};
  EXPECT_NEAR(link.rx_power_dbm(14.0), 14.0 - link.total_loss_db(), 1e-12);
}

TEST(Link, ShadowingVariesAcrossLinks) {
  PathLossModel model;
  model.shadowing_sigma_db = 8.0;
  Rng rng{7};
  const Position gw{0.0, 0.0};
  const Position dev{1000.0, 0.0};
  const Link a{dev, gw, model, rng};
  const Link b{dev, gw, model, rng};
  EXPECT_NE(a.total_loss_db(), b.total_loss_db());
}

TEST(Link, MinSfPicksSmallestThatCloses) {
  PathLossModel model;
  Rng rng{1};
  // Close node: SF7 closes easily.
  const Link near{Position{100.0, 0.0}, Position{0.0, 0.0}, model, rng};
  EXPECT_EQ(near.min_spreading_factor(14.0), SpreadingFactor::kSF7);

  // 5 km, exponent 3.76: loss ~146.6 dB, rx ~-132.6 dBm -> needs SF8
  // (gateway sensitivity -132.5 just misses; SF8 is -132.5... compute).
  const Link far{Position{5000.0, 0.0}, Position{0.0, 0.0}, model, rng};
  const auto sf = far.min_spreading_factor(14.0);
  ASSERT_TRUE(sf.has_value());
  EXPECT_GT(sf_value(*sf), sf_value(SpreadingFactor::kSF7));
  // The chosen SF actually closes the link ...
  EXPECT_GE(far.rx_power_dbm(14.0), gateway_sensitivity_dbm(*sf));
  // ... and the next lower SF does not.
  if (*sf != SpreadingFactor::kSF7) {
    const auto lower = sf_from_value(sf_value(*sf) - 1);
    EXPECT_LT(far.rx_power_dbm(14.0), gateway_sensitivity_dbm(lower));
  }
}

TEST(Link, MinSfRespectsMargin) {
  PathLossModel model;
  Rng rng{1};
  const Link link{Position{4000.0, 0.0}, Position{0.0, 0.0}, model, rng};
  const auto no_margin = link.min_spreading_factor(14.0, 0.0);
  const auto with_margin = link.min_spreading_factor(14.0, 10.0);
  ASSERT_TRUE(no_margin.has_value());
  ASSERT_TRUE(with_margin.has_value());
  EXPECT_GE(sf_value(*with_margin), sf_value(*no_margin));
}

TEST(Link, ImpossibleLinkReturnsNullopt) {
  PathLossModel model;
  Rng rng{1};
  const Link link{Position{500000.0, 0.0}, Position{0.0, 0.0}, model, rng};  // 500 km
  EXPECT_FALSE(link.min_spreading_factor(14.0).has_value());
}

}  // namespace
}  // namespace blam
