// SweepRunner: the parallel grid must be indistinguishable — bit for bit —
// from the serial path, errors must propagate deterministically, and
// BLAM_JOBS=1 must degenerate to a plain loop on the calling thread.
#include "sim/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/experiment.hpp"

namespace blam {
namespace {

// RAII guard so BLAM_JOBS manipulation cannot leak into other tests.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_{name} {
    if (const char* v = std::getenv(name)) saved_ = v;
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(SweepRunnerTest, ResolveJobsPrefersExplicitThenEnvThenHardware) {
  const EnvGuard guard{"BLAM_JOBS"};
  ::setenv("BLAM_JOBS", "3", 1);
  EXPECT_EQ(resolve_jobs(), 3);
  EXPECT_EQ(resolve_jobs(7), 7);  // explicit beats the environment

  ::setenv("BLAM_JOBS", "not-a-number", 1);
  EXPECT_GE(resolve_jobs(), 1);  // malformed falls through to hardware
  ::setenv("BLAM_JOBS", "0", 1);
  EXPECT_GE(resolve_jobs(), 1);  // non-positive falls through too
  ::unsetenv("BLAM_JOBS");
  EXPECT_GE(resolve_jobs(), 1);
}

TEST(SweepRunnerTest, MapPreservesSubmissionOrder) {
  SweepOptions options;
  options.jobs = 8;
  SweepRunner runner{options};
  const std::vector<std::size_t> out =
      runner.map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  EXPECT_EQ(runner.cell_seconds().size(), 100u);
}

TEST(SweepRunnerTest, SingleJobDegeneratesToSerialPathOnCallingThread) {
  SweepOptions options;
  options.jobs = 1;
  SweepRunner runner{options};
  EXPECT_EQ(runner.jobs(), 1);

  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;  // unsynchronized on purpose: serial path
  runner.run_indexed(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(SweepRunnerTest, ExceptionFromFailingCellPropagates) {
  SweepOptions options;
  options.jobs = 4;
  SweepRunner runner{options};
  EXPECT_THROW(
      {
        runner.run_indexed(8, [](std::size_t i) {
          if (i == 3) throw std::runtime_error{"cell 3 failed"};
        });
      },
      std::runtime_error);

  try {
    runner.run_indexed(8, [](std::size_t i) {
      if (i == 3) throw std::runtime_error{"cell 3 failed"};
    });
    FAIL() << "expected the cell exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 3 failed");
  }
}

TEST(SweepRunnerTest, LowestIndexFailureWinsWhenSeveralCellsThrow) {
  SweepOptions options;
  options.jobs = 4;
  SweepRunner runner{options};
  // Cells 0..3 are dequeued together; 1 and 2 both throw. Whatever order the
  // workers fail in, the reported error must be cell 1's.
  try {
    runner.run_indexed(4, [](std::size_t i) {
      if (i == 1 || i == 2) throw std::runtime_error{"cell " + std::to_string(i)};
    });
    FAIL() << "expected a cell exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 1");
  }
}

TEST(SweepRunnerTest, SerialSemanticsSkipCellsAfterFailure) {
  SweepOptions options;
  options.jobs = 1;
  SweepRunner runner{options};
  std::vector<std::size_t> ran;
  EXPECT_THROW(runner.run_indexed(8,
                                  [&](std::size_t i) {
                                    ran.push_back(i);
                                    if (i == 2) throw std::runtime_error{"boom"};
                                  }),
               std::runtime_error);
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SweepRunnerTest, EmptyGridIsANoOp) {
  SweepRunner runner;
  std::atomic<int> calls{0};
  runner.run_indexed(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(runner.cell_seconds().empty());
}

// --- Scenario-grid determinism ---------------------------------------------

[[nodiscard]] std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bit_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(bits(a.summary.mean_prr), bits(b.summary.mean_prr));
  EXPECT_EQ(bits(a.summary.min_prr), bits(b.summary.min_prr));
  EXPECT_EQ(bits(a.summary.mean_utility), bits(b.summary.mean_utility));
  EXPECT_EQ(bits(a.summary.mean_retx), bits(b.summary.mean_retx));
  EXPECT_EQ(bits(a.summary.mean_latency_s), bits(b.summary.mean_latency_s));
  EXPECT_EQ(bits(a.summary.total_tx_energy.joules()), bits(b.summary.total_tx_energy.joules()));
  EXPECT_EQ(bits(a.summary.degradation_box.mean), bits(b.summary.degradation_box.mean));
  EXPECT_EQ(bits(a.summary.max_degradation), bits(b.summary.max_degradation));
  EXPECT_EQ(a.window_histogram, b.window_histogram);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].generated, b.nodes[i].generated);
    EXPECT_EQ(a.nodes[i].delivered, b.nodes[i].delivered);
    EXPECT_EQ(a.nodes[i].tx_attempts, b.nodes[i].tx_attempts);
    EXPECT_EQ(a.nodes[i].retx, b.nodes[i].retx);
    EXPECT_EQ(bits(a.nodes[i].tx_energy.joules()), bits(b.nodes[i].tx_energy.joules()));
    EXPECT_EQ(bits(a.nodes[i].degradation), bits(b.nodes[i].degradation));
    EXPECT_EQ(a.nodes[i].window_counts, b.nodes[i].window_counts);
  }
}

// Small but real 3-protocol x 4-seed grid, per-seed shared weather — the
// shape every figure binary sweeps.
[[nodiscard]] std::vector<ScenarioCell> protocol_seed_grid() {
  std::vector<ScenarioCell> cells;
  for (std::uint64_t seed : {11, 12, 13, 14}) {
    const auto trace = build_shared_trace(lorawan_scenario(6, seed));
    cells.push_back({lorawan_scenario(6, seed), trace});
    cells.push_back({blam_scenario(6, 0.5, seed), trace});
    cells.push_back({greedy_green_scenario(6, seed), trace});
  }
  return cells;
}

TEST(SweepRunnerTest, ParallelGridMatchesSerialBitForBit) {
  const std::vector<ScenarioCell> cells = protocol_seed_grid();
  const Time duration = Time::from_days(5.0);

  // Serial reference: the plain loop the figure binaries used to run.
  std::vector<ExperimentResult> reference;
  reference.reserve(cells.size());
  for (const ScenarioCell& cell : cells) {
    reference.push_back(run_scenario(cell.config, duration, cell.trace));
  }

  for (int jobs : {1, 4}) {
    SweepOptions options;
    options.jobs = jobs;
    const std::vector<ExperimentResult> swept = run_scenarios(cells, duration, options);
    ASSERT_EQ(swept.size(), reference.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < swept.size(); ++i) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) + " cell=" + std::to_string(i));
      expect_bit_identical(reference[i], swept[i]);
    }
  }
}

TEST(SweepRunnerTest, ParallelLifespanGridMatchesSerial) {
  std::vector<ScenarioCell> cells;
  const auto trace = build_shared_trace(lorawan_scenario(4, 21));
  cells.push_back({lorawan_scenario(4, 21), trace});
  cells.push_back({blam_scenario(4, 0.5, 21), trace});

  const Time max_duration = Time::from_days(20.0);
  const Time step = Time::from_days(5.0);
  std::vector<LifespanResult> reference;
  for (const ScenarioCell& cell : cells) {
    reference.push_back(run_until_eol(cell.config, max_duration, step, cell.trace));
  }

  SweepOptions options;
  options.jobs = 2;
  const std::vector<LifespanResult> swept = run_lifespans(cells, max_duration, step, options);
  ASSERT_EQ(swept.size(), reference.size());
  for (std::size_t i = 0; i < swept.size(); ++i) {
    EXPECT_EQ(swept[i].label, reference[i].label);
    EXPECT_EQ(swept[i].reached_eol, reference[i].reached_eol);
    EXPECT_EQ(bits(swept[i].lifespan.seconds()), bits(reference[i].lifespan.seconds()));
    ASSERT_EQ(swept[i].max_degradation_series.size(), reference[i].max_degradation_series.size());
    for (std::size_t k = 0; k < swept[i].max_degradation_series.size(); ++k) {
      EXPECT_EQ(bits(swept[i].max_degradation_series[k]),
                bits(reference[i].max_degradation_series[k]));
    }
  }
}

// --- Campaign integration: codec exactness + resume bit-identity -----------

TEST(SweepRunnerTest, LifespanCodecRoundTripsBitForBit) {
  LifespanResult result;
  result.label = "H-50 with spaces, commas, and a # mark";
  result.lifespan = Time::from_days(1234.5);
  result.reached_eol = true;
  result.series_step = Time::from_days(30.44);
  result.max_degradation_series = {0.0, 0.1 + 0.2, -0.0, 1e-308, 0.19999999999999998};

  const LifespanResult back = deserialize_lifespan_result(serialize_lifespan_result(result));
  EXPECT_EQ(back.label, result.label);
  EXPECT_EQ(back.lifespan.us(), result.lifespan.us());
  EXPECT_EQ(back.reached_eol, result.reached_eol);
  EXPECT_EQ(back.series_step.us(), result.series_step.us());
  ASSERT_EQ(back.max_degradation_series.size(), result.max_degradation_series.size());
  for (std::size_t i = 0; i < back.max_degradation_series.size(); ++i) {
    EXPECT_EQ(bits(back.max_degradation_series[i]), bits(result.max_degradation_series[i]));
  }

  EXPECT_THROW(deserialize_lifespan_result("not a payload"), std::runtime_error);
  EXPECT_THROW(deserialize_lifespan_result("L1 1 5 5 2 0000000000000000"),
               std::runtime_error);  // truncated word list
}

TEST(SweepRunnerTest, ResumedLifespanGridIsBitIdenticalAtAnyJobCount) {
  namespace fs = std::filesystem;
  const std::string journal =
      (fs::temp_directory_path() /
       ("blam_test_resume." + std::to_string(::getpid()) + ".journal"))
          .string();
  fs::remove(journal);

  std::vector<ScenarioCell> cells;
  const auto trace = build_shared_trace(lorawan_scenario(4, 21));
  cells.push_back({lorawan_scenario(4, 21), trace});
  cells.push_back({blam_scenario(4, 0.5, 21), trace});
  cells.push_back({blam_scenario(4, 1.0, 21), trace});
  const Time max_duration = Time::from_days(20.0);
  const Time step = Time::from_days(5.0);

  // Reference: the whole grid in one uninterrupted campaign.
  CampaignOptions options;
  options.sweep.jobs = 1;
  options.quarantine_path.clear();
  options.journal_path = journal;
  const std::vector<LifespanResult> reference =
      run_lifespans(cells, max_duration, step, options);
  ASSERT_TRUE(fs::exists(journal));

  // Simulate a kill after two cells: keep the first two journal lines only.
  std::vector<std::string> lines;
  {
    std::ifstream in{journal};
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);

  for (int jobs : {1, 4}) {
    {
      std::ofstream out{journal, std::ios::trunc};
      out << lines[0] << "\n" << lines[1] << "\n";
    }
    CampaignOptions resume = options;
    resume.sweep.jobs = jobs;
    const std::vector<LifespanResult> resumed =
        run_lifespans(cells, max_duration, step, resume);
    ASSERT_EQ(resumed.size(), reference.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < resumed.size(); ++i) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) + " cell=" + std::to_string(i));
      EXPECT_EQ(resumed[i].label, reference[i].label);
      EXPECT_EQ(resumed[i].reached_eol, reference[i].reached_eol);
      EXPECT_EQ(resumed[i].lifespan.us(), reference[i].lifespan.us());
      EXPECT_EQ(resumed[i].series_step.us(), reference[i].series_step.us());
      ASSERT_EQ(resumed[i].max_degradation_series.size(),
                reference[i].max_degradation_series.size());
      for (std::size_t k = 0; k < resumed[i].max_degradation_series.size(); ++k) {
        EXPECT_EQ(bits(resumed[i].max_degradation_series[k]),
                  bits(reference[i].max_degradation_series[k]));
      }
    }
  }
  fs::remove(journal);
}

TEST(SweepRunnerTest, ScenarioCampaignRejectsJournalButRunsOtherwise) {
  std::vector<ScenarioCell> cells;
  cells.push_back({lorawan_scenario(4, 21), nullptr});
  const Time duration = Time::from_days(2.0);

  CampaignOptions with_journal;
  with_journal.journal_path = "anywhere.journal";
  EXPECT_THROW((void)run_scenarios(cells, duration, with_journal), std::invalid_argument);

  CampaignOptions options;
  options.sweep.jobs = 1;
  options.quarantine_path.clear();
  const std::vector<ExperimentResult> campaign = run_scenarios(cells, duration, options);
  const ExperimentResult plain = run_scenario(cells[0].config, duration, cells[0].trace);
  ASSERT_EQ(campaign.size(), 1u);
  expect_bit_identical(plain, campaign[0]);
}

TEST(SweepRunnerTest, CancellableRunScenarioIsBitIdenticalToUncancelled) {
  const ScenarioConfig config = blam_scenario(4, 0.5, 33);
  const Time duration = Time::from_days(3.0);
  const ExperimentResult plain = run_scenario(config, duration);
  const CellToken token;  // never cancelled: slicing must not change anything
  const ExperimentResult sliced = run_scenario(config, duration, nullptr, &token);
  expect_bit_identical(plain, sliced);
}

}  // namespace
}  // namespace blam
