// Traffic-mode extensions: unconfirmed (fire-and-forget) uplinks, sampling
// jitter, and battery self-discharge.
#include <gtest/gtest.h>

#include "net/experiment.hpp"
#include "net/network.hpp"

namespace blam {
namespace {

TEST(UnconfirmedTraffic, NoAcksNoRetransmissions) {
  ScenarioConfig c = lorawan_scenario(20, 41);
  c.confirmed = false;
  const ExperimentResult r = run_scenario(c, Time::from_days(2.0));
  EXPECT_EQ(r.gateway.acks_sent, 0u);
  EXPECT_DOUBLE_EQ(r.summary.mean_retx, 0.0);
  // Single-shot: synchronized-deployment collisions are unrecoverable, so
  // PRR sits below the confirmed mode's but well above collapse.
  EXPECT_GT(r.summary.mean_prr, 0.7);
  // Fire-and-forget latency is just the airtime.
  EXPECT_LT(r.summary.mean_delivered_latency_s, 1.0);
}

TEST(UnconfirmedTraffic, AccountingStillBalances) {
  ScenarioConfig c = lorawan_scenario(30, 42);
  c.confirmed = false;
  const ExperimentResult r = run_scenario(c, Time::from_days(2.0));
  for (const NodeMetrics& m : r.nodes) {
    const std::uint64_t resolved = m.delivered + m.exhausted + m.policy_drops + m.brownouts;
    EXPECT_GE(m.generated, resolved);
    EXPECT_LE(m.generated - resolved, 1u);
  }
}

TEST(UnconfirmedTraffic, CheaperPerPacketThanConfirmed) {
  // No RX windows and no retransmissions: TX+listen energy per delivered
  // packet drops.
  ScenarioConfig confirmed = lorawan_scenario(20, 43);
  ScenarioConfig unconfirmed = confirmed;
  unconfirmed.confirmed = false;
  const auto trace = build_shared_trace(confirmed);
  const ExperimentResult a = run_scenario(confirmed, Time::from_days(2.0), trace);
  const ExperimentResult b = run_scenario(unconfirmed, Time::from_days(2.0), trace);
  EXPECT_LT(b.summary.total_tx_energy.joules(), a.summary.total_tx_energy.joules());
}

TEST(UnconfirmedTraffic, BlamFallsBackToThetaOnly) {
  // Without a downlink there is no w_u dissemination: the proposed MAC
  // still respects theta but stays at w_u = 0 (utility-first).
  ScenarioConfig c = blam_scenario(10, 0.5, 44);
  c.confirmed = false;
  Network network{c};
  network.run_until(Time::from_days(3.0));
  for (const auto& node : network.nodes()) {
    EXPECT_DOUBLE_EQ(node->w_u(), 0.0);
    EXPECT_LE(node->battery().soc(), 0.5 + 1e-9);
  }
}

TEST(PeriodJitter, ValidatedAndChangesCollisions) {
  ScenarioConfig c = lorawan_scenario(10, 45);
  c.period_jitter = 0.6;
  EXPECT_THROW(Network{c}, std::invalid_argument);

  // Jitter decorrelates the synchronized deployment: with identical
  // periods, window-0 pileups soften.
  ScenarioConfig rigid = lorawan_scenario(60, 45);
  rigid.min_period = Time::from_minutes(16.0);
  rigid.max_period = Time::from_minutes(16.0);
  rigid.uplink_channels = 2;
  ScenarioConfig jittered = rigid;
  jittered.period_jitter = 0.2;
  const auto trace = build_shared_trace(rigid);
  const ExperimentResult a = run_scenario(rigid, Time::from_days(2.0), trace);
  const ExperimentResult b = run_scenario(jittered, Time::from_days(2.0), trace);
  EXPECT_LT(b.summary.mean_retx, a.summary.mean_retx);
}

TEST(PeriodJitter, PacketCountsStayInBand) {
  ScenarioConfig c = lorawan_scenario(5, 46);
  c.min_period = Time::from_minutes(20.0);
  c.max_period = Time::from_minutes(20.0);
  c.period_jitter = 0.3;
  const ExperimentResult r = run_scenario(c, Time::from_days(2.0));
  for (const NodeMetrics& m : r.nodes) {
    // 2 days / 20 min = 144 nominal packets; jitter is zero-mean.
    EXPECT_GT(m.generated, 110u);
    EXPECT_LT(m.generated, 180u);
  }
}

TEST(SelfDischarge, DrainsIdleBattery) {
  // Disable harvesting at night is automatic; to isolate self-discharge,
  // compare the same network with and without it over winter nights.
  ScenarioConfig base = lorawan_scenario(8, 47);
  ScenarioConfig leaky = base;
  leaky.battery_self_discharge_per_month = 0.5;  // exaggerated for the test
  const auto trace = build_shared_trace(base);

  Network a{base, trace};
  Network b{leaky, trace};
  a.run_until(Time::from_days(7.0));
  b.run_until(Time::from_days(7.0));
  double soc_a = 0.0;
  double soc_b = 0.0;
  for (const auto& node : a.nodes()) soc_a += node->battery().soc();
  for (const auto& node : b.nodes()) soc_b += node->battery().soc();
  EXPECT_LT(soc_b, soc_a);
}

TEST(SelfDischarge, Validated) {
  ScenarioConfig c = lorawan_scenario(5, 48);
  c.battery_self_discharge_per_month = 1.0;
  EXPECT_THROW(Network{c}, std::invalid_argument);
}

}  // namespace
}  // namespace blam
