// Atomic CSV emission: temp-file staging, flush()-as-commit, and the
// forgotten-flush safety net.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "common/csv.hpp"

namespace blam {
namespace {

namespace fs = std::filesystem;

class ScratchCsv {
 public:
  explicit ScratchCsv(const std::string& stem)
      : path_{(fs::temp_directory_path() /
               (stem + "." + std::to_string(::getpid()) + ".csv"))
                  .string()} {
    fs::remove(path_);
    fs::remove(path_ + ".tmp");
  }
  ~ScratchCsv() {
    fs::remove(path_);
    fs::remove(path_ + ".tmp");
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

TEST(CsvWriterTest, FinalFileAppearsOnlyAtFlush) {
  ScratchCsv scratch{"blam_test_csv_atomic"};
  CsvWriter writer{scratch.path(), {"a", "b"}};
  writer.row({"1", "2"});
  // Mid-write: only the staging file exists.
  EXPECT_FALSE(fs::exists(scratch.path()));
  EXPECT_TRUE(fs::exists(scratch.path() + ".tmp"));
  EXPECT_FALSE(writer.committed());

  writer.flush();
  EXPECT_TRUE(writer.committed());
  EXPECT_TRUE(fs::exists(scratch.path()));
  EXPECT_FALSE(fs::exists(scratch.path() + ".tmp"));
  EXPECT_EQ(slurp(scratch.path()), "a,b\n1,2\n");

  writer.flush();  // idempotent
  EXPECT_EQ(slurp(scratch.path()), "a,b\n1,2\n");
}

TEST(CsvWriterTest, RowAfterFlushThrows) {
  ScratchCsv scratch{"blam_test_csv_sealed"};
  CsvWriter writer{scratch.path(), {"a"}};
  writer.flush();
  EXPECT_THROW(writer.row({"1"}), std::logic_error);
}

TEST(CsvWriterTest, RowWidthMustMatchHeader) {
  ScratchCsv scratch{"blam_test_csv_width"};
  CsvWriter writer{scratch.path(), {"a", "b"}};
  EXPECT_THROW(writer.row({"only-one"}), std::invalid_argument);
  writer.row({"1", "2"});
  writer.flush();
}

TEST(CsvWriterTest, ExceptionUnwindLeavesNoPartialFile) {
  ScratchCsv scratch{"blam_test_csv_unwind"};
  try {
    CsvWriter writer{scratch.path(), {"a"}};
    writer.row({"1"});
    throw std::runtime_error{"producer failed mid-figure"};
  } catch (const std::runtime_error&) {
  }
  // No truncated CSV where a complete one is expected, and no debris.
  EXPECT_FALSE(fs::exists(scratch.path()));
  EXPECT_FALSE(fs::exists(scratch.path() + ".tmp"));
}

TEST(CsvWriterTest, QuotingFollowsRfc4180) {
  ScratchCsv scratch{"blam_test_csv_quote"};
  CsvWriter writer{scratch.path(), {"x"}};
  writer.row({CsvWriter::cell(std::string_view{"hello, \"world\"\nbye"})});
  writer.flush();
  EXPECT_EQ(slurp(scratch.path()), "x\n\"hello, \"\"world\"\"\nbye\"\n");
}

TEST(CsvWriterTest, DoubleCellsRoundTrip) {
  EXPECT_EQ(CsvWriter::cell(static_cast<std::int64_t>(-42)), "-42");
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(CsvWriter::cell(v)), v);
}

#ifdef NDEBUG
// The destructor-without-flush path aborts in debug builds (assert), so the
// release-only test documents the salvage behavior: warn, drop the temp
// file, leave no final file.
TEST(CsvWriterTest, DestructorWithoutFlushLeavesNoFinalFile) {
  ScratchCsv scratch{"blam_test_csv_noflush"};
  {
    CsvWriter writer{scratch.path(), {"a"}};
    writer.row({"1"});
  }  // destroyed uncommitted: stderr warning, temp removed
  EXPECT_FALSE(fs::exists(scratch.path()));
  EXPECT_FALSE(fs::exists(scratch.path() + ".tmp"));
}
#endif

}  // namespace
}  // namespace blam
