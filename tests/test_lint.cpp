// Tests for blam-lint — tokenizer behaviour, each rule's true positives and the
// strings/comments that must NOT match, and the suppression engine. These
// fixtures are also the CI demonstration that a seeded violation fails the
// lint gate (lint_source returns an unsuppressed finding => blam-lint exits
// nonzero).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "blam-lint/lint.hpp"

namespace blam::lint {
namespace {

[[nodiscard]] std::vector<Finding> active(const std::string& path, std::string_view src) {
  std::vector<Finding> out;
  for (auto& f : lint_source(path, src)) {
    if (!f.suppressed) out.push_back(std::move(f));
  }
  return out;
}

[[nodiscard]] int count_rule(const std::vector<Finding>& findings, std::string_view rule) {
  return static_cast<int>(std::count_if(findings.begin(), findings.end(),
                                        [rule](const Finding& f) { return f.rule == rule; }));
}

// --- Tokenizer -------------------------------------------------------------

TEST(LintTokenizer, StringAndCommentContentsProduceNoIdentifiers) {
  const auto ts = tokenize(
      "// mt19937 in a comment\n"
      "/* rand() in a block */\n"
      "const char* s = \"std::mt19937 rand()\";\n");
  for (const Token& t : ts.tokens) {
    EXPECT_NE(t.text, "mt19937") << "line " << t.line;
    EXPECT_NE(t.text, "rand") << "line " << t.line;
  }
  EXPECT_EQ(ts.comments.size(), 2u);
}

TEST(LintTokenizer, RawStringsAreSingleTokens) {
  const auto ts = tokenize("auto s = R\"(std::unordered_map rand() \" )\";\nint after = 1;");
  ASSERT_FALSE(ts.tokens.empty());
  for (const Token& t : ts.tokens) EXPECT_NE(t.text, "unordered_map");
  // The token after the raw string is still seen (the delimiter scan ended).
  EXPECT_TRUE(std::any_of(ts.tokens.begin(), ts.tokens.end(),
                          [](const Token& t) { return t.text == "after"; }));
}

TEST(LintTokenizer, DigitSeparatorsDoNotOpenCharLiterals) {
  // If 1'000'000 opened a char literal, `rand` would be swallowed.
  const auto findings = active("src/x.cpp", "int big = 1'000'000; int r = rand();");
  EXPECT_EQ(count_rule(findings, "D1"), 1);
}

TEST(LintTokenizer, PreprocessorDirectivesAreSkipped) {
  const auto ts = tokenize(
      "#include <unordered_map>\n"
      "#define BAD rand() \\\n"
      "            mt19937\n"
      "int live = 1;\n");
  for (const Token& t : ts.tokens) {
    EXPECT_NE(t.text, "unordered_map");
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "mt19937");
  }
  EXPECT_TRUE(std::any_of(ts.tokens.begin(), ts.tokens.end(),
                          [](const Token& t) { return t.text == "live"; }));
}

TEST(LintTokenizer, ScopeResolutionIsOneToken) {
  const auto ts = tokenize("std::function<void()> f; for (auto x : xs) {}");
  EXPECT_TRUE(std::any_of(ts.tokens.begin(), ts.tokens.end(),
                          [](const Token& t) { return t.text == "::"; }));
  // The range-for colon stays a lone ':'.
  EXPECT_TRUE(std::any_of(ts.tokens.begin(), ts.tokens.end(), [](const Token& t) {
    return t.kind == TokKind::kPunct && t.text == ":";
  }));
}

// --- D1: nondeterminism APIs ----------------------------------------------

TEST(LintD1, FlagsEnginesEntropyAndWallClock) {
  const auto findings = active("src/x.cpp",
                               "std::mt19937 gen(std::random_device{}());\n"
                               "auto t = std::chrono::system_clock::now();\n");
  EXPECT_EQ(count_rule(findings, "D1"), 3);  // mt19937, random_device, system_clock
}

TEST(LintD1, FlagsRandSrandAndTimeSeeds) {
  const auto findings = active("src/x.cpp",
                               "srand(time(nullptr));\n"
                               "int a = rand();\n"
                               "long b = time(0);\n");
  EXPECT_EQ(count_rule(findings, "D1"), 4);  // srand, time(nullptr), rand, time(0)
}

TEST(LintD1, PlainTimeCallAndSteadyClockAreAllowed) {
  const auto findings = active("src/x.cpp",
                               "auto wall = std::chrono::steady_clock::now();\n"
                               "double t = time(sim);\n"  // not a wall-clock seed
                               "int rand = 3; use(rand);\n");  // a name, not a call
  EXPECT_TRUE(findings.empty());
}

TEST(LintD1, RngAuthorityFilesAreExempt) {
  const std::string src = "std::mt19937 reference_engine; int r = rand();";
  EXPECT_TRUE(active("src/common/rng.cpp", src).empty());
  EXPECT_EQ(count_rule(active("src/common/stats.cpp", src), "D1"), 2);
}

// --- D2: unordered containers ---------------------------------------------

TEST(LintD2, FlagsUnorderedDeclarationAsLatentHazard) {
  const auto findings =
      active("src/core/x.hpp", "std::unordered_map<int, double> totals_;");
  EXPECT_EQ(count_rule(findings, "D2"), 1);
}

TEST(LintD2, FlagsRangeForOverUnorderedName) {
  const auto findings = active("src/core/x.cpp",
                               "std::unordered_map<int, double> totals;\n"
                               "void dump() { for (const auto& [k, v] : totals) emit(k, v); }\n");
  EXPECT_EQ(count_rule(findings, "D2"), 2);  // declaration + iteration
}

TEST(LintD2, SortedContainersAndTestFilesAreExempt) {
  EXPECT_TRUE(active("src/core/x.cpp", "std::map<int, double> totals;").empty());
  EXPECT_TRUE(
      active("tests/test_x.cpp", "std::unordered_map<int, int> fixture;").empty());
}

// --- U1: unit-suffixed raw doubles in public headers ----------------------

TEST(LintU1, FlagsRawDoubleTimeParameterInHeader) {
  const auto findings = active("src/net/x.hpp", "void wait(double timeout_s);");
  ASSERT_EQ(count_rule(findings, "U1"), 1);
  EXPECT_NE(findings[0].message.find("blam::Time"), std::string::npos);
}

TEST(LintU1, MapsEachSuffixToItsStrongType) {
  const auto findings = active(
      "src/net/x.hpp", "void f(double budget_j, float draw_w = 1.0, double initial_soc);");
  EXPECT_EQ(count_rule(findings, "U1"), 3);
}

TEST(LintU1, IgnoresFieldsImplementationFilesAndUnsuffixedParams) {
  // Struct fields are CSV staging rows, not API boundaries.
  EXPECT_TRUE(active("src/net/x.hpp", "struct Row { double mean_latency_s{0.0}; };").empty());
  // Implementation files may carry raw doubles internally.
  EXPECT_TRUE(active("src/net/x.cpp", "void wait(double timeout_s);").empty());
  // Unsuffixed names and non-src headers are out of scope.
  EXPECT_TRUE(active("src/net/x.hpp", "void f(double ratio, double snr_db);").empty());
  EXPECT_TRUE(active("bench/x.hpp", "void wait(double timeout_s);").empty());
}

// --- H1: hot-path allocation guards ---------------------------------------

TEST(LintH1, FlagsStdFunctionAndNodeContainersInHotPath) {
  const auto findings = active("src/sim/simulator.hpp",
                               "std::function<void()> cb;\n"
                               "std::map<int, int> lookup;\n"
                               "std::deque<int> fifo;\n");
  EXPECT_EQ(count_rule(findings, "H1"), 3);
}

TEST(LintH1, FlagsPlainNewAndDelete) {
  const auto findings = active("src/sim/event_queue.cpp",
                               "int* p = new int[4];\n"
                               "delete p;\n");
  EXPECT_EQ(count_rule(findings, "H1"), 2);
}

TEST(LintH1, PlacementNewDeletedFunctionsAndVectorAreAllowed) {
  const auto findings = active("src/sim/inline_callback.hpp",
                               "::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));\n"
                               "InlineCallback(const InlineCallback&) = delete;\n"
                               "std::vector<Slot> slots_;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintH1, NonHotPathSimFilesAreExempt) {
  // sweep_runner/campaign are per-cell orchestration, not per-event code.
  EXPECT_TRUE(active("src/sim/sweep_runner.hpp", "std::function<void()> body;").empty());
}

TEST(LintH1, Pr7IngestFilesAreHotPath) {
  // The million-node ingest path (PR 7) is under the same allocation guards
  // as the event loop.
  EXPECT_EQ(count_rule(active("src/core/span_arena.hpp", "int* p = new int[4];"), "H1"), 1);
  EXPECT_EQ(count_rule(active("src/core/ledger_store.hpp", "std::map<int, int> m;"), "H1"), 1);
  EXPECT_EQ(count_rule(active("src/core/ledger_store.cpp", "std::function<void()> f;"), "H1"), 1);
  EXPECT_EQ(
      count_rule(active("src/core/soc_ingest_queue.hpp", "std::shared_ptr<int> sp;"), "H1"), 1);
  // The service itself stays per-report policy code, not per-sample inner
  // loops; it is deliberately not listed.
  EXPECT_TRUE(active("src/core/degradation_service.cpp", "std::function<void()> f;").empty());
}

TEST(LintH1, ShardEngineUsesNarrowerBannedSet) {
  // The PR-8 shard engine keeps the per-event bans (std::function, node
  // containers, plain new/delete) but may own its shards through smart
  // pointers — construction happens once per run, not per event.
  EXPECT_EQ(count_rule(active("src/sim/shard_engine.cpp", "std::function<void()> f;"), "H1"), 1);
  EXPECT_EQ(count_rule(active("src/sim/shard_engine.hpp", "std::map<int, int> m;"), "H1"), 1);
  EXPECT_EQ(count_rule(active("src/sim/shard_engine.cpp", "int* p = new int[4];"), "H1"), 1);
  EXPECT_TRUE(active("src/sim/shard_engine.cpp",
                     "auto s = std::make_unique<int>(1);\n"
                     "std::shared_ptr<int> t = std::make_shared<int>(2);\n")
                  .empty());
}

// --- C1: CsvWriter must flush ---------------------------------------------

TEST(LintC1, FlagsWriterThatNeverFlushes) {
  const auto findings = active("bench/fig_x.cpp",
                               "CsvWriter csv{path, header};\n"
                               "for (auto& r : rows) csv.row(r);\n");
  ASSERT_EQ(count_rule(findings, "C1"), 1);
  EXPECT_NE(findings[0].message.find("csv"), std::string::npos);
}

TEST(LintC1, FlushedWriterAndNonConstructionUsesAreClean) {
  EXPECT_TRUE(active("bench/fig_x.cpp",
                     "CsvWriter csv{path, header};\n"
                     "csv.row(r);\n"
                     "csv.flush();\n")
                  .empty());
  // Member definitions and class declarations are not constructions.
  EXPECT_TRUE(active("src/common/csv.cpp", "CsvWriter::CsvWriter(...) {}").empty());
  EXPECT_TRUE(active("src/common/csv.hpp", "class CsvWriter { CsvWriter(); };").empty());
}

// --- Suppressions ----------------------------------------------------------

TEST(LintSuppression, TrailingCommentCoversItsLineAndRecordsReason) {
  const auto all = lint_source(
      "src/x.cpp", "int r = rand();  // blam-lint: allow(D1) -- fixture for the suppression test\n");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].suppressed);
  EXPECT_EQ(all[0].suppress_reason, "fixture for the suppression test");
  EXPECT_TRUE(active("src/x.cpp", "int r = rand();  // blam-lint: allow(D1) -- fixture\n").empty());
}

TEST(LintSuppression, OwnLineCommentCoversTheNextLine) {
  EXPECT_TRUE(active("src/x.cpp",
                     "// blam-lint: allow(D1) -- fixture\n"
                     "int r = rand();\n")
                  .empty());
  // ... but not the line after that.
  const auto findings = active("src/x.cpp",
                               "// blam-lint: allow(D1) -- fixture\n"
                               "int a = 0;\n"
                               "int r = rand();\n");
  EXPECT_EQ(count_rule(findings, "D1"), 1);
}

TEST(LintSuppression, DoesNotCoverOtherRules) {
  const auto findings = active("src/x.cpp",
                               "// blam-lint: allow(D2) -- wrong rule on purpose\n"
                               "int r = rand();\n");
  EXPECT_EQ(count_rule(findings, "D1"), 1);
}

TEST(LintSuppression, CommaListCoversSeveralRules) {
  EXPECT_TRUE(active("src/sim/simulator.hpp",
                     "// blam-lint: allow(D1, H1) -- fixture\n"
                     "std::function<int()> f = [] { return rand(); };\n")
                  .empty());
}

TEST(LintSuppression, MissingReasonIsItselfAFinding) {
  const auto findings = active("src/x.cpp",
                               "// blam-lint: allow(D1)\n"
                               "int r = rand();\n");
  EXPECT_EQ(count_rule(findings, "S1"), 1);
  // The malformed suppression still suppresses nothing.
  EXPECT_EQ(count_rule(findings, "D1"), 1);
}

TEST(LintSuppression, UnknownRuleAndMalformedMarkerAreFindings) {
  EXPECT_EQ(count_rule(active("src/x.cpp", "// blam-lint: allow(Z9) -- no such rule\n"), "S1"), 1);
  EXPECT_EQ(count_rule(active("src/x.cpp", "// blam-lint: please ignore this\n"), "S1"), 1);
}

// --- End-to-end: the CI gate -----------------------------------------------

TEST(LintGate, SeededViolationProducesUnsuppressedFinding) {
  // This mirrors the CI lint leg: introducing a banned API anywhere in the
  // tree yields an active finding, and blam-lint's exit status turns red.
  const std::string seeded =
      "#include <random>\n"
      "double jitter() { static std::mt19937 g; return g() * 1e-9; }\n";
  const auto findings = active("src/net/gateway.cpp", seeded);
  ASSERT_EQ(count_rule(findings, "D1"), 1);
  EXPECT_FALSE(findings[0].suppressed);
}

TEST(LintGate, JsonOutputCarriesAllFields) {
  const auto findings = lint_source("src/x.cpp", "int r = rand();");
  const std::string json = to_json(findings);
  EXPECT_NE(json.find("\"rule\":\"D1\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"src/x.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\":false"), std::string::npos);
}

TEST(LintGate, RuleRegistryListsAllRules) {
  const auto& infos = rule_infos();
  ASSERT_EQ(infos.size(), 6u);
  for (const char* id : {"D1", "D2", "U1", "H1", "C1", "S1"}) {
    EXPECT_TRUE(std::any_of(infos.begin(), infos.end(),
                            [id](const RuleInfo& r) { return r.id == id; }))
        << id;
  }
}

}  // namespace
}  // namespace blam::lint
