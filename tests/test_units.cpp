#include "common/units.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

TEST(Time, ConversionsRoundTrip) {
  EXPECT_EQ(Time::from_seconds(1.0).us(), 1'000'000);
  EXPECT_EQ(Time::from_ms(5).us(), 5'000);
  EXPECT_EQ(Time::from_minutes(1.0).us(), 60'000'000);
  EXPECT_DOUBLE_EQ(Time::from_hours(2.0).hours(), 2.0);
  EXPECT_DOUBLE_EQ(Time::from_days(3.0).days(), 3.0);
}

TEST(Time, Arithmetic) {
  const Time a = Time::from_seconds(10.0);
  const Time b = Time::from_seconds(4.0);
  EXPECT_EQ((a + b).seconds(), 14.0);
  EXPECT_EQ((a - b).seconds(), 6.0);
  EXPECT_EQ((a * 3).seconds(), 30.0);
  EXPECT_EQ(a / b, 2);  // integer division
  EXPECT_EQ((a % b).seconds(), 2.0);
}

TEST(Time, FractionalScaling) {
  const Time a = Time::from_seconds(10.0);
  EXPECT_NEAR((a * 0.25).seconds(), 2.5, 1e-9);
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::from_ms(1), Time::from_ms(2));
  EXPECT_EQ(Time::from_seconds(1.0), Time::from_ms(1000));
  EXPECT_GT(Time::max(), Time::from_days(100000.0));
}

TEST(Time, CompoundAssignment) {
  Time t = Time::from_seconds(1.0);
  t += Time::from_seconds(2.0);
  EXPECT_EQ(t.seconds(), 3.0);
  t -= Time::from_seconds(0.5);
  EXPECT_EQ(t.seconds(), 2.5);
}

TEST(Energy, BasicArithmetic) {
  const Energy a = Energy::from_joules(2.0);
  const Energy b = Energy::from_milli_joules(500.0);
  EXPECT_DOUBLE_EQ((a + b).joules(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).joules(), 1.5);
  EXPECT_DOUBLE_EQ((a * 2.0).joules(), 4.0);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(Energy, FromMahMatchesPhysics) {
  // 1000 mAh at 3.7 V = 1 Ah * 3600 s * 3.7 V = 13320 J.
  EXPECT_DOUBLE_EQ(Energy::from_mah(1000.0, 3.7).joules(), 13320.0);
}

TEST(Power, TimesTimeGivesEnergy) {
  const Energy e = Power::from_milli_watts(100.0) * Time::from_seconds(10.0);
  EXPECT_DOUBLE_EQ(e.joules(), 1.0);
  EXPECT_DOUBLE_EQ((Time::from_seconds(10.0) * Power::from_milli_watts(100.0)).joules(), 1.0);
}

TEST(Power, EnergyOverTimeGivesPower) {
  const Power p = Energy::from_joules(5.0) / Time::from_seconds(10.0);
  EXPECT_DOUBLE_EQ(p.watts(), 0.5);
}

TEST(Power, EnergyOverPowerGivesTime) {
  const Time t = Energy::from_joules(5.0) / Power::from_watts(0.5);
  EXPECT_DOUBLE_EQ(t.seconds(), 10.0);
}

TEST(Decibels, RoundTrips) {
  EXPECT_NEAR(db_to_linear(3.0), 1.995, 1e-3);
  EXPECT_NEAR(linear_to_db(db_to_linear(-17.3)), -17.3, 1e-12);
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-12);
  EXPECT_NEAR(watts_to_dbm(dbm_to_watts(14.0)), 14.0, 1e-12);
}

TEST(Units, ToStringPicksSensibleScale) {
  EXPECT_EQ(Time::from_seconds(0.5).to_string(), "500.000 ms");
  EXPECT_EQ(Time::from_minutes(30.0).to_string(), "30.00 min");
  EXPECT_EQ(Energy::from_joules(0.25).to_string(), "250.000 mJ");
  EXPECT_EQ(Power::from_watts(2.0).to_string(), "2.000 W");
}

}  // namespace
}  // namespace blam
