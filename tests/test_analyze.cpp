// Tests for blam-analyze — the structure pass (member tables, function
// definitions, statics, includes), the include-closure walk, each cross-file
// rule's true positives and the shapes that must NOT match, and the
// suppression protocol. The seeded-drift fixture doubles as the CI
// demonstration that checkpoint drift fails the gate: an extra unserialized
// member yields an active K1 finding, so blam-analyze exits nonzero.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "blam-analyze/analyze.hpp"

namespace blam::analyze {
namespace {

using lint::Finding;

[[nodiscard]] Project make_project(
    const std::vector<std::pair<std::string, std::string>>& files) {
  Project project;
  for (const auto& [path, src] : files) project.units.push_back(parse_unit(path, src));
  return project;
}

[[nodiscard]] std::vector<Finding> active(const Project& project) {
  std::vector<Finding> out;
  for (auto& f : analyze_project(project)) {
    if (!f.suppressed) out.push_back(std::move(f));
  }
  return out;
}

[[nodiscard]] int count_rule(const std::vector<Finding>& findings, std::string_view rule) {
  return static_cast<int>(std::count_if(findings.begin(), findings.end(),
                                        [rule](const Finding& f) { return f.rule == rule; }));
}

[[nodiscard]] bool mentions(const std::vector<Finding>& findings, std::string_view rule,
                            std::string_view needle) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.message.find(needle) != std::string::npos;
  });
}

[[nodiscard]] const ClassInfo* find_class(const TranslationUnit& unit, std::string_view name) {
  for (const ClassInfo& c : unit.classes) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

[[nodiscard]] const MemberDecl* find_member(const ClassInfo& cls, std::string_view name) {
  for (const MemberDecl& m : cls.members) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

// --- Structure pass --------------------------------------------------------

TEST(AnalyzeStructure, MemberTablesCaptureTypesInitializersAndBitfields) {
  const auto unit = parse_unit("src/x.hpp",
                               "struct Frame {\n"
                               "  std::vector<double> samples{1.0, 2.0};\n"
                               "  std::map<std::string, int> index;\n"
                               "  std::uint8_t flags : 3;\n"
                               "  std::uint8_t spare : 5 {0};\n"
                               "  static int instances;\n"
                               "  const double scale = 2.0;\n"
                               "  int plain;\n"
                               "};\n");
  const ClassInfo* frame = find_class(unit, "Frame");
  ASSERT_NE(frame, nullptr);
  EXPECT_TRUE(frame->is_struct);

  const MemberDecl* samples = find_member(*frame, "samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_NE(samples->type.find("std::vector"), std::string::npos);

  // Template arguments with commas must not split the declaration.
  EXPECT_NE(find_member(*frame, "index"), nullptr);

  const MemberDecl* flags = find_member(*frame, "flags");
  ASSERT_NE(flags, nullptr);
  EXPECT_TRUE(flags->is_bitfield);
  const MemberDecl* spare = find_member(*frame, "spare");
  ASSERT_NE(spare, nullptr);
  EXPECT_TRUE(spare->is_bitfield);

  // Static data members are shared state, not per-instance checkpoint
  // state: they land in the S2 statics table, not the member table.
  EXPECT_EQ(find_member(*frame, "instances"), nullptr);
  ASSERT_EQ(unit.statics.size(), 1u);
  EXPECT_EQ(unit.statics[0].name, "instances");
  EXPECT_EQ(unit.statics[0].kind, StaticDecl::Kind::kClassStatic);

  const MemberDecl* scale = find_member(*frame, "scale");
  ASSERT_NE(scale, nullptr);
  EXPECT_TRUE(scale->is_const);

  EXPECT_NE(find_member(*frame, "plain"), nullptr);
}

TEST(AnalyzeStructure, NestedClassesAreKeyedThroughTheirParent) {
  const auto unit = parse_unit("src/x.hpp",
                               "class Rng {\n"
                               " public:\n"
                               "  struct State {\n"
                               "    std::uint64_t s0{0};\n"
                               "  };\n"
                               " private:\n"
                               "  State state_;\n"
                               "};\n");
  const ClassInfo* nested = find_class(unit, "Rng::State");
  ASSERT_NE(nested, nullptr);
  EXPECT_NE(find_member(*nested, "s0"), nullptr);
  const ClassInfo* outer = find_class(unit, "Rng");
  ASSERT_NE(outer, nullptr);
  EXPECT_NE(find_member(*outer, "state_"), nullptr);
}

TEST(AnalyzeStructure, TemplateClassMembersAreCaptured) {
  const auto unit = parse_unit("src/x.hpp",
                               "template <typename T>\n"
                               "struct Box {\n"
                               "  T value;\n"
                               "  int count{0};\n"
                               "};\n");
  const ClassInfo* box = find_class(unit, "Box");
  ASSERT_NE(box, nullptr);
  EXPECT_NE(find_member(*box, "value"), nullptr);
  EXPECT_NE(find_member(*box, "count"), nullptr);
}

TEST(AnalyzeStructure, InlineAndOutOfClassFunctionDefinitionsAreRecorded) {
  const auto unit = parse_unit("src/x.cpp",
                               "struct Counter {\n"
                               "  int value() const { return value_; }\n"
                               "  void bump();\n"
                               "  int value_{0};\n"
                               "};\n"
                               "void Counter::bump() { ++value_; }\n"
                               "int free_fn(int a) { return a + 1; }\n");
  ASSERT_EQ(unit.functions.size(), 3u);
  EXPECT_EQ(unit.functions[0].class_name, "Counter");
  EXPECT_EQ(unit.functions[0].name, "value");
  EXPECT_EQ(unit.functions[1].class_name, "Counter");
  EXPECT_EQ(unit.functions[1].name, "bump");
  EXPECT_EQ(unit.functions[2].class_name, "");
  EXPECT_EQ(unit.functions[2].name, "free_fn");
  ASSERT_EQ(unit.functions[2].params.size(), 1u);
  EXPECT_EQ(unit.functions[2].params[0].name, "a");
}

TEST(AnalyzeStructure, ForwardDeclarationsAreNotStatics) {
  const auto unit = parse_unit("src/x.hpp",
                               "class NetworkServer;\n"
                               "struct EngineSlice;\n"
                               "int real_global = 0;\n");
  ASSERT_EQ(unit.statics.size(), 1u);
  EXPECT_EQ(unit.statics[0].name, "real_global");
}

TEST(AnalyzeStructure, CkptSkipBindsTrailingAndOwnLine) {
  const auto unit = parse_unit("src/x.hpp",
                               "struct S {\n"
                               "  int a;  // blam-ckpt: skip -- rebuilt on restore\n"
                               "  // blam-ckpt: skip -- derived constant\n"
                               "  int b;\n"
                               "  int c;\n"
                               "};\n");
  const ClassInfo* s = find_class(unit, "S");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(find_member(*s, "a")->ckpt_skip);
  EXPECT_TRUE(find_member(*s, "b")->ckpt_skip);
  EXPECT_EQ(find_member(*s, "b")->ckpt_reason, "derived constant");
  EXPECT_FALSE(find_member(*s, "c")->ckpt_skip);
}

// --- Include closure -------------------------------------------------------

TEST(AnalyzeClosure, FollowsQuotedIncludesAndPairsHeadersWithCpp) {
  const auto project = make_project({
      {"src/sim/shard_engine.cpp", "#include \"sim/shard_state.hpp\"\n"},
      {"src/sim/shard_state.hpp", "#include \"net/table.hpp\"\n"},
      {"src/sim/shard_state.cpp", "#include \"sim/shard_state.hpp\"\n"},
      {"src/net/table.hpp", "struct Table {};\n"},
      {"src/net/unrelated.hpp", "struct Unrelated {};\n"},
  });
  const auto closure = include_closure(project, "src/sim/shard_engine.cpp");
  const std::vector<std::string> expected = {
      "src/net/table.hpp",
      "src/sim/shard_engine.cpp",
      "src/sim/shard_state.cpp",  // paired in via its header, not #included
      "src/sim/shard_state.hpp",
  };
  EXPECT_EQ(closure, expected);
}

// --- K1: checkpoint coverage -----------------------------------------------

constexpr const char* kEnginePath = "src/sim/engine.hpp";

// An engine whose member pair serializes `soc_` but forgets `drift_` — the
// seeded-drift fixture. With `drift_` removed (or skipped) it is clean.
[[nodiscard]] std::string engine_src(bool with_drift) {
  std::string src =
      "struct Engine {\n"
      "  void checkpoint_state(StateWriter& w) { w.put_double(soc_); }\n"
      "  void restore_state(StateReader& r) { soc_ = r.get_double(); }\n"
      "  double soc_{1.0};\n";
  if (with_drift) src += "  double drift_{0.0};\n";
  src += "};\n";
  return src;
}

TEST(AnalyzeK1, SeededCheckpointDriftFailsTheGate) {
  // The extra member drifts out of checkpoint coverage => an active K1
  // finding => blam-analyze exits nonzero. This is the gate demonstration.
  const auto findings = active(make_project({{kEnginePath, engine_src(true)}}));
  EXPECT_EQ(count_rule(findings, "K1"), 1);
  EXPECT_TRUE(mentions(findings, "K1", "Engine::drift_"));
}

TEST(AnalyzeK1, FullySerializedRootIsClean) {
  const auto findings = active(make_project({{kEnginePath, engine_src(false)}}));
  EXPECT_EQ(count_rule(findings, "K1"), 0);
}

TEST(AnalyzeK1, SkipAnnotationExemptsAMember) {
  const auto findings = active(make_project({{kEnginePath,
                                              "struct Engine {\n"
                                              "  void checkpoint_state(StateWriter& w) {}\n"
                                              "  void restore_state(StateReader& r) {}\n"
                                              "  // blam-ckpt: skip -- rebuilt at construction\n"
                                              "  double cache_{0.0};\n"
                                              "};\n"}}));
  EXPECT_EQ(count_rule(findings, "K1"), 0);
}

TEST(AnalyzeK1, AccessChainsPullMemberTypesIntoTheGroup) {
  // checkpoint_state touches inner_.value_, so Inner joins the group and its
  // OTHER member is checkpoint drift.
  const auto findings = active(make_project({{kEnginePath,
                                              "struct Inner {\n"
                                              "  double value_{0.0};\n"
                                              "  double missed_{0.0};\n"
                                              "};\n"
                                              "struct Engine {\n"
                                              "  void checkpoint_state(StateWriter& w) {\n"
                                              "    w.put_double(inner_.value_);\n"
                                              "  }\n"
                                              "  void restore_state(StateReader& r) {\n"
                                              "    inner_.value_ = r.get_double();\n"
                                              "  }\n"
                                              "  Inner inner_;\n"
                                              "};\n"}}));
  EXPECT_EQ(count_rule(findings, "K1"), 1);
  EXPECT_TRUE(mentions(findings, "K1", "Inner::missed_"));
}

TEST(AnalyzeK1, MemberFunctionCallsAttachTheCalleeBody) {
  // Coverage flows through helper calls: queue_.seq() is the only mention of
  // Queue::seq_, inside Queue's own accessor body.
  const auto findings = active(make_project({{kEnginePath,
                                              "struct Queue {\n"
                                              "  std::uint64_t seq() const { return seq_; }\n"
                                              "  void set_seq(std::uint64_t s) { seq_ = s; }\n"
                                              "  std::uint64_t seq_{0};\n"
                                              "};\n"
                                              "struct Engine {\n"
                                              "  void checkpoint_state(StateWriter& w) {\n"
                                              "    w.put_u64(queue_.seq());\n"
                                              "  }\n"
                                              "  void restore_state(StateReader& r) {\n"
                                              "    queue_.set_seq(r.get_u64());\n"
                                              "  }\n"
                                              "  Queue queue_;\n"
                                              "};\n"}}));
  EXPECT_EQ(count_rule(findings, "K1"), 0);
}

TEST(AnalyzeK1, UnqualifiedMembersBindToTheEnclosingClass) {
  // Decoy (alphabetically first in the group) shares the member name `q_`.
  // Holder::get's unqualified `q_` must still bind to Holder::q_ (a Payload),
  // attaching Payload::x() — the only body covering Payload::x_. Binding to
  // Decoy::q_ (an int) would kill the chain and flag x_ as drift.
  const auto findings = active(make_project({{kEnginePath,
                                              "struct Payload {\n"
                                              "  int x() const { return x_; }\n"
                                              "  int x_{0};\n"
                                              "};\n"
                                              "struct Decoy {\n"
                                              "  int q_{0};\n"
                                              "};\n"
                                              "struct Holder {\n"
                                              "  int get() const { return q_.x(); }\n"
                                              "  Payload q_;\n"
                                              "};\n"
                                              "struct Engine {\n"
                                              "  void checkpoint_state(StateWriter& w) {\n"
                                              "    w.put(d_.q_);\n"
                                              "    w.put(h_.get());\n"
                                              "    w.put(h_.q_.x());\n"
                                              "  }\n"
                                              "  void restore_state(StateReader& r) {}\n"
                                              "  Decoy d_;\n"
                                              "  Holder h_;\n"
                                              "};\n"}}));
  EXPECT_EQ(count_rule(findings, "K1"), 0);
}

TEST(AnalyzeK1, SkippedMemberChainsAreOpaque) {
  // Reading config_->beta during a restore-rebuild must not pull the whole
  // config type into checkpoint coverage: config_ is declared out of
  // coverage, so the chain through it is opaque and Config stays out.
  const auto findings = active(make_project({{kEnginePath,
                                              "struct Config {\n"
                                              "  double beta{0.5};\n"
                                              "  double gamma{0.1};\n"
                                              "};\n"
                                              "struct Engine {\n"
                                              "  void checkpoint_state(StateWriter& w) {\n"
                                              "    w.put_double(soc_);\n"
                                              "  }\n"
                                              "  void restore_state(StateReader& r) {\n"
                                              "    soc_ = r.get_double() * config_->beta;\n"
                                              "  }\n"
                                              "  double soc_{1.0};\n"
                                              "  // blam-ckpt: skip -- construction input\n"
                                              "  const Config* config_{nullptr};\n"
                                              "};\n"}}));
  EXPECT_EQ(count_rule(findings, "K1"), 0);
}

TEST(AnalyzeK1, FreeSerializerSubjectsAreRoots) {
  // "blamledger v1"-style free functions: the non-codec parameter's type is
  // a serialized subject even without a member pair.
  const auto findings = active(make_project({{"src/core/codec.cpp",
                                              "struct Ledger {\n"
                                              "  double k6_{0.0};\n"
                                              "  double unsaved_{0.0};\n"
                                              "};\n"
                                              "void write_ledger(StateWriter& w, const Ledger& "
                                              "ledger) {\n"
                                              "  w.put_double(ledger.k6_);\n"
                                              "}\n"}}));
  EXPECT_EQ(count_rule(findings, "K1"), 1);
  EXPECT_TRUE(mentions(findings, "K1", "Ledger::unsaved_"));
}

TEST(AnalyzeK1, DerivedOverridesJoinTheGroupOnVirtualDispatch) {
  // mac_->snapshot() dispatches to the derived override; the derived class's
  // unserialized member is drift even though only the base is named.
  const auto findings = active(make_project({{kEnginePath,
                                              "struct MacPolicy {\n"
                                              "  virtual ~MacPolicy() = default;\n"
                                              "  virtual double snapshot() const = 0;\n"
                                              "};\n"
                                              "struct GreedyMac : MacPolicy {\n"
                                              "  double snapshot() const override {\n"
                                              "    return cap_;\n"
                                              "  }\n"
                                              "  double cap_{0.0};\n"
                                              "  double forgotten_{0.0};\n"
                                              "};\n"
                                              "struct Engine {\n"
                                              "  void checkpoint_state(StateWriter& w) {\n"
                                              "    w.put_double(mac_->snapshot());\n"
                                              "  }\n"
                                              "  void restore_state(StateReader& r) {}\n"
                                              "  std::unique_ptr<MacPolicy> mac_;\n"
                                              "};\n"}}));
  EXPECT_EQ(count_rule(findings, "K1"), 1);
  EXPECT_TRUE(mentions(findings, "K1", "GreedyMac::forgotten_"));
}

TEST(AnalyzeK1, UnreachableTypesAreNotAudited) {
  const auto findings = active(make_project({{kEnginePath,
                                              "struct Standalone {\n"
                                              "  int never_serialized_{0};\n"
                                              "};\n"
                                              "struct Engine {\n"
                                              "  void checkpoint_state(StateWriter& w) {}\n"
                                              "  void restore_state(StateReader& r) {}\n"
                                              "};\n"}}));
  EXPECT_EQ(count_rule(findings, "K1"), 0);
}

// --- S2: shard-state escape ------------------------------------------------

[[nodiscard]] Project shard_project(const std::string& header_src) {
  return make_project({
      {"src/sim/shard_engine.cpp", "#include \"sim/shard_state.hpp\"\n"},
      {"src/sim/shard_state.hpp", header_src},
  });
}

TEST(AnalyzeS2, FlagsMutableStaticsInTheShardClosure) {
  const auto findings = active(shard_project("int g_total = 0;\n"
                                             "static int s_hits = 0;\n"
                                             "int bump() {\n"
                                             "  static int calls = 0;\n"
                                             "  return ++calls;\n"
                                             "}\n"));
  EXPECT_EQ(count_rule(findings, "S2"), 3);
  EXPECT_TRUE(mentions(findings, "S2", "'g_total'"));
  EXPECT_TRUE(mentions(findings, "S2", "'s_hits'"));
  EXPECT_TRUE(mentions(findings, "S2", "'calls'"));
}

TEST(AnalyzeS2, ConstAtomicAndAnnotatedAreExempt) {
  const auto findings = active(
      shard_project("constexpr int kShards = 4;\n"
                    "const double kBudget = 1.5;\n"
                    "std::atomic<std::uint64_t> g_progress{0};\n"
                    "// blam-shared: mutex -- merged under the epoch barrier lock\n"
                    "std::vector<int> g_merged;\n"));
  EXPECT_EQ(count_rule(findings, "S2"), 0);
}

TEST(AnalyzeS2, ThreadLocalIsStillFlagged) {
  // One worker thread serves many shards, so thread_local does not isolate
  // shard state.
  const auto findings = active(shard_project("thread_local int t_scratch = 0;\n"));
  EXPECT_EQ(count_rule(findings, "S2"), 1);
  EXPECT_TRUE(mentions(findings, "S2", "thread_local is not enough"));
}

TEST(AnalyzeS2, FilesOutsideTheClosureAreIgnored) {
  const auto project = make_project({
      {"src/sim/shard_engine.cpp", "#include \"sim/shard_state.hpp\"\n"},
      {"src/sim/shard_state.hpp", "struct ShardState {};\n"},
      {"src/plot/render.cpp", "int g_figure_count = 0;\n"},
  });
  EXPECT_EQ(count_rule(active(project), "S2"), 0);
}

TEST(AnalyzeS2, PairedCppOfAClosureHeaderIsScanned) {
  const auto project = make_project({
      {"src/sim/shard_engine.cpp", "#include \"sim/shard_state.hpp\"\n"},
      {"src/sim/shard_state.hpp", "int advance();\n"},
      {"src/sim/shard_state.cpp", "static int s_epoch = 0;\n"
                                  "int advance() { return ++s_epoch; }\n"},
  });
  const auto findings = active(project);
  EXPECT_EQ(count_rule(findings, "S2"), 1);
  EXPECT_TRUE(mentions(findings, "S2", "'s_epoch'"));
}

// --- R1: RNG-salt registry -------------------------------------------------

constexpr const char* kRegistry =
    "namespace salt {\n"
    "inline constexpr std::uint64_t kTopology = 0x7090;\n"
    "inline constexpr std::uint64_t kTraffic = 0x7aff1c;\n"
    "}  // namespace salt\n";

TEST(AnalyzeR1, LiteralForkSaltsAreFlagged) {
  const auto findings = active(make_project({
      {"src/common/rng.hpp", kRegistry},
      {"src/net/deploy.cpp", "void f(const Rng& root) {\n"
                             "  const Rng a = root.fork(0x7090);\n"
                             "  const Rng b = root.fork(0xbeef);\n"
                             "  const Rng c = root.fork(salt::kTraffic);\n"
                             "}\n"},
  }));
  EXPECT_EQ(count_rule(findings, "R1"), 2);
  // A registered value names its constant; an unregistered one asks for a
  // registry entry.
  EXPECT_TRUE(mentions(findings, "R1", "salt::kTopology"));
  EXPECT_TRUE(mentions(findings, "R1", "unregistered literal salt 0xbeef"));
}

TEST(AnalyzeR1, LiteralStreamArgumentsOfConstructionsAreFlagged) {
  const auto findings = active(make_project({
      {"src/common/rng.hpp", kRegistry},
      {"src/net/build.cpp", "void f(std::uint64_t seed) {\n"
                            "  const Rng root{seed, 0};\n"
                            "  Rng named{seed, salt::kTopology};\n"
                            "}\n"},
  }));
  EXPECT_EQ(count_rule(findings, "R1"), 1);
  EXPECT_TRUE(mentions(findings, "R1", "Rng{seed, stream} construction"));
}

TEST(AnalyzeR1, DuplicateRegistryValuesCollide) {
  const auto findings = active(make_project({
      {"src/common/rng.hpp", "namespace salt {\n"
                             "inline constexpr std::uint64_t kA = 0x7090;\n"
                             "inline constexpr std::uint64_t kB = 0x7090;\n"
                             "}  // namespace salt\n"},
  }));
  EXPECT_EQ(count_rule(findings, "R1"), 1);
  EXPECT_TRUE(mentions(findings, "R1", "duplicate salt value"));
}

TEST(AnalyzeR1, HexRespellingOfARegisteredSaltIsFlagged) {
  const auto findings = active(make_project({
      {"src/common/rng.hpp", kRegistry},
      {"src/net/build.cpp", "constexpr std::uint64_t kLocal = 0x007090;\n"},
  }));
  EXPECT_EQ(count_rule(findings, "R1"), 1);
  EXPECT_TRUE(mentions(findings, "R1", "respells registered salt"));
}

TEST(AnalyzeR1, SmallByteMasksAreNotRespellings) {
  // 0x00/0xff-style masks are everywhere; only values >= 0x100 can collide
  // with a salt in a way worth flagging.
  const auto findings = active(make_project({
      {"src/common/rng.hpp", "namespace salt {\n"
                             "inline constexpr std::uint64_t kRootStream = 0;\n"
                             "}  // namespace salt\n"},
      {"src/core/pack.cpp", "constexpr std::uint8_t kMask = 0x00;\n"},
  }));
  EXPECT_EQ(count_rule(findings, "R1"), 0);
}

TEST(AnalyzeR1, FilesOutsideSrcAreNotScanned) {
  const auto findings = active(make_project({
      {"src/common/rng.hpp", kRegistry},
      {"tests/test_rng.cpp", "void f(const Rng& root) { const Rng a = root.fork(0x7090); }\n"},
  }));
  EXPECT_EQ(count_rule(findings, "R1"), 0);
}

// --- A1 + suppression protocol ---------------------------------------------

TEST(AnalyzeA1, MalformedAnnotationsAreFindings) {
  const auto findings = active(make_project({
      {"src/x.hpp", "struct S {\n"
                    "  int a;  // blam-ckpt: skip\n"
                    "  // blam-shared: mutex\n"
                    "  int b;\n"
                    "};\n"},
  }));
  EXPECT_GE(count_rule(findings, "A1"), 2);
}

TEST(AnalyzeA1, UnknownRuleInAllowIsAFinding) {
  const auto findings = active(make_project({
      {"src/x.cpp", "// blam-analyze: allow(K9) -- no such rule\nint g = 0;\n"},
  }));
  EXPECT_EQ(count_rule(findings, "A1"), 1);
  EXPECT_TRUE(mentions(findings, "A1", "unknown rule 'K9'"));
}

TEST(AnalyzeSuppression, AllowWithReasonSuppressesTheFinding) {
  const auto project = make_project({
      {"src/common/rng.hpp", kRegistry},
      {"src/net/build.cpp",
       "void f(const Rng& root) {\n"
       "  // blam-analyze: allow(R1) -- exercising the raw stream API\n"
       "  const Rng a = root.fork(0xbeef);\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(active(project), "R1"), 0);
  const auto all = analyze_project(project);
  const auto it = std::find_if(all.begin(), all.end(),
                               [](const Finding& f) { return f.rule == "R1"; });
  ASSERT_NE(it, all.end());
  EXPECT_TRUE(it->suppressed);
}

TEST(AnalyzeSuppression, ReasonIsMandatory) {
  const auto findings = active(make_project({
      {"src/common/rng.hpp", kRegistry},
      {"src/net/build.cpp", "void f(const Rng& root) {\n"
                            "  // blam-analyze: allow(R1)\n"
                            "  const Rng a = root.fork(0xbeef);\n"
                            "}\n"},
  }));
  EXPECT_EQ(count_rule(findings, "R1"), 1);  // not suppressed
  EXPECT_EQ(count_rule(findings, "A1"), 1);  // and the bad marker is flagged
}

TEST(AnalyzeSuppression, A1IsNotSuppressible) {
  const auto findings = active(make_project({
      {"src/x.hpp", "struct S {\n"
                    "  // blam-analyze: allow(A1) -- please look away\n"
                    "  int a;  // blam-ckpt: skip\n"
                    "};\n"},
  }));
  // The allow(A1) itself names a non-suppressible rule, and the malformed
  // skip still reports.
  EXPECT_GE(count_rule(findings, "A1"), 2);
}

// --- JSON rendering --------------------------------------------------------

TEST(AnalyzeJson, FindingsCarryTheLintJsonFields) {
  const auto project = make_project({{kEnginePath, engine_src(true)}});
  const std::string json = lint::to_json(analyze_project(project));
  EXPECT_NE(json.find("\"rule\":\"K1\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"src/sim/engine.hpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":"), std::string::npos);
  EXPECT_NE(json.find("\"col\":"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\":false"), std::string::npos);
  EXPECT_NE(json.find("Engine::drift_"), std::string::npos);
}

TEST(AnalyzeRules, RegistryListsTheFourRules) {
  const auto& infos = rule_infos();
  ASSERT_EQ(infos.size(), 4u);
  EXPECT_EQ(infos[0].id, "K1");
  EXPECT_EQ(infos[1].id, "S2");
  EXPECT_EQ(infos[2].id, "R1");
  EXPECT_EQ(infos[3].id, "A1");
}

}  // namespace
}  // namespace blam::analyze
