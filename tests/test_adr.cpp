#include "mac/adr.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

AdrController controller(int min_history = 3) {
  AdrController::Config c;
  c.history = 10;
  c.min_history = min_history;
  return AdrController{c};
}

TEST(AdrBasics, RequiredSnrMonotoneInSf) {
  double prev = 0.0;
  for (SpreadingFactor sf : kAllSpreadingFactors) {
    EXPECT_LT(required_snr_db(sf), prev);
    prev = required_snr_db(sf);
  }
  EXPECT_DOUBLE_EQ(required_snr_db(SpreadingFactor::kSF7), -7.5);
  EXPECT_DOUBLE_EQ(required_snr_db(SpreadingFactor::kSF12), -20.0);
}

TEST(AdrBasics, NoiseFloor) {
  // -174 + 10 log10(125e3) + 6 = -117.03 dBm.
  EXPECT_NEAR(noise_floor_dbm(125e3), -117.03, 0.01);
  EXPECT_NEAR(noise_floor_dbm(500e3), -111.01, 0.01);
  EXPECT_THROW((void)noise_floor_dbm(0.0), std::invalid_argument);
}

TEST(AdrController, ValidatesConfig) {
  AdrController::Config c;
  c.history = 0;
  EXPECT_THROW(AdrController{c}, std::invalid_argument);
  c = AdrController::Config{};
  c.min_history = c.history + 1;
  EXPECT_THROW(AdrController{c}, std::invalid_argument);
  c = AdrController::Config{};
  c.min_tx_power_dbm = 20.0;
  c.max_tx_power_dbm = 2.0;
  EXPECT_THROW(AdrController{c}, std::invalid_argument);
}

TEST(AdrController, SilentUntilEnoughHistory) {
  AdrController adr = controller(/*min_history=*/5);
  const AdrCommand current{SpreadingFactor::kSF12, 14.0};
  for (int i = 0; i < 4; ++i) {
    adr.observe(1, 10.0);
    EXPECT_FALSE(adr.advise(1, current).has_value()) << i;
  }
  adr.observe(1, 10.0);
  EXPECT_TRUE(adr.advise(1, current).has_value());
}

TEST(AdrController, UnknownNodeGetsNoAdvice) {
  const AdrController adr = controller();
  EXPECT_FALSE(adr.advise(99, AdrCommand{}).has_value());
}

TEST(AdrController, StrongLinkStepsSfDownThenPower) {
  AdrController adr = controller();
  // SNR 20 dB at SF12 (floor -20, margin 10): spare = 20 + 20 - 10 = 30 dB
  // -> 10 steps: SF12 -> SF7 (5 steps), then 5 * 2 dB off the TX power.
  for (int i = 0; i < 5; ++i) adr.observe(1, 20.0);
  const auto cmd = adr.advise(1, AdrCommand{SpreadingFactor::kSF12, 14.0});
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->sf, SpreadingFactor::kSF7);
  EXPECT_DOUBLE_EQ(cmd->tx_power_dbm, 4.0);
}

TEST(AdrController, PowerNeverBelowMinimum) {
  AdrController adr = controller();
  for (int i = 0; i < 5; ++i) adr.observe(1, 60.0);  // absurdly strong
  const auto cmd = adr.advise(1, AdrCommand{SpreadingFactor::kSF7, 14.0});
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->sf, SpreadingFactor::kSF7);
  EXPECT_GE(cmd->tx_power_dbm, 2.0);
}

TEST(AdrController, MarginalLinkUnchanged) {
  AdrController adr = controller();
  // Exactly at floor + margin: zero spare steps.
  for (int i = 0; i < 5; ++i) adr.observe(1, required_snr_db(SpreadingFactor::kSF10) + 10.0);
  EXPECT_FALSE(adr.advise(1, AdrCommand{SpreadingFactor::kSF10, 14.0}).has_value());
}

TEST(AdrController, WeakLinkRaisesPowerNotSf) {
  AdrController adr = controller();
  // 9 dB short of the SF10 target: power climbs back toward max.
  for (int i = 0; i < 5; ++i) adr.observe(1, required_snr_db(SpreadingFactor::kSF10) + 1.0);
  const auto cmd = adr.advise(1, AdrCommand{SpreadingFactor::kSF10, 6.0});
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->sf, SpreadingFactor::kSF10);
  EXPECT_GT(cmd->tx_power_dbm, 6.0);
  EXPECT_LE(cmd->tx_power_dbm, 14.0);
}

TEST(AdrController, UsesMaxSnrOfHistory) {
  AdrController adr = controller();
  // One good probe among bad ones drives the decision (standard ADR).
  adr.observe(1, -18.0);
  adr.observe(1, -18.0);
  adr.observe(1, 15.0);
  adr.observe(1, -18.0);
  adr.observe(1, -18.0);
  const auto cmd = adr.advise(1, AdrCommand{SpreadingFactor::kSF12, 14.0});
  ASSERT_TRUE(cmd.has_value());
  EXPECT_LT(sf_value(cmd->sf), 12);
}

TEST(AdrController, HistoryIsBounded) {
  AdrController adr = controller();
  // Flood with strong samples, then with weak ones: the strong ones age out
  // of the 10-deep window and stop influencing advice.
  for (int i = 0; i < 10; ++i) adr.observe(1, 20.0);
  for (int i = 0; i < 10; ++i) adr.observe(1, required_snr_db(SpreadingFactor::kSF12) + 10.0);
  EXPECT_FALSE(adr.advise(1, AdrCommand{SpreadingFactor::kSF12, 14.0}).has_value());
}

TEST(AdrController, NodesAreIndependent) {
  AdrController adr = controller();
  for (int i = 0; i < 5; ++i) adr.observe(1, 20.0);
  EXPECT_TRUE(adr.advise(1, AdrCommand{SpreadingFactor::kSF12, 14.0}).has_value());
  EXPECT_FALSE(adr.advise(2, AdrCommand{SpreadingFactor::kSF12, 14.0}).has_value());
}

}  // namespace
}  // namespace blam
