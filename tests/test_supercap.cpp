#include "energy/supercap.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "energy/power_switch.hpp"

namespace blam {
namespace {

Energy J(double j) { return Energy::from_joules(j); }

TEST(Supercap, ValidatesConstruction) {
  EXPECT_THROW(Supercap(J(0.0)), std::invalid_argument);
  EXPECT_THROW(Supercap(J(1.0), 0.0), std::invalid_argument);
  EXPECT_THROW(Supercap(J(1.0), 1.1), std::invalid_argument);
  EXPECT_THROW(Supercap(J(1.0), 0.9, 1.0), std::invalid_argument);
  EXPECT_THROW(Supercap(J(1.0), 0.9, -0.1), std::invalid_argument);
}

TEST(Supercap, ChargeWithEfficiencyLoss) {
  Supercap cap{J(10.0), /*efficiency=*/0.8, /*leak=*/0.0};
  const Energy consumed = cap.charge(J(5.0));
  EXPECT_DOUBLE_EQ(consumed.joules(), 5.0);
  EXPECT_DOUBLE_EQ(cap.stored().joules(), 4.0);  // 80% of 5 J
}

TEST(Supercap, ChargeStopsAtCapacity) {
  Supercap cap{J(4.0), 0.8, 0.0};
  // To store 4 J at 80% efficiency it can consume 5 J at most.
  EXPECT_DOUBLE_EQ(cap.charge(J(100.0)).joules(), 5.0);
  EXPECT_DOUBLE_EQ(cap.stored().joules(), 4.0);
  EXPECT_DOUBLE_EQ(cap.fill(), 1.0);
  EXPECT_DOUBLE_EQ(cap.charge(J(1.0)).joules(), 0.0);
}

TEST(Supercap, DischargeBoundedByStored) {
  Supercap cap{J(10.0), 1.0, 0.0};
  cap.charge(J(3.0));
  EXPECT_DOUBLE_EQ(cap.discharge(J(2.0)).joules(), 2.0);
  EXPECT_DOUBLE_EQ(cap.discharge(J(2.0)).joules(), 1.0);
  EXPECT_DOUBLE_EQ(cap.stored().joules(), 0.0);
}

TEST(Supercap, LeakIsExponential) {
  Supercap cap{J(10.0), 1.0, /*leak_per_day=*/0.5};
  cap.charge(J(8.0));
  cap.leak(Time::from_days(1.0));
  EXPECT_NEAR(cap.stored().joules(), 4.0, 1e-9);
  cap.leak(Time::from_days(2.0));
  EXPECT_NEAR(cap.stored().joules(), 1.0, 1e-9);
  // Half-day leak is sqrt of the daily retention.
  Supercap cap2{J(10.0), 1.0, 0.5};
  cap2.charge(J(8.0));
  cap2.leak(Time::from_hours(12.0));
  EXPECT_NEAR(cap2.stored().joules(), 8.0 * std::sqrt(0.5), 1e-9);
}

TEST(Supercap, NoLeakConfigured) {
  Supercap cap{J(10.0), 1.0, 0.0};
  cap.charge(J(5.0));
  cap.leak(Time::from_days(100.0));
  EXPECT_DOUBLE_EQ(cap.stored().joules(), 5.0);
}

TEST(Supercap, NegativeInputsRejected) {
  Supercap cap{J(10.0)};
  EXPECT_THROW(cap.charge(J(-1.0)), std::invalid_argument);
  EXPECT_THROW(cap.discharge(J(-1.0)), std::invalid_argument);
  EXPECT_THROW(cap.leak(Time::from_seconds(-1.0)), std::invalid_argument);
}

TEST(HybridStorage, SurplusFillsCapBeforeBattery) {
  Battery battery{J(100.0), 0.2};
  Supercap cap{J(5.0), 1.0, 0.0};
  PowerSwitch sw{battery, 1.0};
  sw.attach_supercap(&cap);
  const PowerFlow flow = sw.apply(J(12.0), J(0.0));
  EXPECT_DOUBLE_EQ(cap.stored().joules(), 5.0);
  EXPECT_DOUBLE_EQ(battery.stored().joules(), 27.0);  // 20 + remaining 7
  EXPECT_DOUBLE_EQ(flow.charged.joules(), 12.0);
}

TEST(HybridStorage, DeficitDrainsCapBeforeBattery) {
  Battery battery{J(100.0), 0.5};
  Supercap cap{J(5.0), 1.0, 0.0};
  cap.charge(J(5.0));
  PowerSwitch sw{battery, 1.0};
  sw.attach_supercap(&cap);
  const PowerFlow flow = sw.apply(J(0.0), J(3.0));
  EXPECT_DOUBLE_EQ(cap.stored().joules(), 2.0);
  EXPECT_DOUBLE_EQ(battery.stored().joules(), 50.0);  // untouched
  EXPECT_DOUBLE_EQ(flow.from_battery.joules(), 3.0);  // "from storage"
  EXPECT_FALSE(flow.brownout());
}

TEST(HybridStorage, BatteryCoversWhatCapCannot) {
  Battery battery{J(100.0), 0.5};
  Supercap cap{J(5.0), 1.0, 0.0};
  cap.charge(J(2.0));
  PowerSwitch sw{battery, 1.0};
  sw.attach_supercap(&cap);
  const PowerFlow flow = sw.apply(J(0.0), J(10.0));
  EXPECT_DOUBLE_EQ(cap.stored().joules(), 0.0);
  EXPECT_DOUBLE_EQ(battery.stored().joules(), 42.0);
  EXPECT_FALSE(flow.brownout());
}

TEST(HybridStorage, ThetaStillCapsTheBattery) {
  Battery battery{J(100.0), 0.45};
  Supercap cap{J(5.0), 1.0, 0.0};
  PowerSwitch sw{battery, 0.5};
  sw.attach_supercap(&cap);
  const PowerFlow flow = sw.apply(J(20.0), J(0.0));
  EXPECT_DOUBLE_EQ(cap.stored().joules(), 5.0);
  EXPECT_DOUBLE_EQ(battery.soc(), 0.5);  // theta cap holds
  EXPECT_DOUBLE_EQ(flow.wasted.joules(), 10.0);
}

}  // namespace
}  // namespace blam
