#include "lora/airtime.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

TxParams params(SpreadingFactor sf, int payload, double bw = 125e3,
                CodingRate cr = CodingRate::kCR4_5) {
  TxParams p;
  p.sf = sf;
  p.bandwidth_hz = bw;
  p.payload_bytes = payload;
  p.cr = cr;
  return p.with_auto_ldro();
}

TEST(Airtime, SymbolTimeMatchesFormula) {
  EXPECT_NEAR(symbol_time(SpreadingFactor::kSF7, 125e3).seconds(), 128.0 / 125e3, 1e-12);
  EXPECT_NEAR(symbol_time(SpreadingFactor::kSF12, 125e3).seconds(), 4096.0 / 125e3, 1e-12);
  EXPECT_NEAR(symbol_time(SpreadingFactor::kSF12, 500e3).seconds(), 4096.0 / 500e3, 1e-12);
}

TEST(Airtime, LdroAutoEnableRule) {
  // Symbol time >= 16 ms: SF11 and SF12 at 125 kHz only.
  EXPECT_FALSE(params(SpreadingFactor::kSF10, 10).low_data_rate_optimize);
  EXPECT_TRUE(params(SpreadingFactor::kSF11, 10).low_data_rate_optimize);
  EXPECT_TRUE(params(SpreadingFactor::kSF12, 10).low_data_rate_optimize);
  EXPECT_FALSE(params(SpreadingFactor::kSF12, 10, 500e3).low_data_rate_optimize);
}

// Reference airtimes cross-checked against the Semtech LoRa calculator
// (explicit header, CRC on, preamble 8).
TEST(Airtime, ReferenceValuesSf7) {
  // SF7, 125 kHz, CR 4/5, 10-byte payload: 12.25 + 8 + 5*5 symbols = 45.25
  // symbols; wait: payload symbols = 8 + max(ceil((80-28+28)/ (4*7))*5,0)
  //   numerator = 8*10 - 4*7 + 28 + 16 = 96; 96/(28) -> ceil = 4; 4*5 = 20.
  // total = 12.25 + 8 + 20 = 40.25 symbols; t = 40.25 * 1.024 ms = 41.2 ms.
  EXPECT_NEAR(time_on_air(params(SpreadingFactor::kSF7, 10)).seconds(), 0.041216, 1e-6);
}

TEST(Airtime, ReferenceValuesSf10) {
  // SF10, 125 kHz, CR 4/5, 10 bytes: numerator = 80 - 40 + 44 = 84;
  // denom = 40 -> ceil(2.1) = 3 -> 15 symbols; total = 12.25 + 8 + 15 = 35.25;
  // t = 35.25 * 8.192 ms = 288.8 ms.
  EXPECT_NEAR(time_on_air(params(SpreadingFactor::kSF10, 10)).seconds(), 0.288768, 1e-6);
}

TEST(Airtime, ReferenceValuesSf12Ldro) {
  // SF12, 125 kHz, CR 4/5, 10 bytes, DE=1: denom = 4*(12-2)=40;
  // numerator = 80 - 48 + 44 = 76 -> ceil(1.9) = 2 -> 10 symbols;
  // total = 12.25 + 8 + 10 = 30.25; t = 30.25 * 32.768 ms = 991.2 ms.
  EXPECT_NEAR(time_on_air(params(SpreadingFactor::kSF12, 10)).seconds(), 0.991232, 1e-5);
}

TEST(Airtime, MonotoneInPayload) {
  for (SpreadingFactor sf : kAllSpreadingFactors) {
    Time prev = Time::zero();
    for (int payload = 1; payload <= 64; ++payload) {
      const Time t = time_on_air(params(sf, payload));
      EXPECT_GE(t, prev) << to_string(sf) << " payload " << payload;
      prev = t;
    }
  }
}

TEST(Airtime, MonotoneInSpreadingFactor) {
  Time prev = Time::zero();
  for (SpreadingFactor sf : kAllSpreadingFactors) {
    const Time t = time_on_air(params(sf, 10));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Airtime, HigherCodingRateIsLonger) {
  const Time cr5 = time_on_air(params(SpreadingFactor::kSF9, 20, 125e3, CodingRate::kCR4_5));
  const Time cr8 = time_on_air(params(SpreadingFactor::kSF9, 20, 125e3, CodingRate::kCR4_8));
  EXPECT_GT(cr8, cr5);
}

TEST(Airtime, PaperClaimTenBytePacketAboutOneSecondAtMax) {
  // Paper Sec. III-B: "maximum transmission time for a 10-byte packet in
  // LoRa is around 1.2 seconds" (SF12, 125 kHz).
  const Time t = time_on_air(params(SpreadingFactor::kSF12, 10));
  EXPECT_GT(t.seconds(), 0.9);
  EXPECT_LT(t.seconds(), 1.3);
}

TEST(TxEnergy, MatchesPowerTimesAirtime) {
  RadioEnergyModel radio;
  const TxParams p = params(SpreadingFactor::kSF10, 10);
  const Energy e = tx_energy(p, radio);
  EXPECT_NEAR(e.joules(), radio.tx_power(p.tx_power_dbm).watts() * time_on_air(p).seconds(),
              1e-12);
}

TEST(TxEnergy, GrowsWithTxPower) {
  RadioEnergyModel radio;
  TxParams lo = params(SpreadingFactor::kSF10, 10);
  lo.tx_power_dbm = 7.0;
  TxParams hi = lo;
  hi.tx_power_dbm = 20.0;
  EXPECT_GT(tx_energy(hi, radio).joules(), tx_energy(lo, radio).joules());
}

TEST(RadioEnergyModel, SupplyCurrentInterpolation) {
  RadioEnergyModel radio;
  // Datasheet anchor points.
  EXPECT_NEAR(radio.tx_power(7.0).watts(), 0.020 * 3.3, 1e-9);
  EXPECT_NEAR(radio.tx_power(13.0).watts(), 0.029 * 3.3, 1e-9);
  EXPECT_NEAR(radio.tx_power(20.0).watts(), 0.120 * 3.3, 1e-9);
  // Clamped outside the table.
  EXPECT_NEAR(radio.tx_power(0.0).watts(), 0.020 * 3.3, 1e-9);
  EXPECT_NEAR(radio.tx_power(25.0).watts(), 0.120 * 3.3, 1e-9);
  // Interpolated between 13 and 17 dBm.
  const double w15 = radio.tx_power(15.0).watts();
  EXPECT_GT(w15, 0.029 * 3.3);
  EXPECT_LT(w15, 0.090 * 3.3);
}

TEST(RxEnergy, ScalesWithDuration) {
  RadioEnergyModel radio;
  const Energy e1 = rx_energy(Time::from_ms(60), radio);
  const Energy e2 = rx_energy(Time::from_ms(120), radio);
  EXPECT_NEAR(e2.joules(), 2.0 * e1.joules(), 1e-12);
  EXPECT_THROW((void)rx_energy(Time::from_ms(-1), radio), std::invalid_argument);
}

TEST(Airtime, RejectsInvalidInput) {
  TxParams p = params(SpreadingFactor::kSF10, 10);
  p.payload_bytes = -1;
  EXPECT_THROW((void)packet_symbols(p), std::invalid_argument);
  EXPECT_THROW((void)symbol_time(SpreadingFactor::kSF10, 0.0), std::invalid_argument);
}

TEST(Params, SfHelpers) {
  EXPECT_EQ(sf_value(SpreadingFactor::kSF9), 9);
  EXPECT_EQ(sf_index(SpreadingFactor::kSF7), 0u);
  EXPECT_EQ(sf_index(SpreadingFactor::kSF12), 5u);
  EXPECT_EQ(sf_from_value(11), SpreadingFactor::kSF11);
  EXPECT_THROW((void)sf_from_value(6), std::invalid_argument);
  EXPECT_THROW((void)sf_from_value(13), std::invalid_argument);
  EXPECT_EQ(to_string(SpreadingFactor::kSF8), "SF8");
}

TEST(Params, SensitivityMonotoneInSf) {
  double prev_gw = 0.0;
  double prev_dev = 0.0;
  for (SpreadingFactor sf : kAllSpreadingFactors) {
    if (sf != SpreadingFactor::kSF7) {
      EXPECT_LT(gateway_sensitivity_dbm(sf), prev_gw);
      EXPECT_LT(device_sensitivity_dbm(sf), prev_dev);
    }
    prev_gw = gateway_sensitivity_dbm(sf);
    prev_dev = device_sensitivity_dbm(sf);
    // The gateway (SX1301) hears better than the device (SX1276).
    EXPECT_LT(gateway_sensitivity_dbm(sf), device_sensitivity_dbm(sf));
  }
}

}  // namespace
}  // namespace blam
