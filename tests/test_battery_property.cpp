// Randomized battery invariants: arbitrary charge/discharge/degradation
// sequences can never break conservation or the capacity bounds.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "energy/battery.hpp"
#include "energy/power_switch.hpp"
#include "energy/supercap.hpp"

namespace blam {
namespace {

class BatteryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BatteryPropertyTest, RandomOpsPreserveInvariants) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 37 + 11};
  Battery battery{Energy::from_joules(rng.uniform(10.0, 1000.0)), rng.uniform(0.0, 1.0)};
  const double capacity = battery.original_capacity().joules();
  double degradation = 0.0;

  for (int op = 0; op < 2000; ++op) {
    const double stored_before = battery.stored().joules();
    switch (rng.uniform_int(0, 2)) {
      case 0: {
        const double cap = rng.uniform(0.0, 1.0);
        const Energy absorbed = battery.charge(Energy::from_joules(rng.uniform(0.0, 50.0)), cap);
        EXPECT_GE(absorbed.joules(), 0.0);
        EXPECT_NEAR(battery.stored().joules(), stored_before + absorbed.joules(), 1e-9);
        // The cap binds unless the battery was already above it.
        if (stored_before <= cap * capacity + 1e-9) {
          EXPECT_LE(battery.soc(), std::min(cap, 1.0 - degradation) + 1e-9);
        }
        break;
      }
      case 1: {
        const Energy drawn = battery.discharge(Energy::from_joules(rng.uniform(0.0, 50.0)));
        EXPECT_GE(drawn.joules(), 0.0);
        EXPECT_NEAR(battery.stored().joules(), stored_before - drawn.joules(), 1e-9);
        break;
      }
      default: {
        degradation = std::min(0.95, degradation + rng.uniform(0.0, 0.01));
        battery.set_degradation(degradation);
        EXPECT_NEAR(battery.current_capacity().joules(), capacity * (1.0 - degradation), 1e-6);
        break;
      }
    }
    // Global invariants after every operation.
    EXPECT_GE(battery.stored().joules(), 0.0);
    EXPECT_LE(battery.stored().joules(), battery.current_capacity().joules() + 1e-9);
    EXPECT_GE(battery.soc(), 0.0);
    EXPECT_LE(battery.soc(), 1.0 + 1e-12);
    EXPECT_GE(battery.degradation(), degradation - 1e-12);  // monotone
  }
}

TEST_P(BatteryPropertyTest, PowerSwitchConservesEnergyUnderRandomLoad) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 53 + 5};
  Battery battery{Energy::from_joules(100.0), rng.uniform(0.0, 1.0)};
  Supercap cap{Energy::from_joules(rng.uniform(1.0, 20.0)), rng.uniform(0.5, 1.0), 0.0};
  PowerSwitch sw{battery, rng.uniform(0.1, 1.0)};
  const bool with_cap = GetParam() % 2 == 0;
  if (with_cap) sw.attach_supercap(&cap);

  for (int step = 0; step < 1000; ++step) {
    const double harvest = rng.uniform(0.0, 20.0);
    const double demand = rng.uniform(0.0, 20.0);
    const double battery_before = battery.stored().joules();
    const double cap_before = cap.stored().joules();
    const PowerFlow flow = sw.apply(Energy::from_joules(harvest), Energy::from_joules(demand));

    // Demand is always split exactly between green, storage and deficit.
    EXPECT_NEAR(flow.from_green.joules() + flow.from_battery.joules() + flow.deficit.joules(),
                demand, 1e-9);
    // Harvest is always split exactly between load, charge and waste.
    EXPECT_NEAR(flow.from_green.joules() + flow.charged.joules() + flow.wasted.joules(), harvest,
                1e-9);
    // Storage delta matches the flows (charging may lose to cap efficiency).
    const double delta =
        (battery.stored().joules() - battery_before) + (cap.stored().joules() - cap_before);
    EXPECT_LE(delta, flow.charged.joules() + 1e-9);
    EXPECT_GE(delta, -flow.from_battery.joules() - 1e-9);
    EXPECT_GE(flow.deficit.joules(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatteryPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace blam
