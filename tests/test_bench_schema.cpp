// Unit tests for tools/bench_schema_check (PR 7 satellite): the CI
// bench-schema gate is only as strong as this checker, so the checker gets
// its own coverage — parser strictness (NaN/Inf rejection, trailing
// garbage), per-bench required keys, monotone grid axes, and boolean
// invariants.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "bench_schema_check/schema_check.hpp"

namespace blam::benchschema {
namespace {

constexpr const char* kValidIngest = R"({
  "nodes": 1000000,
  "rounds": 4,
  "samples_per_report": 6,
  "reports_ingested": 4000000,
  "bytes_per_trace": 101,
  "wall_s": 2.5,
  "traces_per_s": 1600000.0,
  "samples_per_s": 9600000.0,
  "arena_pool_elements": 21443456,
  "bit_identical": true,
  "batch_sweep": [
    {"batch": 1, "traces_per_s": 1400000.0},
    {"batch": 16, "traces_per_s": 1500000.0},
    {"batch": 4096, "traces_per_s": 1600000.0}
  ],
  "dirty_sweep": [
    {"dirty_fraction": 0.01, "clean_rows": 990000, "recompute_wall_s": 0.03},
    {"dirty_fraction": 0.5, "clean_rows": 500000, "recompute_wall_s": 0.05},
    {"dirty_fraction": 1.0, "clean_rows": 0, "recompute_wall_s": 0.07}
  ]
})";

std::string with_replacement(std::string text, const std::string& from, const std::string& to) {
  const auto pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  text.replace(pos, from.size(), to);
  return text;
}

TEST(BenchSchema, ValidIngestArtifactPasses) {
  EXPECT_TRUE(check_bench_json("BENCH_ingest.json", kValidIngest).empty());
}

TEST(BenchSchema, MissingRequiredKeyFails) {
  const std::string text =
      with_replacement(kValidIngest, "\"traces_per_s\": 1600000.0,", "");
  const auto issues = check_bench_json("BENCH_ingest.json", text);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("traces_per_s"), std::string::npos);
}

TEST(BenchSchema, OverflowToInfinityIsRejected) {
  // 1e999 parses (strtod clamps to inf) but the finite check must veto it.
  const std::string text = with_replacement(kValidIngest, "\"wall_s\": 2.5", "\"wall_s\": 1e999");
  const auto issues = check_bench_json("BENCH_ingest.json", text);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("wall_s"), std::string::npos);
}

TEST(BenchSchema, NanLiteralIsAParseError) {
  EXPECT_THROW(parse_json(R"({"x": NaN})"), std::runtime_error);
  EXPECT_THROW(parse_json(R"({"x": Infinity})"), std::runtime_error);
  // check_bench_json converts the parse error into a violation.
  const std::string text = with_replacement(kValidIngest, "\"wall_s\": 2.5", "\"wall_s\": NaN");
  EXPECT_FALSE(check_bench_json("BENCH_ingest.json", text).empty());
}

TEST(BenchSchema, MalformedJsonAndTrailingDataFail) {
  EXPECT_THROW(parse_json("{\"a\": 1"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": 1} extra"), std::runtime_error);
  EXPECT_THROW(parse_json("{'a': 1}"), std::runtime_error);
  EXPECT_FALSE(check_bench_json("BENCH_ingest.json", "{\"a\": 1} extra").empty());
}

TEST(BenchSchema, NonMonotoneBatchAxisFails) {
  const std::string text =
      with_replacement(kValidIngest, "{\"batch\": 16,", "{\"batch\": 1,");
  const auto issues = check_bench_json("BENCH_ingest.json", text);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("batch"), std::string::npos);
}

TEST(BenchSchema, NonMonotoneDirtyAxisFails) {
  const std::string text =
      with_replacement(kValidIngest, "\"dirty_fraction\": 1.0", "\"dirty_fraction\": 0.25");
  EXPECT_FALSE(check_bench_json("BENCH_ingest.json", text).empty());
}

TEST(BenchSchema, BitIdenticalFalseFails) {
  const std::string text =
      with_replacement(kValidIngest, "\"bit_identical\": true", "\"bit_identical\": false");
  const auto issues = check_bench_json("BENCH_ingest.json", text);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("bit_identical"), std::string::npos);
}

TEST(BenchSchema, FaultGridOrderIsEnforced) {
  const std::string valid = R"({
    "feed_nodes": 50,
    "feed_days": 365,
    "oracle_min_lifespan_years": 4.0,
    "lifespan_within_5pct_up_to_20pct_loss": true,
    "checkpoint_exact": true,
    "cells": [
      {"loss": 0.0, "reorder": 0.0, "corrupt": 0.0, "w_err_avg": 0.0, "w_err_max": 0.0,
       "life_err_pct": 0.0},
      {"loss": 0.0, "reorder": 0.1, "corrupt": 0.0, "w_err_avg": 0.01, "w_err_max": 0.02,
       "life_err_pct": 0.5},
      {"loss": 0.1, "reorder": 0.0, "corrupt": 0.0, "w_err_avg": 0.01, "w_err_max": 0.03,
       "life_err_pct": 0.8}
    ]
  })";
  EXPECT_TRUE(check_bench_json("BENCH_fault.json", valid).empty());

  // Swap the last two cells: (loss, reorder, corrupt) is no longer
  // lexicographically increasing.
  const std::string disordered = with_replacement(
      with_replacement(valid, "{\"loss\": 0.0, \"reorder\": 0.1", "{\"loss\": 0.2, \"reorder\": 0.1"),
      "{\"loss\": 0.1, \"reorder\": 0.0", "{\"loss\": 0.1, \"reorder\": 0.9");
  EXPECT_FALSE(check_bench_json("BENCH_fault.json", disordered).empty());
}

TEST(BenchSchema, ResumeArtifactSchema) {
  const std::string valid = R"({
    "nodes": 48, "gateways": 4, "shards": 4, "days": 0.5,
    "epochs": 12, "kill_epoch": 6,
    "checkpoint_bytes": 250000, "checkpoint_write_s": 0.004,
    "restore_s": 0.006, "fresh_wall_s": 0.09, "resumed_wall_s": 0.05,
    "bit_identical": true
  })";
  EXPECT_TRUE(check_bench_json("BENCH_resume.json", valid).empty());
  // The resume gate is void unless the run actually matched bit for bit.
  EXPECT_FALSE(check_bench_json("BENCH_resume.json",
                                with_replacement(valid, "\"bit_identical\": true",
                                                 "\"bit_identical\": false"))
                   .empty());
  // An empty checkpoint means nothing was captured.
  EXPECT_FALSE(check_bench_json("BENCH_resume.json",
                                with_replacement(valid, "\"checkpoint_bytes\": 250000",
                                                 "\"checkpoint_bytes\": 0"))
                   .empty());
  // Killing at or past the end never tested a resume.
  EXPECT_FALSE(check_bench_json("BENCH_resume.json",
                                with_replacement(valid, "\"kill_epoch\": 6", "\"kill_epoch\": 12"))
                   .empty());
  EXPECT_FALSE(
      check_bench_json("BENCH_resume.json",
                       with_replacement(valid, "\"restore_s\": 0.006, ", ""))
          .empty());
}

TEST(BenchSchema, UnknownBenchFileGetsGenericContract) {
  EXPECT_TRUE(check_bench_json("BENCH_future.json", R"({"anything": 1.0})").empty());
  // ...but still no NaN/Inf and a non-empty object.
  EXPECT_FALSE(check_bench_json("BENCH_future.json", R"({})").empty());
  EXPECT_FALSE(check_bench_json("BENCH_future.json", R"({"x": 1e999})").empty());
  EXPECT_FALSE(check_bench_json("BENCH_future.json", R"([1, 2])").empty());
}

TEST(BenchSchema, ParserHandlesNestingAndEscapes) {
  const JsonValue v = parse_json(R"({"a": [1, {"b": "x\ny"}], "c": null, "d": -2.5e3})");
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "a");
  ASSERT_EQ(v.object[0].second.array.size(), 2u);
  EXPECT_EQ(v.object[0].second.array[1].object[0].second.string, "x\ny");
  EXPECT_EQ(v.object[1].second.kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.object[2].second.number, -2500.0);
}

}  // namespace
}  // namespace blam::benchschema
