// Gateway behaviour exercised through small crafted networks: demodulator
// exhaustion, half-duplex deafness, duplicate re-acknowledgement, and the
// hybrid-storage / protocol interactions that need a live gateway.
#include <gtest/gtest.h>

#include "net/experiment.hpp"
#include "net/network.hpp"

namespace blam {
namespace {

ScenarioConfig base(int nodes, std::uint64_t seed = 31) {
  ScenarioConfig c = lorawan_scenario(nodes, seed);
  c.radius_m = 500.0;  // strong links: losses come only from MAC effects
  return c;
}

TEST(GatewayBehaviour, SingleDemodPathSerializesReceptions) {
  // Many synchronized nodes, one channel, one demodulator: overlapping
  // uplinks beyond the first cannot lock.
  ScenarioConfig c = base(20);
  c.uplink_channels = 1;
  c.gateway_demod_paths = 1;
  c.min_period = Time::from_minutes(16.0);
  c.max_period = Time::from_minutes(16.0);  // all periods identical -> pileups
  const ExperimentResult r = run_scenario(c, Time::from_days(1.0));
  EXPECT_GT(r.gateway.lost_no_demod_path, 0u);
}

TEST(GatewayBehaviour, EightDemodPathsAbsorbTheSameLoad) {
  ScenarioConfig c = base(20);
  c.uplink_channels = 1;
  c.gateway_demod_paths = 8;
  c.min_period = Time::from_minutes(16.0);
  c.max_period = Time::from_minutes(16.0);
  const ExperimentResult r = run_scenario(c, Time::from_days(1.0));
  ScenarioConfig single = c;
  single.gateway_demod_paths = 1;
  const ExperimentResult r1 = run_scenario(single, Time::from_days(1.0));
  EXPECT_LT(r.gateway.lost_no_demod_path, r1.gateway.lost_no_demod_path);
}

TEST(GatewayBehaviour, HalfDuplexLossesAppearUnderAckLoad) {
  ScenarioConfig c = base(40);
  c.uplink_channels = 1;  // every ACK blocks the only uplink channel's band
  const ExperimentResult r = run_scenario(c, Time::from_days(1.0));
  EXPECT_GT(r.gateway.lost_half_duplex, 0u);
}

TEST(GatewayBehaviour, DuplicatesAreReacknowledged) {
  // Heavy ACK contention forces some first-ACK failures; the node
  // retransmits, the gateway re-decodes (duplicate) and must re-ACK, so
  // overall PRR stays high.
  // Eight channels let several uplinks DECODE simultaneously; their ACKs
  // then fight over the single TX chain, RX1 and RX2 both fill up, some
  // ACKs are unschedulable, and the retransmissions arrive as duplicates.
  ScenarioConfig c = base(200);
  c.min_period = Time::from_minutes(16.0);
  c.max_period = Time::from_minutes(18.0);  // dense synchronized pileups
  const ExperimentResult r = run_scenario(c, Time::from_days(1.0));
  EXPECT_GT(r.gateway.acks_unschedulable, 0u);
  EXPECT_GT(r.gateway.duplicates, 0u);
  EXPECT_GT(r.summary.mean_prr, 0.5);
}

TEST(GatewayBehaviour, UnderSensitivityNodesNeverDecode) {
  ScenarioConfig c = base(5);
  c.radius_m = 60000.0;  // 60 km: SF10 cannot close
  c.sf_assignment = SfAssignment::kFixed;
  c.fixed_sf = SpreadingFactor::kSF10;
  // Place all nodes far out by shrinking the inner exclusion: with a uniform
  // disk most of the 5 nodes land beyond any closable distance.
  const ExperimentResult r = run_scenario(c, Time::from_days(0.5));
  EXPECT_GT(r.gateway.lost_under_sensitivity, 0u);
  EXPECT_LT(r.summary.mean_prr, 0.7);
}

TEST(GatewayBehaviour, SupercapAbsorbsTransmissionCycles) {
  // With a supercap holding several transmissions, the battery sees far
  // fewer micro-cycles: cycle aging drops versus the cap-less twin.
  ScenarioConfig without = base(15, 77);
  ScenarioConfig with = without;
  with.supercap_tx_buffer = 6.0;
  const auto trace = build_shared_trace(without);
  const ExperimentResult plain = run_scenario(without, Time::from_days(10.0), trace);
  const ExperimentResult hybrid = run_scenario(with, Time::from_days(10.0), trace);

  double cyc_plain = 0.0;
  double cyc_hybrid = 0.0;
  for (const NodeMetrics& m : plain.nodes) cyc_plain += m.cycle_linear;
  for (const NodeMetrics& m : hybrid.nodes) cyc_hybrid += m.cycle_linear;
  EXPECT_LT(cyc_hybrid, cyc_plain * 0.8);
  // Service quality is not harmed.
  EXPECT_GE(hybrid.summary.mean_prr, plain.summary.mean_prr - 0.01);
}

TEST(GatewayBehaviour, SupercapDoesNotBridgeNights) {
  // A supercap-only-sized theta (tiny battery cap) still fails at night:
  // the cap leaks too fast. This is the paper's argument for keeping the
  // battery and its lifespan-aware MAC.
  ScenarioConfig c = base(10, 78);
  c.policy = PolicyKind::kBlam;
  c.theta = 0.02;  // almost no battery headroom
  c.supercap_tx_buffer = 4.0;
  c.supercap_leak_per_day = 0.9;  // realistic supercap self-discharge
  const ExperimentResult r = run_scenario(c, Time::from_days(5.0));
  EXPECT_LT(r.summary.mean_prr, 0.95);  // night packets drop
}

}  // namespace
}  // namespace blam
