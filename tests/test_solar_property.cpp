// Property sweep over solar-trace seeds: physical invariants every
// synthesized year must satisfy regardless of the weather realization.
#include <gtest/gtest.h>

#include "energy/solar.hpp"

namespace blam {
namespace {

class SolarPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  SolarTrace make_trace() const {
    SolarTraceConfig c;
    c.peak = Power::from_milli_watts(25.0);
    c.seed = static_cast<std::uint64_t>(GetParam()) * 101 + 1;
    return SolarTrace{c};
  }
};

TEST_P(SolarPropertyTest, PowerIsNonNegativeEverywhere) {
  const SolarTrace trace = make_trace();
  for (int day = 0; day < 365; day += 11) {
    for (int hour = 0; hour < 24; hour += 3) {
      const Time t = Time::from_days(day) + Time::from_hours(hour);
      EXPECT_GE(trace.power_at(t).watts(), 0.0) << "day " << day << " hour " << hour;
    }
  }
}

TEST_P(SolarPropertyTest, NightsAreUniversallyDark) {
  const SolarTrace trace = make_trace();
  for (int day = 0; day < 365; day += 7) {
    // 02:00 is inside the night for any day length in [9, 15] h.
    const Time t = Time::from_days(day) + Time::from_hours(2.0);
    EXPECT_DOUBLE_EQ(trace.power_at(t).watts(), 0.0) << "day " << day;
  }
}

TEST_P(SolarPropertyTest, EveryDayHarvestsSomething) {
  const SolarTrace trace = make_trace();
  for (int day = 0; day < 365; ++day) {
    const Energy harvest =
        trace.energy_between(Time::from_days(day), Time::from_days(day + 1));
    EXPECT_GT(harvest.joules(), 0.0) << "day " << day;
  }
}

TEST_P(SolarPropertyTest, IntegralIsMonotoneAndAdditive) {
  const SolarTrace trace = make_trace();
  const Time base = Time::from_days(GetParam() % 300);
  double prev = 0.0;
  for (int h = 1; h <= 48; ++h) {
    const double joules = trace.energy_between(base, base + Time::from_hours(h)).joules();
    EXPECT_GE(joules, prev - 1e-12);
    prev = joules;
  }
  const double whole = trace.energy_between(base, base + Time::from_hours(48.0)).joules();
  const double split = trace.energy_between(base, base + Time::from_hours(17.0)).joules() +
                       trace.energy_between(base + Time::from_hours(17.0),
                                            base + Time::from_hours(48.0)).joules();
  EXPECT_NEAR(whole, split, 1e-9);
}

TEST_P(SolarPropertyTest, SummerOutHarvestsWinterOnAverage) {
  const SolarTrace trace = make_trace();
  const Energy summer = trace.energy_between(Time::from_days(150.0), Time::from_days(210.0));
  const Energy winter = trace.energy_between(Time::from_days(335.0), Time::from_days(365.0)) +
                        trace.energy_between(Time::from_days(0.0), Time::from_days(30.0));
  EXPECT_GT(summer.joules(), winter.joules());
}

TEST_P(SolarPropertyTest, PeakStaysWithinNoiseBand) {
  const SolarTrace trace = make_trace();
  EXPECT_GT(trace.peak().watts(), 0.25 * 0.025);
  EXPECT_LT(trace.peak().watts(), 2.5 * 0.025);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolarPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace blam
