// Multi-gateway deployments ("one or more gateways", paper Sec. II-C):
// every gateway hears every uplink at its own receive power; the network
// server picks the strongest copy and ACKs through that gateway.
#include <gtest/gtest.h>

#include "net/experiment.hpp"
#include "net/network.hpp"

namespace blam {
namespace {

ScenarioConfig scenario(int n_gateways, int nodes = 25, std::uint64_t seed = 17) {
  ScenarioConfig c = lorawan_scenario(nodes, seed);
  c.n_gateways = n_gateways;
  return c;
}

TEST(MultiGateway, ConfigValidation) {
  ScenarioConfig c = scenario(0);
  EXPECT_THROW(Network{c}, std::invalid_argument);
  c = scenario(3);
  c.gateway_ring_fraction = 1.5;
  EXPECT_THROW(Network{c}, std::invalid_argument);
}

TEST(MultiGateway, BuildsRequestedGateways) {
  Network one{scenario(1)};
  EXPECT_EQ(one.gateways().size(), 1u);
  EXPECT_DOUBLE_EQ(one.gateways()[0]->position().x_m, 0.0);

  Network four{scenario(4)};
  EXPECT_EQ(four.gateways().size(), 4u);
  // Ring placement: all at the configured fraction of the radius.
  for (const auto& gw : four.gateways()) {
    EXPECT_NEAR(gw->position().distance_to(Position{0.0, 0.0}), 2500.0, 1.0);
  }
}

TEST(MultiGateway, EveryGatewayHearsEveryAttempt) {
  ScenarioConfig c = scenario(3, 10);
  Network network{c};
  network.run_until(Time::from_days(1.0));
  network.finalize_metrics();
  std::uint64_t attempts = 0;
  for (std::size_t i = 0; i < network.metrics().node_count(); ++i) {
    attempts += network.metrics().node(i).tx_attempts;
  }
  EXPECT_EQ(network.metrics().gateway().arrivals, attempts * 3);
}

TEST(MultiGateway, StillDeliversAndAcks) {
  const ExperimentResult r = run_scenario(scenario(3, 10), Time::from_days(1.0));
  EXPECT_GT(r.summary.mean_prr, 0.95);
  EXPECT_GT(r.gateway.acks_sent, 0u);
}

TEST(MultiGateway, DeterministicAcrossRuns) {
  const ExperimentResult a = run_scenario(scenario(3, 10), Time::from_days(1.0));
  const ExperimentResult b = run_scenario(scenario(3, 10), Time::from_days(1.0));
  EXPECT_EQ(a.events_executed, b.events_executed);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].delivered, b.nodes[i].delivered);
  }
}

TEST(MultiGateway, DiversityHelpsEdgeNodesUnderDistanceBasedSf) {
  // With distance-based SF and a large, shadowed area, gateway diversity
  // lowers the SF mix (closer best-gateway) and cannot hurt PRR.
  auto config_for = [](int gateways) {
    ScenarioConfig c = lorawan_scenario(40, 21);
    c.n_gateways = gateways;
    c.radius_m = 7000.0;
    c.sf_assignment = SfAssignment::kDistanceBased;
    c.path_loss.shadowing_sigma_db = 6.0;
    return c;
  };
  Network single{config_for(1)};
  Network triple{config_for(3)};
  double sf_sum_single = 0.0;
  double sf_sum_triple = 0.0;
  for (const auto& node : single.nodes()) sf_sum_single += sf_value(node->sf());
  for (const auto& node : triple.nodes()) sf_sum_triple += sf_value(node->sf());
  EXPECT_LE(sf_sum_triple, sf_sum_single);
}

TEST(MultiGateway, NodeTracksPerGatewayLosses) {
  Network network{scenario(3, 5)};
  for (const auto& node : network.nodes()) {
    double best = 1e300;
    for (int g = 0; g < 3; ++g) best = std::min(best, node->link_loss_db(g));
    EXPECT_DOUBLE_EQ(best, node->min_link_loss_db());
    EXPECT_THROW((void)node->link_loss_db(3), std::out_of_range);
  }
}

}  // namespace
}  // namespace blam
