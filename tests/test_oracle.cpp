#include "oracle/tdma_scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace blam {
namespace {

Energy J(double j) { return Energy::from_joules(j); }

OracleNodeSpec node(int period, std::vector<double> harvest_j, double tx = 1.0,
                    double initial = 5.0, double cap = 10.0, double w = 0.0) {
  OracleNodeSpec n;
  n.period_slots = period;
  for (double h : harvest_j) n.harvest.push_back(J(h));
  n.tx_cost = J(tx);
  n.initial = J(initial);
  n.storage_cap = J(cap);
  n.w_u = w;
  return n;
}

class OracleTest : public ::testing::Test {
 protected:
  LinearUtility utility_;
  TdmaScheduler scheduler_;

  OracleConfig config(int horizon, int omega = 8) {
    OracleConfig c;
    c.horizon_slots = horizon;
    c.omega = omega;
    c.utility = &utility_;
    return c;
  }
};

TEST_F(OracleTest, ValidatesInput) {
  EXPECT_THROW(scheduler_.schedule(config(0), {}), std::invalid_argument);
  OracleConfig c = config(4);
  c.utility = nullptr;
  EXPECT_THROW(scheduler_.schedule(c, {}), std::invalid_argument);
  EXPECT_THROW(scheduler_.schedule(config(4), {node(2, {1.0, 1.0})}), std::invalid_argument);
  EXPECT_THROW(scheduler_.schedule(config(4), {node(0, {1, 1, 1, 1})}), std::invalid_argument);
}

TEST_F(OracleTest, FreshNodeTransmitsImmediately) {
  const auto r = scheduler_.schedule(config(4), {node(2, {1, 1, 1, 1})});
  ASSERT_EQ(r.assignments.size(), 2u);  // two full periods
  EXPECT_EQ(r.assignments[0].slot, 0);
  EXPECT_EQ(r.assignments[1].slot, 2);
  EXPECT_DOUBLE_EQ(r.node_utility[0], 1.0);
  EXPECT_EQ(r.node_drops[0], 0);
}

TEST_F(OracleTest, DegradedNodeChasesHarvest) {
  // w_u = 1, harvest only in slot 1 of each 2-slot period.
  auto n = node(2, {0.0, 2.0, 0.0, 2.0}, 1.0, 5.0, 10.0, 1.0);
  const auto r = scheduler_.schedule(config(4), {n});
  EXPECT_EQ(r.assignments[0].slot, 1);
  EXPECT_EQ(r.assignments[1].slot, 3);
}

TEST_F(OracleTest, SlotCapacityConstraint) {
  // Two identical fresh nodes, omega = 1: both want slot 0; only one gets
  // it, the other takes slot 1.
  const auto r = scheduler_.schedule(config(2, /*omega=*/1),
                                     {node(2, {1, 1}), node(2, {1, 1})});
  ASSERT_EQ(r.assignments.size(), 2u);
  EXPECT_NE(r.assignments[0].slot, r.assignments[1].slot);
  EXPECT_EQ(r.slot_load[0], 1);
  EXPECT_EQ(r.slot_load[1], 1);
}

TEST_F(OracleTest, MostDegradedPicksFirst) {
  // Both nodes want slot 1 (the harvest slot); the more degraded node must
  // win it under omega = 1.
  auto fresh = node(2, {0.0, 2.0}, 1.0, 5.0, 10.0, 0.3);
  auto worn = node(2, {0.0, 2.0}, 1.0, 5.0, 10.0, 1.0);
  const auto r = scheduler_.schedule(config(2, /*omega=*/1), {fresh, worn});
  int worn_slot = -1;
  for (const auto& a : r.assignments) {
    if (a.node == 1) worn_slot = a.slot;
  }
  EXPECT_EQ(worn_slot, 1);
}

TEST_F(OracleTest, EnergyInfeasiblePacketDropped) {
  // No harvest, empty battery: nothing can be scheduled.
  auto n = node(2, {0.0, 0.0, 0.0, 0.0}, 1.0, /*initial=*/0.0);
  const auto r = scheduler_.schedule(config(4), {n});
  EXPECT_EQ(r.node_drops[0], 2);
  for (const auto& a : r.assignments) EXPECT_EQ(a.slot, -1);
}

TEST_F(OracleTest, BatteryStateCarriesAcrossPeriods) {
  // 0.6 J harvest per slot, 1 J cost, battery empty: period 1 accumulates
  // 1.2 J by its second slot (feasible, pays 1 J, carries 0.2 J); period 2
  // then reaches 0.2 + 0.6 = 0.8 at slot 2 (still infeasible) and 1.4 at
  // slot 3.
  auto n = node(2, {0.6, 0.6, 0.6, 0.6}, 1.0, 0.0, 10.0, 0.0);
  const auto r = scheduler_.schedule(config(4), {n});
  EXPECT_EQ(r.assignments[0].slot, 1);
  EXPECT_EQ(r.assignments[1].slot, 3);
}

TEST_F(OracleTest, StorageCapBindsMeanSoc) {
  auto capped = node(4, {2, 2, 2, 2}, 1.0, 5.0, /*cap=*/2.0);
  auto uncapped = node(4, {2, 2, 2, 2}, 1.0, 5.0, /*cap=*/10.0);
  const auto r = scheduler_.schedule(config(4), {capped, uncapped});
  EXPECT_LE(r.node_mean_soc[0], 1.0 + 1e-12);
  EXPECT_GT(r.node_mean_soc[1], 0.0);
}

TEST_F(OracleTest, TrailingPartialPeriodDeferred) {
  // Horizon 5, period 2: packets at slots 0 and 2; the one at 4 has no
  // full period inside the horizon -> deferred (paper constraint 10).
  const auto r = scheduler_.schedule(config(5), {node(2, {1, 1, 1, 1, 1})});
  EXPECT_EQ(r.assignments.size(), 2u);
}

TEST_F(OracleTest, HigherOmegaNeverHurtsUtility) {
  std::vector<OracleNodeSpec> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back(node(3, {1, 1, 1, 1, 1, 1}));
  const auto tight = scheduler_.schedule(config(6, 1), nodes);
  const auto loose = scheduler_.schedule(config(6, 8), nodes);
  double tight_sum = 0.0;
  double loose_sum = 0.0;
  for (std::size_t u = 0; u < nodes.size(); ++u) {
    tight_sum += tight.node_utility[u];
    loose_sum += loose.node_utility[u];
  }
  EXPECT_GE(loose_sum, tight_sum);
}

}  // namespace
}  // namespace blam
