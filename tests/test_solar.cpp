#include "energy/solar.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

namespace blam {
namespace {

SolarTraceConfig small_config() {
  SolarTraceConfig c;
  c.peak = Power::from_milli_watts(10.0);
  c.seed = 7;
  return c;
}

TEST(SolarTrace, ValidatesConfig) {
  SolarTraceConfig c = small_config();
  c.peak = Power::zero();
  EXPECT_THROW(SolarTrace{c}, std::invalid_argument);
  c = small_config();
  c.winter_summer_ratio = 0.0;
  EXPECT_THROW(SolarTrace{c}, std::invalid_argument);
  c = small_config();
  c.min_day_hours = 20.0;
  c.max_day_hours = 10.0;
  EXPECT_THROW(SolarTrace{c}, std::invalid_argument);
}

TEST(SolarTrace, YearLongAtMinuteResolution) {
  const SolarTrace trace{small_config()};
  EXPECT_EQ(trace.samples(), 365u * 24u * 60u);
  EXPECT_EQ(trace.period(), Time::from_days(365.0));
}

TEST(SolarTrace, NightIsDark) {
  const SolarTrace trace{small_config()};
  for (int day : {0, 100, 200, 300}) {
    // Local midnight-ish.
    const Time t = Time::from_days(day) + Time::from_hours(0.5);
    EXPECT_DOUBLE_EQ(trace.power_at(t).watts(), 0.0) << "day " << day;
  }
}

TEST(SolarTrace, MiddayGenerates) {
  const SolarTrace trace{small_config()};
  int sunny_days = 0;
  for (int day = 0; day < 365; ++day) {
    const Time noon = Time::from_days(day) + Time::from_hours(12.0);
    if (trace.power_at(noon).watts() > 0.0) ++sunny_days;
  }
  EXPECT_EQ(sunny_days, 365);
}

TEST(SolarTrace, PeakNearConfiguredPeak) {
  const SolarTrace trace{small_config()};
  const double peak = trace.peak().watts();
  EXPECT_GT(peak, 0.5 * 0.010);
  EXPECT_LT(peak, 2.0 * 0.010);  // intraday noise can exceed nominal a bit
}

TEST(SolarTrace, SummerBeatsWinter) {
  const SolarTrace trace{small_config()};
  // Compare total energy across a mid-summer and a mid-winter month.
  const Energy summer =
      trace.energy_between(Time::from_days(160.0), Time::from_days(190.0));
  const Energy winter = trace.energy_between(Time::from_days(0.0), Time::from_days(30.0));
  EXPECT_GT(summer.joules(), winter.joules() * 1.5);
}

TEST(SolarTrace, EnergyBetweenMatchesSampleSum) {
  const SolarTrace trace{small_config()};
  // Integrate one specific day by minute samples and compare with the O(1)
  // cumulative query.
  const Time start = Time::from_days(120.0);
  double manual = 0.0;
  for (int m = 0; m < 24 * 60; ++m) {
    manual += trace.power_at(start + Time::from_minutes(m)).watts() * 60.0;
  }
  const Energy fast = trace.energy_between(start, start + Time::from_days(1.0));
  EXPECT_NEAR(fast.joules(), manual, manual * 1e-9 + 1e-12);
}

TEST(SolarTrace, EnergyIsAdditive) {
  const SolarTrace trace{small_config()};
  const Time a = Time::from_days(10.0);
  const Time b = Time::from_days(10.5);
  const Time c = Time::from_days(11.25);
  const double whole = trace.energy_between(a, c).joules();
  const double split = trace.energy_between(a, b).joules() + trace.energy_between(b, c).joules();
  EXPECT_NEAR(whole, split, 1e-9);
}

TEST(SolarTrace, SubMinuteIntervalsInterpolate) {
  const SolarTrace trace{small_config()};
  const Time noon = Time::from_days(180.0) + Time::from_hours(12.0);
  const Energy half_min = trace.energy_between(noon, noon + Time::from_seconds(30.0));
  const double expected = trace.power_at(noon).watts() * 30.0;
  EXPECT_NEAR(half_min.joules(), expected, expected * 0.01 + 1e-12);
}

TEST(SolarTrace, WrapsAcrossYears) {
  const SolarTrace trace{small_config()};
  const Time one_year = trace.period();
  const Time t = Time::from_days(42.0) + Time::from_hours(12.0);
  EXPECT_DOUBLE_EQ(trace.power_at(t).watts(), trace.power_at(t + one_year).watts());
  EXPECT_NEAR(trace.energy_between(Time::zero(), one_year).joules(),
              trace.energy_between(one_year, one_year * 2).joules(), 1e-6);
  // A 2.5-year window = 2 * year + half-year.
  const double long_window =
      trace.energy_between(Time::zero(), one_year * 2 + Time::from_days(182.0)).joules();
  const double composed = 2.0 * trace.energy_between(Time::zero(), one_year).joules() +
                          trace.energy_between(Time::zero(), Time::from_days(182.0)).joules();
  EXPECT_NEAR(long_window, composed, composed * 1e-12 + 1e-9);
}

TEST(SolarTrace, RejectsReversedInterval) {
  const SolarTrace trace{small_config()};
  EXPECT_THROW((void)trace.energy_between(Time::from_days(2.0), Time::from_days(1.0)),
               std::invalid_argument);
}

TEST(SolarTrace, SameSeedSameTrace) {
  const SolarTrace a{small_config()};
  const SolarTrace b{small_config()};
  for (int d = 0; d < 365; d += 30) {
    const Time noon = Time::from_days(d) + Time::from_hours(12.0);
    EXPECT_DOUBLE_EQ(a.power_at(noon).watts(), b.power_at(noon).watts());
  }
}

TEST(SolarTrace, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "solar_test.csv";
  {
    std::ofstream out{path};
    out << "minute,watts\n";
    for (int i = 0; i < 120; ++i) out << i << "," << (i < 60 ? 0.0 : 0.02) << "\n";
  }
  const SolarTrace trace = SolarTrace::from_csv(path, Power::from_milli_watts(40.0));
  EXPECT_EQ(trace.samples(), 120u);
  // Scaled so the max (0.02) becomes 40 mW.
  EXPECT_NEAR(trace.power_at(Time::from_minutes(90.0)).watts(), 0.040, 1e-12);
  EXPECT_DOUBLE_EQ(trace.power_at(Time::from_minutes(10.0)).watts(), 0.0);
  std::remove(path.c_str());
}

TEST(SolarTrace, CsvRejectsMissingOrEmpty) {
  EXPECT_THROW(SolarTrace::from_csv("/nonexistent/file.csv", Power::from_watts(1.0)),
               std::runtime_error);
  const std::string path = ::testing::TempDir() + "solar_empty.csv";
  { std::ofstream out{path}; out << "header_only\n"; }
  EXPECT_THROW(SolarTrace::from_csv(path, Power::from_watts(1.0)), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Harvester, ScalesAndJitters) {
  const SolarTrace trace{small_config()};
  Harvester h{trace, 2.0};
  const Time noon = Time::from_days(180.0) + Time::from_hours(12.0);
  EXPECT_DOUBLE_EQ(h.power_at(noon).watts(), trace.power_at(noon).watts() * 2.0);

  Rng rng{3};
  h.resample_jitter(rng, 0.3);
  EXPECT_GE(h.jitter(), 0.7);
  EXPECT_LE(h.jitter(), 1.0);
  EXPECT_DOUBLE_EQ(h.power_at(noon).watts(), trace.power_at(noon).watts() * 2.0 * h.jitter());
  EXPECT_NEAR(h.energy_between(noon, noon + Time::from_minutes(5.0)).joules(),
              trace.energy_between(noon, noon + Time::from_minutes(5.0)).joules() * 2.0 * h.jitter(),
              1e-12);
}

TEST(Harvester, RejectsNonPositiveScale) {
  const SolarTrace trace{small_config()};
  EXPECT_THROW(Harvester(trace, 0.0), std::invalid_argument);
}

TEST(SolarTrace, PeakMatchesMaxSample) {
  const SolarTrace trace{small_config()};
  double max_w = 0.0;
  for (Time t = Time::zero(); t < trace.period(); t = t + Time::from_minutes(1.0)) {
    max_w = std::max(max_w, trace.power_at(t).watts());
  }
  EXPECT_DOUBLE_EQ(trace.peak().watts(), max_w);
}

TEST(SolarTrace, BatchedWindowEnergiesAreBitIdentical) {
  // The batched walk reuses each window boundary's cumulative value; the
  // contract is EXACT equality with per-window energy_between, including
  // windows straddling and landing exactly on the year wrap.
  const SolarTrace trace{small_config()};
  const Time window = Time::from_minutes(7.5);
  const std::vector<Time> starts = {
      Time::zero(),
      Time::from_days(100.0) + Time::from_hours(9.0) + Time::from_seconds(13.0),
      trace.period() - Time::from_minutes(30.0),        // sweep crosses the wrap
      trace.period() - window * std::int64_t{4},        // boundary lands on the wrap
      trace.period() * std::int64_t{3} - Time::from_hours(1.0),  // later years
  };
  std::vector<Energy> batched(64);
  for (const Time start : starts) {
    trace.energy_windows(start, window, 64, batched.data());
    for (int i = 0; i < 64; ++i) {
      const Time t0 = start + window * std::int64_t{i};
      const Time t1 = start + window * std::int64_t{i + 1};
      ASSERT_EQ(batched[static_cast<std::size_t>(i)].joules(),
                trace.energy_between(t0, t1).joules())
          << "start=" << start.seconds() << "s window " << i;
    }
  }
}

TEST(SolarTrace, BatchedWindowsLongerThanPeriod) {
  const SolarTrace trace{small_config()};
  const Time window = trace.period() + Time::from_hours(5.0);
  std::vector<Energy> batched(3);
  const Time start = Time::from_days(2.0);
  trace.energy_windows(start, window, 3, batched.data());
  for (int i = 0; i < 3; ++i) {
    const Time t0 = start + window * std::int64_t{i};
    const Time t1 = start + window * std::int64_t{i + 1};
    EXPECT_EQ(batched[static_cast<std::size_t>(i)].joules(),
              trace.energy_between(t0, t1).joules());
  }
}

TEST(SolarTrace, BatchedWindowsRejectNonPositiveWindow) {
  const SolarTrace trace{small_config()};
  Energy out[1];
  EXPECT_THROW(trace.energy_windows(Time::zero(), Time::zero(), 1, out), std::invalid_argument);
}

}  // namespace
}  // namespace blam
