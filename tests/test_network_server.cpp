#include "net/network_server.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

UplinkFrame frame(std::uint32_t node, std::uint32_t seq, std::vector<SocSample> report = {}) {
  UplinkFrame f;
  f.node_id = node;
  f.seq = seq;
  f.soc_report = std::move(report);
  if (!f.soc_report.empty()) {
    // Mirror Node::build_frame: one report generation per packet, stamped
    // with the simulator-level checksum.
    f.report_seq = static_cast<std::uint16_t>(seq);
    f.report_crc = report_checksum(f.report_seq, f.soc_report);
  }
  return f;
}

class NetworkServerTest : public ::testing::Test {
 protected:
  Simulator sim_;
  DegradationModel model_{};
  NetworkServer server_{sim_, model_, 25.0, Time::from_days(1.0)};
};

TEST_F(NetworkServerTest, AcceptsNewAndRejectsDuplicates) {
  EXPECT_TRUE(server_.on_uplink(frame(1, 1)));
  EXPECT_FALSE(server_.on_uplink(frame(1, 1)));  // retransmission duplicate
  EXPECT_TRUE(server_.on_uplink(frame(1, 2)));
  EXPECT_FALSE(server_.on_uplink(frame(1, 1)));  // stale
  EXPECT_TRUE(server_.on_uplink(frame(2, 1)));   // other node independent
}

TEST_F(NetworkServerTest, NoDisseminationBeforeFirstRecompute) {
  server_.register_node(1);
  EXPECT_FALSE(server_.dissemination_ready());
  EXPECT_DOUBLE_EQ(server_.w_for(1), 0.0);
}

TEST_F(NetworkServerTest, DailyRecomputeEnablesDissemination) {
  server_.register_node(1);
  server_.register_node(2);
  std::vector<SocSample> high;
  std::vector<SocSample> low;
  for (int d = 0; d <= 5; ++d) {
    high.push_back({Time::from_hours(4 * d), 0.95});
    low.push_back({Time::from_hours(4 * d), 0.20});
  }
  EXPECT_TRUE(server_.on_uplink(frame(1, 1, high)));
  EXPECT_TRUE(server_.on_uplink(frame(2, 1, low)));

  sim_.run_until(Time::from_days(1.5));  // first daily recompute fires
  EXPECT_TRUE(server_.dissemination_ready());
  EXPECT_DOUBLE_EQ(server_.w_for(1), 1.0);  // most degraded
  EXPECT_GT(server_.w_for(2), 0.0);
  EXPECT_LT(server_.w_for(2), 1.0);
}

TEST_F(NetworkServerTest, DuplicateSocReportsAreNotDoubleIngested) {
  std::vector<SocSample> report{{Time::from_hours(1.0), 0.5}, {Time::from_hours(2.0), 0.4}};
  EXPECT_TRUE(server_.on_uplink(frame(1, 1, report)));
  // The duplicate carries the same samples; re-ingesting would throw
  // (time went backwards) or corrupt the trace. It must be ignored.
  EXPECT_FALSE(server_.on_uplink(frame(1, 1, report)));
  std::vector<SocSample> next{{Time::from_hours(3.0), 0.6}};
  EXPECT_TRUE(server_.on_uplink(frame(1, 2, next)));
}

TEST_F(NetworkServerTest, ServiceAccessors) {
  server_.register_node(7);
  EXPECT_EQ(server_.service().node_count(), 1u);
}

}  // namespace
}  // namespace blam
