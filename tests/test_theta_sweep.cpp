// Parameterized theta sweep: the protocol's central dial, swept end-to-end
// over small paired networks (shared weather). Checks the monotone
// relationships the paper's Figs. 5-6 rest on.
#include <gtest/gtest.h>

#include <map>

#include "net/experiment.hpp"

namespace blam {
namespace {

// One shared run per theta, computed lazily and cached across tests.
const std::map<int, ExperimentResult>& sweep() {
  static const std::map<int, ExperimentResult> results = [] {
    const int nodes = 25;
    const std::uint64_t seed = 91;
    const auto trace = build_shared_trace(lorawan_scenario(nodes, seed));
    const Time duration = Time::from_days(12.0);
    std::map<int, ExperimentResult> out;
    for (int pct : {5, 20, 50, 80, 100}) {
      out.emplace(pct, run_scenario(blam_scenario(nodes, pct / 100.0, seed), duration, trace));
    }
    return out;
  }();
  return results;
}

TEST(ThetaSweep, MeanSocIsMonotoneInTheta) {
  double prev = -1.0;
  for (const auto& [pct, r] : sweep()) {
    double mean_soc = 0.0;
    for (const NodeMetrics& m : r.nodes) mean_soc += m.mean_soc;
    mean_soc /= static_cast<double>(r.nodes.size());
    EXPECT_GE(mean_soc, prev - 0.02) << "theta " << pct;  // small tolerance
    // The cap binds: mean SoC cannot exceed theta.
    EXPECT_LE(mean_soc, pct / 100.0 + 1e-9) << "theta " << pct;
    prev = mean_soc;
  }
}

TEST(ThetaSweep, CalendarAgingGrowsWithTheta) {
  double prev = -1.0;
  for (const auto& [pct, r] : sweep()) {
    double cal = 0.0;
    for (const NodeMetrics& m : r.nodes) cal += m.calendar_linear;
    if (pct >= 20) {  // H-5's night drops distort its observed trace
      EXPECT_GE(cal, prev - 1e-6) << "theta " << pct;
    }
    prev = cal;
  }
}

TEST(ThetaSweep, TinyThetaPaysInPrr) {
  const double prr_5 = sweep().at(5).summary.mean_prr;
  const double prr_50 = sweep().at(50).summary.mean_prr;
  const double prr_100 = sweep().at(100).summary.mean_prr;
  EXPECT_LT(prr_5, prr_50);
  EXPECT_NEAR(prr_50, prr_100, 0.02);
  EXPECT_GT(prr_50, 0.95);
}

TEST(ThetaSweep, DegradationOrderingMatchesFig5) {
  // H-5 <= H-50 <= H-100 in mean degradation (paper Fig. 5c).
  const double d5 = sweep().at(5).summary.degradation_box.mean;
  const double d50 = sweep().at(50).summary.degradation_box.mean;
  const double d100 = sweep().at(100).summary.degradation_box.mean;
  EXPECT_LE(d5, d50 + 1e-9);
  EXPECT_LE(d50, d100 + 1e-9);
}

TEST(ThetaSweep, EveryThetaKeepsTheCapInvariant) {
  for (const auto& [pct, r] : sweep()) {
    for (const NodeMetrics& m : r.nodes) {
      EXPECT_LE(m.final_soc, pct / 100.0 + 1e-9) << "theta " << pct;
    }
  }
}

}  // namespace
}  // namespace blam
