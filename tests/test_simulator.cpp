#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace blam {
namespace {

TEST(Simulator, RunsEventsAndAdvancesClock) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(Time::from_seconds(2.0), [&] { times.push_back(sim.now().seconds()); });
  sim.schedule_at(Time::from_seconds(1.0), [&] { times.push_back(sim.now().seconds()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), Time::from_seconds(2.0));
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Time fired{};
  sim.schedule_at(Time::from_seconds(5.0), [&] {
    sim.schedule_in(Time::from_seconds(3.0), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, Time::from_seconds(8.0));
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(Time::from_seconds(10.0), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(Time::from_seconds(5.0), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(Time::from_seconds(-1.0), [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndSetsClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::from_seconds(1.0), [&] { ++fired; });
  sim.schedule_at(Time::from_seconds(10.0), [&] { ++fired; });
  sim.run_until(Time::from_seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::from_seconds(5.0));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(Time::from_seconds(20.0));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Time::from_seconds(20.0));
}

TEST(Simulator, EventAtBoundaryIncluded) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(Time::from_seconds(5.0), [&] { fired = true; });
  sim.run_until(Time::from_seconds(5.0));
  EXPECT_TRUE(fired);
}

TEST(Simulator, StopBreaksRunLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::from_seconds(1.0), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(Time::from_seconds(2.0), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule_at(Time::from_seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CallbackCanScheduleAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Time::from_seconds(1.0), [&] {
    order.push_back(1);
    sim.schedule_at(sim.now(), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(PeriodicProcess, TicksAtFixedPeriod) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicProcess proc{sim, Time::from_seconds(1.0), Time::from_seconds(2.0),
                       [&] { ticks.push_back(sim.now().seconds()); }};
  sim.run_until(Time::from_seconds(7.5));
  EXPECT_EQ(ticks, (std::vector<double>{1.0, 3.0, 5.0, 7.0}));
}

TEST(PeriodicProcess, CancelStopsTicks) {
  Simulator sim;
  int ticks = 0;
  PeriodicProcess proc{sim, Time::from_seconds(1.0), Time::from_seconds(1.0), [&] { ++ticks; }};
  sim.run_until(Time::from_seconds(2.5));
  proc.cancel();
  sim.run_until(Time::from_seconds(10.0));
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicProcess, DestructionCancels) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicProcess proc{sim, Time::from_seconds(1.0), Time::from_seconds(1.0), [&] { ++ticks; }};
  }
  sim.run_until(Time::from_seconds(5.0));
  EXPECT_EQ(ticks, 0);
}

TEST(PeriodicProcess, RejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(PeriodicProcess(sim, Time::zero(), Time::zero(), [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace blam
