// Behavioural tests of the injected faults and the protocol's graceful
// degradation: droughts cause brownouts that clear after the sky returns,
// gateway outages suppress delivery and leave recovery-time samples,
// ACK-loss bursts force retransmissions, crashes wipe volatile state, the
// stale-feedback ramp is bounded, and the ACK-failure backoff saves the
// energy that repeated full ladders would burn into a dead gateway.
#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "mac/blam_mac.hpp"
#include "net/experiment.hpp"
#include "net/network.hpp"

namespace blam {
namespace {

ScenarioConfig base_config(PolicyKind policy, double theta, int nodes, std::uint64_t seed) {
  ScenarioConfig c;
  c.policy = policy;
  c.theta = theta;
  c.n_nodes = nodes;
  c.seed = seed;
  c.label = c.policy_label();
  return c;
}

struct PhaseCounts {
  std::uint64_t delivered{0};
  std::uint64_t brownouts{0};
  std::uint64_t generated{0};
};

PhaseCounts totals(const Network& network) {
  PhaseCounts t;
  for (const auto& node : network.nodes()) {
    const NodeMetrics& m = network.metrics().node(node->id());
    t.delivered += m.delivered;
    t.brownouts += m.brownouts;
    t.generated += m.generated;
  }
  return t;
}

PhaseCounts delta(const PhaseCounts& now, const PhaseCounts& before) {
  return PhaseCounts{now.delivered - before.delivered, now.brownouts - before.brownouts,
                     now.generated - before.generated};
}

TEST(FaultInjection, DroughtCausesBrownoutsThenRecovery) {
  // Half-day battery + a 2-day drought at 2% harvest: nodes keep running on
  // the battery for a few hours, brown out, and come back with the sun.
  ScenarioConfig c = base_config(PolicyKind::kLorawan, 1.0, 8, 13);
  c.battery_days = 0.5;
  c.faults.drought_start = Time::from_days(2.0);
  c.faults.drought_duration = Time::from_days(2.0);
  c.faults.drought_scale = 0.02;

  Network network{c};
  network.run_until(Time::from_days(2.0));
  const PhaseCounts pre = totals(network);
  network.run_until(Time::from_days(4.0));
  const PhaseCounts at_drought_end = totals(network);
  network.run_until(Time::from_days(6.0));
  const PhaseCounts at_end = totals(network);

  const PhaseCounts during = delta(at_drought_end, pre);
  const PhaseCounts post = delta(at_end, at_drought_end);

  // Same-length phases: generation continues, delivery collapses during the
  // drought and comes back after it.
  EXPECT_GT(during.generated, 0u);
  EXPECT_GT(during.brownouts, pre.brownouts + 10);
  EXPECT_LT(during.delivered, (pre.delivered * 7) / 10);
  EXPECT_GT(post.delivered, during.delivered);
  EXPECT_LT(post.brownouts, during.brownouts);
}

TEST(FaultInjection, OutageSuppressesDeliveryAndLeavesRecoverySamples) {
  ScenarioConfig c = base_config(PolicyKind::kBlam, 0.5, 10, 29);
  c.faults.outage_daily_start = Time::from_hours(8.0);
  c.faults.outage_daily_duration = Time::from_hours(6.0);

  const ExperimentResult r = run_scenario(c, Time::from_days(3.0));

  // 3 complete daily windows of 6 h.
  EXPECT_DOUBLE_EQ(r.summary.total_outage_s, 3.0 * 6.0 * 3600.0);
  EXPECT_GT(r.gateway.lost_outage, 0u);
  EXPECT_GT(r.summary.lost_in_outage, 0u);

  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t recovery_samples = 0;
  for (const NodeMetrics& m : r.nodes) {
    generated += m.generated;
    delivered += m.delivered;
    recovery_samples += m.recovery_s.count();
  }
  // A quarter of every day is dark; delivery must be visibly below 100% but
  // the network keeps working the rest of the day.
  EXPECT_LT(delivered, generated);
  EXPECT_GT(static_cast<double>(delivered), 0.5 * static_cast<double>(generated));
  // Every node sees the outage end and delivers again afterwards.
  EXPECT_GT(recovery_samples, 0u);
  EXPECT_GT(r.summary.mean_recovery_s, 0.0);
  EXPECT_GE(r.summary.max_recovery_s, r.summary.mean_recovery_s);
}

TEST(FaultInjection, AckLossBurstsForceRetransmissions) {
  ScenarioConfig plain = base_config(PolicyKind::kLorawan, 1.0, 10, 31);
  ScenarioConfig bursty = plain;
  bursty.faults.ack_loss_bad = 1.0;
  bursty.faults.ack_good_mean = Time::from_hours(2.0);
  bursty.faults.ack_bad_mean = Time::from_minutes(30.0);

  const ExperimentResult a = run_scenario(plain, Time::from_days(2.0));
  const ExperimentResult b = run_scenario(bursty, Time::from_days(2.0));

  EXPECT_GT(b.gateway.acks_lost_channel, 0u);
  EXPECT_GT(b.summary.mean_retx, a.summary.mean_retx);
  // A retransmission decoded after its ACK was lost is a duplicate.
  EXPECT_GT(b.gateway.duplicates, a.gateway.duplicates);
}

TEST(FaultInjection, CrashesWipeStateAndDropRebootPackets) {
  ScenarioConfig c = base_config(PolicyKind::kBlam, 0.5, 10, 37);
  c.faults.crash_per_year = 2000.0;  // ~5.5 per node-day: an accelerated test
  c.faults.reboot_duration = Time::from_minutes(45.0);

  const ExperimentResult r = run_scenario(c, Time::from_days(4.0));
  std::uint64_t crashes = 0;
  std::uint64_t reboot_drops = 0;
  std::uint64_t delivered = 0;
  for (const NodeMetrics& m : r.nodes) {
    crashes += m.crashes;
    reboot_drops += m.reboot_drops;
    delivered += m.delivered;
  }
  EXPECT_GT(crashes, 20u);
  EXPECT_EQ(r.summary.crashes, crashes);
  // 45-minute reboots against 16-60 minute periods: some period boundaries
  // land inside a reboot and their packets are never transmitted.
  EXPECT_GT(reboot_drops, 0u);
  // The network survives: estimators re-warm after every wipe.
  EXPECT_GT(delivered, 0u);
}

TEST(FaultInjection, StaleFeedbackRampIsBoundedAndMonotone) {
  WindowContext ctx;
  ctx.w_u = 0.3;
  ctx.stale_feedback_k = 3.0;

  ctx.w_u_age_periods = 0.0;
  EXPECT_DOUBLE_EQ(BlamMac::effective_w_u(ctx), 0.3);  // fresh
  ctx.w_u_age_periods = 3.0;
  EXPECT_DOUBLE_EQ(BlamMac::effective_w_u(ctx), 0.3);  // at the threshold
  ctx.w_u_age_periods = 4.5;
  EXPECT_DOUBLE_EQ(BlamMac::effective_w_u(ctx), 0.65);  // halfway up the ramp
  ctx.w_u_age_periods = 6.0;
  EXPECT_DOUBLE_EQ(BlamMac::effective_w_u(ctx), 1.0);  // fully conservative
  ctx.w_u_age_periods = 1000.0;
  EXPECT_DOUBLE_EQ(BlamMac::effective_w_u(ctx), 1.0);  // bounded

  // Monotone in age.
  double prev = 0.0;
  for (double age = 0.0; age <= 10.0; age += 0.25) {
    ctx.w_u_age_periods = age;
    const double w = BlamMac::effective_w_u(ctx);
    EXPECT_GE(w, prev);
    EXPECT_LE(w, 1.0);
    prev = w;
  }

  // Disabled knob: identity at any age.
  ctx.stale_feedback_k = 0.0;
  ctx.w_u_age_periods = 500.0;
  EXPECT_DOUBLE_EQ(BlamMac::effective_w_u(ctx), 0.3);
}

TEST(FaultInjection, BackoffCutsWastedLaddersDuringOutages) {
  // Half of every day the gateway is dark. Without backoff every packet in
  // the window burns the full 8-transmission ladder; with it the budget
  // collapses toward one probe per period until an ACK comes back.
  ScenarioConfig plain = base_config(PolicyKind::kBlam, 0.5, 10, 41);
  plain.faults.outage_daily_start = Time::from_hours(6.0);
  plain.faults.outage_daily_duration = Time::from_hours(12.0);
  ScenarioConfig backoff = plain;
  backoff.ack_failure_backoff = true;

  const ExperimentResult a = run_scenario(plain, Time::from_days(4.0));
  const ExperimentResult b = run_scenario(backoff, Time::from_days(4.0));

  std::uint64_t attempts_plain = 0;
  std::uint64_t attempts_backoff = 0;
  std::uint64_t delivered_plain = 0;
  std::uint64_t delivered_backoff = 0;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    attempts_plain += a.nodes[i].tx_attempts;
    attempts_backoff += b.nodes[i].tx_attempts;
    delivered_plain += a.nodes[i].delivered;
    delivered_backoff += b.nodes[i].delivered;
  }
  EXPECT_LT(attempts_backoff, attempts_plain);
  EXPECT_LT(b.summary.total_tx_energy.joules(), a.summary.total_tx_energy.joules());
  // The single probe per period still detects recovery: delivery stays in
  // the same ballpark (the probe itself delivers once the gateway is back).
  EXPECT_GT(static_cast<double>(delivered_backoff),
            0.8 * static_cast<double>(delivered_plain));
}

}  // namespace
}  // namespace blam
