#include "core/degradation_service.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace blam {
namespace {

std::vector<SocSample> flat_trace(double soc, int days) {
  std::vector<SocSample> samples;
  for (int d = 0; d <= days; ++d) samples.push_back({Time::from_days(d), soc});
  return samples;
}

TEST(DegradationService, UnknownNodeThrows) {
  DegradationService svc{DegradationModel{}, 25.0};
  EXPECT_THROW((void)svc.normalized_degradation(1), std::out_of_range);
  EXPECT_THROW((void)svc.degradation(1), std::out_of_range);
}

TEST(DegradationService, RegisterIsIdempotent) {
  DegradationService svc{DegradationModel{}, 25.0};
  svc.register_node(1);
  svc.ingest(1, flat_trace(0.8, 10));
  svc.register_node(1);  // must not reset the tracker
  svc.recompute(Time::from_days(10.0));
  EXPECT_GT(svc.degradation(1), 0.0);
  EXPECT_EQ(svc.node_count(), 1u);
}

TEST(DegradationService, FreshNodeHasZeroW) {
  DegradationService svc{DegradationModel{}, 25.0};
  svc.register_node(1);
  svc.recompute(Time::zero());
  EXPECT_DOUBLE_EQ(svc.normalized_degradation(1), 0.0);
}

TEST(DegradationService, NormalizationAgainstWorstNode) {
  DegradationService svc{DegradationModel{}, 25.0};
  svc.ingest(1, flat_trace(0.95, 365));  // ages fast
  svc.ingest(2, flat_trace(0.30, 365));  // ages slowly
  svc.recompute(Time::from_days(365.0));
  EXPECT_DOUBLE_EQ(svc.normalized_degradation(1), 1.0);
  const double w2 = svc.normalized_degradation(2);
  EXPECT_GT(w2, 0.0);
  EXPECT_LT(w2, 1.0);
  EXPECT_DOUBLE_EQ(svc.max_degradation(), svc.degradation(1));
  EXPECT_NEAR(w2, svc.degradation(2) / svc.degradation(1), 1e-12);
}

TEST(DegradationService, IngestAcrossMultipleReports) {
  DegradationService svc{DegradationModel{}, 25.0};
  // Two reports covering consecutive spans must equal one big report.
  const auto trace = flat_trace(0.7, 20);
  svc.ingest(1, std::span<const SocSample>{trace}.subspan(0, 10));
  svc.ingest(1, std::span<const SocSample>{trace}.subspan(10));
  svc.ingest(2, trace);
  svc.recompute(Time::from_days(20.0));
  EXPECT_NEAR(svc.degradation(1), svc.degradation(2), 1e-15);
}

TEST(DegradationService, RecomputeUpdatesOverTime) {
  DegradationService svc{DegradationModel{}, 25.0};
  svc.ingest(1, flat_trace(0.8, 30));
  svc.recompute(Time::from_days(30.0));
  const double early = svc.degradation(1);
  svc.ingest(1, {{SocSample{Time::from_days(300.0), 0.8}}});
  svc.recompute(Time::from_days(300.0));
  EXPECT_GT(svc.degradation(1), early);
}

TEST(DegradationService, CyclingNodeDegradesFasterThanIdleAtSameMean) {
  DegradationService svc{DegradationModel{}, 25.0};
  // Node 1 idles at 0.5; node 2 cycles 0.1 <-> 0.9 (same time-mean SoC).
  std::vector<SocSample> cycling;
  for (int d = 0; d <= 364; ++d) {
    cycling.push_back({Time::from_days(d), d % 2 == 0 ? 0.1 : 0.9});
  }
  svc.ingest(1, flat_trace(0.5, 364));
  svc.ingest(2, cycling);
  svc.recompute(Time::from_days(364.0));
  EXPECT_GT(svc.degradation(2), svc.degradation(1));
}

}  // namespace
}  // namespace blam
