// Tests for the experiment runners that every bench binary builds on.
#include "net/experiment.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

TEST(Experiment, RunScenarioProducesCompleteResult) {
  const ScenarioConfig c = lorawan_scenario(8, 71);
  const ExperimentResult r = run_scenario(c, Time::from_days(1.0));
  EXPECT_EQ(r.label, "LoRaWAN");
  EXPECT_EQ(r.nodes.size(), 8u);
  EXPECT_GT(r.events_executed, 0u);
  EXPECT_FALSE(r.window_histogram.empty());
  EXPECT_GT(r.summary.mean_prr, 0.0);
}

TEST(Experiment, SharedTraceIsActuallyShared) {
  const ScenarioConfig c = lorawan_scenario(5, 72);
  const auto trace = build_shared_trace(c);
  ASSERT_NE(trace, nullptr);
  // Using the shared trace gives identical weather; the use_count grows.
  const long before = trace.use_count();
  const ExperimentResult r = run_scenario(c, Time::from_hours(6.0), trace);
  EXPECT_GT(r.summary.mean_prr, 0.0);
  EXPECT_EQ(trace.use_count(), before);  // network released its reference
}

TEST(Experiment, SharedVsOwnTraceDiffer) {
  // Without sharing, a different seed synthesizes different weather, so
  // paired comparisons would be noisier; verify the mechanism by comparing
  // total harvest-driven TX energy across seeds.
  ScenarioConfig a = lorawan_scenario(5, 73);
  ScenarioConfig b = lorawan_scenario(5, 74);
  const ExperimentResult ra = run_scenario(a, Time::from_days(2.0));
  const ExperimentResult rb = run_scenario(b, Time::from_days(2.0));
  EXPECT_NE(ra.events_executed, rb.events_executed);
}

TEST(Experiment, RunUntilEolHonorsMaxDuration) {
  // Fresh batteries cannot reach EoL in a week: the runner must stop at the
  // horizon and say so.
  const ScenarioConfig c = lorawan_scenario(4, 75);
  const LifespanResult r =
      run_until_eol(c, Time::from_days(7.0), Time::from_days(1.0));
  EXPECT_FALSE(r.reached_eol);
  EXPECT_EQ(r.lifespan, Time::from_days(7.0));
  EXPECT_EQ(r.max_degradation_series.size(), 7u);
  EXPECT_EQ(r.series_step, Time::from_days(1.0));
}

TEST(Experiment, LifespanSeriesIsMonotone) {
  ScenarioConfig c = lorawan_scenario(4, 76);
  c.degradation.k1 *= 100.0;  // accelerate so degradation is visible
  const LifespanResult r =
      run_until_eol(c, Time::from_days(30.0), Time::from_days(2.0));
  for (std::size_t i = 1; i < r.max_degradation_series.size(); ++i) {
    EXPECT_GE(r.max_degradation_series[i], r.max_degradation_series[i - 1]);
  }
}

TEST(Experiment, EolQuantizedToStep) {
  ScenarioConfig c = lorawan_scenario(3, 77);
  c.degradation.k1 = 4.14e-7;  // very fast aging
  const Time step = Time::from_days(3.0);
  const LifespanResult r = run_until_eol(c, Time::from_days(90.0), step);
  ASSERT_TRUE(r.reached_eol);
  EXPECT_EQ(r.lifespan.us() % step.us(), 0);
  EXPECT_GE(r.max_degradation_series.back(), c.degradation.eol_threshold);
}

}  // namespace
}  // namespace blam
