#include "mac/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace blam {
namespace {

UplinkFrame sample_uplink() {
  UplinkFrame frame;
  frame.node_id = 0xdeadbeef;
  frame.seq = 1234;
  frame.attempt = 3;
  frame.selected_window = 5;
  frame.app_payload_bytes = 10;
  frame.confirmed = true;
  frame.soc_report.push_back({Time::from_minutes(100.0), 0.75});
  frame.soc_report.push_back({Time::from_minutes(104.0), 0.5});
  return frame;
}

TEST(Codec, UplinkSizeMatchesAirtimeModel) {
  // The airtime model charges app payload + 2 bytes per SoC sample; the
  // wire format adds the fixed header plus the report integrity trailer
  // (seq u16 + CRC-8). The trailer is deliberately NOT part of
  // total_bytes(): the paper's airtime/energy model predates it, so it is
  // pinned here as an explicit wire-only cost.
  const UplinkFrame frame = sample_uplink();
  const auto bytes = encode_uplink(frame);
  EXPECT_EQ(bytes.size(), kUplinkHeaderBytes + 2u * 2u + kReportTrailerBytes +
                              static_cast<std::size_t>(frame.app_payload_bytes));
  EXPECT_EQ(bytes.size() - kUplinkHeaderBytes,
            static_cast<std::size_t>(frame.total_bytes()) + kReportTrailerBytes);
}

TEST(Codec, UplinkRoundTrip) {
  const UplinkFrame frame = sample_uplink();
  const auto bytes = encode_uplink(frame);
  const Time reference = frame.soc_report.back().t;
  const UplinkFrame decoded = decode_uplink(bytes, reference);
  EXPECT_EQ(decoded.node_id, frame.node_id);
  EXPECT_EQ(decoded.seq, frame.seq & 0xffff);
  EXPECT_EQ(decoded.attempt, frame.attempt);
  EXPECT_EQ(decoded.selected_window, frame.selected_window);
  EXPECT_EQ(decoded.app_payload_bytes, frame.app_payload_bytes);
  EXPECT_EQ(decoded.confirmed, frame.confirmed);
  ASSERT_EQ(decoded.soc_report.size(), 2u);
  // Minute-quantized times, Q8-quantized SoC.
  EXPECT_NEAR(decoded.soc_report[0].t.minutes(), 100.0, 0.5);
  EXPECT_NEAR(decoded.soc_report[0].soc, 0.75, 1.0 / 255.0);
  EXPECT_NEAR(decoded.soc_report[1].t.minutes(), 104.0, 0.5);
  EXPECT_NEAR(decoded.soc_report[1].soc, 0.5, 1.0 / 255.0);
}

TEST(Codec, UnconfirmedAndEmptyReport) {
  UplinkFrame frame;
  frame.node_id = 7;
  frame.seq = 9;
  frame.confirmed = false;
  frame.app_payload_bytes = 10;
  const auto bytes = encode_uplink(frame);
  EXPECT_EQ(bytes.size(), kUplinkHeaderBytes + 10u);
  const UplinkFrame decoded = decode_uplink(bytes, Time::zero());
  EXPECT_FALSE(decoded.confirmed);
  EXPECT_TRUE(decoded.soc_report.empty());
}

TEST(Codec, UplinkValidation) {
  UplinkFrame frame = sample_uplink();
  frame.attempt = 8;
  EXPECT_THROW(encode_uplink(frame), std::invalid_argument);
  frame = sample_uplink();
  frame.soc_report.push_back({Time::zero(), 0.1});
  EXPECT_THROW(encode_uplink(frame), std::invalid_argument);
  frame = sample_uplink();
  frame.app_payload_bytes = 0;
  EXPECT_THROW(encode_uplink(frame), std::invalid_argument);
}

TEST(Codec, DecodeRejectsGarbage) {
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(decode_uplink(empty, Time::zero()), std::invalid_argument);
  std::vector<std::uint8_t> bad{0xff, 0, 0, 0, 0, 0, 0, 0, 1, 0};
  EXPECT_THROW(decode_uplink(bad, Time::zero()), std::invalid_argument);
  auto truncated = encode_uplink(sample_uplink());
  truncated.resize(6);
  EXPECT_THROW(decode_uplink(truncated, Time::zero()), std::invalid_argument);
  EXPECT_THROW((void)decode_ack(empty), std::invalid_argument);
}

TEST(Codec, AckMinimalIsSevenBytes) {
  AckFrame ack;
  ack.node_id = 3;
  ack.seq = 4;
  const auto bytes = encode_ack(ack);
  EXPECT_EQ(bytes.size(), kAckHeaderBytes);  // bare ACK: no options
  const AckFrame decoded = decode_ack(bytes);
  EXPECT_EQ(decoded.node_id, 3u);
  EXPECT_EQ(decoded.seq, 4u);
  EXPECT_FALSE(decoded.has_degradation);
  EXPECT_FALSE(decoded.adr.has_value());
  EXPECT_FALSE(decoded.theta.has_value());
}

TEST(Codec, AckWithEverythingRoundTrips) {
  AckFrame ack;
  ack.node_id = 99;
  ack.seq = 1000;
  ack.has_degradation = true;
  ack.normalized_degradation = 0.42;
  ack.adr = AdrCommand{SpreadingFactor::kSF8, 8.0};
  ack.theta = 0.5;
  const auto bytes = encode_ack(ack);
  // header + w_u(1) + LinkADR(4) + theta(1).
  EXPECT_EQ(bytes.size(), kAckHeaderBytes + 6u);
  const AckFrame decoded = decode_ack(bytes);
  EXPECT_TRUE(decoded.has_degradation);
  EXPECT_NEAR(decoded.normalized_degradation, 0.42, 1.0 / 255.0);
  ASSERT_TRUE(decoded.adr.has_value());
  EXPECT_EQ(decoded.adr->sf, SpreadingFactor::kSF8);
  EXPECT_DOUBLE_EQ(decoded.adr->tx_power_dbm, 8.0);
  ASSERT_TRUE(decoded.theta.has_value());
  EXPECT_NEAR(*decoded.theta, 0.5, 1.0 / 255.0);
}

TEST(Codec, PaperOverheadClaims) {
  // Paper Sec. III-B: the SoC trace share adds 4 bytes to the uplink
  // (2 x 2 bytes) and the degradation dissemination adds 1 byte to the ACK.
  // The hardened wire format additionally spends kReportTrailerBytes (3) on
  // the report sequence number and CRC whenever a report is attached.
  UplinkFrame with_report = sample_uplink();  // the two-point report
  UplinkFrame without = with_report;
  without.soc_report.clear();
  EXPECT_EQ(encode_uplink(with_report).size() - encode_uplink(without).size(),
            4u + kReportTrailerBytes);

  AckFrame with_w;
  with_w.has_degradation = true;
  AckFrame bare;
  EXPECT_EQ(encode_ack(with_w).size() - encode_ack(bare).size(), 1u);
}

TEST(Codec, RandomizedRoundTripProperty) {
  Rng rng{321};
  for (int trial = 0; trial < 300; ++trial) {
    UplinkFrame frame;
    frame.node_id = static_cast<std::uint32_t>(rng.next_u64());
    frame.seq = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffff));
    frame.attempt = static_cast<int>(rng.uniform_int(0, 7));
    frame.selected_window = static_cast<int>(rng.uniform_int(0, 59));
    frame.app_payload_bytes = static_cast<int>(rng.uniform_int(1, 64));
    frame.confirmed = rng.bernoulli(0.5);
    const int samples = static_cast<int>(rng.uniform_int(0, 2));
    Time t = Time::from_minutes(rng.uniform(0.0, 1000.0));
    for (int s = 0; s < samples; ++s) {
      frame.soc_report.push_back({t, rng.uniform(0.0, 1.0)});
      t += Time::from_minutes(rng.uniform(1.0, 30.0));
    }
    if (!frame.soc_report.empty()) {
      frame.report_seq = static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff));
    }
    const auto bytes = encode_uplink(frame);
    const Time reference = frame.soc_report.empty() ? Time::zero() : frame.soc_report.back().t;
    const UplinkFrame decoded = decode_uplink(bytes, reference);
    ASSERT_EQ(decoded.node_id, frame.node_id);
    ASSERT_EQ(decoded.report_seq, frame.report_seq);
    ASSERT_EQ(decoded.seq, frame.seq);
    ASSERT_EQ(decoded.attempt, frame.attempt);
    ASSERT_EQ(decoded.selected_window, frame.selected_window);
    ASSERT_EQ(decoded.app_payload_bytes, frame.app_payload_bytes);
    ASSERT_EQ(decoded.soc_report.size(), frame.soc_report.size());
    for (std::size_t s = 0; s < frame.soc_report.size(); ++s) {
      ASSERT_NEAR(decoded.soc_report[s].soc, frame.soc_report[s].soc, 1.0 / 255.0);
      ASSERT_NEAR(decoded.soc_report[s].t.minutes(), frame.soc_report[s].t.minutes(), 0.51);
    }
  }
}

}  // namespace
}  // namespace blam
