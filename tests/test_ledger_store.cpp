// Differential tests for the columnar LedgerStore (PR 7): every arithmetic
// path must be BIT-identical to the per-node DegradationTracker it
// replaced, the residual cache must never perturb results, the held-report
// slots must behave like the old sorted vector, and the SpanArena must keep
// element identity across growth and recycling.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "core/ledger_store.hpp"
#include "core/span_arena.hpp"
#include "degradation/model.hpp"
#include "degradation/tracker.hpp"

namespace blam {
namespace {

constexpr std::uint32_t kHeldSlots = 5;

TEST(LedgerStore, MatchesTrackerBitExactOnRandomTraces) {
  const DegradationModel model;
  LedgerStore store{model, 25.0, kHeldSlots};
  constexpr int kNodes = 17;
  std::deque<DegradationTracker> reference;  // deque: tracker is non-copyable
  for (int n = 0; n < kNodes; ++n) {
    ASSERT_EQ(store.add_node(), static_cast<NodeHandle>(n));
    reference.emplace_back(model, 25.0);
  }

  // Interleaved random walks: each step picks a node, records a few samples
  // (random SoC levels force plenty of rainflow turning points), sometimes
  // marks a discontinuity, and occasionally probes degradation on BOTH
  // implementations — the probe order mirrors real recompute interleaving
  // and exercises the cache-invalidate-recompute path.
  Rng rng{20260809, 7};
  std::vector<double> clock_s(kNodes, 0.0);
  for (int step = 0; step < 4000; ++step) {
    const auto n = static_cast<std::uint32_t>(rng.uniform_int(0, kNodes - 1));
    const int burst = static_cast<int>(rng.uniform_int(1, 4));
    for (int b = 0; b < burst; ++b) {
      clock_s[n] += rng.uniform(60.0, 3600.0);
      const double soc = rng.uniform(0.0, 1.0);
      const Time t = Time::from_us(static_cast<std::int64_t>(clock_s[n] * 1e6));
      store.record(n, t, soc);
      reference[n].record(t, soc);
    }
    if (rng.bernoulli(0.05)) {
      store.mark_discontinuity(n);
      reference[n].mark_discontinuity();
    }
    if (rng.bernoulli(0.25)) {
      const Time probe =
          Time::from_us(static_cast<std::int64_t>((clock_s[n] + 86400.0) * 1e6));
      // EXPECT_EQ on doubles: bit-exact match required, not approximate.
      EXPECT_EQ(store.degradation_at(n, probe), reference[n].degradation(probe))
          << "node " << n << " step " << step;
    }
  }

  // Final full pass at a common horizon, plus the split aging components.
  const Time horizon = Time::from_days(400.0);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    EXPECT_EQ(store.calendar_linear(n, horizon), reference[n].calendar_linear(horizon));
    EXPECT_EQ(store.cycle_linear(n), reference[n].cycle_linear());
    EXPECT_EQ(store.degradation_at(n, horizon), reference[n].degradation(horizon));
  }
}

TEST(LedgerStore, ResidualCacheHitIsBitExactAndCounted) {
  const DegradationModel model;
  LedgerStore store{model, 25.0, kHeldSlots};
  const NodeHandle a = store.add_node();
  const NodeHandle b = store.add_node();
  for (int i = 0; i < 40; ++i) {
    const double soc = (i % 2 == 0) ? 0.9 - 0.01 * i : 0.2 + 0.01 * i;
    store.record(a, Time::from_hours(i), soc);
    store.record(b, Time::from_hours(i), 1.0 - soc);
  }
  EXPECT_EQ(store.clean_rows(), 0u);

  const Time probe = Time::from_days(30.0);
  const double first_a = store.degradation_at(a, probe);
  const double first_b = store.degradation_at(b, probe);
  EXPECT_EQ(store.clean_rows(), 2u);

  // Cache hit: same bits, still counted clean.
  EXPECT_EQ(store.degradation_at(a, probe), first_a);
  // A later probe only moves calendar aging; the cached cycle chain is
  // unchanged, so the result must match a fresh end-to-end evaluation.
  DegradationTracker fresh{model, 25.0};
  for (int i = 0; i < 40; ++i) {
    const double soc = (i % 2 == 0) ? 0.9 - 0.01 * i : 0.2 + 0.01 * i;
    fresh.record(Time::from_hours(i), soc);
  }
  EXPECT_EQ(store.degradation_at(a, Time::from_days(60.0)), fresh.degradation(Time::from_days(60.0)));

  // New sample dirties only that row.
  store.record(b, Time::from_hours(41.0), 0.77);
  EXPECT_EQ(store.clean_rows(), 1u);
  EXPECT_NE(store.degradation_at(b, probe), first_b);
}

TEST(LedgerStore, HeldSlotsInsertRemoveClearKeepOrder) {
  const DegradationModel model;
  LedgerStore store{model, 25.0, kHeldSlots};
  const NodeHandle h = store.add_node();
  const std::vector<SocSample> s1 = {{Time::from_hours(1.0), 0.5}};
  const std::vector<SocSample> s2 = {{Time::from_hours(2.0), 0.6}, {Time::from_hours(3.0), 0.4}};
  const std::vector<SocSample> s3 = {{Time::from_hours(4.0), 0.3}};

  store.held_insert(h, 0, 7, s2);
  store.held_insert(h, 0, 5, s1);  // insert before
  store.held_insert(h, 2, 9, s3);  // append
  ASSERT_EQ(store.held_count(h), 3u);
  EXPECT_EQ(store.held_seq(h, 0), 5);
  EXPECT_EQ(store.held_seq(h, 1), 7);
  EXPECT_EQ(store.held_seq(h, 2), 9);
  ASSERT_EQ(store.held_samples(h, 1).size(), 2u);
  EXPECT_EQ(store.held_samples(h, 1)[1].soc, 0.4);

  store.held_remove(h, 1);
  ASSERT_EQ(store.held_count(h), 2u);
  EXPECT_EQ(store.held_seq(h, 0), 5);
  EXPECT_EQ(store.held_seq(h, 1), 9);
  EXPECT_EQ(store.held_samples(h, 1)[0].soc, 0.3);

  store.held_clear(h);
  EXPECT_EQ(store.held_count(h), 0u);

  // Out-of-bounds guards.
  EXPECT_THROW(store.held_remove(h, 0), std::logic_error);
  EXPECT_THROW(store.held_insert(h, 1, 1, s1), std::logic_error);
}

TEST(LedgerStore, ArenaRecyclesHeldSampleStorage) {
  const DegradationModel model;
  LedgerStore store{model, 25.0, kHeldSlots};
  const NodeHandle h = store.add_node();
  std::vector<SocSample> payload;
  for (int i = 0; i < 6; ++i) payload.push_back({Time::from_hours(i), 0.5});

  store.held_insert(h, 0, 1, payload);
  store.held_remove(h, 0);
  const std::size_t pool_after_first = store.arena_pool_elements();
  // Steady-state churn at the same payload size reuses the freed block: the
  // pool must not grow again.
  for (std::uint16_t i = 0; i < 200; ++i) {
    store.held_insert(h, 0, i, payload);
    store.held_remove(h, 0);
  }
  EXPECT_EQ(store.arena_pool_elements(), pool_after_first);
}

TEST(LedgerStore, SnapshotRestoreRoundTripsBitExact) {
  const DegradationModel model;
  LedgerStore store{model, 25.0, kHeldSlots};
  const NodeHandle h = store.add_node();
  Rng rng{99, 1};
  double t_s = 0.0;
  for (int i = 0; i < 100; ++i) {
    t_s += rng.uniform(100.0, 5000.0);
    store.record(h, Time::from_us(static_cast<std::int64_t>(t_s * 1e6)), rng.uniform(0.0, 1.0));
  }
  const DegradationTracker::Snapshot snap = store.snapshot(h);

  LedgerStore other{model, 25.0, kHeldSlots};
  const NodeHandle g = other.add_node();
  other.restore(g, snap);
  const Time probe = Time::from_days(10.0);
  EXPECT_EQ(other.degradation_at(g, probe), store.degradation_at(h, probe));
  // Continued recording stays in lockstep (the rainflow machine state,
  // including the in-flight direction, survived the round trip).
  for (int i = 0; i < 20; ++i) {
    t_s += 500.0;
    const Time t = Time::from_us(static_cast<std::int64_t>(t_s * 1e6));
    const double soc = (i % 2 == 0) ? 0.8 : 0.25;
    store.record(h, t, soc);
    other.record(g, t, soc);
  }
  EXPECT_EQ(other.degradation_at(g, probe + Time::from_days(1.0)),
            store.degradation_at(h, probe + Time::from_days(1.0)));
}

TEST(SpanArena, GrowthPreservesContentsAndRecyclesBlocks) {
  SpanArena<int> arena;
  SpanArena<int>::Ref a;
  SpanArena<int>::Ref b;
  // Interleaved growth forces `a` through several size classes while `b`
  // occupies neighbouring pool space; contents must survive every move.
  for (int i = 0; i < 200; ++i) {
    arena.push_back(a, i);
    if (i % 3 == 0) arena.push_back(b, -i);
  }
  ASSERT_EQ(arena.view(a).size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(arena.view(a)[i], i);
  for (std::size_t i = 0; i < arena.view(b).size(); ++i) {
    EXPECT_EQ(arena.view(b)[i], -static_cast<int>(i) * 3);
  }

  // Release and re-grow: freed size classes are LIFO-reused, so the pool
  // footprint plateaus under churn. (One warm-up round first: `b` stole one
  // of `a`'s freed intermediate blocks during the interleaved growth above,
  // so the very first regrow may legitimately add one block.)
  arena.release(a);
  {
    SpanArena<int>::Ref warmup;
    for (int i = 0; i < 200; ++i) arena.push_back(warmup, i);
    arena.release(warmup);
  }
  const std::size_t pool = arena.pool_elements();
  for (int round = 0; round < 50; ++round) {
    SpanArena<int>::Ref c;
    for (int i = 0; i < 200; ++i) arena.push_back(c, i);
    arena.release(c);
  }
  EXPECT_EQ(arena.pool_elements(), pool);

  // clear() keeps the block; shrink() drops elements from the back.
  SpanArena<int>::Ref d;
  for (int i = 0; i < 10; ++i) arena.push_back(d, i);
  arena.shrink(d, 4);
  ASSERT_EQ(arena.view(d).size(), 6u);
  EXPECT_EQ(arena.view(d)[5], 5);
  arena.clear(d);
  EXPECT_TRUE(arena.view(d).empty());

  // assign() replaces contents wholesale.
  const std::vector<int> payload = {42, 43, 44};
  arena.assign(d, payload);
  ASSERT_EQ(arena.view(d).size(), 3u);
  EXPECT_EQ(arena.view(d)[2], 44);
}

}  // namespace
}  // namespace blam
