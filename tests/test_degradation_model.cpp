#include "degradation/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace blam {
namespace {

TEST(DegradationModel, ValidatesParams) {
  DegradationParams p;
  p.alpha_sei = 1.0;
  EXPECT_THROW(DegradationModel{p}, std::invalid_argument);
  p = DegradationParams{};
  p.k1 = -1.0;
  EXPECT_THROW(DegradationModel{p}, std::invalid_argument);
  p = DegradationParams{};
  p.eol_threshold = 0.0;
  EXPECT_THROW(DegradationModel{p}, std::invalid_argument);
}

TEST(DegradationModel, TemperatureStressReferencePoint) {
  const DegradationModel m;
  // At the reference temperature the stress is exactly 1.
  EXPECT_DOUBLE_EQ(m.temperature_stress(25.0), 1.0);
  // Hotter batteries age faster, colder slower.
  EXPECT_GT(m.temperature_stress(40.0), 1.0);
  EXPECT_LT(m.temperature_stress(10.0), 1.0);
}

TEST(DegradationModel, CalendarAgingLinearInTime) {
  const DegradationModel m;
  const double one_year = m.calendar_aging(Time::from_days(365.0), 0.5, 25.0);
  const double two_years = m.calendar_aging(Time::from_days(730.0), 0.5, 25.0);
  EXPECT_NEAR(two_years, 2.0 * one_year, 1e-12);
  EXPECT_THROW((void)m.calendar_aging(Time::from_seconds(-1.0), 0.5, 25.0), std::invalid_argument);
}

TEST(DegradationModel, CalendarAgingMonotoneInSoc) {
  const DegradationModel m;
  const Time year = Time::from_days(365.0);
  double prev = 0.0;
  for (double soc : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double d = m.calendar_aging(year, soc, 25.0);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(DegradationModel, CalendarAgingAtReferenceSocIsKt) {
  const DegradationModel m;
  // At phi = k3 and T = k5 the stress factors are 1: D_cal = k1 * seconds.
  const double seconds = 1e6;
  EXPECT_NEAR(m.calendar_aging(Time::from_seconds(seconds), 0.5, 25.0), 4.14e-10 * seconds,
              1e-15);
}

TEST(DegradationModel, CycleAgingTermStructure) {
  const DegradationModel m;
  const RainflowCycle full{0.4, 0.6, 1.0};
  const RainflowCycle half{0.4, 0.6, 0.5};
  EXPECT_NEAR(m.cycle_aging_term(full, 25.0), 0.4 * 0.6 * m.params().k6, 1e-18);
  EXPECT_NEAR(m.cycle_aging_term(half, 25.0), 0.5 * m.cycle_aging_term(full, 25.0), 1e-18);
  // Deeper and higher-SoC cycles hurt more.
  EXPECT_GT(m.cycle_aging_term(RainflowCycle{0.8, 0.6, 1.0}, 25.0),
            m.cycle_aging_term(full, 25.0));
  EXPECT_GT(m.cycle_aging_term(RainflowCycle{0.4, 0.9, 1.0}, 25.0),
            m.cycle_aging_term(full, 25.0));
}

TEST(DegradationModel, NonlinearShape) {
  const DegradationModel m;
  EXPECT_DOUBLE_EQ(m.nonlinear(0.0), 0.0);
  // Monotone increasing, approaching 1.
  double prev = 0.0;
  for (double f : {0.001, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 5.0}) {
    const double d = m.nonlinear(f);
    EXPECT_GT(d, prev);
    prev = d;
  }
  EXPECT_LT(m.nonlinear(10.0), 1.0);
  EXPECT_NEAR(m.nonlinear(20.0), 1.0, 1e-6);
  // Negative input clamps to fresh battery.
  EXPECT_DOUBLE_EQ(m.nonlinear(-1.0), 0.0);
}

TEST(DegradationModel, SeiCausesFastEarlyFade) {
  const DegradationModel m;
  // SEI film: the first 1% of linear aging costs much more capacity than
  // the same increment later on.
  const double early = m.nonlinear(0.01) - m.nonlinear(0.0);
  const double late = m.nonlinear(0.11) - m.nonlinear(0.10);
  EXPECT_GT(early, 3.0 * late);
}

TEST(DegradationModel, LinearForInvertsNonlinear) {
  const DegradationModel m;
  for (double d : {0.01, 0.05, 0.1, 0.2, 0.5}) {
    const double f = m.linear_for(d);
    EXPECT_NEAR(m.nonlinear(f), d, 1e-9);
  }
  EXPECT_THROW((void)m.linear_for(1.0), std::invalid_argument);
  EXPECT_THROW((void)m.linear_for(-0.1), std::invalid_argument);
}

TEST(DegradationModel, PaperHeadlineLifespansFromCalendarAging) {
  // Sanity-check the constants against the paper's Fig. 8: a battery held
  // near-full (phi ~ 0.9) at 25 C reaches 20% fade in roughly 8 years; one
  // capped at theta = 0.5 (phi ~ 0.45) lasts roughly 13-14 years.
  const DegradationModel m;
  const double f_eol = m.linear_for(0.2);

  const double rate_full = m.calendar_aging(Time::from_days(365.0), 0.90, 25.0);
  const double years_full = f_eol / rate_full;
  EXPECT_GT(years_full, 6.5);
  EXPECT_LT(years_full, 9.5);

  const double rate_capped = m.calendar_aging(Time::from_days(365.0), 0.45, 25.0);
  const double years_capped = f_eol / rate_capped;
  EXPECT_GT(years_capped, 11.0);
  EXPECT_LT(years_capped, 16.0);

  // The improvement is in the paper's reported band (up to ~70%).
  const double improvement = years_capped / years_full - 1.0;
  EXPECT_GT(improvement, 0.35);
  EXPECT_LT(improvement, 0.85);
}

}  // namespace
}  // namespace blam
