// Crash-tolerant campaign engine: retry/quarantine, watchdog timeouts,
// quarantine JSON round-trips, and journal-based resume.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/campaign.hpp"

namespace blam {
namespace {

namespace fs = std::filesystem;

// Unique per-test scratch file, removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& stem)
      : path_{(fs::temp_directory_path() /
               (stem + "." + std::to_string(::getpid()) + ".tmp"))
                  .string()} {
    fs::remove(path_);
  }
  ~ScratchFile() { fs::remove(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<CampaignCell> three_cells() {
  std::vector<CampaignCell> cells;
  for (int i = 0; i < 3; ++i) {
    CampaignCell cell;
    cell.key = "cell-key-" + std::to_string(i) + "\nconfig body " + std::to_string(i);
    cell.label = "cell-" + std::to_string(i);
    cell.seed = 100 + static_cast<std::uint64_t>(i);
    cell.config_text = "config " + std::to_string(i);
    cells.push_back(cell);
  }
  return cells;
}

CampaignOptions quiet_options() {
  CampaignOptions options;
  options.sweep.jobs = 1;
  options.quarantine_path.clear();  // tests opt in explicitly
  return options;
}

TEST(CampaignTest, RetrySucceedsAfterTransientFailure) {
  CampaignOptions options = quiet_options();
  options.retries = 1;
  Campaign campaign{three_cells(), options};
  std::atomic<int> failures_left{1};
  std::atomic<int> calls{0};
  const CampaignReport report = campaign.run([&](std::size_t i, const CellToken&) {
    calls.fetch_add(1);
    if (i == 1 && failures_left.fetch_sub(1) > 0) {
      throw std::runtime_error{"transient"};
    }
    return "payload-" + std::to_string(i);
  });
  EXPECT_EQ(calls.load(), 4);  // 3 cells + 1 retry
  EXPECT_TRUE(report.quarantined.empty());
  ASSERT_EQ(report.results.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(report.results[i].has_value());
    EXPECT_EQ(*report.results[i], "payload-" + std::to_string(i));
  }
}

TEST(CampaignTest, ExhaustedRetriesQuarantineTheCellAndKeepTheGrid) {
  ScratchFile quarantine{"blam_test_quarantine"};
  CampaignOptions options = quiet_options();
  options.retries = 2;
  options.quarantine_path = quarantine.path();
  Campaign campaign{three_cells(), options};
  std::atomic<int> cell1_calls{0};
  const CampaignReport report = campaign.run([&](std::size_t i, const CellToken&) {
    if (i == 1) {
      cell1_calls.fetch_add(1);
      throw std::runtime_error{"deterministic \"bad\" cell"};
    }
    return std::string{"ok"};
  });
  EXPECT_EQ(cell1_calls.load(), 3);  // initial attempt + 2 retries
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].label, "cell-1");
  EXPECT_EQ(report.quarantined[0].attempts, 3);
  EXPECT_FALSE(report.quarantined[0].timed_out);
  EXPECT_FALSE(report.results[1].has_value());
  EXPECT_TRUE(report.results[0].has_value());
  EXPECT_TRUE(report.results[2].has_value());

  // The quarantine file round-trips, including the quoted error text.
  ASSERT_TRUE(fs::exists(quarantine.path()));
  const std::vector<QuarantinedCell> loaded = load_quarantine(quarantine.path());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].key, report.quarantined[0].key);
  EXPECT_EQ(loaded[0].seed, 101u);
  EXPECT_EQ(loaded[0].error, "deterministic \"bad\" cell");
  EXPECT_EQ(loaded[0].config_text, "config 1");

  EXPECT_THROW(throw_if_quarantined(report, quarantine.path()), std::runtime_error);
}

TEST(CampaignTest, CleanRunRemovesAStaleQuarantineFile) {
  ScratchFile quarantine{"blam_test_quarantine_stale"};
  QuarantinedCell stale;
  stale.key = "old";
  stale.label = "old";
  write_quarantine(quarantine.path(), {stale});
  ASSERT_TRUE(fs::exists(quarantine.path()));
  CampaignOptions options = quiet_options();
  options.quarantine_path = quarantine.path();
  Campaign campaign{three_cells(), options};
  const CampaignReport report =
      campaign.run([](std::size_t, const CellToken&) { return std::string{"ok"}; });
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_FALSE(fs::exists(quarantine.path()));  // presence means loss
  EXPECT_NO_THROW(throw_if_quarantined(report, quarantine.path()));
}

TEST(CampaignTest, WatchdogCancelsAHungCell) {
  CampaignOptions options = quiet_options();
  options.cell_timeout_s = 0.1;
  options.retries = 0;
  Campaign campaign{three_cells(), options};
  const CampaignReport report = campaign.run([](std::size_t i, const CellToken& token) {
    if (i == 2) {
      // A "hung" cell that still honors cooperative cancellation.
      const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
      while (std::chrono::steady_clock::now() < deadline) {
        token.throw_if_cancelled();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    return std::string{"done"};
  });
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].label, "cell-2");
  EXPECT_TRUE(report.quarantined[0].timed_out);
  EXPECT_FALSE(report.results[2].has_value());
  EXPECT_TRUE(report.results[0].has_value());
  EXPECT_TRUE(report.results[1].has_value());
}

TEST(CampaignTest, QuarantineJsonRoundTripsSpecialCharacters) {
  ScratchFile path{"blam_test_quarantine_escape"};
  QuarantinedCell cell;
  cell.key = "line1\nline2\t\"quoted\" \\slash\\";
  cell.label = "wei\"rd,label";
  cell.seed = 18446744073709551615ull;
  cell.attempts = 7;
  cell.timed_out = true;
  cell.error = "error with\nnewline and \"quotes\"";
  cell.config_text = "a = 1\nb = \"x\\y\"\n";
  write_quarantine(path.path(), {cell});
  const std::vector<QuarantinedCell> loaded = load_quarantine(path.path());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].key, cell.key);
  EXPECT_EQ(loaded[0].label, cell.label);
  EXPECT_EQ(loaded[0].seed, cell.seed);
  EXPECT_EQ(loaded[0].attempts, cell.attempts);
  EXPECT_EQ(loaded[0].timed_out, cell.timed_out);
  EXPECT_EQ(loaded[0].error, cell.error);
  EXPECT_EQ(loaded[0].config_text, cell.config_text);
}

TEST(CampaignTest, JournalResumeSkipsCompletedCellsWithIdenticalPayloads) {
  ScratchFile journal{"blam_test_journal"};
  CampaignOptions options = quiet_options();
  options.journal_path = journal.path();

  Campaign first{three_cells(), options};
  const CampaignReport fresh = first.run([](std::size_t i, const CellToken&) {
    return "payload with spaces & newline\n#" + std::to_string(i);
  });
  EXPECT_EQ(fresh.resumed, 0u);
  ASSERT_TRUE(fs::exists(journal.path()));

  Campaign second{three_cells(), options};
  std::atomic<int> body_calls{0};
  const CampaignReport resumed = second.run([&](std::size_t, const CellToken&) {
    body_calls.fetch_add(1);
    return std::string{"SHOULD NOT RUN"};
  });
  EXPECT_EQ(body_calls.load(), 0);
  EXPECT_EQ(resumed.resumed, 3u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(resumed.results[i].has_value());
    EXPECT_EQ(*resumed.results[i], *fresh.results[i]);
  }
}

TEST(CampaignTest, TornJournalLineIsIgnoredAndOnlyThatCellReruns) {
  ScratchFile journal{"blam_test_journal_torn"};
  CampaignOptions options = quiet_options();
  options.journal_path = journal.path();

  Campaign first{three_cells(), options};
  (void)first.run(
      [](std::size_t i, const CellToken&) { return "payload-" + std::to_string(i); });

  // Simulate kill -9 mid-append: chop the last journal line in half and add
  // line noise. The loader must drop both without rejecting the file.
  std::string text;
  {
    std::ifstream in{journal.path()};
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);
    lines[2] = lines[2].substr(0, lines[2].size() / 2);
    for (const std::string& l : lines) text += l + "\n";
    text += "complete garbage, not a journal line\n";
    text.pop_back();  // torn final newline too
  }
  {
    std::ofstream out{journal.path(), std::ios::trunc};
    out << text;
  }

  Campaign second{three_cells(), options};
  std::atomic<int> body_calls{0};
  const CampaignReport report = second.run([&](std::size_t i, const CellToken&) {
    body_calls.fetch_add(1);
    return "payload-" + std::to_string(i);
  });
  EXPECT_EQ(body_calls.load(), 1);  // only the torn cell re-runs
  EXPECT_EQ(report.resumed, 2u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(report.results[i].has_value());
    EXPECT_EQ(*report.results[i], "payload-" + std::to_string(i));
  }
}

TEST(CampaignTest, ChangedCellKeyInvalidatesTheJournalEntry) {
  ScratchFile journal{"blam_test_journal_key"};
  CampaignOptions options = quiet_options();
  options.journal_path = journal.path();

  Campaign first{three_cells(), options};
  (void)first.run([](std::size_t, const CellToken&) { return std::string{"stale"}; });

  std::vector<CampaignCell> cells = three_cells();
  cells[1].key += " (config changed)";
  Campaign second{cells, options};
  std::atomic<int> body_calls{0};
  const CampaignReport report = second.run([&](std::size_t, const CellToken&) {
    body_calls.fetch_add(1);
    return std::string{"fresh"};
  });
  EXPECT_EQ(body_calls.load(), 1);
  EXPECT_EQ(report.resumed, 2u);
  EXPECT_EQ(*report.results[0], "stale");
  EXPECT_EQ(*report.results[1], "fresh");
  EXPECT_EQ(*report.results[2], "stale");
}

TEST(CampaignTest, CellTokenThrowsOnlyWhenCancelled) {
  CellToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.throw_if_cancelled());
  const CellToken copy = token;  // copies share the flag
  copy.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.throw_if_cancelled(), CellTimeout);
}

}  // namespace
}  // namespace blam
