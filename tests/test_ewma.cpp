#include "forecast/ewma.hpp"

#include <gtest/gtest.h>

namespace blam {
namespace {

TEST(Ewma, ValidatesBeta) {
  EXPECT_THROW(Ewma{-0.1}, std::invalid_argument);
  EXPECT_THROW(Ewma{1.1}, std::invalid_argument);
}

TEST(Ewma, FallbackBeforeFirstObservation) {
  Ewma e{0.3};
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value_or(7.0), 7.0);
}

TEST(Ewma, FirstObservationInitializes) {
  Ewma e{0.3};
  e.observe(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value_or(0.0), 10.0);
}

TEST(Ewma, PaperEquation13) {
  // e[p] = beta * x + (1 - beta) * e[p-1]
  Ewma e{0.25};
  e.observe(10.0);
  e.observe(20.0);
  EXPECT_DOUBLE_EQ(e.value_or(0.0), 0.25 * 20.0 + 0.75 * 10.0);
  e.observe(0.0);
  EXPECT_DOUBLE_EQ(e.value_or(0.0), 0.75 * 12.5);
}

TEST(Ewma, BetaOneTracksExactly) {
  Ewma e{1.0};
  e.observe(3.0);
  e.observe(9.0);
  EXPECT_DOUBLE_EQ(e.value_or(0.0), 9.0);
}

TEST(Ewma, BetaZeroFreezesAfterInit) {
  Ewma e{0.0};
  e.observe(3.0);
  e.observe(100.0);
  EXPECT_DOUBLE_EQ(e.value_or(0.0), 3.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e{0.3};
  e.observe(0.0);
  for (int i = 0; i < 100; ++i) e.observe(5.0);
  EXPECT_NEAR(e.value_or(0.0), 5.0, 1e-9);
}

TEST(Ewma, StaysWithinObservedRange) {
  Ewma e{0.4};
  e.observe(2.0);
  for (double x : {4.0, 1.0, 3.0, 2.5, 0.5, 4.5}) {
    e.observe(x);
    EXPECT_GE(e.value_or(0.0), 0.5);
    EXPECT_LE(e.value_or(0.0), 4.5);
  }
}

}  // namespace
}  // namespace blam
