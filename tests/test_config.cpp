#include "common/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "net/scenario_io.hpp"

namespace blam {
namespace {

TEST(ConfigFile, ParsesKeysValuesAndComments) {
  const ConfigFile c = ConfigFile::parse(R"(
# comment line
alpha = 1.5
name = hello world   # trailing comment
flag=true
count =  42
)");
  EXPECT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(c.get_string("name", ""), "hello world");
  EXPECT_TRUE(c.get_bool("flag", false));
  EXPECT_EQ(c.get_int("count", 0), 42);
}

TEST(ConfigFile, FallbacksForMissingKeys) {
  const ConfigFile c = ConfigFile::parse("");
  EXPECT_DOUBLE_EQ(c.get_double("x", 3.5), 3.5);
  EXPECT_EQ(c.get_int("y", -7), -7);
  EXPECT_FALSE(c.get_bool("z", false));
  EXPECT_EQ(c.get_string("s", "dflt"), "dflt");
  EXPECT_FALSE(c.has("x"));
}

TEST(ConfigFile, MalformedValuesThrow) {
  const ConfigFile c = ConfigFile::parse("x = not_a_number\nb = maybe\ni = 1.5");
  EXPECT_THROW((void)c.get_double("x", 0.0), std::runtime_error);
  EXPECT_THROW((void)c.get_bool("b", false), std::runtime_error);
  EXPECT_THROW((void)c.get_int("i", 0), std::runtime_error);
}

TEST(ConfigFile, MalformedLinesThrow) {
  EXPECT_THROW(ConfigFile::parse("just some words\n"), std::runtime_error);
  EXPECT_THROW(ConfigFile::parse("= value\n"), std::runtime_error);
}

TEST(ConfigFile, BooleanSpellings) {
  const ConfigFile c = ConfigFile::parse("a=YES\nb=Off\nc=1\nd=false");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
}

TEST(ConfigFile, UnusedKeysAudit) {
  const ConfigFile c = ConfigFile::parse("used = 1\nunused = 2");
  (void)c.get_int("used", 0);
  const auto unused = c.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(ConfigFile, LoadFromDisk) {
  const std::string path = ::testing::TempDir() + "blam_config_test.cfg";
  {
    std::ofstream out{path};
    out << "answer = 42\n";
  }
  const ConfigFile c = ConfigFile::load(path);
  EXPECT_EQ(c.get_int("answer", 0), 42);
  std::remove(path.c_str());
  EXPECT_THROW(ConfigFile::load("/nonexistent/path.cfg"), std::runtime_error);
}

TEST(ScenarioIo, DefaultsRoundTrip) {
  const ScenarioConfig c = scenario_from_config(ConfigFile::parse(""));
  EXPECT_EQ(c.policy, PolicyKind::kLorawan);
  EXPECT_EQ(c.n_nodes, 100);
  EXPECT_DOUBLE_EQ(c.theta, 1.0);
}

TEST(ScenarioIo, FullConfiguration) {
  const ScenarioConfig c = scenario_from_config(ConfigFile::parse(R"(
policy = blam
theta = 0.5
w_b = 0.7
nodes = 250
gateways = 3
radius_m = 4000
seed = 99
min_period_min = 20
max_period_min = 40
utility = step
step_deadline = 0.4
sf_assignment = distance
adr = true
supercap_tx_buffer = 4
insulated = false
ambient_mean_c = 20
label = my-experiment
)"));
  EXPECT_EQ(c.policy, PolicyKind::kBlam);
  EXPECT_DOUBLE_EQ(c.theta, 0.5);
  EXPECT_DOUBLE_EQ(c.w_b, 0.7);
  EXPECT_EQ(c.n_nodes, 250);
  EXPECT_EQ(c.n_gateways, 3);
  EXPECT_EQ(c.seed, 99u);
  EXPECT_EQ(c.utility, UtilityKind::kStep);
  EXPECT_EQ(c.sf_assignment, SfAssignment::kDistanceBased);
  EXPECT_TRUE(c.adr_enabled);
  EXPECT_DOUBLE_EQ(c.supercap_tx_buffer, 4.0);
  EXPECT_FALSE(c.thermal.insulated);
  EXPECT_DOUBLE_EQ(c.thermal.mean_c, 20.0);
  EXPECT_EQ(c.label, "my-experiment");
}

TEST(ScenarioIo, UnknownKeyRejected) {
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("nodse = 100")), std::runtime_error);
}

TEST(ScenarioIo, BadEnumRejected) {
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("policy = alohaaa")), std::runtime_error);
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("utility = cubic")), std::runtime_error);
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("sf_assignment = random")),
               std::runtime_error);
}

TEST(ScenarioIo, InvalidScenarioRejected) {
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("nodes = 0")), std::invalid_argument);
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("policy = blam\ntheta = 0")),
               std::invalid_argument);
}

TEST(ScenarioIo, DescribeMentionsKeyFields) {
  ScenarioConfig c = blam_scenario(50, 0.5, 1);
  const std::string text = describe_scenario(c);
  EXPECT_NE(text.find("H-50"), std::string::npos);
  EXPECT_NE(text.find("50"), std::string::npos);
  EXPECT_NE(text.find("SF10"), std::string::npos);
}

}  // namespace
}  // namespace blam
