#include "common/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "net/scenario_io.hpp"

namespace blam {
namespace {

TEST(ConfigFile, ParsesKeysValuesAndComments) {
  const ConfigFile c = ConfigFile::parse(R"(
# comment line
alpha = 1.5
name = hello world   # trailing comment
flag=true
count =  42
)");
  EXPECT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(c.get_string("name", ""), "hello world");
  EXPECT_TRUE(c.get_bool("flag", false));
  EXPECT_EQ(c.get_int("count", 0), 42);
}

TEST(ConfigFile, FallbacksForMissingKeys) {
  const ConfigFile c = ConfigFile::parse("");
  EXPECT_DOUBLE_EQ(c.get_double("x", 3.5), 3.5);
  EXPECT_EQ(c.get_int("y", -7), -7);
  EXPECT_FALSE(c.get_bool("z", false));
  EXPECT_EQ(c.get_string("s", "dflt"), "dflt");
  EXPECT_FALSE(c.has("x"));
}

TEST(ConfigFile, MalformedValuesThrow) {
  const ConfigFile c = ConfigFile::parse("x = not_a_number\nb = maybe\ni = 1.5");
  EXPECT_THROW((void)c.get_double("x", 0.0), std::runtime_error);
  EXPECT_THROW((void)c.get_bool("b", false), std::runtime_error);
  EXPECT_THROW((void)c.get_int("i", 0), std::runtime_error);
}

TEST(ConfigFile, NonFiniteDoublesRejectedWithKeyName) {
  const ConfigFile c = ConfigFile::parse("a = nan\nb = inf\nc = -inf\nd = 1.0");
  for (const char* key : {"a", "b", "c"}) {
    try {
      (void)c.get_double(key, 0.0);
      FAIL() << key << " should be rejected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string{e.what()}.find(std::string{"'"} + key + "'"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string{e.what()}.find("finite"), std::string::npos) << e.what();
    }
  }
  EXPECT_DOUBLE_EQ(c.get_double("d", 0.0), 1.0);
}

TEST(ConfigFile, SignConstrainedGetters) {
  const ConfigFile c = ConfigFile::parse("neg = -2.5\nzero = 0\npos = 2.5\nnan = nan");
  EXPECT_DOUBLE_EQ(c.get_positive_double("pos", 0.0), 2.5);
  EXPECT_THROW((void)c.get_positive_double("zero", 1.0), std::runtime_error);
  EXPECT_THROW((void)c.get_positive_double("neg", 1.0), std::runtime_error);
  EXPECT_THROW((void)c.get_positive_double("nan", 1.0), std::runtime_error);
  EXPECT_DOUBLE_EQ(c.get_non_negative_double("zero", 1.0), 0.0);
  EXPECT_DOUBLE_EQ(c.get_non_negative_double("pos", 1.0), 2.5);
  EXPECT_THROW((void)c.get_non_negative_double("neg", 1.0), std::runtime_error);
  // Fallbacks for missing keys pass through unchecked.
  EXPECT_DOUBLE_EQ(c.get_positive_double("missing", 7.0), 7.0);
}

TEST(ConfigFile, MalformedLinesThrow) {
  EXPECT_THROW(ConfigFile::parse("just some words\n"), std::runtime_error);
  EXPECT_THROW(ConfigFile::parse("= value\n"), std::runtime_error);
}

TEST(ConfigFile, BooleanSpellings) {
  const ConfigFile c = ConfigFile::parse("a=YES\nb=Off\nc=1\nd=false");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
}

TEST(ConfigFile, UnusedKeysAudit) {
  const ConfigFile c = ConfigFile::parse("used = 1\nunused = 2");
  (void)c.get_int("used", 0);
  const auto unused = c.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(ConfigFile, LoadFromDisk) {
  const std::string path = ::testing::TempDir() + "blam_config_test.cfg";
  {
    std::ofstream out{path};
    out << "answer = 42\n";
  }
  const ConfigFile c = ConfigFile::load(path);
  EXPECT_EQ(c.get_int("answer", 0), 42);
  std::remove(path.c_str());
  EXPECT_THROW(ConfigFile::load("/nonexistent/path.cfg"), std::runtime_error);
}

TEST(ScenarioIo, DefaultsRoundTrip) {
  const ScenarioConfig c = scenario_from_config(ConfigFile::parse(""));
  EXPECT_EQ(c.policy, PolicyKind::kLorawan);
  EXPECT_EQ(c.n_nodes, 100);
  EXPECT_DOUBLE_EQ(c.theta, 1.0);
}

TEST(ScenarioIo, FullConfiguration) {
  const ScenarioConfig c = scenario_from_config(ConfigFile::parse(R"(
policy = blam
theta = 0.5
w_b = 0.7
nodes = 250
gateways = 3
radius_m = 4000
seed = 99
min_period_min = 20
max_period_min = 40
utility = step
step_deadline = 0.4
sf_assignment = distance
adr = true
supercap_tx_buffer = 4
insulated = false
ambient_mean_c = 20
label = my-experiment
)"));
  EXPECT_EQ(c.policy, PolicyKind::kBlam);
  EXPECT_DOUBLE_EQ(c.theta, 0.5);
  EXPECT_DOUBLE_EQ(c.w_b, 0.7);
  EXPECT_EQ(c.n_nodes, 250);
  EXPECT_EQ(c.n_gateways, 3);
  EXPECT_EQ(c.seed, 99u);
  EXPECT_EQ(c.utility, UtilityKind::kStep);
  EXPECT_EQ(c.sf_assignment, SfAssignment::kDistanceBased);
  EXPECT_TRUE(c.adr_enabled);
  EXPECT_DOUBLE_EQ(c.supercap_tx_buffer, 4.0);
  EXPECT_FALSE(c.thermal.insulated);
  EXPECT_DOUBLE_EQ(c.thermal.mean_c, 20.0);
  EXPECT_EQ(c.label, "my-experiment");
}

TEST(ScenarioIo, UnknownKeyRejected) {
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("nodse = 100")), std::runtime_error);
}

TEST(ScenarioIo, BadEnumRejected) {
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("policy = alohaaa")), std::runtime_error);
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("utility = cubic")), std::runtime_error);
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("sf_assignment = random")),
               std::runtime_error);
}

TEST(ScenarioIo, InvalidScenarioRejected) {
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("nodes = 0")), std::invalid_argument);
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("policy = blam\ntheta = 0")),
               std::invalid_argument);
}

TEST(ScenarioIo, NonFiniteAndNonPositiveValuesRejectedAtParse) {
  // The parse layer rejects these before validate() ever runs, naming the key.
  for (const char* text : {"radius_m = nan", "radius_m = inf", "radius_m = -100",
                           "radius_m = 0", "battery_days = nan", "battery_days = 0",
                           "duty_cycle = -0.01", "min_period_min = 0",
                           "period_jitter = -0.1", "initial_soc = nan",
                           "supercap_leak_per_day = -1", "forecast_error_sigma = -2"}) {
    EXPECT_THROW(scenario_from_config(ConfigFile::parse(text)), std::runtime_error) << text;
  }
  try {
    (void)scenario_from_config(ConfigFile::parse("battery_days = -3"));
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("battery_days"), std::string::npos) << e.what();
  }
}

TEST(ScenarioIo, AuditKeysParseAndValidate) {
  const ScenarioConfig c =
      scenario_from_config(ConfigFile::parse("audit_level = 2\naudit_throw = true"));
  EXPECT_EQ(c.audit.level, 2);
  EXPECT_TRUE(c.audit.throw_on_violation);
  EXPECT_EQ(scenario_from_config(ConfigFile::parse("")).audit.level, 0);
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("audit_level = 3")), std::runtime_error);
  EXPECT_THROW(scenario_from_config(ConfigFile::parse("audit_level = -1")), std::runtime_error);
}

TEST(ScenarioIo, DescribeMentionsKeyFields) {
  ScenarioConfig c = blam_scenario(50, 0.5, 1);
  const std::string text = describe_scenario(c);
  EXPECT_NE(text.find("H-50"), std::string::npos);
  EXPECT_NE(text.find("50"), std::string::npos);
  EXPECT_NE(text.find("SF10"), std::string::npos);
}

}  // namespace
}  // namespace blam
