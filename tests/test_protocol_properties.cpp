// Property-style comparisons between protocols — the paper's qualitative
// claims, asserted on shared weather and topology so only the MAC differs.
#include <gtest/gtest.h>

#include "net/experiment.hpp"

namespace blam {
namespace {

struct Comparison {
  ExperimentResult lorawan;
  ExperimentResult h50;
};

// One congested month (contention comparable to the paper's 500-node
// setup), shared across tests in this file.
const Comparison& comparison() {
  static const Comparison c = [] {
    const int nodes = 250;
    const std::uint64_t seed = 3;
    const ScenarioConfig base = lorawan_scenario(nodes, seed);
    const auto trace = build_shared_trace(base);
    Comparison out;
    const Time duration = Time::from_days(30.0);
    out.lorawan = run_scenario(base, duration, trace);
    out.h50 = run_scenario(blam_scenario(nodes, 0.5, seed), duration, trace);
    return out;
  }();
  return c;
}

TEST(ProtocolProperties, BlamReducesRetransmissions) {
  // Paper Fig. 5a: H-50 cuts average retransmissions dramatically.
  EXPECT_LT(comparison().h50.summary.mean_retx, 0.5 * comparison().lorawan.summary.mean_retx);
}

TEST(ProtocolProperties, BlamReducesTxEnergy) {
  // Paper Fig. 5b.
  EXPECT_LT(comparison().h50.summary.total_tx_energy.joules(),
            comparison().lorawan.summary.total_tx_energy.joules());
}

TEST(ProtocolProperties, BlamReducesMeanDegradation) {
  // Paper Fig. 5c: lower mean and lower variance.
  EXPECT_LT(comparison().h50.summary.degradation_box.mean,
            comparison().lorawan.summary.degradation_box.mean);
  const double spread_lorawan = comparison().lorawan.summary.degradation_box.max -
                                comparison().lorawan.summary.degradation_box.min;
  const double spread_h50 =
      comparison().h50.summary.degradation_box.max - comparison().h50.summary.degradation_box.min;
  EXPECT_LT(spread_h50, spread_lorawan);
}

TEST(ProtocolProperties, BlamImprovesPrrAndUtilityUnderLoad) {
  // Paper Fig. 6a/6b.
  EXPECT_GT(comparison().h50.summary.mean_prr, comparison().lorawan.summary.mean_prr);
  EXPECT_GT(comparison().h50.summary.min_prr, comparison().lorawan.summary.min_prr);
  EXPECT_GT(comparison().h50.summary.mean_utility, comparison().lorawan.summary.mean_utility);
}

TEST(ProtocolProperties, BlamKeepsMeanSocNearTheta) {
  double soc_lorawan = 0.0;
  double soc_h50 = 0.0;
  for (const NodeMetrics& m : comparison().lorawan.nodes) soc_lorawan += m.mean_soc;
  for (const NodeMetrics& m : comparison().h50.nodes) soc_h50 += m.mean_soc;
  soc_lorawan /= static_cast<double>(comparison().lorawan.nodes.size());
  soc_h50 /= static_cast<double>(comparison().h50.nodes.size());
  // The paper's premise: the baseline holds a much higher SoC than the
  // theta-capped MAC (under heavy load retransmissions pull it below the
  // idle ~0.9 of uncongested networks).
  EXPECT_GT(soc_lorawan, 0.55);
  EXPECT_LT(soc_h50, 0.5);
  EXPECT_GT(soc_h50, 0.3);
}

TEST(ProtocolProperties, CalendarAgingDominatesCycleAging) {
  // Paper Fig. 2: calendar aging is the dominant component.
  for (const auto* result : {&comparison().lorawan, &comparison().h50}) {
    double cal = 0.0;
    double cyc = 0.0;
    for (const NodeMetrics& m : result->nodes) {
      cal += m.calendar_linear;
      cyc += m.cycle_linear;
    }
    EXPECT_GT(cal, 2.0 * cyc) << result->label;
  }
}

TEST(ProtocolProperties, ThetaOnlyAblationSitsBetween) {
  // H-50C (cap without window selection) fixes calendar aging but not the
  // collision/retransmission behaviour: degradation near H-50, RETX near
  // LoRaWAN (paper Figs. 7-8 rationale).
  const int nodes = 250;
  const std::uint64_t seed = 3;
  const auto trace = build_shared_trace(lorawan_scenario(nodes, seed));
  const ExperimentResult h50c =
      run_scenario(theta_only_scenario(nodes, 0.5, seed), Time::from_days(30.0), trace);
  EXPECT_GT(h50c.summary.mean_retx, comparison().h50.summary.mean_retx);
  EXPECT_LT(h50c.summary.degradation_box.mean,
            comparison().lorawan.summary.degradation_box.mean);
}

TEST(ProtocolProperties, LowThetaTradesPrrForLifespan) {
  // Paper Fig. 5c/6b: H-5 degrades least but pays with packet drops.
  const int nodes = 30;
  const std::uint64_t seed = 9;
  const auto trace = build_shared_trace(lorawan_scenario(nodes, seed));
  const Time duration = Time::from_days(20.0);
  const ExperimentResult h5 = run_scenario(blam_scenario(nodes, 0.05, seed), duration, trace);
  const ExperimentResult h50 = run_scenario(blam_scenario(nodes, 0.5, seed), duration, trace);
  EXPECT_LE(h5.summary.degradation_box.mean, h50.summary.degradation_box.mean);
  EXPECT_LT(h5.summary.mean_prr, h50.summary.mean_prr);
}

TEST(ProtocolProperties, WbZeroRecoversLowLatencyBehaviour) {
  // With w_b = 0 the degradation term vanishes: window selection reverts to
  // pure utility, i.e. (almost) window 0 like LoRaWAN, trading lifespan for
  // latency (paper Sec. IV-A: "latency is configurable by the weight w_b").
  const int nodes = 30;
  const std::uint64_t seed = 5;
  ScenarioConfig eager = blam_scenario(nodes, 0.5, seed);
  eager.w_b = 0.0;
  const auto trace = build_shared_trace(eager);
  const ExperimentResult with_wb =
      run_scenario(blam_scenario(nodes, 0.5, seed), Time::from_days(15.0), trace);
  const ExperimentResult without_wb = run_scenario(eager, Time::from_days(15.0), trace);
  EXPECT_GE(with_wb.summary.mean_latency_s, without_wb.summary.mean_latency_s);
  EXPECT_GT(without_wb.summary.mean_utility, 0.9);
}

TEST(ProtocolProperties, ForecastErrorDegradesGracefully) {
  const int nodes = 30;
  const std::uint64_t seed = 6;
  ScenarioConfig noisy = blam_scenario(nodes, 0.5, seed);
  noisy.forecast_error_sigma = 0.5;
  const auto trace = build_shared_trace(noisy);
  const ExperimentResult clean =
      run_scenario(blam_scenario(nodes, 0.5, seed), Time::from_days(10.0), trace);
  const ExperimentResult degraded = run_scenario(noisy, Time::from_days(10.0), trace);
  // Still functional: PRR stays high even with 50% forecast error.
  EXPECT_GT(degraded.summary.mean_prr, 0.9);
  EXPECT_LE(degraded.summary.mean_prr, clean.summary.mean_prr + 0.05);
}

}  // namespace
}  // namespace blam
