// Cross-validation of the streaming rainflow counter against an
// independent, buffered offline implementation of the same ASTM E1049
// four-point rule, over randomized SoC walks. The offline version commits
// turning points with the same rule (a sample becomes a turning point when
// the direction changes; the final sample stays provisional) but processes
// the whole trace at once with separate bookkeeping, so it cross-checks the
// streaming collapse logic rather than re-running it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "degradation/rainflow.hpp"

namespace blam {
namespace {

struct OfflineResult {
  std::vector<RainflowCycle> full;
  std::vector<RainflowCycle> half;
};

// Committed turning points + the provisional final sample (if any trace).
struct TurningPoints {
  std::vector<double> committed;
  bool has_provisional{false};
  double provisional{0.0};
};

TurningPoints turning_points(const std::vector<double>& samples) {
  TurningPoints out;
  bool has_last = false;
  double last = 0.0;
  double prev_direction = 0.0;
  for (double s : samples) {
    if (!has_last) {
      last = s;
      has_last = true;
      continue;
    }
    const double diff = s - last;
    if (diff == 0.0) continue;
    const double direction = diff > 0.0 ? 1.0 : -1.0;
    if (prev_direction == 0.0 || direction != prev_direction) {
      out.committed.push_back(last);
    }
    prev_direction = direction;
    last = s;
  }
  if (has_last && prev_direction != 0.0) {
    out.has_provisional = true;
    out.provisional = last;
  }
  return out;
}

OfflineResult offline_rainflow(const std::vector<double>& samples) {
  OfflineResult result;
  const TurningPoints points = turning_points(samples);
  std::vector<double> stack;
  for (double point : points.committed) {
    stack.push_back(point);
    while (stack.size() >= 4) {
      const std::size_t n = stack.size();
      const double r1 = std::abs(stack[n - 3] - stack[n - 4]);
      const double r2 = std::abs(stack[n - 2] - stack[n - 3]);
      const double r3 = std::abs(stack[n - 1] - stack[n - 2]);
      if (r2 > r1 || r2 > r3) break;
      result.full.push_back(RainflowCycle{r2, 0.5 * (stack[n - 3] + stack[n - 2]), 1.0});
      stack[n - 3] = stack[n - 1];
      stack.resize(n - 2);
    }
  }
  if (points.has_provisional &&
      (stack.empty() || stack.back() != points.provisional)) {
    stack.push_back(points.provisional);
  }
  for (std::size_t i = 1; i < stack.size(); ++i) {
    result.half.push_back(
        RainflowCycle{std::abs(stack[i] - stack[i - 1]), 0.5 * (stack[i] + stack[i - 1]), 0.5});
  }
  return result;
}

class RainflowReferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RainflowReferenceTest, StreamingMatchesOffline) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 131 + 7};
  const int length = 200 + GetParam() * 137;

  std::vector<double> samples;
  double soc = 0.5;
  for (int i = 0; i < length; ++i) {
    soc = std::min(1.0, std::max(0.0, soc + rng.uniform(-0.15, 0.15)));
    samples.push_back(soc);
  }

  std::vector<RainflowCycle> streaming_full;
  RainflowCounter counter{[&](const RainflowCycle& c) { streaming_full.push_back(c); }};
  for (double s : samples) counter.push(s);
  std::vector<RainflowCycle> streaming_half;
  counter.for_each_residual([&](const RainflowCycle& c) { streaming_half.push_back(c); });

  const OfflineResult reference = offline_rainflow(samples);

  ASSERT_EQ(streaming_full.size(), reference.full.size());
  for (std::size_t i = 0; i < streaming_full.size(); ++i) {
    EXPECT_NEAR(streaming_full[i].range, reference.full[i].range, 1e-12) << "cycle " << i;
    EXPECT_NEAR(streaming_full[i].mean, reference.full[i].mean, 1e-12) << "cycle " << i;
  }

  ASSERT_EQ(streaming_half.size(), reference.half.size());
  for (std::size_t i = 0; i < streaming_half.size(); ++i) {
    EXPECT_NEAR(streaming_half[i].range, reference.half[i].range, 1e-12) << "half " << i;
    EXPECT_NEAR(streaming_half[i].mean, reference.half[i].mean, 1e-12) << "half " << i;
  }

  // The aggregate the degradation model consumes.
  auto weighted = [](const std::vector<RainflowCycle>& cycles) {
    double sum = 0.0;
    for (const auto& c : cycles) sum += c.weight * c.range * c.mean;
    return sum;
  };
  EXPECT_NEAR(weighted(streaming_full) + weighted(streaming_half),
              weighted(reference.full) + weighted(reference.half), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomWalks, RainflowReferenceTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace blam
