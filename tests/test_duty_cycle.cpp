#include "mac/duty_cycle.hpp"

#include <gtest/gtest.h>

#include "net/experiment.hpp"

namespace blam {
namespace {

TEST(DutyCycleLimiter, ValidatesDuty) {
  EXPECT_THROW(DutyCycleLimiter{0.0}, std::invalid_argument);
  EXPECT_THROW(DutyCycleLimiter{1.1}, std::invalid_argument);
  EXPECT_NO_THROW(DutyCycleLimiter{1.0});
}

TEST(DutyCycleLimiter, TOffRule) {
  DutyCycleLimiter limiter{0.01};  // EU 1%
  EXPECT_TRUE(limiter.can_transmit(Time::zero()));
  // 1 s of airtime at 1% -> 99 s of silence after the transmission ends.
  limiter.record(Time::zero(), Time::from_seconds(1.0));
  EXPECT_EQ(limiter.next_allowed(), Time::from_seconds(100.0));
  EXPECT_FALSE(limiter.can_transmit(Time::from_seconds(50.0)));
  EXPECT_TRUE(limiter.can_transmit(Time::from_seconds(100.0)));
}

TEST(DutyCycleLimiter, FullDutyNeverBlocks) {
  DutyCycleLimiter limiter{1.0};
  limiter.record(Time::zero(), Time::from_seconds(10.0));
  EXPECT_TRUE(limiter.can_transmit(Time::from_seconds(10.0)));
}

TEST(DutyCycleLimiter, LongestTOffWins) {
  DutyCycleLimiter limiter{0.1};
  limiter.record(Time::zero(), Time::from_seconds(2.0));            // allowed at 20 s
  limiter.record(Time::from_seconds(0.5), Time::from_ms(100));      // allowed at 1.5 s
  EXPECT_EQ(limiter.next_allowed(), Time::from_seconds(20.0));
}

TEST(DutyCycleLimiter, RejectsNegativeAirtime) {
  DutyCycleLimiter limiter{0.5};
  EXPECT_THROW(limiter.record(Time::zero(), Time::from_seconds(-1.0)), std::invalid_argument);
}

TEST(DutyCycleNetwork, TightDutyThrottlesRetransmissions) {
  // SF10 airtime ~0.3 s; at 0.1% duty each transmission buys ~5 min of
  // silence — the retransmission ladder cannot run, defers accumulate and
  // PRR drops versus the unlimited twin.
  ScenarioConfig open = lorawan_scenario(40, 13);
  ScenarioConfig tight = open;
  tight.duty_cycle = 0.001;
  const auto trace = build_shared_trace(open);
  const ExperimentResult a = run_scenario(open, Time::from_days(2.0), trace);
  const ExperimentResult b = run_scenario(tight, Time::from_days(2.0), trace);

  std::uint64_t defers = 0;
  for (const NodeMetrics& m : b.nodes) defers += m.duty_defers;
  EXPECT_GT(defers, 0u);
  // Regulatory silence delays deliveries and drops ladder tails.
  EXPECT_LE(b.summary.mean_prr, a.summary.mean_prr);
  EXPECT_GT(b.summary.mean_delivered_latency_s, a.summary.mean_delivered_latency_s);

  std::uint64_t defers_open = 0;
  for (const NodeMetrics& m : a.nodes) defers_open += m.duty_defers;
  EXPECT_EQ(defers_open, 0u);  // duty 1.0 never defers
}

TEST(DutyCycleNetwork, OnePercentIsTransparentAtLoraTraffic) {
  // A 16-60 min period at ~0.3 s airtime is ~0.03% duty: EU's 1% cap should
  // barely bite for first transmissions.
  ScenarioConfig c = lorawan_scenario(20, 14);
  c.duty_cycle = 0.01;
  const ExperimentResult r = run_scenario(c, Time::from_days(2.0));
  EXPECT_GT(r.summary.mean_prr, 0.9);
}

TEST(ExternalInterference, ForeignTrafficHurtsReception) {
  ScenarioConfig quiet = lorawan_scenario(30, 15);
  ScenarioConfig noisy = quiet;
  noisy.interference.tx_per_hour = 20000.0;  // saturated band
  noisy.interference.min_rx_dbm = -110.0;
  noisy.interference.max_rx_dbm = -90.0;
  const auto trace = build_shared_trace(quiet);
  const ExperimentResult a = run_scenario(quiet, Time::from_days(1.0), trace);
  const ExperimentResult b = run_scenario(noisy, Time::from_days(1.0), trace);
  EXPECT_GT(b.gateway.lost_interference, a.gateway.lost_interference);
  EXPECT_LT(b.summary.mean_prr, a.summary.mean_prr);
}

TEST(ExternalInterference, MildTrafficIsTolerated) {
  ScenarioConfig c = lorawan_scenario(20, 16);
  c.interference.tx_per_hour = 60.0;  // one alien packet a minute
  const ExperimentResult r = run_scenario(c, Time::from_days(1.0));
  EXPECT_GT(r.summary.mean_prr, 0.9);
}

}  // namespace
}  // namespace blam
