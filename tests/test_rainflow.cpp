#include "degradation/rainflow.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace blam {
namespace {

struct Collector {
  std::vector<RainflowCycle> full;
  RainflowCounter counter{[this](const RainflowCycle& c) { full.push_back(c); }};

  std::vector<RainflowCycle> residual() const {
    std::vector<RainflowCycle> out;
    counter.for_each_residual([&out](const RainflowCycle& c) { out.push_back(c); });
    return out;
  }

  double total_weighted_range() const {
    double sum = 0.0;
    for (const auto& c : full) sum += c.weight * c.range;
    for (const auto& c : residual()) sum += c.weight * c.range;
    return sum;
  }
};

TEST(Rainflow, RequiresCallback) {
  EXPECT_THROW(RainflowCounter(nullptr), std::invalid_argument);
}

TEST(Rainflow, MonotoneTraceHasNoFullCycles) {
  Collector c;
  for (double v : {0.0, 0.1, 0.2, 0.5, 0.9}) c.counter.push(v);
  EXPECT_TRUE(c.full.empty());
  const auto residual = c.residual();
  ASSERT_EQ(residual.size(), 1u);  // one half cycle 0 -> 0.9
  EXPECT_NEAR(residual[0].range, 0.9, 1e-12);
  EXPECT_NEAR(residual[0].mean, 0.45, 1e-12);
  EXPECT_DOUBLE_EQ(residual[0].weight, 0.5);
}

TEST(Rainflow, PlateausAreAbsorbed) {
  Collector c;
  for (double v : {0.0, 0.5, 0.5, 0.5, 1.0}) c.counter.push(v);
  EXPECT_TRUE(c.full.empty());
  EXPECT_EQ(c.residual().size(), 1u);
}

TEST(Rainflow, SmallInnerCycleClosesInsideLargerSwing) {
  // 0 -> 1 -> 0.4 -> 0.6 -> 0 -> (0.8): the 0.4/0.6 pair is a full inner
  // cycle; it closes once the final 0 is CONFIRMED as a turning point by
  // the direction change toward 0.8.
  Collector c;
  for (double v : {0.0, 1.0, 0.4, 0.6, 0.0, 0.8}) c.counter.push(v);
  ASSERT_EQ(c.full.size(), 1u);
  EXPECT_NEAR(c.full[0].range, 0.2, 1e-12);
  EXPECT_NEAR(c.full[0].mean, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(c.full[0].weight, 1.0);
}

TEST(Rainflow, RepeatedIdenticalSwingsCloseEachTime) {
  // Sawtooth 0 -> 1 -> 0 -> 1 -> ... every descent+ascent pair closes one
  // full cycle of range 1.
  Collector c;
  c.counter.push(0.0);
  for (int i = 0; i < 10; ++i) {
    c.counter.push(1.0);
    c.counter.push(0.0);
  }
  EXPECT_EQ(c.counter.full_cycles(), 9u);
  for (const auto& cycle : c.full) {
    EXPECT_NEAR(cycle.range, 1.0, 1e-12);
    EXPECT_NEAR(cycle.mean, 0.5, 1e-12);
  }
}

TEST(Rainflow, AstmReferenceSequence) {
  // Classic ASTM E1049 example: peaks/valleys -2,1,-3,5,-1,3,-4,4,-2,
  // scaled into [0,1] SoC by (x+4)/9. Online four-point counting closes
  // exactly one full cycle before the trace ends: (-1,3), range 4, when -4
  // arrives (|3-(-1)|=4 <= |5-(-1)|=6 and <= |3-(-4)|=7).
  const std::vector<double> seq{-2, 1, -3, 5, -1, 3, -4, 4, -2};
  Collector c;
  for (double v : seq) c.counter.push((v + 4.0) / 9.0);
  ASSERT_EQ(c.full.size(), 1u);
  EXPECT_NEAR(c.full[0].range, 4.0 / 9.0, 1e-12);
  EXPECT_NEAR(c.full[0].mean, 5.0 / 9.0, 1e-12);  // midpoint of -1 and 3
  // Residual: confirmed stack -2,1,-3,5,-4,4 plus the provisional final -2
  // = 6 half cycles.
  EXPECT_EQ(c.residual().size(), 6u);
}

TEST(Rainflow, ResidualIsNonDestructive) {
  Collector c;
  for (double v : {0.0, 1.0, 0.2, 0.8}) c.counter.push(v);
  const auto first = c.residual();
  const auto second = c.residual();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].range, second[i].range);
  }
  // Continuing the stream after residual queries still works.
  c.counter.push(0.0);
  c.counter.push(1.0);
  EXPECT_GE(c.counter.full_cycles(), 1u);
}

TEST(Rainflow, WeightedRangeConservationProperty) {
  // Sum of weight*range over (full cycles + residual halves) must equal
  // half the total variation of the turning-point sequence - a standard
  // rainflow invariant. Check on random walks.
  Rng rng{42};
  for (int trial = 0; trial < 20; ++trial) {
    Collector c;
    double soc = 0.5;
    double prev = soc;
    double total_variation = 0.0;
    c.counter.push(soc);
    for (int i = 0; i < 500; ++i) {
      soc = std::min(1.0, std::max(0.0, soc + rng.uniform(-0.2, 0.2)));
      total_variation += std::abs(soc - prev);
      prev = soc;
      c.counter.push(soc);
    }
    EXPECT_NEAR(c.total_weighted_range(), 0.5 * total_variation, 1e-9) << "trial " << trial;
  }
}

TEST(Rainflow, ResidualStackStaysSmallOnLongStreams) {
  Collector c;
  Rng rng{7};
  double soc = 0.5;
  c.counter.push(soc);
  for (int i = 0; i < 100000; ++i) {
    soc = std::min(1.0, std::max(0.0, soc + rng.uniform(-0.1, 0.1)));
    c.counter.push(soc);
  }
  // The residual is a monotone envelope: it cannot exceed a few dozen
  // entries even after 100k samples.
  EXPECT_LT(c.counter.residual_depth(), 64u);
  EXPECT_GT(c.counter.full_cycles(), 1000u);
}

TEST(Rainflow, MeanIsMidpointOfCycleExtremes) {
  Collector c;
  // Trailing 0.9 confirms the final 0.2 so the inner (0.5, 0.7) closes.
  for (double v : {0.2, 0.9, 0.5, 0.7, 0.2, 0.9}) c.counter.push(v);
  ASSERT_EQ(c.full.size(), 1u);
  EXPECT_NEAR(c.full[0].mean, 0.6, 1e-12);  // (0.5 + 0.7) / 2
}

}  // namespace
}  // namespace blam
