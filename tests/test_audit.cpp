// Runtime invariant auditor: hook-level violation detection, throw mode,
// environment overrides, and the bit-identity guarantee (any audit level
// observes the same simulation).
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "audit/audit.hpp"
#include "net/experiment.hpp"
#include "net/network.hpp"

namespace blam {
namespace {

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_{name} {
    if (const char* v = std::getenv(name)) saved_ = v;
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

AuditConfig level2() {
  AuditConfig config;
  config.level = 2;
  return config;
}

TEST(AuditConfigTest, EnvOverridesLevelAndThrow) {
  const EnvGuard g1{"BLAM_AUDIT"};
  const EnvGuard g2{"BLAM_AUDIT_THROW"};
  ::setenv("BLAM_AUDIT", "2", 1);
  ::setenv("BLAM_AUDIT_THROW", "1", 1);
  AuditConfig base;
  AuditConfig resolved = audit_config_from_env(base);
  EXPECT_EQ(resolved.level, 2);
  EXPECT_TRUE(resolved.throw_on_violation);

  // Malformed / out-of-range values keep the scenario's setting.
  ::setenv("BLAM_AUDIT", "9", 1);
  ::setenv("BLAM_AUDIT_THROW", "?", 1);
  base.level = 1;
  base.throw_on_violation = true;
  resolved = audit_config_from_env(base);
  EXPECT_EQ(resolved.level, 1);
  EXPECT_TRUE(resolved.throw_on_violation);

  ::unsetenv("BLAM_AUDIT");
  ::unsetenv("BLAM_AUDIT_THROW");
  resolved = audit_config_from_env(base);
  EXPECT_EQ(resolved.level, 1);
}

TEST(AuditorTest, RejectsInvalidConstruction) {
  AuditConfig config;
  config.level = 0;  // level 0 means "build no Auditor"
  EXPECT_THROW(Auditor{config}, std::invalid_argument);
  config.level = 3;
  EXPECT_THROW(Auditor{config}, std::invalid_argument);
  config.level = 1;
  config.sample_every = 0;
  EXPECT_THROW(Auditor{config}, std::invalid_argument);
}

TEST(AuditorTest, EventPopRegressionIsViolation) {
  Auditor audit{level2()};
  audit.on_event_pop(Time::from_seconds(10.0), Time::from_seconds(10.0));
  audit.on_event_pop(Time::from_seconds(10.0), Time::from_seconds(11.0));
  EXPECT_EQ(audit.violation_count(), 0u);
  audit.on_event_pop(Time::from_seconds(10.0), Time::from_seconds(9.0));
  ASSERT_EQ(audit.violation_count(), 1u);
  EXPECT_EQ(audit.violations()[0].invariant, AuditInvariant::kEventMonotonic);
  EXPECT_EQ(audit.violations()[0].node, -1);
}

TEST(AuditorTest, SocOutsideUnitIntervalIsViolation) {
  Auditor audit{level2()};
  audit.on_soc(3, Time::from_seconds(1.0), 0.5, 1.0);
  audit.on_soc(3, Time::from_seconds(2.0), 1.2, 1.0);
  ASSERT_EQ(audit.violation_count(), 1u);
  EXPECT_EQ(audit.violations()[0].invariant, AuditInvariant::kSocBounds);
  EXPECT_EQ(audit.violations()[0].node, 3);
  EXPECT_DOUBLE_EQ(audit.violations()[0].observed, 1.2);
}

TEST(AuditorTest, SocRisingAboveCapIsViolationButDrainingAboveCapIsNot) {
  Auditor audit{level2()};
  // Adaptive theta lowered the cap under the current charge: sitting above
  // the cap while non-increasing is legal...
  audit.on_soc(7, Time::from_seconds(1.0), 0.80, 0.5);
  audit.on_soc(7, Time::from_seconds(2.0), 0.78, 0.5);
  audit.on_soc(7, Time::from_seconds(3.0), 0.70, 0.5);
  EXPECT_EQ(audit.violation_count(), 0u);
  // ...but CHARGING above the cap means charge() ignored theta.
  audit.on_soc(7, Time::from_seconds(4.0), 0.75, 0.5);
  ASSERT_EQ(audit.violation_count(), 1u);
  const AuditViolation& v = audit.violations()[0];
  EXPECT_EQ(v.invariant, AuditInvariant::kSocBounds);
  EXPECT_EQ(v.node, 7);
  EXPECT_EQ(v.at, Time::from_seconds(4.0));
  EXPECT_NE(v.to_string().find("node 7"), std::string::npos);
}

TEST(AuditorTest, FadeMustBeMonotonicWithinUnitInterval) {
  Auditor audit{level2()};
  audit.on_degradation(1, Time::from_days(1.0), 0.01);
  audit.on_degradation(1, Time::from_days(2.0), 0.02);
  EXPECT_EQ(audit.violation_count(), 0u);
  audit.on_degradation(1, Time::from_days(3.0), 0.015);  // fade went backwards
  EXPECT_EQ(audit.violation_count(), 1u);
  EXPECT_EQ(audit.violations()[0].invariant, AuditInvariant::kFadeMonotonic);
  audit.on_degradation(1, Time::from_days(4.0), 1.5);  // outside [0, 1]
  EXPECT_EQ(audit.violation_count(), 2u);
}

TEST(AuditorTest, TransmissionInsideTOffWindowIsViolation) {
  Auditor audit{level2()};
  const Time airtime = Time::from_ms(100);
  // 1% duty: T_off = 100 ms * 99 = 9.9 s; next allowed at t = 10 s.
  audit.on_transmission(2, Time::from_seconds(1.0), airtime, 0.01);
  EXPECT_EQ(audit.violation_count(), 0u);
  audit.on_transmission(2, Time::from_seconds(5.0), airtime, 0.01);
  ASSERT_EQ(audit.violation_count(), 1u);
  EXPECT_EQ(audit.violations()[0].invariant, AuditInvariant::kDutyCycle);
  // max_duty = 1 disables the rule entirely.
  Auditor lax{level2()};
  lax.on_transmission(2, Time::from_seconds(1.0), airtime, 1.0);
  lax.on_transmission(2, Time::from_seconds(1.1), airtime, 1.0);
  EXPECT_EQ(lax.violation_count(), 0u);
}

TEST(AuditorTest, AckConsistencyAndFeedbackRange) {
  Auditor audit{level2()};
  audit.on_ack(4, Time::from_seconds(1.0), 4, 10, 12, true, 0.3);
  EXPECT_EQ(audit.violation_count(), 0u);
  audit.on_ack(4, Time::from_seconds(2.0), 5, 10, 12, false, 0.0);  // wrong node
  audit.on_ack(4, Time::from_seconds(3.0), 4, 99, 12, false, 0.0);  // never sent
  audit.on_ack(4, Time::from_seconds(4.0), 4, 11, 12, true, 1.7);   // w_u out of range
  ASSERT_EQ(audit.violation_count(), 3u);
  EXPECT_EQ(audit.violations()[0].invariant, AuditInvariant::kSequence);
  EXPECT_EQ(audit.violations()[1].invariant, AuditInvariant::kSequence);
  EXPECT_EQ(audit.violations()[2].invariant, AuditInvariant::kFeedbackRange);
}

TEST(AuditorTest, ServerSequenceMustIncrease) {
  Auditor audit{level2()};
  audit.on_uplink_seq(0, Time::from_seconds(1.0), 1, -1);
  audit.on_uplink_seq(0, Time::from_seconds(2.0), 2, 1);
  EXPECT_EQ(audit.violation_count(), 0u);
  audit.on_uplink_seq(0, Time::from_seconds(3.0), 2, 2);
  EXPECT_EQ(audit.violation_count(), 1u);
  EXPECT_EQ(audit.violations()[0].invariant, AuditInvariant::kSequence);
}

TEST(AuditorTest, EnergyFlowImbalanceIsViolation) {
  Auditor audit{level2()};
  // Balanced surplus interval: harvest 2 J, demand 1 J, 0.5 J charged,
  // 0.5 J wasted, stored grows by 0.5 J.
  PowerFlow ok;
  ok.from_green = Energy::from_joules(1.0);
  ok.charged = Energy::from_joules(0.5);
  ok.wasted = Energy::from_joules(0.5);
  audit.on_energy_flow(0, Time::from_seconds(1.0), Energy::from_joules(2.0),
                       Energy::from_joules(1.0), ok, Energy::from_joules(10.0),
                       Energy::from_joules(10.5), 1.0);
  EXPECT_EQ(audit.violation_count(), 0u);

  // Same flow but the battery "gained" 1.0 J out of 0.5 J charged.
  audit.on_energy_flow(0, Time::from_seconds(2.0), Energy::from_joules(2.0),
                       Energy::from_joules(1.0), ok, Energy::from_joules(10.5),
                       Energy::from_joules(11.5), 1.0);
  ASSERT_GE(audit.violation_count(), 1u);
  EXPECT_EQ(audit.violations()[0].invariant, AuditInvariant::kEnergyConservation);
}

TEST(AuditorTest, ContinuityCatchesUnreportedStorageChange) {
  Auditor audit{level2()};
  PowerFlow idle;  // no demand, no harvest: stored must not move
  audit.on_energy_flow(1, Time::from_seconds(1.0), Energy::zero(), Energy::zero(), idle,
                       Energy::from_joules(5.0), Energy::from_joules(5.0), 1.0);
  // Reported loss keeps the ledger consistent across the gap...
  audit.on_storage_loss(1, Time::from_seconds(2.0), Energy::from_joules(0.25));
  audit.on_energy_flow(1, Time::from_seconds(3.0), Energy::zero(), Energy::zero(), idle,
                       Energy::from_joules(4.75), Energy::from_joules(4.75), 1.0);
  EXPECT_EQ(audit.violation_count(), 0u);
  // ...an UNREPORTED change does not.
  audit.on_energy_flow(1, Time::from_seconds(4.0), Energy::zero(), Energy::zero(), idle,
                       Energy::from_joules(4.0), Energy::from_joules(4.0), 1.0);
  ASSERT_EQ(audit.violation_count(), 1u);
  EXPECT_EQ(audit.violations()[0].invariant, AuditInvariant::kEnergyConservation);
}

TEST(AuditorTest, ThrowModeRaisesAuditErrorWithStructuredViolation) {
  AuditConfig config = level2();
  config.throw_on_violation = true;
  Auditor audit{config};
  try {
    audit.on_soc(9, Time::from_hours(2.0), 1.5, 1.0);
    FAIL() << "expected AuditError";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.violation().node, 9);
    EXPECT_EQ(e.violation().invariant, AuditInvariant::kSocBounds);
    EXPECT_NE(std::string{e.what()}.find("node 9"), std::string::npos);
  }
}

TEST(AuditorTest, Level1SamplesChecksButAccumulatesTotalsExactly) {
  AuditConfig config;
  config.level = 1;
  config.sample_every = 4;
  Auditor audit{config};
  PowerFlow flow;
  flow.from_green = Energy::from_joules(1.0);
  for (int i = 0; i < 8; ++i) {
    audit.on_energy_flow(0, Time::from_seconds(i), Energy::from_joules(1.0),
                         Energy::from_joules(1.0), flow, Energy::from_joules(2.0),
                         Energy::from_joules(2.0), 1.0);
  }
  EXPECT_EQ(audit.checks_run(), 2u);  // every 4th of 8 calls
  EXPECT_DOUBLE_EQ(audit.total_harvested_j(), 8.0);  // totals never sampled
  EXPECT_DOUBLE_EQ(audit.total_consumed_j(), 8.0);
}

TEST(AuditIntegrationTest, CleanScenarioHasZeroViolationsAtLevel2) {
  ScenarioConfig config = blam_scenario(6, 0.5, 11);
  config.audit.level = 2;
  config.duty_cycle = 0.01;
  config.supercap_tx_buffer = 2.0;
  config.battery_self_discharge_per_month = 0.02;
  Network network{config};
  network.run_until(Time::from_days(5.0));
  ASSERT_NE(network.auditor(), nullptr);
  EXPECT_GT(network.auditor()->checks_run(), 1000u);
  EXPECT_EQ(network.auditor()->violation_count(), 0u)
      << (network.auditor()->violations().empty()
              ? std::string{}
              : network.auditor()->violations()[0].to_string());
  // Network-wide ledger totals are physically sensible.
  EXPECT_GT(network.auditor()->total_harvested_j(), 0.0);
  EXPECT_GT(network.auditor()->total_consumed_j(), 0.0);
}

TEST(AuditIntegrationTest, AuditLevelDoesNotChangeResults) {
  const Time duration = Time::from_days(4.0);
  std::optional<NetworkSummary> reference;
  for (const int level : {0, 1, 2}) {
    ScenarioConfig config = blam_scenario(5, 0.5, 23);
    config.audit.level = level;
    Network network{config};
    EXPECT_EQ(network.auditor() != nullptr, level > 0);
    network.run_until(duration);
    network.finalize_metrics();
    const NetworkSummary summary = network.metrics().summarize();
    if (!reference.has_value()) {
      reference = summary;
      continue;
    }
    SCOPED_TRACE("level=" + std::to_string(level));
    EXPECT_EQ(summary.mean_prr, reference->mean_prr);
    EXPECT_EQ(summary.mean_retx, reference->mean_retx);
    EXPECT_EQ(summary.max_degradation, reference->max_degradation);
    EXPECT_EQ(summary.total_tx_energy.joules(), reference->total_tx_energy.joules());
  }
}

}  // namespace
}  // namespace blam
