#include "core/utility.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

namespace blam {
namespace {

TEST(LinearUtility, PaperEquation16) {
  const LinearUtility u;
  // mu = (n - t) / n.
  EXPECT_DOUBLE_EQ(u.value(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(u.value(5, 10), 0.5);
  EXPECT_DOUBLE_EQ(u.value(9, 10), 0.1);
}

TEST(LinearUtility, SingleWindowIsFullUtility) {
  const LinearUtility u;
  EXPECT_DOUBLE_EQ(u.value(0, 1), 1.0);
}

TEST(UtilityFunctions, RangeChecks) {
  const LinearUtility u;
  EXPECT_THROW((void)u.value(-1, 10), std::invalid_argument);
  EXPECT_THROW((void)u.value(10, 10), std::invalid_argument);
  EXPECT_THROW((void)u.value(0, 0), std::invalid_argument);
}

TEST(ExponentialUtility, ShapeAndBounds) {
  const ExponentialUtility u{3.0};
  EXPECT_DOUBLE_EQ(u.value(0, 10), 1.0);
  EXPECT_NEAR(u.value(9, 10), std::exp(-2.7), 1e-12);
  EXPECT_THROW(ExponentialUtility{-1.0}, std::invalid_argument);
}

TEST(StepUtility, DeadlineSemantics) {
  const StepUtility u{0.3, 0.1};
  EXPECT_DOUBLE_EQ(u.value(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(u.value(3, 10), 1.0);   // 0.3 of the period: still fresh
  EXPECT_DOUBLE_EQ(u.value(4, 10), 0.1);   // past the deadline
  EXPECT_DOUBLE_EQ(u.value(9, 10), 0.1);
  EXPECT_THROW(StepUtility(1.5, 0.1), std::invalid_argument);
  EXPECT_THROW(StepUtility(0.5, 1.5), std::invalid_argument);
}

// Property sweep: every utility implementation must be monotonically
// non-increasing in t and bounded in [0, 1] — the protocol relies on both.
class UtilityPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {
 protected:
  static std::unique_ptr<UtilityFunction> make(const std::string& kind) {
    if (kind == "linear") return std::make_unique<LinearUtility>();
    if (kind == "exponential") return std::make_unique<ExponentialUtility>(2.5);
    return std::make_unique<StepUtility>(0.4, 0.05);
  }
};

TEST_P(UtilityPropertyTest, MonotoneNonIncreasingAndBounded) {
  const auto [kind, n] = GetParam();
  const auto u = make(kind);
  double prev = 1.0 + 1e-12;
  for (int t = 0; t < n; ++t) {
    const double v = u->value(t, n);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    EXPECT_LE(v, prev) << kind << " t=" << t << " n=" << n;
    prev = v;
  }
}

TEST_P(UtilityPropertyTest, FirstWindowHasFullUtility) {
  const auto [kind, n] = GetParam();
  EXPECT_DOUBLE_EQ(make(kind)->value(0, n), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllUtilitiesAndWidths, UtilityPropertyTest,
    ::testing::Combine(::testing::Values("linear", "exponential", "step"),
                       ::testing::Values(1, 2, 10, 16, 60)),
    [](const auto& suite_info) {
      return std::string{std::get<0>(suite_info.param)} + "_n" +
             std::to_string(std::get<1>(suite_info.param));
    });

}  // namespace
}  // namespace blam
