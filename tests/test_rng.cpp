#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace blam {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123, 7};
  Rng b{123, 7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a{123, 0};
  Rng b{123, 1};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{1};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{2};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{3};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit in 1000 draws
}

TEST(Rng, UniformIntSingleton) {
  Rng rng{4};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMoments) {
  Rng rng{5};
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng{6};
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng{7};
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(3.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, BernoulliEdges) {
  Rng rng{8};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng{9};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent{77, 1};
  Rng child1 = parent.fork(5);
  Rng child2 = parent.fork(5);
  EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, ForkSaltsAreIndependent) {
  Rng parent{77, 1};
  Rng a = parent.fork(5);
  Rng b = parent.fork(6);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Splitmix, ReferenceValue) {
  // First output from a zero state, per the splitmix64 reference
  // implementation.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace blam
