// Clairvoyant centralized scheduler — the paper's Sec. III-A formulation.
//
// The exact problem is a bi-objective mixed-integer non-linear program
// (minimize max degradation AND max (1 - utility), subject to one packet per
// period per node, at most omega concurrent receptions per TDMA slot, and
// battery bounds). The paper argues it is impractical and never deploys it;
// we implement the natural greedy relaxation as a reference point:
//
//   * time is divided into rho slots; node u generates a packet every tau_u
//     slots and must send it within that period (constraint 10);
//   * packets are scheduled most-degraded-node-first (the min-max degradation
//     objective in priority form); each packet takes the feasible slot in its
//     period with the lowest local score
//       gamma = (1 - mu) + w_u * DIF * w_b
//     subject to slot capacity omega (constraint 11) and the battery bounds
//     (constraints 12 / 20);
//   * battery state evolves per Eq. 5 with the theta charge cap.
//
// The oracle sees true future harvest (clairvoyance), has no collisions and
// no retransmissions — it bounds what any distributed protocol can achieve,
// and the tests compare Algorithm 1 against it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "core/utility.hpp"

namespace blam {

struct OracleNodeSpec {
  /// Packet period in slots (tau_u >= 1).
  int period_slots{1};
  /// True harvest per slot, length = horizon slots.
  std::vector<Energy> harvest;
  /// Energy of one (collision-free) transmission.
  Energy tx_cost{};
  /// Battery: initial stored energy and the theta-capped ceiling.
  Energy initial{};
  Energy storage_cap{};
  /// Normalized degradation weight w_u.
  double w_u{0.0};
};

struct OracleConfig {
  int horizon_slots{0};
  /// Max concurrent receptions per slot (gateway channels * demodulators).
  int omega{8};
  double w_b{1.0};
  const UtilityFunction* utility{nullptr};
};

struct OracleAssignment {
  int node{-1};
  /// Packet index within the node's stream.
  int packet{-1};
  /// Absolute slot chosen; -1 if the packet could not be scheduled.
  int slot{-1};
  double utility{0.0};
  double gamma{0.0};
};

struct OracleResult {
  std::vector<OracleAssignment> assignments;
  /// Per-node mean utility over scheduled packets.
  std::vector<double> node_utility;
  /// Per-node count of unschedulable packets.
  std::vector<int> node_drops;
  /// Mean SoC proxy per node (time average of stored/capacity ceiling base).
  std::vector<double> node_mean_soc;
  /// Slot occupancy histogram (diagnostics).
  std::vector<int> slot_load;
};

class TdmaScheduler {
 public:
  /// Greedy schedule; validates inputs (throws std::invalid_argument).
  [[nodiscard]] OracleResult schedule(const OracleConfig& config,
                                      const std::vector<OracleNodeSpec>& nodes) const;
};

}  // namespace blam
