#include "oracle/tdma_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/dif.hpp"

namespace blam {

namespace {

struct PacketRef {
  int gen_slot;
  double w_u;
  int node;
  int packet;
};

void validate(const OracleConfig& config, const std::vector<OracleNodeSpec>& nodes) {
  if (config.horizon_slots <= 0) throw std::invalid_argument{"oracle: horizon must be positive"};
  if (config.omega <= 0) throw std::invalid_argument{"oracle: omega must be positive"};
  if (config.utility == nullptr) throw std::invalid_argument{"oracle: utility required"};
  if (config.w_b < 0.0 || config.w_b > 1.0) throw std::invalid_argument{"oracle: w_b in [0,1]"};
  for (const OracleNodeSpec& n : nodes) {
    if (n.period_slots <= 0) throw std::invalid_argument{"oracle: period_slots must be positive"};
    if (n.harvest.size() != static_cast<std::size_t>(config.horizon_slots)) {
      throw std::invalid_argument{"oracle: harvest length must equal horizon"};
    }
    if (n.tx_cost <= Energy::zero()) throw std::invalid_argument{"oracle: tx_cost must be positive"};
    if (n.w_u < 0.0 || n.w_u > 1.0) throw std::invalid_argument{"oracle: w_u in [0,1]"};
  }
}

}  // namespace

OracleResult TdmaScheduler::schedule(const OracleConfig& config,
                                     const std::vector<OracleNodeSpec>& nodes) const {
  validate(config, nodes);

  // Global DIF normalizer: worst transmission cost in the network.
  Energy max_tx = Energy::zero();
  for (const OracleNodeSpec& n : nodes) max_tx = std::max(max_tx, n.tx_cost);

  // Enumerate packets: one per full period inside the horizon (the paper's
  // constraint 10 defers the trailing partial period to the next run).
  std::vector<PacketRef> packets;
  for (std::size_t u = 0; u < nodes.size(); ++u) {
    int packet = 0;
    for (int g = 0; g + nodes[u].period_slots <= config.horizon_slots;
         g += nodes[u].period_slots) {
      packets.push_back(PacketRef{g, nodes[u].w_u, static_cast<int>(u), packet++});
    }
  }
  // Time order; within a generation batch the most degraded node picks first
  // (priority form of the min-max degradation objective).
  std::stable_sort(packets.begin(), packets.end(), [](const PacketRef& a, const PacketRef& b) {
    if (a.gen_slot != b.gen_slot) return a.gen_slot < b.gen_slot;
    return a.w_u > b.w_u;
  });

  OracleResult result;
  result.slot_load.assign(static_cast<std::size_t>(config.horizon_slots), 0);
  result.node_utility.assign(nodes.size(), 0.0);
  result.node_drops.assign(nodes.size(), 0);
  result.node_mean_soc.assign(nodes.size(), 0.0);

  // Per-node rolling battery state at the start of its next unscheduled
  // period, plus counters for the utility mean and SoC time-average.
  std::vector<Energy> stored(nodes.size());
  std::vector<int> scheduled_count(nodes.size(), 0);
  std::vector<double> soc_integral(nodes.size(), 0.0);
  for (std::size_t u = 0; u < nodes.size(); ++u) {
    stored[u] = std::min(nodes[u].initial, nodes[u].storage_cap);
  }

  for (const PacketRef& p : packets) {
    const OracleNodeSpec& node = nodes[static_cast<std::size_t>(p.node)];
    const auto u = static_cast<std::size_t>(p.node);
    const int tau = node.period_slots;

    // Cumulative energy available by each slot of the period (Eq. 20 with
    // the theta cap applied to carried energy, as in Algorithm 1).
    std::vector<Energy> available(static_cast<std::size_t>(tau));
    Energy carried = std::min(stored[u], node.storage_cap);
    for (int i = 0; i < tau; ++i) {
      const auto s = static_cast<std::size_t>(p.gen_slot + i);
      available[static_cast<std::size_t>(i)] = carried + node.harvest[s];
      carried = std::min(available[static_cast<std::size_t>(i)], node.storage_cap);
    }

    int best = -1;
    double best_gamma = 0.0;
    double best_mu = 0.0;
    for (int i = 0; i < tau; ++i) {
      const auto s = static_cast<std::size_t>(p.gen_slot + i);
      if (result.slot_load[s] >= config.omega) continue;            // constraint 11
      if (available[static_cast<std::size_t>(i)] < node.tx_cost) continue;  // constraint 20
      const double mu = config.utility->value(i, tau);
      const double dif = degradation_impact_factor(node.tx_cost, node.harvest[s], max_tx);
      const double gamma = (1.0 - mu) + p.w_u * dif * config.w_b;
      if (best < 0 || gamma < best_gamma) {
        best = i;
        best_gamma = gamma;
        best_mu = mu;
      }
    }

    OracleAssignment assignment;
    assignment.node = p.node;
    assignment.packet = p.packet;
    if (best >= 0) {
      assignment.slot = p.gen_slot + best;
      assignment.utility = best_mu;
      assignment.gamma = best_gamma;
      ++result.slot_load[static_cast<std::size_t>(assignment.slot)];
      result.node_utility[u] += best_mu;
      ++scheduled_count[u];
    } else {
      ++result.node_drops[u];
    }
    result.assignments.push_back(assignment);

    // Roll the battery through this period (Eq. 5 with the charge cap).
    for (int i = 0; i < tau; ++i) {
      const auto s = static_cast<std::size_t>(p.gen_slot + i);
      Energy level = stored[u] + node.harvest[s];
      if (best == i) level = level >= node.tx_cost ? level - node.tx_cost : Energy::zero();
      stored[u] = std::min(level, node.storage_cap);
      soc_integral[u] += node.storage_cap > Energy::zero() ? stored[u] / node.storage_cap : 0.0;
    }
  }

  for (std::size_t u = 0; u < nodes.size(); ++u) {
    if (scheduled_count[u] > 0) result.node_utility[u] /= scheduled_count[u];
    const int slots_seen =
        (config.horizon_slots / nodes[u].period_slots) * nodes[u].period_slots;
    if (slots_seen > 0) result.node_mean_soc[u] = soc_integral[u] / slots_seen;
  }
  return result;
}

}  // namespace blam
