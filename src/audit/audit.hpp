// Runtime invariant auditor: samples the simulator's physical bookkeeping
// while it runs and records (or throws on) violations.
//
// The long-run figures (Figs. 5-10) rest on energy conservation, SoC caps
// and rainflow-fed capacity fade being computed correctly over simulated
// years; a silently wrong ledger ships a wrong figure. The auditor is an
// observe-only tap on the hot paths: Node reports every PowerSwitch flow and
// storage loss, the Simulator reports every event pop, and the NetworkServer
// reports every accepted uplink. The auditor never draws random numbers and
// never mutates simulation state, so results are bit-identical at every
// audit level.
//
// Levels: 0 = off (no Auditor is constructed; hooks are a null-pointer test),
// 1 = sampled (state is tracked on every call, the arithmetic checks run on
// every `sample_every`-th call per invariant), 2 = every call. Environment
// overrides: BLAM_AUDIT=<0|1|2> and BLAM_AUDIT_THROW=<0|1>.
//
// Thread safety: one Auditor belongs to one Network (one simulator thread).
// Sweep workers each own their cell's Network and therefore their own
// Auditor; no cross-thread state.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "energy/power_switch.hpp"

namespace blam {

enum class AuditInvariant {
  /// Per-node ledger: harvest/demand splits, storage delta vs charged minus
  /// drawn (conversion loss bounded by the supercap efficiency), and
  /// continuity of stored energy across accounting intervals.
  kEnergyConservation,
  /// Battery SoC in [0, 1] and never *rising* above the theta cap.
  kSocBounds,
  /// Capacity fade is monotonically non-decreasing and in [0, 1].
  kFadeMonotonic,
  /// The event queue never pops a timestamp behind the simulation clock.
  kEventMonotonic,
  /// Transmissions respect the regulatory duty-cycle T_off rule.
  kDutyCycle,
  /// ACKs name the node and an uplink sequence number it actually sent; the
  /// server accepts per-node sequence numbers strictly monotonically.
  kSequence,
  /// Disseminated normalized degradation w_u in [0, 1].
  kFeedbackRange,
  /// Fault-free only: the gateway ledger's per-node degradation estimate
  /// must not exceed the node's own tracker by more than the configured
  /// tolerance. One-sided — the gateway sees a subsampled trace and
  /// legitimately underestimates; a ledger *inflating* degradation means
  /// the ingest pipeline fabricated aging.
  kFeedbackConsistency,
};

[[nodiscard]] const char* audit_invariant_name(AuditInvariant invariant);

struct AuditViolation {
  AuditInvariant invariant{AuditInvariant::kEnergyConservation};
  /// Simulation time of the offending observation.
  Time at{};
  /// Node id, or -1 for network-wide invariants (event-queue order).
  std::int64_t node{-1};
  double observed{0.0};
  double bound{0.0};
  std::string detail;

  /// "[audit] energy-conservation: node 3 at <t>: <detail> (observed ...,
  /// bound ...)" — the structured fields rendered for logs and AuditError.
  [[nodiscard]] std::string to_string() const;
};

struct AuditConfig {
  /// 0 = off (Network builds no Auditor), 1 = sampled, 2 = every call.
  int level{0};
  /// Throw AuditError at the first violation instead of recording it.
  bool throw_on_violation{false};
  /// Energy-ledger tolerance: abs + rel * max(|terms|) joules. The switch's
  /// identities are exact up to double rounding, so 1e-9 relative leaves
  /// seven orders of magnitude between rounding noise and a real bug.
  double rel_tolerance{1e-9};
  double abs_tolerance_j{1e-9};
  /// Tolerance for dimensionless bounds (SoC, degradation, w_u).
  double soc_tolerance{1e-9};
  /// Feedback-consistency slack: the ledger may exceed node truth by
  /// rel * truth + abs before it counts as fabrication. The gateway's
  /// trace is minute-quantized and subsampled, so this is loose by design.
  double feedback_rel_tolerance{0.05};
  double feedback_abs_tolerance{1e-6};
  /// Level 1: run each invariant's arithmetic on every n-th observation.
  int sample_every{16};
  /// Violations kept for reporting (the count is always exact).
  std::size_t max_recorded{64};
};

/// Applies the BLAM_AUDIT / BLAM_AUDIT_THROW environment overrides on top of
/// `base` (malformed values are ignored, keeping the scenario's setting).
[[nodiscard]] AuditConfig audit_config_from_env(AuditConfig base);

class AuditError : public std::runtime_error {
 public:
  explicit AuditError(AuditViolation violation);
  [[nodiscard]] const AuditViolation& violation() const { return violation_; }

 private:
  AuditViolation violation_;
};

class Auditor {
 public:
  explicit Auditor(AuditConfig config);

  // --- hooks (called by Simulator / Node / NetworkServer) -----------------

  /// One PowerSwitch::apply interval. `stored_before`/`stored_after` are the
  /// node's TOTAL stored energy (battery + supercap) around the call;
  /// `min_store_efficiency` is the worst storage path efficiency (the
  /// supercap's when attached, else 1), bounding the legal conversion loss.
  void on_energy_flow(std::uint32_t node, Time at, Energy harvest, Energy demand,
                      const PowerFlow& flow, Energy stored_before, Energy stored_after,
                      double min_store_efficiency);

  /// Storage lost outside the switch: supercap leak, battery self-discharge,
  /// or the fade clamp. Keeps the cross-interval continuity check honest.
  void on_storage_loss(std::uint32_t node, Time at, Energy amount);

  /// Battery SoC sample against the active theta cap. A SoC above the cap is
  /// legal only while non-increasing (adaptive theta may lower the cap under
  /// the current charge); a SoC *rising* above it means charge() ignored it.
  void on_soc(std::uint32_t node, Time at, double soc, double cap);

  /// Capacity fade applied to the battery (daily refresh).
  void on_degradation(std::uint32_t node, Time at, double degradation);

  /// Event-queue pop: `event_time` must not precede the clock `now`.
  void on_event_pop(Time now, Time event_time);

  /// A transmission started at `start` occupying `airtime`; replays the
  /// ETSI T_off rule (`off = airtime * (1/duty - 1)`) independently of
  /// DutyCycleLimiter. `max_duty` = 1 disables the check.
  void on_transmission(std::uint32_t node, Time start, Time airtime, double max_duty);

  /// Node accepted an ACK; `highest_seq` is the highest uplink sequence the
  /// node has generated so far.
  void on_ack(std::uint32_t node, Time at, std::uint32_t ack_node, std::uint32_t ack_seq,
              std::uint32_t highest_seq, bool has_w, double w);

  /// Server accepted a non-duplicate uplink; `prev_seen` is the highest
  /// sequence previously delivered for the node (-1 = none).
  void on_uplink_seq(std::uint32_t node, Time at, std::int64_t seq, std::int64_t prev_seen);

  /// Gateway ledger estimate vs node ground truth at a recompute instant
  /// (called by the NetworkServer on fault-free runs only; see
  /// kFeedbackConsistency).
  void on_feedback_ledger(std::uint32_t node, Time at, double gateway_estimate,
                          double node_truth);

  // --- results -------------------------------------------------------------

  [[nodiscard]] const AuditConfig& config() const { return config_; }
  /// Total violations observed (recording is capped, counting is not).
  [[nodiscard]] std::uint64_t violation_count() const { return violation_count_; }
  /// First `max_recorded` violations, in observation order.
  [[nodiscard]] const std::vector<AuditViolation>& violations() const { return violations_; }
  /// Invariant evaluations actually run (after sampling).
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  /// Network-wide energy totals accumulated by the ledger (joules).
  [[nodiscard]] double total_harvested_j() const { return total_harvested_j_; }
  [[nodiscard]] double total_consumed_j() const { return total_consumed_j_; }
  [[nodiscard]] double total_wasted_j() const { return total_wasted_j_; }

  /// One-line summary: "audit level 2: N checks, M violations".
  [[nodiscard]] std::string summary() const;

 private:
  struct NodeLedger {
    bool seen_flow{false};
    /// Total stored energy after the last audited flow.
    double last_stored_j{0.0};
    /// External losses reported since that flow (leak/self-discharge/fade).
    double pending_loss_j{0.0};
    double last_soc{-1.0};
    bool seen_soc{false};
    double last_degradation{0.0};
    Time duty_next_allowed{Time::zero()};
  };

  [[nodiscard]] NodeLedger& ledger(std::uint32_t node);
  /// Level-2: always due. Level-1: every sample_every-th call per counter.
  [[nodiscard]] bool due(std::uint64_t& counter);
  void report(AuditInvariant invariant, Time at, std::int64_t node, double observed,
              double bound, std::string detail);

  AuditConfig config_;
  std::vector<NodeLedger> ledgers_;
  std::vector<AuditViolation> violations_;
  std::uint64_t violation_count_{0};
  std::uint64_t checks_run_{0};
  std::uint64_t flow_counter_{0};
  std::uint64_t soc_counter_{0};
  std::uint64_t event_counter_{0};
  double total_harvested_j_{0.0};
  double total_consumed_j_{0.0};
  double total_wasted_j_{0.0};
};

}  // namespace blam
