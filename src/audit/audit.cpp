#include "audit/audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace blam {

const char* audit_invariant_name(AuditInvariant invariant) {
  switch (invariant) {
    case AuditInvariant::kEnergyConservation:
      return "energy-conservation";
    case AuditInvariant::kSocBounds:
      return "soc-bounds";
    case AuditInvariant::kFadeMonotonic:
      return "fade-monotonic";
    case AuditInvariant::kEventMonotonic:
      return "event-monotonic";
    case AuditInvariant::kDutyCycle:
      return "duty-cycle";
    case AuditInvariant::kSequence:
      return "sequence";
    case AuditInvariant::kFeedbackRange:
      return "feedback-range";
    case AuditInvariant::kFeedbackConsistency:
      return "feedback-consistency";
  }
  return "?";
}

std::string AuditViolation::to_string() const {
  std::string s = "[audit] ";
  s += audit_invariant_name(invariant);
  s += ": ";
  if (node >= 0) {
    s += "node " + std::to_string(node) + " ";
  }
  s += "at " + at.to_string() + ": " + detail;
  s += " (observed " + std::to_string(observed) + ", bound " + std::to_string(bound) + ")";
  return s;
}

AuditConfig audit_config_from_env(AuditConfig base) {
  if (const char* env = std::getenv("BLAM_AUDIT")) {
    char* end = nullptr;
    const long level = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && level >= 0 && level <= 2) {
      base.level = static_cast<int>(level);
    }
  }
  if (const char* env = std::getenv("BLAM_AUDIT_THROW")) {
    if (env[0] == '1' || env[0] == 't' || env[0] == 'T' || env[0] == 'y' || env[0] == 'Y') {
      base.throw_on_violation = true;
    } else if (env[0] == '0' || env[0] == 'f' || env[0] == 'F' || env[0] == 'n' ||
               env[0] == 'N') {
      base.throw_on_violation = false;
    }
  }
  return base;
}

AuditError::AuditError(AuditViolation violation)
    : std::runtime_error{violation.to_string()}, violation_{std::move(violation)} {}

Auditor::Auditor(AuditConfig config) : config_{config} {
  if (config_.level < 1 || config_.level > 2) {
    throw std::invalid_argument{"Auditor: level must be 1 or 2 (0 means build no Auditor)"};
  }
  if (config_.sample_every < 1) {
    throw std::invalid_argument{"Auditor: sample_every must be >= 1"};
  }
}

Auditor::NodeLedger& Auditor::ledger(std::uint32_t node) {
  if (node >= ledgers_.size()) ledgers_.resize(static_cast<std::size_t>(node) + 1);
  return ledgers_[node];
}

bool Auditor::due(std::uint64_t& counter) {
  if (config_.level >= 2) return true;
  return (counter++ % static_cast<std::uint64_t>(config_.sample_every)) == 0;
}

void Auditor::report(AuditInvariant invariant, Time at, std::int64_t node, double observed,
                     double bound, std::string detail) {
  AuditViolation v;
  v.invariant = invariant;
  v.at = at;
  v.node = node;
  v.observed = observed;
  v.bound = bound;
  v.detail = std::move(detail);
  ++violation_count_;
  if (violations_.size() < config_.max_recorded) violations_.push_back(v);
  if (config_.throw_on_violation) throw AuditError{std::move(v)};
}

void Auditor::on_energy_flow(std::uint32_t node, Time at, Energy harvest, Energy demand,
                             const PowerFlow& flow, Energy stored_before, Energy stored_after,
                             double min_store_efficiency) {
  NodeLedger& led = ledger(node);
  // The totals always accumulate; only the arithmetic checks are sampled, or
  // the network-wide ledger would have holes at level 1.
  total_harvested_j_ += harvest.joules();
  total_consumed_j_ += (demand - flow.deficit).joules();
  total_wasted_j_ += flow.wasted.joules();

  if (due(flow_counter_)) {
    ++checks_run_;
    const double scale = std::max({std::abs(harvest.joules()), std::abs(demand.joules()),
                                   std::abs(stored_before.joules()),
                                   std::abs(stored_after.joules())});
    const double tol = config_.abs_tolerance_j + config_.rel_tolerance * scale;

    const double negatives =
        std::min({flow.from_green.joules(), flow.from_battery.joules(), flow.charged.joules(),
                  flow.wasted.joules(), flow.deficit.joules()});
    if (negatives < -tol) {
      report(AuditInvariant::kEnergyConservation, at, node, negatives, 0.0,
             "negative flow component");
    }

    const double demand_split =
        flow.from_green.joules() + flow.from_battery.joules() + flow.deficit.joules();
    if (std::abs(demand_split - demand.joules()) > tol) {
      report(AuditInvariant::kEnergyConservation, at, node, demand_split, demand.joules(),
             "demand != from_green + from_battery + deficit");
    }

    const double harvest_split =
        flow.from_green.joules() + flow.charged.joules() + flow.wasted.joules();
    if (std::abs(harvest_split - harvest.joules()) > tol) {
      report(AuditInvariant::kEnergyConservation, at, node, harvest_split, harvest.joules(),
             "harvest != from_green + charged + wasted");
    }

    // Storage delta: the stores gained `charged` (minus a conversion loss no
    // worse than the least efficient path) and supplied `from_battery`.
    const double delta = stored_after.joules() - stored_before.joules();
    const double conversion_loss = flow.charged.joules() - flow.from_battery.joules() - delta;
    const double max_loss = flow.charged.joules() * (1.0 - min_store_efficiency);
    if (conversion_loss < -tol || conversion_loss > max_loss + tol) {
      report(AuditInvariant::kEnergyConservation, at, node, conversion_loss, max_loss,
             "storage delta outside [charged*eff - drawn, charged - drawn]");
    }

    // Continuity: stored energy only changes through flows and reported
    // external losses; anything else is energy appearing from nowhere.
    if (led.seen_flow) {
      const double expected_before = led.last_stored_j - led.pending_loss_j;
      const double ctol = config_.abs_tolerance_j +
                          config_.rel_tolerance *
                              std::max(std::abs(expected_before), std::abs(stored_before.joules()));
      if (std::abs(stored_before.joules() - expected_before) > ctol) {
        report(AuditInvariant::kEnergyConservation, at, node, stored_before.joules(),
               expected_before, "stored energy changed between accounting intervals");
      }
    }
  }

  led.seen_flow = true;
  led.last_stored_j = stored_after.joules();
  led.pending_loss_j = 0.0;
}

void Auditor::on_storage_loss(std::uint32_t node, Time at, Energy amount) {
  NodeLedger& led = ledger(node);
  led.pending_loss_j += amount.joules();
  if (amount.joules() < -config_.abs_tolerance_j) {
    ++checks_run_;
    report(AuditInvariant::kEnergyConservation, at, node, amount.joules(), 0.0,
           "negative external storage loss");
  }
}

void Auditor::on_soc(std::uint32_t node, Time at, double soc, double cap) {
  NodeLedger& led = ledger(node);
  const bool check = due(soc_counter_);
  if (check) {
    ++checks_run_;
    const double tol = config_.soc_tolerance;
    if (soc < -tol || soc > 1.0 + tol) {
      report(AuditInvariant::kSocBounds, at, node, soc, soc < 0.0 ? 0.0 : 1.0,
             "SoC outside [0, 1]");
    } else if (soc > cap + tol && led.seen_soc && soc > led.last_soc + tol) {
      // Above the cap AND rising: charge() ignored theta. (Merely sitting
      // above a cap that adaptive theta lowered is legal while draining.)
      report(AuditInvariant::kSocBounds, at, node, soc, cap, "SoC charged above the theta cap");
    }
  }
  led.last_soc = soc;
  led.seen_soc = true;
}

void Auditor::on_degradation(std::uint32_t node, Time at, double degradation) {
  NodeLedger& led = ledger(node);
  ++checks_run_;
  const double tol = config_.soc_tolerance;
  if (degradation < -tol || degradation > 1.0 + tol) {
    report(AuditInvariant::kFadeMonotonic, at, node, degradation,
           degradation < 0.0 ? 0.0 : 1.0, "degradation outside [0, 1]");
  }
  if (degradation + tol < led.last_degradation) {
    report(AuditInvariant::kFadeMonotonic, at, node, degradation, led.last_degradation,
           "capacity fade decreased");
  }
  led.last_degradation = std::max(led.last_degradation, degradation);
}

void Auditor::on_event_pop(Time now, Time event_time) {
  if (!due(event_counter_)) return;
  ++checks_run_;
  if (event_time < now) {
    report(AuditInvariant::kEventMonotonic, now, -1, event_time.seconds(), now.seconds(),
           "event queue popped a timestamp behind the clock");
  }
}

void Auditor::on_transmission(std::uint32_t node, Time start, Time airtime, double max_duty) {
  NodeLedger& led = ledger(node);
  ++checks_run_;
  if (airtime < Time::zero()) {
    report(AuditInvariant::kDutyCycle, start, node, airtime.seconds(), 0.0, "negative airtime");
    return;
  }
  if (max_duty < 1.0) {
    if (start < led.duty_next_allowed) {
      report(AuditInvariant::kDutyCycle, start, node, start.seconds(),
             led.duty_next_allowed.seconds(), "transmission inside the regulatory T_off window");
    }
    // Same arithmetic as DutyCycleLimiter::record, tracked independently.
    const Time off = airtime * (1.0 / max_duty - 1.0);
    const Time candidate = start + airtime + off;
    if (candidate > led.duty_next_allowed) led.duty_next_allowed = candidate;
  }
}

void Auditor::on_ack(std::uint32_t node, Time at, std::uint32_t ack_node, std::uint32_t ack_seq,
                     std::uint32_t highest_seq, bool has_w, double w) {
  ++checks_run_;
  if (ack_node != node) {
    report(AuditInvariant::kSequence, at, node, static_cast<double>(ack_node),
           static_cast<double>(node), "ACK addressed to a different node was accepted");
  }
  if (ack_seq > highest_seq) {
    report(AuditInvariant::kSequence, at, node, static_cast<double>(ack_seq),
           static_cast<double>(highest_seq), "ACK confirms a sequence the node never sent");
  }
  if (has_w) {
    const double tol = config_.soc_tolerance;
    if (w < -tol || w > 1.0 + tol) {
      report(AuditInvariant::kFeedbackRange, at, node, w, w < 0.0 ? 0.0 : 1.0,
             "disseminated w_u outside [0, 1]");
    }
  }
}

void Auditor::on_uplink_seq(std::uint32_t node, Time at, std::int64_t seq,
                            std::int64_t prev_seen) {
  ++checks_run_;
  if (seq <= prev_seen) {
    report(AuditInvariant::kSequence, at, node, static_cast<double>(seq),
           static_cast<double>(prev_seen),
           "server accepted a non-increasing uplink sequence number");
  }
}

void Auditor::on_feedback_ledger(std::uint32_t node, Time at, double gateway_estimate,
                                 double node_truth) {
  ++checks_run_;
  const double bound =
      node_truth * (1.0 + config_.feedback_rel_tolerance) + config_.feedback_abs_tolerance;
  if (gateway_estimate > bound) {
    report(AuditInvariant::kFeedbackConsistency, at, node, gateway_estimate, bound,
           "gateway ledger degradation exceeds the node's own tracker");
  }
}

std::string Auditor::summary() const {
  return "audit level " + std::to_string(config_.level) + ": " + std::to_string(checks_run_) +
         " checks, " + std::to_string(violation_count_) + " violation(s)";
}

}  // namespace blam
