#include "mac/greedy_green_mac.hpp"

#include <algorithm>

namespace blam {

MacDecision GreedyGreenMac::select_window(const WindowContext& ctx) {
  if (ctx.harvest_forecast.empty()) return MacDecision{true, 0};
  // Most forecast harvest wins; earliest window breaks ties (so the policy
  // degenerates to ALOHA at night, when every forecast is zero).
  int best = 0;
  for (int w = 1; w < static_cast<int>(ctx.harvest_forecast.size()); ++w) {
    if (ctx.harvest_forecast[static_cast<std::size_t>(w)] >
        ctx.harvest_forecast[static_cast<std::size_t>(best)]) {
      best = w;
    }
  }
  return MacDecision{true, best};
}

}  // namespace blam
