// LoRaWAN Adaptive Data Rate (ADR), network-server side.
//
// The paper's MAC runs on top of standard LoRaWAN parameter control ("the
// nodes can change their transmission parameters dynamically as governed by
// the underlying MAC layer or the network server", Sec. III-B) — its EWMA
// energy estimate (Eq. 13) exists precisely because ADR changes the cost of
// a transmission over time. This implements the standard server-side ADR:
// keep the SNR of the last N uplinks, compute the margin over the SF's
// demodulation floor, and convert every 3 dB of spare margin into one step
// of data rate (SF down) and then TX power (down to the minimum).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lora/params.hpp"

namespace blam {

/// SNR demodulation floor (dB) for each SF at 125 kHz, per the LoRaWAN
/// specification / SX1301 datasheet.
[[nodiscard]] double required_snr_db(SpreadingFactor sf);

/// Thermal-noise floor (dBm) of a receiver: -174 + 10 log10(BW) + NF.
[[nodiscard]] double noise_floor_dbm(double bandwidth_hz, double noise_figure_db = 6.0);

/// A parameter adjustment the server piggybacks on an ACK (LinkADRReq).
struct AdrCommand {
  SpreadingFactor sf{SpreadingFactor::kSF10};
  double tx_power_dbm{14.0};
};

class AdrController {
 public:
  struct Config {
    /// Uplinks remembered per node.
    int history{20};
    /// Safety margin (dB) on top of the demodulation floor.
    double device_margin_db{10.0};
    /// TX power bounds (dBm); steps of 2 dB like US-915.
    double max_tx_power_dbm{14.0};
    double min_tx_power_dbm{2.0};
    /// Fewest uplinks before the first adjustment.
    int min_history{10};
  };

  explicit AdrController(const Config& config);

  /// Records a decoded uplink's SNR for `node_id`.
  void observe(std::uint32_t node_id, double snr_db);

  /// Computes the adjusted parameters for the node, or nullopt when history
  /// is too short or nothing would change. `current` is what the node uses
  /// now; the result never increases SF and never raises power above max.
  [[nodiscard]] std::optional<AdrCommand> advise(std::uint32_t node_id,
                                                 const AdrCommand& current) const;

  [[nodiscard]] const Config& config() const { return config_; }

  /// One node's SNR history, for "blamsim v1" engine checkpoints.
  struct NodeSnapshot {
    std::uint32_t node_id{0};
    std::vector<double> snr_db;  // oldest first
  };

  /// Snapshots every node's history, sorted by node id (the map iterates in
  /// hash order; checkpoints must be byte-stable for identical state).
  [[nodiscard]] std::vector<NodeSnapshot> snapshot() const;

  /// Replaces all history with the snapshot's (restore is a rebuild: the
  /// controller was freshly constructed from the same scenario config).
  void restore(const std::vector<NodeSnapshot>& nodes);

 private:
  struct History {
    std::deque<double> snr_db;
  };

  // blam-ckpt: skip -- construction input, rebuilt by enable_adr() from the same ScenarioConfig
  Config config_;
  // blam-lint: allow(D2) -- lookup-only by node id (observe/advise); never iterated
  std::unordered_map<std::uint32_t, History> nodes_;
};

}  // namespace blam
