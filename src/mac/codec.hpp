// LoRaWAN-style wire format for the protocol's frames.
//
// The simulator itself never serializes (airtime is computed from byte
// counts), but a real deployment must, and the paper's overhead claims are
// byte-level claims: +4 bytes of SoC transition report per uplink, +1 byte
// of normalized degradation per ACK. This codec pins those claims down:
//
//   uplink:   MHDR(1) DevAddr(4) FCtrl(1) FCnt(2) FOpts(0|5|7) FPort(1)
//             app payload(N) [MIC(4) omitted in simulation]
//   FOpts:    per SoC sample: minute offset u8 + SoC in Q8 u8 — 2 bytes a
//             sample, 4 bytes for the paper's two-point report — followed,
//             whenever a report is present, by a 3-byte integrity trailer:
//             report sequence u16 LE + CRC-8 over the preceding FOpts
//             report bytes and the sequence. The trailer lets a real
//             gateway detect lost, duplicated, reordered or bit-corrupted
//             reports; decode_uplink() rejects a bad CRC.
//   downlink: MHDR(1) DevAddr(4) FCtrl(1, ACK bit) FCnt(2)
//             [w_u Q8 (1)] [LinkADR sf|power (1) + channel mask (2) +
//             redundancy (1)] [theta Q8 (1)]
//
// Encoding is lossy only in the documented quantizations (minute-resolution
// sample times, Q16/Q8 fractions); decode() inverts everything else
// exactly, which the round-trip property tests assert. (Quantization is
// lossier than the paper's own "2x2 bytes per value" sketch because the
// paper's stated TOTAL is +4 bytes for two samples; minute-resolution
// offsets and 0.4% SoC steps are far below the protocol's needs anyway.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mac/frame.hpp"

namespace blam {

/// Serializes an uplink. `app_payload` bytes are zero-filled (the simulator
/// carries no application data).
[[nodiscard]] std::vector<std::uint8_t> encode_uplink(const UplinkFrame& frame);

/// Parses an uplink. Sample times are reconstructed relative to
/// `reference` (the receiver knows the frame's arrival time; sample offsets
/// are carried as minutes BEFORE the frame). Throws std::invalid_argument
/// on truncated or malformed input.
[[nodiscard]] UplinkFrame decode_uplink(std::span<const std::uint8_t> bytes, Time reference);

[[nodiscard]] std::vector<std::uint8_t> encode_ack(const AckFrame& ack);
[[nodiscard]] AckFrame decode_ack(std::span<const std::uint8_t> bytes);

/// Fixed header bytes of the uplink format (everything except FOpts and the
/// application payload).
inline constexpr std::size_t kUplinkHeaderBytes = 1 + 4 + 1 + 2 + 1;
/// Fixed header bytes of the downlink format.
inline constexpr std::size_t kAckHeaderBytes = 1 + 4 + 1 + 2;
/// Integrity trailer appended to FOpts when a SoC report is present:
/// report sequence number (u16) + CRC-8.
inline constexpr std::size_t kReportTrailerBytes = 2 + 1;

}  // namespace blam
