// Device-side MAC policy interface.
//
// The class-A transmission machinery (attempts, receive windows, ACK
// timeouts) is shared by every protocol and lives in net::Node; what varies
// between LoRaWAN, BLAM and the H-50C ablation is only (a) WHICH forecast
// window of the sampling period carries the packet and (b) the charging cap
// theta. MacPolicy captures exactly that variation, so every figure's
// protocol variants share one code path.
#pragma once

#include <span>
#include <string>

#include "common/units.hpp"
#include "core/utility.hpp"
#include "core/window_selector.hpp"

namespace blam {

/// Everything a policy may consult when picking a window for the packet
/// generated at the start of the current sampling period.
struct WindowContext {
  /// Number of forecast windows in this sampling period (>= 1).
  int n_windows{1};
  Time window_length{};
  Time period_start{};
  /// Current stored battery energy.
  Energy battery{};
  /// Battery original capacity (theta cap base).
  Energy battery_capacity{};
  /// Normalized degradation w_u received from the gateway.
  double w_u{0.0};
  /// Age of w_u in dissemination periods (0 = fresh). Counted from the
  /// node's boot when no feedback has arrived yet.
  double w_u_age_periods{0.0};
  /// Staleness threshold k (dissemination periods) after which a policy
  /// should stop trusting w_u and decay toward the conservative regime;
  /// 0 disables the fallback (the paper's behavior).
  double stale_feedback_k{0.0};
  /// Degradation-vs-utility weight w_b.
  double w_b{1.0};
  /// Forecast harvest per window (empty if the policy does not need it).
  std::span<const Energy> harvest_forecast;
  /// Estimated transmission cost per window (EWMA * expected transmissions).
  std::span<const Energy> tx_cost;
  /// Worst-case one-packet energy (DIF normalizer).
  Energy max_tx{};
  const UtilityFunction* utility{nullptr};
  /// Optional caller-owned scratch for Algorithm 1 (hot-path nodes own one
  /// alongside their forecast buffers); null = the policy allocates.
  WindowSelector::Workspace* workspace{nullptr};
};

struct MacDecision {
  /// False = policy drops the packet (Algorithm 1 FAIL).
  bool transmit{true};
  /// Window index in [0, n_windows).
  int window{0};
};

class MacPolicy {
 public:
  virtual ~MacPolicy() = default;

  [[nodiscard]] virtual MacDecision select_window(const WindowContext& ctx) = 0;

  /// Theta: stored-energy ceiling as a fraction of original capacity.
  [[nodiscard]] virtual double soc_cap() const = 0;

  /// Adopts a network-manager theta update (adaptive-theta extension).
  /// Default: ignored (policies without a cap).
  virtual void set_soc_cap(double theta) { (void)theta; }

  /// Whether the node must compute solar forecasts and energy estimates for
  /// this policy (false for plain LoRaWAN — saves simulation time and models
  /// the overhead difference of Table I).
  [[nodiscard]] virtual bool needs_forecasts() const = 0;

  /// Whether uplinks carry the SoC trace report (BLAM protocol field).
  [[nodiscard]] virtual bool reports_soc() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace blam
