// Regulatory duty-cycle enforcement (ETSI-style).
//
// EU-868 caps a device at 1% duty cycle per sub-band; the standard
// implementation (also used by NS-3 lorawan) is the T_off rule: after a
// transmission of airtime T_a, the device must stay silent for
//   T_off = T_a * (1/duty - 1).
// US-915 has no duty cycle (it has dwell-time limits instead), so the
// limiter is disabled by default in the scenarios.
#pragma once

#include "common/units.hpp"

namespace blam {

class DutyCycleLimiter {
 public:
  /// `max_duty` in (0, 1]; 1.0 disables the wait entirely.
  explicit DutyCycleLimiter(double max_duty);

  /// Earliest instant a new transmission may start.
  [[nodiscard]] Time next_allowed() const { return next_allowed_; }

  [[nodiscard]] bool can_transmit(Time now) const { return now >= next_allowed_; }

  /// Accounts a transmission [start, start+airtime) and arms T_off.
  void record(Time start, Time airtime);

  [[nodiscard]] double max_duty() const { return max_duty_; }

  /// Checkpoint restore: reinstates the armed T_off deadline.
  void restore_next_allowed(Time at) { next_allowed_ = at; }

 private:
  // blam-ckpt: skip -- construction input (scenario duty_cycle); next_allowed_ is serialized
  double max_duty_;
  Time next_allowed_{Time::zero()};
};

}  // namespace blam
