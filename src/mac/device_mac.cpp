// MacPolicy is an interface; this TU anchors its vtable.
#include "mac/device_mac.hpp"
