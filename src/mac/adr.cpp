#include "mac/adr.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace blam {

double required_snr_db(SpreadingFactor sf) {
  static constexpr std::array<double, 6> kFloor{-7.5, -10.0, -12.5, -15.0, -17.5, -20.0};
  return kFloor[sf_index(sf)];
}

double noise_floor_dbm(double bandwidth_hz, double noise_figure_db) {
  if (bandwidth_hz <= 0.0) throw std::invalid_argument{"noise_floor_dbm: bandwidth must be positive"};
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

AdrController::AdrController(const Config& config) : config_{config} {
  if (config.history <= 0 || config.min_history <= 0 || config.min_history > config.history) {
    throw std::invalid_argument{"AdrController: invalid history configuration"};
  }
  if (config.min_tx_power_dbm > config.max_tx_power_dbm) {
    throw std::invalid_argument{"AdrController: invalid TX power bounds"};
  }
}

void AdrController::observe(std::uint32_t node_id, double snr_db) {
  History& h = nodes_[node_id];
  h.snr_db.push_back(snr_db);
  while (h.snr_db.size() > static_cast<std::size_t>(config_.history)) h.snr_db.pop_front();
}

std::optional<AdrCommand> AdrController::advise(std::uint32_t node_id,
                                                const AdrCommand& current) const {
  const auto it = nodes_.find(node_id);
  if (it == nodes_.end() ||
      it->second.snr_db.size() < static_cast<std::size_t>(config_.min_history)) {
    return std::nullopt;
  }
  // The LoRaWAN-recommended ADR uses the MAX SNR of the history (robust to
  // fading dips without starving the link).
  const double snr_max = *std::max_element(it->second.snr_db.begin(), it->second.snr_db.end());
  double margin = snr_max - required_snr_db(current.sf) - config_.device_margin_db;
  int steps = static_cast<int>(std::floor(margin / 3.0));

  AdrCommand next = current;
  // Spend steps on data rate first (SF down to 7), then on TX power.
  while (steps > 0 && next.sf != SpreadingFactor::kSF7) {
    next.sf = sf_from_value(sf_value(next.sf) - 1);
    --steps;
  }
  while (steps > 0 && next.tx_power_dbm - 2.0 >= config_.min_tx_power_dbm) {
    next.tx_power_dbm -= 2.0;
    --steps;
  }
  // Negative margin: climb power back up (never raises SF — the standard
  // leaves SF increases to the device's own ADR backoff).
  while (steps < 0 && next.tx_power_dbm + 2.0 <= config_.max_tx_power_dbm) {
    next.tx_power_dbm += 2.0;
    ++steps;
  }

  if (next.sf == current.sf && next.tx_power_dbm == current.tx_power_dbm) return std::nullopt;
  return next;
}

std::vector<AdrController::NodeSnapshot> AdrController::snapshot() const {
  std::vector<NodeSnapshot> out;
  out.reserve(nodes_.size());
  for (const auto& [node_id, history] : nodes_) {
    NodeSnapshot snap;
    snap.node_id = node_id;
    snap.snr_db.assign(history.snr_db.begin(), history.snr_db.end());
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const NodeSnapshot& a, const NodeSnapshot& b) { return a.node_id < b.node_id; });
  return out;
}

void AdrController::restore(const std::vector<NodeSnapshot>& nodes) {
  nodes_.clear();
  for (const NodeSnapshot& snap : nodes) {
    History& h = nodes_[snap.node_id];
    h.snr_db.assign(snap.snr_db.begin(), snap.snr_db.end());
  }
}

}  // namespace blam
