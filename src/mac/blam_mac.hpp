// The proposed battery lifespan-aware MAC policy: Algorithm 1 over the
// forecast windows of each sampling period, with the theta charging cap.
// H-5 / H-50 / H-100 in the paper are this policy with theta = 0.05 / 0.5 /
// 1.0.
#pragma once

#include "core/window_selector.hpp"
#include "mac/device_mac.hpp"

namespace blam {

class BlamMac final : public MacPolicy {
 public:
  explicit BlamMac(double theta);

  [[nodiscard]] MacDecision select_window(const WindowContext& ctx) override;
  [[nodiscard]] double soc_cap() const override { return theta_; }
  void set_soc_cap(double theta) override;
  [[nodiscard]] bool needs_forecasts() const override { return true; }
  [[nodiscard]] bool reports_soc() const override { return true; }
  [[nodiscard]] std::string name() const override;

  /// Details of the most recent selection (diagnostics, Fig. 3 bench).
  [[nodiscard]] const WindowSelection& last_selection() const { return last_; }

  /// The w_u actually fed to Algorithm 1: the reported value while fresh,
  /// decayed toward 1 (conservative) once it is older than
  /// ctx.stale_feedback_k dissemination periods. Exposed for tests.
  [[nodiscard]] static double effective_w_u(const WindowContext& ctx);

 private:
  double theta_;
  // blam-ckpt: skip -- stateless selection strategy, rebuilt at construction
  WindowSelector selector_;
  WindowSelection last_{};
};

}  // namespace blam
