// Frame definitions for uplink data and downlink ACKs, including the BLAM
// protocol's piggy-backed fields: SoC transition points on uplinks (paper:
// +4 bytes) and the normalized degradation on ACKs (paper: +1 byte). Byte
// sizes feed the airtime model so protocol overhead costs real energy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "core/degradation_service.hpp"
#include "mac/adr.hpp"

namespace blam {

struct UplinkFrame {
  std::uint32_t node_id{0};
  std::uint32_t seq{0};
  /// 0-based transmission attempt (0 = first transmission).
  int attempt{0};
  Time generated_at{};
  /// Forecast window the MAC chose for this packet.
  int selected_window{0};
  /// Application payload (paper: 10 bytes).
  int app_payload_bytes{10};
  /// SoC transition points since the last report (BLAM only; paper models
  /// this as exactly two points = 4 bytes).
  std::vector<SocSample> soc_report;
  /// Per-node SoC-report generation counter (serial-number arithmetic,
  /// wraps). One generation per packet that carries a report;
  /// retransmissions reuse it (their refreshed trailing sample travels
  /// under a refreshed CRC). Resets to zero on a node crash (it lives in
  /// MCU RAM), which is exactly how the gateway detects the reboot. Zero
  /// when no report is attached.
  std::uint16_t report_seq{0};
  /// CRC-8 over the report (sequence number + samples); lets the gateway
  /// reject bit-corrupted reports instead of ingesting garbage.
  std::uint8_t report_crc{0};
  bool confirmed{true};

  /// PHY payload size: application bytes plus 2 bytes per reported SoC
  /// transition point (paper Sec. III-B: 2x2 bytes for t and psi). The
  /// integrity trailer is deliberately excluded: the paper's airtime/energy
  /// model predates it, and charging it here would shift every committed
  /// figure. Its true 3-byte wire cost is pinned by the codec tests.
  [[nodiscard]] int total_bytes() const {
    return app_payload_bytes + 2 * static_cast<int>(soc_report.size());
  }
};

struct AckFrame {
  std::uint32_t node_id{0};
  std::uint32_t seq{0};
  /// Present once per dissemination period (paper: daily), +1 byte.
  bool has_degradation{false};
  double normalized_degradation{0.0};
  /// Optional LinkADRReq-style parameter adjustment (+4 bytes).
  std::optional<AdrCommand> adr;
  /// Optional network-manager theta update (+1 byte, adaptive-theta ext.).
  std::optional<double> theta;

  /// Empty LoRaWAN downlink frame body plus the optional degradation byte,
  /// the optional ADR command and the optional theta update.
  [[nodiscard]] int total_bytes() const {
    return (has_degradation ? 1 : 0) + (adr.has_value() ? 4 : 0) + (theta.has_value() ? 1 : 0);
  }
};

}  // namespace blam
