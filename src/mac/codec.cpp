#include "mac/codec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/checksum.hpp"

namespace blam {

namespace {

constexpr std::uint8_t kMhdrConfirmedUp = 0x80;
constexpr std::uint8_t kMhdrUnconfirmedUp = 0x40;
constexpr std::uint8_t kMhdrDown = 0x60;
constexpr std::uint8_t kFctrlAck = 0x20;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_{bytes} {}

  std::uint8_t u8() {
    require(1);
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    require(2);
    const std::uint16_t v = static_cast<std::uint16_t>(bytes_[pos_]) |
                            static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | static_cast<std::uint32_t>(u16()) << 16;
  }
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > bytes_.size()) throw std::invalid_argument{"codec: truncated frame"};
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_{0};
};

std::uint8_t q8(double fraction) {
  const double clamped = std::clamp(fraction, 0.0, 1.0);
  return static_cast<std::uint8_t>(std::lround(clamped * 255.0));
}

double from_q8(std::uint8_t v) { return static_cast<double>(v) / 255.0; }

}  // namespace

std::vector<std::uint8_t> encode_uplink(const UplinkFrame& frame) {
  if (frame.soc_report.size() > 2) {
    throw std::invalid_argument{"encode_uplink: the protocol reports at most two SoC samples"};
  }
  if (frame.attempt < 0 || frame.attempt > 7) {
    throw std::invalid_argument{"encode_uplink: attempt out of [0,7]"};
  }
  if (frame.app_payload_bytes < 1) {
    throw std::invalid_argument{"encode_uplink: need at least one payload byte"};
  }

  std::vector<std::uint8_t> out;
  out.reserve(kUplinkHeaderBytes + 4 * frame.soc_report.size() + kReportTrailerBytes +
              static_cast<std::size_t>(frame.app_payload_bytes));

  out.push_back(frame.confirmed ? kMhdrConfirmedUp : kMhdrUnconfirmedUp);
  put_u32(out, frame.node_id);
  // FCtrl: FOptsLen in the low nibble (standard); the transmission attempt
  // rides in bits 5-7 (a simulator-specific use of the RFU bits).
  const auto fopts_len = static_cast<std::uint8_t>(
      frame.soc_report.empty() ? 0 : 2 * frame.soc_report.size() + kReportTrailerBytes);
  out.push_back(static_cast<std::uint8_t>(fopts_len | (frame.attempt << 5)));
  put_u16(out, static_cast<std::uint16_t>(frame.seq & 0xffff));

  // FOpts: SoC transition points as (minutes-before-newest u8, SoC Q8) —
  // 2 bytes per sample, 4 bytes for the paper's two-point report — then the
  // integrity trailer (report seq u16 + CRC-8 over samples and seq).
  const Time newest =
      frame.soc_report.empty() ? Time::zero() : frame.soc_report.back().t;
  const std::size_t fopts_start = out.size();
  for (const SocSample& sample : frame.soc_report) {
    const double minutes_before = (newest - sample.t).minutes();
    out.push_back(static_cast<std::uint8_t>(
        std::min(255.0, std::max(0.0, std::round(minutes_before)))));
    out.push_back(q8(sample.soc));
  }
  if (!frame.soc_report.empty()) {
    put_u16(out, frame.report_seq);
    out.push_back(crc8({out.data() + fopts_start, out.size() - fopts_start}));
  }

  out.push_back(1);  // FPort
  // Application payload: first byte carries the selected window, the rest
  // is application data (zero-filled in simulation).
  out.push_back(static_cast<std::uint8_t>(std::clamp(frame.selected_window, 0, 255)));
  for (int i = 1; i < frame.app_payload_bytes; ++i) out.push_back(0);
  return out;
}

UplinkFrame decode_uplink(std::span<const std::uint8_t> bytes, Time reference) {
  Reader reader{bytes};
  UplinkFrame frame;

  const std::uint8_t mhdr = reader.u8();
  if (mhdr == kMhdrConfirmedUp) {
    frame.confirmed = true;
  } else if (mhdr == kMhdrUnconfirmedUp) {
    frame.confirmed = false;
  } else {
    throw std::invalid_argument{"decode_uplink: not an uplink MHDR"};
  }
  frame.node_id = reader.u32();
  const std::uint8_t fctrl = reader.u8();
  const std::size_t fopts_len = fctrl & 0x0f;
  frame.attempt = (fctrl >> 5) & 0x07;
  frame.seq = reader.u16();

  // Valid FOpts: empty, or 2 bytes per sample (1-2 samples) + the 3-byte
  // integrity trailer.
  if (fopts_len != 0 && fopts_len != 2 + kReportTrailerBytes &&
      fopts_len != 4 + kReportTrailerBytes) {
    throw std::invalid_argument{"decode_uplink: malformed FOpts length"};
  }
  if (fopts_len != 0) {
    const std::size_t n_samples = (fopts_len - kReportTrailerBytes) / 2;
    std::uint8_t fopts_bytes[4 + 2];
    std::size_t n_fed = 0;
    for (std::size_t i = 0; i < n_samples; ++i) {
      const std::uint8_t minutes_before = reader.u8();
      const std::uint8_t soc_q8 = reader.u8();
      fopts_bytes[n_fed++] = minutes_before;
      fopts_bytes[n_fed++] = soc_q8;
      frame.soc_report.push_back(
          SocSample{reference - Time::from_minutes(minutes_before), from_q8(soc_q8)});
    }
    frame.report_seq = reader.u16();
    fopts_bytes[n_fed++] = static_cast<std::uint8_t>(frame.report_seq & 0xff);
    fopts_bytes[n_fed++] = static_cast<std::uint8_t>(frame.report_seq >> 8);
    frame.report_crc = reader.u8();
    if (crc8({fopts_bytes, n_fed}) != frame.report_crc) {
      throw std::invalid_argument{"decode_uplink: SoC report failed its CRC"};
    }
  }

  if (reader.u8() != 1) throw std::invalid_argument{"decode_uplink: unexpected FPort"};
  if (reader.remaining() < 1) throw std::invalid_argument{"decode_uplink: missing payload"};
  frame.app_payload_bytes = static_cast<int>(reader.remaining());
  frame.selected_window = reader.u8();
  reader.skip(reader.remaining());
  return frame;
}

std::vector<std::uint8_t> encode_ack(const AckFrame& ack) {
  std::vector<std::uint8_t> out;
  out.reserve(kAckHeaderBytes + static_cast<std::size_t>(ack.total_bytes()));
  out.push_back(kMhdrDown);
  put_u32(out, ack.node_id);
  std::uint8_t fctrl = kFctrlAck;
  if (ack.has_degradation) fctrl |= 0x01;
  if (ack.adr.has_value()) fctrl |= 0x02;
  if (ack.theta.has_value()) fctrl |= 0x04;
  out.push_back(fctrl);
  put_u16(out, static_cast<std::uint16_t>(ack.seq & 0xffff));
  if (ack.has_degradation) out.push_back(q8(ack.normalized_degradation));
  if (ack.adr.has_value()) {
    // LinkADRReq-like: SF in the high nibble, power step in the low nibble,
    // then a fixed channel mask and redundancy byte.
    const auto power_step = static_cast<std::uint8_t>(
        std::clamp(static_cast<int>((ack.adr->tx_power_dbm - 2.0) / 2.0), 0, 15));
    out.push_back(static_cast<std::uint8_t>((sf_value(ack.adr->sf) << 4) | power_step));
    put_u16(out, 0x00ff);  // channel mask: first 8 channels
    out.push_back(0x01);   // redundancy: NbTrans 1
  }
  if (ack.theta.has_value()) out.push_back(q8(*ack.theta));
  return out;
}

AckFrame decode_ack(std::span<const std::uint8_t> bytes) {
  Reader reader{bytes};
  AckFrame ack;
  if (reader.u8() != kMhdrDown) throw std::invalid_argument{"decode_ack: not a downlink MHDR"};
  ack.node_id = reader.u32();
  const std::uint8_t fctrl = reader.u8();
  if ((fctrl & kFctrlAck) == 0) throw std::invalid_argument{"decode_ack: ACK bit missing"};
  ack.seq = reader.u16();
  if ((fctrl & 0x01) != 0) {
    ack.has_degradation = true;
    ack.normalized_degradation = from_q8(reader.u8());
  }
  if ((fctrl & 0x02) != 0) {
    const std::uint8_t dr = reader.u8();
    AdrCommand command;
    command.sf = sf_from_value(dr >> 4);
    command.tx_power_dbm = 2.0 + 2.0 * (dr & 0x0f);
    reader.skip(3);  // channel mask + redundancy
    ack.adr = command;
  }
  if ((fctrl & 0x04) != 0) {
    ack.theta = from_q8(reader.u8());
  }
  return ack;
}

}  // namespace blam
