// Frames are plain data; this TU anchors the module in the library.
#include "mac/frame.hpp"
