#include "mac/lorawan_mac.hpp"

#include <cstdio>
#include <stdexcept>

namespace blam {

MacDecision LorawanMac::select_window(const WindowContext& ctx) {
  (void)ctx;
  return MacDecision{true, 0};  // pure ALOHA: send immediately
}

ThetaOnlyMac::ThetaOnlyMac(double theta) : theta_{theta} {
  if (theta < 0.0 || theta > 1.0) {
    throw std::invalid_argument{"ThetaOnlyMac: theta must be in [0,1]"};
  }
}

MacDecision ThetaOnlyMac::select_window(const WindowContext& ctx) {
  (void)ctx;
  return MacDecision{true, 0};
}

void ThetaOnlyMac::set_soc_cap(double theta) {
  if (theta < 0.0 || theta > 1.0) {
    throw std::invalid_argument{"ThetaOnlyMac::set_soc_cap: theta must be in [0,1]"};
  }
  theta_ = theta;
}

std::string ThetaOnlyMac::name() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "H-%.0fC", theta_ * 100.0);
  return buf;
}

}  // namespace blam
