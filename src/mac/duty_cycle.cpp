#include "mac/duty_cycle.hpp"

#include <stdexcept>

namespace blam {

DutyCycleLimiter::DutyCycleLimiter(double max_duty) : max_duty_{max_duty} {
  if (max_duty <= 0.0 || max_duty > 1.0) {
    throw std::invalid_argument{"DutyCycleLimiter: max_duty must be in (0,1]"};
  }
}

void DutyCycleLimiter::record(Time start, Time airtime) {
  if (airtime < Time::zero()) throw std::invalid_argument{"DutyCycleLimiter: negative airtime"};
  const Time off = airtime * (1.0 / max_duty_ - 1.0);
  const Time candidate = start + airtime + off;
  if (candidate > next_allowed_) next_allowed_ = candidate;
}

}  // namespace blam
