// Baseline LoRaWAN behaviour (pure ALOHA): transmit in the first forecast
// window, i.e. immediately after the packet is generated, and never cap the
// battery (theta = 1). This is the paper's comparison baseline.
//
// ThetaOnlyMac is the paper's H-50C ablation: the charging cap without the
// forecast-window selection algorithm.
#pragma once

#include "mac/device_mac.hpp"

namespace blam {

class LorawanMac final : public MacPolicy {
 public:
  [[nodiscard]] MacDecision select_window(const WindowContext& ctx) override;
  [[nodiscard]] double soc_cap() const override { return 1.0; }
  [[nodiscard]] bool needs_forecasts() const override { return false; }
  [[nodiscard]] bool reports_soc() const override { return false; }
  [[nodiscard]] std::string name() const override { return "LoRaWAN"; }
};

class ThetaOnlyMac final : public MacPolicy {
 public:
  explicit ThetaOnlyMac(double theta);

  [[nodiscard]] MacDecision select_window(const WindowContext& ctx) override;
  [[nodiscard]] double soc_cap() const override { return theta_; }
  void set_soc_cap(double theta) override;
  [[nodiscard]] bool needs_forecasts() const override { return false; }
  /// The gateway still tracks degradation for metrics, but H-50C does not
  /// use w_u; reporting stays on so Fig. 7 can compare fairly.
  [[nodiscard]] bool reports_soc() const override { return true; }
  [[nodiscard]] std::string name() const override;

 private:
  double theta_;
};

}  // namespace blam
