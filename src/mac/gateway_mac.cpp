#include "mac/gateway_mac.hpp"

#include <algorithm>

namespace blam {

AckPlanner::AckPlanner(const ClassATimings& timings, const ChannelPlan& plan,
                       double downlink_tx_dbm, double rx1_bandwidth_hz)
    : timings_{timings},
      plan_{plan},
      downlink_tx_dbm_{downlink_tx_dbm},
      rx1_bandwidth_hz_{rx1_bandwidth_hz} {}

TxParams AckPlanner::ack_params(SpreadingFactor sf, double bandwidth_hz, int bytes) const {
  TxParams p;
  p.sf = sf;
  p.bandwidth_hz = bandwidth_hz;
  p.payload_bytes = bytes;
  p.tx_power_dbm = downlink_tx_dbm_;
  return p.with_auto_ldro();
}

std::optional<AckPlan> AckPlanner::plan(Time uplink_end, SpreadingFactor uplink_sf,
                                        int uplink_channel, int ack_bytes) {
  // RX1: same SF on the paired downlink channel.
  {
    const TxParams params = ack_params(uplink_sf, rx1_bandwidth_hz_, ack_bytes);
    const Time start = uplink_end + timings_.rx1_delay;
    const Time end = start + timing_.time_on_air(params);
    if (!conflicts(start, end)) {
      reserve(start, end);
      return AckPlan{start,       end, plan_.rx1_channel(uplink_channel),
                     uplink_sf,   rx1_bandwidth_hz_,
                     false};
    }
  }
  // RX2: fixed robust parameters.
  {
    const TxParams params = ack_params(plan_.rx2_spreading_factor(), plan_.rx2_bandwidth_hz(), ack_bytes);
    const Time start = uplink_end + timings_.rx2_delay;
    const Time end = start + timing_.time_on_air(params);
    if (!conflicts(start, end)) {
      reserve(start, end);
      return AckPlan{start, end, plan_.rx2_channel(), plan_.rx2_spreading_factor(),
                     plan_.rx2_bandwidth_hz(), true};
    }
  }
  return std::nullopt;
}

bool AckPlanner::conflicts(Time start, Time end) const { return overlaps_tx(start, end); }

bool AckPlanner::overlaps_tx(Time start, Time end) const {
  // Reservations are few (pruned continuously); linear scan is fine and
  // avoids an interval-tree dependency.
  for (auto it = reservations_.begin() + static_cast<std::ptrdiff_t>(head_);
       it != reservations_.end(); ++it) {
    if (it->start < end && start < it->end) return true;
    if (it->start >= end) break;  // sorted by start: no later overlap possible
  }
  return false;
}

void AckPlanner::reserve(Time start, Time end) {
  const Interval interval{start, end};
  const auto it = std::upper_bound(
      reservations_.begin() + static_cast<std::ptrdiff_t>(head_), reservations_.end(), interval,
      [](const Interval& a, const Interval& b) { return a.start < b.start; });
  reservations_.insert(it, interval);
}

void AckPlanner::prune(Time now) {
  while (head_ < reservations_.size() && reservations_[head_].end < now) ++head_;
  // Reclaim the dead prefix once it dominates the buffer; erase shifts the
  // live tail within the existing capacity, so no reallocation happens.
  if (head_ >= 64 && head_ * 2 >= reservations_.size()) {
    reservations_.erase(reservations_.begin(), reservations_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

}  // namespace blam
