#include "mac/blam_mac.hpp"

#include <cstdio>
#include <stdexcept>

namespace blam {

BlamMac::BlamMac(double theta) : theta_{theta} {
  if (theta <= 0.0 || theta > 1.0) {
    throw std::invalid_argument{"BlamMac: theta must be in (0,1]"};
  }
}

MacDecision BlamMac::select_window(const WindowContext& ctx) {
  WindowSelectorInput input;
  input.battery = ctx.battery;
  input.storage_cap = ctx.battery_capacity * theta_;
  input.w_u = ctx.w_u;
  input.w_b = ctx.w_b;
  input.harvest = ctx.harvest_forecast;
  input.tx_cost = ctx.tx_cost;
  input.max_tx = ctx.max_tx;
  input.utility = ctx.utility;
  last_ = selector_.select(input);
  return MacDecision{last_.success, last_.success ? last_.window : 0};
}

void BlamMac::set_soc_cap(double theta) {
  if (theta <= 0.0 || theta > 1.0) {
    throw std::invalid_argument{"BlamMac::set_soc_cap: theta must be in (0,1]"};
  }
  theta_ = theta;
}

std::string BlamMac::name() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "H-%.0f", theta_ * 100.0);
  return buf;
}

}  // namespace blam
