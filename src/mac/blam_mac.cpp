#include "mac/blam_mac.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace blam {

BlamMac::BlamMac(double theta) : theta_{theta} {
  if (theta <= 0.0 || theta > 1.0) {
    throw std::invalid_argument{"BlamMac: theta must be in (0,1]"};
  }
}

MacDecision BlamMac::select_window(const WindowContext& ctx) {
  WindowSelectorInput input;
  input.battery = ctx.battery;
  input.storage_cap = ctx.battery_capacity * theta_;
  input.w_u = effective_w_u(ctx);
  input.w_b = ctx.w_b;
  input.harvest = ctx.harvest_forecast;
  input.tx_cost = ctx.tx_cost;
  input.max_tx = ctx.max_tx;
  input.utility = ctx.utility;
  last_ = ctx.workspace != nullptr ? selector_.select(input, *ctx.workspace)
                                   : selector_.select(input);
  return MacDecision{last_.success, last_.success ? last_.window : 0};
}

void BlamMac::set_soc_cap(double theta) {
  if (theta <= 0.0 || theta > 1.0) {
    throw std::invalid_argument{"BlamMac::set_soc_cap: theta must be in (0,1]"};
  }
  theta_ = theta;
}

double BlamMac::effective_w_u(const WindowContext& ctx) {
  // Graceful degradation under stale feedback: w_u arrives once per
  // dissemination period piggybacked on ACKs, so a gateway outage (or a
  // burst of lost downlinks) leaves the node steering on an obsolete
  // weight. Trusting a stale LOW w_u is the dangerous direction — the node
  // keeps spending battery as if its pack were healthy. Past k periods of
  // silence the weight ramps linearly toward 1 (full DIF influence, the
  // conservative regime) over another k periods, and fresh feedback snaps
  // it back instantly.
  if (ctx.stale_feedback_k <= 0.0 || ctx.w_u_age_periods <= ctx.stale_feedback_k) {
    return ctx.w_u;
  }
  const double over = ctx.w_u_age_periods - ctx.stale_feedback_k;
  const double blend = std::min(1.0, over / ctx.stale_feedback_k);
  return ctx.w_u + (1.0 - ctx.w_u) * blend;
}

std::string BlamMac::name() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "H-%.0f", theta_ * 100.0);
  return buf;
}

}  // namespace blam
