// Gateway downlink scheduling (ACK planner).
//
// A LoRa gateway has a single half-duplex transmit chain: while it sends an
// ACK it cannot receive, and two ACKs cannot overlap. The planner keeps the
// reservation ledger of the TX chain: given a successfully decoded uplink it
// books the ACK into the device's RX1 slot (1 s after uplink end, same SF at
// 500 kHz per US-915), falls back to RX2 (2 s, SF12 at 500 kHz) when RX1
// collides with an existing reservation, and reports failure when both slots
// are taken — the device will then retransmit. The ledger also answers "was
// the gateway transmitting during [a, b)?", which destroys overlapping
// uplink receptions (half-duplex loss, a major ALOHA bottleneck at scale).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "lora/airtime.hpp"
#include "lora/channel_plan.hpp"
#include "lora/params.hpp"
#include "lora/tx_timing_cache.hpp"

namespace blam {

struct AckPlan {
  Time tx_start{};
  Time tx_end{};
  int channel{0};
  SpreadingFactor sf{SpreadingFactor::kSF12};
  double bandwidth_hz{500e3};
  /// True if the ACK uses the RX2 slot.
  bool rx2{false};
};

class AckPlanner {
 public:
  /// `rx1_bandwidth_hz`: downlink bandwidth for RX1 ACKs (500 kHz in US-915;
  /// 125 kHz EU-style makes ACKs long and the half-duplex penalty real).
  AckPlanner(const ClassATimings& timings, const ChannelPlan& plan, double downlink_tx_dbm = 27.0,
             double rx1_bandwidth_hz = 500e3);

  /// Books an ACK for an uplink that ended at `uplink_end` using SF
  /// `uplink_sf` on `uplink_channel`; `ack_bytes` sets the airtime.
  /// Returns nullopt when both RX slots conflict with reservations.
  [[nodiscard]] std::optional<AckPlan> plan(Time uplink_end, SpreadingFactor uplink_sf,
                                            int uplink_channel, int ack_bytes);

  /// True if a booked transmission overlaps [start, end).
  [[nodiscard]] bool overlaps_tx(Time start, Time end) const;

  /// Drops reservations that ended before `now`.
  void prune(Time now);

  [[nodiscard]] double downlink_tx_dbm() const { return downlink_tx_dbm_; }
  [[nodiscard]] std::size_t reservations() const { return reservations_.size() - head_; }

  struct Interval {
    Time start;
    Time end;
  };

  /// Live reservations in start order, for engine checkpoints.
  [[nodiscard]] std::span<const Interval> live() const {
    return {reservations_.data() + head_, reservations_.size() - head_};
  }

  /// Checkpoint restore: re-seeds the ledger (head_ resets to 0; conflict
  /// queries scan live entries only, so the offset is invisible).
  void restore_live(std::span<const Interval> intervals) {
    reservations_.assign(intervals.begin(), intervals.end());
    head_ = 0;
  }

 private:

  [[nodiscard]] bool conflicts(Time start, Time end) const;
  void reserve(Time start, Time end);

  [[nodiscard]] TxParams ack_params(SpreadingFactor sf, double bandwidth_hz, int bytes) const;

  // blam-ckpt: skip -- construction input, rebuilt from the same ScenarioConfig timings
  ClassATimings timings_;
  // blam-ckpt: skip -- pure function of the scenario, rebuilt at construction
  ChannelPlan plan_;
  // blam-ckpt: skip -- construction input (scenario downlink_tx_dbm)
  double downlink_tx_dbm_;
  // blam-ckpt: skip -- construction input (scenario rx1_bandwidth_hz)
  double rx1_bandwidth_hz_;
  /// ACK airtimes recur for the same (SF, length) pairs; memoized.
  // blam-ckpt: skip -- memo cache; entries regenerate on demand from TxParams
  TxTimingCache timing_;
  // Reservations kept sorted by start time. Live entries are
  // [head_, size()); prune() advances head_ and compacts occasionally, so
  // the vector's capacity is retained and steady-state booking never
  // allocates (a deque here would churn its backing blocks on every prune).
  std::vector<Interval> reservations_;
  std::size_t head_{0};
};

}  // namespace blam
