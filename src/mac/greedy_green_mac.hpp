// "Greedy green" baseline: an energy-aware but lifespan-OBLIVIOUS MAC.
//
// The paper's related work (network-lifetime maximization, e.g. [15], [20])
// minimizes energy drawn from storage but ignores battery aging. This
// policy captures that class: it always transmits in the forecast window
// with the MOST forecast green energy, regardless of utility, degradation
// weight or collision history, and never caps the battery (theta = 1).
//
// Expected behaviour (and why the paper's protocol beats it): every
// greedy-green node converges on the same solar-noon windows, so collisions
// concentrate; and with the battery kept full, calendar aging proceeds at
// the uncapped rate — energy-awareness alone does not buy battery lifespan.
#pragma once

#include "mac/device_mac.hpp"

namespace blam {

class GreedyGreenMac final : public MacPolicy {
 public:
  [[nodiscard]] MacDecision select_window(const WindowContext& ctx) override;
  [[nodiscard]] double soc_cap() const override { return 1.0; }
  [[nodiscard]] bool needs_forecasts() const override { return true; }
  /// Reports SoC so the gateway can still track degradation for metrics.
  [[nodiscard]] bool reports_soc() const override { return true; }
  [[nodiscard]] std::string name() const override { return "GreedyGreen"; }
};

}  // namespace blam
