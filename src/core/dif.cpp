#include "core/dif.hpp"

#include <algorithm>
#include <stdexcept>

namespace blam {

double degradation_impact_factor(Energy estimated_tx, Energy harvest, Energy max_tx) {
  if (max_tx <= Energy::zero()) {
    throw std::invalid_argument{"degradation_impact_factor: max_tx must be positive"};
  }
  const Energy deficit = std::max(estimated_tx - harvest, Energy::zero());
  // Estimates can exceed the nominal worst case (e.g. EWMA warm-up); clamp
  // so DIF stays in the paper's [0, 1] range.
  return std::min(deficit / max_tx, 1.0);
}

}  // namespace blam
