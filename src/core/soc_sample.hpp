// One SoC transition point as carried in an uplink (paper: forecast-window
// index + SoC, 2 x 2 bytes; we keep engineering units internally). Shared
// by the MAC frame, the ingestion queue, and the gateway ledger.
#pragma once

#include "common/units.hpp"

namespace blam {

struct SocSample {
  Time t;
  double soc;
};

}  // namespace blam
