// Chunked slab arena for many small per-node spans (rainflow residual
// stacks, buffered report samples) backing the columnar gateway ledger.
//
// One flat pool holds every span's storage; a span is addressed by a POD
// `Ref` (offset + size + size class) that lives in a column of the SoA node
// table. Chunks come in power-of-two size classes with a LIFO free list per
// class: growing a span allocates the next class, copies, and recycles the
// old chunk, so a steady-state ledger performs no heap allocation per
// report — the pool vector only grows (amortized) while the fleet's total
// footprint is still expanding. All addressing is by index, never by
// pointer, so pool growth cannot dangle a span.
//
// Determinism: chunk placement is a pure function of the allocation call
// sequence (append to the pool, or pop the per-class LIFO free list), and
// the call sequence is a pure function of the ingested data — no hashing,
// no addresses, no global state.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace blam {

template <typename T>
class SpanArena {
 public:
  /// Smallest chunk: most rainflow residual stacks never outgrow it.
  static constexpr std::uint32_t kMinCapacity = 4;
  /// Size classes kMinCapacity << c for c in [0, kClasses): 4 .. 32 Mi
  /// elements. A span that outgrows the last class is a logic error.
  static constexpr std::size_t kClasses = 24;

  /// Span handle stored in a node-table column. `cls < 0` means no chunk is
  /// owned (empty span that never allocated, or released).
  struct Ref {
    std::uint32_t offset{0};
    std::uint32_t size{0};
    // blam-ckpt: skip -- arena refs are rebuilt by the ledger restore path reallocating every span
    std::int8_t cls{-1};
  };

  [[nodiscard]] std::span<const T> view(const Ref& ref) const {
    return {pool_.data() + ref.offset, ref.size};
  }

  /// Mutable element access within an existing span (index < ref.size).
  [[nodiscard]] T& at(const Ref& ref, std::uint32_t index) { return pool_[ref.offset + index]; }
  [[nodiscard]] const T& at(const Ref& ref, std::uint32_t index) const {
    return pool_[ref.offset + index];
  }

  void push_back(Ref& ref, const T& value) {
    if (ref.cls < 0) {
      allocate(ref, 0);
    } else if (ref.size == capacity_of(ref.cls)) {
      grow(ref);
    }
    pool_[ref.offset + ref.size] = value;
    ++ref.size;
  }

  /// Drops the last `n` elements (chunk retained).
  void shrink(Ref& ref, std::uint32_t n) { ref.size -= n; }

  /// Empties the span but keeps its chunk for reuse by the same node.
  void clear(Ref& ref) { ref.size = 0; }

  /// Replaces the span's contents (grows the chunk as needed).
  void assign(Ref& ref, std::span<const T> values) {
    ref.size = 0;
    for (const T& v : values) push_back(ref, v);
  }

  /// Returns the span's chunk to the free list; `ref` becomes chunkless.
  void release(Ref& ref) {
    if (ref.cls >= 0) free_[static_cast<std::size_t>(ref.cls)].push_back(ref.offset);
    ref = Ref{};
  }

  /// Total elements in the pool (capacity actually reserved, for stats).
  [[nodiscard]] std::size_t pool_elements() const { return pool_.size(); }

 private:
  [[nodiscard]] static constexpr std::uint32_t capacity_of(std::int8_t cls) {
    return kMinCapacity << static_cast<std::uint32_t>(cls);
  }

  void allocate(Ref& ref, std::int8_t cls) {
    if (static_cast<std::size_t>(cls) >= kClasses) {
      throw std::length_error{"SpanArena: span exceeds the largest size class"};
    }
    auto& free_list = free_[static_cast<std::size_t>(cls)];
    if (!free_list.empty()) {
      ref.offset = free_list.back();
      free_list.pop_back();
    } else {
      ref.offset = static_cast<std::uint32_t>(pool_.size());
      pool_.resize(pool_.size() + capacity_of(cls));
    }
    ref.cls = cls;
    ref.size = 0;
  }

  void grow(Ref& ref) {
    Ref bigger;
    allocate(bigger, static_cast<std::int8_t>(ref.cls + 1));
    for (std::uint32_t i = 0; i < ref.size; ++i) {
      pool_[bigger.offset + i] = pool_[ref.offset + i];
    }
    bigger.size = ref.size;
    free_[static_cast<std::size_t>(ref.cls)].push_back(ref.offset);
    ref = bigger;
  }

  std::vector<T> pool_;
  // blam-ckpt: skip -- allocator free-lists; the ledger restore path reallocates every span
  std::array<std::vector<std::uint32_t>, kClasses> free_;
};

}  // namespace blam
