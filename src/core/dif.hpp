// Degradation Impact Factor (paper Eq. 15):
//
//   DIF_u[t] = (max(e_tx, E_g[t]) - E_g[t]) / E_tx_max
//            = max(e_tx - E_g[t], 0) / E_tx_max
//
// DIF is 0 when the forecast harvest covers the estimated transmission
// cost (the battery is untouched, no cycle aging) and grows toward 1 as the
// transmission must be paid from the battery.
#pragma once

#include "common/units.hpp"

namespace blam {

/// `estimated_tx`: EWMA transmission-energy estimate scaled by the expected
/// number of transmissions for this window. `harvest`: forecast green energy
/// in the window. `max_tx`: worst-case energy of one packet (highest SF,
/// all retransmissions) used as the normalizer; must be positive.
[[nodiscard]] double degradation_impact_factor(Energy estimated_tx, Energy harvest, Energy max_tx);

}  // namespace blam
