// Packet utility functions (paper Eq. 16 and Sec. III-A).
//
// Utility indicates how useful the data still is when transmitted in
// forecast window t of the sampling period: monotonically non-increasing
// from 1 (transmit immediately) toward 0 (transmit just before the next
// sample arrives). The protocol is parametric in the utility function; the
// paper's linear form (Eq. 16) is the default, and exponential / step
// variants are provided for the ablation benches.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

namespace blam {

class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Utility of transmitting in window `t` of `n` windows; t in [0, n).
  /// Implementations must be monotonically non-increasing in t and map
  /// into [0, 1].
  [[nodiscard]] virtual double value(int t, int n) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  static void check(int t, int n) {
    if (n <= 0 || t < 0 || t >= n) {
      throw std::invalid_argument{"UtilityFunction: window " + std::to_string(t) +
                                  " out of range [0," + std::to_string(n) + ")"};
    }
  }
};

/// Paper Eq. 16: mu = (tau - t) / tau, i.e. (n - t) / n over window indices.
class LinearUtility final : public UtilityFunction {
 public:
  [[nodiscard]] double value(int t, int n) const override;
  [[nodiscard]] std::string name() const override { return "linear"; }
};

/// mu = exp(-lambda * t / n): steep early loss, long tail.
class ExponentialUtility final : public UtilityFunction {
 public:
  explicit ExponentialUtility(double lambda);
  [[nodiscard]] double value(int t, int n) const override;
  [[nodiscard]] std::string name() const override { return "exponential"; }

 private:
  double lambda_;
};

/// Full utility up to a deadline fraction of the period, then a floor:
/// models "fresh within L, stale after".
class StepUtility final : public UtilityFunction {
 public:
  StepUtility(double deadline_fraction, double floor);
  [[nodiscard]] double value(int t, int n) const override;
  [[nodiscard]] std::string name() const override { return "step"; }

 private:
  double deadline_fraction_;
  double floor_;
};

}  // namespace blam
