// Adaptive theta: a closed-loop network-manager policy for the charging cap.
//
// The paper leaves theta to the operator ("the network manager may
// configure theta considering the application requirement") and shows the
// trade-off: a low cap minimizes calendar aging but starves nights (H-5's
// packet drops); a high cap wastes lifespan. This controller closes the
// loop per node at the server:
//
//   * packet loss is inferred from sequence-number gaps (the server needs
//     no extra signaling: a delivered seq that skips k values means k lost
//     packets);
//   * a node whose recent loss exceeds `loss_raise` gets a higher theta
//     (more night budget); one comfortably below `loss_lower` gets a lower
//     theta (less calendar aging);
//   * theta moves in `step` increments within [theta_min, theta_max], and
//     updates ride the existing ACK piggyback like w_u.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace blam {

class ThetaController {
 public:
  struct Config {
    double theta_min{0.2};
    double theta_max{0.9};
    double initial{0.5};
    double step{0.1};
    /// Raise theta when the recent loss rate exceeds this.
    double loss_raise{0.05};
    /// Lower theta when the recent loss rate is below this.
    double loss_lower{0.005};
    /// Packets per adaptation window.
    int window_packets{50};
  };

  explicit ThetaController(const Config& config);

  /// Records a delivered packet's sequence number; gaps versus the previous
  /// delivery are counted as losses. Returns a new theta for the node when
  /// an adaptation window completes and the value changed.
  std::optional<double> on_delivery(std::uint32_t node_id, std::uint32_t seq);

  /// Current theta for the node (initial until adapted).
  [[nodiscard]] double theta(std::uint32_t node_id) const;

  [[nodiscard]] const Config& config() const { return config_; }

  /// Per-node loop state for engine checkpoints, sorted by node id (the
  /// live map is unordered; sorting makes the serialization canonical).
  struct NodeSnapshot {
    std::uint32_t node_id{0};
    std::uint32_t last_seq{0};
    bool has_seq{false};
    std::uint64_t delivered{0};
    std::uint64_t lost{0};
    double theta{0.0};
  };

  [[nodiscard]] std::vector<NodeSnapshot> snapshot() const;
  void restore(const std::vector<NodeSnapshot>& nodes);

 private:
  struct NodeState {
    std::uint32_t last_seq{0};
    bool has_seq{false};
    std::uint64_t delivered{0};
    std::uint64_t lost{0};
    double theta;
  };

  // blam-ckpt: skip -- construction input; rebuilt from ScenarioConfig::theta_controller
  Config config_;
  // blam-lint: allow(D2) -- lookup-only by node id (on_delivery/theta); never iterated
  std::unordered_map<std::uint32_t, NodeState> nodes_;
};

}  // namespace blam
