// On-sensor forecast-window selection — the paper's Algorithm 1, solving the
// local battery-lifespan problem (Eqs. 18-21). The pseudocode sorts windows
// by objective (O(|T| log |T|)); since only the FIRST fundable window in that
// order is ever used, this implementation finds it with one argmin pass in
// O(|T|), selecting the identical window.
//
// For each candidate window t the objective is
//   gamma_t = (1 - mu(t)) + w_u * DIF(t) * w_b          (Eq. 18)
// (the paper's pseudocode line 3 prints "mu + ..."; sorting that ascending
// would prefer LOW utility, contradicting Eq. 18, so we implement the
// objective as formulated). Windows are scanned in non-decreasing gamma and
// the first one whose cumulative energy E[t] covers the estimated cost
// (Eq. 20) wins; if none does, the packet is dropped (FAIL), which the paper
// attributes to a theta too low to bridge no-generation intervals.
#pragma once

#include <span>
#include <vector>

#include "common/units.hpp"
#include "core/utility.hpp"

namespace blam {

struct WindowSelectorInput {
  /// Current stored battery energy psi.
  Energy battery;
  /// Stored-energy ceiling theta * original capacity; cumulative energy
  /// E[t] saturates here because charge beyond the cap is refused (Eq. 21).
  Energy storage_cap;
  /// Normalized degradation w_u in [0, 1] from the gateway.
  double w_u{0.0};
  /// Importance of degradation over utility, w_b in [0, 1].
  double w_b{1.0};
  /// Forecast harvest E_g[t] per window.
  std::span<const Energy> harvest;
  /// Estimated transmission cost e_tx[t] per window (EWMA * expected
  /// transmissions). Must have the same length as `harvest`.
  std::span<const Energy> tx_cost;
  /// Worst-case single-packet energy (DIF normalizer).
  Energy max_tx;
  /// Utility function mu (paper Eq. 16 by default).
  const UtilityFunction* utility{nullptr};
};

struct WindowSelection {
  bool success{false};
  /// Chosen window index; meaningful only on success.
  int window{-1};
  /// Objective value of the chosen window.
  double gamma{0.0};
  /// Utility mu of the chosen window.
  double utility{0.0};
  /// DIF of the chosen window.
  double dif{0.0};
};

class WindowSelector {
 public:
  /// Reusable scratch for Algorithm 1: the per-window objective values and
  /// the cumulative-energy array. A caller on the simulation hot path owns
  /// one Workspace per node and passes it to every select() so the
  /// per-period run is allocation-free after warm-up; the workspace carries
  /// no state between calls beyond vector capacity.
  struct Workspace {
    std::vector<double> gamma;
    std::vector<Energy> available;
  };

  /// Runs Algorithm 1. Throws std::invalid_argument on malformed input
  /// (empty/mismatched spans, missing utility, non-positive max_tx).
  [[nodiscard]] WindowSelection select(const WindowSelectorInput& input) const;

  /// Allocation-free variant: identical result, scratch vectors live in
  /// `ws` and are resized (never shrunk) to the window count.
  [[nodiscard]] WindowSelection select(const WindowSelectorInput& input, Workspace& ws) const;

  /// Objective values gamma_t for each window (diagnostics / Fig. 3 bench).
  [[nodiscard]] std::vector<double> objective_values(const WindowSelectorInput& input) const;

  /// Fills ws.gamma with the objective values and returns a view of it.
  [[nodiscard]] std::span<const double> objective_values(const WindowSelectorInput& input,
                                                         Workspace& ws) const;
};

}  // namespace blam
