#include "core/window_selector.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/dif.hpp"

namespace blam {

namespace {

void validate(const WindowSelectorInput& input) {
  if (input.harvest.empty()) {
    throw std::invalid_argument{"WindowSelector: need at least one window"};
  }
  if (input.harvest.size() != input.tx_cost.size()) {
    throw std::invalid_argument{"WindowSelector: harvest/tx_cost size mismatch"};
  }
  if (input.utility == nullptr) throw std::invalid_argument{"WindowSelector: utility required"};
  if (input.max_tx <= Energy::zero()) {
    throw std::invalid_argument{"WindowSelector: max_tx must be positive"};
  }
  if (input.w_u < 0.0 || input.w_u > 1.0) {
    throw std::invalid_argument{"WindowSelector: w_u must be in [0,1]"};
  }
  if (input.w_b < 0.0 || input.w_b > 1.0) {
    throw std::invalid_argument{"WindowSelector: w_b must be in [0,1]"};
  }
}

}  // namespace

std::vector<double> WindowSelector::objective_values(const WindowSelectorInput& input) const {
  validate(input);
  const int n = static_cast<int>(input.harvest.size());
  std::vector<double> gamma(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const double mu = input.utility->value(t, n);
    const double dif =
        degradation_impact_factor(input.tx_cost[static_cast<std::size_t>(t)],
                                  input.harvest[static_cast<std::size_t>(t)], input.max_tx);
    gamma[static_cast<std::size_t>(t)] = (1.0 - mu) + input.w_u * dif * input.w_b;
  }
  return gamma;
}

WindowSelection WindowSelector::select(const WindowSelectorInput& input) const {
  const std::vector<double> gamma = objective_values(input);
  const int n = static_cast<int>(gamma.size());

  // Algorithm 1 lines 7-11: sort windows by gamma (stable: ties keep the
  // earlier window, favouring utility) and precompute cumulative available
  // energy E[t] = min(E[t-1], cap) + E_g[t]. The cap models Eq. 21: energy
  // carried over between windows lives in the battery and cannot exceed the
  // theta ceiling, while harvest within the window is usable directly.
  std::vector<int> order(gamma.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&gamma](int a, int b) { return gamma[static_cast<std::size_t>(a)] < gamma[static_cast<std::size_t>(b)]; });

  std::vector<Energy> available(gamma.size());
  Energy carried = std::min(input.battery, input.storage_cap);
  for (int t = 0; t < n; ++t) {
    available[static_cast<std::size_t>(t)] = carried + input.harvest[static_cast<std::size_t>(t)];
    carried = std::min(available[static_cast<std::size_t>(t)], input.storage_cap);
  }

  // Lines 12-17: first window in gamma order that can fund the estimated
  // transmission cost.
  for (int t : order) {
    const auto ti = static_cast<std::size_t>(t);
    if (available[ti] - input.tx_cost[ti] > Energy::zero()) {
      WindowSelection out;
      out.success = true;
      out.window = t;
      out.gamma = gamma[ti];
      out.utility = input.utility->value(t, n);
      out.dif = degradation_impact_factor(input.tx_cost[ti], input.harvest[ti], input.max_tx);
      return out;
    }
  }
  return WindowSelection{};  // FAIL: drop the packet (Algorithm 1 line 18)
}

}  // namespace blam
