#include "core/window_selector.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/dif.hpp"

namespace blam {

namespace {

void validate(const WindowSelectorInput& input) {
  if (input.harvest.empty()) {
    throw std::invalid_argument{"WindowSelector: need at least one window"};
  }
  if (input.harvest.size() != input.tx_cost.size()) {
    throw std::invalid_argument{"WindowSelector: harvest/tx_cost size mismatch"};
  }
  if (input.utility == nullptr) throw std::invalid_argument{"WindowSelector: utility required"};
  if (input.max_tx <= Energy::zero()) {
    throw std::invalid_argument{"WindowSelector: max_tx must be positive"};
  }
  if (input.w_u < 0.0 || input.w_u > 1.0) {
    throw std::invalid_argument{"WindowSelector: w_u must be in [0,1]"};
  }
  if (input.w_b < 0.0 || input.w_b > 1.0) {
    throw std::invalid_argument{"WindowSelector: w_b must be in [0,1]"};
  }
}

}  // namespace

std::span<const double> WindowSelector::objective_values(const WindowSelectorInput& input,
                                                         Workspace& ws) const {
  validate(input);
  const int n = static_cast<int>(input.harvest.size());
  ws.gamma.resize(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const double mu = input.utility->value(t, n);
    const double dif =
        degradation_impact_factor(input.tx_cost[static_cast<std::size_t>(t)],
                                  input.harvest[static_cast<std::size_t>(t)], input.max_tx);
    ws.gamma[static_cast<std::size_t>(t)] = (1.0 - mu) + input.w_u * dif * input.w_b;
  }
  return ws.gamma;
}

std::vector<double> WindowSelector::objective_values(const WindowSelectorInput& input) const {
  Workspace ws;
  (void)objective_values(input, ws);
  return std::move(ws.gamma);
}

WindowSelection WindowSelector::select(const WindowSelectorInput& input, Workspace& ws) const {
  const std::span<const double> gamma = objective_values(input, ws);
  const int n = static_cast<int>(gamma.size());

  // Algorithm 1 lines 7-11: precompute cumulative available energy
  // E[t] = min(E[t-1], cap) + E_g[t]. The cap models Eq. 21: energy carried
  // over between windows lives in the battery and cannot exceed the theta
  // ceiling, while harvest within the window is usable directly.
  ws.available.resize(gamma.size());
  Energy carried = std::min(input.battery, input.storage_cap);
  for (int t = 0; t < n; ++t) {
    ws.available[static_cast<std::size_t>(t)] = carried + input.harvest[static_cast<std::size_t>(t)];
    carried = std::min(ws.available[static_cast<std::size_t>(t)], input.storage_cap);
  }

  // Lines 12-17: first window in non-decreasing gamma order that can fund
  // the estimated transmission cost. That window is exactly the fundable
  // window minimizing (gamma, index) lexicographically — ties fall to the
  // earlier window, as a stable sort would order them — so a single argmin
  // pass replaces the pseudocode's sort: O(|T|) instead of O(|T| log |T|),
  // with a bit-identical selection.
  int best = -1;
  double best_gamma = 0.0;
  for (int t = 0; t < n; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    if (!(ws.available[ti] - input.tx_cost[ti] > Energy::zero())) continue;
    if (best < 0 || gamma[ti] < best_gamma) {
      best = t;
      best_gamma = gamma[ti];
    }
  }
  if (best >= 0) {
    const auto bi = static_cast<std::size_t>(best);
    WindowSelection out;
    out.success = true;
    out.window = best;
    out.gamma = gamma[bi];
    out.utility = input.utility->value(best, n);
    out.dif = degradation_impact_factor(input.tx_cost[bi], input.harvest[bi], input.max_tx);
    return out;
  }
  return WindowSelection{};  // FAIL: drop the packet (Algorithm 1 line 18)
}

WindowSelection WindowSelector::select(const WindowSelectorInput& input) const {
  Workspace ws;
  return select(input, ws);
}

}  // namespace blam
