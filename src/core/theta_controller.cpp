#include "core/theta_controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace blam {

ThetaController::ThetaController(const Config& config) : config_{config} {
  if (config.theta_min <= 0.0 || config.theta_min > config.theta_max || config.theta_max > 1.0) {
    throw std::invalid_argument{"ThetaController: need 0 < theta_min <= theta_max <= 1"};
  }
  if (config.initial < config.theta_min || config.initial > config.theta_max) {
    throw std::invalid_argument{"ThetaController: initial outside [theta_min, theta_max]"};
  }
  if (config.step <= 0.0) throw std::invalid_argument{"ThetaController: step must be positive"};
  if (config.loss_lower < 0.0 || config.loss_lower > config.loss_raise) {
    throw std::invalid_argument{"ThetaController: need 0 <= loss_lower <= loss_raise"};
  }
  if (config.window_packets <= 0) {
    throw std::invalid_argument{"ThetaController: window_packets must be positive"};
  }
}

std::optional<double> ThetaController::on_delivery(std::uint32_t node_id, std::uint32_t seq) {
  auto [it, inserted] = nodes_.try_emplace(node_id);
  NodeState& state = it->second;
  if (inserted) state.theta = config_.initial;

  if (state.has_seq) {
    if (seq <= state.last_seq) return std::nullopt;  // duplicate / reorder
    state.lost += seq - state.last_seq - 1;
  }
  state.last_seq = seq;
  state.has_seq = true;
  ++state.delivered;

  const std::uint64_t window_total = state.delivered + state.lost;
  if (window_total < static_cast<std::uint64_t>(config_.window_packets)) return std::nullopt;

  const double loss_rate = static_cast<double>(state.lost) / static_cast<double>(window_total);
  const double before = state.theta;
  if (loss_rate > config_.loss_raise) {
    state.theta = std::min(config_.theta_max, state.theta + config_.step);
  } else if (loss_rate < config_.loss_lower) {
    state.theta = std::max(config_.theta_min, state.theta - config_.step);
  }
  // Snap accumulated floating-point dust to the bounds so a converged cap
  // stops producing (and disseminating) no-op updates.
  if (std::abs(state.theta - config_.theta_min) < 1e-9) state.theta = config_.theta_min;
  if (std::abs(state.theta - config_.theta_max) < 1e-9) state.theta = config_.theta_max;
  state.delivered = 0;
  state.lost = 0;
  if (state.theta == before) return std::nullopt;
  return state.theta;
}

double ThetaController::theta(std::uint32_t node_id) const {
  const auto it = nodes_.find(node_id);
  return it != nodes_.end() ? it->second.theta : config_.initial;
}

std::vector<ThetaController::NodeSnapshot> ThetaController::snapshot() const {
  std::vector<NodeSnapshot> out;
  out.reserve(nodes_.size());
  for (const auto& [id, state] : nodes_) {
    out.push_back(NodeSnapshot{id, state.last_seq, state.has_seq, state.delivered, state.lost,
                               state.theta});
  }
  std::sort(out.begin(), out.end(),
            [](const NodeSnapshot& a, const NodeSnapshot& b) { return a.node_id < b.node_id; });
  return out;
}

void ThetaController::restore(const std::vector<NodeSnapshot>& nodes) {
  nodes_.clear();
  for (const NodeSnapshot& snap : nodes) {
    nodes_[snap.node_id] =
        NodeState{snap.last_seq, snap.has_seq, snap.delivered, snap.lost, snap.theta};
  }
}

}  // namespace blam
