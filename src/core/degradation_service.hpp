// Gateway-side degradation service (paper Sec. III-B, "Computing Battery
// Degradation" / "Disseminating battery degradation").
//
// Nodes cannot run the rainflow model themselves, so they piggy-back their
// SoC transition points (4 bytes per packet) on uplinks; the gateway
// maintains one DegradationTracker per node, recomputes every node's
// degradation D_u once per `recompute_interval` (daily by default), derives
// the normalized degradation w_u = D_u / D_max, and hands w_u back to each
// node inside its ACKs (1 extra byte). A node that has never reported (or a
// fresh battery) gets w_u = 0, letting it run Algorithm 1 without ever
// hearing from the gateway.
//
// The feedback pipe is lossy in deployment (and under the fault plan):
// reports are dropped, duplicated, reordered, truncated and bit-flipped by
// the very channel faults PR 1 injects. ingest_report() is the hardened
// entry point: it verifies the report checksum, classifies the report
// sequence number with serial-number arithmetic (duplicate / in-order /
// out-of-order / counter reset), buffers bounded out-of-order reports for
// deterministic reassembly, bridges unfilled gaps with an explicit
// interpolated-segment policy (the tracker's trapezoid/rainflow bridging,
// flagged per node as estimated seconds + gapped health rather than
// silently trusted), and treats a far-off sequence (the node's volatile counter
// reset at reboot) as an SoC discontinuity that seals the rainflow residual
// instead of fabricating a phantom cycle. Every node carries a ledger
// health state machine (healthy → gapped → quarantined → recovered) and a
// quarantined node gets the conservative prior w_u = 1 while being excluded
// from D_max, so one garbage-spewing radio cannot dilute everyone else's
// feedback. checkpoint()/restore() serialize the full ledger so a restarted
// gateway service resumes from its last recompute instead of resetting the
// network to w_u = 0.
//
// With an intact in-order stream, ingest_report() performs exactly the same
// tracker.record() calls as the legacy ingest(), so fault-free results are
// bit-identical to the pre-hardening service.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "degradation/model.hpp"
#include "degradation/tracker.hpp"

namespace blam {

/// One SoC transition point as carried in an uplink (paper: forecast-window
/// index + SoC, 2 x 2 bytes; we keep engineering units internally).
struct SocSample {
  Time t;
  double soc;
};

/// Checksum of a simulator-level SoC report: CRC-8 over the report sequence
/// number and each sample's canonical byte image (timestamp microseconds +
/// SoC bit pattern, little-endian). Nodes stamp it into UplinkFrame::
/// report_crc; ingest_report() recomputes and compares before trusting the
/// samples. (The wire codec carries its own CRC over the quantized FOpts
/// bytes; this one protects the exact values the simulator transports.)
[[nodiscard]] std::uint8_t report_checksum(std::uint16_t report_seq,
                                           std::span<const SocSample> samples);

/// Per-node ledger health (gateway's view of the feedback pipe).
enum class LedgerHealth : std::uint8_t {
  kHealthy = 0,
  /// At least one report gap was bridged by interpolation; clears on the
  /// next clean in-order report.
  kGapped = 1,
  /// Repeated integrity failures: the ledger stops trusting this node and
  /// disseminates the conservative prior w_u = 1 until reports come clean.
  kQuarantined = 2,
  /// Left quarantine on a clean streak; promoted back to healthy at the
  /// next recompute.
  kRecovered = 3,
};

[[nodiscard]] const char* ledger_health_name(LedgerHealth health);

/// Structured counters over every ingest decision (aggregated across
/// nodes; all zero on a clean in-order stream).
struct LedgerCounters {
  std::uint64_t reports_accepted{0};
  std::uint64_t reports_duplicate{0};
  std::uint64_t reports_checksum_rejected{0};
  /// Out-of-order reports parked in the bounded reassembly buffer.
  std::uint64_t reports_buffered{0};
  /// Buffered reports later applied (exact in-order heal or flushed).
  std::uint64_t reports_reassembled{0};
  std::uint64_t samples_rejected_nonmonotonic{0};
  std::uint64_t samples_rejected_range{0};
  /// Report gaps accepted as lost and bridged by interpolation.
  std::uint64_t gaps_bridged{0};
  /// Report-sequence resets treated as node crash/reboot discontinuities.
  std::uint64_t discontinuities{0};
  std::uint64_t quarantines{0};
  std::uint64_t recoveries{0};
};

class DegradationService {
 public:
  /// Serial-number window: a report sequence within this forward distance
  /// of the last applied one is a candidate for reordering; within the same
  /// backward distance it is a duplicate; anything farther is a counter
  /// reset (crash/reboot).
  static constexpr int kSeqWindow = 8;
  /// Out-of-order reports held per node before the buffer is flushed in
  /// serial order (missing reports declared lost, their gaps bridged).
  static constexpr std::size_t kReorderDepth = 4;
  /// Integrity failures that trip quarantine / clean reports that lift it.
  static constexpr std::uint32_t kQuarantineThreshold = 3;
  static constexpr std::uint32_t kRecoveryStreak = 3;

  DegradationService(const DegradationModel& model, double temperature_c);

  /// Registers a node (idempotent).
  void register_node(std::uint32_t node_id);

  /// Ingests SoC transition points reported by `node_id` WITHOUT the report
  /// integrity layer (no sequence numbers available — direct trace feeds in
  /// tests and benches). Samples are still validated: non-finite or
  /// out-of-range SoC and backwards timestamps are rejected and counted,
  /// never ingested.
  void ingest(std::uint32_t node_id, std::span<const SocSample> samples);

  /// Hardened ingest of one piggy-backed report: checksum verification,
  /// sequence classification, dedup, bounded out-of-order reassembly, gap
  /// bridging and crash-reset detection (see the file comment).
  void ingest_report(std::uint32_t node_id, std::uint16_t report_seq, std::uint8_t report_crc,
                     std::span<const SocSample> samples);

  /// Recomputes D_u for every node and refreshes w_u = D_u / D_max.
  /// Call once per dissemination period (daily in the paper). Flushes every
  /// node's reassembly buffer first (the dissemination period is the
  /// deterministic deadline for late reports). D_max excludes quarantined
  /// nodes, whose w_u is pinned to the conservative prior 1.
  void recompute(Time now);

  /// Latest normalized degradation for the node; 0 until the first
  /// recompute() that saw data from it; 1 while quarantined.
  [[nodiscard]] double normalized_degradation(std::uint32_t node_id) const;

  /// Latest absolute degradation estimate for the node.
  [[nodiscard]] double degradation(std::uint32_t node_id) const;

  /// Maximum degradation across all non-quarantined nodes with data at the
  /// last recompute().
  [[nodiscard]] double max_degradation() const { return max_degradation_; }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Ascending node ids (canonical recompute order).
  [[nodiscard]] const std::vector<std::uint32_t>& ids() const { return ids_; }

  [[nodiscard]] LedgerHealth health(std::uint32_t node_id) const;

  /// Seconds of this node's trace bridged by interpolation (the estimated,
  /// not observed, share of its degradation input).
  [[nodiscard]] double estimated_gap_seconds(std::uint32_t node_id) const;

  [[nodiscard]] const LedgerCounters& counters() const { return counters_; }

  /// Serializes the complete ledger (trackers, health, reassembly buffers,
  /// counters, last recompute results) as line-oriented text with bit-exact
  /// doubles and a trailing integrity checksum.
  void checkpoint(std::ostream& out) const;

  /// Rebuilds the ledger from a checkpoint() stream, replacing all current
  /// state. The service must have been constructed with the same model and
  /// temperature. Throws std::runtime_error on malformed or corrupt input.
  void restore(std::istream& in);

 private:
  struct HeldReport {
    std::uint16_t seq{0};
    std::vector<SocSample> samples;
  };

  struct NodeState {
    std::unique_ptr<DegradationTracker> tracker;
    double degradation{0.0};
    double normalized{0.0};
    LedgerHealth health{LedgerHealth::kHealthy};
    /// Integrity pipeline has seen at least one report from this node.
    bool has_report{false};
    /// At least one sample was accepted into the tracker.
    bool has_data{false};
    std::uint16_t last_seq{0};
    std::uint32_t suspicion{0};
    std::uint32_t clean_streak{0};
    /// Reassembly buffer, sorted by serial distance from last_seq.
    std::vector<HeldReport> held;
    double estimated_gap_s{0.0};
    Time first_sample_t{};
    Time last_sample_t{};
  };

  [[nodiscard]] const NodeState& state_of(std::uint32_t node_id) const;

  /// Finds-or-creates the state for `node_id` with a single hash lookup,
  /// keeping the sorted ids_ index in step.
  NodeState& obtain(std::uint32_t node_id);

  /// Validates and records samples (shared by both ingest paths).
  void accept_samples(NodeState& state, std::span<const SocSample> samples);
  /// One verified report: gap accounting + sample acceptance.
  void apply_report(NodeState& state, std::span<const SocSample> samples, bool bridged_gap);
  /// Applies buffered reports that now continue the sequence exactly.
  void drain_held(NodeState& state);
  /// Gives up waiting: applies ALL buffered reports in serial order,
  /// bridging the gaps of reports declared lost.
  void flush_held(NodeState& state);
  void hold(NodeState& state, std::uint16_t report_seq, std::span<const SocSample> samples);
  void mark_clean(NodeState& state);
  void mark_suspect(NodeState& state);
  /// D_u under the interpolated-segment gap policy (see degradation_of's
  /// definition: interpolation is the tracker's own bridging, flagged but
  /// not rescaled).
  [[nodiscard]] double degradation_of(const NodeState& state, Time now) const;

  DegradationModel model_;
  double temperature_c_;
  // Lookup-only by node id on the per-uplink path; every full pass
  // (recompute) walks `ids_` below, never the hash table.
  // blam-lint: allow(D2) -- never iterated: recompute() walks the sorted ids_ index
  std::unordered_map<std::uint32_t, NodeState> nodes_;
  /// Ascending node ids, maintained sorted on insert: recompute() iterates
  /// this index so w_u passes are in canonical id order regardless of hash
  /// layout (D_max via std::max is order-independent anyway, but sorted
  /// iteration keeps the pass order reproducible by inspection).
  std::vector<std::uint32_t> ids_;
  double max_degradation_{0.0};
  LedgerCounters counters_;
};

}  // namespace blam
