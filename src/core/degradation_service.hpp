// Gateway-side degradation service (paper Sec. III-B, "Computing Battery
// Degradation" / "Disseminating battery degradation").
//
// Nodes cannot run the rainflow model themselves, so they piggy-back their
// SoC transition points (4 bytes per packet) on uplinks; the gateway
// maintains one ledger row per node, recomputes every node's degradation
// D_u once per `recompute_interval` (daily by default), derives the
// normalized degradation w_u = D_u / D_max, and hands w_u back to each
// node inside its ACKs (1 extra byte). A node that has never reported (or a
// fresh battery) gets w_u = 0, letting it run Algorithm 1 without ever
// hearing from the gateway.
//
// PR 7 restructures the service into a batched streaming pipeline sized for
// a million-node fleet:
//
//  * per-node state is columnar (SoA): integrity/health policy columns live
//    here, the flattened tracker + rainflow + reassembly storage lives in
//    LedgerStore (core/ledger_store.hpp), all indexed by one dense
//    NodeHandle;
//  * report arrival is decoupled from rainflow processing by a FIFO staging
//    queue (core/soc_ingest_queue.hpp): enqueue_report() copies the report
//    and drains the queue whenever `ingest_batch` reports are waiting
//    (watermark backpressure); recompute(), checkpoint-time callers and
//    end-of-run barriers call drain_queue() explicitly. Drain order is
//    arrival order, so ANY batch size yields the bit-identical ledger, and
//    batch size 1 degenerates to the legacy synchronous path — the same
//    jobs=1 == serial argument SweepRunner established;
//  * recompute() touches the rainflow residual stacks of dirty nodes only
//    (LedgerStore caches the cycle-linear chain per node), while calendar
//    aging still advances for everyone.
//
// The feedback pipe is lossy in deployment (and under the fault plan):
// reports are dropped, duplicated, reordered, truncated and bit-flipped by
// the very channel faults PR 1 injects. The PR-6 integrity layer is
// unchanged: checksum verification, RFC-1982 serial-number classification
// (duplicate / in-order / out-of-order / counter reset), bounded
// out-of-order reassembly, flagged gap bridging, crash-reset residual
// sealing, and the healthy → gapped → quarantined → recovered health
// machine with the conservative prior w_u = 1 (excluded from D_max) while
// quarantined. checkpoint()/restore() keep the PR-6 "blamledger v1" text
// format bit-for-bit, so pre-refactor checkpoints restore into the
// columnar layout and re-serialize byte-identically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "core/ledger_store.hpp"
#include "core/soc_ingest_queue.hpp"
#include "core/soc_sample.hpp"
#include "degradation/model.hpp"

namespace blam {

/// Checksum of a simulator-level SoC report: CRC-8 over the report sequence
/// number and each sample's canonical byte image (timestamp microseconds +
/// SoC bit pattern, little-endian). Nodes stamp it into UplinkFrame::
/// report_crc; the ingest path recomputes and compares before trusting the
/// samples. (The wire codec carries its own CRC over the quantized FOpts
/// bytes; this one protects the exact values the simulator transports.)
[[nodiscard]] std::uint8_t report_checksum(std::uint16_t report_seq,
                                           std::span<const SocSample> samples);

/// Per-node ledger health (gateway's view of the feedback pipe).
enum class LedgerHealth : std::uint8_t {
  kHealthy = 0,
  /// At least one report gap was bridged by interpolation; clears on the
  /// next clean in-order report.
  kGapped = 1,
  /// Repeated integrity failures: the ledger stops trusting this node and
  /// disseminates the conservative prior w_u = 1 until reports come clean.
  kQuarantined = 2,
  /// Left quarantine on a clean streak; promoted back to healthy at the
  /// next recompute.
  kRecovered = 3,
};

[[nodiscard]] const char* ledger_health_name(LedgerHealth health);

/// Structured counters over every ingest decision (aggregated across
/// nodes; all zero on a clean in-order stream).
struct LedgerCounters {
  std::uint64_t reports_accepted{0};
  std::uint64_t reports_duplicate{0};
  std::uint64_t reports_checksum_rejected{0};
  /// Out-of-order reports parked in the bounded reassembly buffer.
  std::uint64_t reports_buffered{0};
  /// Buffered reports later applied (exact in-order heal or flushed).
  std::uint64_t reports_reassembled{0};
  std::uint64_t samples_rejected_nonmonotonic{0};
  std::uint64_t samples_rejected_range{0};
  /// Report gaps accepted as lost and bridged by interpolation.
  std::uint64_t gaps_bridged{0};
  /// Report-sequence resets treated as node crash/reboot discontinuities.
  std::uint64_t discontinuities{0};
  std::uint64_t quarantines{0};
  std::uint64_t recoveries{0};
};

/// All-reduce hook for D_max: when the fleet is split across shard-local
/// DegradationService instances (sim/shard_engine.hpp), every shard's w_u
/// must be normalized by the FLEET-wide maximum, not the local one. The
/// combiner is called once per recompute between the local-max pass and the
/// normalization pass; the serial engine leaves it unset.
class FleetMaxCombiner {
 public:
  virtual ~FleetMaxCombiner() = default;
  /// Receives this service's local D_max, returns the fleet-wide D_max.
  [[nodiscard]] virtual double combine_max_degradation(double local_max) = 0;
};

class DegradationService {
 public:
  /// Serial-number window: a report sequence within this forward distance
  /// of the last applied one is a candidate for reordering; within the same
  /// backward distance it is a duplicate; anything farther is a counter
  /// reset (crash/reboot).
  static constexpr int kSeqWindow = 8;
  /// Out-of-order reports held per node before the buffer is flushed in
  /// serial order (missing reports declared lost, their gaps bridged).
  static constexpr std::size_t kReorderDepth = 4;
  /// Integrity failures that trip quarantine / clean reports that lift it.
  static constexpr std::uint32_t kQuarantineThreshold = 3;
  static constexpr std::uint32_t kRecoveryStreak = 3;

  DegradationService(const DegradationModel& model, double temperature_c);

  /// Registers a node (idempotent).
  void register_node(std::uint32_t node_id);

  /// Ingests SoC transition points reported by `node_id` WITHOUT the report
  /// integrity layer (no sequence numbers available — direct trace feeds in
  /// tests and benches). Samples are still validated: non-finite or
  /// out-of-range SoC and backwards timestamps are rejected and counted,
  /// never ingested. Drains any staged reports first so mixed use keeps
  /// arrival order.
  void ingest(std::uint32_t node_id, std::span<const SocSample> samples);

  /// Synchronous hardened ingest of one piggy-backed report: checksum
  /// verification, sequence classification, dedup, bounded out-of-order
  /// reassembly, gap bridging and crash-reset detection (see the file
  /// comment). Drains any staged reports first so mixed use keeps arrival
  /// order.
  void ingest_report(std::uint32_t node_id, std::uint16_t report_seq, std::uint8_t report_crc,
                     std::span<const SocSample> samples);

  /// Streaming entry point: stages the report in the ingestion queue and
  /// drains it once `ingest_batch()` reports are waiting. Bit-identical to
  /// ingest_report() for every batch size (drain order = arrival order);
  /// batch size 1 drains on every call (the legacy synchronous behavior).
  void enqueue_report(std::uint32_t node_id, std::uint16_t report_seq, std::uint8_t report_crc,
                      std::span<const SocSample> samples);

  /// Processes every staged report in arrival order; returns the count.
  std::size_t drain_queue();

  /// Attaches the fleet-wide D_max all-reduce (nullptr = local max only,
  /// the serial engine's behavior).
  void set_fleet_combiner(FleetMaxCombiner* combiner) { combiner_ = combiner; }

  /// Queue watermark for enqueue_report() (must be >= 1).
  void set_ingest_batch(std::size_t batch);
  [[nodiscard]] std::size_t ingest_batch() const { return ingest_batch_; }
  [[nodiscard]] std::size_t queued_reports() const { return queue_.size(); }

  /// Recomputes D_u for every node and refreshes w_u = D_u / D_max.
  /// Call once per dissemination period (daily in the paper). Drains the
  /// ingestion queue and every node's reassembly buffer first (the
  /// dissemination period is the deterministic deadline for late reports).
  /// D_max excludes quarantined nodes, whose w_u is pinned to the
  /// conservative prior 1.
  void recompute(Time now);

  /// Latest normalized degradation for the node; 0 until the first
  /// recompute() that saw data from it; 1 while quarantined.
  [[nodiscard]] double normalized_degradation(std::uint32_t node_id) const;

  /// Latest absolute degradation estimate for the node.
  [[nodiscard]] double degradation(std::uint32_t node_id) const;

  /// Maximum degradation across all non-quarantined nodes with data at the
  /// last recompute().
  [[nodiscard]] double max_degradation() const { return max_degradation_; }

  [[nodiscard]] std::size_t node_count() const { return ids_.size(); }

  /// Ascending node ids (canonical recompute order).
  [[nodiscard]] const std::vector<std::uint32_t>& ids() const { return ids_; }

  [[nodiscard]] LedgerHealth health(std::uint32_t node_id) const;

  /// Seconds of this node's trace bridged by interpolation (the estimated,
  /// not observed, share of its degradation input).
  [[nodiscard]] double estimated_gap_seconds(std::uint32_t node_id) const;

  [[nodiscard]] const LedgerCounters& counters() const { return counters_; }

  /// Columnar state backing the ledger (introspection for bench/tests).
  [[nodiscard]] const LedgerStore& store() const { return store_; }

  /// Serializes the complete ledger (trackers, health, reassembly buffers,
  /// counters, last recompute results) as line-oriented text with bit-exact
  /// doubles and a trailing integrity checksum. A non-empty ingestion queue
  /// is drained first — drain order is arrival order regardless of when the
  /// drain runs, so checkpointing mid-batch cannot change results. The
  /// "blamledger v1" format is unchanged; pre-drain-era checkpoints restore
  /// into this version and vice versa.
  void checkpoint(std::ostream& out);

  /// Rebuilds the ledger from a checkpoint() stream, replacing all current
  /// state. The service must have been constructed with the same model and
  /// temperature, and the ingestion queue must be empty (std::logic_error).
  /// Throws std::runtime_error on malformed or corrupt input.
  void restore(std::istream& in);

 private:
  [[nodiscard]] NodeHandle handle_of(std::uint32_t node_id) const;

  /// Finds-or-creates the row for `node_id` with a single hash lookup,
  /// keeping the sorted ids_ index in step.
  NodeHandle obtain(std::uint32_t node_id);

  /// One report through the full integrity pipeline (the drain sink).
  void process_report(std::uint32_t node_id, std::uint16_t report_seq, std::uint8_t report_crc,
                      std::span<const SocSample> samples);

  /// Validates and records samples (shared by both ingest paths).
  void accept_samples(NodeHandle h, std::span<const SocSample> samples);
  /// One verified report: gap accounting + sample acceptance.
  void apply_report(NodeHandle h, std::span<const SocSample> samples, bool bridged_gap);
  /// Applies buffered reports that now continue the sequence exactly.
  void drain_held(NodeHandle h);
  /// Gives up waiting: applies ALL buffered reports in serial order,
  /// bridging the gaps of reports declared lost.
  void flush_held(NodeHandle h);
  void hold(NodeHandle h, std::uint16_t report_seq, std::span<const SocSample> samples);
  void mark_clean(NodeHandle h);
  void mark_suspect(NodeHandle h);

  /// Columnar tracker/rainflow/reassembly state, indexed by NodeHandle.
  LedgerStore store_;
  /// Arrival-order staging queue (enqueue_report / drain_queue).
  SocIngestQueue queue_;
  // blam-ckpt: skip -- batching policy from ScenarioConfig::ingest_batch, re-applied at construction
  std::size_t ingest_batch_{1};

  // Integrity/health policy columns, parallel to store_ rows.
  std::vector<std::uint8_t> health_;
  std::vector<std::uint8_t> has_report_;
  std::vector<std::uint8_t> has_data_;
  std::vector<std::uint16_t> last_seq_;
  std::vector<std::uint32_t> suspicion_;
  std::vector<std::uint32_t> clean_streak_;
  std::vector<double> degradation_;
  std::vector<double> normalized_;
  std::vector<double> estimated_gap_s_;
  std::vector<Time> first_sample_t_;
  std::vector<Time> last_sample_t_;

  // Node-id index. Lookup-only by node id on the per-report path; every
  // full pass (recompute, checkpoint) walks the sorted ids_ index below.
  // blam-lint: allow(D2) -- never iterated: full passes walk the sorted ids_ index
  std::unordered_map<std::uint32_t, NodeHandle> handle_of_;
  /// Ascending node ids, maintained sorted on insert: recompute() iterates
  /// this index so w_u passes are in canonical id order regardless of hash
  /// layout (D_max via std::max is order-independent anyway, but sorted
  /// iteration keeps the pass order reproducible by inspection).
  std::vector<std::uint32_t> ids_;
  /// Dense handles parallel to ids_ (handles_by_id_[i] is the row of
  /// ids_[i]).
  std::vector<NodeHandle> handles_by_id_;

  double max_degradation_{0.0};
  // blam-ckpt: skip -- shard-reducer wiring, re-attached by the owning engine
  FleetMaxCombiner* combiner_{nullptr};
  LedgerCounters counters_;
};

}  // namespace blam
