// Gateway-side degradation service (paper Sec. III-B, "Computing Battery
// Degradation" / "Disseminating battery degradation").
//
// Nodes cannot run the rainflow model themselves, so they piggy-back their
// SoC transition points (4 bytes per packet) on uplinks; the gateway
// maintains one DegradationTracker per node, recomputes every node's
// degradation D_u once per `recompute_interval` (daily by default), derives
// the normalized degradation w_u = D_u / D_max, and hands w_u back to each
// node inside its ACKs (1 extra byte). A node that has never reported (or a
// fresh battery) gets w_u = 0, letting it run Algorithm 1 without ever
// hearing from the gateway.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "degradation/model.hpp"
#include "degradation/tracker.hpp"

namespace blam {

/// One SoC transition point as carried in an uplink (paper: forecast-window
/// index + SoC, 2 x 2 bytes; we keep engineering units internally).
struct SocSample {
  Time t;
  double soc;
};

class DegradationService {
 public:
  DegradationService(const DegradationModel& model, double temperature_c);

  /// Registers a node (idempotent).
  void register_node(std::uint32_t node_id);

  /// Ingests SoC transition points reported by `node_id`. Samples must be
  /// time-ordered within and across reports (the MAC reports in order).
  void ingest(std::uint32_t node_id, std::span<const SocSample> samples);

  /// Recomputes D_u for every node and refreshes w_u = D_u / D_max.
  /// Call once per dissemination period (daily in the paper).
  void recompute(Time now);

  /// Latest normalized degradation for the node; 0 until the first
  /// recompute() that saw data from it.
  [[nodiscard]] double normalized_degradation(std::uint32_t node_id) const;

  /// Latest absolute degradation estimate for the node.
  [[nodiscard]] double degradation(std::uint32_t node_id) const;

  /// Maximum degradation across all nodes at the last recompute().
  [[nodiscard]] double max_degradation() const { return max_degradation_; }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  struct NodeState {
    std::unique_ptr<DegradationTracker> tracker;
    double degradation{0.0};
    double normalized{0.0};
  };

  [[nodiscard]] const NodeState& state_of(std::uint32_t node_id) const;

  /// Finds-or-creates the state for `node_id` with a single hash lookup,
  /// keeping the sorted ids_ index in step.
  NodeState& obtain(std::uint32_t node_id);

  DegradationModel model_;
  double temperature_c_;
  // Lookup-only by node id on the per-uplink path; every full pass
  // (recompute) walks `ids_` below, never the hash table.
  // blam-lint: allow(D2) -- never iterated: recompute() walks the sorted ids_ index
  std::unordered_map<std::uint32_t, NodeState> nodes_;
  /// Ascending node ids, maintained sorted on insert: recompute() iterates
  /// this index so w_u passes are in canonical id order regardless of hash
  /// layout (D_max via std::max is order-independent anyway, but sorted
  /// iteration keeps the pass order reproducible by inspection).
  std::vector<std::uint32_t> ids_;
  double max_degradation_{0.0};
};

}  // namespace blam
