// FIFO staging queue that decouples SoC-report arrival from rainflow
// processing in the gateway degradation service.
//
// Arriving reports are copied into two flat vectors (record headers +
// sample payload) and drained later in arrival order — the drain order IS
// the serial order, so processing in batches of any size produces the same
// ledger as immediate per-report ingestion (the SweepRunner determinism
// trick: batch size 1 degenerates to today's synchronous path). Memory is
// recycled wholesale when the queue empties, so the steady state performs
// no per-report heap allocation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/soc_sample.hpp"

namespace blam {

class SocIngestQueue {
 public:
  struct Record {
    std::uint32_t node_id{0};
    std::uint16_t report_seq{0};
    std::uint8_t report_crc{0};
    std::uint32_t sample_offset{0};
    std::uint32_t sample_count{0};
  };

  /// Copies one report (header + samples) to the back of the queue.
  void push(std::uint32_t node_id, std::uint16_t report_seq, std::uint8_t report_crc,
            std::span<const SocSample> samples) {
    Record record;
    record.node_id = node_id;
    record.report_seq = report_seq;
    record.report_crc = report_crc;
    record.sample_offset = static_cast<std::uint32_t>(samples_.size());
    record.sample_count = static_cast<std::uint32_t>(samples.size());
    samples_.insert(samples_.end(), samples.begin(), samples.end());
    records_.push_back(record);
    ++total_pushed_;
  }

  [[nodiscard]] bool empty() const { return head_ == records_.size(); }

  /// Reports currently queued.
  [[nodiscard]] std::size_t size() const { return records_.size() - head_; }

  [[nodiscard]] const Record& front() const { return records_[head_]; }

  [[nodiscard]] std::span<const SocSample> front_samples() const {
    const Record& r = records_[head_];
    return {samples_.data() + r.sample_offset, r.sample_count};
  }

  /// Drops the front record; when the queue runs dry both vectors are
  /// truncated in place (capacity retained — the arena survives).
  void pop_front() {
    ++head_;
    if (head_ == records_.size()) {
      records_.clear();
      samples_.clear();
      head_ = 0;
    }
  }

  /// Samples currently queued (payload backlog, for backpressure stats).
  [[nodiscard]] std::size_t queued_samples() const {
    return empty() ? 0 : samples_.size() - records_[head_].sample_offset;
  }

  /// Reports ever pushed (lifetime counter, for the bench).
  [[nodiscard]] std::uint64_t total_pushed() const { return total_pushed_; }

  /// High-water mark helpers for capacity reporting.
  [[nodiscard]] std::size_t record_capacity() const { return records_.capacity(); }
  [[nodiscard]] std::size_t sample_capacity() const { return samples_.capacity(); }

 private:
  std::vector<Record> records_;
  // blam-ckpt: skip -- always empty at a checkpoint: DegradationService::checkpoint drains the queue first
  std::vector<SocSample> samples_;
  std::size_t head_{0};
  // blam-ckpt: skip -- capacity telemetry (high-water reporting), not simulation state
  std::uint64_t total_pushed_{0};
};

}  // namespace blam
