// Columnar (SoA) per-node degradation state for the gateway ledger.
//
// The PR-6 service kept one heap-allocated DegradationTracker per node
// behind a unique_ptr in a hash map — fine for hundreds of nodes, hostile
// to millions: every ingest chased two pointers and every recompute walked
// scattered allocations. LedgerStore flattens the tracker (SoC/stress
// integrals, rainflow turning-point machine, held-report slots) into
// parallel columns indexed by a dense NodeHandle, with the two
// variable-length pieces — rainflow residual stacks and buffered
// out-of-order report samples — in chunked SpanArena storage. Registering a
// node appends one row; ingesting a report touches only the columns it
// needs; a full recompute streams the columns in index order.
//
// Every arithmetic expression here is copied operand-for-operand from
// DegradationTracker / RainflowCounter so the columnar ledger is
// bit-identical to the per-node trackers it replaces (proved by the
// differential tests in tests/test_ledger_store.cpp and the PR-6 checkpoint
// fixture in tests/test_ledger_checkpoint.cpp). The cycle-linear value is
// additionally cached per node and invalidated on any rainflow mutation,
// so a recompute touches the residual stacks of dirty nodes only — clean
// nodes cost two multiplies and an exp (calendar aging must still advance
// with `now`).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "core/soc_sample.hpp"
#include "core/span_arena.hpp"
#include "degradation/model.hpp"
#include "degradation/tracker.hpp"

namespace blam {

/// Dense row index into the ledger columns (registration order).
using NodeHandle = std::uint32_t;

class LedgerStore {
 public:
  /// `held_slots` is the per-node reassembly-buffer capacity (the service's
  /// kReorderDepth + 1: one slot of headroom so the overflowing insert can
  /// land before the buffer is flushed).
  LedgerStore(const DegradationModel& model, double temperature_c, std::uint32_t held_slots);

  /// Appends one node row (all-zero state); returns its dense handle.
  NodeHandle add_node();

  [[nodiscard]] std::size_t size() const { return has_sample_.size(); }

  /// Drops every row and recycles the arenas (restore() starts from this).
  void reset();

  // --- tracker columns (bit-identical to DegradationTracker) --------------

  /// Appends an SoC sample; `t` must be non-decreasing per node.
  void record(NodeHandle h, Time t, double soc);

  /// Seals the rainflow residual across a node crash/reboot.
  void mark_discontinuity(NodeHandle h);

  [[nodiscard]] bool has_sample(NodeHandle h) const { return has_sample_[h] != 0; }

  /// Linear calendar aging at `now` (tracker's calendar_linear).
  [[nodiscard]] double calendar_linear(NodeHandle h, Time now) const;

  /// Linear cycle aging including the open residual (tracker's
  /// cycle_linear); walks the residual stack.
  [[nodiscard]] double cycle_linear(NodeHandle h) const;

  /// Total non-linear degradation at `now`. Uses the per-node residual
  /// cache: nodes untouched since the last query skip the stack walk.
  [[nodiscard]] double degradation_at(NodeHandle h, Time now);

  /// Rows whose residual cache is valid (clean since last degradation_at).
  [[nodiscard]] std::size_t clean_rows() const;

  // --- held-report slots (bounded out-of-order reassembly) -----------------

  [[nodiscard]] std::uint32_t held_count(NodeHandle h) const { return held_count_[h]; }
  [[nodiscard]] std::uint16_t held_seq(NodeHandle h, std::uint32_t slot) const {
    return held_seq_[slot_index(h, slot)];
  }
  [[nodiscard]] std::span<const SocSample> held_samples(NodeHandle h, std::uint32_t slot) const {
    return sample_arena_.view(held_samples_[slot_index(h, slot)]);
  }
  /// Inserts at `slot`, shifting later slots up. Requires held_count < slots.
  void held_insert(NodeHandle h, std::uint32_t slot, std::uint16_t seq,
                   std::span<const SocSample> samples);
  /// Removes `slot`, shifting later slots down and recycling the samples.
  void held_remove(NodeHandle h, std::uint32_t slot);
  void held_clear(NodeHandle h);

  // --- checkpoint interchange ---------------------------------------------

  /// Row state in DegradationTracker::Snapshot form (same field meanings, so
  /// the PR-6 checkpoint text round-trips bit-exactly through the columns).
  [[nodiscard]] DegradationTracker::Snapshot snapshot(NodeHandle h) const;
  void restore(NodeHandle h, const DegradationTracker::Snapshot& snapshot);

  /// Elements reserved across both arenas (capacity stats for the bench).
  [[nodiscard]] std::size_t arena_pool_elements() const {
    return rainflow_arena_.pool_elements() + sample_arena_.pool_elements();
  }

 private:
  [[nodiscard]] std::size_t slot_index(NodeHandle h, std::uint32_t slot) const {
    return static_cast<std::size_t>(h) * held_slots_ + slot;
  }

  // Rainflow turning-point machine (RainflowCounter, columnar).
  void rainflow_push(NodeHandle h, double soc);
  void rainflow_accept_turning_point(NodeHandle h, double value);
  void rainflow_collapse(NodeHandle h);
  void rainflow_seal_residual(NodeHandle h);

  /// Closed-cycle accumulation: the tracker's on-cycle callback, inlined.
  void add_cycle(NodeHandle h, double weight, double range, double mean) {
    closed_cycle_sum_[h] += weight * range * mean * k6_ * temp_stress_[h];
  }

  /// Enumerates the residual as half cycles without consuming it
  /// (RainflowCounter::for_each_residual, columnar). Visit receives
  /// (range, mean, weight).
  template <typename Visit>
  void for_each_residual(NodeHandle h, Visit&& visit) const {
    const std::span<const double> stack = rainflow_arena_.view(rainflow_stack_[h]);
    const double* prev = nullptr;
    for (const double& point : stack) {
      if (prev != nullptr) {
        visit(std::abs(point - *prev), 0.5 * (point + *prev), 0.5);
      }
      prev = &point;
    }
    if (rf_has_last_[h] != 0 && rf_prev_direction_[h] != 0.0) {
      if (prev != nullptr && *prev != rf_last_[h]) {
        visit(std::abs(rf_last_[h] - *prev), 0.5 * (rf_last_[h] + *prev), 0.5);
      }
    }
  }

  DegradationModel model_;
  double default_temperature_c_;
  // blam-ckpt: skip -- model constant, copied from DegradationParams at construction
  double k6_;
  std::uint32_t held_slots_;

  // Tracker scalars.
  std::vector<double> closed_cycle_sum_;
  std::vector<Time> last_time_;
  std::vector<double> last_soc_;
  std::vector<std::uint8_t> has_sample_;
  std::vector<double> soc_time_integral_;
  std::vector<double> stress_time_integral_;
  std::vector<Time> stress_integrated_to_;
  std::vector<double> temperature_c_;
  std::vector<double> temp_stress_;
  std::vector<std::uint64_t> discontinuities_;

  // Rainflow machine.
  std::vector<std::uint64_t> rf_full_cycles_;
  std::vector<std::uint8_t> rf_has_last_;
  std::vector<double> rf_prev_direction_;
  std::vector<double> rf_last_;
  std::vector<SpanArena<double>::Ref> rainflow_stack_;
  SpanArena<double> rainflow_arena_;

  // Full cycle_linear cache (closed sum + residual chain, left-associated
  // exactly as the tracker computed it), invalidated by any rainflow
  // mutation; keeps recompute O(dirty stacks), bit-exact.
  // blam-ckpt: skip -- cycle_linear cache; residual_cache_valid_ starts false and entries regenerate on demand
  std::vector<double> residual_cache_;
  std::vector<std::uint8_t> residual_cache_valid_;

  // Held-report slots: held_slots_ wide per row.
  std::vector<std::uint32_t> held_count_;
  std::vector<std::uint16_t> held_seq_;
  std::vector<SpanArena<SocSample>::Ref> held_samples_;
  SpanArena<SocSample> sample_arena_;
};

}  // namespace blam
