#include "core/degradation_service.hpp"

#include <algorithm>
#include <stdexcept>

namespace blam {

DegradationService::DegradationService(const DegradationModel& model, double temperature_c)
    : model_{model}, temperature_c_{temperature_c} {}

DegradationService::NodeState& DegradationService::obtain(std::uint32_t node_id) {
  // Single hash lookup: try_emplace both registers an unknown node and
  // finds a known one (this runs once per delivered SoC report).
  auto [it, inserted] = nodes_.try_emplace(node_id);
  if (inserted) {
    it->second.tracker = std::make_unique<DegradationTracker>(model_, temperature_c_);
    ids_.insert(std::lower_bound(ids_.begin(), ids_.end(), node_id), node_id);
  }
  return it->second;
}

void DegradationService::register_node(std::uint32_t node_id) { obtain(node_id); }

void DegradationService::ingest(std::uint32_t node_id, std::span<const SocSample> samples) {
  DegradationTracker& tracker = *obtain(node_id).tracker;
  for (const SocSample& s : samples) tracker.record(s.t, s.soc);
}

void DegradationService::recompute(Time now) {
  // Canonical pass order: ascending node id via ids_, never the hash table
  // (see the member comment in the header).
  max_degradation_ = 0.0;
  for (const std::uint32_t id : ids_) {
    NodeState& state = nodes_.find(id)->second;
    state.degradation = state.tracker->degradation(now);
    max_degradation_ = std::max(max_degradation_, state.degradation);
  }
  for (const std::uint32_t id : ids_) {
    NodeState& state = nodes_.find(id)->second;
    state.normalized = max_degradation_ > 0.0 ? state.degradation / max_degradation_ : 0.0;
  }
}

const DegradationService::NodeState& DegradationService::state_of(std::uint32_t node_id) const {
  const auto it = nodes_.find(node_id);
  if (it == nodes_.end()) {
    throw std::out_of_range{"DegradationService: unknown node " + std::to_string(node_id)};
  }
  return it->second;
}

double DegradationService::normalized_degradation(std::uint32_t node_id) const {
  return state_of(node_id).normalized;
}

double DegradationService::degradation(std::uint32_t node_id) const {
  return state_of(node_id).degradation;
}

}  // namespace blam
