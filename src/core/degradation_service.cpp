#include "core/degradation_service.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/checksum.hpp"

namespace blam {

namespace {

// --- checkpoint text helpers -----------------------------------------------
// Doubles travel as 16-hex-digit bit patterns (lossless round trip; the
// campaign journal set the precedent), times as signed microseconds.

std::string hex_double(double v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, std::bit_cast<std::uint64_t>(v));
  return buf;
}

double parse_hex_double(const std::string& s) {
  if (s.size() != 16) throw std::runtime_error{"ledger checkpoint: malformed double '" + s + "'"};
  return std::bit_cast<double>(static_cast<std::uint64_t>(std::stoull(s, nullptr, 16)));
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

const char* ledger_health_name(LedgerHealth health) {
  switch (health) {
    case LedgerHealth::kHealthy:
      return "healthy";
    case LedgerHealth::kGapped:
      return "gapped";
    case LedgerHealth::kQuarantined:
      return "quarantined";
    case LedgerHealth::kRecovered:
      return "recovered";
  }
  return "?";
}

std::uint8_t report_checksum(std::uint16_t report_seq, std::span<const SocSample> samples) {
  // Canonical little-endian image: seq(2) then per sample t.us()(8) + the
  // SoC double's bit pattern(8). Bit patterns (not value comparisons) so a
  // single flipped mantissa bit changes the checksum.
  std::uint8_t crc = 0x00;
  const auto put = [&crc](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) crc = crc8_step(crc, static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put(report_seq, 2);
  for (const SocSample& sample : samples) {
    put(static_cast<std::uint64_t>(sample.t.us()), 8);
    put(std::bit_cast<std::uint64_t>(sample.soc), 8);
  }
  return crc;
}

DegradationService::DegradationService(const DegradationModel& model, double temperature_c)
    : store_{model, temperature_c, static_cast<std::uint32_t>(kReorderDepth) + 1} {}

NodeHandle DegradationService::obtain(std::uint32_t node_id) {
  // Single hash lookup: try_emplace both registers an unknown node and
  // finds a known one (this runs once per delivered SoC report).
  auto [it, inserted] = handle_of_.try_emplace(node_id, NodeHandle{0});
  if (inserted) {
    const NodeHandle h = store_.add_node();
    it->second = h;
    health_.push_back(static_cast<std::uint8_t>(LedgerHealth::kHealthy));
    has_report_.push_back(0);
    has_data_.push_back(0);
    last_seq_.push_back(0);
    suspicion_.push_back(0);
    clean_streak_.push_back(0);
    degradation_.push_back(0.0);
    normalized_.push_back(0.0);
    estimated_gap_s_.push_back(0.0);
    first_sample_t_.push_back(Time::zero());
    last_sample_t_.push_back(Time::zero());
    const auto pos = std::lower_bound(ids_.begin(), ids_.end(), node_id);
    const auto index = pos - ids_.begin();
    ids_.insert(pos, node_id);
    handles_by_id_.insert(handles_by_id_.begin() + index, h);
  }
  return it->second;
}

void DegradationService::register_node(std::uint32_t node_id) { obtain(node_id); }

void DegradationService::accept_samples(NodeHandle h, std::span<const SocSample> samples) {
  for (const SocSample& s : samples) {
    if (!std::isfinite(s.soc) || s.soc < 0.0 || s.soc > 1.0) {
      ++counters_.samples_rejected_range;
      continue;
    }
    if (has_data_[h] != 0 && s.t < last_sample_t_[h]) {
      ++counters_.samples_rejected_nonmonotonic;
      continue;
    }
    store_.record(h, s.t, s.soc);
    if (has_data_[h] == 0) first_sample_t_[h] = s.t;
    last_sample_t_[h] = s.t;
    has_data_[h] = 1;
  }
}

void DegradationService::ingest(std::uint32_t node_id, std::span<const SocSample> samples) {
  drain_queue();
  accept_samples(obtain(node_id), samples);
}

void DegradationService::apply_report(NodeHandle h, std::span<const SocSample> samples,
                                      bool bridged_gap) {
  if (bridged_gap) {
    ++counters_.gaps_bridged;
    // The trapezoid inside the tracker interpolates linearly across the
    // missing reports; account the bridged span as estimated, not observed.
    if (has_data_[h] != 0 && !samples.empty() && samples.front().t > last_sample_t_[h]) {
      estimated_gap_s_[h] += (samples.front().t - last_sample_t_[h]).seconds();
    }
    if (health_[h] == static_cast<std::uint8_t>(LedgerHealth::kHealthy)) {
      health_[h] = static_cast<std::uint8_t>(LedgerHealth::kGapped);
    }
  }
  accept_samples(h, samples);
  ++counters_.reports_accepted;
}

void DegradationService::drain_held(NodeHandle h) {
  while (store_.held_count(h) > 0 &&
         store_.held_seq(h, 0) == static_cast<std::uint16_t>(last_seq_[h] + 1)) {
    last_seq_[h] = store_.held_seq(h, 0);
    apply_report(h, store_.held_samples(h, 0), /*bridged_gap=*/false);
    ++counters_.reports_reassembled;
    store_.held_remove(h, 0);
  }
}

void DegradationService::flush_held(NodeHandle h) {
  while (store_.held_count(h) > 0) {
    const std::uint16_t seq = store_.held_seq(h, 0);
    const bool gap = seq != static_cast<std::uint16_t>(last_seq_[h] + 1);
    last_seq_[h] = seq;
    apply_report(h, store_.held_samples(h, 0), gap);
    ++counters_.reports_reassembled;
    store_.held_remove(h, 0);
  }
}

void DegradationService::hold(NodeHandle h, std::uint16_t report_seq,
                              std::span<const SocSample> samples) {
  // Serial order key: forward distance from the last applied sequence.
  const auto distance = [this, h](std::uint16_t seq) {
    return static_cast<std::uint16_t>(seq - last_seq_[h]);
  };
  const std::uint32_t count = store_.held_count(h);
  std::uint32_t slot = count;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint16_t seq = store_.held_seq(h, i);
    if (seq == report_seq) {
      ++counters_.reports_duplicate;
      return;
    }
    if (distance(seq) > distance(report_seq)) {
      slot = i;
      break;
    }
  }
  store_.held_insert(h, slot, report_seq, samples);
  ++counters_.reports_buffered;
  if (store_.held_count(h) > kReorderDepth) {
    // Reassembly buffer exhausted: the missing reports are declared lost
    // and everything held is applied in serial order with bridged gaps.
    flush_held(h);
  }
}

void DegradationService::mark_clean(NodeHandle h) {
  suspicion_[h] = 0;
  ++clean_streak_[h];
  if (health_[h] == static_cast<std::uint8_t>(LedgerHealth::kQuarantined) &&
      clean_streak_[h] >= kRecoveryStreak) {
    health_[h] = static_cast<std::uint8_t>(LedgerHealth::kRecovered);
    ++counters_.recoveries;
  } else if (health_[h] == static_cast<std::uint8_t>(LedgerHealth::kGapped) &&
             store_.held_count(h) == 0) {
    health_[h] = static_cast<std::uint8_t>(LedgerHealth::kHealthy);
  }
}

void DegradationService::mark_suspect(NodeHandle h) {
  clean_streak_[h] = 0;
  ++suspicion_[h];
  if (health_[h] != static_cast<std::uint8_t>(LedgerHealth::kQuarantined) &&
      suspicion_[h] >= kQuarantineThreshold) {
    health_[h] = static_cast<std::uint8_t>(LedgerHealth::kQuarantined);
    ++counters_.quarantines;
  }
}

void DegradationService::process_report(std::uint32_t node_id, std::uint16_t report_seq,
                                        std::uint8_t report_crc,
                                        std::span<const SocSample> samples) {
  const NodeHandle h = obtain(node_id);
  if (report_crc != report_checksum(report_seq, samples)) {
    ++counters_.reports_checksum_rejected;
    mark_suspect(h);
    return;
  }
  if (has_report_[h] == 0) {
    has_report_[h] = 1;
    last_seq_[h] = report_seq;
    apply_report(h, samples, /*bridged_gap=*/false);
    mark_clean(h);
    return;
  }
  // RFC-1982-style serial arithmetic: the u16 difference reinterpreted as
  // signed classifies the report relative to the last applied sequence even
  // across counter wrap.
  const auto diff =
      static_cast<std::int16_t>(static_cast<std::uint16_t>(report_seq - last_seq_[h]));
  if (diff == 0 || (diff < 0 && diff > -kSeqWindow)) {
    ++counters_.reports_duplicate;
    return;
  }
  if (diff == 1) {
    last_seq_[h] = report_seq;
    apply_report(h, samples, /*bridged_gap=*/false);
    drain_held(h);
    mark_clean(h);
    return;
  }
  if (diff > 1 && diff <= kSeqWindow) {
    hold(h, report_seq, samples);
    return;
  }
  // Sequence far outside the window: the node's volatile report counter
  // reset (crash/reboot). Seal the rainflow residual so the SoC break does
  // not pair into a phantom cycle, drop pre-crash stragglers (no longer
  // reassemblable in the new sequence space) and resume.
  ++counters_.discontinuities;
  store_.mark_discontinuity(h);
  store_.held_clear(h);
  last_seq_[h] = report_seq;
  apply_report(h, samples, /*bridged_gap=*/false);
  mark_clean(h);
}

void DegradationService::ingest_report(std::uint32_t node_id, std::uint16_t report_seq,
                                       std::uint8_t report_crc,
                                       std::span<const SocSample> samples) {
  drain_queue();
  process_report(node_id, report_seq, report_crc, samples);
}

void DegradationService::enqueue_report(std::uint32_t node_id, std::uint16_t report_seq,
                                        std::uint8_t report_crc,
                                        std::span<const SocSample> samples) {
  queue_.push(node_id, report_seq, report_crc, samples);
  if (queue_.size() >= ingest_batch_) drain_queue();
}

std::size_t DegradationService::drain_queue() {
  std::size_t drained = 0;
  while (!queue_.empty()) {
    const SocIngestQueue::Record record = queue_.front();
    // The span aliases the queue's payload vector; process_report copies
    // anything it keeps (arena-held reassembly slots, tracker columns) and
    // never pushes, so the alias is safe until pop_front().
    process_report(record.node_id, record.report_seq, record.report_crc, queue_.front_samples());
    queue_.pop_front();
    ++drained;
  }
  return drained;
}

void DegradationService::set_ingest_batch(std::size_t batch) {
  if (batch == 0) throw std::invalid_argument{"DegradationService: ingest batch must be >= 1"};
  ingest_batch_ = batch;
}

void DegradationService::recompute(Time now) {
  // The dissemination period is the deterministic deadline for late
  // reports: whatever is still staged or buffered is applied now.
  drain_queue();
  // Canonical pass order: ascending node id via ids_, never the hash table
  // (see the member comment in the header).
  max_degradation_ = 0.0;
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    const NodeHandle h = handles_by_id_[i];
    if (store_.held_count(h) > 0) flush_held(h);
    // The interpolated-segment policy for bridged gaps: the tracker's
    // trapezoid integrates calendar aging linearly across the gap and
    // rainflow pairs turning points straight over it — identical to what the
    // pre-hardening blind ingest produced for a lost report, which keeps
    // fault-free runs bit-exact. The estimated share of the trace is FLAGGED
    // (estimated_gap_s, kGapped health, gaps_bridged) rather than rescaled;
    // distrust is expressed through quarantine, not through silently
    // inflating D_u.
    degradation_[h] = store_.degradation_at(h, now);
    // Quarantined ledgers hold untrusted (or stale) estimates: they get the
    // conservative prior below and must not inflate or dilute D_max.
    if (has_data_[h] != 0 && health_[h] != static_cast<std::uint8_t>(LedgerHealth::kQuarantined)) {
      max_degradation_ = std::max(max_degradation_, degradation_[h]);
    }
  }
  // Fleet all-reduce: under the sharded engine the true D_max may live in
  // another shard's service. The combiner blocks at the epoch barrier, so
  // every shard normalizes by the same fleet-wide value.
  if (combiner_ != nullptr) {
    max_degradation_ = combiner_->combine_max_degradation(max_degradation_);
  }
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    const NodeHandle h = handles_by_id_[i];
    if (health_[h] == static_cast<std::uint8_t>(LedgerHealth::kQuarantined)) {
      normalized_[h] = 1.0;
    } else {
      normalized_[h] = max_degradation_ > 0.0 ? degradation_[h] / max_degradation_ : 0.0;
    }
    if (health_[h] == static_cast<std::uint8_t>(LedgerHealth::kRecovered)) {
      health_[h] = static_cast<std::uint8_t>(LedgerHealth::kHealthy);
    }
  }
}

NodeHandle DegradationService::handle_of(std::uint32_t node_id) const {
  const auto it = handle_of_.find(node_id);
  if (it == handle_of_.end()) {
    throw std::out_of_range{"DegradationService: unknown node " + std::to_string(node_id)};
  }
  return it->second;
}

double DegradationService::normalized_degradation(std::uint32_t node_id) const {
  return normalized_[handle_of(node_id)];
}

double DegradationService::degradation(std::uint32_t node_id) const {
  return degradation_[handle_of(node_id)];
}

LedgerHealth DegradationService::health(std::uint32_t node_id) const {
  return static_cast<LedgerHealth>(health_[handle_of(node_id)]);
}

double DegradationService::estimated_gap_seconds(std::uint32_t node_id) const {
  return estimated_gap_s_[handle_of(node_id)];
}

void DegradationService::checkpoint(std::ostream& out) {
  // Staged reports are transport state, not ledger state: fold them into
  // the ledger first. Draining here is batch-invariant (arrival order), so
  // a checkpoint taken mid-batch reads exactly like one taken after it.
  if (!queue_.empty()) drain_queue();
  // Line-oriented text, doubles as bit patterns, FNV-1a checksum trailer.
  std::ostringstream body;
  body << "blamledger v1 nodes " << ids_.size() << " maxdeg " << hex_double(max_degradation_)
       << "\n";
  const LedgerCounters& c = counters_;
  body << "counters " << c.reports_accepted << ' ' << c.reports_duplicate << ' '
       << c.reports_checksum_rejected << ' ' << c.reports_buffered << ' '
       << c.reports_reassembled << ' ' << c.samples_rejected_nonmonotonic << ' '
       << c.samples_rejected_range << ' ' << c.gaps_bridged << ' ' << c.discontinuities << ' '
       << c.quarantines << ' ' << c.recoveries << "\n";
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    const std::uint32_t id = ids_[i];
    const NodeHandle h = handles_by_id_[i];
    body << "node " << id << ' ' << static_cast<int>(health_[h]) << ' '
         << (has_report_[h] != 0 ? 1 : 0) << ' ' << (has_data_[h] != 0 ? 1 : 0) << ' '
         << last_seq_[h] << ' ' << suspicion_[h] << ' ' << clean_streak_[h] << ' '
         << hex_double(degradation_[h]) << ' ' << hex_double(normalized_[h]) << ' '
         << hex_double(estimated_gap_s_[h]) << ' ' << first_sample_t_[h].us() << ' '
         << last_sample_t_[h].us() << "\n";
    const DegradationTracker::Snapshot t = store_.snapshot(h);
    body << "tracker " << hex_double(t.closed_cycle_sum) << ' ' << t.last_time.us() << ' '
         << hex_double(t.last_soc) << ' ' << (t.has_sample ? 1 : 0) << ' '
         << hex_double(t.soc_time_integral) << ' ' << hex_double(t.stress_time_integral) << ' '
         << t.stress_integrated_to.us() << ' ' << hex_double(t.temperature_c) << ' '
         << t.discontinuities << "\n";
    body << "rainflow " << t.rainflow.full_cycles << ' ' << (t.rainflow.has_last ? 1 : 0) << ' '
         << hex_double(t.rainflow.prev_direction) << ' ' << hex_double(t.rainflow.last) << ' '
         << t.rainflow.stack.size();
    for (const double point : t.rainflow.stack) body << ' ' << hex_double(point);
    body << "\n";
    body << "held " << store_.held_count(h) << "\n";
    for (std::uint32_t slot = 0; slot < store_.held_count(h); ++slot) {
      const std::span<const SocSample> samples = store_.held_samples(h, slot);
      body << "heldrep " << store_.held_seq(h, slot) << ' ' << samples.size();
      for (const SocSample& sample : samples) {
        body << ' ' << sample.t.us() << ' ' << hex_double(sample.soc);
      }
      body << "\n";
    }
  }
  const std::string payload = body.str();
  char trailer[32];
  std::snprintf(trailer, sizeof trailer, "%016" PRIx64, fnv1a(payload));
  out << payload << "checksum " << trailer << "\n";
}

void DegradationService::restore(std::istream& in) {
  const auto fail = [](const std::string& what) {
    throw std::runtime_error{"ledger checkpoint: " + what};
  };
  if (!queue_.empty()) {
    throw std::logic_error{"DegradationService: drain_queue() before restore()"};
  }

  // Collect the payload first so the checksum covers exactly what is parsed.
  std::string payload;
  std::string checksum_line;
  std::string line;
  bool saw_checksum = false;
  while (std::getline(in, line)) {
    if (line.rfind("checksum ", 0) == 0) {
      checksum_line = line.substr(9);
      saw_checksum = true;
      break;
    }
    payload += line;
    payload += '\n';
  }
  if (!saw_checksum) fail("missing checksum trailer");
  char expected[32];
  std::snprintf(expected, sizeof expected, "%016" PRIx64, fnv1a(payload));
  if (checksum_line != expected) fail("checksum mismatch (corrupt or truncated)");

  std::istringstream body{payload};
  std::string tag;
  std::string word;
  std::size_t n_nodes = 0;
  if (!(body >> tag) || tag != "blamledger") fail("bad magic");
  if (!(body >> word) || word != "v1") fail("unsupported version");
  if (!(body >> tag >> n_nodes) || tag != "nodes") fail("missing node count");
  if (!(body >> tag >> word) || tag != "maxdeg") fail("missing maxdeg");

  store_.reset();
  health_.clear();
  has_report_.clear();
  has_data_.clear();
  last_seq_.clear();
  suspicion_.clear();
  clean_streak_.clear();
  degradation_.clear();
  normalized_.clear();
  estimated_gap_s_.clear();
  first_sample_t_.clear();
  last_sample_t_.clear();
  handle_of_.clear();
  ids_.clear();
  handles_by_id_.clear();
  max_degradation_ = parse_hex_double(word);

  if (!(body >> tag) || tag != "counters") fail("missing counters");
  LedgerCounters c;
  if (!(body >> c.reports_accepted >> c.reports_duplicate >> c.reports_checksum_rejected >>
        c.reports_buffered >> c.reports_reassembled >> c.samples_rejected_nonmonotonic >>
        c.samples_rejected_range >> c.gaps_bridged >> c.discontinuities >> c.quarantines >>
        c.recoveries)) {
    fail("malformed counters");
  }
  counters_ = c;

  for (std::size_t i = 0; i < n_nodes; ++i) {
    std::uint32_t id = 0;
    int health = 0;
    int has_report = 0;
    int has_data = 0;
    std::int64_t first_us = 0;
    std::int64_t last_us = 0;
    std::string deg;
    std::string norm;
    std::string gap;
    if (!(body >> tag >> id) || tag != "node") fail("missing node record");
    if (handle_of_.find(id) != handle_of_.end()) fail("duplicate node record");
    const NodeHandle h = obtain(id);
    if (!(body >> health >> has_report >> has_data >> last_seq_[h] >> suspicion_[h] >>
          clean_streak_[h] >> deg >> norm >> gap >> first_us >> last_us)) {
      fail("malformed node record");
    }
    if (health < 0 || health > 3) fail("health out of range");
    health_[h] = static_cast<std::uint8_t>(health);
    has_report_[h] = has_report != 0 ? 1 : 0;
    has_data_[h] = has_data != 0 ? 1 : 0;
    degradation_[h] = parse_hex_double(deg);
    normalized_[h] = parse_hex_double(norm);
    estimated_gap_s_[h] = parse_hex_double(gap);
    first_sample_t_[h] = Time::from_us(first_us);
    last_sample_t_[h] = Time::from_us(last_us);

    DegradationTracker::Snapshot t;
    std::string closed;
    std::string last_soc;
    std::string soc_int;
    std::string stress_int;
    std::string temp;
    std::int64_t last_time_us = 0;
    std::int64_t stress_to_us = 0;
    int has_sample = 0;
    if (!(body >> tag >> closed >> last_time_us >> last_soc >> has_sample >> soc_int >>
          stress_int >> stress_to_us >> temp >> t.discontinuities) ||
        tag != "tracker") {
      fail("malformed tracker record");
    }
    t.closed_cycle_sum = parse_hex_double(closed);
    t.last_time = Time::from_us(last_time_us);
    t.last_soc = parse_hex_double(last_soc);
    t.has_sample = has_sample != 0;
    t.soc_time_integral = parse_hex_double(soc_int);
    t.stress_time_integral = parse_hex_double(stress_int);
    t.stress_integrated_to = Time::from_us(stress_to_us);
    t.temperature_c = parse_hex_double(temp);

    int has_last = 0;
    std::string direction;
    std::string last_point;
    std::size_t depth = 0;
    if (!(body >> tag >> t.rainflow.full_cycles >> has_last >> direction >> last_point >>
          depth) ||
        tag != "rainflow") {
      fail("malformed rainflow record");
    }
    t.rainflow.has_last = has_last != 0;
    t.rainflow.prev_direction = parse_hex_double(direction);
    t.rainflow.last = parse_hex_double(last_point);
    t.rainflow.stack.reserve(depth);
    for (std::size_t p = 0; p < depth; ++p) {
      if (!(body >> word)) fail("truncated rainflow stack");
      t.rainflow.stack.push_back(parse_hex_double(word));
    }
    store_.restore(h, t);

    std::size_t n_held = 0;
    if (!(body >> tag >> n_held) || tag != "held") fail("malformed held record");
    if (n_held > kReorderDepth) fail("held buffer overflow");
    std::vector<SocSample> held_samples;
    for (std::size_t held = 0; held < n_held; ++held) {
      std::uint16_t seq = 0;
      std::size_t n_samples = 0;
      if (!(body >> tag >> seq >> n_samples) || tag != "heldrep") {
        fail("malformed held report");
      }
      held_samples.clear();
      held_samples.reserve(n_samples);
      for (std::size_t sm = 0; sm < n_samples; ++sm) {
        std::int64_t t_us = 0;
        if (!(body >> t_us >> word)) fail("truncated held report");
        held_samples.push_back(SocSample{Time::from_us(t_us), parse_hex_double(word)});
      }
      store_.held_insert(h, static_cast<std::uint32_t>(held), seq, held_samples);
    }
  }
  if (body >> tag) fail("trailing data");
}

}  // namespace blam
