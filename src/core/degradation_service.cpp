#include "core/degradation_service.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/checksum.hpp"

namespace blam {

namespace {

// --- checkpoint text helpers -----------------------------------------------
// Doubles travel as 16-hex-digit bit patterns (lossless round trip; the
// campaign journal set the precedent), times as signed microseconds.

std::string hex_double(double v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, std::bit_cast<std::uint64_t>(v));
  return buf;
}

double parse_hex_double(const std::string& s) {
  if (s.size() != 16) throw std::runtime_error{"ledger checkpoint: malformed double '" + s + "'"};
  return std::bit_cast<double>(static_cast<std::uint64_t>(std::stoull(s, nullptr, 16)));
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

const char* ledger_health_name(LedgerHealth health) {
  switch (health) {
    case LedgerHealth::kHealthy:
      return "healthy";
    case LedgerHealth::kGapped:
      return "gapped";
    case LedgerHealth::kQuarantined:
      return "quarantined";
    case LedgerHealth::kRecovered:
      return "recovered";
  }
  return "?";
}

std::uint8_t report_checksum(std::uint16_t report_seq, std::span<const SocSample> samples) {
  // Canonical little-endian image: seq(2) then per sample t.us()(8) + the
  // SoC double's bit pattern(8). Bit patterns (not value comparisons) so a
  // single flipped mantissa bit changes the checksum.
  std::uint8_t crc = 0x00;
  const auto put = [&crc](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) crc = crc8_step(crc, static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put(report_seq, 2);
  for (const SocSample& sample : samples) {
    put(static_cast<std::uint64_t>(sample.t.us()), 8);
    put(std::bit_cast<std::uint64_t>(sample.soc), 8);
  }
  return crc;
}

DegradationService::DegradationService(const DegradationModel& model, double temperature_c)
    : model_{model}, temperature_c_{temperature_c} {}

DegradationService::NodeState& DegradationService::obtain(std::uint32_t node_id) {
  // Single hash lookup: try_emplace both registers an unknown node and
  // finds a known one (this runs once per delivered SoC report).
  auto [it, inserted] = nodes_.try_emplace(node_id);
  if (inserted) {
    it->second.tracker = std::make_unique<DegradationTracker>(model_, temperature_c_);
    ids_.insert(std::lower_bound(ids_.begin(), ids_.end(), node_id), node_id);
  }
  return it->second;
}

void DegradationService::register_node(std::uint32_t node_id) { obtain(node_id); }

void DegradationService::accept_samples(NodeState& state, std::span<const SocSample> samples) {
  for (const SocSample& s : samples) {
    if (!std::isfinite(s.soc) || s.soc < 0.0 || s.soc > 1.0) {
      ++counters_.samples_rejected_range;
      continue;
    }
    if (state.has_data && s.t < state.last_sample_t) {
      ++counters_.samples_rejected_nonmonotonic;
      continue;
    }
    state.tracker->record(s.t, s.soc);
    if (!state.has_data) state.first_sample_t = s.t;
    state.last_sample_t = s.t;
    state.has_data = true;
  }
}

void DegradationService::ingest(std::uint32_t node_id, std::span<const SocSample> samples) {
  accept_samples(obtain(node_id), samples);
}

void DegradationService::apply_report(NodeState& state, std::span<const SocSample> samples,
                                      bool bridged_gap) {
  if (bridged_gap) {
    ++counters_.gaps_bridged;
    // The trapezoid inside the tracker interpolates linearly across the
    // missing reports; account the bridged span as estimated, not observed.
    if (state.has_data && !samples.empty() && samples.front().t > state.last_sample_t) {
      state.estimated_gap_s += (samples.front().t - state.last_sample_t).seconds();
    }
    if (state.health == LedgerHealth::kHealthy) state.health = LedgerHealth::kGapped;
  }
  accept_samples(state, samples);
  ++counters_.reports_accepted;
}

void DegradationService::drain_held(NodeState& state) {
  while (!state.held.empty() &&
         state.held.front().seq == static_cast<std::uint16_t>(state.last_seq + 1)) {
    const HeldReport report = std::move(state.held.front());
    state.held.erase(state.held.begin());
    state.last_seq = report.seq;
    apply_report(state, report.samples, /*bridged_gap=*/false);
    ++counters_.reports_reassembled;
  }
}

void DegradationService::flush_held(NodeState& state) {
  for (HeldReport& report : state.held) {
    const bool gap = report.seq != static_cast<std::uint16_t>(state.last_seq + 1);
    state.last_seq = report.seq;
    apply_report(state, report.samples, gap);
    ++counters_.reports_reassembled;
  }
  state.held.clear();
}

void DegradationService::hold(NodeState& state, std::uint16_t report_seq,
                              std::span<const SocSample> samples) {
  // Serial order key: forward distance from the last applied sequence.
  const auto distance = [&state](std::uint16_t seq) {
    return static_cast<std::uint16_t>(seq - state.last_seq);
  };
  auto it = state.held.begin();
  for (; it != state.held.end(); ++it) {
    if (it->seq == report_seq) {
      ++counters_.reports_duplicate;
      return;
    }
    if (distance(it->seq) > distance(report_seq)) break;
  }
  HeldReport held;
  held.seq = report_seq;
  held.samples.assign(samples.begin(), samples.end());
  state.held.insert(it, std::move(held));
  ++counters_.reports_buffered;
  if (state.held.size() > kReorderDepth) {
    // Reassembly buffer exhausted: the missing reports are declared lost
    // and everything held is applied in serial order with bridged gaps.
    flush_held(state);
  }
}

void DegradationService::mark_clean(NodeState& state) {
  state.suspicion = 0;
  ++state.clean_streak;
  if (state.health == LedgerHealth::kQuarantined && state.clean_streak >= kRecoveryStreak) {
    state.health = LedgerHealth::kRecovered;
    ++counters_.recoveries;
  } else if (state.health == LedgerHealth::kGapped && state.held.empty()) {
    state.health = LedgerHealth::kHealthy;
  }
}

void DegradationService::mark_suspect(NodeState& state) {
  state.clean_streak = 0;
  ++state.suspicion;
  if (state.health != LedgerHealth::kQuarantined && state.suspicion >= kQuarantineThreshold) {
    state.health = LedgerHealth::kQuarantined;
    ++counters_.quarantines;
  }
}

void DegradationService::ingest_report(std::uint32_t node_id, std::uint16_t report_seq,
                                       std::uint8_t report_crc,
                                       std::span<const SocSample> samples) {
  NodeState& state = obtain(node_id);
  if (report_crc != report_checksum(report_seq, samples)) {
    ++counters_.reports_checksum_rejected;
    mark_suspect(state);
    return;
  }
  if (!state.has_report) {
    state.has_report = true;
    state.last_seq = report_seq;
    apply_report(state, samples, /*bridged_gap=*/false);
    mark_clean(state);
    return;
  }
  // RFC-1982-style serial arithmetic: the u16 difference reinterpreted as
  // signed classifies the report relative to the last applied sequence even
  // across counter wrap.
  const auto diff =
      static_cast<std::int16_t>(static_cast<std::uint16_t>(report_seq - state.last_seq));
  if (diff == 0 || (diff < 0 && diff > -kSeqWindow)) {
    ++counters_.reports_duplicate;
    return;
  }
  if (diff == 1) {
    state.last_seq = report_seq;
    apply_report(state, samples, /*bridged_gap=*/false);
    drain_held(state);
    mark_clean(state);
    return;
  }
  if (diff > 1 && diff <= kSeqWindow) {
    hold(state, report_seq, samples);
    return;
  }
  // Sequence far outside the window: the node's volatile report counter
  // reset (crash/reboot). Seal the rainflow residual so the SoC break does
  // not pair into a phantom cycle, drop pre-crash stragglers (no longer
  // reassemblable in the new sequence space) and resume.
  ++counters_.discontinuities;
  state.tracker->mark_discontinuity();
  state.held.clear();
  state.last_seq = report_seq;
  apply_report(state, samples, /*bridged_gap=*/false);
  mark_clean(state);
}

double DegradationService::degradation_of(const NodeState& state, Time now) const {
  // The interpolated-segment policy for bridged gaps: the tracker's
  // trapezoid integrates calendar aging linearly across the gap and
  // rainflow pairs turning points straight over it — identical to what the
  // pre-hardening blind ingest produced for a lost report, which keeps
  // fault-free runs bit-exact. The estimated share of the trace is FLAGGED
  // (estimated_gap_s, kGapped health, gaps_bridged) rather than rescaled;
  // distrust is expressed through quarantine, not through silently
  // inflating D_u.
  return state.tracker->degradation(now);
}

void DegradationService::recompute(Time now) {
  // Canonical pass order: ascending node id via ids_, never the hash table
  // (see the member comment in the header).
  max_degradation_ = 0.0;
  for (const std::uint32_t id : ids_) {
    NodeState& state = nodes_.find(id)->second;
    // The dissemination period is the deterministic deadline for late
    // reports: whatever is still buffered is applied now, gaps bridged.
    if (!state.held.empty()) flush_held(state);
    state.degradation = degradation_of(state, now);
    // Quarantined ledgers hold untrusted (or stale) estimates: they get the
    // conservative prior below and must not inflate or dilute D_max.
    if (state.has_data && state.health != LedgerHealth::kQuarantined) {
      max_degradation_ = std::max(max_degradation_, state.degradation);
    }
  }
  for (const std::uint32_t id : ids_) {
    NodeState& state = nodes_.find(id)->second;
    if (state.health == LedgerHealth::kQuarantined) {
      state.normalized = 1.0;
    } else {
      state.normalized = max_degradation_ > 0.0 ? state.degradation / max_degradation_ : 0.0;
    }
    if (state.health == LedgerHealth::kRecovered) state.health = LedgerHealth::kHealthy;
  }
}

const DegradationService::NodeState& DegradationService::state_of(std::uint32_t node_id) const {
  const auto it = nodes_.find(node_id);
  if (it == nodes_.end()) {
    throw std::out_of_range{"DegradationService: unknown node " + std::to_string(node_id)};
  }
  return it->second;
}

double DegradationService::normalized_degradation(std::uint32_t node_id) const {
  return state_of(node_id).normalized;
}

double DegradationService::degradation(std::uint32_t node_id) const {
  return state_of(node_id).degradation;
}

LedgerHealth DegradationService::health(std::uint32_t node_id) const {
  return state_of(node_id).health;
}

double DegradationService::estimated_gap_seconds(std::uint32_t node_id) const {
  return state_of(node_id).estimated_gap_s;
}

void DegradationService::checkpoint(std::ostream& out) const {
  // Line-oriented text, doubles as bit patterns, FNV-1a checksum trailer.
  std::ostringstream body;
  body << "blamledger v1 nodes " << ids_.size() << " maxdeg " << hex_double(max_degradation_)
       << "\n";
  const LedgerCounters& c = counters_;
  body << "counters " << c.reports_accepted << ' ' << c.reports_duplicate << ' '
       << c.reports_checksum_rejected << ' ' << c.reports_buffered << ' '
       << c.reports_reassembled << ' ' << c.samples_rejected_nonmonotonic << ' '
       << c.samples_rejected_range << ' ' << c.gaps_bridged << ' ' << c.discontinuities << ' '
       << c.quarantines << ' ' << c.recoveries << "\n";
  for (const std::uint32_t id : ids_) {
    const NodeState& s = nodes_.find(id)->second;
    body << "node " << id << ' ' << static_cast<int>(s.health) << ' ' << (s.has_report ? 1 : 0)
         << ' ' << (s.has_data ? 1 : 0) << ' ' << s.last_seq << ' ' << s.suspicion << ' '
         << s.clean_streak << ' ' << hex_double(s.degradation) << ' ' << hex_double(s.normalized)
         << ' ' << hex_double(s.estimated_gap_s) << ' ' << s.first_sample_t.us() << ' '
         << s.last_sample_t.us() << "\n";
    const DegradationTracker::Snapshot t = s.tracker->snapshot();
    body << "tracker " << hex_double(t.closed_cycle_sum) << ' ' << t.last_time.us() << ' '
         << hex_double(t.last_soc) << ' ' << (t.has_sample ? 1 : 0) << ' '
         << hex_double(t.soc_time_integral) << ' ' << hex_double(t.stress_time_integral) << ' '
         << t.stress_integrated_to.us() << ' ' << hex_double(t.temperature_c) << ' '
         << t.discontinuities << "\n";
    body << "rainflow " << t.rainflow.full_cycles << ' ' << (t.rainflow.has_last ? 1 : 0) << ' '
         << hex_double(t.rainflow.prev_direction) << ' ' << hex_double(t.rainflow.last) << ' '
         << t.rainflow.stack.size();
    for (const double point : t.rainflow.stack) body << ' ' << hex_double(point);
    body << "\n";
    body << "held " << s.held.size() << "\n";
    for (const HeldReport& h : s.held) {
      body << "heldrep " << h.seq << ' ' << h.samples.size();
      for (const SocSample& sample : h.samples) {
        body << ' ' << sample.t.us() << ' ' << hex_double(sample.soc);
      }
      body << "\n";
    }
  }
  const std::string payload = body.str();
  char trailer[32];
  std::snprintf(trailer, sizeof trailer, "%016" PRIx64, fnv1a(payload));
  out << payload << "checksum " << trailer << "\n";
}

void DegradationService::restore(std::istream& in) {
  const auto fail = [](const std::string& what) {
    throw std::runtime_error{"ledger checkpoint: " + what};
  };

  // Collect the payload first so the checksum covers exactly what is parsed.
  std::string payload;
  std::string checksum_line;
  std::string line;
  bool saw_checksum = false;
  while (std::getline(in, line)) {
    if (line.rfind("checksum ", 0) == 0) {
      checksum_line = line.substr(9);
      saw_checksum = true;
      break;
    }
    payload += line;
    payload += '\n';
  }
  if (!saw_checksum) fail("missing checksum trailer");
  char expected[32];
  std::snprintf(expected, sizeof expected, "%016" PRIx64, fnv1a(payload));
  if (checksum_line != expected) fail("checksum mismatch (corrupt or truncated)");

  std::istringstream body{payload};
  std::string tag;
  std::string word;
  std::size_t n_nodes = 0;
  if (!(body >> tag) || tag != "blamledger") fail("bad magic");
  if (!(body >> word) || word != "v1") fail("unsupported version");
  if (!(body >> tag >> n_nodes) || tag != "nodes") fail("missing node count");
  if (!(body >> tag >> word) || tag != "maxdeg") fail("missing maxdeg");

  nodes_.clear();
  ids_.clear();
  max_degradation_ = parse_hex_double(word);

  if (!(body >> tag) || tag != "counters") fail("missing counters");
  LedgerCounters c;
  if (!(body >> c.reports_accepted >> c.reports_duplicate >> c.reports_checksum_rejected >>
        c.reports_buffered >> c.reports_reassembled >> c.samples_rejected_nonmonotonic >>
        c.samples_rejected_range >> c.gaps_bridged >> c.discontinuities >> c.quarantines >>
        c.recoveries)) {
    fail("malformed counters");
  }
  counters_ = c;

  for (std::size_t i = 0; i < n_nodes; ++i) {
    std::uint32_t id = 0;
    int health = 0;
    int has_report = 0;
    int has_data = 0;
    std::int64_t first_us = 0;
    std::int64_t last_us = 0;
    std::string deg;
    std::string norm;
    std::string gap;
    NodeState fresh;
    if (!(body >> tag >> id) || tag != "node") fail("missing node record");
    NodeState& s = obtain(id);
    if (s.has_report || s.has_data) fail("duplicate node record");
    if (!(body >> health >> has_report >> has_data >> s.last_seq >> s.suspicion >>
          s.clean_streak >> deg >> norm >> gap >> first_us >> last_us)) {
      fail("malformed node record");
    }
    if (health < 0 || health > 3) fail("health out of range");
    s.health = static_cast<LedgerHealth>(health);
    s.has_report = has_report != 0;
    s.has_data = has_data != 0;
    s.degradation = parse_hex_double(deg);
    s.normalized = parse_hex_double(norm);
    s.estimated_gap_s = parse_hex_double(gap);
    s.first_sample_t = Time::from_us(first_us);
    s.last_sample_t = Time::from_us(last_us);

    DegradationTracker::Snapshot t;
    std::string closed;
    std::string last_soc;
    std::string soc_int;
    std::string stress_int;
    std::string temp;
    std::int64_t last_time_us = 0;
    std::int64_t stress_to_us = 0;
    int has_sample = 0;
    if (!(body >> tag >> closed >> last_time_us >> last_soc >> has_sample >> soc_int >>
          stress_int >> stress_to_us >> temp >> t.discontinuities) ||
        tag != "tracker") {
      fail("malformed tracker record");
    }
    t.closed_cycle_sum = parse_hex_double(closed);
    t.last_time = Time::from_us(last_time_us);
    t.last_soc = parse_hex_double(last_soc);
    t.has_sample = has_sample != 0;
    t.soc_time_integral = parse_hex_double(soc_int);
    t.stress_time_integral = parse_hex_double(stress_int);
    t.stress_integrated_to = Time::from_us(stress_to_us);
    t.temperature_c = parse_hex_double(temp);

    int has_last = 0;
    std::string direction;
    std::string last_point;
    std::size_t depth = 0;
    if (!(body >> tag >> t.rainflow.full_cycles >> has_last >> direction >> last_point >>
          depth) ||
        tag != "rainflow") {
      fail("malformed rainflow record");
    }
    t.rainflow.has_last = has_last != 0;
    t.rainflow.prev_direction = parse_hex_double(direction);
    t.rainflow.last = parse_hex_double(last_point);
    t.rainflow.stack.reserve(depth);
    for (std::size_t p = 0; p < depth; ++p) {
      if (!(body >> word)) fail("truncated rainflow stack");
      t.rainflow.stack.push_back(parse_hex_double(word));
    }
    s.tracker->restore(t);

    std::size_t n_held = 0;
    if (!(body >> tag >> n_held) || tag != "held") fail("malformed held record");
    for (std::size_t h = 0; h < n_held; ++h) {
      HeldReport held;
      std::size_t n_samples = 0;
      if (!(body >> tag >> held.seq >> n_samples) || tag != "heldrep") {
        fail("malformed held report");
      }
      held.samples.reserve(n_samples);
      for (std::size_t sm = 0; sm < n_samples; ++sm) {
        std::int64_t t_us = 0;
        if (!(body >> t_us >> word)) fail("truncated held report");
        held.samples.push_back(SocSample{Time::from_us(t_us), parse_hex_double(word)});
      }
      s.held.push_back(std::move(held));
    }
  }
  if (body >> tag) fail("trailing data");
}

}  // namespace blam
