#include "core/utility.hpp"

#include <cmath>

namespace blam {

double LinearUtility::value(int t, int n) const {
  check(t, n);
  return static_cast<double>(n - t) / static_cast<double>(n);
}

ExponentialUtility::ExponentialUtility(double lambda) : lambda_{lambda} {
  if (lambda < 0.0) throw std::invalid_argument{"ExponentialUtility: lambda must be >= 0"};
}

double ExponentialUtility::value(int t, int n) const {
  check(t, n);
  return std::exp(-lambda_ * static_cast<double>(t) / static_cast<double>(n));
}

StepUtility::StepUtility(double deadline_fraction, double floor)
    : deadline_fraction_{deadline_fraction}, floor_{floor} {
  if (deadline_fraction < 0.0 || deadline_fraction > 1.0) {
    throw std::invalid_argument{"StepUtility: deadline fraction must be in [0,1]"};
  }
  if (floor < 0.0 || floor > 1.0) {
    throw std::invalid_argument{"StepUtility: floor must be in [0,1]"};
  }
}

double StepUtility::value(int t, int n) const {
  check(t, n);
  const double fraction = static_cast<double>(t) / static_cast<double>(n);
  return fraction <= deadline_fraction_ ? 1.0 : floor_;
}

}  // namespace blam
