#include "core/ledger_store.hpp"

#include <stdexcept>

namespace blam {

LedgerStore::LedgerStore(const DegradationModel& model, double temperature_c,
                         std::uint32_t held_slots)
    : model_{model},
      default_temperature_c_{temperature_c},
      k6_{model.params().k6},
      held_slots_{held_slots} {}

NodeHandle LedgerStore::add_node() {
  const auto handle = static_cast<NodeHandle>(size());
  closed_cycle_sum_.push_back(0.0);
  last_time_.push_back(Time::zero());
  last_soc_.push_back(0.0);
  has_sample_.push_back(0);
  soc_time_integral_.push_back(0.0);
  stress_time_integral_.push_back(0.0);
  stress_integrated_to_.push_back(Time::zero());
  temperature_c_.push_back(default_temperature_c_);
  temp_stress_.push_back(model_.temperature_stress(default_temperature_c_));
  discontinuities_.push_back(0);
  rf_full_cycles_.push_back(0);
  rf_has_last_.push_back(0);
  rf_prev_direction_.push_back(0.0);
  rf_last_.push_back(0.0);
  rainflow_stack_.emplace_back();
  residual_cache_.push_back(0.0);
  residual_cache_valid_.push_back(0);
  held_count_.push_back(0);
  held_seq_.resize(held_seq_.size() + held_slots_, 0);
  held_samples_.resize(held_samples_.size() + held_slots_);
  return handle;
}

void LedgerStore::reset() {
  *this = LedgerStore{model_, default_temperature_c_, held_slots_};
}

// --- tracker arithmetic (operand-for-operand from DegradationTracker) ------

void LedgerStore::record(NodeHandle h, Time t, double soc) {
  if (has_sample_[h] != 0) {
    if (t < last_time_[h]) throw std::invalid_argument{"LedgerStore: time went backwards"};
    // Trapezoidal SoC-time integral: SoC ramps (dis)charge roughly linearly
    // between transition points.
    soc_time_integral_[h] += 0.5 * (last_soc_[h] + soc) * (t - last_time_[h]).seconds();
  }
  if (t > stress_integrated_to_[h]) {
    stress_time_integral_[h] += temp_stress_[h] * (t - stress_integrated_to_[h]).seconds();
    stress_integrated_to_[h] = t;
  }
  rainflow_push(h, soc);
  last_time_[h] = t;
  last_soc_[h] = soc;
  has_sample_[h] = 1;
  residual_cache_valid_[h] = 0;
}

void LedgerStore::mark_discontinuity(NodeHandle h) {
  if (has_sample_[h] == 0) return;
  rainflow_seal_residual(h);
  ++discontinuities_[h];
  residual_cache_valid_[h] = 0;
}

double LedgerStore::calendar_linear(NodeHandle h, Time now) const {
  if (has_sample_[h] == 0) return 0.0;
  // phi_bar over the observed trace; the battery existed from time zero.
  double integral = soc_time_integral_[h];
  const double elapsed = now.seconds();
  if (now > last_time_[h]) integral += last_soc_[h] * (now - last_time_[h]).seconds();
  if (elapsed <= 0.0) return 0.0;
  const double phi_bar = integral / elapsed;

  // Stress-time integral extended virtually to `now` at the current stress.
  double stress_integral = stress_time_integral_[h];
  if (now > stress_integrated_to_[h]) {
    stress_integral += temp_stress_[h] * (now - stress_integrated_to_[h]).seconds();
  }
  const DegradationParams& p = model_.params();
  return p.k1 * stress_integral * std::exp(p.k2 * (phi_bar - p.k3));
}

double LedgerStore::cycle_linear(NodeHandle h) const {
  double sum = closed_cycle_sum_[h];
  for_each_residual(h, [this, h, &sum](double range, double mean, double weight) {
    sum += weight * range * mean * k6_ * temp_stress_[h];
  });
  return sum;
}

double LedgerStore::degradation_at(NodeHandle h, Time now) {
  // The cache holds the WHOLE cycle_linear value, not just the residual
  // share: FP addition is non-associative, so splitting the left-associated
  // closed + r1 + r2 + ... chain would perturb the last bits. The closed
  // sum only changes under record()/seal, which invalidate the cache, so
  // caching the full chain is bit-exact.
  if (residual_cache_valid_[h] == 0) {
    residual_cache_[h] = cycle_linear(h);
    residual_cache_valid_[h] = 1;
  }
  return model_.nonlinear(calendar_linear(h, now) + residual_cache_[h]);
}

std::size_t LedgerStore::clean_rows() const {
  std::size_t clean = 0;
  for (const std::uint8_t valid : residual_cache_valid_) clean += valid;
  return clean;
}

// --- rainflow machine (operand-for-operand from RainflowCounter) -----------

void LedgerStore::rainflow_push(NodeHandle h, double soc) {
  if (rf_has_last_[h] == 0) {
    rf_last_[h] = soc;
    rf_has_last_[h] = 1;
    return;
  }
  const double diff = soc - rf_last_[h];
  if (diff == 0.0) return;  // plateau: direction unchanged
  const double direction = diff > 0.0 ? 1.0 : -1.0;
  if (rf_prev_direction_[h] == 0.0) {
    // Second distinct sample: the very first sample is a turning point.
    rainflow_accept_turning_point(h, rf_last_[h]);
  } else if (direction != rf_prev_direction_[h]) {
    // Direction change: the previous sample was a local extremum.
    rainflow_accept_turning_point(h, rf_last_[h]);
  }
  rf_prev_direction_[h] = direction;
  rf_last_[h] = soc;
}

void LedgerStore::rainflow_accept_turning_point(NodeHandle h, double value) {
  rainflow_arena_.push_back(rainflow_stack_[h], value);
  rainflow_collapse(h);
}

void LedgerStore::rainflow_collapse(NodeHandle h) {
  // ASTM E1049 four-point rule: with the four most recent turning points
  // X1..X4, the inner pair (X2, X3) closes a full cycle when its range is
  // no larger than both neighbours' ranges.
  SpanArena<double>::Ref& ref = rainflow_stack_[h];
  while (ref.size >= 4) {
    const std::uint32_t n = ref.size;
    const double x1 = rainflow_arena_.at(ref, n - 4);
    const double x2 = rainflow_arena_.at(ref, n - 3);
    const double x3 = rainflow_arena_.at(ref, n - 2);
    const double x4 = rainflow_arena_.at(ref, n - 1);
    const double r1 = std::abs(x2 - x1);
    const double r2 = std::abs(x3 - x2);
    const double r3 = std::abs(x4 - x3);
    if (r2 > r1 || r2 > r3) break;
    add_cycle(h, 1.0, r2, 0.5 * (x2 + x3));
    ++rf_full_cycles_[h];
    rainflow_arena_.at(ref, n - 3) = x4;  // drop X2, X3; X4 slides down
    rainflow_arena_.shrink(ref, 2);
  }
}

void LedgerStore::rainflow_seal_residual(NodeHandle h) {
  // The residual half cycles become permanent (weight 0.5, same
  // accumulation formula); then turning-point detection restarts.
  for_each_residual(h, [this, h](double range, double mean, double weight) {
    add_cycle(h, weight, range, mean);
  });
  rainflow_arena_.clear(rainflow_stack_[h]);
  rf_has_last_[h] = 0;
  rf_prev_direction_[h] = 0.0;
  rf_last_[h] = 0.0;
}

// --- held-report slots ------------------------------------------------------

void LedgerStore::held_insert(NodeHandle h, std::uint32_t slot, std::uint16_t seq,
                              std::span<const SocSample> samples) {
  const std::uint32_t count = held_count_[h];
  if (count >= held_slots_ || slot > count) {
    throw std::logic_error{"LedgerStore: held-slot insert out of bounds"};
  }
  // Shift later slots up; the vacated slot's Ref is overwritten wholesale.
  for (std::uint32_t i = count; i > slot; --i) {
    held_seq_[slot_index(h, i)] = held_seq_[slot_index(h, i - 1)];
    held_samples_[slot_index(h, i)] = held_samples_[slot_index(h, i - 1)];
  }
  held_seq_[slot_index(h, slot)] = seq;
  held_samples_[slot_index(h, slot)] = {};
  sample_arena_.assign(held_samples_[slot_index(h, slot)], samples);
  ++held_count_[h];
}

void LedgerStore::held_remove(NodeHandle h, std::uint32_t slot) {
  const std::uint32_t count = held_count_[h];
  if (slot >= count) throw std::logic_error{"LedgerStore: held-slot remove out of bounds"};
  sample_arena_.release(held_samples_[slot_index(h, slot)]);
  for (std::uint32_t i = slot; i + 1 < count; ++i) {
    held_seq_[slot_index(h, i)] = held_seq_[slot_index(h, i + 1)];
    held_samples_[slot_index(h, i)] = held_samples_[slot_index(h, i + 1)];
  }
  held_samples_[slot_index(h, count - 1)] = {};
  --held_count_[h];
}

void LedgerStore::held_clear(NodeHandle h) {
  while (held_count_[h] > 0) held_remove(h, held_count_[h] - 1);
}

// --- checkpoint interchange -------------------------------------------------

DegradationTracker::Snapshot LedgerStore::snapshot(NodeHandle h) const {
  DegradationTracker::Snapshot s;
  const std::span<const double> stack = rainflow_arena_.view(rainflow_stack_[h]);
  s.rainflow.stack.assign(stack.begin(), stack.end());
  s.rainflow.last = rf_last_[h];
  s.rainflow.prev_direction = rf_prev_direction_[h];
  s.rainflow.has_last = rf_has_last_[h] != 0;
  s.rainflow.full_cycles = rf_full_cycles_[h];
  s.closed_cycle_sum = closed_cycle_sum_[h];
  s.last_time = last_time_[h];
  s.last_soc = last_soc_[h];
  s.has_sample = has_sample_[h] != 0;
  s.soc_time_integral = soc_time_integral_[h];
  s.stress_time_integral = stress_time_integral_[h];
  s.stress_integrated_to = stress_integrated_to_[h];
  s.temperature_c = temperature_c_[h];
  s.discontinuities = discontinuities_[h];
  return s;
}

void LedgerStore::restore(NodeHandle h, const DegradationTracker::Snapshot& snapshot) {
  rainflow_arena_.assign(rainflow_stack_[h], snapshot.rainflow.stack);
  rf_last_[h] = snapshot.rainflow.last;
  rf_prev_direction_[h] = snapshot.rainflow.prev_direction;
  rf_has_last_[h] = snapshot.rainflow.has_last ? 1 : 0;
  rf_full_cycles_[h] = snapshot.rainflow.full_cycles;
  closed_cycle_sum_[h] = snapshot.closed_cycle_sum;
  last_time_[h] = snapshot.last_time;
  last_soc_[h] = snapshot.last_soc;
  has_sample_[h] = snapshot.has_sample ? 1 : 0;
  soc_time_integral_[h] = snapshot.soc_time_integral;
  stress_time_integral_[h] = snapshot.stress_time_integral;
  stress_integrated_to_[h] = snapshot.stress_integrated_to;
  temperature_c_[h] = snapshot.temperature_c;
  temp_stress_[h] = model_.temperature_stress(snapshot.temperature_c);
  discontinuities_[h] = snapshot.discontinuities;
  residual_cache_valid_[h] = 0;
}

}  // namespace blam
