// US-915-style channel plan: N uplink channels with pseudo-random hopping
// (LoRaWAN's FHSS requirement in the US band) and downlink channels for the
// two class-A receive windows.
//
// Downlink channels are modeled as indices disjoint from uplink ones
// (US-915 downlink lives in a separate 500 kHz sub-band), so ACKs never
// collide with uplink data at the interference tracker.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "lora/params.hpp"

namespace blam {

class ChannelPlan {
 public:
  /// `uplink_channels` in [1, 64]; `downlink_channels` in [1, 8].
  explicit ChannelPlan(int uplink_channels = 8, int downlink_channels = 8);

  [[nodiscard]] int uplink_channels() const { return uplink_; }
  [[nodiscard]] int downlink_channels() const { return downlink_; }

  /// Pseudo-random uplink hop, as LoRaWAN mandates in the US band.
  [[nodiscard]] int random_uplink_channel(Rng& rng) const;

  /// RX1 downlink channel paired with an uplink channel (uplink mod 8 in
  /// US-915). Returned indices are offset past the uplink range so uplink
  /// and downlink never share an interference-tracker channel.
  [[nodiscard]] int rx1_channel(int uplink_channel) const;

  /// RX2 uses a fixed downlink channel and a fixed robust data rate.
  [[nodiscard]] int rx2_channel() const { return uplink_; }
  [[nodiscard]] SpreadingFactor rx2_spreading_factor() const { return SpreadingFactor::kSF12; }
  [[nodiscard]] double rx2_bandwidth_hz() const { return 500e3; }

  [[nodiscard]] bool is_downlink(int channel) const { return channel >= uplink_; }

 private:
  int uplink_;
  int downlink_;
};

}  // namespace blam
