// Link budget: positions, log-distance path loss with per-link shadowing,
// received power, and distance-based spreading-factor assignment — the
// propagation side of the NS-3 lorawan module re-implemented.
#pragma once

#include <cmath>
#include <optional>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "lora/params.hpp"

namespace blam {

struct Position {
  double x_m{0.0};
  double y_m{0.0};

  [[nodiscard]] double distance_to(const Position& other) const {
    const double dx = x_m - other.x_m;
    const double dy = y_m - other.y_m;
    return std::sqrt(dx * dx + dy * dy);
  }
};

/// Log-distance path loss:
///   PL(d) = reference_loss_db + 10 * exponent * log10(d / reference_m)
/// Defaults match the NS-3 lorawan smart-city example (Magrin et al.).
struct PathLossModel {
  double reference_m{1.0};
  double reference_loss_db{7.7};
  double exponent{3.76};
  /// Log-normal shadowing standard deviation (dB); 0 disables shadowing.
  double shadowing_sigma_db{0.0};

  /// Deterministic (median) path loss in dB at distance `d_m` (>= 1 m
  /// enforced by clamping, matching NS-3).
  [[nodiscard]] double path_loss_db(double d_m) const;
};

/// One device<->gateway link with a frozen shadowing realization. Shadowing
/// is drawn once per link (slow fading), as in the NS-3 scenario the paper
/// uses, so a node's SF assignment is stable.
class Link {
 public:
  Link(Position device, Position gateway, const PathLossModel& model, Rng& rng);

  [[nodiscard]] double distance_m() const { return distance_m_; }
  [[nodiscard]] double total_loss_db() const { return loss_db_; }

  /// Received power at the other end for a given transmit power.
  [[nodiscard]] double rx_power_dbm(double tx_power_dbm) const { return tx_power_dbm - loss_db_; }

  /// Smallest SF whose *gateway* sensitivity (plus margin) the uplink
  /// closes at `tx_power_dbm`; nullopt if even SF12 cannot close the link.
  [[nodiscard]] std::optional<SpreadingFactor> min_spreading_factor(double tx_power_dbm,
                                                                    double margin_db = 0.0) const;

 private:
  double distance_m_;
  double loss_db_;
};

}  // namespace blam
