// Memoized time-on-air / transmission-energy lookups.
//
// The SX1276 airtime formula (Eq. 7) is pure in its TxParams, and a running
// simulation only ever evaluates it for a handful of distinct parameter sets:
// a node cycles between "payload with SoC report" and "payload without", a
// gateway sees one set per (node SF, frame size), an ACK planner one per
// (SF, ack length). Profiling shows the repeated ceil/log math on the hot
// path; this cache collapses each distinct TxParams to one computation and
// replays the stored result, so every returned value is bit-identical to
// calling time_on_air()/tx_energy() directly.
//
// Storage is a small flat vector scanned linearly with a last-hit fast path —
// the working set is single digits, so this beats any hash map and never
// allocates after the first few distinct keys appear.
#pragma once

#include <cstddef>
#include <vector>

#include "lora/airtime.hpp"
#include "lora/params.hpp"

namespace blam {

class TxTimingCache {
 public:
  /// Time on air of `params`; computed once per distinct parameter set.
  [[nodiscard]] Time time_on_air(const TxParams& params) {
    return find_or_insert(params).toa;
  }

  /// Transmission energy of `params` under `radio`. The cache assumes one
  /// radio model per instance (true for every user: a node/gateway's radio
  /// is fixed at construction); the energy memoized on first use is exactly
  /// tx_energy(params, radio).
  [[nodiscard]] Energy tx_energy(const TxParams& params, const RadioEnergyModel& radio) {
    Entry& e = find_or_insert(params);
    if (!e.has_energy) {
      e.energy = blam::tx_energy(e.params, radio);
      e.has_energy = true;
    }
    return e.energy;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    TxParams params;
    Time toa;
    Energy energy{};
    bool has_energy{false};
  };

  static bool same_key(const TxParams& a, const TxParams& b) {
    return a.sf == b.sf && a.payload_bytes == b.payload_bytes && a.cr == b.cr &&
           a.low_data_rate_optimize == b.low_data_rate_optimize &&
           a.tx_power_dbm == b.tx_power_dbm && a.bandwidth_hz == b.bandwidth_hz &&
           a.preamble_symbols == b.preamble_symbols && a.explicit_header == b.explicit_header;
  }

  Entry& find_or_insert(const TxParams& params) {
    if (last_ < entries_.size() && same_key(entries_[last_].params, params)) {
      return entries_[last_];
    }
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (same_key(entries_[i].params, params)) {
        last_ = i;
        return entries_[i];
      }
    }
    Entry e;
    e.params = params;
    e.toa = blam::time_on_air(params);
    entries_.push_back(e);
    last_ = entries_.size() - 1;
    return entries_.back();
  }

  std::vector<Entry> entries_;
  std::size_t last_{0};
};

}  // namespace blam
