// Co-channel interference and capture model for LoRa receptions.
//
// Re-implements the NS-3 lorawan `LoraInterferenceHelper` (Magrin et al.,
// based on Goursaud & Gorce): each reception is compared against the
// cumulative energy of overlapping transmissions, grouped by the interferer's
// spreading factor, and survives only if its signal-to-interference ratio
// clears the per-(signal SF, interferer SF) isolation threshold. The diagonal
// (co-SF) requires a +6 dB capture margin; imperfect SF orthogonality gives
// the negative off-diagonal entries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "lora/params.hpp"

namespace blam {

/// One packet as seen on the air at the receiver.
struct AirPacket {
  std::uint64_t id{0};
  Time start{};
  Time end{};
  double rx_power_dbm{0.0};
  SpreadingFactor sf{SpreadingFactor::kSF7};
  int channel{0};
};

/// Isolation threshold (dB): minimum SIR for a `signal` SF packet to survive
/// interference from a `interferer` SF packet.
[[nodiscard]] double sir_isolation_db(SpreadingFactor signal, SpreadingFactor interferer);

class InterferenceTracker {
 public:
  /// Registers a packet whose reception just started. `packet.end` must
  /// already be known (receptions have deterministic duration).
  void add(const AirPacket& packet);

  /// Evaluates whether `packet` (previously added) survives all interference
  /// that overlapped it. Call at `packet.end`. Does not remove the packet:
  /// it may still interfere with receptions in progress.
  [[nodiscard]] bool survives(const AirPacket& packet) const;

  /// Drops tracked packets that can no longer overlap receptions starting at
  /// or after `now` minus the maximum packet airtime. Call opportunistically.
  void prune(Time now);

  [[nodiscard]] std::size_t tracked() const { return packets_.size() - head_; }

  /// Live packets in arrival order, for engine checkpoints.
  [[nodiscard]] std::span<const AirPacket> live() const {
    return {packets_.data() + head_, packets_.size() - head_};
  }

  /// Checkpoint restore: re-seeds the tracker with the checkpointed live
  /// set, in arrival order (head_ resets to 0; survives() folds energy over
  /// live entries only, so the compaction offset is invisible to results).
  void restore_live(std::span<const AirPacket> packets) {
    packets_.assign(packets.begin(), packets.end());
    head_ = 0;
  }

 private:
  // Packets ordered by start time (arrival order); live entries are
  // [head_, size()). prune() advances head_ and compacts occasionally so
  // the vector keeps its capacity — steady-state add() never allocates
  // (a deque would churn its backing blocks as receptions drain).
  std::vector<AirPacket> packets_;
  std::size_t head_{0};
};

}  // namespace blam
