#include "lora/interference.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace blam {

namespace {

// Goursaud & Gorce SIR matrix as used by NS-3 lorawan (dB).
// Rows: signal SF7..SF12; columns: interferer SF7..SF12.
constexpr std::array<std::array<double, 6>, 6> kIsolationDb{{
    {6.0, -16.0, -18.0, -19.0, -19.0, -20.0},
    {-24.0, 6.0, -20.0, -22.0, -22.0, -22.0},
    {-27.0, -27.0, 6.0, -23.0, -25.0, -25.0},
    {-30.0, -30.0, -30.0, 6.0, -26.0, -28.0},
    {-33.0, -33.0, -33.0, -33.0, 6.0, -29.0},
    {-36.0, -36.0, -36.0, -36.0, -36.0, 6.0},
}};

// Longest packet we model: SF12, 125 kHz, max LoRaWAN payload. Used only as
// a pruning horizon, so a generous constant is fine.
const Time kMaxAirtime = Time::from_seconds(5.0);

}  // namespace

double sir_isolation_db(SpreadingFactor signal, SpreadingFactor interferer) {
  return kIsolationDb[sf_index(signal)][sf_index(interferer)];
}

void InterferenceTracker::add(const AirPacket& packet) { packets_.push_back(packet); }

bool InterferenceTracker::survives(const AirPacket& packet) const {
  // Cumulative overlapping interference energy per interferer SF (joules,
  // scaled arbitrarily: built from mW powers, consistent with the signal).
  std::array<double, 6> interference_j{};
  bool any = false;
  for (auto it = packets_.begin() + static_cast<std::ptrdiff_t>(head_); it != packets_.end();
       ++it) {
    const AirPacket& other = *it;
    if (other.id == packet.id || other.channel != packet.channel) continue;
    const Time overlap_start = std::max(other.start, packet.start);
    const Time overlap_end = std::min(other.end, packet.end);
    if (overlap_end <= overlap_start) continue;
    const double overlap_s = (overlap_end - overlap_start).seconds();
    interference_j[sf_index(other.sf)] += dbm_to_watts(other.rx_power_dbm) * overlap_s;
    any = true;
  }
  if (!any) return true;

  const double signal_j =
      dbm_to_watts(packet.rx_power_dbm) * (packet.end - packet.start).seconds();
  for (std::size_t j = 0; j < interference_j.size(); ++j) {
    if (interference_j[j] <= 0.0) continue;
    const double sir_db = 10.0 * std::log10(signal_j / interference_j[j]);
    if (sir_db < kIsolationDb[sf_index(packet.sf)][j]) return false;
  }
  return true;
}

void InterferenceTracker::prune(Time now) {
  // A packet can only overlap future receptions if it is still on air; a
  // reception in progress started at most kMaxAirtime ago, so anything that
  // ended more than kMaxAirtime before `now` is invisible to every live or
  // future reception.
  const Time horizon = now - kMaxAirtime;
  while (head_ < packets_.size() && packets_[head_].end < horizon &&
         packets_[head_].start < horizon) {
    ++head_;
  }
  // Compact once the dead prefix dominates: erase shifts the live tail
  // within the existing capacity, so no reallocation happens.
  if (head_ >= 64 && head_ * 2 >= packets_.size()) {
    packets_.erase(packets_.begin(), packets_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

}  // namespace blam
