// Time-on-air (paper Eq. 7) and transmission energy (paper Eq. 6) for a LoRa
// packet, following the Semtech SX1276 datasheet formulas the paper cites.
#pragma once

#include "common/units.hpp"
#include "lora/params.hpp"

namespace blam {

/// Duration of one LoRa symbol: 2^SF / BW.
[[nodiscard]] Time symbol_time(SpreadingFactor sf, double bandwidth_hz);

/// Total symbol count of a packet, paper Eq. 7:
///   L = preamble + 4.25 + 8 + max(ceil((8*payload - 4*SF + 28 + 16*CRC
///        - 20*IH) / (4*(SF - 2*DE))) * (CR+4), 0)
/// expressed with the paper's compact form (explicit header + uplink CRC).
/// Returns a fractional symbol count (preamble contributes 4.25).
[[nodiscard]] double packet_symbols(const TxParams& params);

/// Time on air of the whole packet.
[[nodiscard]] Time time_on_air(const TxParams& params);

/// Electrical energy consumed by one transmission, paper Eq. 6:
///   E_tx = P_tx * L_symbols * 2^SF / BW
/// where P_tx is the radio supply power at the configured output power.
[[nodiscard]] Energy tx_energy(const TxParams& params, const RadioEnergyModel& radio);

/// Energy consumed keeping the receiver open for `duration`.
[[nodiscard]] Energy rx_energy(Time duration, const RadioEnergyModel& radio);

}  // namespace blam
