#include "lora/channel_plan.hpp"

#include <stdexcept>

namespace blam {

ChannelPlan::ChannelPlan(int uplink_channels, int downlink_channels)
    : uplink_{uplink_channels}, downlink_{downlink_channels} {
  if (uplink_channels < 1 || uplink_channels > 64) {
    throw std::invalid_argument{"ChannelPlan: uplink channels must be in [1,64]"};
  }
  if (downlink_channels < 1 || downlink_channels > 8) {
    throw std::invalid_argument{"ChannelPlan: downlink channels must be in [1,8]"};
  }
}

int ChannelPlan::random_uplink_channel(Rng& rng) const {
  return static_cast<int>(rng.uniform_int(0, uplink_ - 1));
}

int ChannelPlan::rx1_channel(int uplink_channel) const {
  if (uplink_channel < 0 || uplink_channel >= uplink_) {
    throw std::invalid_argument{"ChannelPlan: uplink channel out of range"};
  }
  return uplink_ + (uplink_channel % downlink_);
}

}  // namespace blam
