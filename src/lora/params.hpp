// LoRa physical-layer parameters and the SX1276-class radio energy model.
//
// Values mirror the Semtech SX1276 datasheet and the NS-3 `lorawan` module
// (Magrin et al.) that the paper builds its evaluation on: per-SF receiver
// sensitivities at 125 kHz, supply currents per radio state, and the US-915
// regional defaults.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace blam {

/// LoRa spreading factor; SF7..SF12 per the LoRa specification.
enum class SpreadingFactor : std::uint8_t { kSF7 = 7, kSF8 = 8, kSF9 = 9, kSF10 = 10, kSF11 = 11, kSF12 = 12 };

[[nodiscard]] constexpr int sf_value(SpreadingFactor sf) { return static_cast<int>(sf); }
[[nodiscard]] constexpr std::size_t sf_index(SpreadingFactor sf) {
  return static_cast<std::size_t>(sf_value(sf) - 7);
}
[[nodiscard]] SpreadingFactor sf_from_value(int value);
[[nodiscard]] std::string to_string(SpreadingFactor sf);

inline constexpr std::array<SpreadingFactor, 6> kAllSpreadingFactors{
    SpreadingFactor::kSF7,  SpreadingFactor::kSF8,  SpreadingFactor::kSF9,
    SpreadingFactor::kSF10, SpreadingFactor::kSF11, SpreadingFactor::kSF12};

/// Forward-error-correction rate 4/(4+n) for n in 1..4.
enum class CodingRate : std::uint8_t { kCR4_5 = 1, kCR4_6 = 2, kCR4_7 = 3, kCR4_8 = 4 };

/// The 4/(4+n) ratio as a double (e.g. 0.8 for 4/5).
[[nodiscard]] constexpr double coding_rate_ratio(CodingRate cr) {
  return 4.0 / (4.0 + static_cast<double>(static_cast<int>(cr)));
}

/// Complete parameter set for one transmission.
struct TxParams {
  SpreadingFactor sf{SpreadingFactor::kSF10};
  // blam-ckpt: skip -- scenario constant; ADR only ever changes sf and tx_power_dbm, which are serialized
  double bandwidth_hz{125e3};
  // blam-ckpt: skip -- scenario constant; ADR only ever changes sf and tx_power_dbm, which are serialized
  CodingRate cr{CodingRate::kCR4_5};
  // blam-ckpt: skip -- scenario constant; ADR only ever changes sf and tx_power_dbm, which are serialized
  int preamble_symbols{8};
  // blam-ckpt: skip -- scenario constant (ScenarioConfig::payload_bytes), re-applied at construction
  int payload_bytes{10};
  double tx_power_dbm{14.0};
  /// Low-data-rate optimization; mandated for SF11/SF12 at 125 kHz.
  // blam-ckpt: skip -- recomputed by with_auto_ldro() whenever sf changes (construction and ADR apply)
  bool low_data_rate_optimize{false};
  /// Explicit header (LoRaWAN always uses it); adds CRC/header symbols.
  // blam-ckpt: skip -- LoRaWAN constant, never mutated after construction
  bool explicit_header{true};

  /// Returns a copy with low_data_rate_optimize set per the LoRa spec rule
  /// (symbol time >= 16 ms, i.e. SF11/SF12 at 125 kHz).
  [[nodiscard]] TxParams with_auto_ldro() const;
};

/// Gateway receiver sensitivity (dBm) for a given SF at 125 kHz bandwidth,
/// per the NS-3 lorawan module / SX1301 datasheet.
[[nodiscard]] double gateway_sensitivity_dbm(SpreadingFactor sf);

/// End-device receiver sensitivity (dBm), a few dB worse than the gateway.
[[nodiscard]] double device_sensitivity_dbm(SpreadingFactor sf);

/// SX1276-class radio supply-power model at a 3.3 V rail.
struct RadioEnergyModel {
  double supply_volts{3.3};
  /// Receive-state supply current (amperes), LnaBoost on.
  double rx_current_a{0.0112};
  /// Sleep-state supply current.
  double sleep_current_a{0.2e-6};
  /// Idle/standby current.
  double standby_current_a{1.6e-3};

  /// Supply power while transmitting at `tx_power_dbm` (PA_BOOST chain,
  /// piecewise-linear interpolation of datasheet points).
  [[nodiscard]] Power tx_power(double tx_power_dbm) const;
  [[nodiscard]] Power rx_power() const { return Power::from_watts(rx_current_a * supply_volts); }
  [[nodiscard]] Power sleep_power() const {
    return Power::from_watts(sleep_current_a * supply_volts);
  }
  [[nodiscard]] Power standby_power() const {
    return Power::from_watts(standby_current_a * supply_volts);
  }
};

/// LoRaWAN class-A timing constants.
struct ClassATimings {
  Time rx1_delay{Time::from_seconds(1.0)};
  Time rx2_delay{Time::from_seconds(2.0)};
  /// Receive-window open duration when no downlink preamble is detected.
  Time rx_window_duration{Time::from_ms(60)};
  /// Maximum transmissions of a confirmed uplink (first + retransmissions).
  int max_transmissions{8};
};

}  // namespace blam
