#include "lora/link.hpp"

#include <algorithm>

namespace blam {

double PathLossModel::path_loss_db(double d_m) const {
  const double d = std::max(d_m, reference_m);
  return reference_loss_db + 10.0 * exponent * std::log10(d / reference_m);
}

Link::Link(Position device, Position gateway, const PathLossModel& model, Rng& rng)
    : distance_m_{device.distance_to(gateway)} {
  loss_db_ = model.path_loss_db(distance_m_);
  if (model.shadowing_sigma_db > 0.0) {
    loss_db_ += rng.normal(0.0, model.shadowing_sigma_db);
  }
}

std::optional<SpreadingFactor> Link::min_spreading_factor(double tx_power_dbm,
                                                          double margin_db) const {
  const double rx_dbm = rx_power_dbm(tx_power_dbm);
  for (SpreadingFactor sf : kAllSpreadingFactors) {
    if (rx_dbm >= gateway_sensitivity_dbm(sf) + margin_db) return sf;
  }
  return std::nullopt;
}

}  // namespace blam
