#include "lora/airtime.hpp"

#include <cmath>
#include <stdexcept>

namespace blam {

Time symbol_time(SpreadingFactor sf, double bandwidth_hz) {
  if (bandwidth_hz <= 0.0) throw std::invalid_argument{"symbol_time: bandwidth must be positive"};
  return Time::from_seconds(static_cast<double>(1 << sf_value(sf)) / bandwidth_hz);
}

double packet_symbols(const TxParams& params) {
  if (params.payload_bytes < 0) throw std::invalid_argument{"packet_symbols: negative payload"};
  if (params.preamble_symbols < 0) {
    throw std::invalid_argument{"packet_symbols: negative preamble"};
  }
  const int sf = sf_value(params.sf);
  const int de = params.low_data_rate_optimize ? 1 : 0;
  const int ih = params.explicit_header ? 0 : 1;
  const int crc = 1;  // uplink payload CRC always on
  // SX1276 datasheet payload-symbol formula. The paper's Eq. 7 is this
  // expression with IH=0, CRC=1 folded into the "+24" constant.
  const double numerator = 8.0 * params.payload_bytes - 4.0 * sf + 28.0 + 16.0 * crc - 20.0 * ih;
  const double denominator = 4.0 * (sf - 2 * de);
  const double coded_groups = std::max(std::ceil(numerator / denominator), 0.0);
  const double payload_symbols = 8.0 + coded_groups * (static_cast<double>(static_cast<int>(params.cr)) + 4.0);
  return static_cast<double>(params.preamble_symbols) + 4.25 + payload_symbols;
}

Time time_on_air(const TxParams& params) {
  const double symbols = packet_symbols(params);
  const double tsym_s = static_cast<double>(1 << sf_value(params.sf)) / params.bandwidth_hz;
  return Time::from_seconds(symbols * tsym_s);
}

Energy tx_energy(const TxParams& params, const RadioEnergyModel& radio) {
  return radio.tx_power(params.tx_power_dbm) * time_on_air(params);
}

Energy rx_energy(Time duration, const RadioEnergyModel& radio) {
  if (duration < Time::zero()) throw std::invalid_argument{"rx_energy: negative duration"};
  return radio.rx_power() * duration;
}

}  // namespace blam
