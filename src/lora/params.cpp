#include "lora/params.hpp"

#include <algorithm>
#include <stdexcept>

namespace blam {

SpreadingFactor sf_from_value(int value) {
  if (value < 7 || value > 12) {
    throw std::invalid_argument{"spreading factor out of range [7,12]: " + std::to_string(value)};
  }
  return static_cast<SpreadingFactor>(value);
}

std::string to_string(SpreadingFactor sf) { return "SF" + std::to_string(sf_value(sf)); }

TxParams TxParams::with_auto_ldro() const {
  TxParams p = *this;
  // LDRO is required when the symbol duration reaches 16 ms.
  const double symbol_s = static_cast<double>(1 << sf_value(p.sf)) / p.bandwidth_hz;
  p.low_data_rate_optimize = symbol_s >= 16e-3;
  return p;
}

double gateway_sensitivity_dbm(SpreadingFactor sf) {
  // NS-3 lorawan GatewayLoraPhy::sensitivity, SF7..SF12 at 125 kHz.
  static constexpr std::array<double, 6> kSensitivity{-130.0, -132.5, -135.0,
                                                      -137.5, -140.0, -142.5};
  return kSensitivity[sf_index(sf)];
}

double device_sensitivity_dbm(SpreadingFactor sf) {
  // NS-3 lorawan EndDeviceLoraPhy::sensitivity, SF7..SF12 at 125 kHz.
  static constexpr std::array<double, 6> kSensitivity{-124.0, -127.0, -130.0,
                                                      -133.0, -135.0, -137.0};
  return kSensitivity[sf_index(sf)];
}

Power RadioEnergyModel::tx_power(double tx_power_dbm) const {
  // SX1276 datasheet supply currents (PA_BOOST): interpolate between the
  // published operating points and clamp outside.
  struct Point {
    double dbm;
    double amps;
  };
  static constexpr std::array<Point, 4> kPoints{{{7.0, 0.020}, {13.0, 0.029}, {17.0, 0.090}, {20.0, 0.120}}};

  double amps;
  if (tx_power_dbm <= kPoints.front().dbm) {
    amps = kPoints.front().amps;
  } else if (tx_power_dbm >= kPoints.back().dbm) {
    amps = kPoints.back().amps;
  } else {
    amps = kPoints.back().amps;
    for (std::size_t i = 1; i < kPoints.size(); ++i) {
      if (tx_power_dbm <= kPoints[i].dbm) {
        const auto& a = kPoints[i - 1];
        const auto& b = kPoints[i];
        const double t = (tx_power_dbm - a.dbm) / (b.dbm - a.dbm);
        amps = a.amps + t * (b.amps - a.amps);
        break;
      }
    }
  }
  return Power::from_watts(amps * supply_volts);
}

}  // namespace blam
