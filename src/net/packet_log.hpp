// Optional per-packet event log (pcap-of-the-MAC): every lifecycle event of
// every packet with timestamps, exportable as CSV. Disabled by default —
// a 15-year 500-node run generates hundreds of millions of events — and
// intended for debugging, protocol traces and short illustrative runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace blam {

enum class PacketEventKind : std::uint8_t {
  kGenerated,
  kPolicyDrop,
  kBrownout,
  kDutyDefer,
  kTxStart,
  kDelivered,
  kExhausted,
};

[[nodiscard]] const char* to_string(PacketEventKind kind);

struct PacketEvent {
  Time at{};
  std::uint32_t node{0};
  std::uint32_t seq{0};
  /// Transmission attempt (0-based) for TX events; -1 otherwise.
  int attempt{-1};
  /// Selected forecast window; -1 when not applicable.
  int window{-1};
  PacketEventKind kind{PacketEventKind::kGenerated};
};

class PacketLog {
 public:
  void record(const PacketEvent& event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<PacketEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Number of events of one kind.
  [[nodiscard]] std::size_t count(PacketEventKind kind) const;

  /// All events of one packet, in order.
  [[nodiscard]] std::vector<PacketEvent> history(std::uint32_t node, std::uint32_t seq) const;

  /// CSV export: time_s, node, seq, attempt, window, kind.
  void write_csv(const std::string& path) const;

 private:
  std::vector<PacketEvent> events_;
};

}  // namespace blam
