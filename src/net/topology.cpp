#include "net/topology.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace blam {

std::vector<Position> random_disk(int n, double radius_m, Position center, Rng& rng) {
  if (n < 0) throw std::invalid_argument{"random_disk: negative count"};
  if (radius_m <= 0.0) throw std::invalid_argument{"random_disk: radius must be positive"};
  std::vector<Position> positions;
  positions.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Uniform over the disk: radius ~ sqrt(U) * R.
    const double r = radius_m * std::sqrt(rng.uniform());
    const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
    positions.push_back(Position{center.x_m + r * std::cos(angle), center.y_m + r * std::sin(angle)});
  }
  return positions;
}

std::vector<Position> grid(int n, double pitch_m, Position center) {
  if (n < 0) throw std::invalid_argument{"grid: negative count"};
  if (pitch_m <= 0.0) throw std::invalid_argument{"grid: pitch must be positive"};
  const int cols = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(std::max(n, 1)))));
  const int rows = (n + cols - 1) / std::max(cols, 1);
  const double x0 = center.x_m - pitch_m * static_cast<double>(cols - 1) / 2.0;
  const double y0 = center.y_m - pitch_m * static_cast<double>(rows - 1) / 2.0;
  std::vector<Position> positions;
  positions.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int row = i / cols;
    const int col = i % cols;
    positions.push_back(
        Position{x0 + pitch_m * static_cast<double>(col), y0 + pitch_m * static_cast<double>(row)});
  }
  return positions;
}

std::vector<Position> ring(int n, double radius_m, Position center) {
  if (n < 0) throw std::invalid_argument{"ring: negative count"};
  if (radius_m <= 0.0) throw std::invalid_argument{"ring: radius must be positive"};
  std::vector<Position> positions;
  positions.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(i) / std::max(n, 1);
    positions.push_back(Position{center.x_m + radius_m * std::cos(angle),
                                 center.y_m + radius_m * std::sin(angle)});
  }
  return positions;
}

}  // namespace blam
