#include "net/gateway.hpp"

#include <stdexcept>

#include "fault/fault_plan.hpp"
#include "lora/airtime.hpp"
#include "mac/adr.hpp"
#include "net/node.hpp"
#include "sim/checkpoint.hpp"

namespace blam {

Gateway::Gateway(int id, Position position, Simulator& sim, NetworkServer& server,
                 Metrics& metrics, const ChannelPlan& plan, const Config& config)
    : id_{id},
      fault_id_{id},
      position_{position},
      sim_{sim},
      server_{server},
      metrics_{metrics},
      plan_{plan},
      config_{config},
      ack_planner_{config.timings, plan, config.downlink_tx_dbm, config.rx1_bandwidth_hz} {
  TxParams rx1;
  rx1.sf = SpreadingFactor::kSF12;
  rx1.bandwidth_hz = config_.rx1_bandwidth_hz;
  rx1.payload_bytes = 1;  // degradation byte
  rx1.tx_power_dbm = config_.downlink_tx_dbm;

  TxParams rx2 = rx1;
  rx2.sf = plan_.rx2_spreading_factor();
  rx2.bandwidth_hz = plan_.rx2_bandwidth_hz();

  max_ack_end_delay_ = std::max(config_.timings.rx1_delay + time_on_air(rx1.with_auto_ldro()),
                                config_.timings.rx2_delay + time_on_air(rx2.with_auto_ldro()));
}

void Gateway::on_uplink(Node& node, const UplinkFrame& frame, const TxParams& params, int channel,
                        double rx_power_dbm) {
  const Time now = sim_.now();
  GatewayMetrics& gm = metrics_.gateway();
  ++gm.arrivals;

  // Audibility floor: below it the packet neither decodes (it is under every
  // SF's sensitivity — validate() enforces floor <= SF12 sensitivity) nor
  // enters the interference tracker. This bounds the collision domain so the
  // shard planner can split deployments exactly; the default floor is
  // unreachable and leaves legacy results bit-identical. Checked before the
  // outage: a packet the radio could never hear is classified the same way
  // whether or not the backhaul is up, which is what lets the sharded
  // engine compensate for foreign-shard copies with a pure counter bump.
  if (rx_power_dbm < config_.interference_floor_dbm) {
    ++gm.lost_under_sensitivity;
    return;
  }

  // Fault-injected outage: the gateway radio is dead, so nothing is
  // received here and nothing needs to enter the interference tracker (a
  // dead receiver has no receptions to jam).
  if (faults_ != nullptr && faults_->gateway_out(now)) {
    ++gm.lost_outage;
    return;
  }

  AirPacket packet;
  packet.id = next_packet_id_++;
  packet.start = now;
  packet.end = now + timing_.time_on_air(params);
  packet.rx_power_dbm = rx_power_dbm;
  packet.sf = params.sf;
  packet.channel = channel;

  // The packet radiates regardless of whether the gateway can lock onto it.
  interference_.add(packet);
  interference_.prune(now);
  ack_planner_.prune(now - Time::from_seconds(10.0));

  if (rx_power_dbm < gateway_sensitivity_dbm(params.sf)) {
    ++gm.lost_under_sensitivity;
    return;
  }
  if (ack_planner_.overlaps_tx(now, packet.end)) {
    // Half-duplex: the gateway transmits (or will transmit) during this
    // reception; it cannot lock.
    ++gm.lost_half_duplex;
    return;
  }
  if (busy_paths_ >= config_.demod_paths) {
    ++gm.lost_no_demod_path;
    return;
  }

  ++busy_paths_;
  // The frame (with its SoC-report vector) parks in a pooled slot and the
  // callback captures only {this, slot}: it fits the event queue's inline
  // capture budget, and the slot's vector capacity is reused across packets.
  const std::uint32_t slot = acquire_rx_slot();
  PendingReception& rx = rx_pool_[slot];
  rx.node = &node;
  rx.frame = frame;
  rx.packet = packet;
  rx.finish_event = sim_.schedule_at(packet.end, [this, slot] { finish_reception(slot); });
}

std::uint32_t Gateway::acquire_rx_slot() {
  if (!rx_free_.empty()) {
    const std::uint32_t slot = rx_free_.back();
    rx_free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(rx_pool_.size());
  rx_pool_.emplace_back();
  return slot;
}

std::uint32_t Gateway::acquire_ack_slot() {
  if (!ack_free_.empty()) {
    const std::uint32_t slot = ack_free_.back();
    ack_free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(ack_pool_.size());
  ack_pool_.emplace_back();
  return slot;
}

void Gateway::finish_reception(std::uint32_t rx_slot) {
  PendingReception& rx = rx_pool_[rx_slot];
  Node& node = *rx.node;
  const AirPacket packet = rx.packet;
  GatewayMetrics& gm = metrics_.gateway();
  --busy_paths_;

  // An ACK booked after this reception started would have destroyed it.
  if (ack_planner_.overlaps_tx(packet.start, packet.end)) {
    ++gm.lost_half_duplex;
    rx_free_.push_back(rx_slot);
    return;
  }
  if (!interference_.survives(packet)) {
    ++gm.lost_interference;
    rx_free_.push_back(rx_slot);
    return;
  }
  ++gm.received;

  // The server aggregates copies of this frame across gateways and picks
  // the downlink gateway (strongest copy).
  server_.on_gateway_receive(*this, node, rx.frame, packet);
  rx_free_.push_back(rx_slot);
}

void Gateway::inject_interference(AirPacket packet) {
  packet.id = next_packet_id_++;
  interference_.add(packet);
  interference_.prune(sim_.now());
}

void Gateway::send_ack(Node& node, const UplinkFrame& frame, Time uplink_end, SpreadingFactor sf,
                       int channel, std::optional<double> theta_update) {
  GatewayMetrics& gm = metrics_.gateway();

  // An outage can begin between the uplink's reception and the server's
  // downlink decision; the gateway then never transmits the ACK.
  if (faults_ != nullptr && faults_->gateway_out(sim_.now())) {
    ++gm.acks_lost_outage;
    return;
  }

  AckFrame ack;
  ack.node_id = frame.node_id;
  ack.seq = frame.seq;
  ack.has_degradation = server_.dissemination_ready();
  ack.normalized_degradation = server_.w_for(frame.node_id);
  ack.adr = server_.adr_advice(frame.node_id, node.radio_params());
  ack.theta = theta_update;

  const auto plan = ack_planner_.plan(uplink_end, sf, channel, ack.total_bytes());
  if (!plan) {
    ++gm.acks_unschedulable;
    return;  // the device will retransmit
  }

  // Downlink link budget: does the ACK reach the device?
  const double rx_at_device = config_.downlink_tx_dbm - node.link_loss_db(id_);
  if (rx_at_device < device_sensitivity_dbm(plan->sf)) {
    ++gm.acks_undecodable;
    return;
  }

  // Gilbert-Elliott downlink burst loss: the gateway transmits (the TX
  // chain stays booked, so the half-duplex ledger is unchanged) but the
  // device fails to decode.
  if (faults_ != nullptr && faults_->downlink_lost(fault_id_, plan->tx_end)) {
    ++gm.acks_lost_channel;
    return;
  }

  ++gm.acks_sent;
  if (plan->rx2) ++gm.acks_rx2;
  const std::uint32_t slot = acquire_ack_slot();
  PendingAck& pending = ack_pool_[slot];
  pending.node = &node;
  pending.ack = ack;
  pending.end = plan->tx_end;
  pending.deliver_event = sim_.schedule_at(plan->tx_end, [this, slot] { deliver_ack(slot); });
}

namespace {

void write_air_packet(StateWriter& w, const AirPacket& packet) {
  w.put_u64(packet.id);
  write_time(w, packet.start);
  write_time(w, packet.end);
  w.put_double(packet.rx_power_dbm);
  w.put_u64(static_cast<std::uint64_t>(packet.sf));
  w.put_i64(packet.channel);
}

AirPacket read_air_packet(StateReader& r) {
  AirPacket packet;
  packet.id = r.get_u64();
  packet.start = read_time(r);
  packet.end = read_time(r);
  packet.rx_power_dbm = r.get_double();
  packet.sf = static_cast<SpreadingFactor>(r.get_u64());
  packet.channel = static_cast<int>(r.get_i64());
  return packet;
}

void write_ack_frame(StateWriter& w, const AckFrame& ack) {
  w.put_u64(ack.node_id);
  w.put_u64(ack.seq);
  w.put_u64(ack.has_degradation ? 1 : 0);
  w.put_double(ack.normalized_degradation);
  w.put_u64(ack.adr.has_value() ? 1 : 0);
  if (ack.adr.has_value()) {
    w.put_u64(static_cast<std::uint64_t>(ack.adr->sf));
    w.put_double(ack.adr->tx_power_dbm);
  }
  w.put_u64(ack.theta.has_value() ? 1 : 0);
  if (ack.theta.has_value()) w.put_double(*ack.theta);
}

AckFrame read_ack_frame(StateReader& r) {
  AckFrame ack;
  ack.node_id = static_cast<std::uint32_t>(r.get_u64());
  ack.seq = static_cast<std::uint32_t>(r.get_u64());
  ack.has_degradation = r.get_u64() != 0;
  ack.normalized_degradation = r.get_double();
  if (r.get_u64() != 0) {
    AdrCommand adr;
    adr.sf = static_cast<SpreadingFactor>(r.get_u64());
    adr.tx_power_dbm = r.get_double();
    ack.adr = adr;
  }
  if (r.get_u64() != 0) ack.theta = r.get_double();
  return ack;
}

}  // namespace

void Gateway::checkpoint_state(StateWriter& w) const {
  w.begin_section("gateway");
  w.put_i64(id_);
  w.put_i64(fault_id_);
  w.put_i64(busy_paths_);
  w.put_u64(next_packet_id_);

  const auto interference = interference_.live();
  w.put_u64(interference.size());
  for (const AirPacket& packet : interference) write_air_packet(w, packet);

  const auto reservations = ack_planner_.live();
  w.put_u64(reservations.size());
  for (const AckPlanner::Interval& interval : reservations) {
    write_time(w, interval.start);
    write_time(w, interval.end);
  }

  // In-flight receptions/ACKs: a pool slot is live iff its event handle
  // still resolves (fired or recycled slots have stale handles).
  std::uint64_t live_rx = 0;
  for (const PendingReception& rx : rx_pool_) {
    if (sim_.lookup(rx.finish_event).has_value()) ++live_rx;
  }
  w.put_u64(live_rx);
  for (const PendingReception& rx : rx_pool_) {
    const auto event = sim_.lookup(rx.finish_event);
    if (!event.has_value()) continue;
    w.put_u64(rx.node->id());
    write_uplink_frame(w, rx.frame);
    write_air_packet(w, rx.packet);
    write_time(w, event->time);
    w.put_u64(event->seq);
  }

  std::uint64_t live_acks = 0;
  for (const PendingAck& pending : ack_pool_) {
    if (sim_.lookup(pending.deliver_event).has_value()) ++live_acks;
  }
  w.put_u64(live_acks);
  for (const PendingAck& pending : ack_pool_) {
    const auto event = sim_.lookup(pending.deliver_event);
    if (!event.has_value()) continue;
    w.put_u64(pending.node->id());
    write_ack_frame(w, pending.ack);
    write_time(w, pending.end);
    write_time(w, event->time);
    w.put_u64(event->seq);
  }
  w.end_section();
}

void Gateway::restore_state(StateReader& r,
                            const std::function<Node*(std::uint32_t)>& node_by_id) {
  r.begin_section("gateway");
  if (r.get_i64() != id_ || r.get_i64() != fault_id_) {
    throw std::runtime_error{"Gateway::restore_state: checkpoint is for a different gateway"};
  }
  busy_paths_ = static_cast<int>(r.get_i64());
  next_packet_id_ = r.get_u64();

  std::vector<AirPacket> interference(r.get_u64());
  for (AirPacket& packet : interference) packet = read_air_packet(r);
  interference_.restore_live(interference);

  std::vector<AckPlanner::Interval> reservations(r.get_u64());
  for (AckPlanner::Interval& interval : reservations) {
    interval.start = read_time(r);
    interval.end = read_time(r);
  }
  ack_planner_.restore_live(reservations);

  // Pool slots renumber freely on restore: the rebuilt callbacks capture
  // the new indices and the replayed events keep their original seqs, so
  // the simulation cannot observe the renumbering.
  rx_pool_.clear();
  rx_free_.clear();
  const std::uint64_t live_rx = r.get_u64();
  for (std::uint64_t i = 0; i < live_rx; ++i) {
    const std::uint32_t slot = acquire_rx_slot();
    PendingReception& rx = rx_pool_[slot];
    rx.node = node_by_id(static_cast<std::uint32_t>(r.get_u64()));
    read_uplink_frame(r, rx.frame);
    rx.packet = read_air_packet(r);
    const Time at = read_time(r);
    const std::uint64_t seq = r.get_u64();
    rx.finish_event = sim_.schedule_at_seq(at, seq, [this, slot] { finish_reception(slot); });
  }

  ack_pool_.clear();
  ack_free_.clear();
  const std::uint64_t live_acks = r.get_u64();
  for (std::uint64_t i = 0; i < live_acks; ++i) {
    const std::uint32_t slot = acquire_ack_slot();
    PendingAck& pending = ack_pool_[slot];
    pending.node = node_by_id(static_cast<std::uint32_t>(r.get_u64()));
    pending.ack = read_ack_frame(r);
    pending.end = read_time(r);
    const Time at = read_time(r);
    const std::uint64_t seq = r.get_u64();
    pending.deliver_event = sim_.schedule_at_seq(at, seq, [this, slot] { deliver_ack(slot); });
  }
  r.end_section();
}

void Gateway::deliver_ack(std::uint32_t ack_slot) {
  PendingAck& pending = ack_pool_[ack_slot];
  Node* node = pending.node;
  const AckFrame ack = pending.ack;
  const Time end = pending.end;
  ack_free_.push_back(ack_slot);
  node->receive_ack(ack, end);
}

}  // namespace blam
