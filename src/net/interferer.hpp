// External interference: alien LoRa traffic sharing the band.
//
// Real deployments share the ISM band with other networks the server cannot
// coordinate with. This process injects Poisson-arriving foreign
// transmissions (random channel, SF, received power) into every gateway's
// interference tracker — they can destroy receptions but are never decoded.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "lora/channel_plan.hpp"
#include "net/interferer_config.hpp"
#include "sim/simulator.hpp"

namespace blam {

class Gateway;

class ExternalInterferer {
 public:
  /// Starts the Poisson process; injects into every gateway in `gateways`.
  /// The vector must outlive the interferer.
  ExternalInterferer(Simulator& sim, const std::vector<std::unique_ptr<Gateway>>& gateways,
                     const ChannelPlan& plan, const InterfererConfig& config, Rng rng);

  [[nodiscard]] std::uint64_t injected() const { return injected_; }

 private:
  void schedule_next();
  void inject();

  Simulator& sim_;
  const std::vector<std::unique_ptr<Gateway>>& gateways_;
  const ChannelPlan& plan_;
  InterfererConfig config_;
  Rng rng_;
  std::uint64_t injected_{0};
};

}  // namespace blam
