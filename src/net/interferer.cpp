#include "net/interferer.hpp"

#include <stdexcept>

#include "lora/airtime.hpp"
#include "net/gateway.hpp"

namespace blam {

ExternalInterferer::ExternalInterferer(Simulator& sim,
                                       const std::vector<std::unique_ptr<Gateway>>& gateways,
                                       const ChannelPlan& plan, const InterfererConfig& config,
                                       Rng rng)
    : sim_{sim}, gateways_{gateways}, plan_{plan}, config_{config}, rng_{rng} {
  if (config.tx_per_hour < 0.0) {
    throw std::invalid_argument{"ExternalInterferer: tx_per_hour must be >= 0"};
  }
  if (config.min_rx_dbm > config.max_rx_dbm) {
    throw std::invalid_argument{"ExternalInterferer: invalid rx power range"};
  }
  if (config.tx_per_hour > 0.0) schedule_next();
}

void ExternalInterferer::schedule_next() {
  const double mean_gap_s = 3600.0 / config_.tx_per_hour;
  sim_.schedule_in(Time::from_seconds(rng_.exponential(mean_gap_s)), [this] {
    inject();
    schedule_next();
  });
}

void ExternalInterferer::inject() {
  TxParams params;
  params.sf = sf_from_value(static_cast<int>(rng_.uniform_int(7, 12)));
  params.payload_bytes = config_.payload_bytes;
  params = params.with_auto_ldro();

  AirPacket packet;
  packet.start = sim_.now();
  packet.end = packet.start + time_on_air(params);
  packet.sf = params.sf;
  packet.channel = plan_.random_uplink_channel(rng_);
  // Each gateway hears the alien at an independent power (it sits at an
  // unknown location).
  for (const auto& gateway : gateways_) {
    packet.rx_power_dbm = rng_.uniform(config_.min_rx_dbm, config_.max_rx_dbm);
    gateway->inject_interference(packet);
  }
  ++injected_;
}

}  // namespace blam
