#include "net/replication.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "net/experiment.hpp"
#include "sim/sweep_runner.hpp"

namespace blam {

namespace {

// Two-sided critical values t_{alpha/2, df} for df = 1..30.
constexpr std::array<double, 30> kT90{6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860,
                                      1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746,
                                      1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
                                      1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
constexpr std::array<double, 30> kT95{12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
                                      2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
                                      2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
                                      2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
constexpr std::array<double, 30> kT99{63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355,
                                      3.250,  3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921,
                                      2.898,  2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
                                      2.787,  2.779, 2.771, 2.763, 2.756, 2.750};

}  // namespace

double t_critical(double confidence, std::size_t degrees_of_freedom) {
  if (degrees_of_freedom == 0) return 0.0;
  const std::array<double, 30>* table = nullptr;
  double z = 0.0;
  if (confidence == 0.90) {
    table = &kT90;
    z = 1.645;
  } else if (confidence == 0.95) {
    table = &kT95;
    z = 1.960;
  } else if (confidence == 0.99) {
    table = &kT99;
    z = 2.576;
  } else {
    throw std::invalid_argument{"t_critical: supported confidence levels are 0.90/0.95/0.99"};
  }
  if (degrees_of_freedom <= table->size()) return (*table)[degrees_of_freedom - 1];
  return z;
}

Estimate estimate_from_samples(const std::vector<double>& samples, double confidence) {
  Estimate e;
  e.replications = samples.size();
  if (samples.empty()) return e;
  RunningStats stats;
  for (double s : samples) stats.add(s);
  e.mean = stats.mean();
  if (samples.size() >= 2) {
    const double sem = stats.stddev() / std::sqrt(static_cast<double>(samples.size()));
    e.half_width = t_critical(confidence, samples.size() - 1) * sem;
  }
  return e;
}

std::string Estimate::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.5g +/- %.2g", mean, half_width);
  return buf;
}

ReplicatedSummary replicate(const ScenarioConfig& config, Time duration, int replications,
                            double confidence) {
  if (replications <= 0) throw std::invalid_argument{"replicate: need at least one replication"};
  ReplicatedSummary out;
  out.label = config.label;
  out.replications = static_cast<std::size_t>(replications);

  std::vector<double> prr;
  std::vector<double> min_prr;
  std::vector<double> utility;
  std::vector<double> retx;
  std::vector<double> energy;
  std::vector<double> deg_mean;
  std::vector<double> deg_max;
  std::vector<double> latency;
  // Replications are independent by construction (each gets its own seed and
  // synthesizes its own weather), so fan them across the sweep pool; results
  // come back in seed order, bit-identical to the serial loop.
  SweepRunner runner;
  const std::vector<ExperimentResult> results =
      runner.map(static_cast<std::size_t>(replications), [&](std::size_t r) {
        ScenarioConfig run = config;
        run.seed = config.seed + static_cast<std::uint64_t>(r);
        return run_scenario(run, duration);
      });
  for (const ExperimentResult& result : results) {
    prr.push_back(result.summary.mean_prr);
    min_prr.push_back(result.summary.min_prr);
    utility.push_back(result.summary.mean_utility);
    retx.push_back(result.summary.mean_retx);
    energy.push_back(result.summary.total_tx_energy.joules());
    deg_mean.push_back(result.summary.degradation_box.mean);
    deg_max.push_back(result.summary.max_degradation);
    latency.push_back(result.summary.mean_delivered_latency_s);
  }
  out.prr = estimate_from_samples(prr, confidence);
  out.min_prr = estimate_from_samples(min_prr, confidence);
  out.utility = estimate_from_samples(utility, confidence);
  out.retx = estimate_from_samples(retx, confidence);
  out.tx_energy_j = estimate_from_samples(energy, confidence);
  out.degradation_mean = estimate_from_samples(deg_mean, confidence);
  out.degradation_max = estimate_from_samples(deg_max, confidence);
  out.latency_delivered_s = estimate_from_samples(latency, confidence);
  return out;
}

}  // namespace blam
