// Network server: application-level endpoint behind the gateway(s).
//
// Responsibilities (paper Sec. III-B): aggregate copies of each uplink
// heard by multiple gateways and choose the strongest as the downlink path,
// deduplicate uplinks (retransmissions share a sequence number), feed
// reported SoC transition points into the DegradationService, recompute
// every node's normalized degradation w_u once per dissemination period,
// and answer "what w_u / ADR command should this ACK carry?".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "core/degradation_service.hpp"
#include "core/theta_controller.hpp"
#include "fault/report_channel.hpp"
#include "lora/interference.hpp"
#include "mac/adr.hpp"
#include "mac/frame.hpp"
#include "net/metrics.hpp"
#include "sim/simulator.hpp"

namespace blam {

class Auditor;
class Gateway;
class Node;
class StateReader;
class StateWriter;

class NetworkServer {
 public:
  NetworkServer(Simulator& sim, const DegradationModel& model, double temperature_c,
                Time dissemination_period);

  /// Enables server-side ADR (disabled unless called).
  void enable_adr(const AdrController::Config& config);

  /// Enables the adaptive-theta network manager (disabled unless called).
  void enable_adaptive_theta(const ThetaController::Config& config);

  /// Attaches the metrics sink (duplicate counting).
  void attach_metrics(Metrics& metrics) { metrics_ = &metrics; }

  /// Attaches the fault plan: w_u recomputes are skipped while the backhaul
  /// is in an outage window (the dissemination never reaches the gateway),
  /// and with report faults enabled every piggy-backed SoC report is routed
  /// through a ReportFaultChannel before reaching the ledger.
  void attach_fault_plan(const FaultPlan* faults);

  /// Ground-truth probe for the feedback-consistency audit: returns the
  /// node's own tracker degradation at `at`. Checked at each recompute, and
  /// only on fault-free runs (under injected report faults the ledger is
  /// EXPECTED to diverge).
  using TruthProbe = std::function<double(std::uint32_t node_id, Time at)>;
  void set_truth_probe(TruthProbe probe) { truth_probe_ = std::move(probe); }

  /// Attaches the invariant auditor (nullptr = disabled): every accepted
  /// uplink is checked for strict per-node sequence monotonicity.
  void attach_auditor(Auditor* auditor) { audit_ = auditor; }

  void register_node(std::uint32_t node_id);

  /// A gateway decoded one copy of an uplink. Copies of the same frame from
  /// several gateways end simultaneously; the server collects them for a
  /// millisecond, then processes the frame once and ACKs through the
  /// gateway that heard it best.
  void on_gateway_receive(Gateway& gateway, Node& node, const UplinkFrame& frame,
                          const AirPacket& packet);

  /// Handles a decoded uplink (dedup + SoC ingestion). Returns false if
  /// this (node, seq) was already delivered. Exposed for tests; the normal
  /// path goes through on_gateway_receive.
  bool on_uplink(const UplinkFrame& frame);

  /// Latest normalized degradation for the node (0 before any recompute).
  [[nodiscard]] double w_for(std::uint32_t node_id) const;

  /// Records a decoded uplink's SNR (no-op with ADR disabled).
  void observe_snr(std::uint32_t node_id, double snr_db);

  /// ADR advice for the node given its current parameters; nullopt when ADR
  /// is disabled, history is short, or nothing would change.
  [[nodiscard]] std::optional<AdrCommand> adr_advice(std::uint32_t node_id,
                                                     const AdrCommand& current) const;

  /// Whether at least one recompute has run (ACKs carry w_u only then).
  [[nodiscard]] bool dissemination_ready() const { return recomputes_ > 0; }

  [[nodiscard]] const DegradationService& service() const { return service_; }
  [[nodiscard]] DegradationService& service() { return service_; }

  /// Releases any report the fault channel still holds for reordering into
  /// the ledger (call once at end of run, before reading final metrics).
  void flush_report_channel();

  /// What the report fault channel did; nullptr when report faults are off.
  [[nodiscard]] const ReportChannelCounters* report_channel_counters() const {
    return report_faults_.has_value() ? &report_faults_->counters() : nullptr;
  }

  /// Serializes the server — dedup table, dissemination loop, theta/report
  /// channels, the degradation ledger, and every aggregating frame — into an
  /// engine checkpoint (see sim/checkpoint.hpp). Non-const: the ledger's
  /// checkpoint drains its staged ingest queue first.
  void checkpoint_state(StateWriter& w);

  /// Restores state captured by checkpoint_state into a freshly built server
  /// whose event queue has been cleared. `gateways` is the slice's gateway
  /// vector (frames store the downlink gateway as an index into it);
  /// `node_by_id` resolves GLOBAL node ids to this slice's Node instances.
  void restore_state(StateReader& r, const std::vector<std::unique_ptr<Gateway>>& gateways,
                     const std::function<Node*(std::uint32_t)>& node_by_id);

 private:
  /// Copies of one uplink collected across gateways for 1 ms. Instances
  /// live in a recycled slot pool: the decide() callback captures only
  /// {this, slot} and the frame's SoC-report vector keeps its capacity
  /// across uplinks, so the steady-state aggregation path never allocates.
  struct PendingFrame {
    Gateway* gateway{nullptr};
    Node* node{nullptr};
    UplinkFrame frame;
    double best_rx_dbm{0.0};
    Time uplink_end{};
    SpreadingFactor sf{SpreadingFactor::kSF10};
    int channel{0};
    bool live{false};
    /// The decide() event; checkpointed with the frame so a restored run
    /// resolves the aggregation at the original instant and seq.
    EventHandle decide_event{};
  };

  void recompute();
  void decide(std::uint32_t slot);
  [[nodiscard]] std::uint32_t acquire_pending_slot();

  [[nodiscard]] static std::uint64_t frame_key(const UplinkFrame& frame) {
    return (static_cast<std::uint64_t>(frame.node_id) << 40) |
           (static_cast<std::uint64_t>(frame.attempt & 0xff) << 32) |
           static_cast<std::uint64_t>(frame.seq);
  }

  Simulator& sim_;
  DegradationService service_;
  std::optional<AdrController> adr_;
  std::optional<ThetaController> theta_;
  // blam-ckpt: skip -- wiring; checkpointed metrics ride in the gateway-metrics section
  Metrics* metrics_{nullptr};
  // blam-ckpt: skip -- wiring; fault-plan state rides in the engine slice's faults section
  const FaultPlan* faults_{nullptr};
  // blam-ckpt: skip -- observability wiring; audited runs refuse checkpoints
  Auditor* audit_{nullptr};
  /// Fault channel between PHY and ledger (engaged only when the plan has
  /// report faults; absent otherwise so fault-free runs take the direct
  /// ingest path with zero extra draws).
  std::optional<ReportFaultChannel> report_faults_;
  /// Reused sink closure: deliver() may fan one report out to several
  /// ingest_report calls (duplication, reorder release).
  // blam-ckpt: skip -- reused closure, re-bound at construction
  ReportFaultChannel::Sink ingest_sink_;
  // blam-ckpt: skip -- test-only probe wiring, re-attached by the test after restore
  TruthProbe truth_probe_;
  /// Highest seq delivered per node, indexed by node id (-1 = none yet).
  /// Node ids are dense in every scenario, so a flat vector replaces the
  /// hash lookup that sat on the per-delivery path.
  std::vector<std::int64_t> last_seq_;
  std::vector<PendingFrame> pending_pool_;
  // blam-ckpt: skip -- free-list; restore_state rebuilds it while re-acquiring pending slots
  std::vector<std::uint32_t> pending_free_;
  /// (frame key, pool slot) for frames currently aggregating; at most a
  /// handful are in flight at once, so lookup is a linear scan.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> pending_live_;
  std::unique_ptr<PeriodicProcess> recompute_process_;
  std::uint64_t recomputes_{0};
  /// Thermal noise floor at the 125 kHz uplink bandwidth (constant per run,
  /// previously recomputed — log10 and all — for every delivered frame).
  // blam-ckpt: skip -- physical constant, recomputed at construction
  double noise_floor_125k_dbm_;
};

}  // namespace blam
