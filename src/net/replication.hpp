// Multi-seed replication: run the same scenario under independent seeds and
// report mean +/- confidence interval for each summary metric — the
// statistical backbone for honest figure reproduction.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "net/scenario.hpp"

namespace blam {

/// Sample mean with a t-distribution confidence half-width.
struct Estimate {
  double mean{0.0};
  /// Half-width of the confidence interval (0 for < 2 replications).
  double half_width{0.0};
  std::size_t replications{0};

  [[nodiscard]] double lo() const { return mean - half_width; }
  [[nodiscard]] double hi() const { return mean + half_width; }
  [[nodiscard]] std::string to_string() const;
};

/// Two-sided Student-t critical value for the given confidence level and
/// degrees of freedom (exact table for small df, normal approximation
/// beyond). Supported levels: 0.90, 0.95, 0.99.
[[nodiscard]] double t_critical(double confidence, std::size_t degrees_of_freedom);

/// Builds an Estimate from raw replication samples.
[[nodiscard]] Estimate estimate_from_samples(const std::vector<double>& samples,
                                             double confidence = 0.95);

struct ReplicatedSummary {
  std::string label;
  std::size_t replications{0};
  Estimate prr;
  Estimate min_prr;
  Estimate utility;
  Estimate retx;
  Estimate tx_energy_j;
  Estimate degradation_mean;
  Estimate degradation_max;
  Estimate latency_delivered_s;
};

/// Runs `config` for `duration` under `replications` independent seeds
/// (config.seed, config.seed+1, ...) and aggregates. Each replication gets
/// its own weather (the seed drives the solar trace).
[[nodiscard]] ReplicatedSummary replicate(const ScenarioConfig& config, Time duration,
                                          int replications, double confidence = 0.95);

}  // namespace blam
