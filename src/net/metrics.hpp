// Metrics collection, matching the quantities the paper reports in
// Sec. IV-A.2: avg retransmissions per packet, total TX energy, battery
// degradation, packet reception rate, avg utility per packet, and avg
// latency (with failed packets penalized by one sampling period).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "core/degradation_service.hpp"

namespace blam {

struct NodeMetrics {
  std::uint64_t generated{0};
  /// Packets whose ACK arrived.
  std::uint64_t delivered{0};
  /// Packets that exhausted all transmissions without an ACK.
  std::uint64_t exhausted{0};
  /// Packets dropped by the policy (Algorithm 1 FAIL).
  std::uint64_t policy_drops{0};
  /// Packets abandoned because the battery + harvest could not fund a
  /// transmission at the scheduled time.
  std::uint64_t brownouts{0};
  /// Attempts deferred by the regulatory duty-cycle limiter.
  std::uint64_t duty_defers{0};
  /// Transmissions on air (first attempts + retransmissions).
  std::uint64_t tx_attempts{0};
  /// Retransmissions only.
  std::uint64_t retx{0};
  /// Radio TX energy across the run (paper Fig. 5b).
  Energy tx_energy{};
  /// Sum of per-packet utility over *generated* packets (failures count 0).
  double utility_sum{0.0};
  /// Per-packet latency in seconds; failures penalized with the period
  /// (the paper's metric).
  RunningStats latency_s;
  /// Latency of delivered packets only (generation to ACK reception).
  RunningStats delivered_latency_s;
  /// counts[w] = packets whose chosen forecast window was w.
  std::vector<std::uint32_t> window_counts;

  // Fault-injection observability (all zero without a FaultPlan):
  /// Crash/reboot events injected into this node.
  std::uint64_t crashes{0};
  /// Packets generated while the node was rebooting (never transmitted).
  std::uint64_t reboot_drops{0};
  /// Packets that exhausted their budget while the gateway was in an
  /// outage window (subset of `exhausted`).
  std::uint64_t lost_in_outage{0};
  /// Time from a gateway outage's end to this node's next delivered packet
  /// (seconds, one sample per outage the node noticed).
  RunningStats recovery_s;
  /// Age of the node's w_u at each BLAM window selection (seconds):
  /// the feedback-staleness distribution.
  RunningStats w_age_s;

  // Filled in by the network when a report is taken:
  double degradation{0.0};
  double cycle_linear{0.0};
  double calendar_linear{0.0};
  double mean_soc{0.0};
  double final_soc{0.0};

  [[nodiscard]] double prr() const {
    return generated > 0 ? static_cast<double>(delivered) / static_cast<double>(generated) : 0.0;
  }
  [[nodiscard]] double avg_utility() const {
    return generated > 0 ? utility_sum / static_cast<double>(generated) : 0.0;
  }
  /// Retransmissions per generated packet (paper Fig. 5a's "Avg RETX").
  [[nodiscard]] double avg_retx() const {
    return generated > 0 ? static_cast<double>(retx) / static_cast<double>(generated) : 0.0;
  }
  /// Forecast window this node used for the majority of its packets
  /// (paper Fig. 4); -1 if it never transmitted.
  [[nodiscard]] int majority_window() const;

  void count_window(int window);
};

struct GatewayMetrics {
  std::uint64_t arrivals{0};
  std::uint64_t received{0};
  std::uint64_t lost_interference{0};
  std::uint64_t lost_half_duplex{0};
  std::uint64_t lost_no_demod_path{0};
  std::uint64_t lost_under_sensitivity{0};
  std::uint64_t acks_sent{0};
  std::uint64_t acks_rx2{0};
  std::uint64_t acks_unschedulable{0};
  std::uint64_t acks_undecodable{0};
  /// Duplicate application packets (retransmission decoded after the
  /// original already made it through — its ACK was lost). Subset of
  /// `received`; duplicates are re-acknowledged.
  std::uint64_t duplicates{0};
  /// Uplinks arriving while the gateway was in a fault-injected outage.
  std::uint64_t lost_outage{0};
  /// ACKs suppressed because the gateway was in an outage at send time.
  std::uint64_t acks_lost_outage{0};
  /// ACKs transmitted but lost to the Gilbert-Elliott downlink channel.
  std::uint64_t acks_lost_channel{0};
  /// w_u recomputes skipped because the backhaul was down at the
  /// dissemination instant.
  std::uint64_t recomputes_skipped{0};

  // SoC-report fault channel observability (all zero without report
  // faults); what the channel DID, as opposed to the LedgerCounters'
  // record of what the ledger detected.
  std::uint64_t reports_dropped_fault{0};
  std::uint64_t reports_duplicated_fault{0};
  std::uint64_t reports_reordered_fault{0};
  std::uint64_t reports_corrupted_fault{0};
  std::uint64_t reports_truncated_fault{0};
};

/// Aggregated view over all nodes, used to print figure rows.
struct NetworkSummary {
  double mean_prr{0.0};
  double min_prr{0.0};
  double mean_utility{0.0};
  double mean_latency_s{0.0};
  double max_latency_s{0.0};
  double mean_delivered_latency_s{0.0};
  double max_delivered_latency_s{0.0};
  double mean_retx{0.0};
  Energy total_tx_energy{};
  BoxSummary degradation_box{};
  BoxSummary prr_box{};
  BoxSummary utility_box{};
  BoxSummary latency_box{};
  double max_degradation{0.0};

  // Fault-injection recovery observability (zero without a FaultPlan):
  double total_outage_s{0.0};
  std::uint64_t lost_in_outage{0};
  std::uint64_t crashes{0};
  double mean_recovery_s{0.0};
  double max_recovery_s{0.0};
  double mean_w_age_s{0.0};
  double max_w_age_s{0.0};

  /// Gateway feedback-ledger ingest decisions (all zero on a clean run).
  LedgerCounters feedback{};

  /// Why a run requesting shards > 1 fell back to the serial engine
  /// (empty when it actually sharded or never asked to).
  std::string serial_reason;
};

class Metrics {
 public:
  explicit Metrics(std::size_t n_nodes);

  [[nodiscard]] NodeMetrics& node(std::size_t id) { return nodes_.at(id); }
  [[nodiscard]] const NodeMetrics& node(std::size_t id) const { return nodes_.at(id); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] GatewayMetrics& gateway() { return gateway_; }
  [[nodiscard]] const GatewayMetrics& gateway() const { return gateway_; }

  [[nodiscard]] NetworkSummary summarize() const;

  /// Total gateway-outage duration over the run (copied into the summary);
  /// set by Network::finalize_metrics when a FaultPlan is active.
  void set_total_outage(Time total) { total_outage_s_ = total.seconds(); }

  /// Snapshot of the gateway ledger's ingest counters (copied into the
  /// summary); set by Network::finalize_metrics.
  void set_feedback(const LedgerCounters& counters) { feedback_ = counters; }

  /// Records why a shards > 1 request degraded to the serial engine; copied
  /// into the summary so callers see the fallback without consulting the
  /// ShardPlan. Set by ShardedNetwork at construction.
  void set_serial_reason(std::string reason) { serial_reason_ = std::move(reason); }
  [[nodiscard]] const std::string& serial_reason() const { return serial_reason_; }

  /// Histogram over majority-selected forecast windows (paper Fig. 4):
  /// result[w] = number of nodes whose majority window is w.
  [[nodiscard]] std::vector<int> majority_window_histogram(int n_windows) const;

 private:
  std::vector<NodeMetrics> nodes_;
  GatewayMetrics gateway_;
  // blam-ckpt: skip -- finalize-time summary, recomputed by finalize_metrics() from live state
  double total_outage_s_{0.0};
  // blam-ckpt: skip -- finalize-time summary, recomputed by finalize_metrics() from the ledger
  LedgerCounters feedback_;
  // blam-ckpt: skip -- finalize-time annotation, re-stamped by the owning engine
  std::string serial_reason_;
};

}  // namespace blam
