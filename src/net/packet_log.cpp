#include "net/packet_log.hpp"

#include "common/csv.hpp"

namespace blam {

const char* to_string(PacketEventKind kind) {
  switch (kind) {
    case PacketEventKind::kGenerated:
      return "generated";
    case PacketEventKind::kPolicyDrop:
      return "policy_drop";
    case PacketEventKind::kBrownout:
      return "brownout";
    case PacketEventKind::kDutyDefer:
      return "duty_defer";
    case PacketEventKind::kTxStart:
      return "tx_start";
    case PacketEventKind::kDelivered:
      return "delivered";
    case PacketEventKind::kExhausted:
      return "exhausted";
  }
  return "?";
}

std::size_t PacketLog::count(PacketEventKind kind) const {
  std::size_t n = 0;
  for (const PacketEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::vector<PacketEvent> PacketLog::history(std::uint32_t node, std::uint32_t seq) const {
  std::vector<PacketEvent> out;
  for (const PacketEvent& e : events_) {
    if (e.node == node && e.seq == seq) out.push_back(e);
  }
  return out;
}

void PacketLog::write_csv(const std::string& path) const {
  CsvWriter csv{path, {"time_s", "node", "seq", "attempt", "window", "kind"}};
  for (const PacketEvent& e : events_) {
    csv.row({CsvWriter::cell(e.at.seconds()), CsvWriter::cell(static_cast<std::uint64_t>(e.node)),
             CsvWriter::cell(static_cast<std::uint64_t>(e.seq)),
             CsvWriter::cell(static_cast<std::int64_t>(e.attempt)),
             CsvWriter::cell(static_cast<std::int64_t>(e.window)), to_string(e.kind)});
  }
  csv.flush();
}

}  // namespace blam
