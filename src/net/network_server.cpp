#include "net/network_server.hpp"

#include "audit/audit.hpp"
#include "fault/fault_plan.hpp"
#include "mac/adr.hpp"
#include "net/gateway.hpp"
#include "net/node.hpp"

namespace blam {

NetworkServer::NetworkServer(Simulator& sim, const DegradationModel& model, double temperature_c,
                             Time dissemination_period)
    : sim_{sim}, service_{model, temperature_c}, noise_floor_125k_dbm_{noise_floor_dbm(125e3)} {
  recompute_process_ = std::make_unique<PeriodicProcess>(
      sim, dissemination_period, dissemination_period, [this] { recompute(); });
}

void NetworkServer::enable_adr(const AdrController::Config& config) {
  adr_.emplace(config);
}

void NetworkServer::enable_adaptive_theta(const ThetaController::Config& config) {
  theta_.emplace(config);
}

void NetworkServer::observe_snr(std::uint32_t node_id, double snr_db) {
  if (adr_.has_value()) adr_->observe(node_id, snr_db);
}

std::optional<AdrCommand> NetworkServer::adr_advice(std::uint32_t node_id,
                                                    const AdrCommand& current) const {
  if (!adr_.has_value()) return std::nullopt;
  return adr_->advise(node_id, current);
}

void NetworkServer::register_node(std::uint32_t node_id) { service_.register_node(node_id); }

void NetworkServer::attach_fault_plan(const FaultPlan* faults) {
  faults_ = faults;
  if (faults != nullptr && faults->config().reports_enabled()) {
    report_faults_.emplace(*faults);
    ingest_sink_ = [this](std::uint32_t node_id, std::uint16_t report_seq,
                          std::uint8_t report_crc, std::span<const SocSample> samples) {
      service_.enqueue_report(node_id, report_seq, report_crc, samples);
    };
  }
}

void NetworkServer::flush_report_channel() {
  if (report_faults_.has_value()) report_faults_->flush(ingest_sink_);
  // Final barrier: anything still staged in the ingestion queue reaches the
  // ledger before end-of-run metrics/checkpoints read it.
  service_.drain_queue();
}

std::uint32_t NetworkServer::acquire_pending_slot() {
  if (!pending_free_.empty()) {
    const std::uint32_t slot = pending_free_.back();
    pending_free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(pending_pool_.size());
  pending_pool_.emplace_back();
  return slot;
}

void NetworkServer::on_gateway_receive(Gateway& gateway, Node& node, const UplinkFrame& frame,
                                       const AirPacket& packet) {
  const std::uint64_t key = frame_key(frame);
  std::uint32_t slot = EventHandle::kNullSlot;
  for (const auto& [live_key, live_slot] : pending_live_) {
    if (live_key == key) {
      slot = live_slot;
      break;
    }
  }
  const bool inserted = slot == EventHandle::kNullSlot;
  if (inserted) {
    slot = acquire_pending_slot();
    pending_live_.emplace_back(key, slot);
    pending_pool_[slot].live = true;
    pending_pool_[slot].best_rx_dbm = 0.0;
  }
  PendingFrame& pending = pending_pool_[slot];
  if (inserted || packet.rx_power_dbm > pending.best_rx_dbm) {
    pending.gateway = &gateway;
    pending.node = &node;
    pending.frame = frame;
    pending.best_rx_dbm = packet.rx_power_dbm;
    pending.uplink_end = packet.end;
    pending.sf = packet.sf;
    pending.channel = packet.channel;
  }
  if (inserted) {
    // All copies end at the same instant (same airtime); 1 ms collects them
    // all while staying far inside the RX1 delay.
    sim_.schedule_in(Time::from_ms(1), [this, slot] { decide(slot); });
  }
}

void NetworkServer::decide(std::uint32_t slot) {
  PendingFrame& pending = pending_pool_[slot];
  if (!pending.live) return;
  pending.live = false;
  for (auto it = pending_live_.begin(); it != pending_live_.end(); ++it) {
    if (it->second == slot) {
      *it = pending_live_.back();
      pending_live_.pop_back();
      break;
    }
  }

  observe_snr(pending.frame.node_id, pending.best_rx_dbm - noise_floor_125k_dbm_);
  std::optional<double> theta_update;
  if (theta_.has_value()) {
    theta_update = theta_->on_delivery(pending.frame.node_id, pending.frame.seq);
  }
  if (!on_uplink(pending.frame)) {
    // Duplicate of an already-delivered packet: the device retransmitted
    // because its ACK was lost or unschedulable. The SoC report is ignored,
    // but the frame must still be acknowledged or the device will burn its
    // whole retransmission budget.
    if (metrics_ != nullptr) ++metrics_->gateway().duplicates;
  }
  if (!pending.frame.confirmed) {
    // Fire-and-forget uplink: no radio ACK. Deliver a synthetic,
    // bookkeeping-only confirmation so the node's metrics resolve; it
    // carries no w_u (there is no downlink to piggyback on).
    AckFrame note;
    note.node_id = pending.frame.node_id;
    note.seq = pending.frame.seq;
    Node* node = pending.node;
    const Time at = pending.uplink_end;
    pending_free_.push_back(slot);
    node->receive_ack(note, at);
    return;
  }
  pending.gateway->send_ack(*pending.node, pending.frame, pending.uplink_end, pending.sf,
                            pending.channel, theta_update);
  pending_free_.push_back(slot);
}

bool NetworkServer::on_uplink(const UplinkFrame& frame) {
  if (frame.node_id >= last_seq_.size()) {
    last_seq_.resize(static_cast<std::size_t>(frame.node_id) + 1, -1);
  }
  std::int64_t& seen = last_seq_[frame.node_id];
  if (seen >= 0) {
    // Sequence numbers increase monotonically per node; an equal or older
    // one is a duplicate (late retransmission).
    if (static_cast<std::int64_t>(frame.seq) <= seen) return false;
  }
  const std::int64_t prev_seen = seen;
  seen = frame.seq;
  if (audit_ != nullptr) {
    audit_->on_uplink_seq(frame.node_id, sim_.now(), static_cast<std::int64_t>(frame.seq),
                          prev_seen);
  }
  if (!frame.soc_report.empty()) {
    if (report_faults_.has_value()) {
      report_faults_->deliver(frame.node_id, frame.report_seq, frame.report_crc,
                              frame.soc_report, ingest_sink_);
    } else {
      service_.enqueue_report(frame.node_id, frame.report_seq, frame.report_crc,
                              frame.soc_report);
    }
  }
  return true;
}

double NetworkServer::w_for(std::uint32_t node_id) const {
  if (recomputes_ == 0) return 0.0;
  return service_.normalized_degradation(node_id);
}

void NetworkServer::recompute() {
  if (faults_ != nullptr && faults_->gateway_out(sim_.now())) {
    // Backhaul down at the dissemination instant: nodes keep their stale
    // w_u until the next period (the staleness-aware fallback on the device
    // covers the gap).
    if (metrics_ != nullptr) ++metrics_->gateway().recomputes_skipped;
    return;
  }
  service_.recompute(sim_.now());
  ++recomputes_;
  if (audit_ != nullptr && truth_probe_ && faults_ == nullptr) {
    // Feedback-consistency audit (level 1+, observe-only): on a fault-free
    // run the ledger's per-node estimate must stay close to the node's own
    // tracker. With any fault plan active, divergence is injected behavior,
    // not a bug — the check stays off.
    const Time now = sim_.now();
    for (const std::uint32_t id : service_.ids()) {
      audit_->on_feedback_ledger(id, now, service_.degradation(id), truth_probe_(id, now));
    }
  }
}

}  // namespace blam
