#include "net/network_server.hpp"

#include "fault/fault_plan.hpp"
#include "mac/adr.hpp"
#include "net/gateway.hpp"
#include "net/node.hpp"

namespace blam {

NetworkServer::NetworkServer(Simulator& sim, const DegradationModel& model, double temperature_c,
                             Time dissemination_period)
    : sim_{sim}, service_{model, temperature_c} {
  recompute_process_ = std::make_unique<PeriodicProcess>(
      sim, dissemination_period, dissemination_period, [this] { recompute(); });
}

void NetworkServer::enable_adr(const AdrController::Config& config) {
  adr_.emplace(config);
}

void NetworkServer::enable_adaptive_theta(const ThetaController::Config& config) {
  theta_.emplace(config);
}

void NetworkServer::observe_snr(std::uint32_t node_id, double snr_db) {
  if (adr_.has_value()) adr_->observe(node_id, snr_db);
}

std::optional<AdrCommand> NetworkServer::adr_advice(std::uint32_t node_id,
                                                    const AdrCommand& current) const {
  if (!adr_.has_value()) return std::nullopt;
  return adr_->advise(node_id, current);
}

void NetworkServer::register_node(std::uint32_t node_id) { service_.register_node(node_id); }

void NetworkServer::on_gateway_receive(Gateway& gateway, Node& node, const UplinkFrame& frame,
                                       const AirPacket& packet) {
  const std::uint64_t key = frame_key(frame);
  auto [it, inserted] = pending_.try_emplace(key);
  PendingFrame& pending = it->second;
  if (inserted || packet.rx_power_dbm > pending.best_rx_dbm) {
    pending.gateway = &gateway;
    pending.node = &node;
    pending.frame = frame;
    pending.best_rx_dbm = packet.rx_power_dbm;
    pending.uplink_end = packet.end;
    pending.sf = packet.sf;
    pending.channel = packet.channel;
  }
  if (inserted) {
    // All copies end at the same instant (same airtime); 1 ms collects them
    // all while staying far inside the RX1 delay.
    sim_.schedule_in(Time::from_ms(1), [this, key] { decide(key); });
  }
}

void NetworkServer::decide(std::uint64_t key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  PendingFrame pending = std::move(it->second);
  pending_.erase(it);

  observe_snr(pending.frame.node_id, pending.best_rx_dbm - noise_floor_dbm(125e3));
  std::optional<double> theta_update;
  if (theta_.has_value()) {
    theta_update = theta_->on_delivery(pending.frame.node_id, pending.frame.seq);
  }
  if (!on_uplink(pending.frame)) {
    // Duplicate of an already-delivered packet: the device retransmitted
    // because its ACK was lost or unschedulable. The SoC report is ignored,
    // but the frame must still be acknowledged or the device will burn its
    // whole retransmission budget.
    if (metrics_ != nullptr) ++metrics_->gateway().duplicates;
  }
  if (!pending.frame.confirmed) {
    // Fire-and-forget uplink: no radio ACK. Deliver a synthetic,
    // bookkeeping-only confirmation so the node's metrics resolve; it
    // carries no w_u (there is no downlink to piggyback on).
    AckFrame note;
    note.node_id = pending.frame.node_id;
    note.seq = pending.frame.seq;
    Node* node = pending.node;
    const Time at = pending.uplink_end;
    node->receive_ack(note, at);
    return;
  }
  pending.gateway->send_ack(*pending.node, pending.frame, pending.uplink_end, pending.sf,
                            pending.channel, theta_update);
}

bool NetworkServer::on_uplink(const UplinkFrame& frame) {
  auto [it, inserted] = last_seq_.try_emplace(frame.node_id, frame.seq);
  if (!inserted) {
    // Sequence numbers increase monotonically per node; an equal or older
    // one is a duplicate (late retransmission).
    if (frame.seq <= it->second) return false;
    it->second = frame.seq;
  }
  if (!frame.soc_report.empty()) {
    service_.ingest(frame.node_id, frame.soc_report);
  }
  return true;
}

double NetworkServer::w_for(std::uint32_t node_id) const {
  if (recomputes_ == 0) return 0.0;
  return service_.normalized_degradation(node_id);
}

void NetworkServer::recompute() {
  if (faults_ != nullptr && faults_->gateway_out(sim_.now())) {
    // Backhaul down at the dissemination instant: nodes keep their stale
    // w_u until the next period (the staleness-aware fallback on the device
    // covers the gap).
    if (metrics_ != nullptr) ++metrics_->gateway().recomputes_skipped;
    return;
  }
  service_.recompute(sim_.now());
  ++recomputes_;
}

}  // namespace blam
