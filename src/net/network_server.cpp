#include "net/network_server.hpp"

#include <sstream>
#include <stdexcept>

#include "audit/audit.hpp"
#include "fault/fault_plan.hpp"
#include "mac/adr.hpp"
#include "net/gateway.hpp"
#include "net/node.hpp"
#include "sim/checkpoint.hpp"

namespace blam {

NetworkServer::NetworkServer(Simulator& sim, const DegradationModel& model, double temperature_c,
                             Time dissemination_period)
    : sim_{sim}, service_{model, temperature_c}, noise_floor_125k_dbm_{noise_floor_dbm(125e3)} {
  recompute_process_ = std::make_unique<PeriodicProcess>(
      sim, dissemination_period, dissemination_period, [this] { recompute(); });
}

void NetworkServer::enable_adr(const AdrController::Config& config) {
  adr_.emplace(config);
}

void NetworkServer::enable_adaptive_theta(const ThetaController::Config& config) {
  theta_.emplace(config);
}

void NetworkServer::observe_snr(std::uint32_t node_id, double snr_db) {
  if (adr_.has_value()) adr_->observe(node_id, snr_db);
}

std::optional<AdrCommand> NetworkServer::adr_advice(std::uint32_t node_id,
                                                    const AdrCommand& current) const {
  if (!adr_.has_value()) return std::nullopt;
  return adr_->advise(node_id, current);
}

void NetworkServer::register_node(std::uint32_t node_id) { service_.register_node(node_id); }

void NetworkServer::attach_fault_plan(const FaultPlan* faults) {
  faults_ = faults;
  if (faults != nullptr && faults->config().reports_enabled()) {
    report_faults_.emplace(*faults);
    ingest_sink_ = [this](std::uint32_t node_id, std::uint16_t report_seq,
                          std::uint8_t report_crc, std::span<const SocSample> samples) {
      service_.enqueue_report(node_id, report_seq, report_crc, samples);
    };
  }
}

void NetworkServer::flush_report_channel() {
  if (report_faults_.has_value()) report_faults_->flush(ingest_sink_);
  // Final barrier: anything still staged in the ingestion queue reaches the
  // ledger before end-of-run metrics/checkpoints read it.
  service_.drain_queue();
}

std::uint32_t NetworkServer::acquire_pending_slot() {
  if (!pending_free_.empty()) {
    const std::uint32_t slot = pending_free_.back();
    pending_free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(pending_pool_.size());
  pending_pool_.emplace_back();
  return slot;
}

void NetworkServer::on_gateway_receive(Gateway& gateway, Node& node, const UplinkFrame& frame,
                                       const AirPacket& packet) {
  const std::uint64_t key = frame_key(frame);
  std::uint32_t slot = EventHandle::kNullSlot;
  for (const auto& [live_key, live_slot] : pending_live_) {
    if (live_key == key) {
      slot = live_slot;
      break;
    }
  }
  const bool inserted = slot == EventHandle::kNullSlot;
  if (inserted) {
    slot = acquire_pending_slot();
    pending_live_.emplace_back(key, slot);
    pending_pool_[slot].live = true;
    pending_pool_[slot].best_rx_dbm = 0.0;
  }
  PendingFrame& pending = pending_pool_[slot];
  if (inserted || packet.rx_power_dbm > pending.best_rx_dbm) {
    pending.gateway = &gateway;
    pending.node = &node;
    pending.frame = frame;
    pending.best_rx_dbm = packet.rx_power_dbm;
    pending.uplink_end = packet.end;
    pending.sf = packet.sf;
    pending.channel = packet.channel;
  }
  if (inserted) {
    // All copies end at the same instant (same airtime); 1 ms collects them
    // all while staying far inside the RX1 delay.
    pending.decide_event = sim_.schedule_in(Time::from_ms(1), [this, slot] { decide(slot); });
  }
}

void NetworkServer::decide(std::uint32_t slot) {
  PendingFrame& pending = pending_pool_[slot];
  if (!pending.live) return;
  pending.live = false;
  for (auto it = pending_live_.begin(); it != pending_live_.end(); ++it) {
    if (it->second == slot) {
      *it = pending_live_.back();
      pending_live_.pop_back();
      break;
    }
  }

  observe_snr(pending.frame.node_id, pending.best_rx_dbm - noise_floor_125k_dbm_);
  std::optional<double> theta_update;
  if (theta_.has_value()) {
    theta_update = theta_->on_delivery(pending.frame.node_id, pending.frame.seq);
  }
  if (!on_uplink(pending.frame)) {
    // Duplicate of an already-delivered packet: the device retransmitted
    // because its ACK was lost or unschedulable. The SoC report is ignored,
    // but the frame must still be acknowledged or the device will burn its
    // whole retransmission budget.
    if (metrics_ != nullptr) ++metrics_->gateway().duplicates;
  }
  if (!pending.frame.confirmed) {
    // Fire-and-forget uplink: no radio ACK. Deliver a synthetic,
    // bookkeeping-only confirmation so the node's metrics resolve; it
    // carries no w_u (there is no downlink to piggyback on).
    AckFrame note;
    note.node_id = pending.frame.node_id;
    note.seq = pending.frame.seq;
    Node* node = pending.node;
    const Time at = pending.uplink_end;
    pending_free_.push_back(slot);
    node->receive_ack(note, at);
    return;
  }
  pending.gateway->send_ack(*pending.node, pending.frame, pending.uplink_end, pending.sf,
                            pending.channel, theta_update);
  pending_free_.push_back(slot);
}

bool NetworkServer::on_uplink(const UplinkFrame& frame) {
  if (frame.node_id >= last_seq_.size()) {
    last_seq_.resize(static_cast<std::size_t>(frame.node_id) + 1, -1);
  }
  std::int64_t& seen = last_seq_[frame.node_id];
  if (seen >= 0) {
    // Sequence numbers increase monotonically per node; an equal or older
    // one is a duplicate (late retransmission).
    if (static_cast<std::int64_t>(frame.seq) <= seen) return false;
  }
  const std::int64_t prev_seen = seen;
  seen = frame.seq;
  if (audit_ != nullptr) {
    audit_->on_uplink_seq(frame.node_id, sim_.now(), static_cast<std::int64_t>(frame.seq),
                          prev_seen);
  }
  if (!frame.soc_report.empty()) {
    if (report_faults_.has_value()) {
      report_faults_->deliver(frame.node_id, frame.report_seq, frame.report_crc,
                              frame.soc_report, ingest_sink_);
    } else {
      service_.enqueue_report(frame.node_id, frame.report_seq, frame.report_crc,
                              frame.soc_report);
    }
  }
  return true;
}

double NetworkServer::w_for(std::uint32_t node_id) const {
  if (recomputes_ == 0) return 0.0;
  return service_.normalized_degradation(node_id);
}

void NetworkServer::checkpoint_state(StateWriter& w) {
  w.begin_section("server");
  w.put_u64(last_seq_.size());
  for (std::int64_t seq : last_seq_) w.put_i64(seq);
  w.put_u64(recomputes_);
  write_event(w, sim_, recompute_process_->pending_handle());

  w.put_u64(theta_.has_value() ? 1 : 0);
  if (theta_.has_value()) {
    const auto nodes = theta_->snapshot();
    w.put_u64(nodes.size());
    for (const ThetaController::NodeSnapshot& node : nodes) {
      w.put_u64(node.node_id);
      w.put_u64(node.last_seq);
      w.put_u64(node.has_seq ? 1 : 0);
      w.put_u64(node.delivered);
      w.put_u64(node.lost);
      w.put_double(node.theta);
    }
  }

  w.put_u64(adr_.has_value() ? 1 : 0);
  if (adr_.has_value()) {
    const auto nodes = adr_->snapshot();
    w.put_u64(nodes.size());
    for (const AdrController::NodeSnapshot& node : nodes) {
      w.put_u64(node.node_id);
      w.put_u64(node.snr_db.size());
      for (const double snr : node.snr_db) w.put_double(snr);
    }
  }

  w.put_u64(report_faults_.has_value() ? 1 : 0);
  if (report_faults_.has_value()) {
    const auto lanes = report_faults_->snapshot();
    w.put_u64(lanes.size());
    for (const ReportFaultChannel::LaneSnapshot& lane : lanes) {
      w.put_u64(lane.node_id);
      write_rng(w, lane.rng);
      w.put_u64(lane.holding ? 1 : 0);
      w.put_u64(lane.held_seq);
      w.put_u64(lane.held_crc);
      w.put_u64(lane.held_samples.size());
      for (const SocSample& sample : lane.held_samples) {
        write_time(w, sample.t);
        w.put_double(sample.soc);
      }
    }
    const ReportChannelCounters& c = report_faults_->counters();
    w.put_u64(c.delivered);
    w.put_u64(c.dropped);
    w.put_u64(c.duplicated);
    w.put_u64(c.reordered);
    w.put_u64(c.corrupted);
    w.put_u64(c.truncated);
  }

  // The ledger has its own checkpoint format ("blamledger v1", integrity
  // trailer included); it rides along as an opaque blob.
  std::ostringstream ledger;
  service_.checkpoint(ledger);
  w.put_blob(ledger.str());

  w.put_u64(pending_live_.size());
  for (const auto& [key, slot] : pending_live_) {
    const PendingFrame& pending = pending_pool_[slot];
    w.put_u64(key);
    w.put_i64(pending.gateway->id());
    w.put_u64(pending.node->id());
    write_uplink_frame(w, pending.frame);
    w.put_double(pending.best_rx_dbm);
    write_time(w, pending.uplink_end);
    w.put_u64(static_cast<std::uint64_t>(pending.sf));
    w.put_i64(pending.channel);
    write_event(w, sim_, pending.decide_event);
  }
  w.end_section();
}

void NetworkServer::restore_state(StateReader& r,
                                  const std::vector<std::unique_ptr<Gateway>>& gateways,
                                  const std::function<Node*(std::uint32_t)>& node_by_id) {
  r.begin_section("server");
  last_seq_.assign(r.get_u64(), -1);
  for (std::int64_t& seq : last_seq_) seq = r.get_i64();
  recomputes_ = r.get_u64();
  if (const auto e = read_event(r)) recompute_process_->restore_arm(e->time, e->seq);

  const bool has_theta = r.get_u64() != 0;
  if (has_theta != theta_.has_value()) {
    throw std::runtime_error{"NetworkServer::restore_state: theta controller mismatch"};
  }
  if (has_theta) {
    std::vector<ThetaController::NodeSnapshot> nodes(r.get_u64());
    for (ThetaController::NodeSnapshot& node : nodes) {
      node.node_id = static_cast<std::uint32_t>(r.get_u64());
      node.last_seq = static_cast<std::uint32_t>(r.get_u64());
      node.has_seq = r.get_u64() != 0;
      node.delivered = r.get_u64();
      node.lost = r.get_u64();
      node.theta = r.get_double();
    }
    theta_->restore(nodes);
  }

  const bool has_adr = r.get_u64() != 0;
  if (has_adr != adr_.has_value()) {
    throw std::runtime_error{"NetworkServer::restore_state: ADR controller mismatch"};
  }
  if (has_adr) {
    std::vector<AdrController::NodeSnapshot> nodes(r.get_u64());
    for (AdrController::NodeSnapshot& node : nodes) {
      node.node_id = static_cast<std::uint32_t>(r.get_u64());
      node.snr_db.resize(r.get_u64());
      for (double& snr : node.snr_db) snr = r.get_double();
    }
    adr_->restore(nodes);
  }

  const bool has_report_faults = r.get_u64() != 0;
  if (has_report_faults != report_faults_.has_value()) {
    throw std::runtime_error{"NetworkServer::restore_state: report fault channel mismatch"};
  }
  if (has_report_faults) {
    std::vector<ReportFaultChannel::LaneSnapshot> lanes(r.get_u64());
    for (ReportFaultChannel::LaneSnapshot& lane : lanes) {
      lane.node_id = static_cast<std::uint32_t>(r.get_u64());
      lane.rng = read_rng(r);
      lane.holding = r.get_u64() != 0;
      lane.held_seq = static_cast<std::uint16_t>(r.get_u64());
      lane.held_crc = static_cast<std::uint8_t>(r.get_u64());
      lane.held_samples.resize(r.get_u64());
      for (SocSample& sample : lane.held_samples) {
        sample.t = read_time(r);
        sample.soc = r.get_double();
      }
    }
    ReportChannelCounters counters;
    counters.delivered = r.get_u64();
    counters.dropped = r.get_u64();
    counters.duplicated = r.get_u64();
    counters.reordered = r.get_u64();
    counters.corrupted = r.get_u64();
    counters.truncated = r.get_u64();
    report_faults_->restore(lanes, counters);
  }

  std::istringstream ledger{r.get_blob()};
  service_.restore(ledger);

  pending_pool_.clear();
  pending_free_.clear();
  pending_live_.clear();
  const std::uint64_t n_pending = r.get_u64();
  for (std::uint64_t i = 0; i < n_pending; ++i) {
    const std::uint64_t key = r.get_u64();
    const std::uint32_t slot = acquire_pending_slot();
    pending_live_.emplace_back(key, slot);
    PendingFrame& pending = pending_pool_[slot];
    pending.live = true;
    const std::int64_t gateway_id = r.get_i64();
    pending.gateway = nullptr;
    for (const auto& gateway : gateways) {
      if (gateway->id() == gateway_id) {
        pending.gateway = gateway.get();
        break;
      }
    }
    if (pending.gateway == nullptr) {
      throw std::runtime_error{"NetworkServer::restore_state: unknown downlink gateway"};
    }
    pending.node = node_by_id(static_cast<std::uint32_t>(r.get_u64()));
    read_uplink_frame(r, pending.frame);
    pending.best_rx_dbm = r.get_double();
    pending.uplink_end = read_time(r);
    pending.sf = static_cast<SpreadingFactor>(r.get_u64());
    pending.channel = static_cast<int>(r.get_i64());
    if (const auto e = read_event(r)) {
      pending.decide_event = sim_.schedule_at_seq(e->time, e->seq, [this, slot] { decide(slot); });
    }
  }
  r.end_section();
}

void NetworkServer::recompute() {
  if (faults_ != nullptr && faults_->gateway_out(sim_.now())) {
    // Backhaul down at the dissemination instant: nodes keep their stale
    // w_u until the next period (the staleness-aware fallback on the device
    // covers the gap).
    if (metrics_ != nullptr) ++metrics_->gateway().recomputes_skipped;
    return;
  }
  service_.recompute(sim_.now());
  ++recomputes_;
  if (audit_ != nullptr && truth_probe_ && faults_ == nullptr) {
    // Feedback-consistency audit (level 1+, observe-only): on a fault-free
    // run the ledger's per-node estimate must stay close to the node's own
    // tracker. With any fault plan active, divergence is injected behavior,
    // not a bug — the check stays off.
    const Time now = sim_.now();
    for (const std::uint32_t id : service_.ids()) {
      audit_->on_feedback_ledger(id, now, service_.degradation(id), truth_probe_(id, now));
    }
  }
}

}  // namespace blam
