#include "net/experiment.hpp"

#include "net/network.hpp"

namespace blam {

ExperimentResult run_scenario(const ScenarioConfig& config, Time duration,
                              std::shared_ptr<const SolarTrace> shared_trace) {
  Network network{config, std::move(shared_trace)};
  network.run_until(duration);
  network.finalize_metrics();

  ExperimentResult result;
  result.label = config.policy_label();
  result.summary = network.metrics().summarize();
  result.gateway = network.metrics().gateway();
  result.window_histogram = network.metrics().majority_window_histogram(network.max_windows());
  result.nodes.reserve(network.metrics().node_count());
  for (std::size_t i = 0; i < network.metrics().node_count(); ++i) {
    result.nodes.push_back(network.metrics().node(i));
  }
  result.events_executed = network.simulator().events_executed();
  return result;
}

LifespanResult run_until_eol(const ScenarioConfig& config, Time max_duration, Time step,
                             std::shared_ptr<const SolarTrace> shared_trace) {
  Network network{config, std::move(shared_trace)};
  const double eol = config.degradation.eol_threshold;

  LifespanResult result;
  result.label = config.policy_label();
  result.series_step = step;

  Time now = Time::zero();
  while (now < max_duration) {
    now += step;
    network.run_until(now);
    const double max_deg = network.max_degradation();
    result.max_degradation_series.push_back(max_deg);
    if (max_deg >= eol) {
      result.reached_eol = true;
      result.lifespan = now;
      return result;
    }
  }
  result.lifespan = max_duration;
  return result;
}

std::shared_ptr<const SolarTrace> build_shared_trace(const ScenarioConfig& config) {
  Network probe{config};  // builds the sized trace without running
  return probe.share_trace();
}

namespace {

SweepOptions with_default_labels(SweepOptions options, const std::vector<ScenarioCell>& cells) {
  if (!options.label) {
    options.label = [&cells](std::size_t i) { return cells[i].config.policy_label(); };
  }
  return options;
}

}  // namespace

std::vector<ExperimentResult> run_scenarios(const std::vector<ScenarioCell>& cells, Time duration,
                                            SweepOptions options) {
  SweepRunner runner{with_default_labels(std::move(options), cells)};
  return runner.map(cells.size(), [&](std::size_t i) {
    return run_scenario(cells[i].config, duration, cells[i].trace);
  });
}

std::vector<LifespanResult> run_lifespans(const std::vector<ScenarioCell>& cells,
                                          Time max_duration, Time step, SweepOptions options) {
  SweepRunner runner{with_default_labels(std::move(options), cells)};
  return runner.map(cells.size(), [&](std::size_t i) {
    return run_until_eol(cells[i].config, max_duration, step, cells[i].trace);
  });
}

}  // namespace blam
