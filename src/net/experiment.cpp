#include "net/experiment.hpp"

#include <bit>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "net/network.hpp"
#include "net/scenario_io.hpp"
#include "sim/shard_engine.hpp"

namespace blam {
namespace {

// Recorded violations (throw_on_violation off) must still reach the user:
// one stderr block per run, summary plus the first few structured records.
void report_audit(const Auditor* audit) {
  if (audit == nullptr || audit->violation_count() == 0) return;
  std::fprintf(stderr, "[audit] %s\n", audit->summary().c_str());
  constexpr std::size_t kShow = 5;
  const auto& violations = audit->violations();
  for (std::size_t i = 0; i < violations.size() && i < kShow; ++i) {
    std::fprintf(stderr, "%s\n", violations[i].to_string().c_str());
  }
  if (audit->violation_count() > kShow) {
    std::fprintf(stderr, "[audit] ... and %zu more\n", audit->violation_count() - kShow);
  }
}

}  // namespace

ExperimentResult run_scenario(const ScenarioConfig& config, Time duration,
                              std::shared_ptr<const SolarTrace> shared_trace,
                              const CellToken* token) {
  // ShardedNetwork delegates to the serial Network unless the scenario both
  // asks for shards (config.shards / BLAM_SHARDS) and decomposes into more
  // than one collision domain; either way the results are bit-identical.
  ShardedNetwork network{config, std::move(shared_trace)};
  if (token != nullptr) {
    // Cancellation points: advance in slices and poll between them. Setting
    // the clock to an intermediate instant changes nothing about the event
    // trace, so the sliced run is bit-identical to one run_until(duration).
    constexpr std::int64_t kSlices = 128;
    const Time slice = Time::from_us(duration.us() / kSlices);
    if (slice > Time::zero()) {
      for (std::int64_t i = 1; i < kSlices; ++i) {
        token->throw_if_cancelled();
        network.run_until(slice * i);
      }
    }
    token->throw_if_cancelled();
  }
  network.run_until(duration);
  network.finalize_metrics();
  report_audit(network.auditor());

  ExperimentResult result;
  result.label = config.policy_label();
  result.summary = network.metrics().summarize();
  result.gateway = network.metrics().gateway();
  result.window_histogram = network.metrics().majority_window_histogram(network.max_windows());
  result.nodes.reserve(network.metrics().node_count());
  for (std::size_t i = 0; i < network.metrics().node_count(); ++i) {
    result.nodes.push_back(network.metrics().node(i));
  }
  result.events_executed = network.events_executed();
  return result;
}

LifespanResult run_until_eol(const ScenarioConfig& config, Time max_duration, Time step,
                             std::shared_ptr<const SolarTrace> shared_trace,
                             const CellToken* token) {
  ShardedNetwork network{config, std::move(shared_trace)};
  const double eol = config.degradation.eol_threshold;

  LifespanResult result;
  result.label = config.policy_label();
  result.series_step = step;

  Time now = Time::zero();
  while (now < max_duration) {
    if (token != nullptr) token->throw_if_cancelled();
    now += step;
    network.run_until(now);
    const double max_deg = network.max_degradation();
    result.max_degradation_series.push_back(max_deg);
    if (max_deg >= eol) {
      result.reached_eol = true;
      result.lifespan = now;
      report_audit(network.auditor());
      return result;
    }
  }
  result.lifespan = max_duration;
  report_audit(network.auditor());
  return result;
}

std::shared_ptr<const SolarTrace> build_shared_trace(const ScenarioConfig& config) {
  Network probe{config};  // builds the sized trace without running
  return probe.share_trace();
}

std::string serialize_lifespan_result(const LifespanResult& r) {
  std::string out = "L1 ";
  out += r.reached_eol ? '1' : '0';
  out += ' ';
  out += std::to_string(r.lifespan.us());
  out += ' ';
  out += std::to_string(r.series_step.us());
  out += ' ';
  out += std::to_string(r.max_degradation_series.size());
  char buf[24];
  for (const double v : r.max_degradation_series) {
    // Bit patterns, not decimal: "%.17g" round-trips too, but the bit image
    // makes "lossless" self-evident and NaN/Inf-proof.
    std::snprintf(buf, sizeof buf, " %016llx",
                  static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
    out += buf;
  }
  out += ' ';
  out += r.label;  // last: labels may contain spaces
  return out;
}

LifespanResult deserialize_lifespan_result(const std::string& payload) {
  std::istringstream in{payload};
  std::string tag;
  int reached = 0;
  std::int64_t lifespan_us = 0;
  std::int64_t step_us = 0;
  std::size_t n_series = 0;
  in >> tag >> reached >> lifespan_us >> step_us >> n_series;
  if (!in || tag != "L1" || (reached != 0 && reached != 1)) {
    throw std::runtime_error{"deserialize_lifespan_result: bad payload header: " + payload};
  }
  LifespanResult r;
  r.reached_eol = reached == 1;
  r.lifespan = Time::from_us(lifespan_us);
  r.series_step = Time::from_us(step_us);
  r.max_degradation_series.reserve(n_series);
  std::string word;
  for (std::size_t i = 0; i < n_series; ++i) {
    if (!(in >> word)) {
      throw std::runtime_error{"deserialize_lifespan_result: truncated series"};
    }
    std::size_t consumed = 0;
    const std::uint64_t bits = std::stoull(word, &consumed, 16);
    if (consumed != word.size()) {
      throw std::runtime_error{"deserialize_lifespan_result: bad series word: " + word};
    }
    r.max_degradation_series.push_back(std::bit_cast<double>(bits));
  }
  std::getline(in, r.label);
  if (!r.label.empty() && r.label.front() == ' ') r.label.erase(0, 1);
  return r;
}

namespace {

SweepOptions with_default_labels(SweepOptions options, const std::vector<ScenarioCell>& cells) {
  if (!options.label) {
    options.label = [&cells](std::size_t i) { return cells[i].config.policy_label(); };
  }
  return options;
}

}  // namespace

std::vector<ExperimentResult> run_scenarios(const std::vector<ScenarioCell>& cells, Time duration,
                                            SweepOptions options) {
  SweepRunner runner{with_default_labels(std::move(options), cells)};
  return runner.map(cells.size(), [&](std::size_t i) {
    return run_scenario(cells[i].config, duration, cells[i].trace);
  });
}

std::vector<LifespanResult> run_lifespans(const std::vector<ScenarioCell>& cells,
                                          Time max_duration, Time step, SweepOptions options) {
  SweepRunner runner{with_default_labels(std::move(options), cells)};
  return runner.map(cells.size(), [&](std::size_t i) {
    return run_until_eol(cells[i].config, max_duration, step, cells[i].trace);
  });
}

namespace {

/// Campaign identity for a cell: the full human-readable scenario dump plus
/// everything else the result depends on. Any config/seed/duration change
/// changes the key, so a stale journal can never be replayed into it.
std::vector<CampaignCell> campaign_cells(const std::vector<ScenarioCell>& cells,
                                         const std::string& run_kind, Time a, Time b) {
  std::vector<CampaignCell> out;
  out.reserve(cells.size());
  for (const ScenarioCell& cell : cells) {
    CampaignCell cc;
    cc.label = cell.config.policy_label();
    cc.seed = cell.config.seed;
    cc.config_text = describe_scenario(cell.config);
    cc.key = run_kind + " " + std::to_string(a.us()) + " " + std::to_string(b.us()) + "\n" +
             cc.config_text;
    out.push_back(std::move(cc));
  }
  return out;
}

}  // namespace

std::vector<ExperimentResult> run_scenarios(const std::vector<ScenarioCell>& cells, Time duration,
                                            CampaignOptions options) {
  if (!options.journal_path.empty()) {
    throw std::invalid_argument{
        "run_scenarios: ExperimentResult has no lossless codec, so these grids cannot be "
        "journaled; use the run_lifespans overload for resumable campaigns"};
  }
  const std::string quarantine_path = options.quarantine_path;
  options.sweep = with_default_labels(std::move(options.sweep), cells);
  Campaign campaign{campaign_cells(cells, "scenarios", duration, Time::zero()),
                    std::move(options)};
  // Results travel in a side vector (the journal is off, so Campaign's
  // string payloads carry nothing); slots are distinct per cell, making the
  // writes race-free across workers.
  std::vector<std::optional<ExperimentResult>> slots(cells.size());
  const CampaignReport report = campaign.run([&](std::size_t i, const CellToken& token) {
    slots[i] = run_scenario(cells[i].config, duration, cells[i].trace, &token);
    return std::string{};
  });
  throw_if_quarantined(report, quarantine_path);
  std::vector<ExperimentResult> results;
  results.reserve(slots.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

std::vector<LifespanResult> run_lifespans(const std::vector<ScenarioCell>& cells,
                                          Time max_duration, Time step, CampaignOptions options) {
  const std::string quarantine_path = options.quarantine_path;
  options.sweep = with_default_labels(std::move(options.sweep), cells);
  Campaign campaign{campaign_cells(cells, "lifespans", max_duration, step), std::move(options)};
  const CampaignReport report = campaign.run([&](std::size_t i, const CellToken& token) {
    return serialize_lifespan_result(
        run_until_eol(cells[i].config, max_duration, step, cells[i].trace, &token));
  });
  throw_if_quarantined(report, quarantine_path);
  std::vector<LifespanResult> results;
  results.reserve(report.results.size());
  // Fresh and journal-resumed payloads both pass through the codec here, so
  // the two paths cannot produce different in-memory results.
  for (const auto& payload : report.results) {
    results.push_back(deserialize_lifespan_result(*payload));
  }
  return results;
}

}  // namespace blam
