// Periodic network-state sampling: SoC / degradation / cycle-vs-calendar
// time series per node, collected between run_until() chunks and exportable
// as CSV — the plumbing behind the time-series figures and any external
// plotting.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace blam {

class Network;

class StateSampler {
 public:
  /// Attaches to a network (non-owning; the network must outlive the
  /// sampler).
  explicit StateSampler(const Network& network);

  /// Records one snapshot of every node at the network's current time.
  void sample();

  struct Snapshot {
    Time at{};
    std::vector<double> soc;
    std::vector<double> degradation;
    std::vector<double> calendar_linear;
    std::vector<double> cycle_linear;

    [[nodiscard]] double max_degradation() const;
    [[nodiscard]] double mean_soc() const;
  };

  [[nodiscard]] const std::vector<Snapshot>& snapshots() const { return snapshots_; }
  [[nodiscard]] std::size_t size() const { return snapshots_.size(); }

  /// Writes one row per (snapshot, node): time_days, node, soc,
  /// degradation, calendar, cycle. Throws std::runtime_error on I/O error.
  void write_csv(const std::string& path) const;

 private:
  const Network* network_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace blam
