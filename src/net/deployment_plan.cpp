#include "net/deployment_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numbers>

#include "lora/airtime.hpp"
#include "net/topology.hpp"

namespace blam {

Energy attempt_energy(const ScenarioConfig& config, SpreadingFactor sf) {
  TxParams params;
  params.sf = sf;
  params.bandwidth_hz = 125e3;
  params.payload_bytes = config.payload_bytes + 4;  // with SoC report
  params.tx_power_dbm = config.tx_power_dbm;
  params = params.with_auto_ldro();
  const Energy listen =
      config.radio.rx_power() * (config.timings.rx_window_duration * std::int64_t{2});
  return tx_energy(params, config.radio) + listen;
}

DeploymentPlan plan_deployment(const ScenarioConfig& config, const Rng& root) {
  Rng topo_rng = root.fork(salt::kTopology);
  Rng shadow_rng = root.fork(salt::kShadowing);
  Rng traffic_rng = root.fork(salt::kTraffic);

  DeploymentPlan plan;
  const Position center{0.0, 0.0};
  std::vector<Position> positions;
  if (config.gateway_grid_pitch_m > 0.0) {
    // City layout: gateways on a grid, node i clustered around gateway
    // (i mod G). Same two uniform draws per node as random_disk, so the
    // whole deployment still consumes a fixed, shard-independent number of
    // topo draws.
    plan.gateway_positions = grid(config.n_gateways, config.gateway_grid_pitch_m, center);
    positions.reserve(static_cast<std::size_t>(config.n_nodes));
    for (int i = 0; i < config.n_nodes; ++i) {
      const Position& gw =
          plan.gateway_positions[static_cast<std::size_t>(i) % plan.gateway_positions.size()];
      const double r = config.cluster_radius_m * std::sqrt(topo_rng.uniform());
      const double angle = topo_rng.uniform(0.0, 2.0 * std::numbers::pi);
      positions.push_back(Position{gw.x_m + r * std::cos(angle), gw.y_m + r * std::sin(angle)});
    }
  } else {
    positions = random_disk(config.n_nodes, config.radius_m, center, topo_rng);
    // Gateway placement: one in the centre, or several on a ring.
    if (config.n_gateways == 1) {
      plan.gateway_positions.push_back(center);
    } else {
      plan.gateway_positions =
          ring(config.n_gateways, config.radius_m * config.gateway_ring_fraction, center);
    }
  }

  // Per-node link budgets and SF assignment (against the BEST gateway).
  plan.nodes.reserve(positions.size());
  const std::int64_t min_period_min = static_cast<std::int64_t>(config.min_period.minutes());
  const std::int64_t max_period_min = static_cast<std::int64_t>(config.max_period.minutes());
  for (const Position& pos : positions) {
    NodePlan node;
    node.position = pos;
    node.best_loss_db = 1e300;
    for (const Position& gw : plan.gateway_positions) {
      const Link link{pos, gw, config.path_loss, shadow_rng};
      node.losses_db.push_back(link.total_loss_db());
      node.best_loss_db = std::min(node.best_loss_db, link.total_loss_db());
    }
    node.sf = config.fixed_sf;
    if (config.sf_assignment == SfAssignment::kDistanceBased) {
      // NS-3 "SetSpreadingFactorsUp" against the strongest gateway:
      // smallest SF that closes the uplink; nodes even SF12 cannot serve
      // keep SF12 (they will underperform, as in NS-3).
      const double rx_dbm = config.tx_power_dbm - node.best_loss_db;
      node.sf = SpreadingFactor::kSF12;
      for (SpreadingFactor sf : kAllSpreadingFactors) {
        if (rx_dbm >= gateway_sensitivity_dbm(sf) + config.sf_margin_db) {
          node.sf = sf;
          break;
        }
      }
    }
    // Sampling period: whole minutes in [min, max], fixed per node; all
    // nodes boot at t=0 (synchronized deployment), which gives the baseline
    // its harmonic window-0 collisions.
    node.period = Time::from_minutes(
        static_cast<double>(traffic_rng.uniform_int(min_period_min, max_period_min)));
    node.panel_scale = traffic_rng.uniform(config.panel_scale_min, config.panel_scale_max);
    plan.nodes.push_back(std::move(node));
  }

  // Worst-case one-attempt energy across the network ("enough for two
  // transmissions at peak", Sec. IV-A.1) and per-node battery sizing: sleep
  // floor plus one attempt per sampling period for battery_days days.
  plan.worst_attempt_energy = Energy::zero();
  for (NodePlan& node : plan.nodes) {
    const Energy per_attempt = attempt_energy(config, node.sf);
    plan.worst_attempt_energy = std::max(plan.worst_attempt_energy, per_attempt);
    const double packets_per_day = 86400.0 / node.period.seconds();
    const Energy daily =
        config.radio.sleep_power() * Time::from_days(1.0) + per_attempt * packets_per_day;
    node.battery_capacity = daily * config.battery_days;
  }
  return plan;
}

std::shared_ptr<const SolarTrace> build_deployment_trace(const ScenarioConfig& config,
                                                         Energy worst_attempt) {
  SolarTraceConfig solar = config.solar;
  if (!config.solar_peak_explicit) {
    solar.peak = Power::from_watts(config.solar_tx_per_window * worst_attempt.joules() /
                                   config.forecast_window.seconds());
  }
  // Weather follows the scenario seed, but an explicitly varied solar.seed
  // still selects a different realization.
  std::uint64_t weather_seed = config.seed ^ (config.solar.seed * 0x9e3779b97f4a7c15ULL);
  solar.seed = splitmix64(weather_seed);
  return std::make_shared<const SolarTrace>(solar);
}

std::size_t resolve_ingest_batch(const ScenarioConfig& config) {
  std::size_t ingest_batch = config.ingest_batch;
  if (const char* env = std::getenv("BLAM_INGEST_BATCH")) {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      ingest_batch = static_cast<std::size_t>(parsed);
    }
  }
  return ingest_batch;
}

}  // namespace blam
