// Experiment runners shared by the bench binaries and integration tests:
// run a scenario for a fixed duration and collect the figure metrics, run
// until the first battery reaches end of life (Figs. 7-8), or fan a grid of
// independent scenario cells across cores via SweepRunner.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "energy/solar.hpp"
#include "net/metrics.hpp"
#include "net/scenario.hpp"
#include "sim/sweep_runner.hpp"

namespace blam {

struct ExperimentResult {
  std::string label;
  NetworkSummary summary;
  GatewayMetrics gateway;
  /// result[w] = nodes whose majority-selected window is w (Fig. 4).
  std::vector<int> window_histogram;
  /// Per-node records for distribution plots.
  std::vector<NodeMetrics> nodes;
  std::uint64_t events_executed{0};
};

/// Runs `config` for `duration` of simulated time. If `shared_trace` is
/// non-null the scenario uses that weather instead of synthesizing its own
/// (so protocol variants face identical conditions).
[[nodiscard]] ExperimentResult run_scenario(const ScenarioConfig& config, Time duration,
                                            std::shared_ptr<const SolarTrace> shared_trace = nullptr);

struct LifespanResult {
  std::string label;
  /// Time of the first battery EoL, quantized to the sampling step.
  Time lifespan{};
  bool reached_eol{false};
  /// Max degradation across the network at each sampling step (Fig. 7).
  std::vector<double> max_degradation_series;
  Time series_step{};
};

/// Runs `config` until the first node's battery degrades past the model's
/// EoL threshold (or `max_duration`), sampling max degradation every `step`.
[[nodiscard]] LifespanResult run_until_eol(const ScenarioConfig& config, Time max_duration,
                                           Time step,
                                           std::shared_ptr<const SolarTrace> shared_trace = nullptr);

/// Builds (or reuses) the weather shared by a batch of compared scenarios.
[[nodiscard]] std::shared_ptr<const SolarTrace> build_shared_trace(const ScenarioConfig& config);

/// One cell of a scenario grid: a config plus (optionally) the weather it
/// shares with sibling cells. A null trace lets the Network synthesize its
/// own from config.seed. Cells are fully independent — each builds its own
/// Network whose random streams derive from config.seed alone — so a grid
/// can run under any worker count with bit-identical results (SolarTrace is
/// immutable after construction and safe to share across workers).
struct ScenarioCell {
  ScenarioConfig config;
  std::shared_ptr<const SolarTrace> trace;
};

/// Runs every cell for `duration` via SweepRunner (BLAM_JOBS workers by
/// default) and returns results in cell order, bit-identical to calling
/// run_scenario on each cell serially. Progress labels default to the cell's
/// policy label.
[[nodiscard]] std::vector<ExperimentResult> run_scenarios(const std::vector<ScenarioCell>& cells,
                                                          Time duration,
                                                          SweepOptions options = {});

/// Parallel analogue of run_until_eol over a grid of cells.
[[nodiscard]] std::vector<LifespanResult> run_lifespans(const std::vector<ScenarioCell>& cells,
                                                        Time max_duration, Time step,
                                                        SweepOptions options = {});

}  // namespace blam
