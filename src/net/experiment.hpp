// Experiment runners shared by the bench binaries and integration tests:
// run a scenario for a fixed duration and collect the figure metrics, or run
// until the first battery reaches end of life (Figs. 7-8).
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "energy/solar.hpp"
#include "net/metrics.hpp"
#include "net/scenario.hpp"

namespace blam {

struct ExperimentResult {
  std::string label;
  NetworkSummary summary;
  GatewayMetrics gateway;
  /// result[w] = nodes whose majority-selected window is w (Fig. 4).
  std::vector<int> window_histogram;
  /// Per-node records for distribution plots.
  std::vector<NodeMetrics> nodes;
  std::uint64_t events_executed{0};
};

/// Runs `config` for `duration` of simulated time. If `shared_trace` is
/// non-null the scenario uses that weather instead of synthesizing its own
/// (so protocol variants face identical conditions).
[[nodiscard]] ExperimentResult run_scenario(const ScenarioConfig& config, Time duration,
                                            std::shared_ptr<const SolarTrace> shared_trace = nullptr);

struct LifespanResult {
  std::string label;
  /// Time of the first battery EoL, quantized to the sampling step.
  Time lifespan{};
  bool reached_eol{false};
  /// Max degradation across the network at each sampling step (Fig. 7).
  std::vector<double> max_degradation_series;
  Time series_step{};
};

/// Runs `config` until the first node's battery degrades past the model's
/// EoL threshold (or `max_duration`), sampling max degradation every `step`.
[[nodiscard]] LifespanResult run_until_eol(const ScenarioConfig& config, Time max_duration,
                                           Time step,
                                           std::shared_ptr<const SolarTrace> shared_trace = nullptr);

/// Builds (or reuses) the weather shared by a batch of compared scenarios.
[[nodiscard]] std::shared_ptr<const SolarTrace> build_shared_trace(const ScenarioConfig& config);

}  // namespace blam
