// Experiment runners shared by the bench binaries and integration tests:
// run a scenario for a fixed duration and collect the figure metrics, run
// until the first battery reaches end of life (Figs. 7-8), or fan a grid of
// independent scenario cells across cores via SweepRunner.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "energy/solar.hpp"
#include "net/metrics.hpp"
#include "net/scenario.hpp"
#include "sim/campaign.hpp"
#include "sim/sweep_runner.hpp"

namespace blam {

struct ExperimentResult {
  std::string label;
  NetworkSummary summary;
  GatewayMetrics gateway;
  /// result[w] = nodes whose majority-selected window is w (Fig. 4).
  std::vector<int> window_histogram;
  /// Per-node records for distribution plots.
  std::vector<NodeMetrics> nodes;
  std::uint64_t events_executed{0};
};

/// Runs `config` for `duration` of simulated time. If `shared_trace` is
/// non-null the scenario uses that weather instead of synthesizing its own
/// (so protocol variants face identical conditions). A non-null `token`
/// makes the run cancellable: the simulation advances in slices and throws
/// CellTimeout between them when the watchdog fired — slicing run_until is
/// bit-identical to a single call.
[[nodiscard]] ExperimentResult run_scenario(const ScenarioConfig& config, Time duration,
                                            std::shared_ptr<const SolarTrace> shared_trace = nullptr,
                                            const CellToken* token = nullptr);

struct LifespanResult {
  std::string label;
  /// Time of the first battery EoL, quantized to the sampling step.
  Time lifespan{};
  bool reached_eol{false};
  /// Max degradation across the network at each sampling step (Fig. 7).
  std::vector<double> max_degradation_series;
  Time series_step{};
};

/// Runs `config` until the first node's battery degrades past the model's
/// EoL threshold (or `max_duration`), sampling max degradation every `step`.
/// A non-null `token` is polled at every step (see run_scenario).
[[nodiscard]] LifespanResult run_until_eol(const ScenarioConfig& config, Time max_duration,
                                           Time step,
                                           std::shared_ptr<const SolarTrace> shared_trace = nullptr,
                                           const CellToken* token = nullptr);

/// Lossless text codec for LifespanResult: doubles are stored as their bit
/// patterns, so deserialize(serialize(r)) == r down to the last bit. This is
/// the campaign-journal payload format — a resumed cell's result is
/// indistinguishable from a freshly computed one.
[[nodiscard]] std::string serialize_lifespan_result(const LifespanResult& result);
/// Inverse of serialize_lifespan_result; throws std::runtime_error on a
/// payload it does not recognize.
[[nodiscard]] LifespanResult deserialize_lifespan_result(const std::string& payload);

/// Builds (or reuses) the weather shared by a batch of compared scenarios.
[[nodiscard]] std::shared_ptr<const SolarTrace> build_shared_trace(const ScenarioConfig& config);

/// One cell of a scenario grid: a config plus (optionally) the weather it
/// shares with sibling cells. A null trace lets the Network synthesize its
/// own from config.seed. Cells are fully independent — each builds its own
/// Network whose random streams derive from config.seed alone — so a grid
/// can run under any worker count with bit-identical results (SolarTrace is
/// immutable after construction and safe to share across workers).
struct ScenarioCell {
  ScenarioConfig config;
  std::shared_ptr<const SolarTrace> trace;
};

/// Runs every cell for `duration` via SweepRunner (BLAM_JOBS workers by
/// default) and returns results in cell order, bit-identical to calling
/// run_scenario on each cell serially. Progress labels default to the cell's
/// policy label.
[[nodiscard]] std::vector<ExperimentResult> run_scenarios(const std::vector<ScenarioCell>& cells,
                                                          Time duration,
                                                          SweepOptions options = {});

/// Parallel analogue of run_until_eol over a grid of cells.
[[nodiscard]] std::vector<LifespanResult> run_lifespans(const std::vector<ScenarioCell>& cells,
                                                        Time max_duration, Time step,
                                                        SweepOptions options = {});

/// Crash-tolerant analogue of run_scenarios: per-cell watchdog, retry, and
/// quarantine via Campaign. Throws (naming the quarantine file) if any cell
/// failed all attempts. ExperimentResult has no lossless codec, so this
/// overload rejects a non-empty journal_path (std::invalid_argument) — use
/// the run_lifespans overload for resumable grids.
[[nodiscard]] std::vector<ExperimentResult> run_scenarios(const std::vector<ScenarioCell>& cells,
                                                          Time duration, CampaignOptions options);

/// Crash-tolerant, resumable analogue of run_lifespans. Each cell's identity
/// (the journal key) covers the full scenario description, the durations and
/// the seed; with a journal_path set, an interrupted grid re-run skips the
/// journaled cells and reproduces their results bit-identically. Every
/// result — fresh or resumed — is round-tripped through the lifespan codec,
/// so the two paths cannot diverge. Throws if any cell was quarantined.
[[nodiscard]] std::vector<LifespanResult> run_lifespans(const std::vector<ScenarioCell>& cells,
                                                        Time max_duration, Time step,
                                                        CampaignOptions options);

}  // namespace blam
