// End device: sensor node with a solar harvester, a software-defined
// battery, the class-A LoRaWAN transmission ladder, and a pluggable MAC
// policy (LoRaWAN / BLAM / theta-only).
//
// Lifecycle per sampling period (all nodes boot at t=0, synchronized
// deployment):
//   1. wake at the period boundary; integrate sleep consumption and harvest
//      since the last event through the power switch; refresh capacity fade;
//   2. generate one packet and ask the MAC policy for a forecast window
//      (BLAM runs Algorithm 1 over per-window solar forecasts and energy
//      estimates; LoRaWAN answers "window 0");
//   3. at the chosen instant run the class-A ladder: up to 8 transmissions,
//      each = TX + RX1/RX2 listen, funded green-first with the battery
//      covering deficits; no ACK by the window close => random backoff and
//      retransmit;
//   4. on ACK: update metrics, EWMA energy estimate (Eq. 13), the per-window
//      retransmission history (Eq. 14), and adopt the piggy-backed w_u.
//
// Energy bookkeeping is event-lazy: the battery state only advances at node
// events, with harvest integrated in O(1) from the cumulative solar trace —
// this is what makes 500 nodes x 15 years tractable.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "degradation/tracker.hpp"
#include "energy/battery.hpp"
#include "energy/power_switch.hpp"
#include "energy/solar.hpp"
#include "energy/supercap.hpp"
#include "energy/thermal.hpp"
#include "forecast/ewma.hpp"
#include "forecast/retx_estimator.hpp"
#include "forecast/solar_forecaster.hpp"
#include "lora/airtime.hpp"
#include "lora/channel_plan.hpp"
#include "lora/tx_timing_cache.hpp"
#include "lora/link.hpp"
#include "mac/device_mac.hpp"
#include "mac/duty_cycle.hpp"
#include "mac/frame.hpp"
#include "net/metrics.hpp"
#include "net/packet_log.hpp"
#include "net/scenario.hpp"
#include "sim/simulator.hpp"

namespace blam {

class Auditor;
class Gateway;
class StateReader;
class StateWriter;

class Node {
 public:
  struct Init {
    std::uint32_t id{0};
    Position position{};
    Time period{};
    SpreadingFactor sf{SpreadingFactor::kSF10};
    /// Path loss (dB) to each gateway, indexed by gateway id.
    std::vector<double> link_losses_db;
    Energy battery_capacity{};
    double panel_scale{1.0};
  };

  Node(const Init& init, const ScenarioConfig& config, Simulator& sim,
       const std::vector<std::unique_ptr<Gateway>>& gateways, const ChannelPlan& plan,
       const SolarTrace& trace, const DegradationModel& model, const TemperatureModel& thermal,
       const UtilityFunction& utility, NodeMetrics& metrics, Rng rng);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Attaches the optional packet-event log (nullptr = disabled). Call
  /// before start().
  void attach_packet_log(PacketLog* log) { packet_log_ = log; }

  /// Attaches the invariant auditor (nullptr = disabled): every power-switch
  /// flow, storage loss, SoC sample, fade update, transmission and accepted
  /// ACK is reported. Observe-only — results are bit-identical either way.
  /// Call before start().
  void attach_auditor(Auditor* auditor) { audit_ = auditor; }

  /// Attaches the fault-injection plan (nullptr = no faults): harvest
  /// droughts scale this node's harvest, crash events are scheduled from a
  /// dedicated per-node stream, and outage/recovery metrics activate. Call
  /// before start().
  void attach_fault_plan(const FaultPlan* faults);

  /// Schedules the first sampling period at t = 0.
  void start();

  /// Gateway delivers a decoded ACK; `ack_end` is when its airtime finishes.
  void receive_ack(const AckFrame& ack, Time ack_end);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] Position position() const { return position_; }
  /// Path loss to a specific gateway.
  [[nodiscard]] double link_loss_db(int gateway_id) const {
    return link_losses_db_.at(static_cast<std::size_t>(gateway_id));
  }
  /// Best (lowest) path loss across gateways.
  [[nodiscard]] double min_link_loss_db() const { return min_link_loss_db_; }
  [[nodiscard]] SpreadingFactor sf() const { return tx_params_.sf; }
  /// Current radio parameters in ADR-command form (what the server adjusts).
  [[nodiscard]] AdrCommand radio_params() const {
    return AdrCommand{tx_params_.sf, tx_params_.tx_power_dbm};
  }
  [[nodiscard]] Time period() const { return period_; }
  [[nodiscard]] int n_windows() const { return n_windows_; }
  [[nodiscard]] double w_u() const { return w_u_; }
  [[nodiscard]] const Battery& battery() const { return battery_; }
  [[nodiscard]] const Supercap* supercap() const {
    return supercap_.has_value() ? &*supercap_ : nullptr;
  }
  [[nodiscard]] const DegradationTracker& tracker() const { return tracker_; }
  [[nodiscard]] const MacPolicy& policy() const { return *policy_; }

  /// Ground-truth degradation right now (advances the SoC integral virtually).
  [[nodiscard]] double degradation_now(Time now) const { return tracker_.degradation(now); }

  /// Copies degradation ground truth into the metrics record.
  void finalize_metrics(Time now);

  /// Serializes everything that diverges from a freshly constructed node —
  /// radio params, RNG streams, storage, estimators, the in-flight packet,
  /// the metrics row, and every pending event — into an engine checkpoint
  /// (see sim/checkpoint.hpp).
  void checkpoint_state(StateWriter& w) const;

  /// Restores state captured by checkpoint_state into a freshly built node
  /// whose event queue has been cleared; re-schedules this node's pending
  /// events under their original sequence numbers.
  void restore_state(StateReader& r);

 private:
  void on_period_start();
  void start_attempt();
  void on_ack_timeout();

  /// Crash/reboot fault: wipes volatile estimator state (EWMA, retx
  /// histogram, w_u) and keeps the node dark for the reboot duration.
  void on_crash();
  void schedule_next_crash();

  /// Integrates sleep consumption + harvest over [last_account_, now].
  void account_to(Time now);

  /// Routes one interval through the power switch; with an auditor attached
  /// the flow plus the surrounding total-storage snapshot is reported.
  PowerFlow apply_flow(Energy harvest, Energy demand, Time at);

  /// Total stored energy right now (battery + supercap).
  [[nodiscard]] Energy total_stored() const {
    return supercap_.has_value() ? battery_.stored() + supercap_->stored() : battery_.stored();
  }

  /// Harvest over [t0, t1], with the fault plan's drought scaling applied
  /// when one is attached.
  [[nodiscard]] Energy harvest_between(Time t0, Time t1) const;

  /// Energy one transmission attempt costs: TX airtime + both RX windows.
  [[nodiscard]] Energy attempt_demand(const TxParams& params) const;

  /// Span an attempt occupies: airtime + RX2 delay + RX window.
  [[nodiscard]] Time attempt_span(const TxParams& params) const;

  void record_soc(Time t);
  void log_event(PacketEventKind kind, int attempt = -1);
  void update_capacity_fade(Time now);
  /// Applies a server ADR command: new SF / TX power, refreshed energy
  /// constants (the EWMA then converges to the new per-attempt cost).
  void apply_adr(const AdrCommand& command);
  /// Shared failure path: latency penalty, optional estimator updates.
  /// Callers bump the counter matching the failure cause.
  void abort_packet(bool record_history);
  /// Fills and returns the reusable frame scratch (valid until the next
  /// build_frame call); receivers copy what they keep.
  [[nodiscard]] const UplinkFrame& build_frame();

  // --- identity / configuration -------------------------------------------
  std::uint32_t id_;
  // blam-ckpt: skip -- deployment output; plan_deployment replays deterministically from the scenario seed
  Position position_;
  // blam-ckpt: skip -- deployment output; plan_deployment replays deterministically from the scenario seed
  Time period_;
  // blam-ckpt: skip -- derived from the scenario (windows_for) at construction
  int n_windows_;
  TxParams tx_params_;
  // blam-ckpt: skip -- deployment output; plan_deployment replays deterministically from the scenario seed
  std::vector<double> link_losses_db_;
  // blam-ckpt: skip -- derived from link_losses_db_ at construction
  double min_link_loss_db_;
  // blam-ckpt: skip -- scenario input; the engine is rebuilt from the same config before restore
  const ScenarioConfig* config_;
  // blam-ckpt: skip -- wiring; the clock itself is restored through the simulator section
  Simulator* sim_;
  // blam-ckpt: skip -- wiring, re-attached at construction
  const std::vector<std::unique_ptr<Gateway>>* gateways_;
  // blam-ckpt: skip -- wiring; the channel plan is a pure function of the scenario
  const ChannelPlan* plan_;
  // blam-ckpt: skip -- wiring; the thermal model is a pure function of the scenario
  const TemperatureModel* thermal_;
  // blam-ckpt: skip -- wiring; the utility function is a pure function of the scenario
  const UtilityFunction* utility_;
  NodeMetrics* metrics_;
  // blam-ckpt: skip -- observability wiring; packet-log runs refuse checkpoints
  PacketLog* packet_log_{nullptr};
  // blam-ckpt: skip -- wiring; fault-plan state rides in the engine slice's faults section
  const FaultPlan* faults_{nullptr};
  // blam-ckpt: skip -- observability wiring; audited runs refuse checkpoints
  Auditor* audit_{nullptr};

  // --- energy subsystem ----------------------------------------------------
  Battery battery_;
  Harvester harvester_;
  std::optional<Supercap> supercap_;
  PowerSwitch switch_;
  DegradationTracker tracker_;
  SolarForecaster forecaster_;
  Ewma etx_ewma_;
  RetxEstimator retx_estimator_;
  std::unique_ptr<MacPolicy> policy_;
  DutyCycleLimiter duty_cycle_;
  Rng rng_;

  // --- running state -------------------------------------------------------
  Time last_account_{Time::zero()};
  Time last_fade_update_{Time::zero()};
  double w_u_{0.0};
  /// When w_u was last refreshed from an ACK (staleness clock; boot = 0).
  Time last_w_update_{Time::zero()};
  /// Most recent delivered packet (recovery-time observability).
  Time last_delivery_at_{Time::zero()};
  /// Straight confirmed packets that ended without any ACK (drives the
  /// bounded exponential backoff when ScenarioConfig::ack_failure_backoff).
  int consecutive_ackless_{0};
  /// Crash/reboot fault state: the node is dark until this instant.
  Time rebooting_until_{Time::zero()};
  std::optional<Rng> crash_rng_;
  std::uint32_t next_seq_{1};
  /// SoC-report generation counter (volatile MCU state: resets on crash,
  /// which is how the gateway ledger detects the reboot). Incremented once
  /// per packet that carries a report; retransmissions of the same packet
  /// reuse the generation.
  std::uint16_t report_seq_{0};
  /// Packet seq the current report generation was stamped for.
  std::uint32_t last_report_packet_{0};
  // blam-ckpt: skip -- derived constant, recomputed from TxParams at construction and on ADR changes
  Energy single_attempt_energy_{};  // one TX + RX windows; EWMA warm-up value
  // blam-ckpt: skip -- derived constant, recomputed from TxParams at construction and on ADR changes
  Energy max_packet_energy_{};      // DIF normalizer: full retransmission budget
  // blam-ckpt: skip -- derived constant (both RX windows), fixed by the scenario radio/timings
  Energy listen_energy_{};          // both class-A RX windows (constant per run)
  /// Memoized airtime/energy per TxParams; mutable because the const cost
  /// estimators (attempt_demand/attempt_span) share it with start_attempt().
  // blam-ckpt: skip -- memo cache; entries regenerate on demand from TxParams
  mutable TxTimingCache timing_;

  struct Pending {
    bool active{false};
    std::uint32_t seq{0};
    Time generated_at{};
    int window{0};
    int transmissions{0};  // completed transmissions of this packet
    Energy spent{};        // TX energy spent on this packet so far
    EventHandle timeout{};
    /// Backoff-scheduled retransmission; must be cancelled whenever the
    /// packet resolves, or the stale event fires into the next packet.
    EventHandle retx{};
  };
  Pending pending_;

  // Owned standalone events (checkpointed alongside Pending's handles).
  /// The next on_period_start event (always armed while the sim runs).
  EventHandle period_event_{};
  /// The next on_crash event (armed iff crash faults are enabled).
  EventHandle crash_event_{};
  /// The start_attempt event placed inside the chosen forecast window; a
  /// crash can abort the packet while this is still pending (it then fires
  /// as a guarded no-op, which still counts as an executed event).
  EventHandle window_tx_{};

  // SoC transition points for the next uplink report (paper: two points).
  SocSample period_start_sample_{};
  SocSample latest_sample_{};
  bool has_samples_{false};

  // Scratch buffers reused every period (no per-period allocation).
  // blam-ckpt: skip -- per-period scratch, overwritten before every use
  std::vector<Energy> harvest_scratch_;
  // blam-ckpt: skip -- per-period scratch, overwritten before every use
  std::vector<Energy> cost_scratch_;
  // blam-ckpt: skip -- per-period scratch, overwritten before every use
  WindowSelector::Workspace selector_workspace_;
  // blam-ckpt: skip -- per-attempt scratch, rebuilt by build_frame() before every transmission
  UplinkFrame frame_scratch_;
};

}  // namespace blam
