#include "net/metrics.hpp"

#include <algorithm>

namespace blam {

int NodeMetrics::majority_window() const {
  if (window_counts.empty()) return -1;
  const auto it = std::max_element(window_counts.begin(), window_counts.end());
  if (*it == 0) return -1;
  return static_cast<int>(it - window_counts.begin());
}

void NodeMetrics::count_window(int window) {
  if (window < 0) return;
  if (static_cast<std::size_t>(window) >= window_counts.size()) {
    window_counts.resize(static_cast<std::size_t>(window) + 1, 0);
  }
  ++window_counts[static_cast<std::size_t>(window)];
}

Metrics::Metrics(std::size_t n_nodes) : nodes_(n_nodes) {}

NetworkSummary Metrics::summarize() const {
  NetworkSummary s;
  if (nodes_.empty()) return s;
  std::vector<double> prr;
  std::vector<double> utility;
  std::vector<double> latency;
  std::vector<double> degradation;
  double retx_sum = 0.0;
  double latency_max = 0.0;
  RunningStats delivered_latency;
  RunningStats recovery;
  RunningStats w_age;
  for (const NodeMetrics& n : nodes_) {
    prr.push_back(n.prr());
    utility.push_back(n.avg_utility());
    latency.push_back(n.latency_s.mean());
    degradation.push_back(n.degradation);
    retx_sum += n.avg_retx();
    latency_max = std::max(latency_max, n.latency_s.max());
    delivered_latency.merge(n.delivered_latency_s);
    s.total_tx_energy += n.tx_energy;
    s.lost_in_outage += n.lost_in_outage;
    s.crashes += n.crashes;
    recovery.merge(n.recovery_s);
    w_age.merge(n.w_age_s);
  }
  s.total_outage_s = total_outage_s_;
  s.feedback = feedback_;
  s.serial_reason = serial_reason_;
  s.mean_recovery_s = recovery.mean();
  s.max_recovery_s = recovery.max();
  s.mean_w_age_s = w_age.mean();
  s.max_w_age_s = w_age.max();
  s.mean_delivered_latency_s = delivered_latency.mean();
  s.max_delivered_latency_s = delivered_latency.max();
  const auto count = static_cast<double>(nodes_.size());
  s.prr_box = summarize_box(prr);
  s.utility_box = summarize_box(utility);
  s.latency_box = summarize_box(latency);
  s.degradation_box = summarize_box(degradation);
  s.mean_prr = s.prr_box.mean;
  s.min_prr = s.prr_box.min;
  s.mean_utility = s.utility_box.mean;
  s.mean_latency_s = s.latency_box.mean;
  s.max_latency_s = latency_max;
  s.mean_retx = retx_sum / count;
  s.max_degradation = s.degradation_box.max;
  return s;
}

std::vector<int> Metrics::majority_window_histogram(int n_windows) const {
  std::vector<int> histogram(static_cast<std::size_t>(std::max(n_windows, 1)), 0);
  for (const NodeMetrics& n : nodes_) {
    const int w = n.majority_window();
    if (w < 0) continue;
    const auto idx = std::min(static_cast<std::size_t>(w), histogram.size() - 1);
    ++histogram[idx];
  }
  return histogram;
}

}  // namespace blam
