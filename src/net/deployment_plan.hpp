// Deployment planning: the RNG-consuming phase of Network construction
// (topology, shadowing, per-node traffic draws) factored out so the serial
// Network and the sharded engine (sim/shard_engine.hpp) build from one
// plan with one draw order. For the legacy centre/ring layouts the draw
// sequence is byte-for-byte the historical Network::build sequence; the
// grid/cluster city layout (gateway_grid_pitch_m > 0) is new and has no
// compatibility constraint.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "energy/solar.hpp"
#include "lora/link.hpp"
#include "lora/params.hpp"
#include "net/scenario.hpp"

namespace blam {

/// Everything about one node that is decided before the simulation starts.
struct NodePlan {
  Position position{};
  /// Frozen link budget to every gateway, indexed by gateway id.
  std::vector<double> losses_db;
  double best_loss_db{0.0};
  SpreadingFactor sf{SpreadingFactor::kSF10};
  Time period{};
  double panel_scale{1.0};
  /// Battery sized for `battery_days` of operation without recharge.
  Energy battery_capacity{};
};

struct DeploymentPlan {
  std::vector<Position> gateway_positions;
  std::vector<NodePlan> nodes;
  /// Worst-case one-attempt energy across the fleet (sizes the solar peak).
  Energy worst_attempt_energy{};
};

/// Energy of one transmission attempt (uplink at `sf` + both RX windows).
[[nodiscard]] Energy attempt_energy(const ScenarioConfig& config, SpreadingFactor sf);

/// Draws the full deployment from the scenario root rng. `root` is only
/// forked (fork() is const and order-independent), never advanced.
[[nodiscard]] DeploymentPlan plan_deployment(const ScenarioConfig& config, const Rng& root);

/// Builds the solar trace for a deployment (peak sized from the worst-case
/// attempt energy unless solar_peak_explicit).
[[nodiscard]] std::shared_ptr<const SolarTrace> build_deployment_trace(
    const ScenarioConfig& config, Energy worst_attempt);

/// Ingestion-queue watermark: scenario knob overridable via BLAM_INGEST_BATCH.
[[nodiscard]] std::size_t resolve_ingest_batch(const ScenarioConfig& config);

}  // namespace blam
