// Network: composes the simulator, solar trace, gateway, network server and
// all nodes from a ScenarioConfig, runs the simulation, and exposes the
// metrics the figures need.
#pragma once

#include <memory>
#include <vector>

#include "audit/audit.hpp"
#include "common/rng.hpp"
#include "energy/solar.hpp"
#include "energy/thermal.hpp"
#include "fault/fault_plan.hpp"
#include "lora/channel_plan.hpp"
#include "net/gateway.hpp"
#include "net/metrics.hpp"
#include "net/interferer.hpp"
#include "net/network_server.hpp"
#include "net/packet_log.hpp"
#include "net/node.hpp"
#include "net/scenario.hpp"
#include "sim/simulator.hpp"

namespace blam {

class Network {
 public:
  explicit Network(const ScenarioConfig& config);

  /// Optionally reuse a pre-built trace (several scenarios share the same
  /// year of weather, e.g. the LoRaWAN/H-50 comparisons).
  Network(const ScenarioConfig& config, std::shared_ptr<const SolarTrace> trace);

  /// Advances the simulation to `until` (absolute simulation time).
  void run_until(Time until);

  /// Ground-truth maximum degradation across nodes right now.
  [[nodiscard]] double max_degradation() const;

  /// Copies per-node degradation ground truth into the metrics records.
  void finalize_metrics();

  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] const Simulator& simulator() const { return sim_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  [[nodiscard]] const SolarTrace& solar_trace() const { return *trace_; }
  [[nodiscard]] std::shared_ptr<const SolarTrace> share_trace() const { return trace_; }
  [[nodiscard]] const NetworkServer& server() const { return *server_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Gateway>>& gateways() const {
    return gateways_;
  }
  /// Non-null only when ScenarioConfig::packet_log is set.
  [[nodiscard]] const PacketLog* packet_log() const { return packet_log_.get(); }
  /// Non-null only when at least one fault source is configured.
  [[nodiscard]] const FaultPlan* fault_plan() const { return faults_.get(); }
  /// Non-null only when the effective audit level (ScenarioConfig::audit
  /// overlaid with BLAM_AUDIT / BLAM_AUDIT_THROW) is > 0.
  [[nodiscard]] const Auditor* auditor() const { return audit_.get(); }
  [[nodiscard]] Energy worst_case_attempt_energy() const { return worst_attempt_energy_; }

  /// Maximum forecast-window count across nodes (Fig. 4 histogram width).
  [[nodiscard]] int max_windows() const;

  /// Serializes the whole engine slice (clock + server + gateways + nodes +
  /// fault channels) at a quiescent instant — call only between run_until
  /// calls. Throws std::runtime_error for configurations with unserialized
  /// components (audit, packet log, external interferer).
  void checkpoint_state(StateWriter& w);

  /// Restores a checkpoint written by checkpoint_state into this freshly
  /// built network (same ScenarioConfig, not yet run).
  void restore_state(StateReader& r);

 private:
  /// Throws if any configured feature is outside the checkpoint's coverage.
  void assert_checkpointable() const;
  void build(std::shared_ptr<const SolarTrace> trace);

  // blam-ckpt: skip -- construction input; restore_state requires a network freshly built from the same ScenarioConfig
  ScenarioConfig config_;
  Simulator sim_;
  ChannelPlan plan_;
  // blam-ckpt: skip -- pure function of ScenarioConfig::degradation, rebuilt at construction
  DegradationModel model_;
  // blam-ckpt: skip -- pure function of the scenario thermal config, rebuilt at construction
  std::unique_ptr<TemperatureModel> thermal_;
  Metrics metrics_;
  // blam-ckpt: skip -- immutable once built; regenerated from (seed, solar config) or shared across runs
  std::shared_ptr<const SolarTrace> trace_;
  // blam-ckpt: skip -- pure function of the scenario, rebuilt at construction
  std::unique_ptr<UtilityFunction> utility_;
  std::unique_ptr<NetworkServer> server_;
  // blam-ckpt: skip -- observability; assert_checkpointable refuses audited runs
  std::unique_ptr<Auditor> audit_;
  std::unique_ptr<FaultPlan> faults_;
  std::vector<std::unique_ptr<Gateway>> gateways_;
  // blam-ckpt: skip -- assert_checkpointable refuses runs with an external interferer
  std::unique_ptr<ExternalInterferer> interferer_;
  // blam-ckpt: skip -- observability; assert_checkpointable refuses packet-log runs
  std::unique_ptr<PacketLog> packet_log_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // blam-ckpt: skip -- deployment output; plan_deployment replays deterministically from the scenario seed
  Energy worst_attempt_energy_{};
};

}  // namespace blam
