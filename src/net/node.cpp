#include "net/node.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "audit/audit.hpp"
#include "fault/fault_plan.hpp"
#include "net/gateway.hpp"
#include "sim/checkpoint.hpp"

namespace blam {

Node::Node(const Init& init, const ScenarioConfig& config, Simulator& sim,
           const std::vector<std::unique_ptr<Gateway>>& gateways, const ChannelPlan& plan,
           const SolarTrace& trace, const DegradationModel& model,
           const TemperatureModel& thermal, const UtilityFunction& utility, NodeMetrics& metrics,
           Rng rng)
    : id_{init.id},
      position_{init.position},
      period_{init.period},
      n_windows_{config.windows_for(init.period)},
      link_losses_db_{init.link_losses_db},
      min_link_loss_db_{*std::min_element(init.link_losses_db.begin(), init.link_losses_db.end())},
      config_{&config},
      sim_{&sim},
      gateways_{&gateways},
      plan_{&plan},
      thermal_{&thermal},
      utility_{&utility},
      metrics_{&metrics},
      battery_{init.battery_capacity, std::min(config.initial_soc, config.theta)},
      harvester_{trace, init.panel_scale},
      switch_{battery_, 1.0},  // the policy's theta is installed below
      tracker_{model, config.temperature_c},
      forecaster_{harvester_, config.forecast_error_sigma, rng.fork(salt::kForecaster)},
      etx_ewma_{config.ewma_beta},
      retx_estimator_{static_cast<std::size_t>(n_windows_), config.timings.max_transmissions - 1},
      policy_{make_policy(config)},
      duty_cycle_{config.duty_cycle},
      rng_{rng} {
  tx_params_.sf = init.sf;
  tx_params_.bandwidth_hz = 125e3;
  tx_params_.payload_bytes = config.payload_bytes;
  tx_params_.tx_power_dbm = config.tx_power_dbm;
  tx_params_ = tx_params_.with_auto_ldro();
  switch_.set_soc_cap(policy_->soc_cap());
  listen_energy_ =
      config_->radio.rx_power() * (config_->timings.rx_window_duration * std::int64_t{2});
  single_attempt_energy_ = attempt_demand(tx_params_);
  if (config.supercap_tx_buffer > 0.0) {
    supercap_.emplace(single_attempt_energy_ * config.supercap_tx_buffer,
                      config.supercap_efficiency, config.supercap_leak_per_day);
    switch_.attach_supercap(&*supercap_);
  }
  // DIF normalizer (paper's E_tx_max): the worst case a packet can cost is
  // the full retransmission budget. Normalizing by a single attempt would
  // saturate DIF at 1 whenever any retransmissions are expected, erasing
  // the per-window discrimination Algorithm 1 relies on.
  max_packet_energy_ = single_attempt_energy_ * config.timings.max_transmissions;
  harvester_.resample_jitter(rng_, config.cloud_jitter_spread);
  metrics_->window_counts.assign(static_cast<std::size_t>(n_windows_), 0);
}

void Node::attach_fault_plan(const FaultPlan* faults) {
  faults_ = faults;
  if (faults_ != nullptr && faults_->config().crashes_enabled()) {
    crash_rng_ = faults_->crash_stream(id_);
  }
}

void Node::start() {
  record_soc(Time::zero());
  period_event_ = sim_->schedule_at(Time::zero(), [this] { on_period_start(); });
  if (crash_rng_.has_value()) schedule_next_crash();
}

void Node::schedule_next_crash() {
  const double mean_days = 365.25 / faults_->config().crash_per_year;
  const Time gap = Time::from_days(crash_rng_->exponential(mean_days));
  crash_event_ = sim_->schedule_in(gap, [this] { on_crash(); });
}

void Node::on_crash() {
  const Time now = sim_->now();
  ++metrics_->crashes;
  account_to(now);
  if (pending_.active) {
    // The in-flight packet dies with the MCU (latency penalty, no history
    // update — the histogram it would update is being wiped anyway).
    ++metrics_->exhausted;
    log_event(PacketEventKind::kExhausted, pending_.transmissions - 1);
    abort_packet(/*record_history=*/false);
  }
  // Volatile state is gone; everything below re-warms from boot defaults.
  // The DegradationTracker survives: it is the simulator's ground truth of
  // the physical battery, not MCU memory.
  etx_ewma_ = Ewma{config_->ewma_beta};
  retx_estimator_ = RetxEstimator{static_cast<std::size_t>(n_windows_),
                                  config_->timings.max_transmissions - 1};
  w_u_ = 0.0;
  last_w_update_ = now;  // the staleness clock restarts at reboot
  consecutive_ackless_ = 0;
  has_samples_ = false;
  report_seq_ = 0;  // volatile counter: its reset is the gateway's reboot signal
  last_report_packet_ = 0;
  rebooting_until_ = now + faults_->config().reboot_duration;
  schedule_next_crash();
}

Energy Node::attempt_demand(const TxParams& params) const {
  if (!config_->confirmed) return timing_.tx_energy(params, config_->radio);  // no RX windows
  return timing_.tx_energy(params, config_->radio) + listen_energy_;
}

Time Node::attempt_span(const TxParams& params) const {
  if (!config_->confirmed) return timing_.time_on_air(params);
  return timing_.time_on_air(params) + config_->timings.rx2_delay +
         config_->timings.rx_window_duration;
}

void Node::account_to(Time now) {
  if (now <= last_account_) return;
  const Time dt = now - last_account_;
  if (supercap_.has_value()) {
    const Energy before = supercap_->stored();
    supercap_->leak(dt);
    if (audit_ != nullptr) audit_->on_storage_loss(id_, now, before - supercap_->stored());
  }
  if (config_->battery_self_discharge_per_month > 0.0) {
    const double retention =
        std::pow(1.0 - config_->battery_self_discharge_per_month, dt.days() / 30.44);
    const Energy drained = battery_.stored() * (1.0 - retention);
    battery_.discharge(drained);
    if (audit_ != nullptr) audit_->on_storage_loss(id_, now, drained);
  }
  const Energy harvest = harvest_between(last_account_, now);
  const Energy demand = config_->radio.sleep_power() * dt;
  apply_flow(harvest, demand, now);
  last_account_ = now;
}

PowerFlow Node::apply_flow(Energy harvest, Energy demand, Time at) {
  if (audit_ == nullptr) return switch_.apply(harvest, demand);
  const Energy before = total_stored();
  const PowerFlow flow = switch_.apply(harvest, demand);
  const double min_eff = supercap_.has_value() ? config_->supercap_efficiency : 1.0;
  audit_->on_energy_flow(id_, at, harvest, demand, flow, before, total_stored(), min_eff);
  return flow;
}

Energy Node::harvest_between(Time t0, Time t1) const {
  if (faults_ == nullptr) return harvester_.energy_between(t0, t1);
  return faults_->scaled_harvest(harvester_, t0, t1);
}

void Node::log_event(PacketEventKind kind, int attempt) {
  if (packet_log_ == nullptr) return;
  PacketEvent event;
  event.at = sim_->now();
  event.node = id_;
  event.seq = pending_.seq;
  event.attempt = attempt;
  event.window = pending_.window;
  event.kind = kind;
  packet_log_->record(event);
}

void Node::record_soc(Time t) {
  const double soc = battery_.soc();
  if (audit_ != nullptr) audit_->on_soc(id_, t, soc, switch_.soc_cap());
  tracker_.record(t, soc);
  latest_sample_ = SocSample{t, soc};
  if (!has_samples_) {
    period_start_sample_ = latest_sample_;
    has_samples_ = true;
  }
}

void Node::update_capacity_fade(Time now) {
  if (now - last_fade_update_ < Time::from_days(1.0)) return;
  const double degradation = tracker_.degradation(now);
  const Energy before = battery_.stored();
  battery_.set_degradation(degradation);
  if (audit_ != nullptr) {
    // The fade clamp may shed stored charge that no longer fits the shrunken
    // capacity; the ledger must see it or the continuity check drifts.
    audit_->on_storage_loss(id_, now, before - battery_.stored());
    audit_->on_degradation(id_, now, degradation);
  }
  last_fade_update_ = now;
}

void Node::on_period_start() {
  const Time now = sim_->now();
  Time next = period_;
  if (config_->period_jitter > 0.0) {
    next = next * (1.0 + rng_.uniform(-config_->period_jitter, config_->period_jitter));
  }
  period_event_ = sim_->schedule_at(now + next, [this] { on_period_start(); });

  account_to(now);
  // A previous packet's attempt may have pre-accounted energy past this
  // boundary (its RX windows straddle it); the battery state is then only
  // known at last_account_, so sample there, never before.
  const Time sample_at = std::max(now, last_account_);
  if (!thermal_->config().insulated) {
    tracker_.set_temperature(sample_at, thermal_->at(now));
  }
  update_capacity_fade(now);
  harvester_.resample_jitter(rng_, config_->cloud_jitter_spread);
  record_soc(sample_at);
  period_start_sample_ = latest_sample_;

  if (pending_.active) {
    // The previous packet's ladder spilled past the period boundary
    // (possible when a late window plus the full retransmission ladder
    // crosses it): fail the old packet and kill its scheduled events.
    ++metrics_->exhausted;
    if (config_->confirmed && pending_.transmissions > 0) ++consecutive_ackless_;
    if (faults_ != nullptr && faults_->gateway_out(now)) ++metrics_->lost_in_outage;
    log_event(PacketEventKind::kExhausted, pending_.transmissions - 1);
    abort_packet(/*record_history=*/true);
  }

  if (now < rebooting_until_) {
    // Crash fault: the MCU is still rebooting; the sample is taken but
    // never leaves the device.
    ++metrics_->generated;
    ++metrics_->reboot_drops;
    metrics_->latency_s.add(period_.seconds());
    pending_ = Pending{};
    pending_.seq = next_seq_++;
    log_event(PacketEventKind::kGenerated);
    return;
  }

  ++metrics_->generated;
  const Time window = config_->forecast_window;

  WindowContext ctx;
  ctx.n_windows = n_windows_;
  ctx.window_length = window;
  ctx.period_start = now;
  ctx.battery = battery_.stored();
  ctx.battery_capacity = battery_.original_capacity();
  ctx.w_u = w_u_;
  ctx.w_u_age_periods =
      (now - last_w_update_).seconds() / config_->dissemination_period.seconds();
  ctx.stale_feedback_k = config_->stale_feedback_k;
  ctx.w_b = config_->w_b;
  if (policy_->reports_soc()) {
    metrics_->w_age_s.add((now - last_w_update_).seconds());
  }
  ctx.max_tx = max_packet_energy_;
  ctx.utility = utility_;
  ctx.workspace = &selector_workspace_;
  if (policy_->needs_forecasts()) {
    cost_scratch_.clear();
    const double base_estimate = etx_ewma_.value_or(single_attempt_energy_.joules());
    forecaster_.forecast_windows(now, window, n_windows_, harvest_scratch_);
    for (int w = 0; w < n_windows_; ++w) {
      if (faults_ != nullptr) {
        // The short-horizon forecaster sees the actual sky, so a drought
        // shows up in its predictions too.
        const Time w0 = now + window * std::int64_t{w};
        const Time w1 = now + window * std::int64_t{w + 1};
        harvest_scratch_[static_cast<std::size_t>(w)] =
            harvest_scratch_[static_cast<std::size_t>(w)] * faults_->drought_factor(w0, w1);
      }
      cost_scratch_.push_back(Energy::from_joules(
          base_estimate * retx_estimator_.expected_transmissions(static_cast<std::size_t>(w))));
    }
    ctx.harvest_forecast = harvest_scratch_;
    ctx.tx_cost = cost_scratch_;
  }

  const MacDecision decision = policy_->select_window(ctx);
  if (!decision.transmit) {
    ++metrics_->policy_drops;
    metrics_->latency_s.add(period_.seconds());
    pending_ = Pending{};
    pending_.seq = next_seq_++;
    log_event(PacketEventKind::kGenerated);
    log_event(PacketEventKind::kPolicyDrop);
    return;
  }

  pending_ = Pending{};
  pending_.active = true;
  pending_.seq = next_seq_++;
  pending_.generated_at = now;
  pending_.window = decision.window;
  metrics_->count_window(decision.window);
  log_event(PacketEventKind::kGenerated);

  // Transmission time inside the window: LoRaWAN sends immediately (pure
  // ALOHA); the proposed MAC randomizes within the window to decluster
  // (paper Sec. III-B, "Network dynamics and channel access").
  Time offset = Time::zero();
  if (policy_->needs_forecasts()) {
    // Slack accounts for the frame as actually sent (SoC report included).
    TxParams worst = tx_params_;
    worst.payload_bytes = config_->payload_bytes + 4;
    const Time slack = window - attempt_span(worst);
    if (slack > Time::zero()) {
      offset = Time::from_us(rng_.uniform_int(0, slack.us()));
    }
  }
  const Time tx_at = now + window * std::int64_t{decision.window} + offset;
  window_tx_ = sim_->schedule_at(tx_at, [this] { start_attempt(); });
}

const UplinkFrame& Node::build_frame() {
  UplinkFrame& frame = frame_scratch_;
  frame.node_id = id_;
  frame.seq = pending_.seq;
  frame.attempt = pending_.transmissions;
  frame.generated_at = pending_.generated_at;
  frame.selected_window = pending_.window;
  frame.app_payload_bytes = config_->payload_bytes;
  frame.confirmed = config_->confirmed;
  frame.soc_report.clear();
  if (policy_->reports_soc() && has_samples_) {
    frame.soc_report.push_back(period_start_sample_);
    if (latest_sample_.t > period_start_sample_.t) frame.soc_report.push_back(latest_sample_);
    // One report generation per packet: retransmissions reuse the sequence
    // (their refreshed trailing sample is covered by a refreshed CRC), so
    // the gateway's packet-level dedup and the ledger's report-level dedup
    // agree on what counts as "the same report".
    if (pending_.seq != last_report_packet_) {
      ++report_seq_;
      last_report_packet_ = pending_.seq;
    }
    frame.report_seq = report_seq_;
    frame.report_crc = report_checksum(frame.report_seq, frame.soc_report);
  } else {
    frame.report_seq = 0;
    frame.report_crc = 0;
  }
  return frame;
}

void Node::start_attempt() {
  if (!pending_.active) return;  // packet resolved while this event was in flight
  pending_.retx = EventHandle{};
  const Time now = sim_->now();

  // Regulatory duty cycle: defer the attempt until T_off expires. If the
  // silence extends past the sampling period, the packet is lost to the
  // regulator (counted as a duty defer + exhausted).
  if (!duty_cycle_.can_transmit(now)) {
    ++metrics_->duty_defers;
    log_event(PacketEventKind::kDutyDefer, pending_.transmissions);
    if (duty_cycle_.next_allowed() >= pending_.generated_at + period_) {
      ++metrics_->exhausted;
      log_event(PacketEventKind::kExhausted, pending_.transmissions - 1);
      abort_packet(/*record_history=*/false);
      return;
    }
    pending_.retx = sim_->schedule_at(duty_cycle_.next_allowed(), [this] { start_attempt(); });
    return;
  }
  account_to(now);

  const UplinkFrame& frame = build_frame();
  TxParams params = tx_params_;
  params.payload_bytes = frame.total_bytes();

  const Energy demand = attempt_demand(params);
  const Time span = attempt_span(params);
  const Energy harvest = harvest_between(now, now + span);
  const PowerFlow flow = apply_flow(harvest, demand, now);
  last_account_ = now + span;
  record_soc(last_account_);

  if (flow.brownout()) {
    // The radio browned out mid-attempt: the energy is gone and the packet
    // is lost. Algorithm 1 makes this rare; LoRaWAN hits it at night.
    ++metrics_->brownouts;
    log_event(PacketEventKind::kBrownout, pending_.transmissions);
    abort_packet(/*record_history=*/false);
    return;
  }

  ++pending_.transmissions;
  ++metrics_->tx_attempts;
  if (pending_.transmissions > 1) ++metrics_->retx;
  log_event(PacketEventKind::kTxStart, pending_.transmissions - 1);
  if (audit_ != nullptr) {
    audit_->on_transmission(id_, now, timing_.time_on_air(params), config_->duty_cycle);
  }
  duty_cycle_.record(now, timing_.time_on_air(params));
  const Energy radiated = timing_.tx_energy(params, config_->radio);
  metrics_->tx_energy += radiated;
  pending_.spent += radiated;

  // Every gateway hears the transmission at its own receive power; with
  // fast fading enabled each copy gets an independent Rayleigh power fade
  // (10*log10 of a unit-mean exponential).
  const int channel = plan_->random_uplink_channel(rng_);
  for (const auto& gateway : *gateways_) {
    double rx_dbm =
        tx_params_.tx_power_dbm - link_losses_db_[static_cast<std::size_t>(gateway->id())];
    if (config_->fast_fading) {
      rx_dbm += 10.0 * std::log10(rng_.exponential(1.0));
    }
    gateway->on_uplink(*this, frame, params, channel, rx_dbm);
  }

  // Confirmed: wait out the ACK deadline. Unconfirmed: fire-and-forget —
  // the server's delivery notification (5 ms after airtime end) either
  // resolves the packet or the timeout counts it lost.
  const Time timeout_at =
      config_->confirmed
          ? now + timing_.time_on_air(params) + (*gateways_)[0]->max_ack_end_delay() +
                Time::from_ms(50)
          : now + timing_.time_on_air(params) + Time::from_ms(5);
  pending_.timeout = sim_->schedule_at(timeout_at, [this] { on_ack_timeout(); });
}

void Node::on_ack_timeout() {
  assert(pending_.active);
  pending_.timeout = EventHandle{};
  // Bounded exponential backoff: after n consecutive ACK-less packets the
  // transmission budget halves per failure (floor 1), so a dead gateway
  // gets one probe per period instead of the full ladder.
  int budget = config_->timings.max_transmissions;
  if (config_->ack_failure_backoff && consecutive_ackless_ > 0) {
    budget = std::max(1, budget >> std::min(consecutive_ackless_, 3));
  }
  if (!config_->confirmed || pending_.transmissions >= budget) {
    ++metrics_->exhausted;
    if (config_->confirmed) ++consecutive_ackless_;
    if (faults_ != nullptr && faults_->gateway_out(sim_->now())) ++metrics_->lost_in_outage;
    log_event(PacketEventKind::kExhausted, pending_.transmissions - 1);
    abort_packet(/*record_history=*/true);
    return;
  }
  const Time backoff = Time::from_us(
      rng_.uniform_int(config_->retx_backoff_min.us(), config_->retx_backoff_max.us()));
  pending_.retx = sim_->schedule_in(backoff, [this] { start_attempt(); });
}

void Node::receive_ack(const AckFrame& ack, Time ack_end) {
  if (!pending_.active || ack.seq != pending_.seq) return;  // stale duplicate
  if (audit_ != nullptr) {
    audit_->on_ack(id_, ack_end, ack.node_id, ack.seq, next_seq_ - 1, ack.has_degradation,
                   ack.normalized_degradation);
  }
  sim_->cancel(pending_.timeout);
  sim_->cancel(pending_.retx);  // an ACK can arrive after a timeout already armed a retry

  consecutive_ackless_ = 0;
  if (faults_ != nullptr) {
    // Recovery observability: the first delivery after an outage window
    // closed measures how long this node took to get a packet through.
    const Time outage_end = faults_->last_outage_end_before(ack_end);
    if (outage_end > Time::zero() && outage_end > last_delivery_at_) {
      metrics_->recovery_s.add((ack_end - outage_end).seconds());
    }
  }
  last_delivery_at_ = ack_end;

  ++metrics_->delivered;
  log_event(PacketEventKind::kDelivered, pending_.transmissions - 1);
  const double latency = (ack_end - pending_.generated_at).seconds();
  metrics_->latency_s.add(latency);
  metrics_->delivered_latency_s.add(latency);
  metrics_->utility_sum += utility_->value(pending_.window, n_windows_);
  retx_estimator_.record(static_cast<std::size_t>(pending_.window), pending_.transmissions - 1);
  // EWMA tracks PER-TRANSMISSION energy; the per-window cost estimate then
  // scales it by the expected transmission count (Eq. 14), so tracking the
  // whole packet's energy here would double-count retransmissions.
  etx_ewma_.observe(pending_.spent.joules() / pending_.transmissions);
  if (ack.has_degradation) {
    w_u_ = ack.normalized_degradation;
    last_w_update_ = ack_end;
  }
  if (ack.adr.has_value()) apply_adr(*ack.adr);
  if (ack.theta.has_value()) {
    policy_->set_soc_cap(*ack.theta);
    switch_.set_soc_cap(policy_->soc_cap());
  }
  pending_.active = false;
}

void Node::abort_packet(bool record_history) {
  sim_->cancel(pending_.timeout);
  sim_->cancel(pending_.retx);
  metrics_->latency_s.add(period_.seconds());
  if (record_history && pending_.transmissions > 0) {
    retx_estimator_.record(static_cast<std::size_t>(pending_.window),
                           pending_.transmissions - 1);
    etx_ewma_.observe(pending_.spent.joules() / pending_.transmissions);
  }
  pending_.active = false;
}

void Node::apply_adr(const AdrCommand& command) {
  tx_params_.sf = command.sf;
  tx_params_.tx_power_dbm = command.tx_power_dbm;
  tx_params_ = tx_params_.with_auto_ldro();
  single_attempt_energy_ = attempt_demand(tx_params_);
  max_packet_energy_ = single_attempt_energy_ * config_->timings.max_transmissions;
}

namespace {

void write_tracker(StateWriter& w, const DegradationTracker::Snapshot& s) {
  w.put_u64(s.rainflow.stack.size());
  for (double soc : s.rainflow.stack) w.put_double(soc);
  w.put_double(s.rainflow.last);
  w.put_double(s.rainflow.prev_direction);
  w.put_u64(s.rainflow.has_last ? 1 : 0);
  w.put_u64(s.rainflow.full_cycles);
  w.put_double(s.closed_cycle_sum);
  write_time(w, s.last_time);
  w.put_double(s.last_soc);
  w.put_u64(s.has_sample ? 1 : 0);
  w.put_double(s.soc_time_integral);
  w.put_double(s.stress_time_integral);
  write_time(w, s.stress_integrated_to);
  w.put_double(s.temperature_c);
  w.put_u64(s.discontinuities);
}

DegradationTracker::Snapshot read_tracker(StateReader& r) {
  DegradationTracker::Snapshot s;
  s.rainflow.stack.resize(r.get_u64());
  for (double& soc : s.rainflow.stack) soc = r.get_double();
  s.rainflow.last = r.get_double();
  s.rainflow.prev_direction = r.get_double();
  s.rainflow.has_last = r.get_u64() != 0;
  s.rainflow.full_cycles = r.get_u64();
  s.closed_cycle_sum = r.get_double();
  s.last_time = read_time(r);
  s.last_soc = r.get_double();
  s.has_sample = r.get_u64() != 0;
  s.soc_time_integral = r.get_double();
  s.stress_time_integral = r.get_double();
  s.stress_integrated_to = read_time(r);
  s.temperature_c = r.get_double();
  s.discontinuities = r.get_u64();
  return s;
}

void write_sample(StateWriter& w, const SocSample& s) {
  write_time(w, s.t);
  w.put_double(s.soc);
}

SocSample read_sample(StateReader& r) {
  SocSample s;
  s.t = read_time(r);
  s.soc = r.get_double();
  return s;
}

}  // namespace

void Node::checkpoint_state(StateWriter& w) const {
  w.begin_section("node");
  w.put_u64(id_);
  w.put_u64(static_cast<std::uint64_t>(tx_params_.sf));
  w.put_double(tx_params_.tx_power_dbm);

  write_rng(w, rng_.state());
  w.put_u64(crash_rng_.has_value() ? 1 : 0);
  if (crash_rng_.has_value()) write_rng(w, crash_rng_->state());
  write_rng(w, forecaster_.rng_state());

  write_energy(w, battery_.stored());
  w.put_double(battery_.degradation());
  w.put_u64(supercap_.has_value() ? 1 : 0);
  if (supercap_.has_value()) write_energy(w, supercap_->stored());
  w.put_double(policy_->soc_cap());
  w.put_double(harvester_.jitter());
  write_tracker(w, tracker_.snapshot());

  w.put_double(etx_ewma_.raw_value());
  w.put_u64(etx_ewma_.initialized() ? 1 : 0);
  const auto& windows = retx_estimator_.windows();
  w.put_u64(windows.size());
  for (const RetxEstimator::WindowStats& stats : windows) {
    w.put_u64(stats.retx_counts.size());
    for (std::uint64_t count : stats.retx_counts) w.put_u64(count);
    w.put_u64(stats.selections);
    w.put_u64(stats.retx_sum);
  }
  write_time(w, duty_cycle_.next_allowed());

  write_time(w, last_account_);
  write_time(w, last_fade_update_);
  w.put_double(w_u_);
  write_time(w, last_w_update_);
  write_time(w, last_delivery_at_);
  w.put_i64(consecutive_ackless_);
  write_time(w, rebooting_until_);
  w.put_u64(next_seq_);
  w.put_u64(report_seq_);
  w.put_u64(last_report_packet_);

  w.put_u64(pending_.active ? 1 : 0);
  w.put_u64(pending_.seq);
  write_time(w, pending_.generated_at);
  w.put_i64(pending_.window);
  w.put_i64(pending_.transmissions);
  write_energy(w, pending_.spent);

  w.put_u64(has_samples_ ? 1 : 0);
  write_sample(w, period_start_sample_);
  write_sample(w, latest_sample_);

  const NodeMetrics& m = *metrics_;
  w.put_u64(m.generated);
  w.put_u64(m.delivered);
  w.put_u64(m.exhausted);
  w.put_u64(m.policy_drops);
  w.put_u64(m.brownouts);
  w.put_u64(m.duty_defers);
  w.put_u64(m.tx_attempts);
  w.put_u64(m.retx);
  write_energy(w, m.tx_energy);
  w.put_double(m.utility_sum);
  write_stats(w, m.latency_s);
  write_stats(w, m.delivered_latency_s);
  w.put_u64(m.window_counts.size());
  for (std::uint32_t count : m.window_counts) w.put_u64(count);
  w.put_u64(m.crashes);
  w.put_u64(m.reboot_drops);
  w.put_u64(m.lost_in_outage);
  write_stats(w, m.recovery_s);
  write_stats(w, m.w_age_s);

  write_event(w, *sim_, period_event_);
  write_event(w, *sim_, crash_event_);
  write_event(w, *sim_, window_tx_);
  write_event(w, *sim_, pending_.timeout);
  write_event(w, *sim_, pending_.retx);
  w.end_section();
}

void Node::restore_state(StateReader& r) {
  r.begin_section("node");
  if (r.get_u64() != id_) {
    throw std::runtime_error{"Node::restore_state: checkpoint is for a different node"};
  }
  AdrCommand radio;
  radio.sf = static_cast<SpreadingFactor>(r.get_u64());
  radio.tx_power_dbm = r.get_double();
  apply_adr(radio);  // re-derives LDRO + energy constants like a live command

  rng_.restore(read_rng(r));
  const bool has_crash_rng = r.get_u64() != 0;
  if (has_crash_rng != crash_rng_.has_value()) {
    throw std::runtime_error{"Node::restore_state: crash-fault stream mismatch"};
  }
  if (has_crash_rng) crash_rng_->restore(read_rng(r));
  forecaster_.restore_rng(read_rng(r));

  const Energy stored = read_energy(r);
  const double degradation = r.get_double();
  battery_.restore_raw(stored, degradation);
  const bool has_supercap = r.get_u64() != 0;
  if (has_supercap != supercap_.has_value()) {
    throw std::runtime_error{"Node::restore_state: supercap presence mismatch"};
  }
  if (has_supercap) supercap_->restore_stored(read_energy(r));
  policy_->set_soc_cap(r.get_double());
  switch_.set_soc_cap(policy_->soc_cap());
  harvester_.restore_jitter(r.get_double());
  tracker_.restore(read_tracker(r));

  const double ewma_value = r.get_double();
  etx_ewma_.restore(ewma_value, r.get_u64() != 0);
  auto& windows = retx_estimator_.windows_mutable();
  if (r.get_u64() != windows.size()) {
    throw std::runtime_error{"Node::restore_state: retx window count mismatch"};
  }
  for (RetxEstimator::WindowStats& stats : windows) {
    if (r.get_u64() != stats.retx_counts.size()) {
      throw std::runtime_error{"Node::restore_state: retx histogram width mismatch"};
    }
    for (std::uint64_t& count : stats.retx_counts) count = r.get_u64();
    stats.selections = r.get_u64();
    stats.retx_sum = r.get_u64();
  }
  duty_cycle_.restore_next_allowed(read_time(r));

  last_account_ = read_time(r);
  last_fade_update_ = read_time(r);
  w_u_ = r.get_double();
  last_w_update_ = read_time(r);
  last_delivery_at_ = read_time(r);
  consecutive_ackless_ = static_cast<int>(r.get_i64());
  rebooting_until_ = read_time(r);
  next_seq_ = static_cast<std::uint32_t>(r.get_u64());
  report_seq_ = static_cast<std::uint16_t>(r.get_u64());
  last_report_packet_ = static_cast<std::uint32_t>(r.get_u64());

  pending_ = Pending{};
  pending_.active = r.get_u64() != 0;
  pending_.seq = static_cast<std::uint32_t>(r.get_u64());
  pending_.generated_at = read_time(r);
  pending_.window = static_cast<int>(r.get_i64());
  pending_.transmissions = static_cast<int>(r.get_i64());
  pending_.spent = read_energy(r);

  has_samples_ = r.get_u64() != 0;
  period_start_sample_ = read_sample(r);
  latest_sample_ = read_sample(r);

  NodeMetrics& m = *metrics_;
  m.generated = r.get_u64();
  m.delivered = r.get_u64();
  m.exhausted = r.get_u64();
  m.policy_drops = r.get_u64();
  m.brownouts = r.get_u64();
  m.duty_defers = r.get_u64();
  m.tx_attempts = r.get_u64();
  m.retx = r.get_u64();
  m.tx_energy = read_energy(r);
  m.utility_sum = r.get_double();
  read_stats(r, m.latency_s);
  read_stats(r, m.delivered_latency_s);
  if (r.get_u64() != m.window_counts.size()) {
    throw std::runtime_error{"Node::restore_state: window histogram size mismatch"};
  }
  for (std::uint32_t& count : m.window_counts) count = static_cast<std::uint32_t>(r.get_u64());
  m.crashes = r.get_u64();
  m.reboot_drops = r.get_u64();
  m.lost_in_outage = r.get_u64();
  read_stats(r, m.recovery_s);
  read_stats(r, m.w_age_s);

  period_event_ = EventHandle{};
  crash_event_ = EventHandle{};
  window_tx_ = EventHandle{};
  if (const auto e = read_event(r)) {
    period_event_ = sim_->schedule_at_seq(e->time, e->seq, [this] { on_period_start(); });
  }
  if (const auto e = read_event(r)) {
    crash_event_ = sim_->schedule_at_seq(e->time, e->seq, [this] { on_crash(); });
  }
  if (const auto e = read_event(r)) {
    window_tx_ = sim_->schedule_at_seq(e->time, e->seq, [this] { start_attempt(); });
  }
  if (const auto e = read_event(r)) {
    pending_.timeout = sim_->schedule_at_seq(e->time, e->seq, [this] { on_ack_timeout(); });
  }
  if (const auto e = read_event(r)) {
    pending_.retx = sim_->schedule_at_seq(e->time, e->seq, [this] { start_attempt(); });
  }
  r.end_section();
}

void Node::finalize_metrics(Time now) {
  metrics_->degradation = tracker_.degradation(now);
  metrics_->cycle_linear = tracker_.cycle_linear();
  metrics_->calendar_linear = tracker_.calendar_linear(now);
  metrics_->mean_soc = tracker_.mean_soc();
  metrics_->final_soc = battery_.soc();
}

}  // namespace blam
