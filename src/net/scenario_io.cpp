#include "net/scenario_io.hpp"

#include <sstream>
#include <stdexcept>

namespace blam {

namespace {

PolicyKind policy_from_string(const std::string& s) {
  if (s == "lorawan") return PolicyKind::kLorawan;
  if (s == "blam") return PolicyKind::kBlam;
  if (s == "theta_only") return PolicyKind::kThetaOnly;
  if (s == "greedy_green") return PolicyKind::kGreedyGreen;
  throw std::runtime_error{"scenario: unknown policy '" + s +
                           "' (expected lorawan|blam|theta_only|greedy_green)"};
}

UtilityKind utility_from_string(const std::string& s) {
  if (s == "linear") return UtilityKind::kLinear;
  if (s == "exponential") return UtilityKind::kExponential;
  if (s == "step") return UtilityKind::kStep;
  throw std::runtime_error{"scenario: unknown utility '" + s +
                           "' (expected linear|exponential|step)"};
}

SfAssignment sf_assignment_from_string(const std::string& s) {
  if (s == "fixed") return SfAssignment::kFixed;
  if (s == "distance") return SfAssignment::kDistanceBased;
  throw std::runtime_error{"scenario: unknown sf_assignment '" + s +
                           "' (expected fixed|distance)"};
}

}  // namespace

ScenarioConfig scenario_from_config(const ConfigFile& file) {
  ScenarioConfig c;

  c.seed = static_cast<std::uint64_t>(file.get_int("seed", static_cast<std::int64_t>(c.seed)));
  c.n_nodes = static_cast<int>(file.get_int("nodes", c.n_nodes));
  c.radius_m = file.get_positive_double("radius_m", c.radius_m);
  c.n_gateways = static_cast<int>(file.get_int("gateways", c.n_gateways));
  c.gateway_ring_fraction = file.get_positive_double("gateway_ring_fraction", c.gateway_ring_fraction);
  c.gateway_grid_pitch_m =
      file.get_non_negative_double("gateway_grid_pitch_m", c.gateway_grid_pitch_m);
  c.cluster_radius_m = file.get_non_negative_double("cluster_radius_m", c.cluster_radius_m);
  c.interference_floor_dbm =
      file.get_double("interference_floor_dbm", c.interference_floor_dbm);
  c.shards = static_cast<int>(file.get_int("shards", c.shards));

  c.min_period =
      Time::from_minutes(file.get_positive_double("min_period_min", c.min_period.minutes()));
  c.max_period =
      Time::from_minutes(file.get_positive_double("max_period_min", c.max_period.minutes()));
  c.forecast_window = Time::from_minutes(
      file.get_positive_double("forecast_window_min", c.forecast_window.minutes()));
  c.payload_bytes = static_cast<int>(file.get_int("payload_bytes", c.payload_bytes));

  c.policy = policy_from_string(file.get_string("policy", "lorawan"));
  c.theta = file.get_double("theta", c.theta);
  c.w_b = file.get_double("w_b", c.w_b);
  c.utility = utility_from_string(file.get_string("utility", "linear"));
  c.utility_lambda = file.get_double("utility_lambda", c.utility_lambda);
  c.step_deadline = file.get_double("step_deadline", c.step_deadline);
  c.step_floor = file.get_double("step_floor", c.step_floor);
  c.ewma_beta = file.get_double("ewma_beta", c.ewma_beta);

  c.uplink_channels = static_cast<int>(file.get_int("uplink_channels", c.uplink_channels));
  c.downlink_channels = static_cast<int>(file.get_int("downlink_channels", c.downlink_channels));
  c.tx_power_dbm = file.get_double("tx_power_dbm", c.tx_power_dbm);
  c.gateway_demod_paths =
      static_cast<int>(file.get_int("gateway_demod_paths", c.gateway_demod_paths));
  c.sf_assignment = sf_assignment_from_string(file.get_string("sf_assignment", "fixed"));
  if (file.has("fixed_sf")) {
    c.fixed_sf = sf_from_value(static_cast<int>(file.get_int("fixed_sf", 10)));
  }
  c.sf_margin_db = file.get_double("sf_margin_db", c.sf_margin_db);
  c.downlink_tx_dbm = file.get_double("downlink_tx_dbm", c.downlink_tx_dbm);
  c.rx1_bandwidth_hz = file.get_double("rx1_bandwidth_hz", c.rx1_bandwidth_hz);
  c.path_loss.exponent = file.get_double("path_loss_exponent", c.path_loss.exponent);
  c.path_loss.shadowing_sigma_db =
      file.get_double("shadowing_sigma_db", c.path_loss.shadowing_sigma_db);
  c.adr_enabled = file.get_bool("adr", c.adr_enabled);
  c.fast_fading = file.get_bool("fast_fading", c.fast_fading);
  c.duty_cycle = file.get_positive_double("duty_cycle", c.duty_cycle);
  c.period_jitter = file.get_non_negative_double("period_jitter", c.period_jitter);
  c.confirmed = file.get_bool("confirmed", c.confirmed);
  c.battery_self_discharge_per_month = file.get_non_negative_double(
      "battery_self_discharge_per_month", c.battery_self_discharge_per_month);
  c.interference.tx_per_hour =
      file.get_non_negative_double("interference_tx_per_hour", c.interference.tx_per_hour);
  c.interference.min_rx_dbm = file.get_double("interference_min_dbm", c.interference.min_rx_dbm);
  c.interference.max_rx_dbm = file.get_double("interference_max_dbm", c.interference.max_rx_dbm);

  c.battery_days = file.get_positive_double("battery_days", c.battery_days);
  c.initial_soc = file.get_non_negative_double("initial_soc", c.initial_soc);
  c.solar_tx_per_window = file.get_positive_double("solar_tx_per_window", c.solar_tx_per_window);
  c.panel_scale_min = file.get_positive_double("panel_scale_min", c.panel_scale_min);
  c.panel_scale_max = file.get_positive_double("panel_scale_max", c.panel_scale_max);
  c.cloud_jitter_spread = file.get_non_negative_double("cloud_jitter_spread", c.cloud_jitter_spread);
  c.forecast_error_sigma =
      file.get_non_negative_double("forecast_error_sigma", c.forecast_error_sigma);
  c.supercap_tx_buffer = file.get_non_negative_double("supercap_tx_buffer", c.supercap_tx_buffer);
  c.supercap_efficiency = file.get_positive_double("supercap_efficiency", c.supercap_efficiency);
  c.supercap_leak_per_day =
      file.get_non_negative_double("supercap_leak_per_day", c.supercap_leak_per_day);

  c.temperature_c = file.get_double("temperature_c", c.temperature_c);
  c.thermal.insulated = file.get_bool("insulated", c.thermal.insulated);
  c.thermal.mean_c = file.get_double("ambient_mean_c", c.thermal.mean_c);
  c.thermal.seasonal_amplitude_c =
      file.get_double("ambient_seasonal_c", c.thermal.seasonal_amplitude_c);
  c.thermal.diurnal_amplitude_c =
      file.get_double("ambient_diurnal_c", c.thermal.diurnal_amplitude_c);
  c.thermal.seasonal_trough = Time::from_days(
      file.get_non_negative_double("ambient_coldest_day", c.thermal.seasonal_trough.days()));
  c.thermal.diurnal_trough = Time::from_hours(
      file.get_non_negative_double("ambient_coldest_hour", c.thermal.diurnal_trough.hours()));
  c.dissemination_period =
      Time::from_days(file.get_positive_double("dissemination_days", c.dissemination_period.days()));
  const std::string chemistry = file.get_string("chemistry", "lmo");
  if (chemistry == "lmo") {
    c.degradation = DegradationParams::lmo();
  } else if (chemistry == "nmc") {
    c.degradation = DegradationParams::nmc();
  } else if (chemistry == "lfp") {
    c.degradation = DegradationParams::lfp();
  } else {
    throw std::runtime_error{"scenario: unknown chemistry '" + chemistry +
                             "' (expected lmo|nmc|lfp)"};
  }
  c.degradation.k6 = file.get_double("cycle_aging_k6", c.degradation.k6);

  // Fault injection & graceful degradation (all default to "no faults").
  c.faults.outage_daily_start =
      Time::from_hours(file.get_double("fault_outage_daily_start_h", c.faults.outage_daily_start.hours()));
  c.faults.outage_daily_duration = Time::from_hours(
      file.get_double("fault_outage_daily_duration_h", c.faults.outage_daily_duration.hours()));
  c.faults.outage_random_per_day =
      file.get_non_negative_double("fault_outage_random_per_day", c.faults.outage_random_per_day);
  c.faults.outage_random_min =
      Time::from_minutes(file.get_double("fault_outage_min_min", c.faults.outage_random_min.minutes()));
  c.faults.outage_random_max =
      Time::from_minutes(file.get_double("fault_outage_max_min", c.faults.outage_random_max.minutes()));
  c.faults.ack_loss_good = file.get_double("fault_ack_loss_good", c.faults.ack_loss_good);
  c.faults.ack_loss_bad = file.get_double("fault_ack_loss_bad", c.faults.ack_loss_bad);
  c.faults.ack_good_mean =
      Time::from_minutes(file.get_double("fault_ack_good_mean_min", c.faults.ack_good_mean.minutes()));
  c.faults.ack_bad_mean =
      Time::from_minutes(file.get_double("fault_ack_bad_mean_min", c.faults.ack_bad_mean.minutes()));
  c.faults.crash_per_year =
      file.get_non_negative_double("fault_crash_per_year", c.faults.crash_per_year);
  c.faults.reboot_duration =
      Time::from_minutes(file.get_double("fault_reboot_duration_min", c.faults.reboot_duration.minutes()));
  c.faults.drought_start =
      Time::from_days(file.get_double("fault_drought_start_days", c.faults.drought_start.days()));
  c.faults.drought_duration =
      Time::from_days(file.get_double("fault_drought_duration_days", c.faults.drought_duration.days()));
  c.faults.drought_scale = file.get_double("fault_drought_scale", c.faults.drought_scale);
  c.faults.report_loss =
      file.get_non_negative_double("fault_report_loss", c.faults.report_loss);
  c.faults.report_dup = file.get_non_negative_double("fault_report_dup", c.faults.report_dup);
  c.faults.report_reorder =
      file.get_non_negative_double("fault_report_reorder", c.faults.report_reorder);
  c.faults.report_corrupt =
      file.get_non_negative_double("fault_report_corrupt", c.faults.report_corrupt);
  c.faults.report_truncate =
      file.get_non_negative_double("fault_report_truncate", c.faults.report_truncate);
  c.stale_feedback_k = file.get_non_negative_double("stale_feedback_k", c.stale_feedback_k);
  c.ack_failure_backoff = file.get_bool("ack_failure_backoff", c.ack_failure_backoff);

  c.adaptive_theta = file.get_bool("adaptive_theta", c.adaptive_theta);
  c.packet_log = file.get_bool("packet_log", c.packet_log);
  c.audit.level = static_cast<int>(file.get_int("audit_level", c.audit.level));
  if (c.audit.level < 0 || c.audit.level > 2) {
    throw std::runtime_error{"scenario: audit_level must be 0, 1 or 2 (got " +
                             std::to_string(c.audit.level) + ")"};
  }
  c.audit.throw_on_violation = file.get_bool("audit_throw", c.audit.throw_on_violation);
  const std::int64_t ingest_batch =
      file.get_int("ingest_batch", static_cast<std::int64_t>(c.ingest_batch));
  if (ingest_batch < 1) {
    throw std::runtime_error{"scenario: ingest_batch must be >= 1 (got " +
                             std::to_string(ingest_batch) + ")"};
  }
  c.ingest_batch = static_cast<std::size_t>(ingest_batch);
  c.label = file.get_string("label", c.policy_label());

  const auto unused = file.unused_keys();
  if (!unused.empty()) {
    std::string joined;
    for (const auto& key : unused) joined += (joined.empty() ? "" : ", ") + key;
    throw std::runtime_error{"scenario: unknown keys (typo?): " + joined};
  }
  c.validate();
  return c;
}

std::string describe_scenario(const ScenarioConfig& c) {
  std::ostringstream out;
  out << "label              = " << c.label << "\n"
      << "policy             = " << c.policy_label() << " (theta " << c.theta << ", w_b " << c.w_b
      << ")\n"
      << "nodes / gateways   = " << c.n_nodes << " / " << c.n_gateways << " over "
      << c.radius_m / 1000.0 << " km"
      << (c.gateway_grid_pitch_m > 0.0
              ? " (grid pitch " + std::to_string(c.gateway_grid_pitch_m / 1000.0) + " km, cluster " +
                    std::to_string(c.cluster_radius_m / 1000.0) + " km)"
              : std::string{})
      << "\n"
      << "period             = [" << c.min_period.minutes() << ", " << c.max_period.minutes()
      << "] min, window " << c.forecast_window.minutes() << " min\n"
      << "radio              = " << (c.sf_assignment == SfAssignment::kFixed
                                         ? to_string(c.fixed_sf)
                                         : std::string{"distance-based SF"})
      << ", " << c.tx_power_dbm << " dBm, " << c.uplink_channels << " channels, ADR "
      << (c.adr_enabled ? "on" : "off") << "\n"
      << "battery            = " << c.battery_days << " nominal days, theta cap " << c.theta
      << (c.supercap_tx_buffer > 0.0
              ? ", supercap " + std::to_string(c.supercap_tx_buffer) + " tx"
              : std::string{})
      << "\n"
      << "thermal            = "
      << (c.thermal.insulated ? "insulated " + std::to_string(c.temperature_c) + " C"
                              : "outdoor, mean " + std::to_string(c.thermal.mean_c) + " C")
      << "\n"
      << "seed               = " << c.seed << "\n";
  if (c.faults.any() || c.stale_feedback_k > 0.0 || c.ack_failure_backoff) {
    out << "faults             = ";
    if (c.faults.outage_daily_duration > Time::zero()) {
      out << "daily outage " << c.faults.outage_daily_duration.hours() << " h @ +"
          << c.faults.outage_daily_start.hours() << " h; ";
    }
    if (c.faults.outage_random_per_day > 0.0) {
      out << c.faults.outage_random_per_day << " random outages/day; ";
    }
    if (c.faults.ack_loss_enabled()) {
      out << "GE ack loss " << c.faults.ack_loss_good << "/" << c.faults.ack_loss_bad << "; ";
    }
    if (c.faults.crashes_enabled()) {
      out << c.faults.crash_per_year << " crashes/node/year; ";
    }
    if (c.faults.drought_enabled()) {
      out << "drought x" << c.faults.drought_scale << " for "
          << c.faults.drought_duration.days() << " d @ day " << c.faults.drought_start.days()
          << "; ";
    }
    if (c.faults.reports_enabled()) {
      out << "report faults loss/dup/reorder/corrupt/truncate " << c.faults.report_loss << "/"
          << c.faults.report_dup << "/" << c.faults.report_reorder << "/"
          << c.faults.report_corrupt << "/" << c.faults.report_truncate << "; ";
    }
    out << "stale_k " << c.stale_feedback_k << ", backoff "
        << (c.ack_failure_backoff ? "on" : "off") << "\n";
  }
  return out.str();
}

}  // namespace blam
