// Node placement for the paper's scenario: nodes scattered uniformly at
// random over a disk around a single gateway (max distance 5 km, "dense
// deployment").
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "lora/link.hpp"

namespace blam {

/// `n` positions uniform over a disk of `radius_m` centred on `center`.
[[nodiscard]] std::vector<Position> random_disk(int n, double radius_m, Position center, Rng& rng);

/// `n` positions on a ring (equidistant from the gateway) — used by tests
/// and ablations to give every node an identical link budget.
[[nodiscard]] std::vector<Position> ring(int n, double radius_m, Position center);

/// `n` positions on a centred square grid with `pitch_m` spacing, row-major
/// from the south-west corner. Deterministic (no rng): the city-scale sharded
/// deployments place one gateway per grid cell.
[[nodiscard]] std::vector<Position> grid(int n, double pitch_m, Position center);

}  // namespace blam
