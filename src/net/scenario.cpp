#include "net/scenario.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "mac/blam_mac.hpp"
#include "mac/greedy_green_mac.hpp"
#include "mac/lorawan_mac.hpp"

namespace blam {

std::string ScenarioConfig::policy_label() const {
  char buf[32];
  switch (policy) {
    case PolicyKind::kLorawan:
      return "LoRaWAN";
    case PolicyKind::kBlam:
      std::snprintf(buf, sizeof buf, "H-%.0f", theta * 100.0);
      return buf;
    case PolicyKind::kThetaOnly:
      std::snprintf(buf, sizeof buf, "H-%.0fC", theta * 100.0);
      return buf;
    case PolicyKind::kGreedyGreen:
      return "GreedyGreen";
  }
  return "?";
}

void ScenarioConfig::validate() const {
  // NaN slips through every range comparison below (NaN <= x is false), so
  // finiteness is checked first, field by field.
  const auto require_finite = [](double value, const char* field) {
    if (!std::isfinite(value)) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "ScenarioConfig: %s must be finite (got %g)", field, value);
      throw std::invalid_argument{buf};
    }
  };
  require_finite(radius_m, "radius_m");
  require_finite(gateway_ring_fraction, "gateway_ring_fraction");
  require_finite(gateway_grid_pitch_m, "gateway_grid_pitch_m");
  require_finite(cluster_radius_m, "cluster_radius_m");
  require_finite(interference_floor_dbm, "interference_floor_dbm");
  require_finite(theta, "theta");
  require_finite(w_b, "w_b");
  require_finite(utility_lambda, "utility_lambda");
  require_finite(step_deadline, "step_deadline");
  require_finite(step_floor, "step_floor");
  require_finite(ewma_beta, "ewma_beta");
  require_finite(tx_power_dbm, "tx_power_dbm");
  require_finite(sf_margin_db, "sf_margin_db");
  require_finite(downlink_tx_dbm, "downlink_tx_dbm");
  require_finite(rx1_bandwidth_hz, "rx1_bandwidth_hz");
  require_finite(duty_cycle, "duty_cycle");
  require_finite(battery_days, "battery_days");
  require_finite(initial_soc, "initial_soc");
  require_finite(battery_self_discharge_per_month, "battery_self_discharge_per_month");
  require_finite(solar_tx_per_window, "solar_tx_per_window");
  require_finite(panel_scale_min, "panel_scale_min");
  require_finite(panel_scale_max, "panel_scale_max");
  require_finite(cloud_jitter_spread, "cloud_jitter_spread");
  require_finite(forecast_error_sigma, "forecast_error_sigma");
  require_finite(supercap_tx_buffer, "supercap_tx_buffer");
  require_finite(supercap_efficiency, "supercap_efficiency");
  require_finite(supercap_leak_per_day, "supercap_leak_per_day");
  require_finite(temperature_c, "temperature_c");
  require_finite(stale_feedback_k, "stale_feedback_k");
  require_finite(period_jitter, "period_jitter");
  if (n_nodes <= 0) throw std::invalid_argument{"ScenarioConfig: n_nodes must be positive"};
  if (radius_m <= 0.0) throw std::invalid_argument{"ScenarioConfig: radius_m must be positive"};
  if (n_gateways <= 0) throw std::invalid_argument{"ScenarioConfig: n_gateways must be positive"};
  if (gateway_ring_fraction <= 0.0 || gateway_ring_fraction > 1.0) {
    throw std::invalid_argument{"ScenarioConfig: gateway_ring_fraction in (0,1]"};
  }
  if (min_period <= Time::zero() || min_period > max_period) {
    throw std::invalid_argument{"ScenarioConfig: invalid period range"};
  }
  if (forecast_window <= Time::zero() || forecast_window > min_period) {
    throw std::invalid_argument{"ScenarioConfig: forecast window must be in (0, min_period]"};
  }
  if (theta <= 0.0 || theta > 1.0) throw std::invalid_argument{"ScenarioConfig: theta in (0,1]"};
  if (w_b < 0.0 || w_b > 1.0) throw std::invalid_argument{"ScenarioConfig: w_b in [0,1]"};
  if (payload_bytes <= 0 || payload_bytes > 222) {
    throw std::invalid_argument{"ScenarioConfig: payload_bytes in [1,222]"};
  }
  if (ewma_beta < 0.0 || ewma_beta > 1.0) {
    throw std::invalid_argument{"ScenarioConfig: ewma_beta in [0,1]"};
  }
  if (battery_days <= 0.0) throw std::invalid_argument{"ScenarioConfig: battery_days positive"};
  if (initial_soc < 0.0 || initial_soc > 1.0) {
    throw std::invalid_argument{"ScenarioConfig: initial_soc in [0,1]"};
  }
  if (solar_tx_per_window <= 0.0 && !solar_peak_explicit) {
    throw std::invalid_argument{"ScenarioConfig: solar_tx_per_window must be positive"};
  }
  if (panel_scale_min <= 0.0 || panel_scale_min > panel_scale_max) {
    throw std::invalid_argument{"ScenarioConfig: invalid panel scale range"};
  }
  if (retx_backoff_min < Time::zero() || retx_backoff_min > retx_backoff_max) {
    throw std::invalid_argument{"ScenarioConfig: invalid retx backoff range"};
  }
  if (dissemination_period <= Time::zero()) {
    throw std::invalid_argument{"ScenarioConfig: dissemination_period must be positive"};
  }
  if (period_jitter < 0.0 || period_jitter >= 0.5) {
    throw std::invalid_argument{"ScenarioConfig: period_jitter in [0,0.5)"};
  }
  if (battery_self_discharge_per_month < 0.0 || battery_self_discharge_per_month >= 1.0) {
    throw std::invalid_argument{"ScenarioConfig: battery_self_discharge_per_month in [0,1)"};
  }
  if (duty_cycle <= 0.0 || duty_cycle > 1.0) {
    throw std::invalid_argument{"ScenarioConfig: duty_cycle in (0,1]"};
  }
  if (supercap_tx_buffer < 0.0) {
    throw std::invalid_argument{"ScenarioConfig: supercap_tx_buffer must be >= 0"};
  }
  if (supercap_efficiency <= 0.0 || supercap_efficiency > 1.0) {
    throw std::invalid_argument{"ScenarioConfig: supercap_efficiency in (0,1]"};
  }
  if (supercap_leak_per_day < 0.0 || supercap_leak_per_day >= 1.0) {
    throw std::invalid_argument{"ScenarioConfig: supercap_leak_per_day in [0,1)"};
  }
  if (stale_feedback_k < 0.0) {
    throw std::invalid_argument{"ScenarioConfig: stale_feedback_k must be >= 0"};
  }
  if (gateway_grid_pitch_m < 0.0) {
    throw std::invalid_argument{"ScenarioConfig: gateway_grid_pitch_m must be >= 0"};
  }
  if (cluster_radius_m < 0.0) {
    throw std::invalid_argument{"ScenarioConfig: cluster_radius_m must be >= 0"};
  }
  if (gateway_grid_pitch_m > 0.0 && cluster_radius_m <= 0.0) {
    throw std::invalid_argument{
        "ScenarioConfig: grid layout (gateway_grid_pitch_m > 0) needs cluster_radius_m > 0"};
  }
  // Anything the floor drops would have been dropped by the SF12 sensitivity
  // check anyway — a floor above that would change decode outcomes, not just
  // interference bookkeeping.
  if (interference_floor_dbm > gateway_sensitivity_dbm(SpreadingFactor::kSF12)) {
    throw std::invalid_argument{
        "ScenarioConfig: interference_floor_dbm must be <= the SF12 gateway sensitivity"};
  }
  if (shards < 0) {
    throw std::invalid_argument{"ScenarioConfig: shards must be >= 0"};
  }
  faults.validate();
}

std::unique_ptr<MacPolicy> make_policy(const ScenarioConfig& config) {
  switch (config.policy) {
    case PolicyKind::kLorawan:
      return std::make_unique<LorawanMac>();
    case PolicyKind::kBlam:
      return std::make_unique<BlamMac>(config.theta);
    case PolicyKind::kThetaOnly:
      return std::make_unique<ThetaOnlyMac>(config.theta);
    case PolicyKind::kGreedyGreen:
      return std::make_unique<GreedyGreenMac>();
  }
  throw std::logic_error{"make_policy: unknown policy kind"};
}

std::unique_ptr<UtilityFunction> make_utility(const ScenarioConfig& config) {
  switch (config.utility) {
    case UtilityKind::kLinear:
      return std::make_unique<LinearUtility>();
    case UtilityKind::kExponential:
      return std::make_unique<ExponentialUtility>(config.utility_lambda);
    case UtilityKind::kStep:
      return std::make_unique<StepUtility>(config.step_deadline, config.step_floor);
  }
  throw std::logic_error{"make_utility: unknown utility kind"};
}

ScenarioConfig lorawan_scenario(int n_nodes, std::uint64_t seed) {
  ScenarioConfig c;
  c.label = "LoRaWAN";
  c.policy = PolicyKind::kLorawan;
  c.theta = 1.0;
  c.n_nodes = n_nodes;
  c.seed = seed;
  return c;
}

ScenarioConfig blam_scenario(int n_nodes, double theta, std::uint64_t seed) {
  ScenarioConfig c;
  c.policy = PolicyKind::kBlam;
  c.theta = theta;
  c.n_nodes = n_nodes;
  c.seed = seed;
  c.label = c.policy_label();
  return c;
}

ScenarioConfig greedy_green_scenario(int n_nodes, std::uint64_t seed) {
  ScenarioConfig c;
  c.policy = PolicyKind::kGreedyGreen;
  c.theta = 1.0;
  c.n_nodes = n_nodes;
  c.seed = seed;
  c.label = c.policy_label();
  return c;
}

ScenarioConfig theta_only_scenario(int n_nodes, double theta, std::uint64_t seed) {
  ScenarioConfig c;
  c.policy = PolicyKind::kThetaOnly;
  c.theta = theta;
  c.n_nodes = n_nodes;
  c.seed = seed;
  c.label = c.policy_label();
  return c;
}

}  // namespace blam
