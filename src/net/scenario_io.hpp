// ScenarioConfig <-> key=value config-file bridge for the scenario-runner
// CLI: every experiment knob is settable from a text file, so sweeps can be
// scripted without recompiling.
#pragma once

#include <string>

#include "common/config.hpp"
#include "net/scenario.hpp"

namespace blam {

/// Builds a ScenarioConfig from a parsed config file, starting from the
/// defaults. Throws std::runtime_error on malformed values or unknown keys
/// (typo protection) and std::invalid_argument if the result fails
/// ScenarioConfig::validate().
[[nodiscard]] ScenarioConfig scenario_from_config(const ConfigFile& file);

/// One-line-per-field human-readable dump (the runner echoes it).
[[nodiscard]] std::string describe_scenario(const ScenarioConfig& config);

}  // namespace blam
