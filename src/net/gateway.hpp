// Gateway: SX1301-class receiver with 8 parallel demodulation paths, the
// interference/capture model, half-duplex downlink, and ACK transmission.
//
// Reception pipeline for each uplink (mirroring NS-3 lorawan's
// GatewayLoraPhy):
//   arrival  -> sensitivity check, free demodulator check, not-transmitting
//               check; the packet enters the interference tracker either way
//               (an unlocked packet still jams others);
//   end      -> capture/SIR evaluation against everything that overlapped,
//               and a half-duplex check against the ACK ledger;
//   success  -> report the reception to the network server. The server —
//               which may hear the same frame through several gateways —
//               picks the gateway with the strongest copy and calls
//               send_ack() on it; that gateway books the ACK into RX1 (or
//               RX2) and delivers it to the node if the downlink closes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "lora/channel_plan.hpp"
#include "lora/interference.hpp"
#include "lora/link.hpp"
#include "lora/tx_timing_cache.hpp"
#include "mac/frame.hpp"
#include "mac/gateway_mac.hpp"
#include "net/metrics.hpp"
#include "net/network_server.hpp"
#include "sim/simulator.hpp"

namespace blam {

class FaultPlan;
class Node;
class StateReader;
class StateWriter;

class Gateway {
 public:
  struct Config {
    int demod_paths{8};
    ClassATimings timings{};
    double downlink_tx_dbm{27.0};
    /// RX1 downlink bandwidth (Hz).
    double rx1_bandwidth_hz{125e3};
    /// Audibility floor: arrivals below this power are dropped before they
    /// enter the interference tracker (counted as lost_under_sensitivity).
    /// The default never triggers (> 500 dB of path loss); a finite floor
    /// bounds the gateway's collision domain for the shard planner.
    double interference_floor_dbm{-500.0};
  };

  Gateway(int id, Position position, Simulator& sim, NetworkServer& server, Metrics& metrics,
          const ChannelPlan& plan, const Config& config);

  /// Attaches the fault-injection plan (nullptr = no faults). Mutable:
  /// the downlink loss channel consumes random draws.
  void attach_fault_plan(FaultPlan* faults) { faults_ = faults; }

  /// Id used to key this gateway's fault streams (Gilbert-Elliott downlink
  /// chain). Defaults to the constructor id; the sharded engine overrides it
  /// with the GLOBAL gateway id so a shard-local gateway draws from the same
  /// per-gateway chain as its serial twin.
  void set_fault_gateway_id(int id) { fault_id_ = id; }
  [[nodiscard]] int fault_gateway_id() const { return fault_id_; }

  /// Called by a node at the instant its transmission starts.
  /// `rx_power_dbm` is the power this uplink arrives with at THIS gateway.
  void on_uplink(Node& node, const UplinkFrame& frame, const TxParams& params, int channel,
                 double rx_power_dbm);

  /// Injects a foreign (never-decoded) transmission into the interference
  /// tracker: it can destroy receptions but is invisible otherwise.
  void inject_interference(AirPacket packet);

  /// Called by the network server after it has chosen this gateway as the
  /// downlink for a decoded frame: builds the ACK (w_u, ADR), books the TX
  /// chain, and delivers to the node if the link budget closes.
  void send_ack(Node& node, const UplinkFrame& frame, Time uplink_end, SpreadingFactor sf,
                int channel, std::optional<double> theta_update = std::nullopt);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] Position position() const { return position_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] int busy_paths() const { return busy_paths_; }

  /// Worst-case delay from uplink end to ACK airtime end, across the RX1
  /// (slowest SF at the RX1 bandwidth) and RX2 options — nodes place their
  /// ACK-timeout after this. Constant per gateway, computed at construction
  /// (nodes query it on every confirmed attempt).
  [[nodiscard]] Time max_ack_end_delay() const { return max_ack_end_delay_; }

  /// Serializes the gateway's dynamic state — interference tracker, ACK
  /// ledger, in-flight receptions/ACKs with their pending events — into an
  /// engine checkpoint (see sim/checkpoint.hpp).
  void checkpoint_state(StateWriter& w) const;

  /// Restores state captured by checkpoint_state into a freshly built
  /// gateway whose event queue has been cleared. `node_by_id` resolves
  /// GLOBAL node ids back to this slice's Node instances.
  void restore_state(StateReader& r, const std::function<Node*(std::uint32_t)>& node_by_id);

 private:
  void finish_reception(std::uint32_t rx_slot);
  void deliver_ack(std::uint32_t ack_slot);

  /// Reception in flight between uplink end and the capture decision. Slots
  /// are pooled so the scheduled callback captures only {this, index} (the
  /// event queue's inline budget) and the frame's SoC-report vector keeps
  /// its capacity across packets — the reception path never allocates in the
  /// steady state.
  struct PendingReception {
    Node* node{nullptr};
    UplinkFrame frame;
    AirPacket packet;
    /// The finish_reception event; a stale handle marks the slot free
    /// (checkpoint liveness test).
    EventHandle finish_event{};
  };

  /// ACK in flight between the downlink decision and its airtime end.
  struct PendingAck {
    Node* node{nullptr};
    AckFrame ack;
    Time end;
    /// The deliver_ack event; stale once the slot is recycled.
    EventHandle deliver_event{};
  };

  [[nodiscard]] std::uint32_t acquire_rx_slot();
  [[nodiscard]] std::uint32_t acquire_ack_slot();

  int id_;
  int fault_id_;
  // blam-ckpt: skip -- deployment output; plan_deployment replays deterministically from the scenario seed
  Position position_;
  Simulator& sim_;
  // blam-ckpt: skip -- wiring; server state rides in its own engine-slice section
  NetworkServer& server_;
  // blam-ckpt: skip -- wiring; checkpointed metrics ride in the gateway-metrics section
  Metrics& metrics_;
  // blam-ckpt: skip -- pure function of the scenario, rebuilt at construction
  ChannelPlan plan_;
  // blam-ckpt: skip -- construction input, rebuilt from the same ScenarioConfig
  Config config_;
  // blam-ckpt: skip -- wiring; fault-plan state rides in the engine slice's faults section
  FaultPlan* faults_{nullptr};
  InterferenceTracker interference_;
  AckPlanner ack_planner_;
  int busy_paths_{0};
  std::uint64_t next_packet_id_{1};
  // blam-ckpt: skip -- derived constant, computed from the scenario timings at construction
  Time max_ack_end_delay_{};
  // blam-ckpt: skip -- memo cache; entries regenerate on demand from TxParams
  TxTimingCache timing_;
  std::vector<PendingReception> rx_pool_;
  std::vector<std::uint32_t> rx_free_;
  std::vector<PendingAck> ack_pool_;
  std::vector<std::uint32_t> ack_free_;
};

}  // namespace blam
