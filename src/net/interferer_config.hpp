// Configuration for the external-interference process (see interferer.hpp),
// split out so ScenarioConfig can embed it without pulling in the
// simulator-facing machinery.
#pragma once

namespace blam {

struct InterfererConfig {
  /// Mean foreign transmissions per hour across the band; 0 disables.
  double tx_per_hour{0.0};
  /// Received-power range at the gateways (dBm), uniform.
  double min_rx_dbm{-135.0};
  double max_rx_dbm{-95.0};
  /// Foreign payload size (sets airtime).
  int payload_bytes{20};
};

}  // namespace blam
