#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "net/deployment_plan.hpp"
#include "sim/checkpoint.hpp"

namespace blam {

Network::Network(const ScenarioConfig& config) : Network{config, nullptr} {}

Network::Network(const ScenarioConfig& config, std::shared_ptr<const SolarTrace> trace)
    : config_{config},
      plan_{config.uplink_channels, config.downlink_channels},
      model_{config.degradation},
      metrics_{static_cast<std::size_t>(config.n_nodes)} {
  config_.validate();
  build(std::move(trace));
}

void Network::build(std::shared_ptr<const SolarTrace> trace) {
  const Rng root{config_.seed, salt::kRootStream};
  DeploymentPlan deployment = plan_deployment(config_, root);
  worst_attempt_energy_ = deployment.worst_attempt_energy;

  if (trace != nullptr) {
    trace_ = std::move(trace);
  } else {
    trace_ = build_deployment_trace(config_, worst_attempt_energy_);
  }

  ThermalConfig thermal = config_.thermal;
  if (thermal.insulated) thermal.fixed_c = config_.temperature_c;
  thermal_ = std::make_unique<TemperatureModel>(thermal);

  utility_ = make_utility(config_);
  server_ = std::make_unique<NetworkServer>(sim_, model_, config_.temperature_c,
                                            config_.dissemination_period);
  server_->attach_metrics(metrics_);

  // Ingestion-queue watermark: scenario knob, overridable from the
  // environment (the determinism CI leg regenerates figures at batch 1 and
  // 4096 and diffs the outputs — any batch size is bit-identical).
  server_->service().set_ingest_batch(resolve_ingest_batch(config_));

  // The auditor is observe-only (no RNG, no state mutation), so any level
  // yields bit-identical simulation results; it attaches before anything
  // schedules events so the first pops are covered too.
  const AuditConfig audit_config = audit_config_from_env(config_.audit);
  if (audit_config.level > 0) {
    audit_ = std::make_unique<Auditor>(audit_config);
    sim_.attach_auditor(audit_.get());
    server_->attach_auditor(audit_.get());
  }

  if (config_.adr_enabled) server_->enable_adr(config_.adr);
  if (config_.adaptive_theta) {
    ThetaController::Config tc = config_.theta_controller;
    tc.initial = std::clamp(config_.theta, tc.theta_min, tc.theta_max);
    server_->enable_adaptive_theta(tc);
  }

  // The FaultPlan and all its child streams come from a dedicated fork of
  // the scenario root, so configuring faults never perturbs the topology /
  // shadowing / traffic draws above — and a fault-free scenario builds no
  // plan at all, keeping it bit-identical to pre-fault builds.
  if (config_.faults.any()) {
    faults_ = std::make_unique<FaultPlan>(config_.faults, root.fork(salt::kFaultPlan));
    server_->attach_fault_plan(faults_.get());
  }

  Gateway::Config gw;
  gw.demod_paths = config_.gateway_demod_paths;
  gw.timings = config_.timings;
  gw.downlink_tx_dbm = config_.downlink_tx_dbm;
  gw.rx1_bandwidth_hz = config_.rx1_bandwidth_hz;
  gw.interference_floor_dbm = config_.interference_floor_dbm;
  for (std::size_t g = 0; g < deployment.gateway_positions.size(); ++g) {
    gateways_.push_back(std::make_unique<Gateway>(static_cast<int>(g),
                                                  deployment.gateway_positions[g], sim_, *server_,
                                                  metrics_, plan_, gw));
    if (faults_ != nullptr) gateways_.back()->attach_fault_plan(faults_.get());
  }

  if (config_.packet_log) packet_log_ = std::make_unique<PacketLog>();
  if (config_.interference.tx_per_hour > 0.0) {
    interferer_ = std::make_unique<ExternalInterferer>(sim_, gateways_, plan_,
                                                       config_.interference,
                                                       root.fork(salt::kInterferer));
  }

  nodes_.reserve(deployment.nodes.size());
  for (std::size_t i = 0; i < deployment.nodes.size(); ++i) {
    NodePlan& p = deployment.nodes[i];

    Node::Init init;
    init.id = static_cast<std::uint32_t>(i);
    init.position = p.position;
    init.period = p.period;
    init.sf = p.sf;
    init.link_losses_db = std::move(p.losses_db);
    init.battery_capacity = p.battery_capacity;
    init.panel_scale = p.panel_scale;

    server_->register_node(init.id);
    nodes_.push_back(std::make_unique<Node>(init, config_, sim_, gateways_, plan_, *trace_,
                                            model_, *thermal_, *utility_, metrics_.node(i),
                                            root.fork(salt::kNodeStreamBase + i)));
    nodes_.back()->attach_packet_log(packet_log_.get());
    nodes_.back()->attach_auditor(audit_.get());
    if (faults_ != nullptr) nodes_.back()->attach_fault_plan(faults_.get());
    nodes_.back()->start();
  }

  // Feedback-consistency audit needs the nodes' ground-truth trackers;
  // node ids are the dense vector indices, so the probe is a direct lookup.
  if (audit_ != nullptr) {
    server_->set_truth_probe(
        [this](std::uint32_t id, Time at) { return nodes_[id]->degradation_now(at); });
  }
}

void Network::run_until(Time until) { sim_.run_until(until); }

double Network::max_degradation() const {
  double max_deg = 0.0;
  for (const auto& node : nodes_) {
    max_deg = std::max(max_deg, node->degradation_now(sim_.now()));
  }
  return max_deg;
}

void Network::finalize_metrics() {
  for (const auto& node : nodes_) node->finalize_metrics(sim_.now());
  if (faults_ != nullptr) {
    metrics_.set_total_outage(faults_->outage_seconds_until(sim_.now()));
  }
  // Release any report the fault channel still holds, then snapshot the
  // ledger's ingest decisions and the channel's fault tally.
  server_->flush_report_channel();
  metrics_.set_feedback(server_->service().counters());
  if (const ReportChannelCounters* rc = server_->report_channel_counters()) {
    GatewayMetrics& gw = metrics_.gateway();
    gw.reports_dropped_fault = rc->dropped;
    gw.reports_duplicated_fault = rc->duplicated;
    gw.reports_reordered_fault = rc->reordered;
    gw.reports_corrupted_fault = rc->corrupted;
    gw.reports_truncated_fault = rc->truncated;
  }
}

void Network::assert_checkpointable() const {
  // Each of these carries state (RNG draws, pending events, or history) the
  // "blamsim v1" checkpoint does not cover; resuming such a run would
  // silently diverge, so refuse loudly instead.
  if (audit_ != nullptr) {
    throw std::runtime_error{"checkpoint: auditor state is not serialized (disable BLAM_AUDIT)"};
  }
  if (packet_log_ != nullptr) {
    throw std::runtime_error{"checkpoint: packet log is not serialized"};
  }
  if (interferer_ != nullptr) {
    throw std::runtime_error{"checkpoint: external interferer is not serialized"};
  }
  // ADR history is covered: NetworkServer::checkpoint_state serializes the
  // per-node SNR windows, so ADR-enabled runs checkpoint and resume exactly.
}

void Network::checkpoint_state(StateWriter& w) {
  assert_checkpointable();
  EngineSlice slice;
  slice.sim = &sim_;
  slice.server = server_.get();
  slice.gateways = &gateways_;
  slice.nodes = &nodes_;
  slice.gateway_metrics = &metrics_.gateway();
  slice.faults = faults_.get();
  checkpoint_slice(w, slice);
}

void Network::restore_state(StateReader& r) {
  assert_checkpointable();
  EngineSlice slice;
  slice.sim = &sim_;
  slice.server = server_.get();
  slice.gateways = &gateways_;
  slice.nodes = &nodes_;
  slice.gateway_metrics = &metrics_.gateway();
  slice.faults = faults_.get();
  restore_slice(r, slice);
}

int Network::max_windows() const {
  int max_w = 1;
  for (const auto& node : nodes_) max_w = std::max(max_w, node->n_windows());
  return max_w;
}

}  // namespace blam
