#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "net/topology.hpp"

namespace blam {

Network::Network(const ScenarioConfig& config) : Network{config, nullptr} {}

Network::Network(const ScenarioConfig& config, std::shared_ptr<const SolarTrace> trace)
    : config_{config},
      plan_{config.uplink_channels, config.downlink_channels},
      model_{config.degradation},
      metrics_{static_cast<std::size_t>(config.n_nodes)} {
  config_.validate();
  build(std::move(trace));
}

void Network::build(std::shared_ptr<const SolarTrace> trace) {
  Rng root{config_.seed, /*stream=*/0};
  Rng topo_rng = root.fork(0x7090);
  Rng shadow_rng = root.fork(0x5ad0);
  Rng traffic_rng = root.fork(0x7aff1c);

  const Position center{0.0, 0.0};
  const std::vector<Position> positions =
      random_disk(config_.n_nodes, config_.radius_m, center, topo_rng);

  // Gateway placement: one in the centre, or several on a ring.
  std::vector<Position> gateway_positions;
  if (config_.n_gateways == 1) {
    gateway_positions.push_back(center);
  } else {
    gateway_positions =
        ring(config_.n_gateways, config_.radius_m * config_.gateway_ring_fraction, center);
  }

  // Per-node link budgets and SF assignment (against the BEST gateway).
  struct Plan {
    std::vector<double> losses_db;
    double best_loss_db;
    SpreadingFactor sf;
    Time period;
    double panel_scale;
  };
  std::vector<Plan> plans;
  plans.reserve(positions.size());
  const std::int64_t min_period_min = static_cast<std::int64_t>(config_.min_period.minutes());
  const std::int64_t max_period_min = static_cast<std::int64_t>(config_.max_period.minutes());
  for (const Position& pos : positions) {
    Plan plan;
    plan.best_loss_db = 1e300;
    for (const Position& gw : gateway_positions) {
      const Link link{pos, gw, config_.path_loss, shadow_rng};
      plan.losses_db.push_back(link.total_loss_db());
      plan.best_loss_db = std::min(plan.best_loss_db, link.total_loss_db());
    }
    plan.sf = config_.fixed_sf;
    if (config_.sf_assignment == SfAssignment::kDistanceBased) {
      // NS-3 "SetSpreadingFactorsUp" against the strongest gateway:
      // smallest SF that closes the uplink; nodes even SF12 cannot serve
      // keep SF12 (they will underperform, as in NS-3).
      const double rx_dbm = config_.tx_power_dbm - plan.best_loss_db;
      plan.sf = SpreadingFactor::kSF12;
      for (SpreadingFactor sf : kAllSpreadingFactors) {
        if (rx_dbm >= gateway_sensitivity_dbm(sf) + config_.sf_margin_db) {
          plan.sf = sf;
          break;
        }
      }
    }
    // Sampling period: whole minutes in [min, max], fixed per node; all
    // nodes boot at t=0 (synchronized deployment), which gives the baseline
    // its harmonic window-0 collisions.
    plan.period =
        Time::from_minutes(static_cast<double>(traffic_rng.uniform_int(min_period_min, max_period_min)));
    plan.panel_scale = traffic_rng.uniform(config_.panel_scale_min, config_.panel_scale_max);
    plans.push_back(std::move(plan));
  }

  // Worst-case one-attempt energy across the network: sizes the solar peak
  // ("enough for two transmissions at peak", Sec. IV-A.1).
  worst_attempt_energy_ = Energy::zero();
  for (const Plan& p : plans) {
    TxParams params;
    params.sf = p.sf;
    params.bandwidth_hz = 125e3;
    params.payload_bytes = config_.payload_bytes + 4;  // with SoC report
    params.tx_power_dbm = config_.tx_power_dbm;
    params = params.with_auto_ldro();
    const Energy listen =
        config_.radio.rx_power() * (config_.timings.rx_window_duration * std::int64_t{2});
    worst_attempt_energy_ =
        std::max(worst_attempt_energy_, tx_energy(params, config_.radio) + listen);
  }

  if (trace != nullptr) {
    trace_ = std::move(trace);
  } else {
    SolarTraceConfig solar = config_.solar;
    if (!config_.solar_peak_explicit) {
      solar.peak = Power::from_watts(config_.solar_tx_per_window * worst_attempt_energy_.joules() /
                                     config_.forecast_window.seconds());
    }
    // Weather follows the scenario seed, but an explicitly varied
    // solar.seed still selects a different realization.
    std::uint64_t weather_seed = config_.seed ^ (config_.solar.seed * 0x9e3779b97f4a7c15ULL);
    solar.seed = splitmix64(weather_seed);
    trace_ = std::make_shared<const SolarTrace>(solar);
  }

  ThermalConfig thermal = config_.thermal;
  if (thermal.insulated) thermal.fixed_c = config_.temperature_c;
  thermal_ = std::make_unique<TemperatureModel>(thermal);

  utility_ = make_utility(config_);
  server_ = std::make_unique<NetworkServer>(sim_, model_, config_.temperature_c,
                                            config_.dissemination_period);
  server_->attach_metrics(metrics_);

  // Ingestion-queue watermark: scenario knob, overridable from the
  // environment (the determinism CI leg regenerates figures at batch 1 and
  // 4096 and diffs the outputs — any batch size is bit-identical).
  std::size_t ingest_batch = config_.ingest_batch;
  if (const char* env = std::getenv("BLAM_INGEST_BATCH")) {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      ingest_batch = static_cast<std::size_t>(parsed);
    }
  }
  server_->service().set_ingest_batch(ingest_batch);

  // The auditor is observe-only (no RNG, no state mutation), so any level
  // yields bit-identical simulation results; it attaches before anything
  // schedules events so the first pops are covered too.
  const AuditConfig audit_config = audit_config_from_env(config_.audit);
  if (audit_config.level > 0) {
    audit_ = std::make_unique<Auditor>(audit_config);
    sim_.attach_auditor(audit_.get());
    server_->attach_auditor(audit_.get());
  }

  if (config_.adr_enabled) server_->enable_adr(config_.adr);
  if (config_.adaptive_theta) {
    ThetaController::Config tc = config_.theta_controller;
    tc.initial = std::clamp(config_.theta, tc.theta_min, tc.theta_max);
    server_->enable_adaptive_theta(tc);
  }

  // The FaultPlan and all its child streams come from a dedicated fork of
  // the scenario root, so configuring faults never perturbs the topology /
  // shadowing / traffic draws above — and a fault-free scenario builds no
  // plan at all, keeping it bit-identical to pre-fault builds.
  if (config_.faults.any()) {
    faults_ = std::make_unique<FaultPlan>(config_.faults, root.fork(0xfa17));
    server_->attach_fault_plan(faults_.get());
  }

  Gateway::Config gw;
  gw.demod_paths = config_.gateway_demod_paths;
  gw.timings = config_.timings;
  gw.downlink_tx_dbm = config_.downlink_tx_dbm;
  gw.rx1_bandwidth_hz = config_.rx1_bandwidth_hz;
  for (std::size_t g = 0; g < gateway_positions.size(); ++g) {
    gateways_.push_back(std::make_unique<Gateway>(static_cast<int>(g), gateway_positions[g],
                                                  sim_, *server_, metrics_, plan_, gw));
    if (faults_ != nullptr) gateways_.back()->attach_fault_plan(faults_.get());
  }

  if (config_.packet_log) packet_log_ = std::make_unique<PacketLog>();
  if (config_.interference.tx_per_hour > 0.0) {
    interferer_ = std::make_unique<ExternalInterferer>(sim_, gateways_, plan_,
                                                       config_.interference,
                                                       root.fork(0xa11e4));
  }

  nodes_.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const Plan& p = plans[i];

    // Battery sized for `battery_days` days of operation without recharge
    // (paper: 24 hours): sleep floor plus one attempt per sampling period.
    TxParams params;
    params.sf = p.sf;
    params.bandwidth_hz = 125e3;
    params.payload_bytes = config_.payload_bytes + 4;
    params.tx_power_dbm = config_.tx_power_dbm;
    params = params.with_auto_ldro();
    const Energy listen =
        config_.radio.rx_power() * (config_.timings.rx_window_duration * std::int64_t{2});
    const Energy per_attempt = tx_energy(params, config_.radio) + listen;
    const double packets_per_day = 86400.0 / p.period.seconds();
    const Energy daily = config_.radio.sleep_power() * Time::from_days(1.0) +
                         per_attempt * packets_per_day;
    const Energy capacity = daily * config_.battery_days;

    Node::Init init;
    init.id = static_cast<std::uint32_t>(i);
    init.position = positions[i];
    init.period = p.period;
    init.sf = p.sf;
    init.link_losses_db = p.losses_db;
    init.battery_capacity = capacity;
    init.panel_scale = p.panel_scale;

    server_->register_node(init.id);
    nodes_.push_back(std::make_unique<Node>(init, config_, sim_, gateways_, plan_, *trace_,
                                            model_, *thermal_, *utility_, metrics_.node(i),
                                            root.fork(0x0de + i)));
    nodes_.back()->attach_packet_log(packet_log_.get());
    nodes_.back()->attach_auditor(audit_.get());
    if (faults_ != nullptr) nodes_.back()->attach_fault_plan(faults_.get());
    nodes_.back()->start();
  }

  // Feedback-consistency audit needs the nodes' ground-truth trackers;
  // node ids are the dense vector indices, so the probe is a direct lookup.
  if (audit_ != nullptr) {
    server_->set_truth_probe(
        [this](std::uint32_t id, Time at) { return nodes_[id]->degradation_now(at); });
  }
}

void Network::run_until(Time until) { sim_.run_until(until); }

double Network::max_degradation() const {
  double max_deg = 0.0;
  for (const auto& node : nodes_) {
    max_deg = std::max(max_deg, node->degradation_now(sim_.now()));
  }
  return max_deg;
}

void Network::finalize_metrics() {
  for (const auto& node : nodes_) node->finalize_metrics(sim_.now());
  if (faults_ != nullptr) {
    metrics_.set_total_outage(faults_->outage_seconds_until(sim_.now()));
  }
  // Release any report the fault channel still holds, then snapshot the
  // ledger's ingest decisions and the channel's fault tally.
  server_->flush_report_channel();
  metrics_.set_feedback(server_->service().counters());
  if (const ReportChannelCounters* rc = server_->report_channel_counters()) {
    GatewayMetrics& gw = metrics_.gateway();
    gw.reports_dropped_fault = rc->dropped;
    gw.reports_duplicated_fault = rc->duplicated;
    gw.reports_reordered_fault = rc->reordered;
    gw.reports_corrupted_fault = rc->corrupted;
    gw.reports_truncated_fault = rc->truncated;
  }
}

int Network::max_windows() const {
  int max_w = 1;
  for (const auto& node : nodes_) max_w = std::max(max_w, node->n_windows());
  return max_w;
}

}  // namespace blam
